// F3a — Fig. 3 (upper graph): saturation-condition boundaries in the
// (VOD_CS, VOD_SW) plane for the basic cell. Three curves:
//   eq. (4)           — deterministic limit VOD_CS + VOD_SW = V_o
//   eq. (4) - 0.5 V   — prior art's arbitrary safety margin [9,11]
//   eq. (9)           — the paper's statistical condition
// The paper's claim: the statistical curve lies ABOVE the 0.5 V-margin
// curve everywhere (larger feasible overdrives, smaller transistors).
#include <cstdio>

#include "ascii_plot.hpp"
#include "bench_util.hpp"
#include "core/sizer.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;

int main() {
  const auto t = tech::generic_035um().nmos;
  const DacSpec spec;
  const CellSizer sizer(t, spec);

  print_header("F3a", "Fig. 3 (upper) — saturation boundaries, CS+SW cell");
  print_row({"VOD_CS [V]", "eq4 limit", "eq4-0.5V", "eq9 stat",
             "stat margin [mV]"});

  int stat_above_fixed = 0, samples = 0;
  for (double vod_cs = 0.05; vod_cs <= 0.9001; vod_cs += 0.05) {
    const auto none = sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kNone);
    const auto fixed =
        sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kFixedMargin, 0.5);
    const auto stat =
        sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kStatistical);
    std::string margin_mv = "-";
    if (stat) {
      const SizedCell s =
          sizer.size_basic(vod_cs, *stat, MarginPolicy::kStatistical);
      margin_mv = fmt(s.sat.margin * 1e3, "%.1f");
    }
    print_row({fmt(vod_cs, "%.2f"), none ? fmt(*none, "%.3f") : "-",
               fixed ? fmt(*fixed, "%.3f") : "-",
               stat ? fmt(*stat, "%.3f") : "-", margin_mv});
    if (stat && fixed) {
      ++samples;
      if (*stat > *fixed) ++stat_above_fixed;
    }
  }
  std::printf("\nstatistical boundary above the 0.5 V-margin boundary at "
              "%d/%d sampled VOD_CS values\n",
              stat_above_fixed, samples);

  // Render the Fig. 3 (upper) curves: '.' = eq. (4), 'o' = eq. (9)
  // statistical, 'x' = eq. (4) - 0.5 V.
  PlotSeries s_none{{}, {}, '.'};
  PlotSeries s_stat{{}, {}, 'o'};
  PlotSeries s_fixed{{}, {}, 'x'};
  for (double vod_cs = 0.02; vod_cs <= 0.96; vod_cs += 0.02) {
    if (const auto v = sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kNone)) {
      s_none.x.push_back(vod_cs);
      s_none.y.push_back(*v);
    }
    if (const auto v =
            sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kStatistical)) {
      s_stat.x.push_back(vod_cs);
      s_stat.y.push_back(*v);
    }
    if (const auto v = sizer.max_vod_sw_basic(
            vod_cs, MarginPolicy::kFixedMargin, 0.5)) {
      s_fixed.x.push_back(vod_cs);
      s_fixed.y.push_back(*v);
    }
  }
  PlotOptions po;
  po.x_label = "VOD_CS [V]";
  po.y_label = "max VOD_SW [V]";
  po.y_min = 0.0;
  std::printf("\n%s", ascii_plot({s_none, s_stat, s_fixed}, po).c_str());
  std::printf("legend: '.' eq.(4) limit, 'o' eq.(9) statistical, "
              "'x' 0.5 V margin\n");
  return 0;
}
