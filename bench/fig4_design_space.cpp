// F4 — Fig. 4: design space of the cascode (CAS+CS) topology. The surface
// is the largest feasible VOD_CS over the (VOD_SW, VOD_CAS) plane under the
// statistical condition eq. (11); the deterministic eq. (4)-analogue is
// printed alongside for comparison (the paper overlays both).
#include <cstdio>

#include "bench_util.hpp"
#include "core/sizer.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;

int main() {
  const auto t = tech::generic_035um().nmos;
  const DacSpec spec;
  const CellSizer sizer(t, spec);

  print_header("F4", "Fig. 4 — cascode-cell design space (max VOD_CS)");
  std::printf("entries: max VOD_CS [V] under eq.(11) statistical / "
              "eq.(4) deterministic; '.' = infeasible\n\n");

  std::printf("%18s", "VOD_SW \\ VOD_CAS");
  for (double vc = 0.05; vc <= 0.5001; vc += 0.075) {
    std::printf("%14.3f", vc);
  }
  std::printf("\n");
  for (double vs = 0.05; vs <= 0.5001; vs += 0.075) {
    std::printf("%18.3f", vs);
    for (double vc = 0.05; vc <= 0.5001; vc += 0.075) {
      const auto stat =
          sizer.max_vod_cs_cascode(vs, vc, MarginPolicy::kStatistical);
      const auto det = sizer.max_vod_cs_cascode(vs, vc, MarginPolicy::kNone);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s/%s",
                    stat ? fmt(*stat, "%.2f").c_str() : ".",
                    det ? fmt(*det, "%.2f").c_str() : ".");
      std::printf("%14s", buf);
    }
    std::printf("\n");
  }

  // Volume comparison: fraction of the sampled volume feasible under each
  // condition (the statistical volume must contain the 0.5 V-margin one).
  int vol_stat = 0, vol_fixed = 0, vol_det = 0, total = 0;
  for (double vcs = 0.05; vcs <= 0.9; vcs += 0.05) {
    for (double vs = 0.05; vs <= 0.5; vs += 0.05) {
      for (double vc = 0.05; vc <= 0.5; vc += 0.05) {
        ++total;
        if (sizer.size_cascode(vcs, vs, vc, MarginPolicy::kNone).feasible()) {
          ++vol_det;
        }
        if (sizer.size_cascode(vcs, vs, vc, MarginPolicy::kFixedMargin, 0.5)
                .feasible()) {
          ++vol_fixed;
        }
        if (sizer.size_cascode(vcs, vs, vc, MarginPolicy::kStatistical)
                .feasible()) {
          ++vol_stat;
        }
      }
    }
  }
  std::printf("\nfeasible fraction of the sampled design volume:\n");
  std::printf("  eq.(4) deterministic : %.1f%%\n", 100.0 * vol_det / total);
  std::printf("  eq.(11) statistical  : %.1f%%\n", 100.0 * vol_stat / total);
  std::printf("  0.5 V fixed margin   : %.1f%%\n", 100.0 * vol_fixed / total);
  return 0;
}
