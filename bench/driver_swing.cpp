// E8 — paper §2: "A driver circuit with a reduced swing placed between the
// latch and the switch reduces the clock feedthrough to the output node."
// The sized unary cell is switched through actual transistor-level drivers
// (cells::add_switch_driver); the driver low rail is swept from 0 V
// (full swing) upward. Less gate swing means less charge coupled through
// the switch overlap capacitance into the output and a smaller disturbance
// of the internal node — at the cost of a slower gate edge.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "cells/cells.hpp"
#include "core/sizer.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::units;

namespace {

struct Result {
  double glitch_pvs = 0.0;   ///< output glitch energy [pV*s]
  double droop_v = 0.0;      ///< internal node disturbance [V]
  double swing_v = 0.0;      ///< realized gate swing [V]
};

Result run(const tech::MosTechParams& nmos, const tech::TechParams& full,
           const core::DacSpec& spec, const core::SizedCell& cell,
           double v_low) {
  const double weight = spec.unary_weight();
  spice::Circuit ckt;
  const int outp = ckt.node("outp");
  const int outn = ckt.node("outn");
  const int top = ckt.node("top");
  const int mid = ckt.node("mid");
  const int vterm = ckt.node("vterm");
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vterm", vterm, 0, spec.v_out_min + spec.v_swing));
  ckt.add(std::make_unique<spice::Resistor>("rlp", vterm, outp, spec.r_load));
  ckt.add(std::make_unique<spice::Resistor>("rln", vterm, outn, spec.r_load));
  ckt.add(std::make_unique<spice::Capacitor>("clp", outp, 0, spec.c_load));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcs", ckt.node("gcs"), 0,
                                                 cell.cell.vg_cs));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcas", ckt.node("gcas"),
                                                 0, cell.cell.vg_cas));
  // Driver rails: high = the designed ON gate level, low = swept.
  const int vhi = ckt.node("vdrv_hi");
  const int vlo = ckt.node("vdrv_lo");
  ckt.add(std::make_unique<spice::VoltageSource>("vdrv_hi", vhi, 0,
                                                 cell.cell.vg_sw));
  ckt.add(std::make_unique<spice::VoltageSource>("vdrv_lo", vlo, 0, v_low));
  // Complementary digital inputs (full-rail, as a latch would supply).
  const int din = ckt.node("din");
  const int dinb = ckt.node("dinb");
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vd", din, 0,
      std::make_unique<spice::PulseWave>(3.3, 0.0, 1 * units::ns, 100 * ps,
                                         100 * ps, 100 * units::ns)));
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vdb", dinb, 0,
      std::make_unique<spice::PulseWave>(0.0, 3.3, 1 * units::ns, 100 * ps,
                                         100 * ps, 100 * units::ns)));
  const int gsw = ckt.node("gsw");
  const int gswb = ckt.node("gswb");
  cells::CellSizes drv;
  drv.wn = 2 * units::um;
  drv.wp = 5 * units::um;
  cells::add_switch_driver(ckt, "drv_p", full, din, gsw, vhi, vlo, drv);
  cells::add_switch_driver(ckt, "drv_n", full, dinb, gswb, vhi, vlo, drv);
  // The cell (cascode topology).
  ckt.add(std::make_unique<spice::Mosfet>(
      "mcs", nmos, mid, ckt.find_node("gcs"), 0, 0,
      spice::Mosfet::Geometry{cell.cell.cs.w, cell.cell.cs.l, weight}, true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mcas", nmos, top, ckt.find_node("gcas"), mid, 0,
      spice::Mosfet::Geometry{cell.cell.cas.w, cell.cell.cas.l, weight},
      true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mswp", nmos, outp, gsw, top, 0,
      spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l, weight}, true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mswn", nmos, outn, gswb, top, 0,
      spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l, weight}, true));
  ckt.add(std::make_unique<spice::Capacitor>("cint", top, 0, spec.c_int));

  const auto res = spice::transient(ckt, 2 * ps, 6 * units::ns);
  const auto v_outn = res.node_waveform(outn);
  const auto v_top = res.node_waveform(top);
  const auto v_g = res.node_waveform(gsw);

  Result r;
  // Output glitch energy relative to the ideal step at 1 ns.
  const double v_before = v_outn.front();
  const double v_after = v_outn.back();
  for (std::size_t i = 1; i < res.time.size(); ++i) {
    const double ideal = res.time[i] < 1 * units::ns ? v_before : v_after;
    r.glitch_pvs +=
        std::abs(v_outn[i] - ideal) * (res.time[i] - res.time[i - 1]) * 1e12;
  }
  double v_top0 = v_top.front(), v_top_min = v_top.front();
  for (double v : v_top) v_top_min = std::min(v_top_min, v);
  r.droop_v = v_top0 - v_top_min;
  double g_min = v_g.front(), g_max = v_g.front();
  for (double v : v_g) {
    g_min = std::min(g_min, v);
    g_max = std::max(g_max, v);
  }
  r.swing_v = g_max - g_min;
  return r;
}

}  // namespace

int main() {
  const auto full = tech::generic_035um();
  const core::DacSpec spec;
  const core::CellSizer sizer(full.nmos, spec);
  const core::SizedCell cell =
      sizer.size_cascode(0.25, 0.2, 0.2, core::MarginPolicy::kStatistical);

  print_header("E8", "Sec. 2 — reduced-swing switch driver vs feedthrough");
  std::printf("unary cell switched through transistor-level drivers; the\n"
              "driver low rail sweeps up from 0 V (ON level fixed at the\n"
              "designed Vg_sw = %.2f V)\n\n",
              cell.cell.vg_sw);
  print_row({"low rail [V]", "gate swing [V]", "node droop [V]",
             "glitch [pV*s]"},
            16);
  for (double v_low : {0.0, 0.3, 0.5, 0.7}) {
    const Result r = run(full.nmos, full, spec, cell, v_low);
    print_row({fmt(v_low, "%.1f"), fmt(r.swing_v, "%.2f"),
               fmt(r.droop_v, "%.3f"), fmt(r.glitch_pvs, "%.2f")},
              16);
  }
  std::printf("\nreading: raising the low rail cuts the internal-node\n"
              "disturbance (the feedthrough path into the cell) by ~4x,\n"
              "while the slower reduced-swing edge stretches the switching\n"
              "transient itself -- the trade the paper resolves by choosing\n"
              "the swing together with the latch crossing point ([9], E4).\n");
  return 0;
}
