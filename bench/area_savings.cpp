// E3 — Conclusions claim: the statistical saturation condition saves area
// relative to the fixed safety margin. Sweeps the fixed margin 0..0.5 V and
// reports the min-area optimum of the basic and cascode cells under each,
// plus ablations of the statistical condition: yield level and the
// eq. (11) sigma aggregation (max-of-four vs RSS).
#include <cstdio>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;

namespace {

double min_area_basic(const DesignSpaceExplorer& ex, MarginPolicy policy,
                      double margin) {
  const GridAxis g{0.05, 0.9, 40};
  const auto p = ex.optimize_basic(g, g, policy, Objective::kMinArea, margin);
  return p ? p->area : -1.0;
}

double min_area_cascode(const DesignSpaceExplorer& ex, MarginPolicy policy,
                        double margin, SigmaAggregation agg) {
  const GridAxis g{0.05, 0.6, 16};
  const auto p = ex.optimize_cascode(g, g, g, policy, Objective::kMinArea,
                                     margin, agg);
  return p ? p->area : -1.0;
}

}  // namespace

int main() {
  const auto t = tech::generic_035um().nmos;

  print_header("E3", "Conclusions — area vs safety-margin policy");
  {
    DacSpec spec;
    const CellSizer sizer(t, spec);
    const DesignSpaceExplorer ex(sizer);
    const double a_stat =
        min_area_basic(ex, MarginPolicy::kStatistical, 0.0);
    const double ac_stat = min_area_cascode(
        ex, MarginPolicy::kStatistical, 0.0, SigmaAggregation::kMax);
    std::printf("\nmin-area cell [um^2] vs fixed margin (12-bit design):\n");
    print_row({"margin [V]", "CS+SW", "vs stat", "CS+SW+CAS", "vs stat"});
    for (double margin : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
      const double ab =
          min_area_basic(ex, MarginPolicy::kFixedMargin, margin);
      const double ac = min_area_cascode(ex, MarginPolicy::kFixedMargin,
                                         margin, SigmaAggregation::kMax);
      print_row({fmt(margin, "%.2f"), ab > 0 ? um2(ab) : "-",
                 ab > 0 ? fmt(100 * (ab / a_stat - 1), "%+.1f%%") : "-",
                 ac > 0 ? um2(ac) : "-",
                 ac > 0 ? fmt(100 * (ac / ac_stat - 1), "%+.1f%%") : "-"});
    }
    std::printf("statistical condition: CS+SW %s um^2, CS+SW+CAS %s um^2\n",
                um2(a_stat).c_str(), um2(ac_stat).c_str());
  }

  std::printf("\nablation: statistical margin vs yield target "
              "(basic cell min area):\n");
  print_row({"yield", "S coeff", "area [um^2]"});
  for (double yield : {0.90, 0.99, 0.997, 0.9999}) {
    DacSpec spec;
    spec.inl_yield = yield;
    const CellSizer sizer(t, spec);
    const DesignSpaceExplorer ex(sizer);
    const double a = min_area_basic(ex, MarginPolicy::kStatistical, 0.0);
    print_row({fmt(yield, "%.4f"), fmt(sizer.s_coeff(), "%.2f"),
               a > 0 ? um2(a) : "-"});
  }

  std::printf("\nablation: eq. (11) sigma aggregation (cascode min area):\n");
  {
    DacSpec spec;
    const CellSizer sizer(t, spec);
    const DesignSpaceExplorer ex(sizer);
    const double a_max = min_area_cascode(ex, MarginPolicy::kStatistical,
                                          0.0, SigmaAggregation::kMax);
    const double a_rss = min_area_cascode(ex, MarginPolicy::kStatistical,
                                          0.0, SigmaAggregation::kRss);
    std::printf("  3*S*max(sigma)   (paper): %s um^2\n", um2(a_max).c_str());
    std::printf("  sqrt(3)*S*rss(sigma)    : %s um^2\n", um2(a_rss).c_str());
  }
  return 0;
}
