// E12 — rare-event yield estimation: chips needed to pin the INL failure
// probability of the paper's 12-bit converter to a 50% relative 95% CI,
// brute-force Monte-Carlo vs importance sampling vs stratified+antithetic
// vs the closed-form Brownian-bridge surrogate (arXiv math/0606584).
//
// For each target yield the unit sigma is calibrated from the bridge
// surrogate, so the true failure probability is known by construction
// (1e-3 / 1e-4 / 1e-5 rows). The brute-force column then shows the core
// problem: at 99.99% yield a 20k-chip run typically observes ~2 failures
// — nowhere near enough to size a design margin — while the tilted IS
// proposal turns most draws into informative tail samples and needs
// ~100x fewer chips for the same interval. The stratified estimator is
// reported for completeness; stratifying one bridge mode helps at
// mid-yield but cannot concentrate 1e-4 tails, which is exactly why the
// IS estimator exists.
//
//   bench_rare_event [chips]   (default 20000 proposal draws per row)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "dac/rare_event.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/rare_event.hpp"

using namespace csdac;
using namespace csdac::bench;

int main(int argc, char** argv) {
  const int chips = argc > 1 ? std::atoi(argv[1]) : 20000;
  if (chips < 2) {
    std::fprintf(stderr, "usage: bench_rare_event [chips >= 2]\n");
    return 2;
  }
  core::DacSpec spec;  // paper's 12-bit, b = 4 design point
  const std::uint64_t seed = 7;
  const double sigma_scale = 2.2;
  const int modes = 8;
  const int strata = 16;
  const double z95 = 1.959963984540054;
  const double targets[] = {0.999, 0.9999, 0.99999};

  print_header("E12",
               "rare-event INL yield — chips to a 50% relative 95% CI");
  std::printf("12-bit, b=4, endpoint INL ref, limit 0.5 LSB; sigma per row "
              "calibrated\nfrom the bridge surrogate; %d draws per "
              "estimator, IS tilt g=%.1f over\n%d bridge modes, %d "
              "strata.\n\n",
              chips, sigma_scale, modes, strata);
  print_row({"target_yield", "sigma_u[%]", "bf_fails", "bf_chips",
             "is_chips", "strat_chips", "is_gain", "is_p_fail", "ess%"});

  bool ok = true;
  for (const double target : targets) {
    const double c = mathx::kolmogorov_quantile(target);
    const double sigma =
        0.5 / (c * std::sqrt(spec.unary_weight() *
                             static_cast<double>(spec.num_unary())));

    const auto bf = dac::inl_yield_mc(spec, sigma, chips, seed, 0.5,
                                      dac::InlReference::kEndpoint, 0);
    const auto is =
        dac::inl_yield_is(spec, sigma, sigma_scale, modes, chips, seed, 0.5,
                          dac::InlReference::kEndpoint, 0);
    const auto strat =
        dac::inl_yield_stratified(spec, sigma, strata, chips, seed, 0.5,
                                  dac::InlReference::kEndpoint, 0);

    const double p = 1.0 - is.yield;
    const double h = p / 2.0;
    const double var_bf = p * (1.0 - p);
    const double var_is =
        (is.ci95 / z95) * (is.ci95 / z95) * static_cast<double>(is.chips);
    const double var_strat = (strat.ci95 / z95) * (strat.ci95 / z95) *
                             static_cast<double>(strat.chips);
    const auto chips_to_ci = [&](double var) {
      return var > 0.0 && h > 0.0 ? z95 * z95 * var / (h * h) : 0.0;
    };
    const double gain = var_is > 0.0 ? var_bf / var_is : 0.0;
    if (!(p > 0.0) || is.low_ess) ok = false;

    print_row({fmt(target, "%.5g"), fmt(sigma * 100, "%.4f"),
               fmt(static_cast<double>(bf.chips - bf.pass), "%.0f"),
               fmt(chips_to_ci(var_bf), "%.3g"),
               fmt(chips_to_ci(var_is), "%.3g"),
               fmt(chips_to_ci(var_strat), "%.3g"), fmt(gain, "%.0fx"),
               fmt(p, "%.2e"), fmt(100 * is.ess_fraction, "%.0f")});
  }
  std::printf("\nbridge surrogate: closed form, zero chips — it set the "
              "sigma column.\n");
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: an IS row lost the tail (p <= 0 or low ESS)\n");
    return 1;
  }
  return 0;
}
