// T1 — Table 1 / Section 3 design point: circuit-level parameters of the
// unit current cell of the 12-bit, 400 MS/s DAC for both topologies and
// both optimization criteria, under the proposed statistical saturation
// condition and under the prior-art 0.5 V fixed margin.
#include <cstdio>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "core/impedance.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;

namespace {

void print_cell(const char* label, const SizedCell& s, const DacSpec& spec,
                const tech::MosTechParams& t) {
  std::printf("\n[%s]%s\n", label, s.feasible() ? "" : "  (INFEASIBLE)");
  print_row({"device", "W [um]", "L [um]", "W/L", "VOD [V]", "Vg [V]"});
  print_row({"CS", um(s.cell.cs.w), um(s.cell.cs.l),
             fmt(s.cell.cs.aspect(), "%.3f"), fmt(s.cell.vod_cs, "%.3f"),
             fmt(s.cell.vg_cs, "%.3f")});
  print_row({"SW (x2)", um(s.cell.sw.w), um(s.cell.sw.l),
             fmt(s.cell.sw.aspect(), "%.3f"), fmt(s.cell.vod_sw, "%.3f"),
             fmt(s.cell.vg_sw, "%.3f")});
  if (s.cell.topology == CellTopology::kCsSwCas) {
    print_row({"CAS", um(s.cell.cas.w), um(s.cell.cas.l),
               fmt(s.cell.cas.aspect(), "%.3f"), fmt(s.cell.vod_cas, "%.3f"),
               fmt(s.cell.vg_cas, "%.3f")});
  }
  std::printf("  unit current     : %s uA\n", fmt(s.cell.i_unit * 1e6, "%.3f").c_str());
  std::printf("  active area      : %s um^2 (CS %s um^2)\n",
              um2(s.cell.active_area()).c_str(), um2(s.cell.cs.area()).c_str());
  std::printf("  saturation margin: %s mV (budget V_o = %g V)\n",
              fmt(s.sat.margin * 1e3, "%.1f").c_str(), s.sat.budget);
  std::printf("  poles p1/p2/p3   : %s / %s / %s MHz\n",
              mhz(s.poles.p1_hz).c_str(), mhz(s.poles.p2_hz).c_str(),
              s.poles.p3_hz > 0 ? mhz(s.poles.p3_hz).c_str() : "-");
  std::printf("  settling (0.5LSB): %s ns  -> max update rate ~ %s MS/s\n",
              ns(s.poles.settling_time(spec.nbits)).c_str(),
              mhz(1.0 / s.poles.settling_time(spec.nbits)).c_str());
  std::printf("  unit Rout (DC)   : %s MOhm\n",
              fmt(s.rout_unit * 1e-6, "%.1f").c_str());
  const double r_req = required_unit_rout(spec.nbits, spec.r_load, 0.5);
  const int wt = spec.unary_weight();
  std::printf("  SFDR bandwidth   : %s MHz (unary source vs 0.5 LSB req.)\n",
              mhz(impedance_bandwidth(t, spec, s.cell, r_req / wt, 1e3, 1e10,
                                      wt))
                  .c_str());
}

}  // namespace

int main() {
  const auto t = tech::generic_035um().nmos;
  DacSpec spec;  // the paper's design: 12 bit, b=4, 3.3 V, 1 V, 50 Ohm
  print_header("T1", "Table 1 / Sec.3 — optimum sizing of the 12-bit cell");
  std::printf("spec: n=%d, b=%d, m=%d, VDD=%.1fV, V_o=%.1fV, R_L=%.0f Ohm, "
              "C_L=%.1fpF, C_int=%.0ffF, yield=%.1f%%\n",
              spec.nbits, spec.binary_bits, spec.unary_bits(), spec.vdd,
              spec.v_out_min, spec.r_load, spec.c_load * 1e12,
              spec.c_int * 1e15, spec.inl_yield * 100);
  const CellSizer sizer(t, spec);
  std::printf("eq.(1) unit accuracy: sigma(I)/I <= %.4f%%   "
              "S coefficient: %.3f (yield_V = %.5f)\n",
              sizer.sigma_unit() * 100, sizer.s_coeff(),
              bound_yield(spec.inl_yield));

  {
    // Where does the statistical margin come from? (basic cell diagnostic)
    const SizedCell probe =
        sizer.size_basic(0.35, 0.25, MarginPolicy::kStatistical);
    const MarginBreakdown mb = basic_margin_breakdown(
        t, spec, probe.cell, sizer.sigma_unit());
    std::printf("margin variance breakdown at (0.35, 0.25): "
                "SW VT %.0f%%, SW VOD %.0f%%, CS VT %.0f%%, R_L tol %.0f%%, "
                "I_FS %.0f%%\n",
                100 * mb.vt_switch / mb.total(),
                100 * mb.vod_switch / mb.total(),
                100 * mb.vt_cs / mb.total(),
                100 * mb.load_tolerance / mb.total(),
                100 * mb.full_scale_current / mb.total());
  }

  const DesignSpaceExplorer ex(sizer);
  const GridAxis g2{0.05, 0.9, 40};
  const GridAxis g3{0.05, 0.6, 20};

  for (auto [policy, pname] :
       {std::pair{MarginPolicy::kStatistical, "proposed statistical margin"},
        std::pair{MarginPolicy::kFixedMargin, "prior art 0.5 V margin"}}) {
    std::printf("\n################ policy: %s ################\n", pname);
    for (auto [obj, oname] : {std::pair{Objective::kMinArea, "min area"},
                              std::pair{Objective::kMaxSpeed, "max speed"}}) {
      const auto basic = ex.optimize_basic(g2, g2, policy, obj, 0.5);
      if (basic) {
        const SizedCell s = sizer.size_basic(basic->vod_cs, basic->vod_sw,
                                             policy, 0.5);
        print_cell((std::string("CS+SW, ") + oname).c_str(), s, spec, t);
      }
      const auto casc = ex.optimize_cascode(g3, g3, g3, policy, obj, 0.5);
      if (casc) {
        const SizedCell s = sizer.size_cascode(
            casc->vod_cs, casc->vod_sw, casc->vod_cas, policy, 0.5);
        print_cell((std::string("CS+SW+CAS, ") + oname).c_str(), s, spec, t);
      } else {
        std::printf("\n[CS+SW+CAS, %s]  no feasible point under %s\n", oname,
                    pname);
      }
    }
  }
  return 0;
}
