// E13 — dynamic-error architecture engine: timing-limited SFDR vs the
// cell weighting, and the equivalent-timing-error (ETE) prediction vs
// the waveform-level Monte-Carlo.
//
// Part 1 sweeps architectures at a fixed per-cell timing skew: plain
// binary, thermometer-MSB segmentation at several splits, and the
// statistically optimized complete weighting (arXiv 2512.08903), all at
// the SAME total unit count (equal area).  Binary concentrates switching
// on high-weight cells (sum w^2 N is ~40x the segmented value), which
// costs ~20 dB of timing-limited SFDR; the optimized weighting recovers
// most of the segmented benefit at a fraction of the cell count.
//
// Part 2 sweeps the skew sigma for the segmented architecture and prints
// the waveform-MC mean SFDR/SNDR next to the per-realization ETE
// prediction and the closed-form expected SNDR (Beauchamp–Chugg,
// arXiv 2203.08939): the semi-analytic column tracks the full simulation
// to within a couple of dB wherever timing noise dominates, at a
// fraction of the cost (fs-rate record vs oversampled waveform).
//
//   bench_arch [inl_chips] [dyn_chips]   (defaults 400 and 4)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <variant>

#include "arch/ete.hpp"
#include "arch/weighting.hpp"
#include "bench_util.hpp"
#include "dac/spectrum.hpp"
#include "runtime/job.hpp"

using namespace csdac;
using namespace csdac::bench;

int main(int argc, char** argv) {
  const int inl_chips = argc > 1 ? std::atoi(argv[1]) : 400;
  const int dyn_chips = argc > 2 ? std::atoi(argv[2]) : 4;
  if (inl_chips < 1 || dyn_chips < 1) {
    std::fprintf(stderr, "usage: bench_arch [inl_chips] [dyn_chips]\n");
    return 2;
  }

  core::DacSpec spec;  // 10-bit keeps the weighting search interactive
  spec.nbits = 10;
  spec.binary_bits = 3;

  arch::TimingParams timing;
  timing.sigma_t = 60e-12;

  print_header("E13", "dynamic-error architecture engine");
  std::printf("10-bit, fs = %.0f MS/s, tau = %.2f ns, per-cell skew "
              "sigma_t = %.0f ps;\nequal total unit count across "
              "architectures, %d INL chips, %d timing\nchips each.\n\n",
              timing.fs * 1e-6, timing.tau * 1e9, timing.sigma_t * 1e12,
              inl_chips, dyn_chips);

  runtime::ArchCompareJob cmp;
  cmp.spec = spec;
  cmp.sigma_unit = 0.02;
  cmp.timing = timing;
  cmp.chips = inl_chips;
  cmp.dyn_chips = dyn_chips;
  cmp.seed = 5;
  cmp.seg_lo = 2;
  cmp.seg_hi = 6;
  cmp.opt_cells = 0;  // match the default segmented cell count

  const auto cmp_value = runtime::execute_job(cmp, 0, nullptr);
  const auto& table = std::get<runtime::ArchCompareResult>(cmp_value);

  print_row({"scheme", "param", "cells", "inl_yield", "sfdr_mc[dB]",
             "sfdr_ete[dB]", "activity"},
            13);
  double sfdr_binary = 0.0;
  double sfdr_best = 0.0;
  for (const auto& p : table.points) {
    const auto kind = static_cast<arch::WeightingKind>(p.scheme);
    if (kind == arch::WeightingKind::kBinary) sfdr_binary = p.sfdr_db;
    if (p.sfdr_db > sfdr_best) sfdr_best = p.sfdr_db;
    print_row({std::string(arch::weighting_name(kind)),
               fmt(static_cast<double>(p.param), "%.0f"),
               fmt(static_cast<double>(p.cells), "%.0f"),
               fmt(p.inl_yield, "%.3f"), fmt(p.sfdr_db, "%.1f"),
               fmt(p.ete_sfdr_db, "%.1f"), fmt(p.activity, "%.3g")},
              13);
  }
  std::printf("\nbest architecture buys %.1f dB of timing-limited SFDR "
              "over binary\nat the same total unit count.\n\n",
              sfdr_best - sfdr_binary);

  std::printf("ETE prediction vs waveform MC, segmented architecture:\n\n");
  print_row({"sigma_t[ps]", "sfdr_mc[dB]", "sndr_mc[dB]", "sfdr_ete[dB]",
             "sndr_cf[dB]", "yield@60dB"},
            13);

  const auto codes = dac::sine_codes(spec, 256, 21);
  const arch::CellArray arr(
      arch::make_weighting(arch::WeightingKind::kSegmented, spec.nbits,
                           spec.binary_bits));
  bool ok = true;
  for (const double sigma_t : {20e-12, 60e-12, 150e-12}) {
    runtime::DynSpectrumJob dyn;
    dyn.spec = spec;
    dyn.timing = timing;
    dyn.timing.sigma_t = sigma_t;
    dyn.chips = dyn_chips;
    dyn.seed = 404;
    const auto value = runtime::execute_job(dyn, 0, nullptr);
    const auto& r = std::get<runtime::DynSpectrumResult>(value);

    auto params = dyn.timing;
    const double sndr_cf = arch::ete_expected_sndr_db(arr, codes, params);
    // The closed form ignores the quantization floor, so only hold it to
    // the MC where timing noise dominates (the two larger sigmas).
    if (sigma_t > 50e-12 &&
        !(std::abs(sndr_cf - r.sndr_mean_db) < 6.0)) {
      ok = false;
    }
    print_row({fmt(sigma_t * 1e12, "%.0f"), fmt(r.sfdr_mean_db, "%.1f"),
               fmt(r.sndr_mean_db, "%.1f"), fmt(r.ete_sfdr_mean_db, "%.1f"),
               fmt(sndr_cf, "%.1f"), fmt(r.yield, "%.2f")},
              13);
  }
  std::printf("\nclosed form: SNDR = (A^2/2) / (fs^2 sigma_eff^2 "
              "sum w^2 N / n) — zero chips.\n");
  if (!ok) {
    std::fprintf(stderr, "FATAL: closed-form SNDR lost the waveform MC "
                         "in the timing-dominated regime\n");
    return 1;
  }
  return 0;
}
