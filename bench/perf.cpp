// P1 — engine micro-benchmarks (google-benchmark): the computational
// substrates' throughput (FFT, LU, Newton DC solve, Monte-Carlo chip
// analysis, annealing cost evaluation).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/sizer.hpp"
#include "dac/static_analysis.hpp"
#include "layout/switching.hpp"
#include "mathx/fft.hpp"
#include "mathx/linalg.hpp"
#include "mathx/rng.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace {

using namespace csdac;
using namespace csdac::units;

void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mathx::Xoshiro256 rng(1);
  std::vector<mathx::Cplx> x(n);
  for (auto& v : x) v = {mathx::uniform01(rng), 0.0};
  for (auto _ : state) {
    auto y = x;
    mathx::fft_pow2(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_FftPow2)->Arg(256)->Arg(4096);

void BM_Bluestein(benchmark::State& state) {
  mathx::Xoshiro256 rng(1);
  std::vector<mathx::Cplx> x(283);  // the Fig. 8 record length
  for (auto& v : x) v = {mathx::uniform01(rng), 0.0};
  for (auto _ : state) {
    auto y = mathx::dft(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Bluestein);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mathx::Xoshiro256 rng(2);
  mathx::MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = mathx::uniform01(rng);
    a(i, i) += n;
  }
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    auto x = mathx::LuSolver<double>::solve_once(a, b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_DcSolveCurrentCell(benchmark::State& state) {
  const auto t = tech::generic_035um().nmos;
  for (auto _ : state) {
    spice::Circuit ckt;
    const int g = ckt.node("g");
    const int d = ckt.node("d");
    const int mid = ckt.node("mid");
    ckt.add(std::make_unique<spice::VoltageSource>("vg", g, 0, 0.85));
    ckt.add(std::make_unique<spice::VoltageSource>("vd", d, 0, 2.0));
    ckt.add(std::make_unique<spice::Mosfet>(
        "mcs", t, mid, g, 0, 0, spice::Mosfet::Geometry{20 * um, 2 * um}));
    ckt.add(std::make_unique<spice::Mosfet>(
        "msw", t, d, g, mid, 0,
        spice::Mosfet::Geometry{2 * um, 0.35 * um}));
    auto sol = spice::solve_dc(ckt);
    benchmark::DoNotOptimize(sol.x.data());
  }
}
BENCHMARK(BM_DcSolveCurrentCell);

void BM_SizeBasicCell(benchmark::State& state) {
  const auto t = tech::generic_035um().nmos;
  const core::DacSpec spec;
  const core::CellSizer sizer(t, spec);
  for (auto _ : state) {
    auto s = sizer.size_basic(0.35, 0.25, core::MarginPolicy::kStatistical);
    benchmark::DoNotOptimize(&s);
  }
}
BENCHMARK(BM_SizeBasicCell);

void BM_MonteCarloChip(benchmark::State& state) {
  core::DacSpec spec;
  mathx::Xoshiro256 rng(3);
  for (auto _ : state) {
    const dac::SegmentedDac chip(
        spec, dac::draw_source_errors(spec, 0.0026, rng));
    const auto m = dac::analyze_transfer(chip.transfer());
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_MonteCarloChip);

void BM_SequenceCost(benchmark::State& state) {
  const layout::ArrayGeometry geo{16, 16};
  const auto seq =
      layout::make_sequence(layout::SwitchingScheme::kHierarchical, geo, 255);
  const auto grads = layout::standard_gradients(0.01);
  for (auto _ : state) {
    const double c = layout::sequence_cost(geo, seq, grads, 16.0);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SequenceCost);

}  // namespace

BENCHMARK_MAIN();
