// E1 — eq. (1) validation: Monte-Carlo INL (and DNL) parametric yield as a
// function of the unit-current sigma, swept around the eq. (1) design value
// for the paper's 12-bit converter. The design rule must be safe
// (measured yield >= target at the spec sigma) and tight enough that a few
// x the sigma destroys the yield.
//
// The sweep runs through the job-graph runtime with the persistent
// content-addressed cache (.csdac-cache): the first run computes every
// point on the shared parallel engine, a re-run answers the whole table
// from the store without a single chip evaluation — the cache-counter
// line at the end shows which happened.
#include <cstdio>

#include "bench_util.hpp"
#include "core/accuracy.hpp"
#include "dac/static_analysis.hpp"
#include "runtime/graph.hpp"

using namespace csdac;
using namespace csdac::bench;

int main() {
  core::DacSpec spec;  // 12 bit, b = 4
  const double target = spec.inl_yield;
  const double sigma0 = core::unit_sigma_spec(spec.nbits, target);
  const int chips = 400;
  const double mults[] = {0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0};

  print_header("E1", "eq. (1) — INL yield vs unit-current accuracy");
  std::printf("12-bit, b=4; eq.(1) spec sigma = %.4f%% for %.1f%% yield; "
              "%d chips per point, job-graph runtime with persistent "
              "cache\n\n",
              sigma0 * 100, target * 100, chips);

  runtime::RuntimeOptions ropts;
  ropts.cache_dir = ".csdac-cache";
  runtime::JobGraph graph(ropts);

  // Queue the whole sweep first: INL + DNL jobs per sigma point, plus the
  // adaptive runs — independent jobs fan out across the thread pool.
  std::vector<runtime::JobId> inl_ids, dnl_ids;
  for (const double mult : mults) {
    runtime::InlYieldJob inl;
    inl.spec = spec;
    inl.sigma_unit = mult * sigma0;
    inl.chips = chips;
    inl.seed = 1000;
    inl_ids.push_back(graph.add(inl));
    runtime::InlYieldJob dnl = inl;
    dnl.dnl = true;
    dnl_ids.push_back(graph.add(dnl));
  }
  const double adaptive_mults[] = {0.5, 1.0, 2.0, 3.0};
  std::vector<runtime::JobId> adaptive_ids;
  for (const double mult : adaptive_mults) {
    runtime::InlYieldJob job;
    job.spec = spec;
    job.sigma_unit = mult * sigma0;
    job.seed = 1000;
    job.adaptive = true;
    job.chips = 4000;  // cap
    job.ci_half_width = 0.02;
    adaptive_ids.push_back(graph.add(job));
  }
  graph.run_all();

  print_row({"sigma/spec", "sigma [%]", "INL yield", "DNL yield",
             "pred. eq(1)", "source"});
  for (std::size_t i = 0; i < inl_ids.size(); ++i) {
    const auto& inl = graph.record(inl_ids[i]);
    const auto& dnl = graph.record(dnl_ids[i]);
    const auto& iy = std::get<runtime::YieldResult>(inl.value);
    const auto& dy = std::get<runtime::YieldResult>(dnl.value);
    const double pred =
        core::inl_yield_from_sigma(spec.nbits, mults[i] * sigma0);
    print_row({fmt(mults[i], "%.2f"), fmt(mults[i] * sigma0 * 100, "%.4f"),
               fmt(iy.yield, "%.3f"), fmt(dy.yield, "%.3f"),
               fmt(pred, "%.3f"), inl.cache_hit ? "cache" : "computed"});
  }

  std::printf("\nAdaptive early stopping (cap 4000 chips, stop at 95%% CI "
              "half-width <= 0.02):\n\n");
  print_row({"sigma/spec", "yield", "ci95", "chips used", "source"});
  for (std::size_t i = 0; i < adaptive_ids.size(); ++i) {
    const auto& r = graph.record(adaptive_ids[i]);
    const auto& y = std::get<runtime::YieldResult>(r.value);
    print_row({fmt(adaptive_mults[i], "%.2f"), fmt(y.yield, "%.3f"),
               fmt(y.ci95, "%.4f"),
               fmt(static_cast<double>(y.chips), "%.0f"),
               r.cache_hit ? "cache" : "computed"});
  }

  std::printf("\nWorkspace kernel vs legacy allocating chain (same chips,\n"
              "bit-identical yields — see tools/run_benches for the JSON\n"
              "version of this measurement):\n\n");
  print_row({"path", "yield", "chips/s", "wall [ms]"});
  {
    const int cmp_chips = 1000;
    const auto ws = dac::inl_yield_mc(spec, sigma0, cmp_chips, 1000, 0.5,
                                      dac::InlReference::kBestFit, 0);
    const auto legacy = dac::inl_yield_mc_legacy(
        spec, sigma0, cmp_chips, 1000, 0.5, dac::InlReference::kBestFit, 0);
    print_row({"workspace", fmt(ws.yield, "%.3f"),
               fmt(ws.stats.items_per_second, "%.0f"),
               fmt(ws.stats.wall_seconds * 1e3, "%.1f")});
    print_row({"legacy", fmt(legacy.yield, "%.3f"),
               fmt(legacy.stats.items_per_second, "%.0f"),
               fmt(legacy.stats.wall_seconds * 1e3, "%.1f")});
    std::printf("speedup: %.2fx\n",
                ws.stats.items_per_second / legacy.stats.items_per_second);
  }

  const runtime::CacheCounters cc = graph.cache_counters();
  std::printf("\nruntime cache (.csdac-cache): %lld hits, %lld misses — "
              "re-run this bench to see the whole sweep answered from the "
              "store.\n",
              static_cast<long long>(cc.hits),
              static_cast<long long>(cc.misses));
  std::printf("\nNote: eq. (1) is conservative (it bounds the mid-scale\n"
              "accumulation; measured best-fit INL yield sits above the\n"
              "prediction). DNL yield stays ~1 wherever INL passes —\n"
              "the paper's Section 1 remark. High-yield points resolve\n"
              "their CI early and skip most of the chip budget.\n");
  return 0;
}
