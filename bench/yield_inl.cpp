// E1 — eq. (1) validation: Monte-Carlo INL (and DNL) parametric yield as a
// function of the unit-current sigma, swept around the eq. (1) design value
// for the paper's 12-bit converter. The design rule must be safe
// (measured yield >= target at the spec sigma) and tight enough that a few
// x the sigma destroys the yield. Runs on the shared parallel engine; the
// second table shows what adaptive early stopping saves per sweep point.
#include <cstdio>

#include "bench_util.hpp"
#include "core/accuracy.hpp"
#include "dac/static_analysis.hpp"

using namespace csdac;
using namespace csdac::bench;

int main() {
  core::DacSpec spec;  // 12 bit, b = 4
  const double target = spec.inl_yield;
  const double sigma0 = core::unit_sigma_spec(spec.nbits, target);
  const int chips = 400;

  print_header("E1", "eq. (1) — INL yield vs unit-current accuracy");
  std::printf("12-bit, b=4; eq.(1) spec sigma = %.4f%% for %.1f%% yield; "
              "%d chips per point, all hardware threads\n\n",
              sigma0 * 100, target * 100, chips);
  print_row({"sigma/spec", "sigma [%]", "INL yield", "DNL yield",
             "pred. eq(1)", "chips/s"});
  for (double mult : {0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0}) {
    const double sigma = mult * sigma0;
    const auto inl = dac::inl_yield_mc(spec, sigma, chips, /*seed=*/1000,
                                       0.5, dac::InlReference::kBestFit,
                                       /*threads=*/0);
    const auto dnl = dac::dnl_yield_mc(spec, sigma, chips, /*seed=*/1000,
                                       0.5, /*threads=*/0);
    const double pred = core::inl_yield_from_sigma(spec.nbits, sigma);
    print_row({fmt(mult, "%.2f"), fmt(sigma * 100, "%.4f"),
               fmt(inl.yield, "%.3f"), fmt(dnl.yield, "%.3f"),
               fmt(pred, "%.3f"), fmt(inl.stats.items_per_second, "%.0f")});
  }

  std::printf("\nAdaptive early stopping (cap 4000 chips, stop at 95%% CI "
              "half-width <= 0.02):\n\n");
  print_row({"sigma/spec", "yield", "ci95", "evaluated", "skipped",
             "chips/s"});
  for (double mult : {0.5, 1.0, 2.0, 3.0}) {
    dac::AdaptiveMcOptions opts;
    opts.max_chips = 4000;
    opts.ci_half_width = 0.02;
    opts.threads = 0;
    const auto y =
        dac::inl_yield_mc_adaptive(spec, mult * sigma0, opts, /*seed=*/1000);
    print_row({fmt(mult, "%.2f"), fmt(y.yield, "%.3f"),
               fmt(y.ci95, "%.4f"),
               fmt(static_cast<double>(y.stats.evaluated), "%.0f"),
               fmt(static_cast<double>(y.stats.skipped), "%.0f"),
               fmt(y.stats.items_per_second, "%.0f")});
  }

  std::printf("\nWorkspace kernel vs legacy allocating chain (same chips,\n"
              "bit-identical yields — see tools/run_benches for the JSON\n"
              "version of this measurement):\n\n");
  print_row({"path", "yield", "chips/s", "wall [ms]"});
  {
    const int cmp_chips = 1000;
    const auto ws = dac::inl_yield_mc(spec, sigma0, cmp_chips, 1000, 0.5,
                                      dac::InlReference::kBestFit, 0);
    const auto legacy = dac::inl_yield_mc_legacy(
        spec, sigma0, cmp_chips, 1000, 0.5, dac::InlReference::kBestFit, 0);
    print_row({"workspace", fmt(ws.yield, "%.3f"),
               fmt(ws.stats.items_per_second, "%.0f"),
               fmt(ws.stats.wall_seconds * 1e3, "%.1f")});
    print_row({"legacy", fmt(legacy.yield, "%.3f"),
               fmt(legacy.stats.items_per_second, "%.0f"),
               fmt(legacy.stats.wall_seconds * 1e3, "%.1f")});
    std::printf("speedup: %.2fx\n",
                ws.stats.items_per_second / legacy.stats.items_per_second);
  }

  std::printf("\nNote: eq. (1) is conservative (it bounds the mid-scale\n"
              "accumulation; measured best-fit INL yield sits above the\n"
              "prediction). DNL yield stays ~1 wherever INL passes —\n"
              "the paper's Section 1 remark. High-yield points resolve\n"
              "their CI early and skip most of the chip budget.\n");
  return 0;
}
