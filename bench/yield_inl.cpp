// E1 — eq. (1) validation: Monte-Carlo INL (and DNL) parametric yield as a
// function of the unit-current sigma, swept around the eq. (1) design value
// for the paper's 12-bit converter. The design rule must be safe
// (measured yield >= target at the spec sigma) and tight enough that a few
// x the sigma destroys the yield.
#include <cstdio>

#include "bench_util.hpp"
#include "core/accuracy.hpp"
#include "dac/static_analysis.hpp"

using namespace csdac;
using namespace csdac::bench;

int main() {
  core::DacSpec spec;  // 12 bit, b = 4
  const double target = spec.inl_yield;
  const double sigma0 = core::unit_sigma_spec(spec.nbits, target);
  const int chips = 400;

  print_header("E1", "eq. (1) — INL yield vs unit-current accuracy");
  std::printf("12-bit, b=4; eq.(1) spec sigma = %.4f%% for %.1f%% yield; "
              "%d chips per point\n\n",
              sigma0 * 100, target * 100, chips);
  print_row({"sigma/spec", "sigma [%]", "INL yield", "DNL yield",
             "pred. eq(1)"});
  for (double mult : {0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0}) {
    const double sigma = mult * sigma0;
    const auto inl = dac::inl_yield_mc(spec, sigma, chips, /*seed=*/1000);
    const auto dnl = dac::dnl_yield_mc(spec, sigma, chips, /*seed=*/1000);
    const double pred = core::inl_yield_from_sigma(spec.nbits, sigma);
    print_row({fmt(mult, "%.2f"), fmt(sigma * 100, "%.4f"),
               fmt(inl.yield, "%.3f"), fmt(dnl.yield, "%.3f"),
               fmt(pred, "%.3f")});
  }
  std::printf("\nNote: eq. (1) is conservative (it bounds the mid-scale\n"
              "accumulation; measured best-fit INL yield sits above the\n"
              "prediction). DNL yield stays ~1 wherever INL passes —\n"
              "the paper's Section 1 remark.\n");
  return 0;
}
