// E9 — extension experiment: two-tone intermodulation of the behavioral
// converter vs unit output impedance, completing the [7,8] impedance-
// distortion picture. The compressive droop's even-order products cancel
// differentially; the odd-order IMD3 does not — it sets the multi-carrier
// (communications) linearity the paper's intro motivates.
#include <cstdio>

#include "bench_util.hpp"
#include "core/accuracy.hpp"
#include "dac/dynamic.hpp"
#include "dac/spectrum.hpp"

using namespace csdac;
using namespace csdac::bench;

namespace {

struct Point {
  double imd3_se = 0.0;
  double imd3_diff = 0.0;
  double imd2_se = 0.0;
  double imd2_diff = 0.0;
};

Point measure(const core::DacSpec& spec, double rout_unit) {
  dac::DynamicParams p;
  p.oversample = 2;
  p.tau = 1e-12;
  p.rout_unit = rout_unit;
  dac::DynamicSimulator sim(
      dac::SegmentedDac(spec, dac::ideal_sources(spec)), p);
  const auto codes = dac::two_tone_codes(spec, 2048, 201, 223);
  auto sampled = [&](bool diff) {
    const auto wave =
        diff ? sim.waveform_differential(codes) : sim.waveform(codes);
    std::vector<double> out;
    for (std::size_t i = 1; i < wave.size(); i += 2) out.push_back(wave[i]);
    return out;
  };
  Point pt;
  const auto r_se = dac::analyze_imd(sampled(false), 300e6, 201, 223);
  const auto r_diff = dac::analyze_imd(sampled(true), 300e6, 201, 223);
  pt.imd3_se = r_se.imd3_db;
  pt.imd3_diff = r_diff.imd3_db;
  pt.imd2_se = r_se.imd2_db;
  pt.imd2_diff = r_diff.imd2_db;
  return pt;
}

}  // namespace

int main() {
  core::DacSpec spec;
  print_header("E9", "extension — two-tone IMD vs unit output impedance");
  std::printf("tones at 29.4 / 32.7 MHz (bins 201/223 of 2048), 300 MS/s, "
              "ideal sources (droop only)\n\n");
  print_row({"Rout/unit [MOhm]", "IMD2 SE [dBc]", "IMD2 diff [dBc]",
             "IMD3 SE [dBc]", "IMD3 diff [dBc]"},
            18);
  for (double rout : {2e6, 5e6, 20e6, 100e6, 1e9}) {
    const Point pt = measure(spec, rout);
    print_row({fmt(rout * 1e-6, "%.0f"), fmt(pt.imd2_se, "%.1f"),
               fmt(pt.imd2_diff, "%.1f"), fmt(pt.imd3_se, "%.1f"),
               fmt(pt.imd3_diff, "%.1f")},
              18);
  }
  std::printf("\nreading: the differential output crushes the even-order "
              "IMD2 but leaves IMD3 untouched; IMD3 improves with the "
              "third-order Rout scaling — multi-carrier linearity still "
              "demands the cascode's high output impedance.\n");
  return 0;
}
