// F5/§4 — systematic-mismatch compensation at layout time: residual INL of
// the 255-source unary array (16x16 grid) under linear and quadratic
// gradients for every switching scheme, with and without the 16-sub-unit
// double-centroid split, including the annealed optimum sequence the paper
// uses. Also emits the floorplan artefact sizes (Fig. 5 / Fig. 6 flow).
#include <cstdio>

#include "bench_util.hpp"
#include "core/spec.hpp"
#include "layout/floorplan.hpp"
#include "layout/switching.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::layout;

int main() {
  const ArrayGeometry geo{16, 16};
  const int n_sources = 255;
  const double weight = 16.0;  // unary weight in LSB (12-bit, b = 4)
  const double amp = 0.01;     // 1 % edge-to-center gradient

  print_header("F5", "Sec. 4 — switching schemes vs systematic gradients");
  std::printf("array 16x16, 255 unary sources of %g LSB, gradient amplitude "
              "%.1f%% at the edge; entries: max |INL| [LSB]\n\n",
              weight, amp * 100);

  const std::vector<std::pair<SwitchingScheme, const char*>> schemes = {
      {SwitchingScheme::kRowMajor, "row-major"},
      {SwitchingScheme::kBoustrophedon, "boustrophedon"},
      {SwitchingScheme::kSymmetric, "symmetric"},
      {SwitchingScheme::kHierarchical, "hierarchical"},
      {SwitchingScheme::kRandom, "random"},
      {SwitchingScheme::kCentroidBalanced, "centroid-walk"},
  };
  const std::vector<std::pair<GradientSpec, const char*>> gradients = {
      {GradientSpec{amp, 0, 0}, "lin-x"},
      {GradientSpec{0, amp, 0}, "lin-y"},
      {GradientSpec{amp * 0.7071, amp * 0.7071, 0}, "diag"},
      {GradientSpec{0, 0, amp}, "quad"},
      {GradientSpec{amp * 0.5, amp * 0.3, amp * 0.5}, "mixed"},
  };

  auto eval = [&](const std::vector<int>& seq, bool dc) {
    std::vector<double> out;
    for (const auto& [g, name] : gradients) {
      out.push_back(
          systematic_linearity(sequence_errors(geo, seq, g, dc), weight)
              .inl_max);
    }
    return out;
  };

  auto print_scheme = [&](const char* name, const std::vector<int>& seq,
                          bool dc) {
    const auto inl = eval(seq, dc);
    std::vector<std::string> row = {std::string(name) + (dc ? " +DC" : "")};
    double worst = 0;
    for (double v : inl) {
      row.push_back(fmt(v, "%.3f"));
      worst = std::max(worst, v);
    }
    row.push_back(fmt(worst, "%.3f"));
    print_row(row, 18);
  };

  {
    std::vector<std::string> head = {"scheme"};
    for (const auto& [g, name] : gradients) head.push_back(name);
    head.push_back("worst");
    print_row(head, 18);
  }
  for (const auto& [scheme, name] : schemes) {
    const auto seq = make_sequence(scheme, geo, n_sources, /*seed=*/7);
    print_scheme(name, seq, false);
  }
  // Annealed optimum (Cong-Geiger style objective over the gradient set):
  // independent restarts, best-of, on the shared parallel engine.
  AnnealOptions opts;
  opts.iterations = 12000;
  opts.seed = 7;
  opts.restarts = 4;
  opts.threads = 0;  // all hardware threads
  std::vector<GradientSpec> gset;
  for (const auto& [g, name] : gradients) gset.push_back(g);
  mathx::RunStats par_stats;
  const auto optimized =
      optimize_sequence(geo, n_sources, gset, weight, opts, &par_stats);
  print_scheme("optimized(SA)", optimized, false);
  {
    AnnealOptions serial = opts;
    serial.threads = 1;
    mathx::RunStats serial_stats;
    const auto check =
        optimize_sequence(geo, n_sources, gset, weight, serial, &serial_stats);
    std::printf("\n%d-restart anneal on the shared engine: %.2fx speedup "
                "(%.2f s -> %.2f s on %d threads; winner thread-count "
                "independent: %s)\n",
                opts.restarts,
                serial_stats.wall_seconds / par_stats.wall_seconds,
                serial_stats.wall_seconds, par_stats.wall_seconds,
                par_stats.threads, check == optimized ? "yes" : "NO");
  }

  std::printf("\nwith the 16-sub-unit double-centroid split (linear terms "
              "cancel inside each source):\n");
  for (const auto& [scheme, name] : schemes) {
    const auto seq = make_sequence(scheme, geo, n_sources, 7);
    print_scheme(name, seq, true);
  }
  print_scheme("optimized(SA)", optimized, true);

  // Fig. 5 / Fig. 6 artefacts.
  core::DacSpec spec;
  FloorplanOptions fopts;
  fopts.scheme = SwitchingScheme::kHierarchical;
  const Floorplan fp = build_floorplan(spec, fopts);
  std::printf("\nFig.5 floorplan artefacts: %zu components, %zu nets, "
              "LEF %zu bytes, DEF %zu bytes\n",
              fp.def.components.size(), fp.def.nets.size(),
              floorplan_lef(fp).size(), floorplan_def(fp).size());
  return 0;
}
