// A1 — Section 1 architecture selection (after [4,5]): segmentation sweep
// of the 12-bit converter. The analog accuracy is split-independent; the
// decoder area explodes with the thermometer bits while DNL and glitch grow
// with the binary bits. The paper picks b = 4, m = 8.
#include <cstdio>

#include "bench_util.hpp"
#include "core/architecture.hpp"
#include "digital/decoder.hpp"
#include "core/sizer.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;

int main() {
  const auto t = tech::generic_035um().nmos;
  DacSpec spec;
  const CellSizer sizer(t, spec);
  // Unit-cell area from a representative min-area statistical design.
  const SizedCell cell = sizer.size_basic(0.5, 0.25,
                                          MarginPolicy::kStatistical);

  print_header("A1", "Sec. 1 — segmentation (b binary / m unary) tradeoff");
  std::printf("unit cell area %s um^2, sigma_u = %.4f%%\n\n",
              um2(cell.cell.active_area()).c_str(),
              sizer.sigma_unit() * 100);
  print_row({"b", "m", "decoder[um2]", "latch[um2]", "analog[um2]",
             "total[um2]", "DNLsig[LSB]", "glitch", "gates(meas)"});
  const auto pts = explore_segmentation(spec.nbits, cell.cell.active_area(),
                                        sizer.sigma_unit());
  for (const auto& p : pts) {
    // Cross-check the area model against the actual gate-level decoder
    // (built for m >= 2; the row/column split is as even as possible).
    std::string gates = "-";
    if (p.unary_bits >= 2 && p.unary_bits <= 11) {
      const int rb = p.unary_bits / 2;
      const int cb = p.unary_bits - rb;
      gates = fmt(digital::ThermometerDecoder(rb, cb).gate_count(), "%.0f");
    }
    print_row({fmt(p.binary_bits, "%.0f"), fmt(p.unary_bits, "%.0f"),
               um2(p.decoder_area), um2(p.latch_area), um2(p.analog_area),
               um2(p.total_area), fmt(p.dnl_sigma_lsb, "%.4f"),
               fmt(p.glitch_metric, "%.0f"), gates});
  }
  const int best = optimal_binary_bits(pts, spec.inl_yield);
  std::printf("\noptimal b (min area s.t. DNL yield and glitch budget 2^4): "
              "%d   (paper's design: b = 4)\n",
              best);
  return 0;
}
