// Dense-vs-sparse MNA engine scaling on the transistor-level DAC arrays,
// plus the Monte-Carlo warm-start study. Three questions, one table each:
//
//  1. How does one DC operating-point solve scale with resolution when the
//     dense O(n^3) elimination is replaced by the min-degree sparse LU
//     with symbolic reuse? (The paper's full 12-bit segmented array is the
//     headline row: the sparse path must be >= 10x there.)
//  2. What does symbolic-factorization reuse buy within a corner sweep —
//     factorizations vs numeric refactorizations?
//  3. What does corner-to-corner Newton warm starting buy in iterations
//     and wall time for the SPICE-in-the-loop mismatch MC?
//
// Cross-checks are built in: the dense and sparse solutions must agree to
// 1e-9 on every node, and warm-start MC must produce the identical yield
//.. both are correctness bugs if violated, so the bench aborts.
//
//   bench_spice_mna [--smoke]
//
// --smoke drops the largest arrays so CI stays fast.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sizer.hpp"
#include "dacgen/dacgen.hpp"
#include "dacgen/spice_mc.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"

using namespace csdac;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SolveTiming {
  double wall_s = 0.0;
  spice::SolveStats stats;
};

/// Times `reps` independent DC solves of the same built circuit under one
/// solver policy; sparse solves share a context so the symbolic work is
/// paid once, which is exactly how the MC loop uses the engine.
SolveTiming time_dc(spice::Circuit& ckt, spice::LinearSolverKind kind,
                    int reps) {
  SolveTiming t;
  spice::SolverContext ctx;
  spice::NewtonOptions o;
  o.solver = kind;
  o.sparse_threshold = 1;
  o.context = &ctx;
  o.stats = &t.stats;
  const double t0 = now_s();
  for (int r = 0; r < reps; ++r) (void)spice::solve_dc(ckt, o);
  t.wall_s = (now_s() - t0) / reps;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_spice_mna [--smoke]\n");
      return 2;
    }
  }
  const tech::MosTechParams& t = tech::generic_035um().nmos;

  bench::print_header("SPICE-MNA",
                      "sparse engine scaling, symbolic reuse, warm starts");

  // --- 1. Dense vs sparse DC solve across array resolutions --------------
  std::printf("\nDC operating point, cascode segmented array, dense vs "
              "sparse (avg per solve):\n");
  bench::print_row({"nbits", "cells", "unknowns", "dense_ms", "sparse_ms",
                    "speedup", "lu_ops"},
                   10);
  struct Pt {
    int nbits, binary;
  };
  std::vector<Pt> sizes = {{6, 2}, {8, 3}, {10, 3}};
  if (!smoke) sizes.push_back({12, 4});  // the paper's full array
  double headline_speedup = 0.0;
  for (const auto& s : sizes) {
    core::DacSpec spec;
    spec.nbits = s.nbits;
    spec.binary_bits = s.binary;
    const core::CellSizer sizer(t, spec);
    const core::SizedCell cell = sizer.size_cascode(0.25, 0.2, 0.2);
    const dacgen::TransistorLevelDac dac(spec, cell, t);
    auto bc = dac.build((1 << s.nbits) / 2);
    const int n = bc.circuit->num_unknowns();

    // The MC loop pays the symbolic factorization once per topology and
    // then replays it for thousands of corner solves — so the sparse
    // steady state (what reuse actually delivers) needs several reps to
    // show through, while one rep would bill the whole symbolic setup to
    // a single solve.
    const int reps = s.nbits >= 10 ? 4 : 10;
    const SolveTiming dense =
        time_dc(*bc.circuit, spice::LinearSolverKind::kDense, reps);
    const SolveTiming sparse =
        time_dc(*bc.circuit, spice::LinearSolverKind::kSparse, reps);

    // Equivalence guard: both policies must land on the same solution.
    const auto xd = spice::solve_dc(
        *bc.circuit,
        [] {
          spice::NewtonOptions o;
          o.solver = spice::LinearSolverKind::kDense;
          return o;
        }());
    const auto xs = spice::solve_dc(
        *bc.circuit,
        [] {
          spice::NewtonOptions o;
          o.solver = spice::LinearSolverKind::kSparse;
          o.sparse_threshold = 1;
          return o;
        }());
    double max_dx = 0.0;
    for (std::size_t i = 0; i < xd.x.size(); ++i) {
      max_dx = std::max(max_dx, std::fabs(xd.x[i] - xs.x[i]));
    }
    if (max_dx > 1e-9) {
      std::fprintf(stderr,
                   "FATAL: dense/sparse solutions diverge (%.3e) at %d "
                   "bits\n",
                   max_dx, s.nbits);
      return 1;
    }

    const double speedup =
        sparse.wall_s > 0.0 ? dense.wall_s / sparse.wall_s : 0.0;
    headline_speedup = speedup;  // last (largest) row
    bench::print_row(
        {std::to_string(s.nbits),
         std::to_string(spec.num_unary() + spec.binary_bits),
         std::to_string(n), bench::fmt(dense.wall_s * 1e3, "%.2f"),
         bench::fmt(sparse.wall_s * 1e3, "%.2f"),
         bench::fmt(speedup, "%.1fx"),
         std::to_string(sparse.stats.factorizations +
                        sparse.stats.refactorizations)},
        10);
  }
  std::printf("headline (largest array) sparse speedup: %.1fx\n",
              headline_speedup);

  // --- 2 + 3. Symbolic reuse and warm starts in the mismatch MC ----------
  core::DacSpec mc_spec;
  mc_spec.nbits = smoke ? 5 : 6;
  mc_spec.binary_bits = 2;
  const core::CellSizer mc_sizer(t, mc_spec);
  const core::SizedCell mc_cell = mc_sizer.size_cascode(0.25, 0.2, 0.2);
  dacgen::SpiceMcOptions mo;
  mo.chips = smoke ? 4 : 8;
  mo.seed = 1000;
  mo.solver = spice::LinearSolverKind::kSparse;

  std::printf("\nSPICE mismatch MC (%d-bit, %d corners), warm start off vs "
              "on:\n",
              mc_spec.nbits, static_cast<int>(mo.chips));
  mo.warm_start = false;
  const double c0 = now_s();
  const auto cold = dacgen::spice_mismatch_mc(mc_spec, mc_cell, t, mo);
  const double cold_s = now_s() - c0;
  mo.warm_start = true;
  const double w0 = now_s();
  const auto warm = dacgen::spice_mismatch_mc(mc_spec, mc_cell, t, mo);
  const double warm_s = now_s() - w0;

  if (warm.yield != cold.yield || warm.pass != cold.pass) {
    std::fprintf(stderr,
                 "FATAL: warm-start changed the MC verdict (yield %.4f vs "
                 "%.4f)\n",
                 warm.yield, cold.yield);
    return 1;
  }

  bench::print_row({"mode", "newton_it", "factor", "refactor", "dev_evals",
                    "wall_ms", "hit_rate"},
                   11);
  const auto mc_row = [&](const char* mode, const dacgen::SpiceMcResult& r,
                          double wall) {
    bench::print_row({mode, std::to_string(r.newton_iters),
                      std::to_string(r.factorizations),
                      std::to_string(r.refactorizations),
                      std::to_string(r.device_evals),
                      bench::fmt(wall * 1e3, "%.1f"),
                      bench::fmt(r.warm_start_hit_rate, "%.2f")},
                     11);
  };
  mc_row("cold", cold, cold_s);
  mc_row("warm", warm, warm_s);
  const double iter_reduction =
      warm.newton_iters > 0
          ? static_cast<double>(cold.newton_iters) /
                static_cast<double>(warm.newton_iters)
          : 0.0;
  std::printf("warm-start Newton-iteration reduction: %.2fx "
              "(yield identical: %.4f)\n",
              iter_reduction, warm.yield);
  if (iter_reduction <= 1.0) {
    std::fprintf(stderr,
                 "FATAL: warm starting did not reduce Newton iterations\n");
    return 1;
  }
  return 0;
}
