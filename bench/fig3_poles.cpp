// F3b — Fig. 3 (lower graph): the minimum of the two pole frequencies of
// eq. (13) mapped over the (VOD_CS, VOD_SW) plane (basic cell), with the
// feasible region bounded by the statistical saturation condition, plus
// the two optimum design points (max speed, min area).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;

int main() {
  const auto t = tech::generic_035um().nmos;
  const DacSpec spec;
  const CellSizer sizer(t, spec);
  const DesignSpaceExplorer ex(sizer);

  print_header("F3b",
               "Fig. 3 (lower) — min pole frequency map, CS+SW cell");
  std::printf("rows: VOD_CS, cols: VOD_SW; entries: min(p1,p2) [MHz], "
              "'.' = infeasible under eq. (9)\n\n");

  const GridAxis axis{0.05, 0.9, 18};
  const auto pts = ex.sweep_basic(axis, axis, MarginPolicy::kStatistical);

  std::printf("%8s", "");
  for (int j = 0; j < axis.steps; j += 2) {
    std::printf("%8.2f", axis.at(j));
  }
  std::printf("\n");
  for (int i = 0; i < axis.steps; i += 1) {
    std::printf("%8.2f", axis.at(i));
    for (int j = 0; j < axis.steps; j += 2) {
      const auto& p = pts[static_cast<std::size_t>(i * axis.steps + j)];
      if (p.feasible) {
        std::printf("%8.0f", p.f_min_hz * 1e-6);
      } else {
        std::printf("%8s", ".");
      }
    }
    std::printf("\n");
  }

  // Heat map of the same surface (denser grid): darker = faster.
  {
    const GridAxis hm{0.05, 0.9, 56};
    const auto grid = ex.sweep_basic(hm, hm, MarginPolicy::kStatistical);
    double fmax = 0.0;
    for (const auto& p : grid) {
      if (p.feasible) fmax = std::max(fmax, p.f_min_hz);
    }
    const char* shades = " .:-=+*#%@";
    std::printf("\nmin-pole heat map ('@' = %.0f MHz, blank = infeasible; "
                "x: VOD_SW ->, y: VOD_CS ^):\n",
                fmax * 1e-6);
    for (int i = hm.steps - 1; i >= 0; --i) {
      std::printf("  %4.2f |", hm.at(i));
      for (int j = 0; j < hm.steps; ++j) {
        const auto& p = grid[static_cast<std::size_t>(i * hm.steps + j)];
        char c = ' ';
        if (p.feasible && fmax > 0.0) {
          const int level = static_cast<int>(9.0 * p.f_min_hz / fmax);
          c = shades[std::clamp(level, 0, 9)];
        }
        std::printf("%c", c);
      }
      std::printf("\n");
    }
    std::printf("        %4.2f%*s%4.2f (VOD_SW)\n", hm.at(0), hm.steps - 8,
                "", hm.at(hm.steps - 1));
  }

  const GridAxis fine{0.05, 0.9, 60};
  const auto speed = ex.optimize_basic(fine, fine, MarginPolicy::kStatistical,
                                       Objective::kMaxSpeed);
  const auto area = ex.optimize_basic(fine, fine, MarginPolicy::kStatistical,
                                      Objective::kMinArea);
  const auto speed_fixed = ex.optimize_basic(
      fine, fine, MarginPolicy::kFixedMargin, Objective::kMaxSpeed, 0.5);
  const auto area_fixed = ex.optimize_basic(
      fine, fine, MarginPolicy::kFixedMargin, Objective::kMinArea, 0.5);

  std::printf("\noptimum design points:\n");
  print_row({"criterion", "policy", "VOD_CS", "VOD_SW", "fmin [MHz]",
             "area [um^2]"});
  auto show = [&](const char* crit, const char* pol,
                  const std::optional<DesignPoint>& p) {
    if (!p) {
      print_row({crit, pol, "-", "-", "-", "-"});
      return;
    }
    print_row({crit, pol, fmt(p->vod_cs, "%.3f"), fmt(p->vod_sw, "%.3f"),
               mhz(p->f_min_hz), um2(p->area)});
  };
  show("max speed", "statistical", speed);
  show("max speed", "0.5V margin", speed_fixed);
  show("min area", "statistical", area);
  show("min area", "0.5V margin", area_fixed);
  if (area && area_fixed) {
    std::printf("\narea saving of the proposed condition (min-area optimum): "
                "%.1f%%\n",
                100.0 * (1.0 - area->area / area_fixed->area));
  }
  return 0;
}
