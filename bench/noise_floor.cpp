// E5 — extension experiment (not in the paper): thermal-noise floor of the
// designed converter. The output-referred noise of the full-scale macro
// cell (all units on) plus the load resistors is integrated over the
// output-pole bandwidth and compared with the 12-bit quantization floor —
// verifying that the sized design is quantization/mismatch limited, not
// noise limited, which the paper implicitly assumes.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/sizer.hpp"
#include "spice/devices.hpp"
#include "spice/noise.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::units;

int main() {
  const auto t = tech::generic_035um().nmos;
  const core::DacSpec spec;
  const core::CellSizer sizer(t, spec);
  const core::SizedCell cell =
      sizer.size_cascode(0.25, 0.2, 0.2, core::MarginPolicy::kStatistical);

  print_header("E5", "extension — thermal noise floor of the converter");

  spice::Circuit ckt;
  const double m = spec.total_units();
  const int out = ckt.node("out");
  const int mid1 = ckt.node("mid1");
  const int mid2 = ckt.node("mid2");
  const int vterm = ckt.node("vterm");
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vterm", vterm, 0, spec.v_out_min + spec.v_swing));
  ckt.add(std::make_unique<spice::Resistor>("rl", vterm, out, spec.r_load));
  ckt.add(std::make_unique<spice::Capacitor>("cl", out, 0, spec.c_load));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcs", ckt.node("gcs"), 0,
                                                 cell.cell.vg_cs));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcas", ckt.node("gcas"),
                                                 0, cell.cell.vg_cas));
  ckt.add(std::make_unique<spice::VoltageSource>("vgsw", ckt.node("gsw"), 0,
                                                 cell.cell.vg_sw));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mcs", t, mid1, ckt.find_node("gcs"), 0, 0,
      spice::Mosfet::Geometry{cell.cell.cs.w, cell.cell.cs.l, m}, true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mcas", t, mid2, ckt.find_node("gcas"), mid1, 0,
      spice::Mosfet::Geometry{cell.cell.cas.w, cell.cell.cas.l, m}, true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "msw", t, out, ckt.find_node("gsw"), mid2, 0,
      spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l, m}, true));
  spice::solve_dc(ckt);

  const auto freqs = spice::log_space(1e3, 1e11, 24);
  const auto noise = spice::noise_analysis(ckt, out, freqs);

  std::printf("output noise PSD (full-scale code, all units on):\n");
  print_row({"f [MHz]", "PSD [nV/rtHz]"});
  for (std::size_t i = 0; i < freqs.size(); i += 5) {
    print_row({fmt(freqs[i] * 1e-6, "%.4g"),
               fmt(std::sqrt(noise.total_psd[i]) * 1e9, "%.3f")});
  }

  const double vn = noise.integrated_rms(1e3, 1e11);
  const double v_sig_rms = spec.v_swing / 2.0 / std::sqrt(2.0);
  const double snr_thermal = 20.0 * std::log10(v_sig_rms / vn);
  const double snr_quant = 6.02 * spec.nbits + 1.76;
  std::printf("\nintegrated output noise      : %.1f uVrms\n", vn * 1e6);
  std::printf("thermal SNR (full-scale sine): %.1f dB\n", snr_thermal);
  std::printf("12-bit quantization SNR      : %.1f dB\n", snr_quant);
  std::printf("=> the design is %s limited, as the paper assumes.\n",
              snr_thermal > snr_quant ? "quantization/mismatch" : "NOISE");
  return 0;
}
