// Shared output helpers for the reproduction benches: aligned tables and
// common formatting so every bench prints self-describing, diffable text.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace csdac::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, const char* f = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

inline std::string um2(double area_m2) {
  return fmt(area_m2 * 1e12, "%.2f");  // m^2 -> um^2
}

inline std::string um(double m) { return fmt(m * 1e6, "%.3f"); }

inline std::string mhz(double hz) { return fmt(hz * 1e-6, "%.1f"); }

inline std::string ns(double s) { return fmt(s * 1e9, "%.3f"); }

}  // namespace csdac::bench
