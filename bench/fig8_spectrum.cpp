// F8 — Fig. 8: output spectrum of the designed 12-bit DAC for a ~53 MHz
// sinusoid sampled at 300 MS/s, matching effects included. The paper takes
// the DFT of 50 periods of the differential output; we synthesize a
// coherent record with the behavioral model parameterized from the sized
// cell (settling tau from eq. 13, unit output impedance from the cascode
// ladder model) and a Monte-Carlo mismatch draw at the eq. (1) spec.
#include <cstdio>

#include "ascii_plot.hpp"
#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "core/impedance.hpp"
#include "dac/dynamic.hpp"
#include "dac/spectrum.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;

int main() {
  const auto t = tech::generic_035um().nmos;
  const DacSpec spec;
  const CellSizer sizer(t, spec);
  const DesignSpaceExplorer ex(sizer);

  print_header("F8", "Fig. 8 — 12-bit DAC spectrum, 53 MHz @ 300 MS/s");

  // Design point: speed-optimized cascode cell (the paper's choice).
  const GridAxis g3{0.05, 0.6, 12};
  const auto pt = ex.optimize_cascode(g3, g3, g3, MarginPolicy::kStatistical,
                                      Objective::kMaxSpeed);
  if (!pt) {
    std::printf("no feasible cascode design point\n");
    return 1;
  }
  const SizedCell cell = sizer.size_cascode(
      pt->vod_cs, pt->vod_sw, pt->vod_cas, MarginPolicy::kStatistical);

  dac::DynamicParams dp;
  dp.fs = 300e6;
  dp.oversample = 8;
  dp.tau = cell.poles.tau();
  // Unit impedance at the signal frequency limits the SFDR.
  dp.rout_unit = unit_zout_mag(t, spec, cell.cell, 53e6);
  dp.binary_skew = 20e-12;
  dp.feedthrough_lsb = 0.05;

  std::printf("cell: tau=%.3f ns, |Z_unit(53MHz)|=%.1f MOhm, skew=20 ps\n",
              dp.tau * 1e9, dp.rout_unit * 1e-6);

  // Coherent capture: 1024 samples x 181 cycles -> fin = 53.03 MHz;
  // the paper's "50 periods" record is also analyzed below.
  mathx::Xoshiro256 rng(2003);
  const auto errors = dac::draw_source_errors(spec, sizer.sigma_unit(), rng);
  const dac::SegmentedDac model(spec, errors);
  dac::DynamicSimulator sim(model, dp);

  auto analyze = [&](int n_samples, int cycles, bool differential) {
    const auto codes = dac::sine_codes(spec, n_samples, cycles);
    const auto wave = differential ? sim.waveform_differential(codes)
                                   : sim.waveform(codes);
    std::vector<double> sampled;
    for (std::size_t i = dp.oversample - 1; i < wave.size();
         i += static_cast<std::size_t>(dp.oversample)) {
      sampled.push_back(wave[i]);
    }
    return dac::analyze_spectrum(sampled, dp.fs);
  };

  // The paper analyzes the DIFFERENTIAL output (even-order distortion of
  // the finite output impedance cancels); the single-ended result is
  // printed for comparison.
  const auto r = analyze(1024, 181, true);
  const auto r_se = analyze(1024, 181, false);
  std::printf("\nrecord: 1024 samples, 181 cycles (fin = %.2f MHz)\n",
              181.0 / 1024.0 * 300.0);
  std::printf("  differential : SFDR = %.1f dB  SNDR = %.1f dB  "
              "THD = %.1f dB  ENOB = %.2f bits\n",
              r.sfdr_db, r.sndr_db, r.thd_db, r.enob);
  std::printf("  single-ended : SFDR = %.1f dB  SNDR = %.1f dB\n",
              r_se.sfdr_db, r_se.sndr_db);

  const auto r50 = analyze(283, 50, true);  // the paper's 50-period capture
  std::printf("record: 283 samples, 50 cycles (fin = %.2f MHz, Bluestein "
              "DFT)\n",
              50.0 / 283.0 * 300.0);
  std::printf("  differential : SFDR = %.1f dB  SNDR = %.1f dB  "
              "ENOB = %.2f bits\n",
              r50.sfdr_db, r50.sndr_db, r50.enob);

  // Render the Fig. 8 spectrum (differential record, max-hold bins).
  PlotSeries spec_series{{}, {}, '|'};
  for (std::size_t k = 1; k + 2 < r.mag_db.size(); k += 2) {
    double peak = std::max(r.mag_db[k], r.mag_db[k + 1]);
    spec_series.x.push_back(r.freq_hz[k] * 1e-6);
    spec_series.y.push_back(std::max(peak, -120.0));
  }
  PlotOptions po;
  po.x_label = "f [MHz]";
  po.y_label = "dBc";
  po.y_max = 0.0;
  po.y_min = -120.0;
  std::printf("\nFig. 8 — differential output spectrum:\n%s",
              ascii_plot({spec_series}, po).c_str());

  std::printf("\npaper reference: SFDR compares well with state-of-the-art "
              "12-bit DACs [9] (~60-70 dB class) at 53 MHz / 300 MS/s\n");
  return 0;
}
