// F6t — Section 3 transient result: full-scale settling of the designed
// cell, simulated at transistor level with the mini-SPICE engine (the
// paper reports 2.5 ns to within 0.5 LSB, i.e. operation up to 400 MS/s).
// The full-scale source is modelled as all 2^n - 1 units in parallel.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "spice/devices.hpp"
#include "spice/measures.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;
using namespace csdac::units;

namespace {

struct SettleResult {
  double ts = 0.0;        ///< measured settling to 0.5 LSB [s]
  double ts_model = 0.0;  ///< eq. (13) prediction [s]
  double v_final = 0.0;
};

SettleResult run(const tech::MosTechParams& t, const DacSpec& spec,
                 const SizedCell& s) {
  spice::Circuit ckt;
  const double m = spec.total_units();
  const int out = ckt.node("out");
  const int internal = ckt.node("int");
  const int vterm = ckt.node("vterm");
  const int gcs = ckt.node("gcs");
  const int gsw = ckt.node("gsw");
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vterm", vterm, 0, spec.v_out_min + spec.v_swing));
  ckt.add(std::make_unique<spice::Resistor>("rl", vterm, out, spec.r_load));
  ckt.add(std::make_unique<spice::Capacitor>("cl", out, 0, spec.c_load));
  ckt.add(
      std::make_unique<spice::Capacitor>("cint", internal, 0, spec.c_int));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcs", gcs, 0, s.cell.vg_cs));
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vgsw", gsw, 0,
      std::make_unique<spice::PulseWave>(0.0, s.cell.vg_sw, 0.5 * units::ns,
                                         50 * units::ps, 50 * units::ps,
                                         1.0)));
  if (s.cell.topology == CellTopology::kCsSw) {
    ckt.add(std::make_unique<spice::Mosfet>(
        "mcs", t, internal, gcs, 0, 0,
        spice::Mosfet::Geometry{s.cell.cs.w, s.cell.cs.l, m}, true));
    ckt.add(std::make_unique<spice::Mosfet>(
        "msw", t, out, gsw, internal, 0,
        spice::Mosfet::Geometry{s.cell.sw.w, s.cell.sw.l, m}, true));
  } else {
    const int mid = ckt.node("mid");
    const int gcas = ckt.node("gcas");
    ckt.add(std::make_unique<spice::VoltageSource>("vgcas", gcas, 0,
                                                   s.cell.vg_cas));
    ckt.add(std::make_unique<spice::Mosfet>(
        "mcs", t, mid, gcs, 0, 0,
        spice::Mosfet::Geometry{s.cell.cs.w, s.cell.cs.l, m}, true));
    ckt.add(std::make_unique<spice::Mosfet>(
        "mcas", t, internal, gcas, mid, 0,
        spice::Mosfet::Geometry{s.cell.cas.w, s.cell.cas.l, m}, true));
    ckt.add(std::make_unique<spice::Mosfet>(
        "msw", t, out, gsw, internal, 0,
        spice::Mosfet::Geometry{s.cell.sw.w, s.cell.sw.l, m}, true));
  }
  const auto res = spice::transient(ckt, 5 * units::ps, 15 * units::ns);
  const auto v = res.node_waveform(out);
  SettleResult r;
  r.v_final = v.back();
  const double lsb_v = spec.v_swing / (1 << spec.nbits);
  r.ts = spice::settling_time(res.time, v, r.v_final, 0.5 * lsb_v) -
         0.5 * units::ns;
  r.ts_model = s.poles.settling_time(spec.nbits);
  return r;
}

}  // namespace

int main() {
  const auto t = tech::generic_035um().nmos;
  const DacSpec spec;
  const CellSizer sizer(t, spec);
  const DesignSpaceExplorer ex(sizer);

  print_header("F6t", "Sec. 3 — full-scale settling transient (mini-SPICE)");
  print_row({"topology", "criterion", "ts sim [ns]", "ts eq13 [ns]",
             "max rate [MS/s]", "v_final [V]"},
            16);

  const GridAxis g2{0.05, 0.9, 30};
  const GridAxis g3{0.05, 0.6, 12};
  for (auto [obj, oname] : {std::pair{Objective::kMaxSpeed, "max speed"},
                            std::pair{Objective::kMinArea, "min area"}}) {
    if (const auto p = ex.optimize_basic(g2, g2, MarginPolicy::kStatistical,
                                         obj)) {
      const SizedCell s = sizer.size_basic(p->vod_cs, p->vod_sw,
                                           MarginPolicy::kStatistical);
      const SettleResult r = run(t, spec, s);
      print_row({"CS+SW", oname, bench::ns(r.ts), bench::ns(r.ts_model),
                 fmt(1.0 / r.ts * 1e-6, "%.0f"), fmt(r.v_final, "%.3f")},
                16);
    }
    if (const auto p = ex.optimize_cascode(g3, g3, g3,
                                           MarginPolicy::kStatistical, obj)) {
      const SizedCell s = sizer.size_cascode(
          p->vod_cs, p->vod_sw, p->vod_cas, MarginPolicy::kStatistical);
      const SettleResult r = run(t, spec, s);
      print_row({"CS+SW+CAS", oname, bench::ns(r.ts), bench::ns(r.ts_model),
                 fmt(1.0 / r.ts * 1e-6, "%.0f"), fmt(r.v_final, "%.3f")},
                16);
    }
  }
  std::printf("\npaper reference: 2.5 ns full-scale settling -> 400 MS/s\n");
  return 0;
}
