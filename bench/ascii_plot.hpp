// Tiny character-grid plotter for the figure-reproduction benches: renders
// one or more (x, y) series into a fixed-size ASCII chart with axis labels,
// so the bench output shows the *shape* of the paper's figure, not just the
// numbers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace csdac::bench {

struct PlotSeries {
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

struct PlotOptions {
  int width = 64;
  int height = 18;
  const char* x_label = "x";
  const char* y_label = "y";
  /// Optional fixed axis limits; NaN = auto from the data.
  double y_min = std::numeric_limits<double>::quiet_NaN();
  double y_max = std::numeric_limits<double>::quiet_NaN();
};

inline std::string ascii_plot(const std::vector<PlotSeries>& series,
                              const PlotOptions& opts = {}) {
  double x0 = 1e300, x1 = -1e300;
  double y0 = 1e300, y1 = -1e300;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      x0 = std::min(x0, s.x[i]);
      x1 = std::max(x1, s.x[i]);
      y0 = std::min(y0, s.y[i]);
      y1 = std::max(y1, s.y[i]);
    }
  }
  if (!(x1 > x0)) x1 = x0 + 1.0;
  if (!std::isnan(opts.y_min)) y0 = opts.y_min;
  if (!std::isnan(opts.y_max)) y1 = opts.y_max;
  if (!(y1 > y0)) y1 = y0 + 1.0;

  std::vector<std::string> grid(
      static_cast<std::size_t>(opts.height),
      std::string(static_cast<std::size_t>(opts.width), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const double xv = std::clamp(s.x[i], x0, x1);
      const double yv = std::clamp(s.y[i], y0, y1);
      const int col = static_cast<int>(std::lround(
          (xv - x0) / (x1 - x0) * (opts.width - 1)));
      const int row = static_cast<int>(std::lround(
          (y1 - yv) / (y1 - y0) * (opts.height - 1)));
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.marker;
    }
  }

  std::string out;
  char buf[160];
  for (int r = 0; r < opts.height; ++r) {
    if (r == 0) {
      std::snprintf(buf, sizeof(buf), "%10.3g |", y1);
    } else if (r == opts.height - 1) {
      std::snprintf(buf, sizeof(buf), "%10.3g |", y0);
    } else {
      std::snprintf(buf, sizeof(buf), "%10s |", "");
    }
    out += buf;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' +
         std::string(static_cast<std::size_t>(opts.width), '-') + '\n';
  std::snprintf(buf, sizeof(buf), "%10s  %-.4g%*s%.4g   (%s vs %s)\n", "",
                x0, opts.width - 10, "", x1, opts.y_label, opts.x_label);
  out += buf;
  return out;
}

}  // namespace csdac::bench
