// M1 — substitution ablation (DESIGN.md Section 7): the behavioral
// converter model vs the transistor-level MNA netlist on the SAME chips.
// A 6-bit instance of the paper's architecture is swept through all codes
// at both abstraction levels with identical mismatch draws; the INL curves
// must agree, which is what licenses using the (10^4x faster) behavioral
// model for the 12-bit yield and spectrum experiments.
#include <cstdio>

#include "bench_util.hpp"
#include "core/sizer.hpp"
#include "dac/dac_model.hpp"
#include "dac/static_analysis.hpp"
#include "dacgen/dacgen.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;

int main() {
  const auto t = tech::generic_035um().nmos;
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 2;
  const core::CellSizer sizer(t, spec);
  const core::SizedCell cell =
      sizer.size_cascode(0.25, 0.2, 0.2, core::MarginPolicy::kStatistical);

  print_header("M1", "behavioral vs transistor-level static transfer");
  std::printf("6-bit (b=2, m=4) instance of the paper architecture, "
              "sigma_u = 2%%, 5 chips x 64 codes\n\n");
  print_row({"chip", "INL spice", "INL model", "DNL spice", "DNL model",
             "max |dINL|"});

  for (int chip_id = 0; chip_id < 5; ++chip_id) {
    dacgen::DacGenOptions opts;
    opts.sigma_unit = 0.02;
    opts.seed = 1000 + static_cast<std::uint64_t>(chip_id);
    const dacgen::TransistorLevelDac chip(spec, cell, t, opts);

    dac::SourceErrors errors;
    for (double e : chip.unary_errors()) {
      errors.unary.push_back(spec.unary_weight() * (1.0 + e));
    }
    for (std::size_t k = 0; k < chip.binary_errors().size(); ++k) {
      errors.binary.push_back(std::ldexp(1.0, static_cast<int>(k)) *
                              (1.0 + chip.binary_errors()[k]));
    }
    const dac::SegmentedDac model(spec, errors);

    const auto m_spice = dac::analyze_transfer(chip.transfer());
    const auto m_model = dac::analyze_transfer(model.transfer());
    double d_inl = 0.0;
    for (std::size_t c = 0; c < m_spice.inl.size(); ++c) {
      d_inl = std::max(d_inl, std::abs(m_spice.inl[c] - m_model.inl[c]));
    }
    print_row({fmt(chip_id, "%.0f"), fmt(m_spice.inl_max, "%.3f"),
               fmt(m_model.inl_max, "%.3f"), fmt(m_spice.dnl_max, "%.3f"),
               fmt(m_model.dnl_max, "%.3f"), fmt(d_inl, "%.3f")});
  }
  std::printf("\nAgreement within the lambda-induced residual licenses the\n"
              "behavioral substitution used by the 12-bit experiments.\n");
  return 0;
}
