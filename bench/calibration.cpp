// E7 — extension experiment (after the paper's ref. [10], Cong & Geiger's
// self-calibrated DAC): trimming each unary source with a small calibration
// DAC recovers the INL yield of a deliberately under-sized current-source
// array. Since the eq. (2) CS area scales as 1/sigma^2, allowing k-times
// the eq. (1) sigma pre-calibration shrinks the dominant analog area by
// k^2 — the trade the later literature builds on.
#include <cstdio>

#include "bench_util.hpp"
#include "core/accuracy.hpp"
#include "core/sizer.hpp"
#include "dac/calibration.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;

int main() {
  const core::DacSpec spec;
  const double sigma0 = core::unit_sigma_spec(spec.nbits, spec.inl_yield);
  const int chips = 200;

  print_header("E7", "extension — self-calibration vs intrinsic accuracy");
  std::printf("12-bit converter, CS array undersized to 4x the eq.(1) sigma "
              "(16x less CS area); %d chips per point\n\n",
              chips);
  print_row({"cal bits", "step [LSB]", "yield before", "yield after",
             "chips/s"});
  for (int bits : {2, 3, 4, 5, 6, 8}) {
    dac::CalibrationOptions opts;
    opts.range_lsb = 2.0;
    opts.bits = bits;
    const auto y = dac::calibration_yield_mc(spec, 4.0 * sigma0, opts, chips,
                                             31, 0.5, /*threads=*/0);
    print_row({fmt(bits, "%.0f"), fmt(opts.step_lsb(), "%.4f"),
               fmt(y.yield_before, "%.3f"), fmt(y.yield_after, "%.3f"),
               fmt(y.stats.items_per_second, "%.0f")});
  }

  // Engine speedup: the same lot serially vs on all hardware threads.
  {
    dac::CalibrationOptions opts;
    opts.range_lsb = 2.0;
    opts.bits = 6;
    const int lot = 600;
    const auto serial = dac::calibration_yield_mc(spec, 4.0 * sigma0, opts,
                                                  lot, 31, 0.5, /*threads=*/1);
    const auto par = dac::calibration_yield_mc(spec, 4.0 * sigma0, opts, lot,
                                               31, 0.5, /*threads=*/0);
    std::printf("\nshared-engine speedup on %d chips: %.2fx "
                "(%.0f -> %.0f chips/s on %d threads; yields bit-identical: "
                "%s)\n",
                lot,
                serial.stats.wall_seconds / par.stats.wall_seconds,
                serial.stats.items_per_second, par.stats.items_per_second,
                par.stats.threads,
                serial.yield_after == par.yield_after ? "yes" : "NO");
  }

  // Area implication through the sizing engine.
  const auto t = tech::generic_035um().nmos;
  const core::CellSizer sizer(t, spec);
  const auto intrinsic = core::size_current_source(t, spec.i_lsb(), 0.4,
                                                   sigma0);
  const auto calibrated = core::size_current_source(t, spec.i_lsb(), 0.4,
                                                    4.0 * sigma0);
  std::printf("\nCS area at VOD = 0.4 V: intrinsic %s um^2, "
              "pre-calibration %s um^2 (%.1fx saving)\n",
              um2(intrinsic.area()).c_str(), um2(calibrated.area()).c_str(),
              intrinsic.area() / calibrated.area());
  std::printf("(measurement noise of 0.05 LSB rms raises the residual floor "
              "but leaves the yield recovery intact — see the calibration "
              "unit tests.)\n");
  return 0;
}
