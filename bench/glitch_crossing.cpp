// E4 — Section 2 circuit-level glitch mechanism: "the latch circuit
// complementary output levels and crossing point are designed to minimize
// glitches [9]". A unary cell is switched with complementary gate ramps
// whose overlap is swept: break-before-make (negative overlap, LOW
// crossing point) lets both switches open simultaneously, the cell current
// pulls the internal node down, and the recovery appears as an output
// glitch; make-before-break (positive overlap, HIGH crossing) holds the
// node. Measured with the mini-SPICE transient on the sized cell.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/sizer.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::units;

namespace {

struct GlitchResult {
  double droop_v = 0.0;      ///< deepest excursion of the internal node [V]
  double energy_vs = 0.0;    ///< output glitch energy [V*s]
  double cross_v = 0.0;      ///< gate-waveform crossing voltage [V]
};

GlitchResult run(const tech::MosTechParams& t, const core::DacSpec& spec,
                 const core::SizedCell& cell, double overlap) {
  const double weight = spec.unary_weight();
  const double tr = 100 * ps;   // gate ramp time
  const double t0 = 1.0 * units::ns;   // rising (turn-on) edge of SWB
  const double t_fall = t0 + overlap;  // falling (turn-off) edge of SW

  spice::Circuit ckt;
  const int outp = ckt.node("outp");
  const int outn = ckt.node("outn");
  const int top = ckt.node("top");
  const int mid = ckt.node("mid");
  const int vterm = ckt.node("vterm");
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vterm", vterm, 0, spec.v_out_min + spec.v_swing));
  ckt.add(std::make_unique<spice::Resistor>("rlp", vterm, outp, spec.r_load));
  ckt.add(std::make_unique<spice::Resistor>("rln", vterm, outn, spec.r_load));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcs", ckt.node("gcs"), 0,
                                                 cell.cell.vg_cs));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcas", ckt.node("gcas"),
                                                 0, cell.cell.vg_cas));
  const double von = cell.cell.vg_sw;
  // SW steers to outp and turns OFF at t_fall; SWB steers to outn and
  // turns ON at t0.
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vgsw", ckt.node("gsw"), 0,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, von}, {t_fall, von}, {t_fall + tr, 0.0}})));
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vgswb", ckt.node("gswb"), 0,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {t0, 0.0}, {t0 + tr, von}})));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mcs", t, mid, ckt.find_node("gcs"), 0, 0,
      spice::Mosfet::Geometry{cell.cell.cs.w, cell.cell.cs.l, weight},
      true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mcas", t, top, ckt.find_node("gcas"), mid, 0,
      spice::Mosfet::Geometry{cell.cell.cas.w, cell.cell.cas.l, weight},
      true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mswp", t, outp, ckt.find_node("gsw"), top, 0,
      spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l, weight},
      true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mswn", t, outn, ckt.find_node("gswb"), top, 0,
      spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l, weight},
      true));
  ckt.add(std::make_unique<spice::Capacitor>("cint", top, 0, spec.c_int));

  const auto res = spice::transient(ckt, 2 * ps, 5 * units::ns);
  const auto v_top = res.node_waveform(top);
  const auto v_outn = res.node_waveform(outn);

  GlitchResult g;
  // Internal-node droop below its pre-switch level.
  double v_pre = v_top.front();
  g.droop_v = v_pre;
  for (double v : v_top) g.droop_v = std::min(g.droop_v, v);
  g.droop_v = v_pre - g.droop_v;
  // Output glitch energy vs an ideal instantaneous step at t0.
  const double v_before = v_outn.front();
  const double v_after = v_outn.back();
  double e = 0.0;
  for (std::size_t i = 1; i < res.time.size(); ++i) {
    const double dt = res.time[i] - res.time[i - 1];
    const double ideal = res.time[i] < t0 ? v_before : v_after;
    e += std::abs(v_outn[i] - ideal) * dt;
  }
  g.energy_vs = e;
  // Crossing voltage of the two gate ramps (equal slopes): setting
  // von*(1 - (t - t_fall)/tr) = von*(t - t0)/tr with u = (t - t0)/tr gives
  // u = (1 + overlap/tr)/2, so cross = von * clamp(u, 0, 1).
  g.cross_v = von * std::clamp(0.5 * (1.0 + overlap / tr), 0.0, 1.0);
  return g;
}

}  // namespace

int main() {
  const auto t = tech::generic_035um().nmos;
  const core::DacSpec spec;
  const core::CellSizer sizer(t, spec);
  const core::SizedCell cell =
      sizer.size_cascode(0.25, 0.2, 0.2, core::MarginPolicy::kStatistical);

  print_header("E4", "Sec. 2 — switch-gate crossing point vs glitch");
  std::printf("unary cell (weight 16), 100 ps gate ramps; overlap > 0 = "
              "make-before-break (high crossing)\n\n");
  print_row({"overlap [ps]", "crossing [V]", "node droop [V]",
             "glitch [pV*s]"},
            16);
  for (double ov_ps : {-100.0, -60.0, -30.0, 0.0, 30.0, 60.0, 100.0}) {
    const GlitchResult g = run(t, spec, cell, ov_ps * ps);
    print_row({fmt(ov_ps, "%.0f"), fmt(g.cross_v, "%.2f"),
               fmt(g.droop_v, "%.3f"), fmt(g.energy_vs * 1e12, "%.2f")},
              16);
  }
  std::printf("\npaper reference: the latch output crossing point is chosen\n"
              "to minimize glitches [9]; break-before-make lets the cell\n"
              "current starve the internal node.\n");
  return 0;
}
