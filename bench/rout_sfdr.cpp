// E2 — Section 2 topology argument (after [7,8]): unit-cell output
// impedance versus frequency for the basic and cascode cells, the 0.5 LSB
// INL requirement, the implied SFDR estimate, and the SFDR bandwidth. The
// cascode must extend the frequency range over which a 12-bit DAC meets
// its impedance requirement — the reason topology (b) is adopted.
#include <cstdio>

#include "bench_util.hpp"
#include "core/impedance.hpp"
#include "core/sizer.hpp"
#include "tech/tech.hpp"

using namespace csdac;
using namespace csdac::bench;
using namespace csdac::core;

int main() {
  const auto t = tech::generic_035um().nmos;
  const DacSpec spec;
  const CellSizer sizer(t, spec);

  const SizedCell basic = sizer.size_basic(0.35, 0.25,
                                           MarginPolicy::kStatistical);
  const SizedCell casc = sizer.size_cascode(0.3, 0.2, 0.2,
                                            MarginPolicy::kStatistical);
  const double r_req = required_unit_rout(spec.nbits, spec.r_load, 0.5);
  const int wt = spec.unary_weight();

  print_header("E2", "[7,8] — unit output impedance vs frequency / SFDR");
  std::printf("requirement (unary source, INL < 0.5 LSB): |Z| >= %.1f MOhm\n\n",
              r_req / wt * 1e-6);
  print_row({"f [MHz]", "|Z| basic", "|Z| cascode", "SFDR basic",
             "SFDR cascode"});
  for (double f : {0.01e6, 0.1e6, 1e6, 5e6, 10e6, 25e6, 53e6, 100e6, 150e6}) {
    const double zb = unit_zout_mag(t, spec, basic.cell, f, wt);
    const double zc = unit_zout_mag(t, spec, casc.cell, f, wt);
    // SFDR estimate referenced to the per-LSB-unit impedance.
    const double sb = sfdr_single_ended_db(spec.nbits, spec.r_load, zb * wt);
    const double sc = sfdr_single_ended_db(spec.nbits, spec.r_load, zc * wt);
    print_row({fmt(f * 1e-6, "%.2f"), fmt(zb * 1e-6, "%.2f MOhm"),
               fmt(zc * 1e-6, "%.2f MOhm"), fmt(sb, "%.1f dB"),
               fmt(sc, "%.1f dB")});
  }

  const double bw_b =
      impedance_bandwidth(t, spec, basic.cell, r_req / wt, 1e3, 1e10, wt);
  const double bw_c =
      impedance_bandwidth(t, spec, casc.cell, r_req / wt, 1e3, 1e10, wt);
  std::printf("\nSFDR bandwidth (|Z| holds the 0.5 LSB requirement):\n");
  std::printf("  CS+SW      : %s MHz\n", mhz(bw_b).c_str());
  std::printf("  CS+SW+CAS  : %s MHz   (x%.1f)\n", mhz(bw_c).c_str(),
              bw_c / bw_b);
  std::printf("\nstatic (DC) unit Rout: basic %.2e Ohm, cascode %.2e Ohm\n",
              basic.rout_unit, casc.rout_unit);
  std::printf("paper reference: the CS topology does not provide enough\n"
              "output impedance for a 12-bit DAC; the cascode is required.\n");
  return 0;
}
