// Minimal dependency-free JSON writer for the machine-readable bench
// harness (tools/run_benches → BENCH_mc.json). Explicit begin/end calls,
// insertion-ordered keys, no DOM: just enough to emit the csdac-bench/1
// schema documented in EXPERIMENTS.md. Numbers are written with %.17g so a
// round-trip through a double is lossless; non-finite doubles become null.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace csdac::bench {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    first_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    first_.pop_back();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    comma();
    quote(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    char buf[40];
    if (v != v || v > 1.7e308 || v < -1.7e308) {
      out_ += "null";
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (first_.back()) {
        first_.back() = false;
      } else {
        out_ += ',';
      }
    }
  }

  void quote(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned char>(c));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace csdac::bench
