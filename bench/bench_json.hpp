// Minimal JSON writer for the machine-readable bench harness and the
// design service (tools/run_benches → BENCH_mc.json, tools/csdac_serve).
// Explicit begin/end calls, insertion-ordered keys, no DOM: just enough to
// emit the csdac-bench/csdac-serve schemas documented in EXPERIMENTS.md.
// String escaping is the shared obs escaper; numbers are written with
// %.17g so a round-trip through a double is lossless; non-finite doubles
// become null.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_escape.hpp"

namespace csdac::bench {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    first_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    first_.pop_back();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    comma();
    quote(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    char buf[40];
    if (v != v || v > 1.7e308 || v < -1.7e308) {
      out_ += "null";
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// Splices pre-serialized JSON (e.g. a MetricsSnapshot::to_json() blob)
  /// as the next value, comma-aware like any other value. The caller is
  /// responsible for `json` being well-formed.
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    return *this;
  }

  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (first_.back()) {
        first_.back() = false;
      } else {
        out_ += ',';
      }
    }
  }

  void quote(std::string_view s) {
    out_ += '"';
    obs::append_json_escaped(out_, s);
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace csdac::bench
