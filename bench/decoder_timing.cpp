// E6 — Fig. 1's dummy decoder: "A dummy decoder is placed in the binary
// weighted input path to equalize the delay." The gate-level thermometer
// decoder's worst-case arrival sets the binary/thermometer skew when no
// dummy is present; the matched buffer chain reduces it to a fraction of a
// gate delay. The skews are then fed into the behavioral dynamic model to
// show the impact on major-carry glitch energy and on the output spectrum.
#include <cstdio>

#include "bench_util.hpp"
#include "core/spec.hpp"
#include "dac/dynamic.hpp"
#include "dac/spectrum.hpp"
#include "digital/decoder.hpp"

using namespace csdac;
using namespace csdac::bench;

namespace {

struct SkewImpact {
  double glitch_pvs = 0.0;
  double sfdr_db = 0.0;
};

SkewImpact evaluate_skew(const core::DacSpec& spec, double skew) {
  dac::DynamicParams p;
  p.fs = 300e6;
  p.oversample = 8;
  p.tau = 0.3e-9;
  p.binary_skew = skew;
  dac::DynamicSimulator sim(
      dac::SegmentedDac(spec, dac::ideal_sources(spec)), p);
  SkewImpact r;
  r.glitch_pvs = sim.glitch_energy(2047, 2048) * 1e12;
  const auto codes = dac::sine_codes(spec, 1024, 181);
  const auto wave = sim.waveform(codes);
  dac::SpectrumOptions opts;
  opts.max_freq = p.fs / 2.0;
  r.sfdr_db = dac::analyze_spectrum(wave, p.fs * p.oversample, opts).sfdr_db;
  return r;
}

}  // namespace

int main() {
  const core::DacSpec spec;
  const double gate_delay = 80e-12;  // realistic 0.35 um gate

  print_header("E6", "Fig. 1 — decoder timing and the dummy decoder");
  const digital::ThermometerDecoder dec(4, 4, gate_delay);
  const digital::DummyDecoder dummy =
      digital::DummyDecoder::matched(dec, spec.binary_bits, gate_delay);

  std::printf("thermometer decoder (m = 8, 4x4 row/column):\n");
  std::printf("  gates            : %d\n", dec.gate_count());
  std::printf("  worst arrival    : %.0f ps (%.1f gate delays)\n",
              dec.worst_arrival() * 1e12, dec.worst_arrival() / gate_delay);
  std::printf("dummy decoder      : %d buffers, delay %.0f ps\n",
              dummy.gate_count(), dummy.delay() * 1e12);
  const double skew_without = dec.worst_arrival();
  const double skew_with =
      std::abs(dec.worst_arrival() - dummy.delay()) + gate_delay;
  std::printf("binary path skew   : %.0f ps without dummy, %.0f ps with\n\n",
              skew_without * 1e12, skew_with * 1e12);

  print_row({"configuration", "skew [ps]", "glitch [pV*s]", "SFDR [dB]"},
            18);
  for (auto [name, skew] :
       {std::pair{"no dummy decoder", skew_without},
        std::pair{"matched dummy", skew_with},
        std::pair{"perfect timing", 0.0}}) {
    const SkewImpact r = evaluate_skew(spec, skew);
    print_row({name, fmt(skew * 1e12, "%.0f"), fmt(r.glitch_pvs, "%.2f"),
               fmt(r.sfdr_db, "%.1f")},
              18);
  }
  std::printf("\npaper reference: the dummy decoder equalizes the two paths'\n"
              "delay; the residual timing error is handled by the latch\n"
              "placed just before the switches (Fig. 1).\n");
  return 0;
}
