file(REMOVE_RECURSE
  "CMakeFiles/bench_glitch_crossing.dir/glitch_crossing.cpp.o"
  "CMakeFiles/bench_glitch_crossing.dir/glitch_crossing.cpp.o.d"
  "bench_glitch_crossing"
  "bench_glitch_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_glitch_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
