# Empty dependencies file for bench_glitch_crossing.
# This may be replaced when dependencies are built.
