# Empty dependencies file for bench_rout_sfdr.
# This may be replaced when dependencies are built.
