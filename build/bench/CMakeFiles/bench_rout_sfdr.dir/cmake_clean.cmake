file(REMOVE_RECURSE
  "CMakeFiles/bench_rout_sfdr.dir/rout_sfdr.cpp.o"
  "CMakeFiles/bench_rout_sfdr.dir/rout_sfdr.cpp.o.d"
  "bench_rout_sfdr"
  "bench_rout_sfdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rout_sfdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
