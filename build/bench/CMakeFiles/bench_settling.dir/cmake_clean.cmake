file(REMOVE_RECURSE
  "CMakeFiles/bench_settling.dir/settling.cpp.o"
  "CMakeFiles/bench_settling.dir/settling.cpp.o.d"
  "bench_settling"
  "bench_settling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_settling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
