# Empty compiler generated dependencies file for bench_settling.
# This may be replaced when dependencies are built.
