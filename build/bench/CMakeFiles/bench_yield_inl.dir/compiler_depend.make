# Empty compiler generated dependencies file for bench_yield_inl.
# This may be replaced when dependencies are built.
