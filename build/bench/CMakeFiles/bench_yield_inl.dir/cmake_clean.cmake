file(REMOVE_RECURSE
  "CMakeFiles/bench_yield_inl.dir/yield_inl.cpp.o"
  "CMakeFiles/bench_yield_inl.dir/yield_inl.cpp.o.d"
  "bench_yield_inl"
  "bench_yield_inl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yield_inl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
