# Empty compiler generated dependencies file for bench_mixed_level.
# This may be replaced when dependencies are built.
