file(REMOVE_RECURSE
  "CMakeFiles/bench_mixed_level.dir/mixed_level.cpp.o"
  "CMakeFiles/bench_mixed_level.dir/mixed_level.cpp.o.d"
  "bench_mixed_level"
  "bench_mixed_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
