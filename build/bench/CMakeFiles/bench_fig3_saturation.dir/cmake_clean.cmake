file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_saturation.dir/fig3_saturation.cpp.o"
  "CMakeFiles/bench_fig3_saturation.dir/fig3_saturation.cpp.o.d"
  "bench_fig3_saturation"
  "bench_fig3_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
