# Empty dependencies file for bench_fig3_saturation.
# This may be replaced when dependencies are built.
