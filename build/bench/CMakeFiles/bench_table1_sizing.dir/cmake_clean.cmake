file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sizing.dir/table1_sizing.cpp.o"
  "CMakeFiles/bench_table1_sizing.dir/table1_sizing.cpp.o.d"
  "bench_table1_sizing"
  "bench_table1_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
