file(REMOVE_RECURSE
  "CMakeFiles/bench_area_savings.dir/area_savings.cpp.o"
  "CMakeFiles/bench_area_savings.dir/area_savings.cpp.o.d"
  "bench_area_savings"
  "bench_area_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
