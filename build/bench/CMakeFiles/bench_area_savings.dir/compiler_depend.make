# Empty compiler generated dependencies file for bench_area_savings.
# This may be replaced when dependencies are built.
