file(REMOVE_RECURSE
  "CMakeFiles/bench_imd_sweep.dir/imd_sweep.cpp.o"
  "CMakeFiles/bench_imd_sweep.dir/imd_sweep.cpp.o.d"
  "bench_imd_sweep"
  "bench_imd_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_imd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
