# Empty compiler generated dependencies file for bench_imd_sweep.
# This may be replaced when dependencies are built.
