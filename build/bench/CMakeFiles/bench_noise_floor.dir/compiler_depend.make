# Empty compiler generated dependencies file for bench_noise_floor.
# This may be replaced when dependencies are built.
