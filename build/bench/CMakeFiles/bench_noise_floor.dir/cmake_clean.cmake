file(REMOVE_RECURSE
  "CMakeFiles/bench_noise_floor.dir/noise_floor.cpp.o"
  "CMakeFiles/bench_noise_floor.dir/noise_floor.cpp.o.d"
  "bench_noise_floor"
  "bench_noise_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
