# Empty dependencies file for bench_decoder_timing.
# This may be replaced when dependencies are built.
