file(REMOVE_RECURSE
  "CMakeFiles/bench_decoder_timing.dir/decoder_timing.cpp.o"
  "CMakeFiles/bench_decoder_timing.dir/decoder_timing.cpp.o.d"
  "bench_decoder_timing"
  "bench_decoder_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoder_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
