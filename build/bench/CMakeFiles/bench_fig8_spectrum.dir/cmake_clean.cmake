file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_spectrum.dir/fig8_spectrum.cpp.o"
  "CMakeFiles/bench_fig8_spectrum.dir/fig8_spectrum.cpp.o.d"
  "bench_fig8_spectrum"
  "bench_fig8_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
