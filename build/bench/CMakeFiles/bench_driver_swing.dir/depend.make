# Empty dependencies file for bench_driver_swing.
# This may be replaced when dependencies are built.
