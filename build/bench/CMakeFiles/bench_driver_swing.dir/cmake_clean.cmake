file(REMOVE_RECURSE
  "CMakeFiles/bench_driver_swing.dir/driver_swing.cpp.o"
  "CMakeFiles/bench_driver_swing.dir/driver_swing.cpp.o.d"
  "bench_driver_swing"
  "bench_driver_swing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_driver_swing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
