file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_poles.dir/fig3_poles.cpp.o"
  "CMakeFiles/bench_fig3_poles.dir/fig3_poles.cpp.o.d"
  "bench_fig3_poles"
  "bench_fig3_poles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_poles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
