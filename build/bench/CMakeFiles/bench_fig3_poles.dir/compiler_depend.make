# Empty compiler generated dependencies file for bench_fig3_poles.
# This may be replaced when dependencies are built.
