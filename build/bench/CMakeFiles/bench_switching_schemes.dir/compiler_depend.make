# Empty compiler generated dependencies file for bench_switching_schemes.
# This may be replaced when dependencies are built.
