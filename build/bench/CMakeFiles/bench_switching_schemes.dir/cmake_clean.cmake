file(REMOVE_RECURSE
  "CMakeFiles/bench_switching_schemes.dir/switching_schemes.cpp.o"
  "CMakeFiles/bench_switching_schemes.dir/switching_schemes.cpp.o.d"
  "bench_switching_schemes"
  "bench_switching_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switching_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
