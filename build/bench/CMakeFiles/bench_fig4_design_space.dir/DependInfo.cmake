
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_design_space.cpp" "bench/CMakeFiles/bench_fig4_design_space.dir/fig4_design_space.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_design_space.dir/fig4_design_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/csdac_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/csdac_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/csdac_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/csdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dac/CMakeFiles/csdac_dac.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/csdac_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/dacgen/CMakeFiles/csdac_dacgen.dir/DependInfo.cmake"
  "/root/repo/build/src/digital/CMakeFiles/csdac_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/csdac_cells.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
