# Empty compiler generated dependencies file for bench_fig4_design_space.
# This may be replaced when dependencies are built.
