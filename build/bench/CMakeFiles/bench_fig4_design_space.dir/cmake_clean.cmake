file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_design_space.dir/fig4_design_space.cpp.o"
  "CMakeFiles/bench_fig4_design_space.dir/fig4_design_space.cpp.o.d"
  "bench_fig4_design_space"
  "bench_fig4_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
