# Empty compiler generated dependencies file for netlist_sim.
# This may be replaced when dependencies are built.
