file(REMOVE_RECURSE
  "CMakeFiles/netlist_sim.dir/netlist_sim.cpp.o"
  "CMakeFiles/netlist_sim.dir/netlist_sim.cpp.o.d"
  "netlist_sim"
  "netlist_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
