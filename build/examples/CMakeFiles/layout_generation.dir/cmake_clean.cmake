file(REMOVE_RECURSE
  "CMakeFiles/layout_generation.dir/layout_generation.cpp.o"
  "CMakeFiles/layout_generation.dir/layout_generation.cpp.o.d"
  "layout_generation"
  "layout_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
