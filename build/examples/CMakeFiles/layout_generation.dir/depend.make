# Empty dependencies file for layout_generation.
# This may be replaced when dependencies are built.
