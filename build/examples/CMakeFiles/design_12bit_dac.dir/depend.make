# Empty dependencies file for design_12bit_dac.
# This may be replaced when dependencies are built.
