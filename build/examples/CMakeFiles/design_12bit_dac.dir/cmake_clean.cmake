file(REMOVE_RECURSE
  "CMakeFiles/design_12bit_dac.dir/design_12bit_dac.cpp.o"
  "CMakeFiles/design_12bit_dac.dir/design_12bit_dac.cpp.o.d"
  "design_12bit_dac"
  "design_12bit_dac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_12bit_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
