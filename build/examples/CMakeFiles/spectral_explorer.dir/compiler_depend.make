# Empty compiler generated dependencies file for spectral_explorer.
# This may be replaced when dependencies are built.
