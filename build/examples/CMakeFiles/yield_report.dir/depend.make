# Empty dependencies file for yield_report.
# This may be replaced when dependencies are built.
