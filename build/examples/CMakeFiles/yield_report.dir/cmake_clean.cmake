file(REMOVE_RECURSE
  "CMakeFiles/yield_report.dir/yield_report.cpp.o"
  "CMakeFiles/yield_report.dir/yield_report.cpp.o.d"
  "yield_report"
  "yield_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
