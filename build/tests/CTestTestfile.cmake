# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_mathx[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_dac[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_dacgen[1]_include.cmake")
include("/root/repo/build/tests/test_param[1]_include.cmake")
include("/root/repo/build/tests/test_digital[1]_include.cmake")
include("/root/repo/build/tests/test_cells[1]_include.cmake")
