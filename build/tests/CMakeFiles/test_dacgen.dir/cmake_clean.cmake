file(REMOVE_RECURSE
  "CMakeFiles/test_dacgen.dir/dacgen/dacgen_test.cpp.o"
  "CMakeFiles/test_dacgen.dir/dacgen/dacgen_test.cpp.o.d"
  "test_dacgen"
  "test_dacgen.pdb"
  "test_dacgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dacgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
