# Empty compiler generated dependencies file for test_dacgen.
# This may be replaced when dependencies are built.
