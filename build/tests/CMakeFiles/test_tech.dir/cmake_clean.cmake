file(REMOVE_RECURSE
  "CMakeFiles/test_tech.dir/tech/corners_test.cpp.o"
  "CMakeFiles/test_tech.dir/tech/corners_test.cpp.o.d"
  "CMakeFiles/test_tech.dir/tech/mismatch_test.cpp.o"
  "CMakeFiles/test_tech.dir/tech/mismatch_test.cpp.o.d"
  "CMakeFiles/test_tech.dir/tech/tech_test.cpp.o"
  "CMakeFiles/test_tech.dir/tech/tech_test.cpp.o.d"
  "test_tech"
  "test_tech.pdb"
  "test_tech[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
