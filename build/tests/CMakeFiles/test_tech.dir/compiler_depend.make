# Empty compiler generated dependencies file for test_tech.
# This may be replaced when dependencies are built.
