file(REMOVE_RECURSE
  "CMakeFiles/test_digital.dir/digital/decoder_test.cpp.o"
  "CMakeFiles/test_digital.dir/digital/decoder_test.cpp.o.d"
  "test_digital"
  "test_digital.pdb"
  "test_digital[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
