# Empty compiler generated dependencies file for test_digital.
# This may be replaced when dependencies are built.
