
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/accuracy_test.cpp" "tests/CMakeFiles/test_core.dir/core/accuracy_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/accuracy_test.cpp.o.d"
  "/root/repo/tests/core/architecture_costs_test.cpp" "tests/CMakeFiles/test_core.dir/core/architecture_costs_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/architecture_costs_test.cpp.o.d"
  "/root/repo/tests/core/architecture_test.cpp" "tests/CMakeFiles/test_core.dir/core/architecture_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/architecture_test.cpp.o.d"
  "/root/repo/tests/core/cell_test.cpp" "tests/CMakeFiles/test_core.dir/core/cell_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/cell_test.cpp.o.d"
  "/root/repo/tests/core/explorer_test.cpp" "tests/CMakeFiles/test_core.dir/core/explorer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/explorer_test.cpp.o.d"
  "/root/repo/tests/core/gate_bounds_test.cpp" "tests/CMakeFiles/test_core.dir/core/gate_bounds_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/gate_bounds_test.cpp.o.d"
  "/root/repo/tests/core/poles_test.cpp" "tests/CMakeFiles/test_core.dir/core/poles_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/poles_test.cpp.o.d"
  "/root/repo/tests/core/saturation_test.cpp" "tests/CMakeFiles/test_core.dir/core/saturation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/saturation_test.cpp.o.d"
  "/root/repo/tests/core/sizer_test.cpp" "tests/CMakeFiles/test_core.dir/core/sizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sizer_test.cpp.o.d"
  "/root/repo/tests/core/spice_validation_test.cpp" "tests/CMakeFiles/test_core.dir/core/spice_validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/spice_validation_test.cpp.o.d"
  "/root/repo/tests/core/validation_test.cpp" "tests/CMakeFiles/test_core.dir/core/validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/validation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/csdac_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/csdac_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/csdac_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/csdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dac/CMakeFiles/csdac_dac.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/csdac_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/dacgen/CMakeFiles/csdac_dacgen.dir/DependInfo.cmake"
  "/root/repo/build/src/digital/CMakeFiles/csdac_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/csdac_cells.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
