file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/accuracy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/accuracy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/architecture_costs_test.cpp.o"
  "CMakeFiles/test_core.dir/core/architecture_costs_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/architecture_test.cpp.o"
  "CMakeFiles/test_core.dir/core/architecture_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/cell_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cell_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/explorer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/explorer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/gate_bounds_test.cpp.o"
  "CMakeFiles/test_core.dir/core/gate_bounds_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/poles_test.cpp.o"
  "CMakeFiles/test_core.dir/core/poles_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/saturation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/saturation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sizer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sizer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/spice_validation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/spice_validation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/validation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/validation_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
