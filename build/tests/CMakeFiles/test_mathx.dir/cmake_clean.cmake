file(REMOVE_RECURSE
  "CMakeFiles/test_mathx.dir/mathx/fft_test.cpp.o"
  "CMakeFiles/test_mathx.dir/mathx/fft_test.cpp.o.d"
  "CMakeFiles/test_mathx.dir/mathx/fit_test.cpp.o"
  "CMakeFiles/test_mathx.dir/mathx/fit_test.cpp.o.d"
  "CMakeFiles/test_mathx.dir/mathx/linalg_test.cpp.o"
  "CMakeFiles/test_mathx.dir/mathx/linalg_test.cpp.o.d"
  "CMakeFiles/test_mathx.dir/mathx/rng_test.cpp.o"
  "CMakeFiles/test_mathx.dir/mathx/rng_test.cpp.o.d"
  "CMakeFiles/test_mathx.dir/mathx/stats_test.cpp.o"
  "CMakeFiles/test_mathx.dir/mathx/stats_test.cpp.o.d"
  "test_mathx"
  "test_mathx.pdb"
  "test_mathx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mathx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
