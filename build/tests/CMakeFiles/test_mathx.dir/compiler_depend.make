# Empty compiler generated dependencies file for test_mathx.
# This may be replaced when dependencies are built.
