file(REMOVE_RECURSE
  "CMakeFiles/test_cells.dir/cells/cells_test.cpp.o"
  "CMakeFiles/test_cells.dir/cells/cells_test.cpp.o.d"
  "CMakeFiles/test_cells.dir/cells/glitch_mechanism_test.cpp.o"
  "CMakeFiles/test_cells.dir/cells/glitch_mechanism_test.cpp.o.d"
  "test_cells"
  "test_cells.pdb"
  "test_cells[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
