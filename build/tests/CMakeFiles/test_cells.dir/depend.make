# Empty dependencies file for test_cells.
# This may be replaced when dependencies are built.
