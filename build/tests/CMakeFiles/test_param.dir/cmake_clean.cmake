file(REMOVE_RECURSE
  "CMakeFiles/test_param.dir/param/param_suites_test.cpp.o"
  "CMakeFiles/test_param.dir/param/param_suites_test.cpp.o.d"
  "test_param"
  "test_param.pdb"
  "test_param[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
