# Empty dependencies file for test_dac.
# This may be replaced when dependencies are built.
