file(REMOVE_RECURSE
  "CMakeFiles/test_dac.dir/dac/calibration_test.cpp.o"
  "CMakeFiles/test_dac.dir/dac/calibration_test.cpp.o.d"
  "CMakeFiles/test_dac.dir/dac/dac_model_test.cpp.o"
  "CMakeFiles/test_dac.dir/dac/dac_model_test.cpp.o.d"
  "CMakeFiles/test_dac.dir/dac/dynamic_test.cpp.o"
  "CMakeFiles/test_dac.dir/dac/dynamic_test.cpp.o.d"
  "CMakeFiles/test_dac.dir/dac/imd_test.cpp.o"
  "CMakeFiles/test_dac.dir/dac/imd_test.cpp.o.d"
  "CMakeFiles/test_dac.dir/dac/layout_bridge_test.cpp.o"
  "CMakeFiles/test_dac.dir/dac/layout_bridge_test.cpp.o.d"
  "CMakeFiles/test_dac.dir/dac/spectrum_test.cpp.o"
  "CMakeFiles/test_dac.dir/dac/spectrum_test.cpp.o.d"
  "CMakeFiles/test_dac.dir/dac/static_analysis_test.cpp.o"
  "CMakeFiles/test_dac.dir/dac/static_analysis_test.cpp.o.d"
  "test_dac"
  "test_dac.pdb"
  "test_dac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
