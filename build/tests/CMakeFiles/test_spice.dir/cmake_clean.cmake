file(REMOVE_RECURSE
  "CMakeFiles/test_spice.dir/spice/ac_test.cpp.o"
  "CMakeFiles/test_spice.dir/spice/ac_test.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/linear_test.cpp.o"
  "CMakeFiles/test_spice.dir/spice/linear_test.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/measures_test.cpp.o"
  "CMakeFiles/test_spice.dir/spice/measures_test.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/mosfet_test.cpp.o"
  "CMakeFiles/test_spice.dir/spice/mosfet_test.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/netlist_parser_test.cpp.o"
  "CMakeFiles/test_spice.dir/spice/netlist_parser_test.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/noise_test.cpp.o"
  "CMakeFiles/test_spice.dir/spice/noise_test.cpp.o.d"
  "CMakeFiles/test_spice.dir/spice/tran_test.cpp.o"
  "CMakeFiles/test_spice.dir/spice/tran_test.cpp.o.d"
  "test_spice"
  "test_spice.pdb"
  "test_spice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
