file(REMOVE_RECURSE
  "libcsdac_tech.a"
)
