file(REMOVE_RECURSE
  "CMakeFiles/csdac_tech.dir/mismatch.cpp.o"
  "CMakeFiles/csdac_tech.dir/mismatch.cpp.o.d"
  "CMakeFiles/csdac_tech.dir/tech.cpp.o"
  "CMakeFiles/csdac_tech.dir/tech.cpp.o.d"
  "libcsdac_tech.a"
  "libcsdac_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
