
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/mismatch.cpp" "src/tech/CMakeFiles/csdac_tech.dir/mismatch.cpp.o" "gcc" "src/tech/CMakeFiles/csdac_tech.dir/mismatch.cpp.o.d"
  "/root/repo/src/tech/tech.cpp" "src/tech/CMakeFiles/csdac_tech.dir/tech.cpp.o" "gcc" "src/tech/CMakeFiles/csdac_tech.dir/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/csdac_mathx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
