# Empty compiler generated dependencies file for csdac_tech.
# This may be replaced when dependencies are built.
