file(REMOVE_RECURSE
  "CMakeFiles/csdac_dac.dir/calibration.cpp.o"
  "CMakeFiles/csdac_dac.dir/calibration.cpp.o.d"
  "CMakeFiles/csdac_dac.dir/dac_model.cpp.o"
  "CMakeFiles/csdac_dac.dir/dac_model.cpp.o.d"
  "CMakeFiles/csdac_dac.dir/dynamic.cpp.o"
  "CMakeFiles/csdac_dac.dir/dynamic.cpp.o.d"
  "CMakeFiles/csdac_dac.dir/layout_bridge.cpp.o"
  "CMakeFiles/csdac_dac.dir/layout_bridge.cpp.o.d"
  "CMakeFiles/csdac_dac.dir/spectrum.cpp.o"
  "CMakeFiles/csdac_dac.dir/spectrum.cpp.o.d"
  "CMakeFiles/csdac_dac.dir/static_analysis.cpp.o"
  "CMakeFiles/csdac_dac.dir/static_analysis.cpp.o.d"
  "libcsdac_dac.a"
  "libcsdac_dac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_dac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
