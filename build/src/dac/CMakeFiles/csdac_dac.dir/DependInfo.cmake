
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dac/calibration.cpp" "src/dac/CMakeFiles/csdac_dac.dir/calibration.cpp.o" "gcc" "src/dac/CMakeFiles/csdac_dac.dir/calibration.cpp.o.d"
  "/root/repo/src/dac/dac_model.cpp" "src/dac/CMakeFiles/csdac_dac.dir/dac_model.cpp.o" "gcc" "src/dac/CMakeFiles/csdac_dac.dir/dac_model.cpp.o.d"
  "/root/repo/src/dac/dynamic.cpp" "src/dac/CMakeFiles/csdac_dac.dir/dynamic.cpp.o" "gcc" "src/dac/CMakeFiles/csdac_dac.dir/dynamic.cpp.o.d"
  "/root/repo/src/dac/layout_bridge.cpp" "src/dac/CMakeFiles/csdac_dac.dir/layout_bridge.cpp.o" "gcc" "src/dac/CMakeFiles/csdac_dac.dir/layout_bridge.cpp.o.d"
  "/root/repo/src/dac/spectrum.cpp" "src/dac/CMakeFiles/csdac_dac.dir/spectrum.cpp.o" "gcc" "src/dac/CMakeFiles/csdac_dac.dir/spectrum.cpp.o.d"
  "/root/repo/src/dac/static_analysis.cpp" "src/dac/CMakeFiles/csdac_dac.dir/static_analysis.cpp.o" "gcc" "src/dac/CMakeFiles/csdac_dac.dir/static_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/csdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mathx/CMakeFiles/csdac_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/csdac_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/csdac_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
