# Empty compiler generated dependencies file for csdac_dac.
# This may be replaced when dependencies are built.
