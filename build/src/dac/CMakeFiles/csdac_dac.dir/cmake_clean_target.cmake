file(REMOVE_RECURSE
  "libcsdac_dac.a"
)
