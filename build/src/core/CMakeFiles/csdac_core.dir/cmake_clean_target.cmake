file(REMOVE_RECURSE
  "libcsdac_core.a"
)
