file(REMOVE_RECURSE
  "CMakeFiles/csdac_core.dir/accuracy.cpp.o"
  "CMakeFiles/csdac_core.dir/accuracy.cpp.o.d"
  "CMakeFiles/csdac_core.dir/architecture.cpp.o"
  "CMakeFiles/csdac_core.dir/architecture.cpp.o.d"
  "CMakeFiles/csdac_core.dir/cell.cpp.o"
  "CMakeFiles/csdac_core.dir/cell.cpp.o.d"
  "CMakeFiles/csdac_core.dir/explorer.cpp.o"
  "CMakeFiles/csdac_core.dir/explorer.cpp.o.d"
  "CMakeFiles/csdac_core.dir/gate_bounds.cpp.o"
  "CMakeFiles/csdac_core.dir/gate_bounds.cpp.o.d"
  "CMakeFiles/csdac_core.dir/impedance.cpp.o"
  "CMakeFiles/csdac_core.dir/impedance.cpp.o.d"
  "CMakeFiles/csdac_core.dir/poles.cpp.o"
  "CMakeFiles/csdac_core.dir/poles.cpp.o.d"
  "CMakeFiles/csdac_core.dir/saturation.cpp.o"
  "CMakeFiles/csdac_core.dir/saturation.cpp.o.d"
  "CMakeFiles/csdac_core.dir/sizer.cpp.o"
  "CMakeFiles/csdac_core.dir/sizer.cpp.o.d"
  "libcsdac_core.a"
  "libcsdac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
