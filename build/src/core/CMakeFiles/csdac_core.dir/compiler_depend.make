# Empty compiler generated dependencies file for csdac_core.
# This may be replaced when dependencies are built.
