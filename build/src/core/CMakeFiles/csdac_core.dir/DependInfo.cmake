
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy.cpp" "src/core/CMakeFiles/csdac_core.dir/accuracy.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/accuracy.cpp.o.d"
  "/root/repo/src/core/architecture.cpp" "src/core/CMakeFiles/csdac_core.dir/architecture.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/architecture.cpp.o.d"
  "/root/repo/src/core/cell.cpp" "src/core/CMakeFiles/csdac_core.dir/cell.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/cell.cpp.o.d"
  "/root/repo/src/core/explorer.cpp" "src/core/CMakeFiles/csdac_core.dir/explorer.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/explorer.cpp.o.d"
  "/root/repo/src/core/gate_bounds.cpp" "src/core/CMakeFiles/csdac_core.dir/gate_bounds.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/gate_bounds.cpp.o.d"
  "/root/repo/src/core/impedance.cpp" "src/core/CMakeFiles/csdac_core.dir/impedance.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/impedance.cpp.o.d"
  "/root/repo/src/core/poles.cpp" "src/core/CMakeFiles/csdac_core.dir/poles.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/poles.cpp.o.d"
  "/root/repo/src/core/saturation.cpp" "src/core/CMakeFiles/csdac_core.dir/saturation.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/saturation.cpp.o.d"
  "/root/repo/src/core/sizer.cpp" "src/core/CMakeFiles/csdac_core.dir/sizer.cpp.o" "gcc" "src/core/CMakeFiles/csdac_core.dir/sizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/csdac_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/csdac_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
