file(REMOVE_RECURSE
  "libcsdac_dacgen.a"
)
