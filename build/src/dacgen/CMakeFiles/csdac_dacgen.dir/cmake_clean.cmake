file(REMOVE_RECURSE
  "CMakeFiles/csdac_dacgen.dir/dacgen.cpp.o"
  "CMakeFiles/csdac_dacgen.dir/dacgen.cpp.o.d"
  "libcsdac_dacgen.a"
  "libcsdac_dacgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_dacgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
