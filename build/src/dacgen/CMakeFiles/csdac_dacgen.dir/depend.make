# Empty dependencies file for csdac_dacgen.
# This may be replaced when dependencies are built.
