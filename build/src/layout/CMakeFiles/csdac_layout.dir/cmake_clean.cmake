file(REMOVE_RECURSE
  "CMakeFiles/csdac_layout.dir/floorplan.cpp.o"
  "CMakeFiles/csdac_layout.dir/floorplan.cpp.o.d"
  "CMakeFiles/csdac_layout.dir/gradient.cpp.o"
  "CMakeFiles/csdac_layout.dir/gradient.cpp.o.d"
  "CMakeFiles/csdac_layout.dir/lefdef.cpp.o"
  "CMakeFiles/csdac_layout.dir/lefdef.cpp.o.d"
  "CMakeFiles/csdac_layout.dir/switching.cpp.o"
  "CMakeFiles/csdac_layout.dir/switching.cpp.o.d"
  "libcsdac_layout.a"
  "libcsdac_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
