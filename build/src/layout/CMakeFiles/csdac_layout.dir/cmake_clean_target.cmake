file(REMOVE_RECURSE
  "libcsdac_layout.a"
)
