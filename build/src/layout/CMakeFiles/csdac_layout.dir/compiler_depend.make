# Empty compiler generated dependencies file for csdac_layout.
# This may be replaced when dependencies are built.
