
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/floorplan.cpp" "src/layout/CMakeFiles/csdac_layout.dir/floorplan.cpp.o" "gcc" "src/layout/CMakeFiles/csdac_layout.dir/floorplan.cpp.o.d"
  "/root/repo/src/layout/gradient.cpp" "src/layout/CMakeFiles/csdac_layout.dir/gradient.cpp.o" "gcc" "src/layout/CMakeFiles/csdac_layout.dir/gradient.cpp.o.d"
  "/root/repo/src/layout/lefdef.cpp" "src/layout/CMakeFiles/csdac_layout.dir/lefdef.cpp.o" "gcc" "src/layout/CMakeFiles/csdac_layout.dir/lefdef.cpp.o.d"
  "/root/repo/src/layout/switching.cpp" "src/layout/CMakeFiles/csdac_layout.dir/switching.cpp.o" "gcc" "src/layout/CMakeFiles/csdac_layout.dir/switching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/csdac_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/csdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/csdac_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
