file(REMOVE_RECURSE
  "CMakeFiles/csdac_digital.dir/decoder.cpp.o"
  "CMakeFiles/csdac_digital.dir/decoder.cpp.o.d"
  "CMakeFiles/csdac_digital.dir/gates.cpp.o"
  "CMakeFiles/csdac_digital.dir/gates.cpp.o.d"
  "libcsdac_digital.a"
  "libcsdac_digital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_digital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
