# Empty compiler generated dependencies file for csdac_digital.
# This may be replaced when dependencies are built.
