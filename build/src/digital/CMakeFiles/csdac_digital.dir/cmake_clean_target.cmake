file(REMOVE_RECURSE
  "libcsdac_digital.a"
)
