
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mathx/fft.cpp" "src/mathx/CMakeFiles/csdac_mathx.dir/fft.cpp.o" "gcc" "src/mathx/CMakeFiles/csdac_mathx.dir/fft.cpp.o.d"
  "/root/repo/src/mathx/fit.cpp" "src/mathx/CMakeFiles/csdac_mathx.dir/fit.cpp.o" "gcc" "src/mathx/CMakeFiles/csdac_mathx.dir/fit.cpp.o.d"
  "/root/repo/src/mathx/linalg.cpp" "src/mathx/CMakeFiles/csdac_mathx.dir/linalg.cpp.o" "gcc" "src/mathx/CMakeFiles/csdac_mathx.dir/linalg.cpp.o.d"
  "/root/repo/src/mathx/rng.cpp" "src/mathx/CMakeFiles/csdac_mathx.dir/rng.cpp.o" "gcc" "src/mathx/CMakeFiles/csdac_mathx.dir/rng.cpp.o.d"
  "/root/repo/src/mathx/stats.cpp" "src/mathx/CMakeFiles/csdac_mathx.dir/stats.cpp.o" "gcc" "src/mathx/CMakeFiles/csdac_mathx.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
