# Empty compiler generated dependencies file for csdac_mathx.
# This may be replaced when dependencies are built.
