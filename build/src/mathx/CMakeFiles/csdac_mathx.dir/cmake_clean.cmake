file(REMOVE_RECURSE
  "CMakeFiles/csdac_mathx.dir/fft.cpp.o"
  "CMakeFiles/csdac_mathx.dir/fft.cpp.o.d"
  "CMakeFiles/csdac_mathx.dir/fit.cpp.o"
  "CMakeFiles/csdac_mathx.dir/fit.cpp.o.d"
  "CMakeFiles/csdac_mathx.dir/linalg.cpp.o"
  "CMakeFiles/csdac_mathx.dir/linalg.cpp.o.d"
  "CMakeFiles/csdac_mathx.dir/rng.cpp.o"
  "CMakeFiles/csdac_mathx.dir/rng.cpp.o.d"
  "CMakeFiles/csdac_mathx.dir/stats.cpp.o"
  "CMakeFiles/csdac_mathx.dir/stats.cpp.o.d"
  "libcsdac_mathx.a"
  "libcsdac_mathx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_mathx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
