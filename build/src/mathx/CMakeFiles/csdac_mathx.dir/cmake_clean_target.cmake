file(REMOVE_RECURSE
  "libcsdac_mathx.a"
)
