file(REMOVE_RECURSE
  "CMakeFiles/csdac_spice.dir/circuit.cpp.o"
  "CMakeFiles/csdac_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/csdac_spice.dir/devices.cpp.o"
  "CMakeFiles/csdac_spice.dir/devices.cpp.o.d"
  "CMakeFiles/csdac_spice.dir/measures.cpp.o"
  "CMakeFiles/csdac_spice.dir/measures.cpp.o.d"
  "CMakeFiles/csdac_spice.dir/netlist_parser.cpp.o"
  "CMakeFiles/csdac_spice.dir/netlist_parser.cpp.o.d"
  "CMakeFiles/csdac_spice.dir/noise.cpp.o"
  "CMakeFiles/csdac_spice.dir/noise.cpp.o.d"
  "CMakeFiles/csdac_spice.dir/solver.cpp.o"
  "CMakeFiles/csdac_spice.dir/solver.cpp.o.d"
  "libcsdac_spice.a"
  "libcsdac_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
