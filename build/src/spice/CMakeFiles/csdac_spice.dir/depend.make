# Empty dependencies file for csdac_spice.
# This may be replaced when dependencies are built.
