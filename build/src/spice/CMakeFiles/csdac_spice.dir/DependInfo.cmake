
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/csdac_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/csdac_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/devices.cpp" "src/spice/CMakeFiles/csdac_spice.dir/devices.cpp.o" "gcc" "src/spice/CMakeFiles/csdac_spice.dir/devices.cpp.o.d"
  "/root/repo/src/spice/measures.cpp" "src/spice/CMakeFiles/csdac_spice.dir/measures.cpp.o" "gcc" "src/spice/CMakeFiles/csdac_spice.dir/measures.cpp.o.d"
  "/root/repo/src/spice/netlist_parser.cpp" "src/spice/CMakeFiles/csdac_spice.dir/netlist_parser.cpp.o" "gcc" "src/spice/CMakeFiles/csdac_spice.dir/netlist_parser.cpp.o.d"
  "/root/repo/src/spice/noise.cpp" "src/spice/CMakeFiles/csdac_spice.dir/noise.cpp.o" "gcc" "src/spice/CMakeFiles/csdac_spice.dir/noise.cpp.o.d"
  "/root/repo/src/spice/solver.cpp" "src/spice/CMakeFiles/csdac_spice.dir/solver.cpp.o" "gcc" "src/spice/CMakeFiles/csdac_spice.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/csdac_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/csdac_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
