file(REMOVE_RECURSE
  "libcsdac_spice.a"
)
