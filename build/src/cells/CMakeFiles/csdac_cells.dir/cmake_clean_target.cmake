file(REMOVE_RECURSE
  "libcsdac_cells.a"
)
