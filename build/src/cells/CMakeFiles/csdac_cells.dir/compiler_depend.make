# Empty compiler generated dependencies file for csdac_cells.
# This may be replaced when dependencies are built.
