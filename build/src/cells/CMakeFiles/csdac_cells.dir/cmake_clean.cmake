file(REMOVE_RECURSE
  "CMakeFiles/csdac_cells.dir/cells.cpp.o"
  "CMakeFiles/csdac_cells.dir/cells.cpp.o.d"
  "libcsdac_cells.a"
  "libcsdac_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdac_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
