# CMake generated Testfile for 
# Source directory: /root/repo/src/cells
# Build directory: /root/repo/build/src/cells
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
