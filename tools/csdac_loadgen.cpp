// Load generator for the design server: N concurrent clients firing
// overlapping job sets at one csdac_serve --listen process, measuring
// per-request latency (p50/p99) and saturation throughput, and verifying
// that every client sees bit-identical results for the same question —
// the server-side scheduler dedups and caches, but must never change an
// answer. Emits a machine-readable csdac-bench/5 document (validated in
// CI by tools/check_bench_json.py, serve-smoke job).
//
//   csdac_loadgen --port N [--host H] [--port-file PATH] [--clients C]
//                 [--requests R] [--jobs-per-request J] [--unique K]
//                 [--chips N] [--out BENCH.json] [--smoke] [--shutdown]
//
// Client c's r-th request asks for jobs (c + r + j) % K of K unique
// questions, so concurrent clients collide on the same keys constantly —
// the worst (best) case for cross-request dedup. Exits nonzero on any
// transport error, error frame, or cross-client result mismatch.
//
// Every request carries a "trace_id" (lg-<client>-<r>) the server must
// echo; replies' per-job "stages" objects are aggregated into a
// server-side latency attribution (admission / queue / hot / disk /
// compute / store / serialize, mean us per job) reported next to the
// client-observed p50/p99 — a cold run shows the compute stage dominating
// and a warm run attributes ~0 us to compute.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "runtime/json.hpp"
#include "serve/client.hpp"
#include "serve/response.hpp"

using namespace csdac;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "csdac_loadgen: %s\n", msg.c_str());
  std::exit(1);
}

struct Options {
  std::string host = "127.0.0.1";
  std::string port_file;
  std::string out_path = "BENCH_serve.json";
  int port = 0;
  int clients = 4;
  int requests = 8;  ///< per client
  int jobs_per_request = 1;
  int unique = 4;  ///< distinct questions across the whole run
  int chips = 200;
  bool smoke = false;
  bool shutdown = false;
};

Options parse_args(int argc, char** argv) {
  Options o;
  const auto value = [&](int& a) -> const char* {
    if (a + 1 >= argc) die("missing value for " + std::string(argv[a]));
    return argv[++a];
  };
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--host") == 0) o.host = value(a);
    else if (std::strcmp(argv[a], "--port") == 0) o.port = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--port-file") == 0) o.port_file = value(a);
    else if (std::strcmp(argv[a], "--clients") == 0)
      o.clients = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--requests") == 0)
      o.requests = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--jobs-per-request") == 0)
      o.jobs_per_request = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--unique") == 0)
      o.unique = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--chips") == 0)
      o.chips = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--out") == 0) o.out_path = value(a);
    else if (std::strcmp(argv[a], "--smoke") == 0) o.smoke = true;
    else if (std::strcmp(argv[a], "--shutdown") == 0) o.shutdown = true;
    else die("unknown argument " + std::string(argv[a]));
  }
  if (o.clients < 1 || o.requests < 1 || o.jobs_per_request < 1 ||
      o.unique < 1 || o.chips < 1) {
    die("counts must be positive");
  }
  if (!o.port_file.empty()) {
    // The server is usually started in the background right before the
    // loadgen; give it a bounded moment to bind and write the file.
    for (int attempt = 0; o.port <= 0 && attempt < 50; ++attempt) {
      if (attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      std::ifstream pf(o.port_file);
      if (pf && (pf >> o.port)) break;
    }
    if (o.port <= 0) die("cannot read port from " + o.port_file);
  }
  if (o.port <= 0) die("no --port (or --port-file) given");
  return o;
}

/// The u-th unique question: a small INL-yield study whose seed encodes u,
/// so distinct u have distinct cache keys and identical u are identical.
std::string job_payload(int u, int chips) {
  bench::JsonWriter w;
  w.begin_object();
  w.field("id", "u" + std::to_string(u));
  w.field("kind", "inl_yield");
  w.field("chips", chips);
  w.field("seed", 7000 + u);
  w.field("sigma_mult", 1.0);
  w.end_object();
  return w.str();
}

std::string loadgen_trace_id(int client, int r) {
  return "lg-" + std::to_string(client) + "-" + std::to_string(r);
}

std::string request_payload(const Options& o, int client, int r) {
  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", "csdac-request/1");
  w.field("trace_id", loadgen_trace_id(client, r));
  w.key("jobs").begin_array();
  for (int j = 0; j < o.jobs_per_request; ++j) {
    w.raw(job_payload((client + r + j) % o.unique, o.chips));
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Canonical serialization of a parsed JSON value, for byte-comparing
/// "result" objects across clients (insertion order is parse order, which
/// is identical for identical server output).
void dump_json(const runtime::JsonValue& v, std::string& out) {
  using T = runtime::JsonValue::Type;
  switch (v.type) {
    case T::kNull: out += "null"; break;
    case T::kBool: out += v.b ? "true" : "false"; break;
    case T::kNumber: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.num);
      out += buf;
      break;
    }
    case T::kString:
      out += '"';
      runtime::append_json_escaped(out, v.str);
      out += '"';
      break;
    case T::kArray:
      out += '[';
      for (std::size_t i = 0; i < v.arr.size(); ++i) {
        if (i) out += ',';
        dump_json(v.arr[i], out);
      }
      out += ']';
      break;
    case T::kObject:
      out += '{';
      for (std::size_t i = 0; i < v.obj.size(); ++i) {
        if (i) out += ',';
        out += '"';
        runtime::append_json_escaped(out, v.obj[i].first);
        out += "\":";
        dump_json(v.obj[i].second, out);
      }
      out += '}';
      break;
  }
}

/// The per-job stage fields of a serve/4 reply, aggregation order.
constexpr const char* kStageFields[] = {
    "admission_us", "queue_us", "compute_us", "hot_us",
    "disk_us",      "store_us", "serialize_us"};
constexpr int kNumStages = 7;

struct Shared {
  std::mutex mutex;
  std::map<std::string, std::string> results;  ///< job id -> result JSON
  std::vector<double> latencies_us;
  std::int64_t errors = 0;
  std::int64_t mismatches = 0;
  std::int64_t chip_evals = 0;
  std::int64_t requests = 0;
  std::int64_t stage_sums[kNumStages] = {};  ///< summed over all jobs
  std::int64_t stage_jobs = 0;  ///< jobs contributing stage records
};

void note_error(Shared& s, const std::string& msg) {
  std::lock_guard<std::mutex> lock(s.mutex);
  ++s.errors;
  std::fprintf(stderr, "csdac_loadgen: %s\n", msg.c_str());
}

bool connect_with_retry(serve::Client& c, const Options& o,
                        std::string* err) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (c.connect(o.host, o.port, err)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

void client_main(const Options& o, int client, Shared& s) {
  serve::Client conn;
  std::string err;
  if (!connect_with_retry(conn, o, &err)) {
    note_error(s, "client " + std::to_string(client) + ": " + err);
    return;
  }
  std::string reply;
  for (int r = 0; r < o.requests; ++r) {
    const std::string payload = request_payload(o, client, r);
    const auto t0 = std::chrono::steady_clock::now();
    const serve::FrameStatus st = conn.call(payload, reply);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (st != serve::FrameStatus::kOk) {
      note_error(s, "client " + std::to_string(client) + " request " +
                        std::to_string(r) + ": transport " +
                        std::string(serve::frame_status_name(st)));
      return;
    }
    runtime::JsonValue doc;
    if (!runtime::parse_json(reply, doc, &err)) {
      note_error(s, "unparseable reply: " + err);
      return;
    }
    if (doc.find("error")) {
      std::string text;
      dump_json(*doc.find("error"), text);
      note_error(s, "server error: " + text);
      return;
    }
    if (doc.string_or("schema", "") != serve::kResponseSchema) {
      note_error(s, "unexpected reply schema");
      return;
    }
    if (doc.string_or("trace_id", "") != loadgen_trace_id(client, r)) {
      note_error(s, "reply does not echo the request trace_id");
      return;
    }
    const auto* jobs = doc.find("jobs");
    if (!jobs || !jobs->is_array()) {
      note_error(s, "reply has no jobs array");
      return;
    }

    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.requests;
    s.latencies_us.push_back(us);
    if (const auto* summary = doc.find("summary")) {
      s.chip_evals += summary->int_or("chip_evals", 0);
    }
    for (const auto& job : jobs->arr) {
      if (job.find("error")) {
        ++s.errors;
        continue;
      }
      const std::string id = job.string_or("id", "");
      const auto* result = job.find("result");
      if (id.empty() || !result) {
        ++s.errors;
        continue;
      }
      if (const auto* stages = job.find("stages");
          stages && stages->is_object()) {
        ++s.stage_jobs;
        for (int st = 0; st < kNumStages; ++st) {
          s.stage_sums[st] += stages->int_or(kStageFields[st], 0);
        }
      }
      std::string text;
      dump_json(*result, text);
      const auto [it, fresh] = s.results.emplace(id, text);
      if (!fresh && it->second != text) {
        ++s.mismatches;
        std::fprintf(stderr,
                     "csdac_loadgen: MISMATCH on %s:\n  first: %s\n  "
                     "now:   %s\n",
                     id.c_str(), it->second.c_str(), text.c_str());
      }
    }
  }
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  Shared s;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(o.clients));
  for (int c = 0; c < o.clients; ++c) {
    threads.emplace_back([&o, c, &s] { client_main(o, c, s); });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (o.shutdown) {
    serve::Client conn;
    std::string err, reply;
    if (connect_with_retry(conn, o, &err)) {
      conn.call("{\"schema\":\"csdac-ctl/1\",\"cmd\":\"shutdown\"}", reply);
    }
  }

  const double p50 = percentile(s.latencies_us, 0.50);
  const double p99 = percentile(s.latencies_us, 0.99);
  double mean = 0.0;
  for (const double v : s.latencies_us) mean += v;
  if (!s.latencies_us.empty()) {
    mean /= static_cast<double>(s.latencies_us.size());
  }
  const double rps = wall > 0 ? static_cast<double>(s.requests) / wall : 0;

  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", "csdac-bench/5");
  const char* sha = std::getenv("GITHUB_SHA");
  w.field("git_sha", sha ? sha : "");
  w.field("generated_unix", static_cast<std::int64_t>(std::time(nullptr)));
  w.field("smoke", o.smoke);
  w.field("threads", o.clients);
  w.field("hardware_threads",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.key("benches").begin_array();
  w.begin_object();
  w.field("name", "serve_loadgen");
  w.key("config").begin_object();
  w.field("host", o.host);
  w.field("port", o.port);
  w.field("clients", o.clients);
  w.field("requests_per_client", o.requests);
  w.field("jobs_per_request", o.jobs_per_request);
  w.field("unique_jobs", o.unique);
  w.field("chips", o.chips);
  w.end_object();
  w.key("serve").begin_object();
  w.field("requests", s.requests);
  w.field("errors", s.errors);
  w.field("mismatches", s.mismatches);
  w.field("wall_s", wall);
  w.field("requests_per_s", rps);
  w.field("p50_us", p50);
  w.field("p99_us", p99);
  w.field("mean_us", mean);
  w.field("chip_evals", s.chip_evals);
  // Server-side attribution: where the time went INSIDE the server,
  // summed over every job the run received stages for. The client p50/p99
  // above includes network + framing on top of these.
  w.key("server_stages").begin_object();
  w.field("jobs", s.stage_jobs);
  for (int st = 0; st < kNumStages; ++st) {
    w.field(kStageFields[st], s.stage_sums[st]);
  }
  w.end_object();
  w.end_object();
  w.end_object();
  w.end_array();
  w.end_object();

  std::ofstream out(o.out_path, std::ios::binary);
  if (!out) die("cannot write " + o.out_path);
  out << w.str() << "\n";
  out.close();

  std::printf(
      "csdac_loadgen: %lld requests from %d clients in %.3f s "
      "(%.1f req/s, p50 %.0f us, p99 %.0f us, %lld chip evals, "
      "%lld errors, %lld mismatches)\n",
      static_cast<long long>(s.requests), o.clients, wall, rps, p50, p99,
      static_cast<long long>(s.chip_evals),
      static_cast<long long>(s.errors),
      static_cast<long long>(s.mismatches));
  if (s.stage_jobs > 0) {
    std::printf("csdac_loadgen: server stages, mean us/job over %lld jobs:",
                static_cast<long long>(s.stage_jobs));
    for (int st = 0; st < kNumStages; ++st) {
      std::printf(" %s %.0f", kStageFields[st],
                  static_cast<double>(s.stage_sums[st]) /
                      static_cast<double>(s.stage_jobs));
    }
    std::printf("\n");
  }
  std::printf("wrote %s\n", o.out_path.c_str());
  return s.errors == 0 && s.mismatches == 0 &&
                 s.requests ==
                     static_cast<std::int64_t>(o.clients) * o.requests
             ? 0
             : 1;
}
