#!/usr/bin/env python3
"""Validate Prometheus text-exposition dumps written by csdac tools.

Parses the dump (stdlib only — no prometheus_client in the toolchain),
checks the exposition structure, then applies csdac-specific invariants:

  * every sample line is `name value` with a finite non-negative value,
    names match [a-zA-Z_][a-zA-Z0-9_]*; the label form `name{k="v",...}`
    is accepted on any sample, with the exposition escapes (\\, \",
    \n) decoded and series identity taken as (name, label set);
  * every metric has a # TYPE line (HELP is optional — instruments may
    register without help text) declaring counter/gauge/histogram;
  * counters end in _total; histogram series are complete (_bucket with
    a trailing le="+Inf", _sum, _count), bucket counts are cumulative
    (monotone in le) and the +Inf bucket equals _count — checked per
    label group, so csdac_serve_stage_us{kind=...,stage=...} must be a
    complete histogram for every (kind, stage) pair it mentions.

Modes:
  check_metrics.py METRICS.prom [--expect-simd BACKEND] [--expect-serve]
      Structural validation plus cold-run sanity: chips evaluated > 0 and
      cache misses >= 1 when the cache counters are present. The SIMD
      dispatch counters (csdac_simd_dispatch_{scalar,sse2,avx2}_total)
      must all be present with at least one Monte-Carlo run recorded.
      --expect-simd additionally pins WHICH backend ran: that backend's
      counter must be positive and the other two zero (used by CI to
      prove the CSDAC_SIMD override reached the kernels).
  check_metrics.py --cold COLD.prom --warm WARM.prom
      Additionally asserts the warm run recomputed nothing: the warm dump
      must show csdac_cache_misses_total == 0,
      csdac_mc_chips_evaluated_total == 0, csdac_cache_hits_total >= 1,
      and warm hits >= cold misses (every cold result reached the store).

--expect-serve (either mode) additionally requires the design-server
counters: connections and requests accepted, zero error frames, a
complete serve.request_us latency histogram. Used by the CI serve-smoke
job on the dumps the server writes at shutdown.

--expect-rare (either mode) additionally requires the rare-event
estimator instruments: the cold dump must show at least one importance-
sampling run with proposal chips drawn and a positive csdac_rare_ess
gauge (the ESS diagnostic actually reached the registry); the warm dump
must show ZERO rare-event proposal chips — a cached IS result must be
served without re-running the estimator.

--expect-spice (either mode) additionally requires the sparse-MNA SPICE
instruments: the cold dump must show at least one SPICE mismatch-MC run
with Newton iterations, batched device evaluations, and — the point of
the symbolic-reuse engine — at least one symbolic factorization that was
then replayed as numeric refactorizations; the warm dump must show ZERO
Newton iterations and device evaluations — a cached SPICE MC result must
be served without re-simulating anything.

--expect-stages (either mode) requires the per-stage latency attribution
histograms (csdac_serve_stage_us{kind=...,stage=...}): every kind that
appears must carry the full stage set (admission, queue, hot, disk,
compute, store, serialize, total). On a cold dump the compute stage must
have accumulated positive time (work actually ran). On a warm dump the
compute stage must have count > 0 with sum == 0: every job was observed
through the stage pipeline, and every one of them skipped compute
because the cache answered.

--expect-arch (either mode) additionally requires the dynamic-error
architecture instruments: the cold dump must show at least one
dyn-spectrum run with waveform syntheses and ETE predictions recorded;
the warm dump must show ZERO waveform syntheses — a cached dyn-spectrum
result must be served without re-synthesizing waveforms.

Exits nonzero with a message on the first violation.
"""
import math
import re
import sys

SIMD_BACKENDS = ("scalar", "sse2", "avx2")

NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

STAGE_HIST = "csdac_serve_stage_us"
STAGES = ("admission", "queue", "hot", "disk", "compute", "store",
          "serialize", "total")


def fail(msg):
    print(f"check_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_sample_name(raw, where):
    """Splits `name{k="v",...}` into (name, labels) with labels a tuple of
    (key, value) pairs, decoding the exposition escapes (backslash, quote,
    newline). A bare name yields an empty label tuple."""
    brace = raw.find("{")
    if brace < 0:
        if not NAME_RE.match(raw):
            fail(f"{where}: bad metric name {raw!r}")
        return raw, ()
    name = raw[:brace]
    if not NAME_RE.match(name):
        fail(f"{where}: bad metric name {name!r}")
    if not raw.endswith("}"):
        fail(f"{where}: unterminated label set in {raw!r}")
    body = raw[brace + 1:-1]
    labels = []
    i = 0
    while i < len(body):
        eq = body.find('="', i)
        if eq < 0:
            fail(f"{where}: malformed label set in {raw!r}")
        key = body[i:eq]
        if not NAME_RE.match(key):
            fail(f"{where}: bad label name {key!r} in {raw!r}")
        i = eq + 2
        val = []
        while True:
            if i >= len(body):
                fail(f"{where}: unterminated label value in {raw!r}")
            c = body[i]
            if c == "\\":
                if i + 1 >= len(body):
                    fail(f"{where}: dangling escape in {raw!r}")
                esc = body[i + 1]
                if esc == "n":
                    val.append("\n")
                elif esc in ('"', "\\"):
                    val.append(esc)
                else:
                    fail(f"{where}: unknown escape \\{esc} in {raw!r}")
                i += 2
            elif c == '"':
                i += 1
                break
            else:
                val.append(c)
                i += 1
        labels.append((key, "".join(val)))
        if i < len(body):
            if body[i] != ",":
                fail(f"{where}: expected ',' between labels in {raw!r}")
            i += 1
            if i >= len(body):
                fail(f"{where}: trailing comma in {raw!r}")
    return name, tuple(sorted(labels))


def sample_key(name, labels):
    """Series identity: plain string for label-free samples (keeps the
    existing check_* helpers untouched), (name, labels) otherwise."""
    return name if not labels else (name, labels)


def labels_text(labels):
    return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"


def parse_value(text, where):
    try:
        v = float(text)
    except ValueError:
        fail(f"{where}: bad sample value {text!r}")
    if math.isnan(v) or math.isinf(v):
        fail(f"{where}: non-finite sample value {text!r}")
    return v


def parse_exposition(path):
    """Returns (samples, types): samples maps a series key — the bare
    name, or (name, labels) for labeled series — to its value; types maps
    metric name to the declared TYPE."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if not lines:
        fail(f"{path} is empty")

    samples = {}
    types = {}
    for i, line in enumerate(lines, 1):
        where = f"{path}:{i}"
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                fail(f"{where}: HELP line without text")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(f"{where}: malformed TYPE line")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram"):
                fail(f"{where}: unknown metric type {kind!r}")
            if name in types:
                fail(f"{where}: duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        # rsplit, not split: label values may legally contain spaces
        # (the escaper only rewrites backslash, quote, newline).
        fields = line.rsplit(None, 1)
        if len(fields) != 2:
            fail(f"{where}: sample line is not `name value`")
        raw_name, value = fields
        name, labels = parse_sample_name(raw_name, where)
        key = sample_key(name, labels)
        if key in samples:
            fail(f"{where}: duplicate sample {raw_name!r}")
        samples[key] = parse_value(value, where)
    if not types:
        fail(f"{path}: no TYPE lines — not an exposition dump?")
    return samples, types


def le_key(le):
    return math.inf if le == "+Inf" else float(le)


def series_of(samples, name):
    """All samples of one metric as (labels, value) pairs."""
    out = []
    for key, v in samples.items():
        if key == name:
            out.append(((), v))
        elif isinstance(key, tuple) and key[0] == name:
            out.append((key[1], v))
    return out


def check_structure(path, samples, types):
    for name, kind in types.items():
        if kind == "counter":
            if not name.endswith("_total"):
                fail(f"{path}: counter {name} lacks _total suffix")
            series = series_of(samples, name)
            if not series:
                fail(f"{path}: counter {name} has no sample")
            for labels, v in series:
                if v < 0:
                    fail(f"{path}: counter {name}{labels_text(labels)} "
                         f"is negative")
        elif kind == "gauge":
            if not series_of(samples, name):
                fail(f"{path}: gauge {name} has no sample")
        elif kind == "histogram":
            # Group the buckets by their non-le labels: each group is an
            # independent histogram series needing +Inf / _sum / _count.
            groups = {}
            for labels, v in series_of(samples, name + "_bucket"):
                les = [lv for lk, lv in labels if lk == "le"]
                if len(les) != 1:
                    fail(f"{path}: bucket {name}{labels_text(labels)} "
                         f"needs exactly one le label")
                group = tuple(p for p in labels if p[0] != "le")
                groups.setdefault(group, []).append((le_key(les[0]), v))
            if not groups:
                fail(f"{path}: histogram {name} has no buckets")
            for group, buckets in sorted(groups.items()):
                tag = name + (labels_text(group) if group else "")
                buckets.sort(key=lambda p: p[0])
                if buckets[-1][0] != math.inf:
                    fail(f"{path}: histogram {tag} lacks a +Inf bucket")
                prev = -1
                for le, count in buckets:
                    if count < prev:
                        fail(f"{path}: histogram {tag} bucket le={le} "
                             f"count {count} below previous {prev} "
                             f"(not cumulative)")
                    prev = count
                for suffix in ("_sum", "_count"):
                    if sample_key(name + suffix, group) not in samples:
                        fail(f"{path}: histogram {tag} lacks {suffix}")
                count = samples[sample_key(name + "_count", group)]
                if buckets[-1][1] != count:
                    fail(f"{path}: histogram {tag} +Inf bucket "
                         f"{buckets[-1][1]} != _count {count}")
    # Every sample must belong to a declared metric.
    for key in samples:
        base = key[0] if isinstance(key, tuple) else key
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base.removesuffix(
                    suffix) in types:
                base = base.removesuffix(suffix)
                break
        if base not in types:
            fail(f"{path}: sample {key!r} has no TYPE declaration")


def counter(samples, name, default=None):
    v = samples.get(name, default)
    if v is None:
        fail(f"expected counter {name} in dump")
    return v


def check_cold(path, samples):
    if counter(samples, "csdac_mc_chips_evaluated_total") <= 0:
        fail(f"{path}: cold run evaluated no Monte-Carlo chips")
    if "csdac_cache_misses_total" in samples:
        if counter(samples, "csdac_cache_misses_total") < 1:
            fail(f"{path}: cold run shows no cache misses")
    check_simd(path, samples)


def check_simd(path, samples, expect=None):
    """The SIMD dispatch counters are registered eagerly, so every dump
    must carry all three; a run that evaluated chips must have recorded at
    least one dispatch. With `expect`, only that backend may be positive —
    this is how CI proves a CSDAC_SIMD override actually took effect."""
    dispatch = {
        b: counter(samples, f"csdac_simd_dispatch_{b}_total")
        for b in SIMD_BACKENDS
    }
    if sum(dispatch.values()) < 1:
        fail(f"{path}: no SIMD dispatch recorded despite chip evaluations")
    if expect is not None:
        if expect not in dispatch:
            fail(f"--expect-simd {expect!r}: unknown backend "
                 f"(one of {SIMD_BACKENDS})")
        if dispatch[expect] < 1:
            fail(f"{path}: expected {expect} dispatches, counter is 0")
        for b, v in dispatch.items():
            if b != expect and v != 0:
                fail(f"{path}: expected only {expect} dispatches, but "
                     f"{b} recorded {int(v)}")


def check_serve(path, samples):
    """A dump from the design server must show it actually served:
    connections accepted, requests answered, no error frames, and the
    request latency histogram populated."""
    if counter(samples, "csdac_serve_connections_total") < 1:
        fail(f"{path}: server accepted no connections")
    requests = counter(samples, "csdac_serve_requests_total")
    if requests < 1:
        fail(f"{path}: server answered no requests")
    if counter(samples, "csdac_serve_errors_total", 0) != 0:
        fail(f"{path}: server sent "
             f"{int(samples['csdac_serve_errors_total'])} error frame(s)")
    latency_count = samples.get("csdac_serve_request_us_count", 0)
    if latency_count < requests:
        fail(f"{path}: latency histogram recorded {int(latency_count)} "
             f"requests, counter says {int(requests)}")


def check_rare_cold(path, samples):
    """A dump from a run that importance-sampled a rare-event job."""
    if counter(samples, "csdac_rare_is_runs_total") < 1:
        fail(f"{path}: no importance-sampling runs recorded")
    if counter(samples, "csdac_rare_is_chips_total") < 1:
        fail(f"{path}: importance sampling drew no proposal chips")
    ess = samples.get("csdac_rare_ess")
    if ess is None:
        fail(f"{path}: rare-event run did not publish the csdac_rare_ess "
             f"gauge")
    if ess <= 0:
        fail(f"{path}: csdac_rare_ess is {ess} — the reweighted estimate "
             f"carries no information")
    essf = samples.get("csdac_rare_ess_fraction")
    if essf is None or not 0.0 < essf <= 1.0:
        fail(f"{path}: csdac_rare_ess_fraction missing or out of (0, 1] "
             f"(got {essf!r})")


def check_rare_warm(path, samples):
    if counter(samples, "csdac_rare_is_chips_total", 0) != 0:
        fail(f"{path}: warm run drew rare-event proposal chips — the "
             f"cached IS result was recomputed")


def check_arch_cold(path, samples):
    """A dump from a run that executed a dynamic-spectrum timing-MC job."""
    if counter(samples, "csdac_arch_dyn_runs_total") < 1:
        fail(f"{path}: no dynamic-spectrum runs recorded")
    if counter(samples, "csdac_arch_waveforms_total") < 1:
        fail(f"{path}: dyn-spectrum run synthesized no waveforms")
    if counter(samples, "csdac_arch_ete_evals_total") < 1:
        fail(f"{path}: dyn-spectrum run made no ETE predictions — the "
             f"analytic cross-check never ran")


def check_arch_warm(path, samples):
    if counter(samples, "csdac_arch_waveforms_total", 0) != 0:
        fail(f"{path}: warm run synthesized waveforms — the cached "
             f"dyn-spectrum result was recomputed")


def check_spice_cold(path, samples):
    """A dump from a run that executed a SPICE-in-the-loop mismatch MC."""
    if counter(samples, "csdac_spice_mc_runs_total") < 1:
        fail(f"{path}: no SPICE mismatch-MC runs recorded")
    if counter(samples, "csdac_spice_newton_iters_total") < 1:
        fail(f"{path}: SPICE run recorded no Newton iterations")
    if counter(samples, "csdac_spice_device_evals_total") < 1:
        fail(f"{path}: SPICE run made no batched device evaluations")
    if counter(samples, "csdac_spice_factorizations_total") < 1:
        fail(f"{path}: SPICE run never built a symbolic factorization — "
             f"the sparse engine was not exercised")
    if counter(samples, "csdac_spice_refactorizations_total") < 1:
        fail(f"{path}: SPICE run never reused a symbolic factorization — "
             f"every solve paid the full symbolic cost")
    rate = samples.get("csdac_spice_warm_start_hit_rate")
    if rate is None or not 0.0 <= rate <= 1.0:
        fail(f"{path}: csdac_spice_warm_start_hit_rate missing or out of "
             f"[0, 1] (got {rate!r})")


def check_spice_warm(path, samples):
    for name in ("csdac_spice_newton_iters_total",
                 "csdac_spice_device_evals_total"):
        if counter(samples, name, 0) != 0:
            fail(f"{path}: warm run shows nonzero {name} — the cached "
                 f"SPICE MC result was re-simulated")


def stage_values(samples, suffix):
    """(kind, stage) -> value over csdac_serve_stage_us_<suffix> series."""
    out = {}
    for labels, v in series_of(samples, STAGE_HIST + suffix):
        d = dict(labels)
        if "kind" in d and "stage" in d:
            out[(d["kind"], d["stage"])] = v
    return out


def check_stages_complete(path, samples):
    """Every job kind that shows up in the stage histograms must carry
    the full stage vocabulary — a missing stage means some path through
    handle_request skipped part of the attribution pipeline."""
    sums = stage_values(samples, "_sum")
    if not sums:
        fail(f"{path}: no {STAGE_HIST} series — per-stage latency "
             f"attribution never reached the registry")
    for kind in sorted({k for k, _ in sums}):
        for stage in STAGES:
            if (kind, stage) not in sums:
                fail(f"{path}: stage histograms for kind={kind} lack "
                     f"stage={stage}")
    return sums


def check_stages_cold(path, samples):
    sums = check_stages_complete(path, samples)
    compute = sum(v for (_, s), v in sums.items() if s == "compute")
    if compute <= 0:
        fail(f"{path}: cold run attributed zero compute time — stage "
             f"timing is not reaching the executor")


def check_stages_warm(path, samples):
    sums = check_stages_complete(path, samples)
    counts = stage_values(samples, "_count")
    observed = sum(v for (_, s), v in counts.items() if s == "compute")
    if observed < 1:
        fail(f"{path}: warm run observed no jobs through the compute "
             f"stage — zero-duration stages must still be recorded")
    compute = sum(v for (_, s), v in sums.items() if s == "compute")
    if compute != 0:
        fail(f"{path}: warm run attributed {int(compute)} us of compute "
             f"— the cache did not answer everything")


def check_warm(path, samples):
    if counter(samples, "csdac_cache_misses_total", 0) != 0:
        fail(f"{path}: warm run has cache misses — the cache did not "
             f"answer everything")
    if counter(samples, "csdac_mc_chips_evaluated_total", 0) != 0:
        fail(f"{path}: warm run evaluated Monte-Carlo chips")
    if counter(samples, "csdac_cache_hits_total", 0) < 1:
        fail(f"{path}: warm run shows no cache hits")


def main(argv):
    expect_serve = "--expect-serve" in argv
    argv = [a for a in argv if a != "--expect-serve"]
    expect_rare = "--expect-rare" in argv
    argv = [a for a in argv if a != "--expect-rare"]
    expect_arch = "--expect-arch" in argv
    argv = [a for a in argv if a != "--expect-arch"]
    expect_spice = "--expect-spice" in argv
    argv = [a for a in argv if a != "--expect-spice"]
    expect_stages = "--expect-stages" in argv
    argv = [a for a in argv if a != "--expect-stages"]
    expect_simd = None
    if len(argv) == 4 and argv[2] == "--expect-simd":
        expect_simd = argv[3]
        argv = argv[:2]
    if len(argv) == 2 and not argv[1].startswith("-"):
        samples, types = parse_exposition(argv[1])
        check_structure(argv[1], samples, types)
        check_cold(argv[1], samples)
        if expect_simd is not None:
            check_simd(argv[1], samples, expect_simd)
        if expect_serve:
            check_serve(argv[1], samples)
        if expect_rare:
            check_rare_cold(argv[1], samples)
        if expect_arch:
            check_arch_cold(argv[1], samples)
        if expect_spice:
            check_spice_cold(argv[1], samples)
        if expect_stages:
            check_stages_cold(argv[1], samples)
        print(f"check_metrics: OK — {argv[1]}: {len(types)} metrics, "
              f"{len(samples)} samples")
        return 0
    if len(argv) == 5 and argv[1] == "--cold" and argv[3] == "--warm":
        cold_path, warm_path = argv[2], argv[4]
        cold, cold_types = parse_exposition(cold_path)
        warm, warm_types = parse_exposition(warm_path)
        check_structure(cold_path, cold, cold_types)
        check_structure(warm_path, warm, warm_types)
        check_cold(cold_path, cold)
        check_warm(warm_path, warm)
        if expect_serve:
            check_serve(cold_path, cold)
            check_serve(warm_path, warm)
        if expect_rare:
            check_rare_cold(cold_path, cold)
            check_rare_warm(warm_path, warm)
        if expect_arch:
            check_arch_cold(cold_path, cold)
            check_arch_warm(warm_path, warm)
        if expect_spice:
            check_spice_cold(cold_path, cold)
            check_spice_warm(warm_path, warm)
        if expect_stages:
            check_stages_cold(cold_path, cold)
            check_stages_warm(warm_path, warm)
        if counter(warm, "csdac_cache_hits_total") < counter(
                cold, "csdac_cache_misses_total"):
            fail("warm hits < cold misses: some cold results never "
                 "reached the cache")
        print(f"check_metrics: OK — cold evaluated "
              f"{int(cold['csdac_mc_chips_evaluated_total'])} chips with "
              f"{int(cold['csdac_cache_misses_total'])} misses; warm "
              f"served {int(warm['csdac_cache_hits_total'])} hits with "
              f"0 chips")
        return 0
    print("usage: check_metrics.py METRICS.prom [--expect-simd BACKEND] "
          "[--expect-serve] [--expect-rare] [--expect-arch] "
          "[--expect-spice] [--expect-stages]\n"
          "       check_metrics.py --cold COLD.prom --warm WARM.prom "
          "[--expect-serve] [--expect-rare] [--expect-arch] "
          "[--expect-spice] [--expect-stages]",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
