#!/usr/bin/env python3
"""Validate a flight-recorder dump (Chrome trace JSON) from the design
server (`csdac_serve --flight-out`, `csdac-ctl dump`, or the fatal-error
handler).

The dump must be the Chrome trace object form: a JSON object whose
`traceEvents` array holds metadata events (ph "M": process_name /
thread_name) and complete events (ph "X") with name, numeric ts/dur and
pid/tid. Loadable as-is in chrome://tracing or Perfetto.

Checks, in order:
  * the file parses as JSON and has the object-with-traceEvents shape;
  * every event carries a valid ph; every "X" event has a non-empty name
    and finite, non-negative ts and dur;
  * at least --min-events complete events were captured (default 1 —
    an empty flight ring usually means the span sink was never
    installed);
  * with --expect-trace PREFIX: at least one complete event carries
    args.trace_id starting with PREFIX — proves request-scoped trace ids
    made it through the server into the flight ring (loadgen mints
    `lg-<client>-<n>`, the server mints `sv-<conn>-<n>`);
  * with --expect-name NAME (repeatable): a complete event with that
    exact span name exists — used to assert the request landed in every
    layer (serve.request / sched.job / exec.job).

Exits nonzero with a message on the first violation.
"""
import json
import math
import sys


def fail(msg):
    print(f"check_trace_dump: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def finite_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) \
        and math.isfinite(v)


def main(argv):
    path = None
    min_events = 1
    expect_trace = None
    expect_names = []
    i = 1
    while i < len(argv):
        a = argv[i]
        if a == "--min-events":
            i += 1
            min_events = int(argv[i])
        elif a == "--expect-trace":
            i += 1
            expect_trace = argv[i]
        elif a == "--expect-name":
            i += 1
            expect_names.append(argv[i])
        elif a.startswith("-"):
            print(f"check_trace_dump: unknown option {a!r}",
                  file=sys.stderr)
            return 2
        elif path is None:
            path = a
        else:
            print("check_trace_dump: more than one TRACE.json",
                  file=sys.stderr)
            return 2
        i += 1
    if path is None:
        print("usage: check_trace_dump.py TRACE.json [--min-events N] "
              "[--expect-trace PREFIX] [--expect-name NAME]...",
              file=sys.stderr)
        return 2

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: expected an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")

    complete = []
    for n, ev in enumerate(events):
        where = f"{path}: traceEvents[{n}]"
        if not isinstance(ev, dict):
            fail(f"{where}: event is not an object")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                fail(f"{where}: unknown metadata event {ev.get('name')!r}")
            continue
        if ph != "X":
            fail(f"{where}: unexpected event phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"{where}: complete event lacks a name")
        for field in ("ts", "dur"):
            if not finite_number(ev.get(field)) or ev[field] < 0:
                fail(f"{where}: bad {field} {ev.get(field)!r}")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                fail(f"{where}: bad {field} {ev.get(field)!r}")
        complete.append(ev)

    if len(complete) < min_events:
        fail(f"{path}: {len(complete)} complete events, expected at "
             f"least {min_events}")

    if expect_trace is not None:
        traced = [
            ev for ev in complete
            if isinstance(ev.get("args"), dict)
            and str(ev["args"].get("trace_id", "")).startswith(
                expect_trace)
        ]
        if not traced:
            fail(f"{path}: no event carries a trace_id starting with "
                 f"{expect_trace!r}")

    names = {ev["name"] for ev in complete}
    for want in expect_names:
        if want not in names:
            fail(f"{path}: no complete event named {want!r} "
                 f"(saw {sorted(names)})")

    traced_total = sum(
        1 for ev in complete
        if isinstance(ev.get("args"), dict) and ev["args"].get("trace_id"))
    print(f"check_trace_dump: OK — {path}: {len(complete)} events "
          f"({traced_total} with trace ids), {len(names)} span names")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
