// Design-service front end, in two modes sharing one parser and one
// result emitter (src/serve/request.*, src/serve/response.*):
//
// Batch (default): reads a JSON request file describing many design
// questions (yield estimates, calibration studies, design-space sweeps,
// spectrum evaluations), dedupes identical jobs, executes the job graph
// with the persistent content-addressed cache, and writes a JSON response
// (schema "csdac-serve/2", which embeds a metrics-registry snapshot under
// "metrics"). A warm-cache run answers every question without a single
// Monte-Carlo chip evaluation — the CI runtime-smoke and metrics-smoke
// jobs assert exactly that from the JSONL trace and the Prometheus dump.
//
//   csdac_serve REQUEST.json [--out PATH] [--cache DIR] [--no-cache]
//               [--cache-max-mb N] [--trace PATH] [--threads N]
//               [--metrics-out PATH] [--chrome-trace PATH]
//
// Server (--listen): persistent length-framed TCP service on the shared
// scheduler (src/serve/server.*): many concurrent clients, cross-request
// dedup, in-memory hot tier above the same disk cache, per-client
// admission control. Runs until SIGINT/SIGTERM or a ctl shutdown frame,
// then flushes the flight recorder (--flight-out) and metrics
// (--metrics-out) on EVERY exit path — signal, ctl shutdown, or a fatal
// error (std::terminate dumps the flight ring before aborting, so the
// last seconds of requests survive a crash).
//
//   csdac_serve --listen [--host H] [--port N] [--port-file PATH]
//               [--workers N] [--max-inflight N] [--max-connections N]
//               [--hot-mb N] [--cache DIR] [--no-cache] [--cache-max-mb N]
//               [--trace PATH] [--metrics-out PATH] [--flight-out PATH]
//               [--slow-us N] [--slow-log PATH]
//
// --slow-us N tail-samples requests taking >= N microseconds into the
// --slow-log JSONL file with a per-job stage breakdown (admission /
// queue / hot / disk / compute / store / serialize); 0 samples every
// request. Every request also carries a trace id (client-supplied
// "trace_id" or server-minted), visible in the slow log, the reply, and
// the flight-recorder dump.
//
// --metrics-out writes the full registry in Prometheus text exposition
// format after the batch (or on server exit). --chrome-trace collects
// every span of a batch run and writes Chrome trace_event JSON — open it
// in Perfetto or chrome://tracing for a flamegraph of graph.run >
// graph.job > mc.*.
//
// Request schema ("csdac-request/1"):
//   { "schema": "csdac-request/1", "jobs": [ <job>, ... ] }
// Every job object has "kind": one of inl_yield | dnl_yield | cal_yield |
// sweep_basic | sweep_cascode | spectrum, an optional "id" echoed in the
// response, an optional "spec" object overriding DacSpec fields, and
// kind-specific fields (see src/serve/request.cpp and EXPERIMENTS.md).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/graph.hpp"
#include "runtime/json.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/server.hpp"

using namespace csdac;

namespace {

struct RequestEntry {
  std::string id;         ///< echoed in the response
  runtime::JobId job_id;  ///< graph node (shared between duplicates)
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "csdac_serve: %s\n", msg.c_str());
  std::exit(1);
}

std::atomic<bool> g_signal_stop{false};

void on_signal(int) { g_signal_stop.store(true); }

struct Options {
  std::string request_path;
  std::string out_path = "serve_response.json";
  std::string cache_dir = ".csdac-cache";
  std::string trace_path, metrics_path, chrome_path, port_file;
  std::string flight_path, slow_log;
  std::string host = "127.0.0.1";
  bool use_cache = true;
  bool listen = false;
  int threads = 0;
  int port = 0;
  int workers = 0;
  int max_inflight = 16;
  int max_connections = 64;
  double cache_max_mb = 256.0;
  double hot_mb = 64.0;
  long long slow_us = -1;  ///< >= 0 enables slow-request sampling
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: csdac_serve REQUEST.json [--out PATH] [--cache DIR] "
      "[--no-cache] [--cache-max-mb N] [--trace PATH] [--threads N] "
      "[--metrics-out PATH] [--chrome-trace PATH]\n"
      "       csdac_serve --listen [--host H] [--port N] "
      "[--port-file PATH] [--workers N] [--max-inflight N] "
      "[--max-connections N] [--hot-mb N] [--cache DIR] [--no-cache] "
      "[--cache-max-mb N] [--trace PATH] [--metrics-out PATH] "
      "[--flight-out PATH] [--slow-us N] [--slow-log PATH]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  const auto value = [&](int& a) -> const char* {
    if (a + 1 >= argc) usage();
    return argv[++a];
  };
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--out") == 0) o.out_path = value(a);
    else if (std::strcmp(argv[a], "--cache") == 0) o.cache_dir = value(a);
    else if (std::strcmp(argv[a], "--no-cache") == 0) o.use_cache = false;
    else if (std::strcmp(argv[a], "--cache-max-mb") == 0)
      o.cache_max_mb = std::atof(value(a));
    else if (std::strcmp(argv[a], "--trace") == 0) o.trace_path = value(a);
    else if (std::strcmp(argv[a], "--metrics-out") == 0)
      o.metrics_path = value(a);
    else if (std::strcmp(argv[a], "--chrome-trace") == 0)
      o.chrome_path = value(a);
    else if (std::strcmp(argv[a], "--threads") == 0)
      o.threads = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--listen") == 0) o.listen = true;
    else if (std::strcmp(argv[a], "--host") == 0) o.host = value(a);
    else if (std::strcmp(argv[a], "--port") == 0)
      o.port = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--port-file") == 0)
      o.port_file = value(a);
    else if (std::strcmp(argv[a], "--workers") == 0)
      o.workers = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--max-inflight") == 0)
      o.max_inflight = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--max-connections") == 0)
      o.max_connections = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--hot-mb") == 0)
      o.hot_mb = std::atof(value(a));
    else if (std::strcmp(argv[a], "--flight-out") == 0)
      o.flight_path = value(a);
    else if (std::strcmp(argv[a], "--slow-us") == 0)
      o.slow_us = std::atoll(value(a));
    else if (std::strcmp(argv[a], "--slow-log") == 0)
      o.slow_log = value(a);
    else if (argv[a][0] != '-' && o.request_path.empty())
      o.request_path = argv[a];
    else usage();
  }
  return o;
}

void dump_metrics(const std::string& path) {
  if (path.empty()) return;
  std::ofstream mout(path, std::ios::binary);
  if (!mout) die("cannot write " + path);
  mout << obs::Registry::global().snapshot().to_prometheus();
  std::printf("wrote %s\n", path.c_str());
}

void dump_flight(const std::string& path) {
  if (path.empty()) return;
  if (!obs::FlightRecorder::global().dump(path)) {
    std::fprintf(stderr, "csdac_serve: cannot write %s\n", path.c_str());
    return;
  }
  std::printf("wrote %s\n", path.c_str());
}

// Fatal-error artifact paths, latched before the server starts so the
// terminate handler (which cannot take arguments) can flush them. A
// crashing server still leaves its flight ring and final metrics behind.
std::string g_fatal_flight_path;
std::string g_fatal_metrics_path;

void on_terminate() {
  if (!g_fatal_flight_path.empty()) {
    obs::FlightRecorder::global().dump(g_fatal_flight_path);
  }
  if (!g_fatal_metrics_path.empty()) {
    std::ofstream mout(g_fatal_metrics_path, std::ios::binary);
    if (mout) mout << obs::Registry::global().snapshot().to_prometheus();
  }
  std::abort();
}

int run_server(const Options& o) {
  serve::ServerOptions so;
  so.host = o.host;
  so.port = o.port;
  so.max_connections = o.max_connections;
  so.slow_us = o.slow_us;
  so.slow_log = o.slow_log;
  so.sched.workers = o.workers;
  so.sched.threads_per_job = 1;
  so.sched.max_inflight_per_client = o.max_inflight;
  if (o.use_cache) so.sched.exec.cache_dir = o.cache_dir;
  so.sched.exec.cache_max_bytes =
      static_cast<std::uint64_t>(o.cache_max_mb * 1024.0 * 1024.0);
  so.sched.exec.hot_bytes =
      static_cast<std::uint64_t>(o.hot_mb * 1024.0 * 1024.0);

  serve::Server server(so);
  if (!o.port_file.empty()) {
    std::ofstream pf(o.port_file, std::ios::binary);
    if (!pf) die("cannot write " + o.port_file);
    pf << server.port() << "\n";
  }

  // The server records every request and span into the flight recorder;
  // the sink makes the tracer permanently active for this process, which
  // is the point — the ring must be populated BEFORE anyone asks for it.
  obs::FlightRecorder::install_global_span_sink();
  g_fatal_flight_path = o.flight_path;
  g_fatal_metrics_path = o.metrics_path;
  std::set_terminate(on_terminate);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  server.start();
  std::printf("csdac_serve: listening on %s:%d (%d workers, cache %s, "
              "hot %.0f MiB)\n",
              o.host.c_str(), server.port(), server.scheduler().workers(),
              o.use_cache ? o.cache_dir.c_str() : "off", o.hot_mb);
  std::fflush(stdout);

  while (!g_signal_stop.load() && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // One flush sequence for every exit path — SIGINT/SIGTERM mid-batch and
  // ctl shutdown land here identically: stop() joins the connection
  // threads (in-flight requests finish and get recorded), THEN the
  // artifacts are written, so a dump after `csdac-ctl shutdown` is never
  // missing the final requests.
  server.stop();

  const serve::ServerCounters c = server.counters();
  std::printf("csdac_serve: served %lld requests on %lld connections "
              "(%lld errors, %lld rejected, %lld slow)\n",
              static_cast<long long>(c.requests),
              static_cast<long long>(c.connections),
              static_cast<long long>(c.errors),
              static_cast<long long>(c.rejected),
              static_cast<long long>(c.slow));
  dump_flight(o.flight_path);
  dump_metrics(o.metrics_path);
  return 0;
}

int run_batch(const Options& o) {
  if (o.request_path.empty()) die("no request file given");
  std::ifstream in(o.request_path, std::ios::binary);
  if (!in) die("cannot read " + o.request_path);
  std::stringstream buf;
  buf << in.rdbuf();

  std::vector<serve::RequestJob> parsed;
  try {
    parsed = serve::parse_request_text(buf.str());
  } catch (const serve::RequestError& e) {
    die(o.request_path + ": " + e.what());
  }

  runtime::RuntimeOptions opts;
  opts.threads = o.threads;
  if (o.use_cache) opts.cache_dir = o.cache_dir;
  opts.cache_max_bytes =
      static_cast<std::uint64_t>(o.cache_max_mb * 1024.0 * 1024.0);
  opts.trace_path = o.trace_path;

  // Collect spans for the Chrome trace export (independent of --trace,
  // which routes spans into the JSONL via the graph's own sink).
  obs::SpanCollector collector;
  if (!o.chrome_path.empty()) obs::Tracer::global().add_sink(&collector);

  runtime::JobGraph graph(opts);
  std::vector<RequestEntry> entries;
  entries.reserve(parsed.size());
  for (auto& pj : parsed) {
    RequestEntry e;
    e.id = pj.id;
    e.job_id = graph.add(std::move(pj.job), e.id);
    entries.push_back(std::move(e));
  }

  const std::int64_t chips0 = dac::mc_chips_evaluated();
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan batch("serve.batch");
    batch.attr("request", o.request_path)
        .attr("jobs", static_cast<std::int64_t>(entries.size()));
    graph.run_all();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::int64_t chip_evals = dac::mc_chips_evaluated() - chips0;
  const runtime::CacheCounters cc = graph.cache_counters();
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();

  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", "csdac-serve/2");
  w.field("request", o.request_path.c_str());
  w.field("engine_version", std::string(runtime::kEngineVersion).c_str());
  w.key("jobs").begin_array();
  for (const auto& e : entries) {
    const runtime::JobRecord& r = graph.record(e.job_id);
    w.begin_object();
    w.field("id", e.id.c_str());
    w.field("kind",
            std::string(runtime::kind_name(runtime::job_kind(r.job))).c_str());
    w.field("key", r.key.hex().c_str());
    w.field("cache", o.use_cache ? (r.cache_hit ? "hit" : "miss") : "off");
    w.field("wall_s", r.wall_seconds);
    w.field("evaluated", r.stats.evaluated);
    serve::emit_result(w, r.value);
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.field("requested", static_cast<std::int64_t>(entries.size()));
  w.field("unique_jobs", static_cast<std::int64_t>(graph.size()));
  w.field("cache_hits", cc.hits);
  w.field("cache_misses", cc.misses);
  w.field("cache_evictions", cc.evictions);
  w.field("chip_evals", chip_evals);
  w.field("wall_s", wall);
  w.field("threads", o.threads);
  w.end_object();
  w.key("metrics").raw(snap.to_json());
  w.end_object();

  std::ofstream out(o.out_path, std::ios::binary);
  if (!out) die("cannot write " + o.out_path);
  out << w.str() << "\n";
  out.close();

  if (!o.metrics_path.empty()) {
    std::ofstream mout(o.metrics_path, std::ios::binary);
    if (!mout) die("cannot write " + o.metrics_path);
    mout << snap.to_prometheus();
    std::printf("wrote %s\n", o.metrics_path.c_str());
  }
  if (!o.chrome_path.empty()) {
    obs::Tracer::global().remove_sink(&collector);
    if (!obs::write_chrome_trace(o.chrome_path, collector.take(),
                                 "csdac_serve")) {
      die("cannot write " + o.chrome_path);
    }
    std::printf("wrote %s\n", o.chrome_path.c_str());
  }

  std::printf(
      "csdac_serve: %zu requests -> %zu unique jobs, %lld cache hits, "
      "%lld misses, %lld chips evaluated, %.3f s\n",
      entries.size(), graph.size(), static_cast<long long>(cc.hits),
      static_cast<long long>(cc.misses), static_cast<long long>(chip_evals),
      wall);
  std::printf("wrote %s\n", o.out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  if (o.listen) {
    try {
      return run_server(o);
    } catch (const std::exception& e) {
      die(e.what());
    }
  }
  return run_batch(o);
}
