// Batch design-service front end: reads a JSON request file describing many
// design questions (yield estimates, calibration studies, design-space
// sweeps, spectrum evaluations), dedupes identical jobs, executes the job
// graph with the persistent content-addressed cache, and writes a JSON
// response (schema "csdac-serve/2", which embeds a metrics-registry
// snapshot under "metrics"). A warm-cache run answers every question
// without a single Monte-Carlo chip evaluation — the CI runtime-smoke and
// metrics-smoke jobs assert exactly that from the JSONL trace and the
// Prometheus dump.
//
//   csdac_serve REQUEST.json [--out PATH] [--cache DIR] [--no-cache]
//               [--cache-max-mb N] [--trace PATH] [--threads N]
//               [--metrics-out PATH] [--chrome-trace PATH]
//
// --metrics-out writes the full registry in Prometheus text exposition
// format after the batch. --chrome-trace collects every span of the run
// and writes Chrome trace_event JSON — open it in Perfetto or
// chrome://tracing for a flamegraph of graph.run > graph.job > mc.*.
//
// Request schema ("csdac-request/1"):
//   { "schema": "csdac-request/1", "jobs": [ <job>, ... ] }
// Every job object has "kind": one of inl_yield | dnl_yield | cal_yield |
// sweep_basic | sweep_cascode | spectrum, an optional "id" echoed in the
// response, an optional "spec" object overriding DacSpec fields, and
// kind-specific fields (see parse_* below and EXPERIMENTS.md). The unit
// sigma may be given absolutely ("sigma_unit") or relative to the eq. (1)
// design value ("sigma_mult").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/accuracy.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/graph.hpp"
#include "runtime/json.hpp"

using namespace csdac;

namespace {

struct RequestEntry {
  std::string id;         ///< echoed in the response
  runtime::JobId job_id;  ///< graph node (shared between duplicates)
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "csdac_serve: %s\n", msg.c_str());
  std::exit(1);
}

core::DacSpec parse_spec(const runtime::JsonValue& job) {
  core::DacSpec spec;  // paper's 12-bit defaults
  if (const auto* s = job.find("spec")) {
    if (!s->is_object()) die("'spec' must be an object");
    spec.nbits = static_cast<int>(s->int_or("nbits", spec.nbits));
    spec.binary_bits =
        static_cast<int>(s->int_or("binary_bits", spec.binary_bits));
    spec.vdd = s->number_or("vdd", spec.vdd);
    spec.v_swing = s->number_or("v_swing", spec.v_swing);
    spec.v_out_min = s->number_or("v_out_min", spec.v_out_min);
    spec.r_load = s->number_or("r_load", spec.r_load);
    spec.c_load = s->number_or("c_load", spec.c_load);
    spec.c_int = s->number_or("c_int", spec.c_int);
    spec.inl_yield = s->number_or("inl_yield", spec.inl_yield);
    spec.r_load_tol = s->number_or("r_load_tol", spec.r_load_tol);
  }
  spec.validate();
  return spec;
}

double parse_sigma(const runtime::JsonValue& job, const core::DacSpec& spec,
                   double def_mult) {
  if (const auto* abs = job.find("sigma_unit")) {
    if (!abs->is_number() || abs->num < 0) die("bad sigma_unit");
    return abs->num;
  }
  const double mult = job.number_or("sigma_mult", def_mult);
  if (mult < 0) die("bad sigma_mult");
  return mult * core::unit_sigma_spec(spec.nbits, spec.inl_yield);
}

core::GridAxis parse_axis(const runtime::JsonValue& job, const char* key) {
  core::GridAxis a;
  if (const auto* ax = job.find(key)) {
    if (!ax->is_object()) die(std::string("'") + key + "' must be an object");
    a.lo = ax->number_or("lo", a.lo);
    a.hi = ax->number_or("hi", a.hi);
    a.steps = static_cast<int>(ax->int_or("steps", a.steps));
  }
  if (a.steps < 1 || !(a.lo <= a.hi)) die(std::string("bad axis ") + key);
  return a;
}

core::MarginPolicy parse_policy(const runtime::JsonValue& job) {
  const std::string p = job.string_or("policy", "statistical");
  if (p == "none") return core::MarginPolicy::kNone;
  if (p == "fixed") return core::MarginPolicy::kFixedMargin;
  if (p == "statistical") return core::MarginPolicy::kStatistical;
  die("bad policy '" + p + "'");
}

tech::MosTechParams parse_tech(const runtime::JsonValue& job) {
  const std::string t = job.string_or("tech", "generic_035um");
  if (t == "generic_035um") return tech::generic_035um().nmos;
  if (t == "generic_025um") return tech::generic_025um().nmos;
  die("bad tech '" + t + "'");
}

runtime::Job parse_job(const runtime::JsonValue& job) {
  const std::string kind = job.string_or("kind", "");
  const core::DacSpec spec = parse_spec(job);

  if (kind == "inl_yield" || kind == "dnl_yield") {
    runtime::InlYieldJob j;
    j.spec = spec;
    j.sigma_unit = parse_sigma(job, spec, 1.0);
    j.chips = static_cast<int>(job.int_or("chips", 1000));
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.limit = job.number_or("limit", 0.5);
    j.dnl = kind == "dnl_yield";
    const std::string ref = job.string_or("ref", "bestfit");
    if (ref == "endpoint") j.ref = dac::InlReference::kEndpoint;
    else if (ref == "bestfit") j.ref = dac::InlReference::kBestFit;
    else die("bad ref '" + ref + "'");
    j.adaptive = job.bool_or("adaptive", false);
    j.min_chips = static_cast<int>(job.int_or("min_chips", j.min_chips));
    j.batch = static_cast<int>(job.int_or("batch", j.batch));
    j.ci_half_width = job.number_or("ci_half_width", j.ci_half_width);
    if (j.chips < 1) die("bad chips");
    return j;
  }
  if (kind == "cal_yield") {
    runtime::CalYieldJob j;
    j.spec = spec;
    j.sigma_unit = parse_sigma(job, spec, 1.0);
    j.cal.range_lsb = job.number_or("cal_range_lsb", j.cal.range_lsb);
    j.cal.bits = static_cast<int>(job.int_or("cal_bits", j.cal.bits));
    j.cal.measure_noise_lsb =
        job.number_or("cal_noise_lsb", j.cal.measure_noise_lsb);
    j.chips = static_cast<int>(job.int_or("chips", 1000));
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 1000));
    j.limit = job.number_or("limit", 0.5);
    if (j.chips < 1) die("bad chips");
    return j;
  }
  if (kind == "sweep_basic") {
    runtime::SweepBasicJob j;
    j.spec = spec;
    j.tech = parse_tech(job);
    j.cs = parse_axis(job, "cs");
    j.sw = parse_axis(job, "sw");
    j.policy = parse_policy(job);
    j.fixed_margin = job.number_or("fixed_margin", j.fixed_margin);
    return j;
  }
  if (kind == "sweep_cascode") {
    runtime::SweepCascodeJob j;
    j.spec = spec;
    j.tech = parse_tech(job);
    j.cs = parse_axis(job, "cs");
    j.sw = parse_axis(job, "sw");
    j.cas = parse_axis(job, "cas");
    j.policy = parse_policy(job);
    j.fixed_margin = job.number_or("fixed_margin", j.fixed_margin);
    const std::string agg = job.string_or("agg", "max");
    if (agg == "rss") j.agg = core::SigmaAggregation::kRss;
    else if (agg != "max") die("bad agg '" + agg + "'");
    return j;
  }
  if (kind == "spectrum") {
    runtime::SpectrumJob j;
    j.spec = spec;
    // Spectrum questions default to the mismatch-free converter; ask for
    // matching effects with sigma_mult/sigma_unit.
    j.sigma_unit = parse_sigma(job, spec, 0.0);
    j.seed = static_cast<std::uint64_t>(job.int_or("seed", 2003));
    j.dyn.fs = job.number_or("fs", j.dyn.fs);
    j.dyn.oversample =
        static_cast<int>(job.int_or("oversample", j.dyn.oversample));
    j.dyn.tau = job.number_or("tau", j.dyn.tau);
    j.dyn.rout_unit = job.number_or("rout_unit", j.dyn.rout_unit);
    j.dyn.binary_skew = job.number_or("binary_skew", j.dyn.binary_skew);
    j.dyn.jitter_sigma = job.number_or("jitter_sigma", j.dyn.jitter_sigma);
    j.dyn.feedthrough_lsb =
        job.number_or("feedthrough_lsb", j.dyn.feedthrough_lsb);
    j.n_samples = static_cast<int>(job.int_or("n_samples", j.n_samples));
    j.cycles = static_cast<int>(job.int_or("cycles", j.cycles));
    j.differential = job.bool_or("differential", true);
    return j;
  }
  die("unknown job kind '" + kind + "'");
}

void emit_result(bench::JsonWriter& w, const runtime::JobRecord& r) {
  w.key("result").begin_object();
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, runtime::YieldResult>) {
          w.field("chips", v.chips);
          w.field("pass", v.pass);
          w.field("yield", v.yield);
          w.field("ci95", v.ci95);
        } else if constexpr (std::is_same_v<T, runtime::CalYieldResult>) {
          w.field("chips", v.chips);
          w.field("yield_before", v.yield_before);
          w.field("yield_after", v.yield_after);
        } else if constexpr (std::is_same_v<T, runtime::SweepResult>) {
          w.field("points", static_cast<std::int64_t>(v.points.size()));
          std::int64_t feasible = 0;
          for (const auto& p : v.points) feasible += p.feasible ? 1 : 0;
          w.field("feasible", feasible);
          const auto emit_best = [&w](const char* name,
                                      const std::optional<core::DesignPoint>&
                                          best) {
            if (!best) return;
            w.key(name).begin_object();
            w.field("vod_cs", best->vod_cs);
            w.field("vod_sw", best->vod_sw);
            w.field("vod_cas", best->vod_cas);
            w.field("area_m2", best->area);
            w.field("f_min_hz", best->f_min_hz);
            w.field("t_settle_s", best->t_settle_s);
            w.end_object();
          };
          emit_best("best_min_area",
                    core::DesignSpaceExplorer::select(
                        v.points, core::Objective::kMinArea));
          emit_best("best_max_speed",
                    core::DesignSpaceExplorer::select(
                        v.points, core::Objective::kMaxSpeed));
        } else if constexpr (std::is_same_v<T, runtime::SpectrumSummary>) {
          w.field("sfdr_db", v.sfdr_db);
          w.field("sndr_db", v.sndr_db);
          w.field("thd_db", v.thd_db);
          w.field("enob", v.enob);
        }
      },
      r.value);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string request_path, out_path = "serve_response.json";
  std::string cache_dir = ".csdac-cache";
  std::string trace_path, metrics_path, chrome_path;
  bool use_cache = true;
  int threads = 0;
  double cache_max_mb = 256.0;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      out_path = argv[++a];
    } else if (std::strcmp(argv[a], "--cache") == 0 && a + 1 < argc) {
      cache_dir = argv[++a];
    } else if (std::strcmp(argv[a], "--no-cache") == 0) {
      use_cache = false;
    } else if (std::strcmp(argv[a], "--cache-max-mb") == 0 && a + 1 < argc) {
      cache_max_mb = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--trace") == 0 && a + 1 < argc) {
      trace_path = argv[++a];
    } else if (std::strcmp(argv[a], "--metrics-out") == 0 && a + 1 < argc) {
      metrics_path = argv[++a];
    } else if (std::strcmp(argv[a], "--chrome-trace") == 0 && a + 1 < argc) {
      chrome_path = argv[++a];
    } else if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc) {
      threads = std::atoi(argv[++a]);
    } else if (argv[a][0] != '-' && request_path.empty()) {
      request_path = argv[a];
    } else {
      std::fprintf(stderr,
                   "usage: csdac_serve REQUEST.json [--out PATH] "
                   "[--cache DIR] [--no-cache] [--cache-max-mb N] "
                   "[--trace PATH] [--threads N] [--metrics-out PATH] "
                   "[--chrome-trace PATH]\n");
      return 2;
    }
  }
  if (request_path.empty()) {
    std::fprintf(stderr, "csdac_serve: no request file given\n");
    return 2;
  }

  std::ifstream in(request_path, std::ios::binary);
  if (!in) die("cannot read " + request_path);
  std::stringstream buf;
  buf << in.rdbuf();

  runtime::JsonValue request;
  std::string err;
  if (!runtime::parse_json(buf.str(), request, &err)) {
    die(request_path + ": " + err);
  }
  if (request.string_or("schema", "") != "csdac-request/1") {
    die("request schema must be 'csdac-request/1'");
  }
  const auto* jobs = request.find("jobs");
  if (!jobs || !jobs->is_array() || jobs->arr.empty()) {
    die("request has no jobs");
  }

  runtime::RuntimeOptions opts;
  opts.threads = threads;
  if (use_cache) opts.cache_dir = cache_dir;
  opts.cache_max_bytes =
      static_cast<std::uint64_t>(cache_max_mb * 1024.0 * 1024.0);
  opts.trace_path = trace_path;

  // Collect spans for the Chrome trace export (independent of --trace,
  // which routes spans into the JSONL via the graph's own sink).
  obs::SpanCollector collector;
  if (!chrome_path.empty()) obs::Tracer::global().add_sink(&collector);

  runtime::JobGraph graph(opts);
  std::vector<RequestEntry> entries;
  for (std::size_t i = 0; i < jobs->arr.size(); ++i) {
    const auto& jv = jobs->arr[i];
    if (!jv.is_object()) die("job entries must be objects");
    RequestEntry e;
    e.id = jv.string_or("id", "job" + std::to_string(i));
    e.job_id = graph.add(parse_job(jv), e.id);
    entries.push_back(std::move(e));
  }

  const std::int64_t chips0 = dac::mc_chips_evaluated();
  const auto t0 = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan batch("serve.batch");
    batch.attr("request", request_path)
        .attr("jobs", static_cast<std::int64_t>(entries.size()));
    graph.run_all();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::int64_t chip_evals = dac::mc_chips_evaluated() - chips0;
  const runtime::CacheCounters cc = graph.cache_counters();
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();

  bench::JsonWriter w;
  w.begin_object();
  w.field("schema", "csdac-serve/2");
  w.field("request", request_path.c_str());
  w.field("engine_version", std::string(runtime::kEngineVersion).c_str());
  w.key("jobs").begin_array();
  for (const auto& e : entries) {
    const runtime::JobRecord& r = graph.record(e.job_id);
    w.begin_object();
    w.field("id", e.id.c_str());
    w.field("kind",
            std::string(runtime::kind_name(runtime::job_kind(r.job))).c_str());
    w.field("key", r.key.hex().c_str());
    w.field("cache", use_cache ? (r.cache_hit ? "hit" : "miss") : "off");
    w.field("wall_s", r.wall_seconds);
    w.field("evaluated", r.stats.evaluated);
    emit_result(w, r);
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.field("requested", static_cast<std::int64_t>(entries.size()));
  w.field("unique_jobs", static_cast<std::int64_t>(graph.size()));
  w.field("cache_hits", cc.hits);
  w.field("cache_misses", cc.misses);
  w.field("cache_evictions", cc.evictions);
  w.field("chip_evals", chip_evals);
  w.field("wall_s", wall);
  w.field("threads", threads);
  w.end_object();
  w.key("metrics").raw(snap.to_json());
  w.end_object();

  std::ofstream out(out_path, std::ios::binary);
  if (!out) die("cannot write " + out_path);
  out << w.str() << "\n";
  out.close();

  if (!metrics_path.empty()) {
    std::ofstream mout(metrics_path, std::ios::binary);
    if (!mout) die("cannot write " + metrics_path);
    mout << snap.to_prometheus();
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (!chrome_path.empty()) {
    obs::Tracer::global().remove_sink(&collector);
    if (!obs::write_chrome_trace(chrome_path, collector.take(),
                                 "csdac_serve")) {
      die("cannot write " + chrome_path);
    }
    std::printf("wrote %s\n", chrome_path.c_str());
  }

  std::printf(
      "csdac_serve: %zu requests -> %zu unique jobs, %lld cache hits, "
      "%lld misses, %lld chips evaluated, %.3f s\n",
      entries.size(), graph.size(), static_cast<long long>(cc.hits),
      static_cast<long long>(cc.misses), static_cast<long long>(chip_evals),
      wall);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
