#!/usr/bin/env python3
"""Validates a BENCH_mc.json produced by tools/run_benches.

Accepts the csdac-bench/1, /2, and /3 schemas: required top-level keys,
per-bench structure, and sanity of the measured numbers (positive
throughput, yields in [0, 1]). Schema /2 additionally carries runtime
cache benches ("cold"/"warm" sections): the warm pass must be a pure
cache hit (cache_hits >= 1, zero chip evaluations) and the cold pass a
miss. Schema /3 additionally embeds the metrics-registry snapshot under
"metrics"; the snapshot must carry the engine counters and a positive
mc.chips_evaluated. Used by the CI bench-smoke job; exits nonzero with a
message on the first violation. Stdlib only.
"""
import json
import sys

SCHEMAS = ("csdac-bench/1", "csdac-bench/2", "csdac-bench/3")
TOP_KEYS = {
    "schema": str,
    "git_sha": str,
    "generated_unix": int,
    "smoke": bool,
    "threads": int,
    "hardware_threads": int,
    "benches": list,
}
PATH_KEYS = {"chips": int, "chips_per_s": (int, float), "wall_s": (int, float)}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_type(obj, key, types, where):
    if key not in obj:
        fail(f"{where}: missing key '{key}'")
    if not isinstance(obj[key], types):
        fail(f"{where}: key '{key}' has type {type(obj[key]).__name__}")
    return obj[key]


def check_path(bench, name, which):
    where = f"bench '{name}' / {which}"
    path = check_type(bench, which, dict, f"bench '{name}'")
    for key, types in PATH_KEYS.items():
        check_type(path, key, types, where)
    if path["chips"] <= 0:
        fail(f"{where}: chips must be positive")
    if path["chips_per_s"] <= 0:
        fail(f"{where}: chips_per_s must be positive")
    if path["wall_s"] < 0:
        fail(f"{where}: wall_s must be >= 0")
    for key in ("yield", "yield_before", "yield_after"):
        if key in path and not 0.0 <= path[key] <= 1.0:
            fail(f"{where}: {key} out of [0, 1]")
    return path


def check_metrics(doc):
    """Schema /3 embedded registry snapshot."""
    metrics = check_type(doc, "metrics", dict, "top level")
    counters = check_type(metrics, "counters", dict, "metrics")
    check_type(metrics, "gauges", dict, "metrics")
    histograms = check_type(metrics, "histograms", dict, "metrics")
    for key in ("mc.chips_evaluated", "engine.runs", "engine.items"):
        if not isinstance(counters.get(key), int):
            fail(f"metrics: missing/non-integer counter '{key}'")
        if counters[key] < 0:
            fail(f"metrics: counter '{key}' is negative")
    if counters["mc.chips_evaluated"] <= 0:
        fail("metrics: mc.chips_evaluated must be positive after a bench run")
    for name, h in histograms.items():
        where = f"metrics histogram '{name}'"
        count = check_type(h, "count", int, where)
        check_type(h, "sum", int, where)
        buckets = check_type(h, "buckets", list, where)
        total = 0
        for pair in buckets:
            if (not isinstance(pair, list) or len(pair) != 2
                    or not all(isinstance(x, int) for x in pair)):
                fail(f"{where}: buckets must be [le, count] integer pairs")
            total += pair[1]
        if total != count:
            fail(f"{where}: bucket counts sum to {total}, count is {count}")


def check_cache_bench(bench, name):
    """Schema /2 runtime cache bench: cold miss vs warm hit."""
    cold = check_path(bench, name, "cold")
    warm = check_path(bench, name, "warm")
    if cold.get("cache_misses", 0) < 1:
        fail(f"bench '{name}' / cold: expected >= 1 cache miss")
    if warm.get("cache_hits", 0) < 1:
        fail(f"bench '{name}' / warm: expected >= 1 cache hit")
    if warm.get("chip_evals", -1) != 0:
        fail(f"bench '{name}' / warm: chip_evals must be 0 "
             f"(got {warm.get('chip_evals')!r}) — the warm run recomputed")
    speedup = check_type(bench, "warm_speedup", (int, float),
                         f"bench '{name}'")
    if speedup <= 0:
        fail(f"bench '{name}': warm_speedup must be positive")


def main():
    if len(sys.argv) != 2:
        print("usage: check_bench_json.py BENCH_mc.json", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    for key, types in TOP_KEYS.items():
        check_type(doc, key, types, "top level")
    if doc["schema"] not in SCHEMAS:
        fail(f"schema is '{doc['schema']}', expected one of {SCHEMAS}")
    v2 = doc["schema"] in ("csdac-bench/2", "csdac-bench/3")
    if not doc["benches"]:
        fail("benches array is empty")
    if doc["schema"] == "csdac-bench/3":
        check_metrics(doc)

    names = set()
    cache_benches = 0
    for bench in doc["benches"]:
        if not isinstance(bench, dict):
            fail("bench entry is not an object")
        name = check_type(bench, "name", str, "bench entry")
        if name in names:
            fail(f"duplicate bench name '{name}'")
        names.add(name)
        check_type(bench, "config", dict, f"bench '{name}'")
        if "cold" in bench or "warm" in bench:
            if not v2:
                fail(f"bench '{name}': cache benches require csdac-bench/2")
            check_cache_bench(bench, name)
            cache_benches += 1
            continue
        check_path(bench, name, "workspace")
        if "legacy" in bench:
            check_path(bench, name, "legacy")
            speedup = check_type(bench, "speedup", (int, float),
                                 f"bench '{name}'")
            if speedup <= 0:
                fail(f"bench '{name}': speedup must be positive")
    if v2 and cache_benches == 0:
        fail("csdac-bench/2 document has no runtime cache benches")

    print(f"check_bench_json: OK ({len(names)} benches: "
          f"{', '.join(sorted(names))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
