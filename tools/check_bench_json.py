#!/usr/bin/env python3
"""Validates a BENCH_mc.json produced by tools/run_benches.

Accepts the csdac-bench/1, /2, /3, and /4 schemas: required top-level
keys, per-bench structure, and sanity of the measured numbers (positive
throughput, yields in [0, 1]). Schema /2 additionally carries runtime
cache benches ("cold"/"warm" sections): the warm pass must be a pure
cache hit (cache_hits >= 1, zero chip evaluations) and the cold pass a
miss. Schema /3 additionally embeds the metrics-registry snapshot under
"metrics"; the snapshot must carry the engine counters and a positive
mc.chips_evaluated. Schema /4 additionally records the active SIMD
dispatch ("simd_backend"/"simd_lanes" top-level) and carries at least one
simd-vs-scalar bench ("simd"/"scalar" sections + "simd_speedup"); the two
sections must report identical yields — the lane kernels are bit-identical
by contract. Schema /5 is the design-server loadgen document
(tools/csdac_loadgen): at least one bench with a "serve" section reporting
requests/errors/mismatches and the latency distribution; a run with any
failed request, any cross-client result mismatch, or non-positive
throughput fails validation. Schema /6 (run_benches again) additionally
carries the rare-event estimator bench: "bruteforce"/"is"/"stratified"/
"bridge" sections with per-estimator "chips_to_ci", an "is_chip_reduction"
variance ratio that must exceed 1 (the importance sampler must actually
beat brute force), a healthy effective sample size (low_ess false), and
bridge/IS tail agreement already enforced by the producer. Schema /7
additionally carries the dynamic-error architecture benches: the cached
timing-MC spectrum job validates as an ordinary cache bench, and the
architecture-comparison table ("architectures" array) must sweep at least
binary plus two more weightings with sane per-architecture numbers
(yields in [0, 1], positive cell counts and switching activity) and a
metrics snapshot whose arch.* engine counters actually moved. Schema /8
additionally carries the sparse-MNA engine benches: "spice_mna_12bit"
("dense"/"sparse" sections, a positive "spice_speedup", dense/sparse
solutions already cross-checked by the producer) and "spice_mc_warmstart"
("cold"/"warm" MC sections whose yields must be identical — warm starting
may only change where Newton starts, never where it converges — plus a
"warm_iter_reduction" that must exceed 1), with spice.* engine counters
in the metrics snapshot that actually moved.

With --compare BASELINE.json, every bench path present in both documents
is also checked for throughput regressions: chips_per_s must be at least
(1 - tolerance) times the baseline (default tolerance 0.2). Wall-time
baselines only transfer between same-shaped runs, so compare smoke runs
against smoke baselines and full runs against full baselines.

Used by the CI bench-smoke job; exits nonzero with a message on the first
violation. Stdlib only.
"""
import argparse
import json
import sys

SCHEMAS = ("csdac-bench/1", "csdac-bench/2", "csdac-bench/3",
           "csdac-bench/4", "csdac-bench/5", "csdac-bench/6",
           "csdac-bench/7", "csdac-bench/8")
TOP_KEYS = {
    "schema": str,
    "git_sha": str,
    "generated_unix": int,
    "smoke": bool,
    "threads": int,
    "hardware_threads": int,
    "benches": list,
}
PATH_KEYS = {"chips": int, "chips_per_s": (int, float), "wall_s": (int, float)}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_type(obj, key, types, where):
    if key not in obj:
        fail(f"{where}: missing key '{key}'")
    if not isinstance(obj[key], types):
        fail(f"{where}: key '{key}' has type {type(obj[key]).__name__}")
    return obj[key]


def check_path(bench, name, which):
    where = f"bench '{name}' / {which}"
    path = check_type(bench, which, dict, f"bench '{name}'")
    for key, types in PATH_KEYS.items():
        check_type(path, key, types, where)
    if path["chips"] <= 0:
        fail(f"{where}: chips must be positive")
    if path["chips_per_s"] <= 0:
        fail(f"{where}: chips_per_s must be positive")
    if path["wall_s"] < 0:
        fail(f"{where}: wall_s must be >= 0")
    for key in ("yield", "yield_before", "yield_after"):
        if key in path and not 0.0 <= path[key] <= 1.0:
            fail(f"{where}: {key} out of [0, 1]")
    return path


def check_metrics(doc):
    """Schema /3 embedded registry snapshot."""
    metrics = check_type(doc, "metrics", dict, "top level")
    counters = check_type(metrics, "counters", dict, "metrics")
    check_type(metrics, "gauges", dict, "metrics")
    histograms = check_type(metrics, "histograms", dict, "metrics")
    for key in ("mc.chips_evaluated", "engine.runs", "engine.items"):
        if not isinstance(counters.get(key), int):
            fail(f"metrics: missing/non-integer counter '{key}'")
        if counters[key] < 0:
            fail(f"metrics: counter '{key}' is negative")
    if counters["mc.chips_evaluated"] <= 0:
        fail("metrics: mc.chips_evaluated must be positive after a bench run")
    for name, h in histograms.items():
        where = f"metrics histogram '{name}'"
        count = check_type(h, "count", int, where)
        check_type(h, "sum", int, where)
        buckets = check_type(h, "buckets", list, where)
        total = 0
        for pair in buckets:
            if (not isinstance(pair, list) or len(pair) != 2
                    or not all(isinstance(x, int) for x in pair)):
                fail(f"{where}: buckets must be [le, count] integer pairs")
            total += pair[1]
        if total != count:
            fail(f"{where}: bucket counts sum to {total}, count is {count}")


def check_cache_bench(bench, name):
    """Schema /2 runtime cache bench: cold miss vs warm hit."""
    cold = check_path(bench, name, "cold")
    warm = check_path(bench, name, "warm")
    if cold.get("cache_misses", 0) < 1:
        fail(f"bench '{name}' / cold: expected >= 1 cache miss")
    if warm.get("cache_hits", 0) < 1:
        fail(f"bench '{name}' / warm: expected >= 1 cache hit")
    if warm.get("chip_evals", -1) != 0:
        fail(f"bench '{name}' / warm: chip_evals must be 0 "
             f"(got {warm.get('chip_evals')!r}) — the warm run recomputed")
    speedup = check_type(bench, "warm_speedup", (int, float),
                         f"bench '{name}'")
    if speedup <= 0:
        fail(f"bench '{name}': warm_speedup must be positive")


def check_simd_bench(bench, name):
    """Schema /4 simd-vs-scalar bench: identical yields, speedup field."""
    simd = check_path(bench, name, "simd")
    scalar = check_path(bench, name, "scalar")
    for key in ("yield", "yield_before", "yield_after"):
        if (key in simd) != (key in scalar):
            fail(f"bench '{name}': '{key}' present in only one section")
        if key in simd and simd[key] != scalar[key]:
            fail(f"bench '{name}': simd/scalar {key} differ "
                 f"({simd[key]!r} vs {scalar[key]!r}) — the lane kernels "
                 f"must be bit-identical")
    speedup = check_type(bench, "simd_speedup", (int, float),
                         f"bench '{name}'")
    if speedup <= 0:
        fail(f"bench '{name}': simd_speedup must be positive")


def check_rare_bench(bench, name):
    """Schema /6 rare-event estimator bench."""
    bf = check_path(bench, name, "bruteforce")
    is_ = check_path(bench, name, "is")
    strat = check_path(bench, name, "stratified")
    where = f"bench '{name}'"
    for which, path in (("bruteforce", bf), ("is", is_),
                        ("stratified", strat)):
        ctc = check_type(path, "chips_to_ci", (int, float),
                         f"{where} / {which}")
        if ctc <= 0:
            fail(f"{where} / {which}: chips_to_ci must be positive")
    bridge = check_type(bench, "bridge", dict, where)
    for key in ("yield", "c", "sigma_inl"):
        if not isinstance(bridge.get(key), (int, float)):
            fail(f"{where} / bridge: missing/non-number '{key}'")
    if not 0.0 < bridge["yield"] < 1.0:
        fail(f"{where} / bridge: yield out of (0, 1)")
    if is_.get("low_ess") is not False:
        fail(f"{where} / is: low_ess must be false — the reweighted "
             f"estimate is not trustworthy")
    if not isinstance(is_.get("ess"), (int, float)) or is_["ess"] <= 0:
        fail(f"{where} / is: ess must be positive")
    if is_.get("fails", 0) <= 0:
        fail(f"{where} / is: the proposal saw no failures")
    reduction = check_type(bench, "is_chip_reduction", (int, float), where)
    if reduction <= 1.0:
        fail(f"{where}: is_chip_reduction is {reduction:.2f}x — importance "
             f"sampling must beat brute force")


def check_arch_bench(bench, name):
    """Schema /7 architecture-comparison bench."""
    where = f"bench '{name}'"
    wall = check_type(bench, "wall_s", (int, float), where)
    if wall < 0:
        fail(f"{where}: wall_s must be >= 0")
    archs = check_type(bench, "architectures", list, where)
    if len(archs) < 3:
        fail(f"{where}: expected at least 3 architectures (binary plus "
             f"two more), got {len(archs)}")
    schemes = []
    for i, point in enumerate(archs):
        pw = f"{where} / architectures[{i}]"
        if not isinstance(point, dict):
            fail(f"{pw}: not an object")
        scheme = check_type(point, "scheme", str, pw)
        schemes.append(scheme)
        for key in ("param", "cells"):
            if not isinstance(point.get(key), int):
                fail(f"{pw}: missing/non-integer '{key}'")
        for key in ("inl_yield", "inl_ci95", "sfdr_db", "ete_sfdr_db",
                    "activity"):
            check_type(point, key, (int, float), pw)
        if point["cells"] <= 0:
            fail(f"{pw}: cells must be positive")
        if not 0.0 <= point["inl_yield"] <= 1.0:
            fail(f"{pw}: inl_yield out of [0, 1]")
        if point["inl_ci95"] < 0:
            fail(f"{pw}: inl_ci95 must be >= 0")
        if point["activity"] <= 0:
            fail(f"{pw}: activity must be positive")
    if "binary" not in schemes:
        fail(f"{where}: sweep is missing the binary reference architecture")


def check_spice_mna_bench(bench, name):
    """Schema /8 dense-vs-sparse MNA solve bench."""
    where = f"bench '{name}'"
    for which in ("dense", "sparse"):
        section = check_type(bench, which, dict, where)
        wall = check_type(section, "wall_s", (int, float),
                          f"{where} / {which}")
        if wall <= 0:
            fail(f"{where} / {which}: wall_s must be positive")
        iters = check_type(section, "newton_iters", int,
                           f"{where} / {which}")
        if iters <= 0:
            fail(f"{where} / {which}: newton_iters must be positive")
    sparse = bench["sparse"]
    if sparse.get("factorizations", 0) <= 0:
        fail(f"{where} / sparse: factorizations must be positive")
    if sparse.get("refactorizations", 0) <= 0:
        fail(f"{where} / sparse: refactorizations must be positive — "
             f"symbolic reuse never kicked in")
    max_dx = check_type(bench, "max_dx", (int, float), where)
    if not 0 <= max_dx <= 1e-9:
        fail(f"{where}: dense/sparse solutions diverge by {max_dx:.3e}")
    speedup = check_type(bench, "spice_speedup", (int, float), where)
    if speedup <= 0:
        fail(f"{where}: spice_speedup must be positive")


def check_spice_mc_bench(bench, name):
    """Schema /8 SPICE mismatch-MC warm-start bench."""
    where = f"bench '{name}'"
    sections = {}
    for which in ("cold", "warm"):
        section = check_type(bench, which, dict, where)
        sections[which] = section
        sw = f"{where} / {which}"
        for key in ("newton_iters", "device_evals"):
            val = check_type(section, key, int, sw)
            if val <= 0:
                fail(f"{sw}: {key} must be positive")
        y = check_type(section, "yield", (int, float), sw)
        if not 0.0 <= y <= 1.0:
            fail(f"{sw}: yield out of [0, 1]")
    if sections["cold"]["yield"] != sections["warm"]["yield"]:
        fail(f"{where}: warm starting changed the yield "
             f"({sections['cold']['yield']!r} vs "
             f"{sections['warm']['yield']!r})")
    if sections["warm"].get("warm_start_hits", 0) <= 0:
        fail(f"{where} / warm: no warm-start hits recorded")
    reduction = check_type(bench, "warm_iter_reduction", (int, float), where)
    if reduction <= 1.0:
        fail(f"{where}: warm_iter_reduction is {reduction:.2f}x — warm "
             f"starting must reduce Newton iterations")


def check_serve_bench(bench, name):
    """Schema /5 design-server loadgen bench."""
    where = f"bench '{name}' / serve"
    serve = check_type(bench, "serve", dict, f"bench '{name}'")
    for key in ("requests", "errors", "mismatches", "chip_evals"):
        if not isinstance(serve.get(key), int):
            fail(f"{where}: missing/non-integer '{key}'")
    for key in ("wall_s", "requests_per_s", "p50_us", "p99_us"):
        check_type(serve, key, (int, float), where)
    if serve["requests"] <= 0:
        fail(f"{where}: requests must be positive")
    if serve["errors"] != 0:
        fail(f"{where}: {serve['errors']} request(s) failed")
    if serve["mismatches"] != 0:
        fail(f"{where}: {serve['mismatches']} cross-client result "
             f"mismatch(es) — concurrent replies must be bit-identical")
    if serve["requests_per_s"] <= 0:
        fail(f"{where}: requests_per_s must be positive")
    if serve["p50_us"] < 0:
        fail(f"{where}: p50_us must be >= 0")
    if serve["p99_us"] < serve["p50_us"]:
        fail(f"{where}: p99_us below p50_us")
    if serve["wall_s"] < 0:
        fail(f"{where}: wall_s must be >= 0")
    if serve["chip_evals"] < 0:
        fail(f"{where}: chip_evals must be >= 0")


def bench_paths(doc):
    """Yields (bench_name, path_name, path_dict) for every measured path."""
    for bench in doc.get("benches", []):
        if not isinstance(bench, dict) or "name" not in bench:
            continue
        for which in ("workspace", "legacy", "simd", "scalar", "cold",
                      "warm", "bruteforce", "is", "stratified"):
            path = bench.get(which)
            if isinstance(path, dict) and "chips_per_s" in path:
                yield bench["name"], which, path


def check_compare(doc, baseline_path, tolerance):
    """Fails on a >tolerance relative throughput drop vs the baseline."""
    try:
        with open(baseline_path, encoding="utf-8") as f:
            base = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse baseline {baseline_path}: {e}")
    base_paths = {(b, w): p for b, w, p in bench_paths(base)}
    compared = 0
    for bench, which, path in bench_paths(doc):
        ref = base_paths.get((bench, which))
        if ref is None or ref["chips_per_s"] <= 0:
            continue
        ratio = path["chips_per_s"] / ref["chips_per_s"]
        status = "OK" if ratio >= 1.0 - tolerance else "FAIL"
        print(f"  {status}: {bench}/{which}: {path['chips_per_s']:.0f} "
              f"chips/s vs baseline {ref['chips_per_s']:.0f} "
              f"({ratio:.2f}x)")
        if ratio < 1.0 - tolerance:
            fail(f"bench '{bench}' / {which}: throughput regressed to "
                 f"{ratio:.2f}x of the baseline (tolerance {tolerance})")
        compared += 1
    if compared == 0:
        fail(f"no comparable bench paths between this run and "
             f"{baseline_path}")
    print(f"check_bench_json: compare OK ({compared} paths within "
          f"{tolerance:.0%} of baseline)")


def main():
    parser = argparse.ArgumentParser(
        description="Validate a run_benches JSON document.")
    parser.add_argument("bench_json")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline BENCH json to diff throughput "
                             "against")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed relative throughput drop vs the "
                             "baseline (default 0.2)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        fail("--tolerance must be in [0, 1)")
    try:
        with open(args.bench_json, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {args.bench_json}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    for key, types in TOP_KEYS.items():
        check_type(doc, key, types, "top level")
    if doc["schema"] not in SCHEMAS:
        fail(f"schema is '{doc['schema']}', expected one of {SCHEMAS}")
    v2 = doc["schema"] != "csdac-bench/1"
    v4 = doc["schema"] in ("csdac-bench/4", "csdac-bench/6",
                           "csdac-bench/7", "csdac-bench/8")
    v5 = doc["schema"] == "csdac-bench/5"
    v6 = doc["schema"] in ("csdac-bench/6", "csdac-bench/7",
                           "csdac-bench/8")
    v7 = doc["schema"] in ("csdac-bench/7", "csdac-bench/8")
    v8 = doc["schema"] == "csdac-bench/8"
    if not doc["benches"]:
        fail("benches array is empty")
    if doc["schema"] in ("csdac-bench/3", "csdac-bench/4", "csdac-bench/6",
                         "csdac-bench/7", "csdac-bench/8"):
        check_metrics(doc)
    if v8:
        counters = doc["metrics"]["counters"]
        for key in ("spice.solves", "spice.newton_iters",
                    "spice.factorizations", "spice.refactorizations",
                    "spice.device_evals"):
            if not isinstance(counters.get(key), int) or counters[key] <= 0:
                fail(f"metrics: counter '{key}' must be positive after the "
                     f"spice benches ran")
    if v7:
        counters = doc["metrics"]["counters"]
        for key in ("arch.dyn_runs", "arch.waveforms", "arch.ete_evals",
                    "arch.compare_runs"):
            if not isinstance(counters.get(key), int) or counters[key] <= 0:
                fail(f"metrics: counter '{key}' must be positive after the "
                     f"arch benches ran")
    if v4:
        check_type(doc, "simd_backend", str, "top level")
        lanes = check_type(doc, "simd_lanes", int, "top level")
        if doc["simd_backend"] not in ("scalar", "sse2", "avx2"):
            fail(f"unknown simd_backend '{doc['simd_backend']}'")
        if lanes not in (1, 2, 4):
            fail(f"simd_lanes is {lanes}, expected 1, 2, or 4")

    names = set()
    cache_benches = 0
    simd_benches = 0
    serve_benches = 0
    rare_benches = 0
    arch_benches = 0
    spice_benches = 0
    for bench in doc["benches"]:
        if not isinstance(bench, dict):
            fail("bench entry is not an object")
        name = check_type(bench, "name", str, "bench entry")
        if name in names:
            fail(f"duplicate bench name '{name}'")
        names.add(name)
        check_type(bench, "config", dict, f"bench '{name}'")
        # Spice benches are dispatched before the cache benches: the MC
        # warm-start bench also has cold/warm sections, but they hold
        # solver counters rather than cache-throughput fields.
        if "spice_speedup" in bench:
            if not v8:
                fail(f"bench '{name}': spice benches require csdac-bench/8")
            check_spice_mna_bench(bench, name)
            spice_benches += 1
            continue
        if "warm_iter_reduction" in bench:
            if not v8:
                fail(f"bench '{name}': spice benches require csdac-bench/8")
            check_spice_mc_bench(bench, name)
            spice_benches += 1
            continue
        if "cold" in bench or "warm" in bench:
            if not v2:
                fail(f"bench '{name}': cache benches require csdac-bench/2")
            check_cache_bench(bench, name)
            cache_benches += 1
            continue
        if "simd" in bench or "scalar" in bench:
            if not v4:
                fail(f"bench '{name}': simd benches require csdac-bench/4")
            check_simd_bench(bench, name)
            simd_benches += 1
            continue
        if "serve" in bench:
            if not v5:
                fail(f"bench '{name}': serve benches require csdac-bench/5")
            check_serve_bench(bench, name)
            serve_benches += 1
            continue
        if "bridge" in bench or "is" in bench:
            if not v6:
                fail(f"bench '{name}': rare-event benches require "
                     f"csdac-bench/6")
            check_rare_bench(bench, name)
            rare_benches += 1
            continue
        if "architectures" in bench:
            if not v7:
                fail(f"bench '{name}': architecture benches require "
                     f"csdac-bench/7")
            check_arch_bench(bench, name)
            arch_benches += 1
            continue
        check_path(bench, name, "workspace")
        if "legacy" in bench:
            check_path(bench, name, "legacy")
            speedup = check_type(bench, "speedup", (int, float),
                                 f"bench '{name}'")
            if speedup <= 0:
                fail(f"bench '{name}': speedup must be positive")
    if v2 and not v5 and cache_benches == 0:
        fail("csdac-bench/2 document has no runtime cache benches")
    if v4 and simd_benches == 0:
        fail("csdac-bench/4 document has no simd-vs-scalar benches")
    if v5 and serve_benches == 0:
        fail("csdac-bench/5 document has no serve benches")
    if v6 and rare_benches == 0:
        fail("csdac-bench/6+ document has no rare-event bench")
    if v7 and arch_benches == 0:
        fail("csdac-bench/7 document has no architecture-comparison bench")
    if v7 and "runtime_cache_dyn_spectrum" not in names:
        fail("csdac-bench/7 document is missing the cached dyn-spectrum "
             "bench")
    if v8 and spice_benches < 2:
        fail("csdac-bench/8 document must carry both spice benches "
             "(spice_mna_12bit and spice_mc_warmstart)")

    print(f"check_bench_json: OK ({len(names)} benches: "
          f"{', '.join(sorted(names))})")
    if args.compare:
        check_compare(doc, args.compare, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
