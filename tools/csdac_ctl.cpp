// Operator CLI for the design server's control channel ("csdac-ctl/1" on
// the serve port):
//
//   csdac_ctl [--host H] (--port N | --port-file PATH) CMD
//
//   ping                         liveness probe (workers, inflight)
//   metrics                      print the Prometheus exposition dump
//   dump [--out PATH]            fetch the flight-recorder ring as Chrome
//                                trace JSON (stdout or --out; loads in
//                                Perfetto / chrome://tracing)
//   stats [--interval-s S]       poll the metrics twice S seconds apart
//                                (default 2) and print RATES: requests/s,
//                                jobs/s, chips/s, hot/disk hit %, queue
//                                depth, and per-kind p50/p99 latency from
//                                the serve.stage_us{stage="total"}
//                                histogram deltas — percentiles of what
//                                happened DURING the window, not since
//                                server start
//   shutdown                     ask the server to exit cleanly
//
// Exit status: 0 on success, 1 on transport/server errors, 2 on usage.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "runtime/json.hpp"
#include "serve/client.hpp"

using namespace csdac;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "csdac_ctl: %s\n", msg.c_str());
  std::exit(1);
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: csdac_ctl [--host H] (--port N | --port-file PATH) "
               "CMD\n"
               "  CMD: ping | metrics | dump [--out PATH] | "
               "stats [--interval-s S] | shutdown\n");
  std::exit(2);
}

struct Options {
  std::string host = "127.0.0.1";
  std::string port_file;
  std::string cmd;
  std::string out_path;      ///< dump target ("" = stdout)
  double interval_s = 2.0;   ///< stats sampling window
  int port = 0;
};

Options parse_args(int argc, char** argv) {
  Options o;
  const auto value = [&](int& a) -> const char* {
    if (a + 1 >= argc) usage();
    return argv[++a];
  };
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--host") == 0) o.host = value(a);
    else if (std::strcmp(argv[a], "--port") == 0)
      o.port = std::atoi(value(a));
    else if (std::strcmp(argv[a], "--port-file") == 0)
      o.port_file = value(a);
    else if (std::strcmp(argv[a], "--out") == 0) o.out_path = value(a);
    else if (std::strcmp(argv[a], "--interval-s") == 0)
      o.interval_s = std::atof(value(a));
    else if (argv[a][0] != '-' && o.cmd.empty()) o.cmd = argv[a];
    else usage();
  }
  if (o.cmd != "ping" && o.cmd != "metrics" && o.cmd != "dump" &&
      o.cmd != "stats" && o.cmd != "shutdown") {
    usage();
  }
  if (!(o.interval_s > 0)) die("--interval-s must be positive");
  if (!o.port_file.empty() && o.port <= 0) {
    std::ifstream pf(o.port_file);
    if (!pf || !(pf >> o.port)) die("cannot read port from " + o.port_file);
  }
  if (o.port <= 0) die("no --port (or --port-file) given");
  return o;
}

/// One ctl round trip; dies on transport errors or server error frames.
runtime::JsonValue ctl_call(serve::Client& conn, const std::string& cmd) {
  const std::string payload =
      "{\"schema\":\"csdac-ctl/1\",\"cmd\":\"" + cmd + "\"}";
  std::string reply;
  const serve::FrameStatus st = conn.call(payload, reply);
  if (st != serve::FrameStatus::kOk) {
    die("transport error: " + std::string(serve::frame_status_name(st)));
  }
  runtime::JsonValue doc;
  std::string err;
  if (!runtime::parse_json(reply, doc, &err)) {
    die("unparseable reply: " + err);
  }
  if (const auto* e = doc.find("error")) {
    die("server error: " + e->string_or("code", "?") + ": " +
        e->string_or("message", ""));
  }
  return doc;
}

// --- Prometheus text parsing (for `stats`) ---------------------------------

/// One exposition sample: metric name, sorted labels, value.
struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  std::string label_or(const std::string& key) const {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return {};
  }
};

/// Parses the subset of the exposition format the registry emits: comment
/// lines, `name value`, and `name{k="v",...} value` with \\ \" \n escapes
/// in label values.
std::vector<PromSample> parse_prometheus(const std::string& text) {
  std::vector<PromSample> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;

    PromSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = std::string(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = i;
        while (eq < line.size() && line[eq] != '=') ++eq;
        std::string key(line.substr(i, eq - i));
        i = eq + 2;  // skip ="
        std::string val;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            const char c = line[i + 1];
            val += c == 'n' ? '\n' : c;
            i += 2;
          } else {
            val += line[i++];
          }
        }
        ++i;  // closing quote
        s.labels.emplace_back(std::move(key), std::move(val));
        if (i < line.size() && line[i] == ',') ++i;
      }
      ++i;  // closing brace
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) continue;  // malformed; skip
    const std::string num(line.substr(i));
    s.value = num == "+Inf" ? HUGE_VAL : std::strtod(num.c_str(), nullptr);
    std::sort(s.labels.begin(), s.labels.end());
    out.push_back(std::move(s));
  }
  return out;
}

/// Value of the sample with this exact name and labels (0 when absent —
/// counters the server never touched simply read as zero deltas).
double sample_value(const std::vector<PromSample>& samples,
                    const std::string& name,
                    const std::vector<std::pair<std::string, std::string>>&
                        labels = {}) {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  return 0.0;
}

std::string fetch_metrics(serve::Client& conn) {
  const runtime::JsonValue doc = ctl_call(conn, "metrics");
  return doc.string_or("prometheus", "");
}

/// Cumulative-bucket histogram restricted to one (kind, stage) series:
/// le upper bound -> cumulative count.
std::map<double, double> stage_buckets(const std::vector<PromSample>& samples,
                                       const std::string& kind,
                                       const std::string& stage) {
  std::map<double, double> out;
  for (const auto& s : samples) {
    if (s.name != "csdac_serve_stage_us_bucket") continue;
    if (s.label_or("kind") != kind || s.label_or("stage") != stage) continue;
    const std::string le = s.label_or("le");
    out[le == "+Inf" ? HUGE_VAL : std::strtod(le.c_str(), nullptr)] =
        s.value;
  }
  return out;
}

/// Upper-bound percentile from a cumulative-bucket DELTA: the smallest le
/// whose windowed count reaches p of the windowed total. Log2 buckets, so
/// the answer is a ceiling ("under N us"), not an interpolation.
double bucket_percentile(const std::map<double, double>& before,
                         const std::map<double, double>& after, double p) {
  double total = 0.0;
  for (const auto& [le, cum] : after) {
    const auto it = before.find(le);
    const double delta = cum - (it == before.end() ? 0.0 : it->second);
    if (std::isinf(le)) total = delta;
  }
  if (total <= 0.0) return std::nan("");
  const double target = p * total;
  for (const auto& [le, cum] : after) {
    const auto it = before.find(le);
    const double delta = cum - (it == before.end() ? 0.0 : it->second);
    if (delta >= target - 1e-9) return le;
  }
  return HUGE_VAL;
}

int run_stats(serve::Client& conn, const Options& o) {
  const std::string text0 = fetch_metrics(conn);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(o.interval_s));
  const std::string text1 = fetch_metrics(conn);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::vector<PromSample> a = parse_prometheus(text0);
  const std::vector<PromSample> b = parse_prometheus(text1);
  const auto rate = [&](const std::string& name) {
    return (sample_value(b, name) - sample_value(a, name)) / dt;
  };
  const auto hit_pct = [&](const std::string& hits,
                           const std::string& misses) {
    const double h = sample_value(b, hits) - sample_value(a, hits);
    const double m = sample_value(b, misses) - sample_value(a, misses);
    return h + m > 0 ? 100.0 * h / (h + m) : std::nan("");
  };

  std::printf("csdac_ctl: stats over %.2f s window\n", dt);
  std::printf("  requests/s   %10.2f\n", rate("csdac_serve_requests_total"));
  std::printf("  jobs/s       %10.2f\n", rate("csdac_sched_completed_total"));
  std::printf("  chips/s      %10.0f\n",
              rate("csdac_mc_chips_evaluated_total"));
  const double hot = hit_pct("csdac_cache_hot_hits_total",
                             "csdac_cache_hot_misses_total");
  const double disk =
      hit_pct("csdac_cache_hits_total", "csdac_cache_misses_total");
  std::printf("  hot hit %%    %10.1f\n", hot);
  std::printf("  disk hit %%   %10.1f\n", disk);
  std::printf("  queue depth  %10.0f\n",
              sample_value(b, "csdac_sched_queue_depth"));
  std::printf("  inflight     %10.0f\n",
              sample_value(b, "csdac_sched_inflight"));

  // Per-kind latency percentiles from the windowed stage_us{stage=total}
  // histogram deltas. Log2 buckets: each figure is an upper bound.
  std::vector<std::string> kinds;
  for (const auto& s : b) {
    if (s.name != "csdac_serve_stage_us_count") continue;
    if (s.label_or("stage") != "total") continue;
    kinds.push_back(s.label_or("kind"));
  }
  std::sort(kinds.begin(), kinds.end());
  kinds.erase(std::unique(kinds.begin(), kinds.end()), kinds.end());
  for (const std::string& kind : kinds) {
    const auto before = stage_buckets(a, kind, "total");
    const auto after = stage_buckets(b, kind, "total");
    const double p50 = bucket_percentile(before, after, 0.50);
    const double p99 = bucket_percentile(before, after, 0.99);
    if (std::isnan(p50)) continue;  // no traffic for this kind in window
    std::printf("  %-12s p50 <= %.0f us, p99 <= %.0f us\n", kind.c_str(),
                p50, p99);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  serve::Client conn;
  std::string err;
  if (!conn.connect(o.host, o.port, &err)) die("connect: " + err);

  if (o.cmd == "ping") {
    const runtime::JsonValue doc = ctl_call(conn, "ping");
    std::printf("ok: %lld workers, %lld jobs inflight\n",
                static_cast<long long>(doc.int_or("workers", 0)),
                static_cast<long long>(doc.int_or("inflight", 0)));
    return 0;
  }
  if (o.cmd == "metrics") {
    std::fputs(fetch_metrics(conn).c_str(), stdout);
    return 0;
  }
  if (o.cmd == "dump") {
    const runtime::JsonValue doc = ctl_call(conn, "dump");
    const std::string trace = doc.string_or("chrome_trace", "");
    if (trace.empty()) die("server returned no chrome_trace");
    if (o.out_path.empty()) {
      std::fputs(trace.c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::ofstream out(o.out_path, std::ios::binary);
      if (!out) die("cannot write " + o.out_path);
      out << trace << "\n";
      std::fprintf(stderr, "csdac_ctl: wrote %s (%lld events, %lld "
                           "dropped)\n",
                   o.out_path.c_str(),
                   static_cast<long long>(doc.int_or("events", 0)),
                   static_cast<long long>(doc.int_or("dropped", 0)));
    }
    return 0;
  }
  if (o.cmd == "stats") return run_stats(conn, o);

  ctl_call(conn, "shutdown");
  std::printf("ok: shutdown acknowledged\n");
  return 0;
}
