// Machine-readable perf harness: runs the Monte-Carlo/yield benches on the
// paper's 12-bit spec and writes BENCH_mc.json (schema "csdac-bench/3",
// documented in EXPERIMENTS.md) so the perf trajectory can be tracked
// across commits. Each MC bench is measured twice — the allocation-free
// per-thread-workspace path and the legacy allocating reference — plus the
// steady-state bytes allocated per chip via the opt-in counting hook.
// Schema /2 adds runtime-cache benches: the same job executed cold (miss,
// full compute) and warm (hit, served from the persistent store), with the
// warm run required to be a hit with zero Monte-Carlo chip evaluations.
// Schema /3 embeds the end-of-run metrics-registry snapshot under
// "metrics", so a bench record also carries the engine/cache counters
// (chips evaluated, waves, early stops, cache traffic) behind the numbers.
// Schema /4 adds the chip-per-lane SIMD benches: the same fixed-count
// yield jobs run single-threaded under the forced scalar dispatch and
// under the widest backend the CPU offers ("scalar" vs "simd" sections,
// "simd_speedup" ratio), with a FATAL exit if the two disagree on any
// pass count — the SIMD path is required to be bit-identical, so a
// mismatch is a correctness bug, not noise. The active backend is
// recorded top-level under "simd_backend" / "simd_lanes".
// (Schema /5 is the design-server loadgen document written by
// tools/csdac_loadgen, not by this harness.)
// Schema /8 adds the sparse-MNA engine benches: one DC operating-point
// solve of the paper's full 12-bit transistor-level array under the dense
// and the sparse solver policies ("spice_mna_12bit", "spice_speedup"
// ratio, FATAL if the two solutions diverge beyond 1e-9), and the
// SPICE-in-the-loop mismatch MC run cold vs corner-to-corner warm-started
// ("spice_mc_warmstart", "warm_iter_reduction" Newton-iteration ratio,
// FATAL if warm starting changes the yield). Both ratios are
// compute-shape properties, not wall-clock races, so CI gates on them
// via --require-spice-speedup.
// Schema /6 adds the rare-event estimator bench: the 99.99%-yield
// 12-bit tail case measured by brute-force MC, importance sampling,
// stratified+antithetic sampling, and the analytic bridge surrogate,
// each section reporting "chips_to_ci" — the chip count that estimator
// needs to pin the failure probability to a 50% relative 95% CI — plus
// the headline "is_chip_reduction" variance ratio (brute-force /
// importance-sampling chips for equal CI).
// Schema /7 adds the dynamic-error architecture benches: the cold/warm
// cache pass of a per-cell timing-MC spectrum job
// ("runtime_cache_dyn_spectrum"), and the architecture-comparison table
// ("arch_compare_10bit") sweeping binary / segmented splits / optimized
// weightings with INL yield, timing-limited SFDR, ETE prediction, and
// switching activity side by side.
//
//   run_benches [--smoke] [--out PATH] [--threads N] [--require-speedup X]
//               [--require-simd-speedup X] [--require-rare-reduction X]
//               [--require-spice-speedup X]
//
// --smoke shrinks the chip budgets for CI; --require-speedup X exits
// nonzero unless the workspace INL bench shows >= X times the legacy
// chips/s; --require-simd-speedup X does the same for the simd-vs-scalar
// INL bench (used for local acceptance runs, not in CI where shared
// runners make timing unreliable). --require-rare-reduction X gates on
// is_chip_reduction >= X; unlike the timing gates this one is a variance
// ratio, stable on shared runners, so CI enforces it.
// --require-spice-speedup X gates on spice_speedup >= X AND
// warm_iter_reduction > 1; the dense/sparse ratio compares two
// single-threaded runs of the same process, so it is stable enough for CI
// despite being a timing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include <cmath>

#include "arch/weighting.hpp"
#include "bench_json.hpp"
#include "core/accuracy.hpp"
#include "core/sizer.hpp"
#include "dacgen/dacgen.hpp"
#include "dacgen/spice_mc.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "dac/calibration.hpp"
#include "dac/rare_event.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/alloc_counter.hpp"
#include "mathx/rare_event.hpp"
#include "mathx/simd.hpp"
#include "obs/metrics.hpp"
#include "runtime/graph.hpp"

using namespace csdac;

namespace {

std::string detect_git_sha() {
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    const std::size_t got = fread(buf, 1, sizeof(buf) - 1, p);
    pclose(p);
    std::string sha(buf, got);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (sha.size() >= 7) return sha;
  }
  if (const char* env = std::getenv("GITHUB_SHA")) return env;
  return "unknown";
}

/// Steady-state allocation rate of the workspace chip kernel: the workspace
/// is built first, then `chips` evaluations are counted. Expected ~0.
double workspace_alloc_bytes_per_chip(const core::DacSpec& spec,
                                      double sigma, std::uint64_t seed,
                                      int chips) {
  dac::ChipWorkspace ws(spec);
  dac::mc_chip_metrics(ws, sigma, seed, 0);  // warm every buffer once
  mathx::ScopedAllocCounting counting;
  for (int c = 0; c < chips; ++c) {
    dac::mc_chip_metrics(ws, sigma, seed, c);
  }
  return static_cast<double>(counting.so_far().bytes) / chips;
}

/// Same measurement for the legacy allocating chain.
double legacy_alloc_bytes_per_chip(const core::DacSpec& spec, double sigma,
                                   std::uint64_t seed, int chips) {
  mathx::ScopedAllocCounting counting;
  for (int c = 0; c < chips; ++c) {
    mathx::Xoshiro256 rng =
        mathx::stream_rng(seed, static_cast<std::uint64_t>(c));
    const dac::SegmentedDac chip(spec,
                                 dac::draw_source_errors(spec, sigma, rng));
    const auto m = dac::analyze_transfer(chip.transfer());
    (void)m;
  }
  return static_cast<double>(counting.so_far().bytes) / chips;
}

/// Cold/warm timing of one job through the runtime cache. Returns false
/// (after printing) when the warm run is not a pure cache hit or redoes
/// Monte-Carlo work — that is a correctness bug, not a slow run.
bool bench_cache_job(bench::JsonWriter& w, const char* name,
                     const runtime::Job& job, std::int64_t chips,
                     int threads) {
  const std::string dir = ".csdac-cache-bench";
  std::filesystem::remove_all(dir);
  runtime::RuntimeOptions opts;
  opts.threads = threads;
  opts.cache_dir = dir;

  const runtime::JobRecord cold = runtime::run_job(job, opts);
  const std::int64_t chips0 = dac::mc_chips_evaluated();
  const runtime::JobRecord warm = runtime::run_job(job, opts);
  const std::int64_t warm_evals = dac::mc_chips_evaluated() - chips0;
  std::filesystem::remove_all(dir);

  if (cold.cache_hit || !warm.cache_hit || warm_evals != 0) {
    std::fprintf(stderr,
                 "FATAL: %s cache behavior wrong (cold hit=%d, warm hit=%d, "
                 "warm chip evals=%lld)\n",
                 name, cold.cache_hit, warm.cache_hit,
                 static_cast<long long>(warm_evals));
    return false;
  }
  const double warm_speedup =
      warm.wall_seconds > 0.0 ? cold.wall_seconds / warm.wall_seconds : 0.0;
  std::printf("  cold %.4f s (miss), warm %.6f s (hit, 0 chip evals): "
              "%.0fx\n",
              cold.wall_seconds, warm.wall_seconds, warm_speedup);

  w.begin_object();
  w.field("name", name);
  w.key("config").begin_object();
  w.field("key", cold.key.hex().c_str());
  w.field("chips", chips);
  w.end_object();
  w.key("cold").begin_object();
  w.field("chips", chips);
  w.field("wall_s", cold.wall_seconds);
  w.field("chips_per_s", cold.wall_seconds > 0.0
                             ? static_cast<double>(chips) / cold.wall_seconds
                             : 0.0);
  w.field("cache_hits", cold.stats.cache_hits);
  w.field("cache_misses", cold.stats.cache_misses);
  w.end_object();
  w.key("warm").begin_object();
  w.field("chips", chips);
  w.field("wall_s", warm.wall_seconds);
  w.field("chips_per_s", warm.wall_seconds > 0.0
                             ? static_cast<double>(chips) / warm.wall_seconds
                             : 0.0);
  w.field("cache_hits", warm.stats.cache_hits);
  w.field("cache_misses", warm.stats.cache_misses);
  w.field("chip_evals", warm_evals);
  w.end_object();
  w.field("warm_speedup", warm_speedup);
  w.end_object();
  return true;
}

void emit_path(bench::JsonWriter& w, const char* name,
               const dac::YieldEstimate& y, double alloc_bytes_per_chip) {
  w.key(name).begin_object();
  w.field("chips", y.chips);
  w.field("yield", y.yield);
  w.field("ci95", y.ci95);
  w.field("chips_per_s", y.stats.items_per_second);
  w.field("wall_s", y.stats.wall_seconds);
  w.field("threads", y.stats.threads);
  w.field("alloc_bytes_per_chip", alloc_bytes_per_chip);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int threads = 0;  // hardware concurrency
  double require_speedup = 0.0;
  double require_simd_speedup = 0.0;
  double require_rare_reduction = 0.0;
  double require_spice_speedup = 0.0;
  std::string out_path = "BENCH_mc.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      out_path = argv[++a];
    } else if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc) {
      threads = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--require-speedup") == 0 &&
               a + 1 < argc) {
      require_speedup = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--require-simd-speedup") == 0 &&
               a + 1 < argc) {
      require_simd_speedup = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--require-rare-reduction") == 0 &&
               a + 1 < argc) {
      require_rare_reduction = std::atof(argv[++a]);
    } else if (std::strcmp(argv[a], "--require-spice-speedup") == 0 &&
               a + 1 < argc) {
      require_spice_speedup = std::atof(argv[++a]);
    } else {
      std::fprintf(stderr,
                   "usage: run_benches [--smoke] [--out PATH] [--threads N] "
                   "[--require-speedup X] [--require-simd-speedup X] "
                   "[--require-rare-reduction X] "
                   "[--require-spice-speedup X]\n");
      return 2;
    }
  }

  core::DacSpec spec;  // paper's 12-bit, b = 4 design point
  const double sigma = core::unit_sigma_spec(spec.nbits, spec.inl_yield);
  const std::uint64_t seed = 1000;
  const int chips = smoke ? 300 : 2000;
  const int alloc_probe_chips = smoke ? 16 : 64;

  bench::JsonWriter w;
  w.begin_object();
  const mathx::SimdBackend simd_backend = mathx::simd_backend();
  w.field("schema", "csdac-bench/8");
  w.field("git_sha", detect_git_sha().c_str());
  w.field("generated_unix", static_cast<std::int64_t>(std::time(nullptr)));
  w.field("smoke", smoke);
  w.field("threads", threads);
  w.field("hardware_threads",
          static_cast<int>(std::thread::hardware_concurrency()));
  w.field("simd_backend", mathx::simd_backend_name(simd_backend));
  w.field("simd_lanes", mathx::simd_lane_width(simd_backend));
  w.key("benches").begin_array();

  // --- Fixed-count INL yield: workspace vs legacy -----------------------
  std::printf("inl_yield_12bit: %d chips, sigma = %.4f%% ...\n", chips,
              sigma * 100);
  // Warm up once so first-touch page faults don't bias the first path.
  (void)dac::inl_yield_mc(spec, sigma, chips / 4 + 1, seed, 0.5,
                          dac::InlReference::kBestFit, threads);
  const auto ws_inl = dac::inl_yield_mc(spec, sigma, chips, seed, 0.5,
                                        dac::InlReference::kBestFit, threads);
  const auto legacy_inl = dac::inl_yield_mc_legacy(
      spec, sigma, chips, seed, 0.5, dac::InlReference::kBestFit, threads);
  const double ws_alloc =
      workspace_alloc_bytes_per_chip(spec, sigma, seed, alloc_probe_chips);
  const double legacy_alloc =
      legacy_alloc_bytes_per_chip(spec, sigma, seed, alloc_probe_chips);
  const double speedup =
      legacy_inl.stats.items_per_second > 0.0
          ? ws_inl.stats.items_per_second / legacy_inl.stats.items_per_second
          : 0.0;
  if (ws_inl.pass != legacy_inl.pass) {
    std::fprintf(stderr,
                 "FATAL: workspace/legacy pass mismatch (%d vs %d)\n",
                 ws_inl.pass, legacy_inl.pass);
    return 1;
  }
  std::printf("  workspace %.0f chips/s (%.1f B/chip), legacy %.0f chips/s "
              "(%.0f B/chip): speedup %.2fx\n",
              ws_inl.stats.items_per_second, ws_alloc,
              legacy_inl.stats.items_per_second, legacy_alloc, speedup);
  w.begin_object();
  w.field("name", "inl_yield_12bit");
  w.key("config").begin_object();
  w.field("nbits", spec.nbits);
  w.field("binary_bits", spec.binary_bits);
  w.field("sigma_unit", sigma);
  w.field("chips", chips);
  w.field("seed", static_cast<std::int64_t>(seed));
  w.field("inl_limit", 0.5);
  w.end_object();
  emit_path(w, "workspace", ws_inl, ws_alloc);
  emit_path(w, "legacy", legacy_inl, legacy_alloc);
  w.field("speedup", speedup);
  w.end_object();

  // --- Calibration-in-the-loop yield: workspace vs legacy ---------------
  const int cal_chips = smoke ? 150 : 800;
  const double cal_sigma = 4.0 * sigma;  // undersized array: trims matter
  dac::CalibrationOptions cal_opts;
  std::printf("calibration_yield_12bit: %d chips ...\n", cal_chips);
  const auto ws_cal = dac::calibration_yield_mc(spec, cal_sigma, cal_opts,
                                                cal_chips, seed, 0.5, threads);
  const auto legacy_cal = dac::calibration_yield_mc_legacy(
      spec, cal_sigma, cal_opts, cal_chips, seed, 0.5, threads);
  const double cal_speedup =
      legacy_cal.stats.items_per_second > 0.0
          ? ws_cal.stats.items_per_second / legacy_cal.stats.items_per_second
          : 0.0;
  if (ws_cal.yield_after != legacy_cal.yield_after) {
    std::fprintf(stderr, "FATAL: calibration workspace/legacy mismatch\n");
    return 1;
  }
  std::printf("  workspace %.0f chips/s, legacy %.0f chips/s: %.2fx\n",
              ws_cal.stats.items_per_second,
              legacy_cal.stats.items_per_second, cal_speedup);
  w.begin_object();
  w.field("name", "calibration_yield_12bit");
  w.key("config").begin_object();
  w.field("nbits", spec.nbits);
  w.field("binary_bits", spec.binary_bits);
  w.field("sigma_unit", cal_sigma);
  w.field("chips", cal_chips);
  w.field("seed", static_cast<std::int64_t>(seed));
  w.field("cal_range_lsb", cal_opts.range_lsb);
  w.field("cal_bits", cal_opts.bits);
  w.end_object();
  w.key("workspace").begin_object();
  w.field("chips", ws_cal.chips);
  w.field("yield_before", ws_cal.yield_before);
  w.field("yield_after", ws_cal.yield_after);
  w.field("chips_per_s", ws_cal.stats.items_per_second);
  w.field("wall_s", ws_cal.stats.wall_seconds);
  w.end_object();
  w.key("legacy").begin_object();
  w.field("chips", legacy_cal.chips);
  w.field("yield_before", legacy_cal.yield_before);
  w.field("yield_after", legacy_cal.yield_after);
  w.field("chips_per_s", legacy_cal.stats.items_per_second);
  w.field("wall_s", legacy_cal.stats.wall_seconds);
  w.end_object();
  w.field("speedup", cal_speedup);
  w.end_object();

  // --- Adaptive early stopping: engine counters -------------------------
  dac::AdaptiveMcOptions aopts;
  aopts.max_chips = smoke ? 1500 : 6000;
  aopts.ci_half_width = 0.02;
  aopts.threads = threads;
  aopts.count_allocs = true;
  std::printf("adaptive_inl_yield_12bit: cap %d chips, ci <= %.3f ...\n",
              aopts.max_chips, aopts.ci_half_width);
  const auto adaptive = dac::inl_yield_mc_adaptive(spec, sigma, aopts, seed);
  std::printf("  evaluated %lld, skipped %lld, %.0f chips/s, "
              "utilization %.2f, %lld B allocated\n",
              static_cast<long long>(adaptive.stats.evaluated),
              static_cast<long long>(adaptive.stats.skipped),
              adaptive.stats.items_per_second, adaptive.stats.utilization,
              static_cast<long long>(adaptive.stats.alloc_bytes));
  w.begin_object();
  w.field("name", "adaptive_inl_yield_12bit");
  w.key("config").begin_object();
  w.field("nbits", spec.nbits);
  w.field("binary_bits", spec.binary_bits);
  w.field("sigma_unit", sigma);
  w.field("max_chips", aopts.max_chips);
  w.field("ci_half_width", aopts.ci_half_width);
  w.field("seed", static_cast<std::int64_t>(seed));
  w.end_object();
  w.key("workspace").begin_object();
  w.field("chips", adaptive.chips);
  w.field("yield", adaptive.yield);
  w.field("ci95", adaptive.ci95);
  w.field("chips_per_s", adaptive.stats.items_per_second);
  w.field("wall_s", adaptive.stats.wall_seconds);
  w.field("evaluated", adaptive.stats.evaluated);
  w.field("skipped", adaptive.stats.skipped);
  w.field("early_stopped", adaptive.stats.early_stopped);
  w.field("utilization", adaptive.stats.utilization);
  w.field("alloc_bytes", adaptive.stats.alloc_bytes);
  w.field("alloc_count", adaptive.stats.alloc_count);
  w.end_object();
  w.end_object();

  // --- SIMD chip-per-lane kernel vs forced scalar dispatch --------------
  // Single-threaded on purpose: the lane speedup is a per-core property,
  // and one thread keeps the measurement off the scheduler. Pass counts
  // must agree exactly — the SIMD path is bit-identical by construction
  // and by the equivalence test suite.
  double simd_speedup = 0.0;
  {
    const int simd_chips = smoke ? 300 : 2000;
    std::printf("simd_inl_yield_12bit: %d chips, %s vs scalar ...\n",
                simd_chips, mathx::simd_backend_name(simd_backend));
    mathx::simd_force_backend(mathx::SimdBackend::kScalar);
    (void)dac::inl_yield_mc(spec, sigma, simd_chips / 4 + 1, seed, 0.5,
                            dac::InlReference::kBestFit, 1);
    const auto scalar_inl = dac::inl_yield_mc(
        spec, sigma, simd_chips, seed, 0.5, dac::InlReference::kBestFit, 1);
    mathx::simd_force_backend(simd_backend);
    const auto simd_inl = dac::inl_yield_mc(
        spec, sigma, simd_chips, seed, 0.5, dac::InlReference::kBestFit, 1);
    if (simd_inl.pass != scalar_inl.pass) {
      std::fprintf(stderr, "FATAL: simd/scalar pass mismatch (%d vs %d)\n",
                   simd_inl.pass, scalar_inl.pass);
      return 1;
    }
    simd_speedup = scalar_inl.stats.items_per_second > 0.0
                       ? simd_inl.stats.items_per_second /
                             scalar_inl.stats.items_per_second
                       : 0.0;
    std::printf("  %s %.0f chips/s, scalar %.0f chips/s: %.2fx\n",
                mathx::simd_backend_name(simd_backend),
                simd_inl.stats.items_per_second,
                scalar_inl.stats.items_per_second, simd_speedup);
    w.begin_object();
    w.field("name", "simd_inl_yield_12bit");
    w.key("config").begin_object();
    w.field("nbits", spec.nbits);
    w.field("binary_bits", spec.binary_bits);
    w.field("sigma_unit", sigma);
    w.field("chips", simd_chips);
    w.field("seed", static_cast<std::int64_t>(seed));
    w.field("inl_limit", 0.5);
    w.field("backend", mathx::simd_backend_name(simd_backend));
    w.field("lanes", mathx::simd_lane_width(simd_backend));
    w.end_object();
    emit_path(w, "simd", simd_inl, 0.0);
    emit_path(w, "scalar", scalar_inl, 0.0);
    w.field("simd_speedup", simd_speedup);
    w.end_object();

    const int simd_cal_chips = smoke ? 150 : 800;
    std::printf("simd_calibration_yield_12bit: %d chips, %s vs scalar ...\n",
                simd_cal_chips, mathx::simd_backend_name(simd_backend));
    mathx::simd_force_backend(mathx::SimdBackend::kScalar);
    const auto scalar_cal = dac::calibration_yield_mc(
        spec, cal_sigma, cal_opts, simd_cal_chips, seed, 0.5, 1);
    mathx::simd_force_backend(simd_backend);
    const auto simd_cal = dac::calibration_yield_mc(
        spec, cal_sigma, cal_opts, simd_cal_chips, seed, 0.5, 1);
    if (simd_cal.yield_before != scalar_cal.yield_before ||
        simd_cal.yield_after != scalar_cal.yield_after) {
      std::fprintf(stderr, "FATAL: simd/scalar calibration mismatch\n");
      return 1;
    }
    const double simd_cal_speedup =
        scalar_cal.stats.items_per_second > 0.0
            ? simd_cal.stats.items_per_second /
                  scalar_cal.stats.items_per_second
            : 0.0;
    std::printf("  %s %.0f chips/s, scalar %.0f chips/s: %.2fx\n",
                mathx::simd_backend_name(simd_backend),
                simd_cal.stats.items_per_second,
                scalar_cal.stats.items_per_second, simd_cal_speedup);
    w.begin_object();
    w.field("name", "simd_calibration_yield_12bit");
    w.key("config").begin_object();
    w.field("nbits", spec.nbits);
    w.field("binary_bits", spec.binary_bits);
    w.field("sigma_unit", cal_sigma);
    w.field("chips", simd_cal_chips);
    w.field("seed", static_cast<std::int64_t>(seed));
    w.field("cal_range_lsb", cal_opts.range_lsb);
    w.field("cal_bits", cal_opts.bits);
    w.field("backend", mathx::simd_backend_name(simd_backend));
    w.field("lanes", mathx::simd_lane_width(simd_backend));
    w.end_object();
    w.key("simd").begin_object();
    w.field("chips", simd_cal.chips);
    w.field("yield_before", simd_cal.yield_before);
    w.field("yield_after", simd_cal.yield_after);
    w.field("chips_per_s", simd_cal.stats.items_per_second);
    w.field("wall_s", simd_cal.stats.wall_seconds);
    w.end_object();
    w.key("scalar").begin_object();
    w.field("chips", scalar_cal.chips);
    w.field("yield_before", scalar_cal.yield_before);
    w.field("yield_after", scalar_cal.yield_after);
    w.field("chips_per_s", scalar_cal.stats.items_per_second);
    w.field("wall_s", scalar_cal.stats.wall_seconds);
    w.end_object();
    w.field("simd_speedup", simd_cal_speedup);
    w.end_object();
  }

  // --- Runtime cache: cold (compute + store) vs warm (pure hit) ---------
  {
    const int cache_chips = smoke ? 300 : 2000;
    std::printf("runtime_cache_inl_yield: %d chips cold vs warm ...\n",
                cache_chips);
    runtime::InlYieldJob inl_job;
    inl_job.spec = spec;
    inl_job.sigma_unit = sigma;
    inl_job.chips = cache_chips;
    inl_job.seed = seed;
    if (!bench_cache_job(w, "runtime_cache_inl_yield", inl_job, cache_chips,
                         threads)) {
      return 1;
    }

    const int cache_cal_chips = smoke ? 150 : 800;
    std::printf("runtime_cache_cal_yield: %d chips cold vs warm ...\n",
                cache_cal_chips);
    runtime::CalYieldJob cal_job;
    cal_job.spec = spec;
    cal_job.sigma_unit = cal_sigma;
    cal_job.cal = cal_opts;
    cal_job.chips = cache_cal_chips;
    cal_job.seed = seed;
    if (!bench_cache_job(w, "runtime_cache_cal_yield", cal_job,
                         cache_cal_chips, threads)) {
      return 1;
    }
  }

  // --- Rare-event estimators at the 99.99%-yield tail -------------------
  // Sigma is chosen FROM the bridge surrogate so the true failure
  // probability is ~1e-4 by construction: brute-force MC at this budget
  // sees a handful of failures at best, while the tilted IS proposal
  // fails constantly and reweights back. The headline number is the
  // variance ratio = how many times fewer chips IS needs for the same CI.
  double rare_reduction = 0.0;
  {
    const int rare_chips = smoke ? 4000 : 20000;
    const std::uint64_t rare_seed = 7;
    const double sigma_scale = 2.2;
    const int modes = 8;
    const int strata = 16;
    const double c9999 = mathx::kolmogorov_quantile(0.9999);
    const double rare_sigma =
        0.5 / (c9999 * std::sqrt(spec.unary_weight() *
                                 static_cast<double>(spec.num_unary())));
    std::printf("rare_inl_yield_9999: %d chips, sigma = %.4f%% "
                "(bridge-calibrated 99.99%% yield) ...\n",
                rare_chips, rare_sigma * 100);

    const auto bf =
        dac::inl_yield_mc(spec, rare_sigma, rare_chips, rare_seed, 0.5,
                          dac::InlReference::kEndpoint, threads);
    const auto is =
        dac::inl_yield_is(spec, rare_sigma, sigma_scale, modes, rare_chips,
                          rare_seed, 0.5, dac::InlReference::kEndpoint,
                          threads);
    const auto strat = dac::inl_yield_stratified(
        spec, rare_sigma, strata, rare_chips, rare_seed, 0.5,
        dac::InlReference::kEndpoint, threads);
    const auto bridge = dac::inl_yield_bridge(spec, rare_sigma, 0.5);

    if (is.fails == 0 || is.low_ess) {
      std::fprintf(stderr,
                   "FATAL: IS proposal saw no tail (fails=%lld, low_ess=%d) "
                   "— the tilt is miscalibrated\n",
                   static_cast<long long>(is.fails), is.low_ess);
      return 1;
    }
    const double p = 1.0 - is.yield;  // best available tail estimate
    const double p_bridge = 1.0 - bridge.yield;
    if (!(p > 0.0)) {
      std::fprintf(stderr, "FATAL: IS failure probability is not positive\n");
      return 1;
    }
    if (std::fabs(p - p_bridge) > 10.0 * is.ci95 + 2e-5) {
      std::fprintf(stderr,
                   "FATAL: IS tail %.3e disagrees with bridge surrogate "
                   "%.3e beyond 10x CI — estimator bug, not noise\n",
                   p, p_bridge);
      return 1;
    }

    // Per-chip variance of each estimator, from its measured CI; chips
    // needed to pin p to a 50% relative 95% CI (half-width p/2).
    const double z95 = 1.959963984540054;
    const double h = p / 2.0;
    const double var_bf = p * (1.0 - p);  // Bernoulli, exact
    const double var_is =
        (is.ci95 / z95) * (is.ci95 / z95) * static_cast<double>(is.chips);
    const double var_strat = (strat.ci95 / z95) * (strat.ci95 / z95) *
                             static_cast<double>(strat.chips);
    const auto chips_to_ci = [&](double var) {
      return var > 0.0 ? z95 * z95 * var / (h * h) : 0.0;
    };
    rare_reduction = var_is > 0.0 ? var_bf / var_is : 0.0;
    const double strat_reduction = var_strat > 0.0 ? var_bf / var_strat : 0.0;
    std::printf("  p_fail: is %.3e (ci %.1e, ess %.0f/%lld), strat %.3e, "
                "bridge %.3e, brute-force saw %lld/%lld\n",
                p, is.ci95, is.ess, static_cast<long long>(is.chips),
                1.0 - strat.yield, p_bridge,
                static_cast<long long>(bf.chips - bf.pass),
                static_cast<long long>(bf.chips));
    std::printf("  chips to 50%% CI: brute-force %.0f, is %.0f, strat %.0f "
                "-> IS reduction %.0fx\n",
                chips_to_ci(var_bf), chips_to_ci(var_is),
                chips_to_ci(var_strat), rare_reduction);

    w.begin_object();
    w.field("name", "rare_inl_yield_9999");
    w.key("config").begin_object();
    w.field("nbits", spec.nbits);
    w.field("binary_bits", spec.binary_bits);
    w.field("sigma_unit", rare_sigma);
    w.field("target_yield", 0.9999);
    w.field("chips", rare_chips);
    w.field("seed", static_cast<std::int64_t>(rare_seed));
    w.field("sigma_scale", sigma_scale);
    w.field("modes", modes);
    w.field("strata", strata);
    w.field("inl_limit", 0.5);
    w.field("ref", "endpoint");
    w.end_object();
    w.key("bruteforce").begin_object();
    w.field("chips", bf.chips);
    w.field("fails", static_cast<std::int64_t>(bf.chips - bf.pass));
    w.field("yield", bf.yield);
    w.field("ci95", bf.ci95);
    w.field("chips_per_s", bf.stats.items_per_second);
    w.field("wall_s", bf.stats.wall_seconds);
    w.field("chips_to_ci", chips_to_ci(var_bf));
    w.end_object();
    w.key("is").begin_object();
    w.field("chips", is.chips);
    w.field("fails", is.fails);
    w.field("yield", is.yield);
    w.field("ci95", is.ci95);
    w.field("ess", is.ess);
    w.field("ess_fraction", is.ess_fraction);
    w.field("log_weight_max", is.log_weight_max);
    w.field("log_weight_min", is.log_weight_min);
    w.field("low_ess", is.low_ess);
    w.field("chips_per_s", is.stats.items_per_second);
    w.field("wall_s", is.stats.wall_seconds);
    w.field("chips_to_ci", chips_to_ci(var_is));
    w.end_object();
    w.key("stratified").begin_object();
    w.field("chips", strat.chips);
    w.field("pairs", strat.pairs);
    w.field("strata", static_cast<std::int64_t>(strat.strata));
    w.field("yield", strat.yield);
    w.field("ci95", strat.ci95);
    w.field("chips_per_s", strat.stats.items_per_second);
    w.field("wall_s", strat.stats.wall_seconds);
    w.field("chips_to_ci", chips_to_ci(var_strat));
    w.end_object();
    w.key("bridge").begin_object();
    w.field("yield", bridge.yield);
    w.field("c", bridge.c);
    w.field("sigma_inl", bridge.sigma_inl);
    w.field("chips_to_ci", 0.0);  // closed form: no chips at all
    w.end_object();
    w.field("is_chip_reduction", rare_reduction);
    w.field("strat_chip_reduction", strat_reduction);
    w.end_object();
  }

  // --- Dynamic-error architecture engine --------------------------------
  // A 10-bit array keeps the weighting search and the oversampled
  // waveform synthesis affordable (the 12-bit optimizer alone runs tens
  // of seconds); the mechanisms exercised are identical.
  {
    core::DacSpec arch_spec;
    arch_spec.nbits = 10;
    arch_spec.binary_bits = 3;

    const int dyn_mc_chips = smoke ? 8 : 32;
    std::printf("runtime_cache_dyn_spectrum: %d timing chips cold vs warm "
                "...\n",
                dyn_mc_chips);
    runtime::DynSpectrumJob dyn_job;
    dyn_job.spec = arch_spec;
    dyn_job.timing.sigma_t = 60e-12;
    dyn_job.timing.oversample = smoke ? 8 : 16;
    dyn_job.n_samples = 256;
    dyn_job.cycles = 21;
    dyn_job.chips = dyn_mc_chips;
    dyn_job.seed = seed;
    if (!bench_cache_job(w, "runtime_cache_dyn_spectrum", dyn_job,
                         dyn_mc_chips, threads)) {
      return 1;
    }

    runtime::ArchCompareJob cmp;
    cmp.spec = arch_spec;
    cmp.sigma_unit = 0.02;
    cmp.timing = dyn_job.timing;
    cmp.n_samples = 256;
    cmp.cycles = 21;
    cmp.chips = smoke ? 200 : 1000;
    cmp.dyn_chips = smoke ? 2 : 4;
    cmp.seed = seed;
    cmp.seg_lo = 2;
    cmp.seg_hi = smoke ? 4 : 6;
    // Small explicit cell budget in smoke mode: the weighting search is
    // quadratic in the budget and smoke must stay in CI time.
    cmp.opt_cells = smoke ? 20 : 0;
    std::printf("arch_compare_10bit: %d INL chips, %d timing chips per "
                "architecture ...\n",
                cmp.chips, cmp.dyn_chips);
    mathx::RunStats cmp_stats;
    const auto cmp_value = runtime::execute_job(cmp, threads, &cmp_stats);
    const auto& table = std::get<runtime::ArchCompareResult>(cmp_value);
    for (const auto& p : table.points) {
      std::printf("  %-9s param %3d: %4d cells, inl yield %.3f, sfdr "
                  "%.1f dB (ete %.1f), activity %.3g\n",
                  std::string(arch::weighting_name(
                                  static_cast<arch::WeightingKind>(p.scheme)))
                      .c_str(),
                  p.param, p.cells, p.inl_yield, p.sfdr_db, p.ete_sfdr_db,
                  p.activity);
    }

    w.begin_object();
    w.field("name", "arch_compare_10bit");
    w.key("config").begin_object();
    w.field("nbits", arch_spec.nbits);
    w.field("binary_bits", arch_spec.binary_bits);
    w.field("sigma_unit", cmp.sigma_unit);
    w.field("sigma_t", cmp.timing.sigma_t);
    w.field("chips", cmp.chips);
    w.field("dyn_chips", cmp.dyn_chips);
    w.field("seed", static_cast<std::int64_t>(cmp.seed));
    w.field("seg_lo", cmp.seg_lo);
    w.field("seg_hi", cmp.seg_hi);
    w.field("opt_cells", cmp.opt_cells);
    w.end_object();
    w.field("wall_s", cmp_stats.wall_seconds);
    w.key("architectures").begin_array();
    for (const auto& p : table.points) {
      w.begin_object();
      w.field("scheme", arch::weighting_name(
                            static_cast<arch::WeightingKind>(p.scheme)));
      w.field("param", static_cast<std::int64_t>(p.param));
      w.field("cells", static_cast<std::int64_t>(p.cells));
      w.field("inl_yield", p.inl_yield);
      w.field("inl_ci95", p.inl_ci95);
      w.field("sfdr_db", p.sfdr_db);
      w.field("ete_sfdr_db", p.ete_sfdr_db);
      w.field("activity", p.activity);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  // --- Sparse MNA engine on the full transistor-level array -------------
  // Always at the paper's full 12-bit node count, even in smoke: one dense
  // DC solve is ~50 ms, and the dense/sparse ratio is the acceptance
  // number for the sparse engine, so shrinking the array would measure
  // the wrong thing.
  double spice_speedup = 0.0;
  double warm_iter_reduction = 0.0;
  {
    const tech::MosTechParams& mos_tech = tech::generic_035um().nmos;
    core::DacSpec spice_spec;  // 12-bit, b = 4
    const core::CellSizer spice_sizer(mos_tech, spice_spec);
    const core::SizedCell spice_cell =
        spice_sizer.size_cascode(0.25, 0.2, 0.2);
    const dacgen::TransistorLevelDac tdac(spice_spec, spice_cell, mos_tech);
    auto bc = tdac.build((1 << spice_spec.nbits) / 2);
    const int n = bc.circuit->num_unknowns();
    std::printf("spice_mna_12bit: %d unknowns, dense vs sparse DC solve "
                "...\n",
                n);

    const auto now_s = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
    // Several reps each: the sparse engine pays its symbolic factorization
    // on the first solve and replays it afterwards, which is its MC
    // steady state.
    const int spice_reps = smoke ? 3 : 6;
    spice::SolveStats dstats, sstats;
    spice::SolverContext dctx, sctx;
    spice::NewtonOptions dopts;
    dopts.solver = spice::LinearSolverKind::kDense;
    dopts.context = &dctx;
    dopts.stats = &dstats;
    spice::NewtonOptions sopts;
    sopts.solver = spice::LinearSolverKind::kSparse;
    sopts.context = &sctx;
    sopts.stats = &sstats;
    const double d0 = now_s();
    for (int r = 0; r < spice_reps; ++r) (void)spice::solve_dc(*bc.circuit, dopts);
    const double dense_s = (now_s() - d0) / spice_reps;
    const double s0 = now_s();
    for (int r = 0; r < spice_reps; ++r) (void)spice::solve_dc(*bc.circuit, sopts);
    const double sparse_s = (now_s() - s0) / spice_reps;

    const auto xd = spice::solve_dc(*bc.circuit, dopts);
    const auto xs = spice::solve_dc(*bc.circuit, sopts);
    double max_dx = 0.0;
    for (std::size_t i = 0; i < xd.x.size(); ++i) {
      max_dx = std::max(max_dx, std::fabs(xd.x[i] - xs.x[i]));
    }
    if (max_dx > 1e-9) {
      std::fprintf(stderr,
                   "FATAL: dense/sparse solutions diverge by %.3e\n", max_dx);
      return 1;
    }
    spice_speedup = sparse_s > 0.0 ? dense_s / sparse_s : 0.0;
    std::printf("  dense %.2f ms, sparse %.2f ms per solve (max dx %.1e): "
                "%.1fx\n",
                dense_s * 1e3, sparse_s * 1e3, max_dx, spice_speedup);

    w.begin_object();
    w.field("name", "spice_mna_12bit");
    w.key("config").begin_object();
    w.field("nbits", spice_spec.nbits);
    w.field("binary_bits", spice_spec.binary_bits);
    w.field("unknowns", n);
    w.field("reps", spice_reps);
    w.end_object();
    w.key("dense").begin_object();
    w.field("wall_s", dense_s);
    w.field("newton_iters", static_cast<std::int64_t>(dstats.newton_iters));
    w.field("dense_solves", static_cast<std::int64_t>(dstats.dense_solves));
    w.end_object();
    w.key("sparse").begin_object();
    w.field("wall_s", sparse_s);
    w.field("newton_iters", static_cast<std::int64_t>(sstats.newton_iters));
    w.field("factorizations",
            static_cast<std::int64_t>(sstats.factorizations));
    w.field("refactorizations",
            static_cast<std::int64_t>(sstats.refactorizations));
    w.end_object();
    w.field("max_dx", max_dx);
    w.field("spice_speedup", spice_speedup);
    w.end_object();

    // SPICE-in-the-loop mismatch MC: cold vs corner-to-corner warm start.
    core::DacSpec mc_spec;
    mc_spec.nbits = smoke ? 5 : 6;
    mc_spec.binary_bits = 2;
    const core::CellSizer mc_sizer(mos_tech, mc_spec);
    const core::SizedCell mc_cell = mc_sizer.size_cascode(0.25, 0.2, 0.2);
    dacgen::SpiceMcOptions mo;
    mo.chips = smoke ? 4 : 8;
    mo.seed = seed;
    std::printf("spice_mc_warmstart: %d-bit, %d corners, warm start off vs "
                "on ...\n",
                mc_spec.nbits, static_cast<int>(mo.chips));
    mo.warm_start = false;
    const double mc0 = now_s();
    const auto mc_cold = dacgen::spice_mismatch_mc(mc_spec, mc_cell,
                                                   mos_tech, mo);
    const double mc_cold_s = now_s() - mc0;
    mo.warm_start = true;
    const double mw0 = now_s();
    const auto mc_warm = dacgen::spice_mismatch_mc(mc_spec, mc_cell,
                                                   mos_tech, mo);
    const double mc_warm_s = now_s() - mw0;
    if (mc_warm.yield != mc_cold.yield || mc_warm.pass != mc_cold.pass) {
      std::fprintf(stderr,
                   "FATAL: warm starting changed the MC verdict "
                   "(yield %.4f vs %.4f)\n",
                   mc_warm.yield, mc_cold.yield);
      return 1;
    }
    warm_iter_reduction =
        mc_warm.newton_iters > 0
            ? static_cast<double>(mc_cold.newton_iters) /
                  static_cast<double>(mc_warm.newton_iters)
            : 0.0;
    std::printf("  cold %lld Newton iters (%.1f ms), warm %lld (%.1f ms): "
                "%.2fx fewer, hit rate %.2f\n",
                static_cast<long long>(mc_cold.newton_iters), mc_cold_s * 1e3,
                static_cast<long long>(mc_warm.newton_iters), mc_warm_s * 1e3,
                warm_iter_reduction, mc_warm.warm_start_hit_rate);

    w.begin_object();
    w.field("name", "spice_mc_warmstart");
    w.key("config").begin_object();
    w.field("nbits", mc_spec.nbits);
    w.field("binary_bits", mc_spec.binary_bits);
    w.field("chips", static_cast<std::int64_t>(mo.chips));
    w.field("seed", static_cast<std::int64_t>(mo.seed));
    w.field("sigma_scale", mo.sigma_scale);
    w.end_object();
    const auto emit_mc = [&w](const char* name,
                              const dacgen::SpiceMcResult& r, double wall) {
      w.key(name).begin_object();
      w.field("wall_s", wall);
      w.field("yield", r.yield);
      w.field("newton_iters", r.newton_iters);
      w.field("factorizations", r.factorizations);
      w.field("refactorizations", r.refactorizations);
      w.field("device_evals", r.device_evals);
      w.field("warm_start_hits", r.warm_start_hits);
      w.field("warm_start_hit_rate", r.warm_start_hit_rate);
      w.end_object();
    };
    emit_mc("cold", mc_cold, mc_cold_s);
    emit_mc("warm", mc_warm, mc_warm_s);
    w.field("warm_iter_reduction", warm_iter_reduction);
    w.end_object();
  }

  w.end_array();
  w.key("metrics").raw(obs::Registry::global().snapshot().to_json());
  w.end_object();

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (require_speedup > 0.0 && speedup < require_speedup) {
    std::fprintf(stderr,
                 "FAIL: workspace speedup %.2fx below required %.2fx\n",
                 speedup, require_speedup);
    return 1;
  }
  if (require_simd_speedup > 0.0 && simd_speedup < require_simd_speedup) {
    std::fprintf(stderr, "FAIL: simd speedup %.2fx below required %.2fx\n",
                 simd_speedup, require_simd_speedup);
    return 1;
  }
  if (require_rare_reduction > 0.0 && rare_reduction < require_rare_reduction) {
    std::fprintf(stderr,
                 "FAIL: IS chip reduction %.0fx below required %.0fx\n",
                 rare_reduction, require_rare_reduction);
    return 1;
  }
  if (require_spice_speedup > 0.0) {
    if (spice_speedup < require_spice_speedup) {
      std::fprintf(stderr,
                   "FAIL: sparse MNA speedup %.2fx below required %.2fx\n",
                   spice_speedup, require_spice_speedup);
      return 1;
    }
    if (warm_iter_reduction <= 1.0) {
      std::fprintf(stderr,
                   "FAIL: warm starting did not reduce Newton iterations "
                   "(%.2fx)\n",
                   warm_iter_reduction);
      return 1;
    }
  }
  return 0;
}
