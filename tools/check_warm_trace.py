#!/usr/bin/env python3
"""Validate a warm-cache csdac runtime JSONL trace.

Used by the CI runtime-smoke job: after csdac_serve has answered the same
request twice against the same cache directory, the second run's trace must
show every job finishing as a cache hit and the run performing ZERO
Monte-Carlo chip evaluations — i.e. the cache really answered everything.

Usage: check_warm_trace.py TRACE.jsonl
Exits 0 when the trace proves a fully warm run, 1 when it does not,
2 on usage/IO errors.
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"check_warm_trace: FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError as exc:
        print(f"check_warm_trace: cannot read {path}: {exc}")
        sys.exit(2)
    if not lines:
        fail("trace is empty")

    finishes = []
    run_finish = None
    for i, line in enumerate(lines, 1):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"line {i} is not valid JSON: {exc}")
        if not isinstance(ev, dict) or "ev" not in ev:
            fail(f"line {i} has no 'ev' field")
        if ev["ev"] == "job_finish":
            finishes.append((i, ev))
        elif ev["ev"] == "run_finish":
            run_finish = (i, ev)

    if not finishes:
        fail("no job_finish events in trace")
    for i, ev in finishes:
        cache = ev.get("cache")
        if cache != "hit":
            fail(
                f"line {i}: job {ev.get('job')} ({ev.get('kind')}) finished "
                f"with cache={cache!r}, expected 'hit'"
            )
    if run_finish is None:
        fail("no run_finish event in trace")
    i, ev = run_finish
    chip_evals = ev.get("chip_evals")
    if chip_evals != 0:
        fail(f"line {i}: run_finish chip_evals={chip_evals}, expected 0")
    hits = ev.get("cache_hits", 0)
    if hits < len(finishes):
        fail(
            f"line {i}: run_finish cache_hits={hits} < "
            f"{len(finishes)} finished jobs"
        )

    print(
        f"check_warm_trace: OK — {len(finishes)} jobs, all cache hits, "
        f"0 chip evaluations"
    )


if __name__ == "__main__":
    main()
