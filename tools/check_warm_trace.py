#!/usr/bin/env python3
"""Validate a warm-cache csdac runtime JSONL trace.

Used by the CI runtime-smoke job: after csdac_serve has answered the same
request twice against the same cache directory, the second run's trace must
show every job finishing as a cache hit and the run performing ZERO
Monte-Carlo chip evaluations — i.e. the cache really answered everything.

Also validates the csdac-trace/2 structure: the run_start event must carry
the schema tag, and every `ev:"span"` line must have the span fields
(name, id, parent, depth, tid, start_us, dur_us) with sane values.

Usage: check_warm_trace.py TRACE.jsonl
Exits 0 when the trace proves a fully warm run, 1 when it does not,
2 on usage/IO errors.
"""
import json
import sys

TRACE_SCHEMA = "csdac-trace/2"
SPAN_FIELDS = {
    "name": str,
    "id": int,
    "parent": int,
    "depth": int,
    "tid": int,
    "start_us": (int, float),
    "dur_us": (int, float),
}


def fail(msg: str) -> None:
    print(f"check_warm_trace: FAIL: {msg}")
    sys.exit(1)


def check_span(i: int, ev: dict) -> None:
    for key, types in SPAN_FIELDS.items():
        if key not in ev:
            fail(f"line {i}: span missing field '{key}'")
        if not isinstance(ev[key], types):
            fail(f"line {i}: span field '{key}' has type "
                 f"{type(ev[key]).__name__}")
    if ev["id"] <= 0:
        fail(f"line {i}: span id must be positive")
    if ev["parent"] < 0 or ev["parent"] == ev["id"]:
        fail(f"line {i}: bad span parent {ev['parent']}")
    if ev["dur_us"] < 0:
        fail(f"line {i}: negative span duration")


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError as exc:
        print(f"check_warm_trace: cannot read {path}: {exc}")
        sys.exit(2)
    if not lines:
        fail("trace is empty")

    finishes = []
    run_finish = None
    run_start = None
    spans = 0
    for i, line in enumerate(lines, 1):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"line {i} is not valid JSON: {exc}")
        if not isinstance(ev, dict) or "ev" not in ev:
            fail(f"line {i} has no 'ev' field")
        if ev["ev"] == "job_finish":
            finishes.append((i, ev))
        elif ev["ev"] == "run_finish":
            run_finish = (i, ev)
        elif ev["ev"] == "run_start":
            run_start = (i, ev)
        elif ev["ev"] == "span":
            spans += 1
            check_span(i, ev)

    if run_start is None:
        fail("no run_start event in trace")
    i, ev = run_start
    if ev.get("schema") != TRACE_SCHEMA:
        fail(f"line {i}: run_start schema={ev.get('schema')!r}, "
             f"expected {TRACE_SCHEMA!r}")
    if not finishes:
        fail("no job_finish events in trace")
    for i, ev in finishes:
        cache = ev.get("cache")
        if cache != "hit":
            fail(
                f"line {i}: job {ev.get('job')} ({ev.get('kind')}) finished "
                f"with cache={cache!r}, expected 'hit'"
            )
    if run_finish is None:
        fail("no run_finish event in trace")
    i, ev = run_finish
    chip_evals = ev.get("chip_evals")
    if chip_evals != 0:
        fail(f"line {i}: run_finish chip_evals={chip_evals}, expected 0")
    hits = ev.get("cache_hits", 0)
    if hits < len(finishes):
        fail(
            f"line {i}: run_finish cache_hits={hits} < "
            f"{len(finishes)} finished jobs"
        )

    if spans == 0:
        fail("no span events in trace (csdac-trace/2 runs always emit "
             "graph.run/graph.job spans)")

    print(
        f"check_warm_trace: OK — {len(finishes)} jobs, all cache hits, "
        f"0 chip evaluations, {spans} spans"
    )


if __name__ == "__main__":
    main()
