#include "tech/mismatch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/stats.hpp"
#include "tech/units.hpp"

namespace csdac::tech {
namespace {

using namespace csdac::units;
using csdac::mathx::RunningStats;
using csdac::mathx::Xoshiro256;

TEST(Mismatch, PelgromScaling) {
  const auto t = generic_035um().nmos;
  // Quadrupling the area halves sigma.
  const double s1 = sigma_vt(t, 10 * um, 1 * um);
  const double s2 = sigma_vt(t, 20 * um, 2 * um);
  EXPECT_NEAR(s1 / s2, 2.0, 1e-12);
}

TEST(Mismatch, SigmaVtKnownValue) {
  const auto t = generic_035um().nmos;
  // A_VT = 9.5 mV*um; a 1 um^2 device has sigma = 9.5 mV.
  EXPECT_NEAR(sigma_vt(t, 1 * um, 1 * um), 9.5 * mV, 1e-9);
}

TEST(Mismatch, CurrentMismatchCombinesBothTerms) {
  const auto t = generic_035um().nmos;
  const double w = 10 * um, l = 2 * um;
  const double vod = 0.4;
  const double sb = sigma_beta_rel(t, w, l);
  const double svt = sigma_vt(t, w, l);
  const double expected =
      std::sqrt(sb * sb + 4.0 * svt * svt / (vod * vod));
  EXPECT_NEAR(sigma_id_rel(t, w, l, vod), expected, 1e-15);
}

TEST(Mismatch, CurrentMismatchDominatedByVtAtLowOverdrive) {
  const auto t = generic_035um().nmos;
  const double w = 10 * um, l = 2 * um;
  // At very small overdrive the 2*sigma_VT/VOD term dominates.
  const double s_low = sigma_id_rel(t, w, l, 0.1);
  const double approx = 2.0 * sigma_vt(t, w, l) / 0.1;
  EXPECT_NEAR(s_low, approx, 0.02 * s_low);
}

TEST(Mismatch, MinGateAreaInvertsSigma) {
  const auto t = generic_035um().nmos;
  const double vod = 0.35;
  const double target = 0.002;  // 0.2 %
  const double wl = min_gate_area(t, vod, target);
  // A device with that area (any aspect ratio) hits the target exactly.
  const double w = std::sqrt(wl * 4.0);
  const double l = std::sqrt(wl / 4.0);
  EXPECT_NEAR(sigma_id_rel(t, w, l, vod), target, 1e-12);
}

TEST(Mismatch, MinGateAreaGrowsWhenSpecTightens) {
  const auto t = generic_035um().nmos;
  EXPECT_GT(min_gate_area(t, 0.35, 0.001), min_gate_area(t, 0.35, 0.002));
  // Lower overdrive needs more area (VT term amplified).
  EXPECT_GT(min_gate_area(t, 0.15, 0.002), min_gate_area(t, 0.5, 0.002));
}

TEST(Mismatch, DrawsMatchAnalyticSigma) {
  const auto t = generic_035um().nmos;
  const double w = 5 * um, l = 1 * um;
  Xoshiro256 rng(1234);
  RunningStats vt_stats, beta_stats, id_stats;
  const double vod = 0.3;
  for (int i = 0; i < 50000; ++i) {
    const auto d = draw_mismatch(t, w, l, rng);
    vt_stats.add(d.d_vt);
    beta_stats.add(d.d_beta_rel);
    id_stats.add(current_error_rel(d, vod));
  }
  EXPECT_NEAR(vt_stats.mean(), 0.0, 5e-5);
  EXPECT_NEAR(vt_stats.stddev(), sigma_vt(t, w, l), 0.02 * sigma_vt(t, w, l));
  EXPECT_NEAR(beta_stats.stddev(), sigma_beta_rel(t, w, l),
              0.02 * sigma_beta_rel(t, w, l));
  EXPECT_NEAR(id_stats.stddev(), sigma_id_rel(t, w, l, vod),
              0.02 * sigma_id_rel(t, w, l, vod));
}

TEST(Mismatch, ThrowsOnBadGeometry) {
  const auto t = generic_035um().nmos;
  EXPECT_THROW(sigma_vt(t, 0.0, 1 * um), std::invalid_argument);
  EXPECT_THROW(sigma_id_rel(t, 1 * um, 1 * um, 0.0), std::invalid_argument);
  EXPECT_THROW(min_gate_area(t, 0.3, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::tech
