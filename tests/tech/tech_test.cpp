#include "tech/tech.hpp"

#include <gtest/gtest.h>

#include "tech/units.hpp"

namespace csdac::tech {
namespace {

using namespace csdac::units;

TEST(Tech, Generic035HasSaneValues) {
  const TechParams t = generic_035um();
  EXPECT_DOUBLE_EQ(t.vdd, 3.3);
  EXPECT_GT(t.nmos.kp, t.pmos.kp);  // electron mobility > hole mobility
  EXPECT_GT(t.nmos.kp, 50e-6);
  EXPECT_LT(t.nmos.kp, 500e-6);
  EXPECT_NEAR(t.nmos.vt0, 0.5, 0.2);
  EXPECT_EQ(t.nmos.type, MosType::kNmos);
  EXPECT_EQ(t.pmos.type, MosType::kPmos);
  EXPECT_DOUBLE_EQ(t.nmos.l_min, 0.35 * um);
}

TEST(Tech, LambdaScalesInverselyWithLength) {
  const TechParams t = generic_035um();
  const double lam1 = t.nmos.lambda(0.35 * um);
  const double lam2 = t.nmos.lambda(0.70 * um);
  EXPECT_NEAR(lam1 / lam2, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.nmos.lambda(0.0), 0.0);
}

TEST(Tech, CgsSatScalesWithArea) {
  const TechParams t = generic_035um();
  const double c1 = cgs_sat(t.nmos, 10 * um, 1 * um);
  const double c2 = cgs_sat(t.nmos, 20 * um, 1 * um);
  EXPECT_GT(c2, c1);
  // Dominated by the channel term: ~ 2/3 * W * L * Cox.
  EXPECT_NEAR(c1, (2.0 / 3.0) * 10 * um * 1 * um * t.nmos.cox + 10 * um * t.nmos.cgso,
              1e-18);
}

TEST(Tech, CgdIsOverlapOnly) {
  const TechParams t = generic_035um();
  EXPECT_DOUBLE_EQ(cgd_sat(t.nmos, 10 * um), 10 * um * t.nmos.cgso);
}

TEST(Tech, JunctionCapPositiveAndMonotonic) {
  const TechParams t = generic_035um();
  const double c1 = cj_diffusion(t.nmos, 1 * um);
  const double c2 = cj_diffusion(t.nmos, 2 * um);
  EXPECT_GT(c1, 0.0);
  EXPECT_GT(c2, c1);
}

TEST(Tech, TypicalDeviceCapsInFemtofaradRange) {
  // Sanity: a 10/0.35 device should have caps in the fF range, not pF or aF.
  const TechParams t = generic_035um();
  const double cgs = cgs_sat(t.nmos, 10 * um, 0.35 * um);
  EXPECT_GT(cgs, 1 * fF);
  EXPECT_LT(cgs, 100 * fF);
}

}  // namespace
}  // namespace csdac::tech
