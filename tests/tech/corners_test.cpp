#include <gtest/gtest.h>

#include <memory>

#include "core/sizer.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::tech {
namespace {

using namespace csdac::units;

TEST(Corners, SlowFastShiftParameters) {
  const auto t = generic_035um().nmos;
  const auto slow = at_corner(t, Corner::kSlow);
  const auto fast = at_corner(t, Corner::kFast);
  EXPECT_LT(slow.kp, t.kp);
  EXPECT_GT(slow.vt0, t.vt0);
  EXPECT_GT(fast.kp, t.kp);
  EXPECT_LT(fast.vt0, t.vt0);
  const auto typical = at_corner(t, Corner::kTypical);
  EXPECT_DOUBLE_EQ(typical.kp, t.kp);
}

TEST(Corners, FullTechCornerAppliesToBothTypes) {
  const auto t = generic_035um();
  const auto slow = at_corner(t, Corner::kSlow);
  EXPECT_LT(slow.nmos.kp, t.nmos.kp);
  EXPECT_LT(slow.pmos.kp, t.pmos.kp);
  EXPECT_EQ(slow.name, t.name);  // same process, different corner
}

TEST(Corners, MethodologyPortsAcrossCorners) {
  // Section 5: the methodology is re-run at each corner (bias generators
  // track the corner); the statistical design must stay feasible and the
  // sized cell must deliver its current in SPICE at every corner.
  const core::DacSpec spec;
  for (const Corner c :
       {Corner::kTypical, Corner::kSlow, Corner::kFast}) {
    const auto t = at_corner(generic_035um().nmos, c);
    const core::CellSizer sizer(t, spec);
    const core::SizedCell cell =
        sizer.size_basic(0.35, 0.25, core::MarginPolicy::kStatistical);
    EXPECT_TRUE(cell.feasible()) << "corner " << static_cast<int>(c);

    spice::Circuit ckt;
    const int out = ckt.node("out");
    const int mid = ckt.node("mid");
    ckt.add(std::make_unique<spice::VoltageSource>(
        "vterm", ckt.node("vterm"), 0, spec.v_out_min + spec.v_swing));
    ckt.add(std::make_unique<spice::Resistor>("rl", ckt.find_node("vterm"),
                                              out, spec.r_load));
    ckt.add(std::make_unique<spice::VoltageSource>("vgcs", ckt.node("gcs"),
                                                   0, cell.cell.vg_cs));
    ckt.add(std::make_unique<spice::VoltageSource>("vgsw", ckt.node("gsw"),
                                                   0, cell.cell.vg_sw));
    auto* mcs = ckt.add(std::make_unique<spice::Mosfet>(
        "mcs", t, mid, ckt.find_node("gcs"), 0, 0,
        spice::Mosfet::Geometry{cell.cell.cs.w, cell.cell.cs.l,
                                static_cast<double>(spec.total_units())}));
    auto* msw = ckt.add(std::make_unique<spice::Mosfet>(
        "msw", t, out, ckt.find_node("gsw"), mid, 0,
        spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l,
                                static_cast<double>(spec.total_units())}));
    spice::solve_dc(ckt);
    EXPECT_NEAR(mcs->op().id, spec.i_fs(), 0.06 * spec.i_fs())
        << "corner " << static_cast<int>(c);
    EXPECT_EQ(mcs->op().region, spice::MosRegion::kSaturation);
    EXPECT_EQ(msw->op().region, spice::MosRegion::kSaturation);
  }
}

TEST(Tech025, SaneAndDistinctFrom035) {
  const auto t25 = generic_025um();
  const auto t35 = generic_035um();
  EXPECT_LT(t25.vdd, t35.vdd);
  EXPECT_GT(t25.nmos.kp, t35.nmos.kp);    // thinner oxide
  EXPECT_LT(t25.nmos.a_vt, t35.nmos.a_vt);  // matching improves
  EXPECT_DOUBLE_EQ(t25.nmos.l_min, 0.25 * um);
}

TEST(Tech025, MethodologyPortsAcrossNodes) {
  // The 0.25 um node at 2.5 V has less headroom (V_o scaled accordingly)
  // but better matching: the CS area for the same accuracy shrinks.
  core::DacSpec spec25;
  spec25.vdd = 2.5;
  spec25.v_out_min = 0.8;
  spec25.v_swing = 0.8;
  spec25.r_load = 40.0;
  const core::CellSizer s25(generic_025um().nmos, spec25);
  const core::CellSizer s35(generic_035um().nmos, core::DacSpec{});
  const auto c25 = s25.size_basic(0.3, 0.2, core::MarginPolicy::kStatistical);
  const auto c35 = s35.size_basic(0.3, 0.2, core::MarginPolicy::kStatistical);
  EXPECT_TRUE(c25.feasible());
  EXPECT_LT(c25.cell.cs.area(), c35.cell.cs.area());
}

}  // namespace
}  // namespace csdac::tech
