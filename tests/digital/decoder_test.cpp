#include "digital/decoder.hpp"

#include <gtest/gtest.h>

#include "digital/gates.hpp"

namespace csdac::digital {
namespace {

TEST(GateNetlistTest, BasicGateTruthTables) {
  GateNetlist net;
  const int a = net.add_input("a");
  const int b = net.add_input("b");
  const int g_and = net.add_gate(GateKind::kAnd2, a, b);
  const int g_or = net.add_gate(GateKind::kOr2, a, b);
  const int g_nand = net.add_gate(GateKind::kNand2, a, b);
  const int g_nor = net.add_gate(GateKind::kNor2, a, b);
  const int g_xor = net.add_gate(GateKind::kXor2, a, b);
  const int g_not = net.add_gate(GateKind::kNot, a);
  const int g_buf = net.add_gate(GateKind::kBuf, b);
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      const auto ev = net.evaluate({va != 0, vb != 0});
      EXPECT_EQ(ev.value[static_cast<std::size_t>(g_and)], va && vb);
      EXPECT_EQ(ev.value[static_cast<std::size_t>(g_or)], va || vb);
      EXPECT_EQ(ev.value[static_cast<std::size_t>(g_nand)], !(va && vb));
      EXPECT_EQ(ev.value[static_cast<std::size_t>(g_nor)], !(va || vb));
      EXPECT_EQ(ev.value[static_cast<std::size_t>(g_xor)], va != vb);
      EXPECT_EQ(ev.value[static_cast<std::size_t>(g_not)], !va);
      EXPECT_EQ(ev.value[static_cast<std::size_t>(g_buf)], vb != 0);
    }
  }
}

TEST(GateNetlistTest, ArrivalAccumulatesAlongPath) {
  GateNetlist net;
  const int a = net.add_input("a");
  int node = a;
  for (int i = 0; i < 5; ++i) {
    node = net.add_gate(GateKind::kNot, node, -1, 2.0);
  }
  EXPECT_DOUBLE_EQ(net.arrival_bound(node), 10.0);
  const auto ev = net.evaluate({true});
  EXPECT_DOUBLE_EQ(ev.arrival[static_cast<std::size_t>(node)], 10.0);
  EXPECT_EQ(ev.value[static_cast<std::size_t>(node)], false);  // odd inverts
}

TEST(GateNetlistTest, TopologicalOrderEnforced) {
  GateNetlist net;
  const int a = net.add_input("a");
  EXPECT_THROW(net.add_gate(GateKind::kNot, 5), std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateKind::kAnd2, a, 99), std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateKind::kNot, a, -1, -1.0),
               std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateKind::kInput), std::invalid_argument);
}

TEST(Decoder, ExhaustiveCorrectness8Bit) {
  // The paper's m = 8 decoder (4 row + 4 col bits): every input code must
  // produce exactly the thermometer pattern out[k] = (k < code).
  const ThermometerDecoder dec(4, 4);
  ASSERT_EQ(dec.outputs(), 255);
  for (int code = 0; code < 256; ++code) {
    const auto out = dec.decode(code);
    for (int k = 0; k < 255; ++k) {
      ASSERT_EQ(out[static_cast<std::size_t>(k)], k < code)
          << "code " << code << " output " << k;
    }
  }
}

TEST(Decoder, ExhaustiveCorrectnessAsymmetricSplit) {
  const ThermometerDecoder dec(2, 3);  // m = 5
  ASSERT_EQ(dec.outputs(), 31);
  for (int code = 0; code < 32; ++code) {
    const auto out = dec.decode(code);
    for (int k = 0; k < 31; ++k) {
      ASSERT_EQ(out[static_cast<std::size_t>(k)], k < code)
          << "code " << code << " output " << k;
    }
  }
}

TEST(Decoder, OutputsAreThermometerMonotone) {
  const ThermometerDecoder dec(3, 3);
  for (int code = 0; code < 64; ++code) {
    const auto out = dec.decode(code);
    for (std::size_t k = 1; k < out.size(); ++k) {
      EXPECT_LE(out[k], out[k - 1]) << "bubble at code " << code;
    }
  }
}

TEST(Decoder, GateCountScalesLikeAreaModel) {
  // The architecture explorer models decoder gates ~ m * 2^m; the actual
  // row/column construction should grow no faster.
  const int g6 = ThermometerDecoder(3, 3).gate_count();
  const int g8 = ThermometerDecoder(4, 4).gate_count();
  const double model_ratio = (8.0 * 256.0) / (6.0 * 64.0);
  EXPECT_GT(g8, 2 * g6);
  EXPECT_LT(static_cast<double>(g8) / g6, 1.5 * model_ratio);
}

TEST(Decoder, WorstArrivalGrowsSlowly) {
  // Depth is logarithmic-ish in the field widths plus the suffix-OR chain.
  const double d6 = ThermometerDecoder(3, 3).worst_arrival();
  const double d8 = ThermometerDecoder(4, 4).worst_arrival();
  EXPECT_GT(d8, d6);
  EXPECT_LT(d8, 3.0 * d6);
  EXPECT_GT(d6, 3.0);  // several gate delays deep
}

TEST(Decoder, DummyDecoderMatchesDelay) {
  const ThermometerDecoder dec(4, 4, /*gate_delay=*/0.1);
  const DummyDecoder dummy = DummyDecoder::matched(dec, 4, 0.1);
  // The binary path without the dummy would arrive `worst_arrival` early;
  // with it the skew shrinks below one gate delay.
  EXPECT_NEAR(dummy.delay(), dec.worst_arrival(), 0.1);
  EXPECT_GT(dec.worst_arrival(), 5 * 0.1);  // the skew being equalized
}

TEST(Decoder, DummyDecoderIsIdentity) {
  const DummyDecoder dummy(4, 7);
  for (int v = 0; v < 16; ++v) {
    const auto out = dummy.pass(v);
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(out[static_cast<std::size_t>(b)], ((v >> b) & 1) != 0);
    }
  }
}

TEST(Decoder, RejectsBadConfiguration) {
  EXPECT_THROW(ThermometerDecoder(0, 4), std::invalid_argument);
  EXPECT_THROW(ThermometerDecoder(8, 8), std::invalid_argument);
  EXPECT_THROW(ThermometerDecoder(4, 4, 0.0), std::invalid_argument);
  const ThermometerDecoder dec(2, 2);
  EXPECT_THROW(dec.decode(-1), std::out_of_range);
  EXPECT_THROW(dec.decode(16), std::out_of_range);
  EXPECT_THROW(dec.output_arrival(0, 99), std::out_of_range);
  EXPECT_THROW(DummyDecoder(0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::digital
