// Regression test for the Section 2 glitch mechanism (bench E4): when the
// complementary switch gates cross LOW (break-before-make), both switches
// open simultaneously and the cell current pulls the internal node down;
// a HIGH crossing point (make-before-break) holds it. The droop ordering is
// the invariant; the bench reports the quantitative sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/sizer.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac {
namespace {

using namespace csdac::units;

double internal_droop(const tech::MosTechParams& t, const core::DacSpec& spec,
                      const core::SizedCell& cell, double overlap) {
  const double weight = spec.unary_weight();
  const double tr = 100 * ps;
  const double t0 = 1.0 * units::ns;
  const double t_fall = t0 + overlap;
  const double von = cell.cell.vg_sw;

  spice::Circuit ckt;
  const int outp = ckt.node("outp");
  const int outn = ckt.node("outn");
  const int top = ckt.node("top");
  const int mid = ckt.node("mid");
  const int vterm = ckt.node("vterm");
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vterm", vterm, 0, spec.v_out_min + spec.v_swing));
  ckt.add(std::make_unique<spice::Resistor>("rlp", vterm, outp, spec.r_load));
  ckt.add(std::make_unique<spice::Resistor>("rln", vterm, outn, spec.r_load));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcs", ckt.node("gcs"), 0,
                                                 cell.cell.vg_cs));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcas", ckt.node("gcas"),
                                                 0, cell.cell.vg_cas));
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vgsw", ckt.node("gsw"), 0,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, von}, {t_fall, von}, {t_fall + tr, 0.0}})));
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vgswb", ckt.node("gswb"), 0,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {t0, 0.0}, {t0 + tr, von}})));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mcs", t, mid, ckt.find_node("gcs"), 0, 0,
      spice::Mosfet::Geometry{cell.cell.cs.w, cell.cell.cs.l, weight}, true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mcas", t, top, ckt.find_node("gcas"), mid, 0,
      spice::Mosfet::Geometry{cell.cell.cas.w, cell.cell.cas.l, weight},
      true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mswp", t, outp, ckt.find_node("gsw"), top, 0,
      spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l, weight}, true));
  ckt.add(std::make_unique<spice::Mosfet>(
      "mswn", t, outn, ckt.find_node("gswb"), top, 0,
      spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l, weight}, true));
  ckt.add(std::make_unique<spice::Capacitor>("cint", top, 0, spec.c_int));

  const auto res = spice::transient(ckt, 4 * ps, 3 * units::ns);
  const auto v_top = res.node_waveform(top);
  double v_min = v_top.front();
  for (double v : v_top) v_min = std::min(v_min, v);
  return v_top.front() - v_min;
}

TEST(GlitchMechanism, LowCrossingStarvesInternalNode) {
  const auto t = tech::generic_035um().nmos;
  const core::DacSpec spec;
  const core::CellSizer sizer(t, spec);
  const core::SizedCell cell =
      sizer.size_cascode(0.25, 0.2, 0.2, core::MarginPolicy::kStatistical);

  const double droop_low = internal_droop(t, spec, cell, -80 * ps);
  const double droop_high = internal_droop(t, spec, cell, +50 * ps);
  // Break-before-make (low crossing) must disturb the node far more.
  EXPECT_GT(droop_low, 2.0 * droop_high);
  EXPECT_GT(droop_low, 0.05);   // clearly visible starvation
  EXPECT_LT(droop_high, 0.06);  // make-before-break holds the node
}

}  // namespace
}  // namespace csdac
