#include "cells/cells.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "spice/measures.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::cells {
namespace {

using namespace csdac::units;
using spice::Circuit;
using spice::PulseWave;
using spice::Resistor;
using spice::VoltageSource;
using tech::generic_035um;

const tech::TechParams kTech = generic_035um();

TEST(Inverter, VtcIsFullSwingAndMonotone) {
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int in = ckt.node("in");
  const int out = ckt.node("out");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  auto* vin = ckt.add(std::make_unique<VoltageSource>("vin", in, 0, 0.0));
  CellSizes s;
  s.with_caps = false;
  add_inverter(ckt, "inv", kTech, in, out, vdd, 0, s);
  const auto sweep = spice::dc_sweep(ckt, *vin, 0.0, 3.3, 34);
  EXPECT_NEAR(sweep.front().v(out), 3.3, 1e-3);
  EXPECT_NEAR(sweep.back().v(out), 0.0, 1e-3);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].v(out), sweep[i - 1].v(out) + 1e-6);
  }
  // Switching threshold somewhere in the middle third of the supply.
  double vth = 0.0;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].v(out) < 1.65 && sweep[i - 1].v(out) >= 1.65) {
      vth = 3.3 * static_cast<double>(i) / 33.0;
      break;
    }
  }
  EXPECT_GT(vth, 1.0);
  EXPECT_LT(vth, 2.3);
}

TEST(Inverter, TransientPropagationDelay) {
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int in = ckt.node("in");
  const int out = ckt.node("out");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>(
      "vin", in, 0,
      std::make_unique<PulseWave>(0.0, 3.3, 1 * ns, 50 * ps, 50 * ps,
                                  10 * ns)));
  add_inverter(ckt, "inv", kTech, in, out, vdd, 0);
  // A load inverter provides realistic fan-out.
  const int out2 = ckt.node("out2");
  add_inverter(ckt, "load", kTech, out, out2, vdd, 0);
  const auto res = spice::transient(ckt, 5 * ps, 4 * ns);
  const auto v_in = res.node_waveform(in);
  const auto v_out = res.node_waveform(out);
  const double t_in = spice::crossing_time(res.time, v_in, 1.65);
  const double t_out = spice::crossing_time(res.time, v_out, 1.65);
  ASSERT_GT(t_in, 0.0);
  ASSERT_GT(t_out, t_in);
  EXPECT_LT(t_out - t_in, 0.4 * ns);  // sub-ns gate in 0.35 um
}

TEST(TransmissionGate, PassesBothLevels) {
  for (double v_src : {0.3, 3.0}) {
    Circuit ckt;
    const int vdd = ckt.node("vdd");
    const int a = ckt.node("a");
    const int b = ckt.node("b");
    ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
    ckt.add(std::make_unique<VoltageSource>("vs", a, 0, v_src));
    ckt.add(std::make_unique<VoltageSource>("ven", ckt.node("en"), 0, 3.3));
    ckt.add(std::make_unique<VoltageSource>("venb", ckt.node("enb"), 0, 0.0));
    CellSizes s;
    s.with_caps = false;
    add_transmission_gate(ckt, "tg", kTech, a, b, ckt.find_node("en"),
                          ckt.find_node("enb"), s);
    ckt.add(std::make_unique<Resistor>("rl", b, 0, 1e6));
    const auto sol = spice::solve_dc(ckt);
    EXPECT_NEAR(sol.v(b), v_src, 0.05) << "level " << v_src;
  }
}

TEST(TransmissionGate, BlocksWhenDisabled) {
  Circuit ckt;
  const int a = ckt.node("a");
  const int b = ckt.node("b");
  ckt.add(std::make_unique<VoltageSource>("vs", a, 0, 2.0));
  ckt.add(std::make_unique<VoltageSource>("ven", ckt.node("en"), 0, 0.0));
  ckt.add(std::make_unique<VoltageSource>("venb", ckt.node("enb"), 0, 3.3));
  CellSizes s;
  s.with_caps = false;
  add_transmission_gate(ckt, "tg", kTech, a, b, ckt.find_node("en"),
                        ckt.find_node("enb"), s);
  ckt.add(std::make_unique<Resistor>("rl", b, 0, 1e6));
  const auto sol = spice::solve_dc(ckt);
  EXPECT_LT(sol.v(b), 0.1);
}

// Shared latch testbench: clk high 1..3 ns, d toggles while transparent and
// again while opaque.
struct LatchBench {
  Circuit ckt;
  LatchNodes latch;
  int d = 0, clk = 0;

  LatchBench() {
    const int vdd = ckt.node("vdd");
    d = ckt.node("d");
    clk = ckt.node("clk");
    const int clkb = ckt.node("clkb");
    ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
    // d: low, goes high at 1.5 ns (while transparent), low again at 5 ns
    // (while the latch is opaque).
    ckt.add(std::make_unique<VoltageSource>(
        "vd", d, 0,
        std::make_unique<spice::PwlWave>(
            std::vector<std::pair<double, double>>{{0.0, 0.0},
                                                   {1.5e-9, 0.0},
                                                   {1.6e-9, 3.3},
                                                   {5.0e-9, 3.3},
                                                   {5.1e-9, 0.0}})));
    // clk: high 1..3 ns.
    ckt.add(std::make_unique<VoltageSource>(
        "vclk", clk, 0,
        std::make_unique<PulseWave>(0.0, 3.3, 1 * ns, 50 * ps, 50 * ps,
                                    2 * ns)));
    ckt.add(std::make_unique<VoltageSource>(
        "vclkb", clkb, 0,
        std::make_unique<PulseWave>(3.3, 0.0, 1 * ns, 50 * ps, 50 * ps,
                                    2 * ns)));
    latch = add_d_latch(ckt, "lat", kTech, d, clk, clkb, vdd);
  }
};

TEST(DLatch, TransparentThenHolds) {
  LatchBench b;
  const auto res = spice::transient(b.ckt, 10 * ps, 8 * ns);
  const auto q = res.node_waveform(b.latch.q);
  const auto qb = res.node_waveform(b.latch.qb);
  auto v_at = [&](const std::vector<double>& w, double t) {
    for (std::size_t i = 0; i < res.time.size(); ++i) {
      if (res.time[i] >= t) return w[i];
    }
    return w.back();
  };
  // While transparent (t = 2.5 ns): q follows d = high.
  EXPECT_GT(v_at(q, 2.5e-9), 2.8);
  EXPECT_LT(v_at(qb, 2.5e-9), 0.5);
  // After the falling clock edge, d drops at 5 ns but q must HOLD high.
  EXPECT_GT(v_at(q, 6.5e-9), 2.8);
  EXPECT_GT(v_at(q, 7.9e-9), 2.8);
}

TEST(DLatch, ComplementaryOutputsCross) {
  // The paper cares about the Q/QB crossing point (glitch minimization,
  // ref. [9]): both outputs must actually cross during the transparent
  // phase transition.
  LatchBench b;
  const auto res = spice::transient(b.ckt, 10 * ps, 4 * ns);
  const auto q = res.node_waveform(b.latch.q);
  const auto qb = res.node_waveform(b.latch.qb);
  bool crossed = false;
  for (std::size_t i = 1; i < res.time.size(); ++i) {
    if ((q[i - 1] - qb[i - 1]) * (q[i] - qb[i]) < 0.0) crossed = true;
  }
  EXPECT_TRUE(crossed);
}

TEST(SwitchDriver, ReducedSwingOutput) {
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int vlow = ckt.node("vlow");
  const int in = ckt.node("in");
  const int out = ckt.node("out");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>("vlow", vlow, 0, 0.8));
  auto* vin = ckt.add(std::make_unique<VoltageSource>("vin", in, 0, 0.0));
  CellSizes s;
  s.with_caps = false;
  add_switch_driver(ckt, "drv", kTech, in, out, vdd, vlow, s);
  vin->set_dc(0.0);
  EXPECT_NEAR(spice::solve_dc(ckt).v(out), 3.3, 0.01);  // high = full rail
  vin->set_dc(3.3);
  EXPECT_NEAR(spice::solve_dc(ckt).v(out), 0.8, 0.01);  // low = raised rail
}

TEST(Cells, SizeValidation) {
  Circuit ckt;
  CellSizes bad;
  bad.wn = 0.0;
  EXPECT_THROW(add_inverter(ckt, "i", kTech, 1, 2, 3, 0, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace csdac::cells
