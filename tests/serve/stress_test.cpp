// Concurrency stress tests for the design server: many client threads,
// many requests, overlapping job sets. Two contracts under load:
//
//  * Correctness — every reply's result body is byte-identical to the
//    single-threaded answer (execute_job + emit_result), no matter how
//    many clients raced for it or which cache tier served it.
//
//  * Work conservation — the global Monte-Carlo chip counter moves by
//    exactly unique_jobs × chips: in-flight submissions dedup onto one
//    task and completed ones come from the hot tier, so a storm of
//    duplicate questions costs one computation each.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dac/static_analysis.hpp"
#include "runtime/job.hpp"
#include "runtime/json.hpp"
#include "serve/client.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/server.hpp"

namespace csdac::serve {
namespace {

/// RAM-only server (no disk tier) so every test starts cold.
struct ServerFixture {
  std::unique_ptr<Server> server;
  std::string skip_reason;

  explicit ServerFixture(int max_inflight_per_client = 16) {
    ServerOptions o;
    o.sched.workers = 2;
    o.sched.max_inflight_per_client = max_inflight_per_client;
    o.sched.exec.hot_bytes = 4 << 20;
    try {
      server = std::make_unique<Server>(o);
      server->start();
    } catch (const std::exception& e) {
      skip_reason = e.what();
    }
  }
  ~ServerFixture() {
    if (server) server->stop();
  }
};

#define REQUIRE_SERVER(fx)                             \
  if (!(fx).server) {                                  \
    GTEST_SKIP() << "cannot run a loopback server: " + \
                        (fx).skip_reason;              \
  }

/// Canonical serialization of a parsed JSON value (insertion-ordered
/// keys, %.17g numbers — the same forms JsonWriter emits), so result
/// bodies from different replies compare byte-for-byte.
void dump_json(const runtime::JsonValue& v, std::string& out) {
  using T = runtime::JsonValue::Type;
  switch (v.type) {
    case T::kNull: out += "null"; break;
    case T::kBool: out += v.b ? "true" : "false"; break;
    case T::kNumber: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.num);
      out += buf;
      break;
    }
    case T::kString:
      out += '"';
      runtime::append_json_escaped(out, v.str);
      out += '"';
      break;
    case T::kArray: {
      out += '[';
      bool first = true;
      for (const auto& e : v.arr) {
        if (!first) out += ',';
        first = false;
        dump_json(e, out);
      }
      out += ']';
      break;
    }
    case T::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.obj) {
        if (!first) out += ',';
        first = false;
        out += '"';
        runtime::append_json_escaped(out, k);
        out += "\":";
        dump_json(e, out);
      }
      out += '}';
      break;
    }
  }
}

std::string dump_json(const runtime::JsonValue& v) {
  std::string out;
  dump_json(v, out);
  return out;
}

std::string job_text(int unique, std::uint64_t seed_base, int chips) {
  return "{\"id\":\"u" + std::to_string(unique) +
         "\",\"kind\":\"inl_yield\",\"chips\":" + std::to_string(chips) +
         ",\"seed\":" + std::to_string(seed_base + unique) + "}";
}

std::string single_job_request(int unique, std::uint64_t seed_base,
                               int chips) {
  return "{\"schema\":\"csdac-request/1\",\"jobs\":[" +
         job_text(unique, seed_base, chips) + "]}";
}

/// The single-threaded ground truth: parse the request text exactly as
/// the server does, execute the job directly, and canonicalize the
/// emitted result body.
std::string direct_result(int unique, std::uint64_t seed_base, int chips) {
  const auto jobs =
      parse_request_text(single_job_request(unique, seed_base, chips));
  const runtime::JobValue value =
      runtime::execute_job(jobs.at(0).job, 1, nullptr);
  bench::JsonWriter w;
  w.begin_object();
  emit_result(w, value);
  w.end_object();
  runtime::JsonValue doc;
  std::string err;
  EXPECT_TRUE(runtime::parse_json(w.str(), doc, &err)) << err;
  const auto* result = doc.find("result");
  EXPECT_TRUE(result);
  return result ? dump_json(*result) : std::string();
}

/// Parses one reply frame into {job id -> canonical result body},
/// recording any error via ADD_FAILURE so worker threads can use it.
std::map<std::string, std::string> reply_results(const std::string& reply) {
  std::map<std::string, std::string> out;
  runtime::JsonValue doc;
  std::string err;
  if (!runtime::parse_json(reply, doc, &err)) {
    ADD_FAILURE() << "bad reply JSON: " << err;
    return out;
  }
  if (const auto* error = doc.find("error")) {
    ADD_FAILURE() << "error frame: " << error->string_or("code", "?");
    return out;
  }
  const auto* jobs = doc.find("jobs");
  if (!jobs || !jobs->is_array()) {
    ADD_FAILURE() << "reply without jobs array";
    return out;
  }
  for (const auto& job : jobs->arr) {
    const auto* result = job.find("result");
    if (!result) {
      ADD_FAILURE() << "job without result: " << dump_json(job);
      continue;
    }
    out[job.string_or("id", "?")] = dump_json(*result);
  }
  return out;
}

struct StormConfig {
  int clients = 6;
  int requests = 4;
  int jobs_per_request = 2;
  int unique = 5;
  std::uint64_t seed_base = 9000;
  int chips = 150;
};

/// Runs `clients` threads × `requests` requests with overlapping job
/// sets and returns every (id -> result) observed. Job u appears in many
/// requests from many clients at once: (c + r + j) % unique.
std::map<std::string, std::vector<std::string>> run_storm(
    Server& server, const StormConfig& cfg) {
  std::mutex mutex;
  std::map<std::string, std::vector<std::string>> seen;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.clients));
  for (int c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      std::string err;
      if (!client.connect("127.0.0.1", server.port(), &err)) {
        ADD_FAILURE() << "connect: " << err;
        return;
      }
      for (int r = 0; r < cfg.requests; ++r) {
        std::string request = "{\"schema\":\"csdac-request/1\",\"jobs\":[";
        for (int j = 0; j < cfg.jobs_per_request; ++j) {
          if (j) request += ',';
          request += job_text((c + r + j) % cfg.unique, cfg.seed_base,
                              cfg.chips);
        }
        request += "]}";
        std::string reply;
        if (client.call(request, reply) != FrameStatus::kOk) {
          ADD_FAILURE() << "client " << c << " request " << r << " failed";
          return;
        }
        auto results = reply_results(reply);
        std::lock_guard<std::mutex> lock(mutex);
        for (auto& [id, body] : results) {
          seen[id].push_back(std::move(body));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return seen;
}

TEST(Stress, StormAfterSerialWarmupIsBitIdenticalAndFree) {
  StormConfig cfg;
  ServerFixture fx;
  REQUIRE_SERVER(fx);

  // Serial pass first: one client, one job per request, ground truth
  // computed directly. This is the "single-client serial run" the storm
  // must match byte-for-byte.
  std::map<std::string, std::string> serial;
  {
    Client c;
    std::string err;
    ASSERT_TRUE(c.connect("127.0.0.1", fx.server->port(), &err)) << err;
    for (int u = 0; u < cfg.unique; ++u) {
      std::string reply;
      ASSERT_EQ(
          c.call(single_job_request(u, cfg.seed_base, cfg.chips), reply),
          FrameStatus::kOk);
      auto results = reply_results(reply);
      ASSERT_EQ(results.size(), 1u);
      const std::string id = "u" + std::to_string(u);
      ASSERT_TRUE(results.count(id));
      EXPECT_EQ(results[id], direct_result(u, cfg.seed_base, cfg.chips))
          << "server diverged from the direct engine for " << id;
      serial[id] = results[id];
    }
  }

  // The serial pass populated the hot tier; the storm must be pure
  // cache traffic — zero additional chip evaluations.
  const std::int64_t chips_warm = dac::mc_chips_evaluated();
  const auto seen = run_storm(*fx.server, cfg);
  EXPECT_EQ(dac::mc_chips_evaluated(), chips_warm)
      << "a warm storm recomputed something";

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(cfg.unique));
  std::size_t replies = 0;
  for (const auto& [id, bodies] : seen) {
    ASSERT_TRUE(serial.count(id)) << "unexpected job id " << id;
    for (const auto& body : bodies) {
      EXPECT_EQ(body, serial[id])
          << id << " diverged from the serial answer under load";
    }
    replies += bodies.size();
  }
  EXPECT_EQ(replies, static_cast<std::size_t>(cfg.clients * cfg.requests *
                                              cfg.jobs_per_request));
}

TEST(Stress, ColdStormComputesEachUniqueJobExactlyOnce) {
  StormConfig cfg;
  cfg.seed_base = 9500;  // disjoint from the warm-storm test's keys
  // A tight admission cap makes submits block and free slots under real
  // contention instead of everything fitting in one window.
  ServerFixture fx(/*max_inflight_per_client=*/2);
  REQUIRE_SERVER(fx);

  const std::int64_t chips0 = dac::mc_chips_evaluated();
  const auto seen = run_storm(*fx.server, cfg);

  // Dedup + hot tier: a cold storm of overlapping duplicates costs one
  // computation per unique key, never one per request.
  EXPECT_EQ(dac::mc_chips_evaluated() - chips0,
            static_cast<std::int64_t>(cfg.unique) * cfg.chips);

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(cfg.unique));
  for (int u = 0; u < cfg.unique; ++u) {
    const std::string id = "u" + std::to_string(u);
    ASSERT_TRUE(seen.count(id)) << id << " never answered";
    const std::string want = direct_result(u, cfg.seed_base, cfg.chips);
    for (const auto& body : seen.at(id)) {
      EXPECT_EQ(body, want) << id << " diverged under a cold storm";
    }
  }

  // Every job landed on the shared scheduler (as a fresh task or a
  // dedup attachment); the chip-counter check above proves how few of
  // those actually computed anything.
  const auto sched = fx.server->scheduler().counters();
  EXPECT_EQ(sched.submitted + sched.dedup_inflight,
            static_cast<std::int64_t>(cfg.clients) * cfg.requests *
                cfg.jobs_per_request);
}

}  // namespace
}  // namespace csdac::serve
