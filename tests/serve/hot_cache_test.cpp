// Tests for the in-memory hot cache tier: LRU eviction order under the
// byte budget, recency refresh, oversized-payload rejection, sharded-map
// integrity under concurrent get/put, and the executor-level tiering
// contract — hot hits do zero disk reads, and eviction falls back to the
// disk tier with an identical answer.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/accuracy.hpp"
#include "runtime/executor.hpp"
#include "runtime/hot_cache.hpp"

namespace csdac::runtime {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* tag) {
    path = fs::path(testing::TempDir()) /
           (std::string("csdac-") + tag + "-" +
            std::to_string(static_cast<unsigned long long>(
                reinterpret_cast<std::uintptr_t>(this))));
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

mathx::HashKey128 key_of(std::uint64_t n) {
  mathx::ByteWriter w;
  w.u64(n);
  return w.hash();
}

std::vector<unsigned char> payload_of(std::uint64_t n, std::size_t size) {
  std::vector<unsigned char> p(size);
  for (std::size_t i = 0; i < size; ++i) {
    p[i] = static_cast<unsigned char>((n * 131 + i) & 0xff);
  }
  return p;
}

HotCacheOptions one_shard(std::uint64_t max_bytes) {
  HotCacheOptions o;
  o.max_bytes = max_bytes;
  o.shards = 1;  // deterministic LRU order for the eviction tests
  return o;
}

TEST(HotCache, HitReturnsStoredPayload) {
  HotCache hot(one_shard(1024));
  const auto k = key_of(1);
  const auto p = payload_of(1, 64);
  hot.put(k, p);
  std::vector<unsigned char> got;
  ASSERT_TRUE(hot.get(k, got));
  EXPECT_EQ(got, p);
  const HotCacheCounters c = hot.counters();
  EXPECT_EQ(c.hits, 1);
  EXPECT_EQ(c.inserts, 1);
  EXPECT_EQ(c.bytes, 64);
}

TEST(HotCache, MissLeavesPayloadAloneAndCounts) {
  HotCache hot(one_shard(1024));
  std::vector<unsigned char> got = {1, 2, 3};
  EXPECT_FALSE(hot.get(key_of(99), got));
  EXPECT_EQ(hot.counters().misses, 1);
}

TEST(HotCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits exactly three 100-byte entries.
  HotCache hot(one_shard(300));
  hot.put(key_of(1), payload_of(1, 100));
  hot.put(key_of(2), payload_of(2, 100));
  hot.put(key_of(3), payload_of(3, 100));
  EXPECT_EQ(hot.counters().evictions, 0);

  // A fourth entry must evict exactly the oldest (key 1).
  hot.put(key_of(4), payload_of(4, 100));
  EXPECT_EQ(hot.counters().evictions, 1);
  EXPECT_EQ(hot.counters().bytes, 300);
  std::vector<unsigned char> got;
  EXPECT_FALSE(hot.get(key_of(1), got));
  EXPECT_TRUE(hot.get(key_of(2), got));
  EXPECT_TRUE(hot.get(key_of(3), got));
  EXPECT_TRUE(hot.get(key_of(4), got));
}

TEST(HotCache, GetRefreshesRecencyAndChangesTheVictim) {
  HotCache hot(one_shard(300));
  hot.put(key_of(1), payload_of(1, 100));
  hot.put(key_of(2), payload_of(2, 100));
  hot.put(key_of(3), payload_of(3, 100));

  // Touch 1 so 2 becomes the LRU victim.
  std::vector<unsigned char> got;
  ASSERT_TRUE(hot.get(key_of(1), got));
  hot.put(key_of(4), payload_of(4, 100));
  EXPECT_TRUE(hot.get(key_of(1), got));
  EXPECT_FALSE(hot.get(key_of(2), got));
  EXPECT_TRUE(hot.get(key_of(3), got));
  EXPECT_TRUE(hot.get(key_of(4), got));
}

TEST(HotCache, OneOversizedPayloadIsRejectedNotAdmitted) {
  HotCache hot(one_shard(300));
  hot.put(key_of(1), payload_of(1, 100));
  // Larger than the whole budget: admitting it would evict everything
  // for an entry that cannot even fit.
  hot.put(key_of(2), payload_of(2, 400));
  const HotCacheCounters c = hot.counters();
  EXPECT_EQ(c.rejected, 1);
  EXPECT_EQ(c.evictions, 0);
  std::vector<unsigned char> got;
  EXPECT_TRUE(hot.get(key_of(1), got));
  EXPECT_FALSE(hot.get(key_of(2), got));
}

TEST(HotCache, RepeatedPutOfSameKeyDoesNotGrowBytes) {
  HotCache hot(one_shard(1024));
  hot.put(key_of(1), payload_of(1, 64));
  hot.put(key_of(1), payload_of(1, 64));
  hot.put(key_of(1), payload_of(1, 64));
  const HotCacheCounters c = hot.counters();
  EXPECT_EQ(c.inserts, 1);
  EXPECT_EQ(c.bytes, 64);
}

TEST(HotCache, ShardedConcurrentGetPutKeepsPayloadsIntact) {
  HotCacheOptions o;
  o.max_bytes = 64 << 10;
  o.shards = 8;
  HotCache hot(o);
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  constexpr int kIters = 400;
  std::atomic<std::int64_t> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hot, &corrupt, t] {
      std::vector<unsigned char> got;
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t n =
            static_cast<std::uint64_t>((i * 13 + t * 7) % kKeys);
        const auto want = payload_of(n, 64 + (n % 5) * 16);
        if ((i + t) % 3 == 0) {
          hot.put(key_of(n), want);
        } else if (hot.get(key_of(n), got) && got != want) {
          corrupt.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corrupt.load(), 0) << "hot tier returned a torn payload";
  const HotCacheCounters c = hot.counters();
  EXPECT_GT(c.hits, 0);
  EXPECT_GT(c.inserts, 0);
}

// --- Executor tiering ------------------------------------------------------

InlYieldJob tiny_job(std::uint64_t seed) {
  InlYieldJob j;
  j.sigma_unit = core::unit_sigma_spec(j.spec.nbits, j.spec.inl_yield);
  j.chips = 40;
  j.seed = seed;
  return j;
}

TEST(ExecutorTiering, HotHitDoesZeroDiskReads) {
  ScratchDir dir("exec-hot");
  ExecutorOptions eo;
  eo.cache_dir = dir.str();
  eo.hot_bytes = 1 << 20;
  JobExecutor exec(eo);
  const Job job = tiny_job(77);
  const auto key = job_key(job);

  const ExecResult first = exec.run(job, key, 1);
  EXPECT_EQ(first.tier, ResultTier::kComputed);
  const CacheCounters disk_after_first = exec.disk_counters();

  const ExecResult again = exec.run(job, key, 1);
  EXPECT_EQ(again.tier, ResultTier::kHot);
  EXPECT_TRUE(again.cache_hit());
  // The disk tier must not have been consulted at all for the hot hit.
  const CacheCounters disk_after = exec.disk_counters();
  EXPECT_EQ(disk_after.hits, disk_after_first.hits);
  EXPECT_EQ(disk_after.misses, disk_after_first.misses);
  EXPECT_EQ(exec.hot_counters().hits, 1);

  ASSERT_TRUE(std::holds_alternative<YieldResult>(first.value));
  const auto& a = std::get<YieldResult>(first.value);
  const auto& b = std::get<YieldResult>(again.value);
  EXPECT_EQ(a.pass, b.pass);
  EXPECT_EQ(a.yield, b.yield);
}

TEST(ExecutorTiering, EvictedHotEntryFallsBackToDiskWithIdenticalBytes) {
  ScratchDir dir("exec-evict");
  ExecutorOptions eo;
  eo.cache_dir = dir.str();
  // One shard, budget so small that the second distinct job evicts the
  // first from RAM while the disk tier keeps both.
  eo.hot_bytes = 48;
  eo.hot_shards = 1;
  JobExecutor exec(eo);

  const Job j1 = tiny_job(101), j2 = tiny_job(202);
  const ExecResult first = exec.run(j1, job_key(j1), 1);
  EXPECT_EQ(first.tier, ResultTier::kComputed);
  exec.run(j2, job_key(j2), 1);
  ASSERT_GT(exec.hot_counters().evictions, 0)
      << "budget was meant to force an eviction";

  const ExecResult back = exec.run(j1, job_key(j1), 1);
  EXPECT_EQ(back.tier, ResultTier::kDisk);
  const auto& a = std::get<YieldResult>(first.value);
  const auto& b = std::get<YieldResult>(back.value);
  EXPECT_EQ(a.chips, b.chips);
  EXPECT_EQ(a.pass, b.pass);
  EXPECT_EQ(a.yield, b.yield);
  EXPECT_EQ(a.ci95, b.ci95);
}

TEST(ExecutorTiering, HotOnlyExecutorCachesWithoutDisk) {
  ExecutorOptions eo;  // no cache_dir: RAM-only service configuration
  eo.hot_bytes = 1 << 20;
  JobExecutor exec(eo);
  EXPECT_EQ(exec.disk(), nullptr);
  const Job job = tiny_job(55);
  EXPECT_EQ(exec.run(job, job_key(job), 1).tier, ResultTier::kComputed);
  EXPECT_EQ(exec.run(job, job_key(job), 1).tier, ResultTier::kHot);
}

}  // namespace
}  // namespace csdac::runtime
