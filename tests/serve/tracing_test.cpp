// End-to-end request tracing: client-supplied trace ids are echoed in the
// reply and land in the flight recorder; server-minted ids fill the gap
// when the client sends none; oversized ids are rejected as bad_request;
// every successful job carries the per-stage latency attribution record
// (and a warm hot-cache hit attributes zero compute); trace ids survive a
// concurrent multi-client storm without cross-talk; and a shutdown
// arriving mid-batch still leaves the flight ring and the metrics
// registry dumpable (the regression behind `csdac_serve`'s exit flush).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runtime/json.hpp"
#include "serve/client.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/server.hpp"

namespace csdac::serve {
namespace {

/// Server on an ephemeral loopback port, RAM-only cache tiers. Skips the
/// suite when the sandbox forbids binding sockets.
struct ServerFixture {
  std::unique_ptr<Server> server;
  std::string skip_reason;

  ServerFixture() {
    ServerOptions o;
    o.sched.workers = 2;
    o.sched.exec.hot_bytes = 1 << 20;
    try {
      server = std::make_unique<Server>(o);
      server->start();
    } catch (const std::exception& e) {
      skip_reason = e.what();
    }
  }
  ~ServerFixture() {
    if (server) server->stop();
  }

  Client connect() {
    Client c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", server->port(), &err)) << err;
    return c;
  }
};

#define REQUIRE_SERVER(fx)                             \
  if (!(fx).server) {                                  \
    GTEST_SKIP() << "cannot run a loopback server: " + \
                        (fx).skip_reason;              \
  }

runtime::JsonValue parse_reply(const std::string& reply) {
  runtime::JsonValue doc;
  std::string err;
  EXPECT_TRUE(runtime::parse_json(reply, doc, &err)) << err << ": " << reply;
  return doc;
}

std::string error_code(const runtime::JsonValue& doc) {
  const auto* error = doc.find("error");
  return error ? error->string_or("code", "") : "";
}

std::string traced_request(const std::string& trace_id, int seed,
                           int chips = 40) {
  std::string req = "{\"schema\":\"csdac-request/1\"";
  if (!trace_id.empty()) req += ",\"trace_id\":\"" + trace_id + "\"";
  req += ",\"jobs\":[{\"id\":\"j\",\"kind\":\"inl_yield\",\"chips\":" +
         std::to_string(chips) + ",\"seed\":" + std::to_string(seed) +
         "}]}";
  return req;
}

constexpr const char* kStageFields[] = {
    "admission_us", "queue_us",     "hot_us",   "disk_us",
    "compute_us",   "store_us",     "serialize_us"};

/// The reply's per-job stage record: every field present, non-negative,
/// and total_us equal to the sum (the invariant csdac-ctl relies on).
const runtime::JsonValue* check_stages(const runtime::JsonValue& doc) {
  const auto* jobs = doc.find("jobs");
  EXPECT_TRUE(jobs && jobs->is_array() && !jobs->arr.empty());
  if (!jobs || !jobs->is_array() || jobs->arr.empty()) return nullptr;
  const auto* stages = jobs->arr[0].find("stages");
  EXPECT_TRUE(stages && stages->is_object());
  if (!stages || !stages->is_object()) return nullptr;
  long long sum = 0;
  for (const char* field : kStageFields) {
    const long long v = stages->int_or(field, -1);
    EXPECT_GE(v, 0) << field;
    sum += v;
  }
  EXPECT_EQ(stages->int_or("total_us", -1), sum);
  return stages;
}

TEST(Tracing, ClientTraceIdIsEchoedWithStages) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  ASSERT_EQ(c.call(traced_request("t-echo-1", 101), reply),
            FrameStatus::kOk);
  const runtime::JsonValue doc = parse_reply(reply);
  EXPECT_EQ(error_code(doc), "");
  EXPECT_EQ(doc.string_or("schema", ""), kResponseSchema);
  EXPECT_EQ(doc.string_or("trace_id", ""), "t-echo-1");
  check_stages(doc);
}

TEST(Tracing, ServerMintsTraceIdWhenClientSendsNone) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  ASSERT_EQ(c.call(traced_request("", 102), reply), FrameStatus::kOk);
  const runtime::JsonValue doc = parse_reply(reply);
  EXPECT_EQ(error_code(doc), "");
  const std::string minted = doc.string_or("trace_id", "");
  EXPECT_EQ(minted.rfind("sv-", 0), 0u) << minted;
  EXPECT_LE(minted.size(), kMaxTraceIdBytes);
}

TEST(Tracing, OversizedTraceIdIsRejectedAndConnectionServes) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  const std::string huge(kMaxTraceIdBytes + 1, 'x');
  ASSERT_EQ(c.call(traced_request(huge, 103), reply), FrameStatus::kOk);
  EXPECT_EQ(error_code(parse_reply(reply)), "bad_request");
  // A maximum-length id is fine, and the connection still serves.
  const std::string max_id(kMaxTraceIdBytes, 'y');
  ASSERT_EQ(c.call(traced_request(max_id, 103), reply), FrameStatus::kOk);
  const runtime::JsonValue doc = parse_reply(reply);
  EXPECT_EQ(error_code(doc), "");
  EXPECT_EQ(doc.string_or("trace_id", ""), max_id);
}

TEST(Tracing, WarmHitAttributesZeroCompute) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  ASSERT_EQ(c.call(traced_request("t-cold", 104), reply), FrameStatus::kOk);
  const auto* cold = check_stages(parse_reply(reply));
  ASSERT_NE(cold, nullptr);
  EXPECT_GT(cold->int_or("compute_us", -1), 0);
  // Same job again: the hot tier answers, so no compute time is spent —
  // but the stage record is still present with the zero attributed.
  ASSERT_EQ(c.call(traced_request("t-warm", 104), reply), FrameStatus::kOk);
  const runtime::JsonValue doc = parse_reply(reply);
  EXPECT_EQ(doc.string_or("trace_id", ""), "t-warm");
  const auto* warm = check_stages(doc);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(warm->int_or("compute_us", -1), 0);
}

TEST(Tracing, ConcurrentStormKeepsTraceIdsStraight) {
  // Collect every span the storm emits: each trace id must appear on
  // the serve, scheduler, AND executor spans — the id propagated
  // through the whole stack, across the worker pool.
  obs::SpanCollector spans;
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  obs::Tracer::global().add_sink(&spans);
  constexpr int kThreads = 6;
  constexpr int kRequests = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&fx, &mismatches, t] {
      Client c = fx.connect();
      std::string reply;
      for (int i = 0; i < kRequests; ++i) {
        const std::string id =
            "st-" + std::to_string(t) + "-" + std::to_string(i);
        // Unique seed per (thread, request): distinct jobs, so the
        // scheduler's single-flight dedup never merges two trace ids.
        const int seed = 1000 + t * kRequests + i;
        if (c.call(traced_request(id, seed, 20), reply) !=
            FrameStatus::kOk) {
          ++mismatches;
          continue;
        }
        const runtime::JsonValue doc = parse_reply(reply);
        if (doc.string_or("trace_id", "") != id ||
            !error_code(doc).empty()) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  obs::Tracer::global().remove_sink(&spans);
  EXPECT_EQ(mismatches.load(), 0);

  // Every request also left a kRequest event with its trace id in the
  // process-wide flight ring (recorded unconditionally, no sink needed).
  std::set<std::string> seen;
  for (const obs::FlightEvent& ev : obs::FlightRecorder::global().snapshot()) {
    if (ev.kind == obs::FlightEventKind::kRequest) {
      seen.emplace(ev.trace_view());
    }
  }
  // And each id must tag the serve, scheduler, and executor spans: the
  // layer names that carried it, collected across all worker threads.
  std::set<std::pair<std::string, std::string>> by_layer;
  for (const obs::SpanRecord& s : spans.take()) {
    for (const auto& [k, v] : s.attrs) {
      if (k == "trace_id") by_layer.emplace(s.name, v);
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kRequests; ++i) {
      const std::string id =
          "st-" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_TRUE(seen.count(id)) << id << " missing from flight ring";
      for (const char* layer : {"serve.request", "sched.job", "exec.job"}) {
        EXPECT_TRUE(by_layer.count({layer, id}))
            << id << " missing from " << layer << " span";
      }
    }
  }
}

TEST(Tracing, ShutdownMidBatchLeavesRecorderAndMetricsDumpable) {
  auto fx = std::make_unique<ServerFixture>();
  REQUIRE_SERVER(*fx);
  // A batch big enough to still be in flight when shutdown lands.
  std::string batch = "{\"schema\":\"csdac-request/1\","
                      "\"trace_id\":\"t-shutdown\",\"jobs\":[";
  for (int j = 0; j < 6; ++j) {
    if (j) batch += ',';
    batch += "{\"id\":\"b" + std::to_string(j) +
             "\",\"kind\":\"inl_yield\",\"chips\":400,\"seed\":" +
             std::to_string(2000 + j) + "}";
  }
  batch += "]}";

  Client worker = fx->connect();
  ASSERT_TRUE(worker.send(batch));
  Client ctl = fx->connect();
  std::string reply;
  ASSERT_EQ(ctl.call("{\"schema\":\"csdac-ctl/1\",\"cmd\":\"shutdown\"}",
                     reply),
            FrameStatus::kOk);
  EXPECT_TRUE(parse_reply(reply).bool_or("ok", false));
  fx->server->wait();
  fx->server->stop();
  fx.reset();  // destructor path: what csdac_serve runs before its flush

  // The flush sequence the tool performs after stop() must still work:
  // the ring snapshots into valid Chrome-trace JSON and the registry
  // still renders an exposition.
  const std::string trace =
      obs::FlightRecorder::global().chrome_trace_json();
  runtime::JsonValue doc;
  std::string err;
  ASSERT_TRUE(runtime::parse_json(trace, doc, &err)) << err;
  const auto* events = doc.find("traceEvents");
  ASSERT_TRUE(events && events->is_array());
  EXPECT_FALSE(events->arr.empty());
  EXPECT_NE(obs::Registry::global().snapshot().to_prometheus().find(
                "csdac_serve_requests_total"),
            std::string::npos);
}

}  // namespace
}  // namespace csdac::serve
