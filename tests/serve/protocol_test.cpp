// Protocol-robustness tests for the network server: well-formed requests
// round-trip; malformed payloads (bad JSON, wrong schema, bad jobs, the
// hostile-input corpus under tests/serve/corpus/) get structured error
// frames on a connection that stays open; framing violations (bad magic,
// oversized frames, truncation, mid-request disconnects) drop only that
// connection while the server keeps serving everyone else.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/json.hpp"
#include "serve/client.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"
#include "serve/server.hpp"

namespace csdac::serve {
namespace {

namespace fs = std::filesystem;

constexpr const char* kGoodRequest =
    "{\"schema\":\"csdac-request/1\",\"jobs\":[{\"id\":\"q\","
    "\"kind\":\"inl_yield\",\"chips\":40,\"seed\":42}]}";

/// Server on an ephemeral loopback port, RAM-only cache tiers. Skips the
/// suite when the sandbox forbids binding sockets.
struct ServerFixture {
  std::unique_ptr<Server> server;
  std::string skip_reason;

  explicit ServerFixture(std::uint32_t max_frame = kDefaultMaxFrameBytes) {
    ServerOptions o;
    o.max_frame_bytes = max_frame;
    o.sched.workers = 2;
    o.sched.exec.hot_bytes = 1 << 20;
    try {
      server = std::make_unique<Server>(o);
      server->start();
    } catch (const std::exception& e) {
      skip_reason = e.what();
    }
  }
  ~ServerFixture() {
    if (server) server->stop();
  }

  Client connect() {
    Client c;
    std::string err;
    EXPECT_TRUE(c.connect("127.0.0.1", server->port(), &err)) << err;
    return c;
  }
};

#define REQUIRE_SERVER(fx)                             \
  if (!(fx).server) {                                  \
    GTEST_SKIP() << "cannot run a loopback server: " + \
                        (fx).skip_reason;              \
  }

runtime::JsonValue parse_reply(const std::string& reply) {
  runtime::JsonValue doc;
  std::string err;
  EXPECT_TRUE(runtime::parse_json(reply, doc, &err)) << err << ": " << reply;
  return doc;
}

std::string error_code(const runtime::JsonValue& doc) {
  const auto* error = doc.find("error");
  return error ? error->string_or("code", "") : "";
}

TEST(Protocol, GoodRequestRoundTrips) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  ASSERT_EQ(c.call(kGoodRequest, reply), FrameStatus::kOk);
  const runtime::JsonValue doc = parse_reply(reply);
  EXPECT_EQ(doc.string_or("schema", ""), kResponseSchema);
  EXPECT_EQ(error_code(doc), "");
  const auto* jobs = doc.find("jobs");
  ASSERT_TRUE(jobs && jobs->is_array());
  ASSERT_EQ(jobs->arr.size(), 1u);
  EXPECT_EQ(jobs->arr[0].string_or("id", ""), "q");
  const auto* result = jobs->arr[0].find("result");
  ASSERT_TRUE(result);
  const double yield = result->number_or("yield", -1.0);
  EXPECT_GE(yield, 0.0);
  EXPECT_LE(yield, 1.0);
}

TEST(Protocol, PayloadErrorsKeepTheConnectionServing) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  const struct {
    const char* payload;
    const char* code;
  } cases[] = {
      {"{not json", "bad_json"},
      {"{\"schema\":\"csdac-request/7\",\"jobs\":[{}]}", "bad_schema"},
      {"{\"schema\":\"csdac-request/1\",\"jobs\":[]}", "bad_request"},
      {"{\"schema\":\"csdac-request/1\","
       "\"jobs\":[{\"kind\":\"nonsense\"}]}",
       "bad_job"},
      {"{\"schema\":\"csdac-ctl/1\",\"cmd\":\"rm-rf\"}", "bad_ctl"},
  };
  std::string reply;
  for (const auto& tc : cases) {
    ASSERT_EQ(c.call(tc.payload, reply), FrameStatus::kOk) << tc.payload;
    EXPECT_EQ(error_code(parse_reply(reply)), tc.code) << tc.payload;
  }
  // The SAME connection still answers real questions afterwards.
  ASSERT_EQ(c.call(kGoodRequest, reply), FrameStatus::kOk);
  EXPECT_EQ(error_code(parse_reply(reply)), "");
}

TEST(Protocol, HostileCorpusNeverCrashesOrSucceeds) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  const fs::path corpus(CSDAC_SERVE_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(corpus)) << corpus;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    files.push_back(entry.path());
  }
  ASSERT_GE(files.size(), 10u) << "corpus went missing";

  Client c = fx.connect();
  std::string reply;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    ASSERT_EQ(c.call(buf.str(), reply), FrameStatus::kOk) << file;
    EXPECT_NE(error_code(parse_reply(reply)), "")
        << file << " was accepted instead of rejected";
  }
  // Still alive, still correct.
  ASSERT_EQ(c.call(kGoodRequest, reply), FrameStatus::kOk);
  EXPECT_EQ(error_code(parse_reply(reply)), "");
}

TEST(Protocol, BadMagicGetsErrorFrameAndDrop) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  const unsigned char junk[8] = {'H', 'T', 'T', 'P', 1, 0, 0, 0};
  ASSERT_TRUE(c.send_raw(junk, sizeof(junk)));
  std::string reply;
  ASSERT_EQ(c.recv(reply), FrameStatus::kOk);
  EXPECT_EQ(error_code(parse_reply(reply)), "bad_magic");
  // The server hung up: the next read is EOF (or a reset).
  EXPECT_NE(c.recv(reply), FrameStatus::kOk);
}

TEST(Protocol, OversizedFrameIsRejectedBeforeParsing) {
  ServerFixture fx(/*max_frame=*/4096);
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  const std::string big(8192, 'a');
  ASSERT_TRUE(c.send(big));
  std::string reply;
  ASSERT_EQ(c.recv(reply), FrameStatus::kOk);
  EXPECT_EQ(error_code(parse_reply(reply)), "frame_too_large");
  EXPECT_NE(c.recv(reply), FrameStatus::kOk);
}

TEST(Protocol, MidRequestDisconnectLeavesServerServing) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  {
    // Claim a frame of 100 bytes, send 10, vanish.
    Client dropper = fx.connect();
    const unsigned char hdr[8] = {'C', 'S', 'F', '1', 100, 0, 0, 0};
    ASSERT_TRUE(dropper.send_raw(hdr, sizeof(hdr)));
    ASSERT_TRUE(dropper.send_raw("partial!!!", 10));
  }
  Client c = fx.connect();
  std::string reply;
  ASSERT_EQ(c.call(kGoodRequest, reply), FrameStatus::kOk);
  EXPECT_EQ(error_code(parse_reply(reply)), "");
}

TEST(Protocol, PingReportsWorkers) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  ASSERT_EQ(c.call("{\"schema\":\"csdac-ctl/1\",\"cmd\":\"ping\"}", reply),
            FrameStatus::kOk);
  const runtime::JsonValue doc = parse_reply(reply);
  EXPECT_EQ(doc.string_or("schema", ""), std::string(kControlSchema));
  EXPECT_TRUE(doc.bool_or("ok", false));
  EXPECT_EQ(doc.int_or("workers", -1), 2);
}

TEST(Protocol, MetricsCommandReturnsPrometheusText) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  ASSERT_EQ(c.call(kGoodRequest, reply), FrameStatus::kOk);
  ASSERT_EQ(
      c.call("{\"schema\":\"csdac-ctl/1\",\"cmd\":\"metrics\"}", reply),
      FrameStatus::kOk);
  const runtime::JsonValue doc = parse_reply(reply);
  EXPECT_TRUE(doc.bool_or("ok", false));
  const std::string prom = doc.string_or("prometheus", "");
  EXPECT_NE(prom.find("csdac_serve_requests_total"), std::string::npos);
  EXPECT_NE(prom.find("csdac_serve_connections_total"), std::string::npos);
}

TEST(Protocol, ShutdownCommandStopsTheServer) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  ASSERT_EQ(
      c.call("{\"schema\":\"csdac-ctl/1\",\"cmd\":\"shutdown\"}", reply),
      FrameStatus::kOk);
  EXPECT_TRUE(parse_reply(reply).bool_or("ok", false));
  fx.server->wait();  // returns because shutdown was acknowledged
  EXPECT_TRUE(fx.server->shutdown_requested());
}

TEST(Protocol, RequestEmbedsMetricsWhenAsked) {
  ServerFixture fx;
  REQUIRE_SERVER(fx);
  Client c = fx.connect();
  std::string reply;
  const std::string with_metrics =
      "{\"schema\":\"csdac-request/1\",\"metrics\":true,"
      "\"jobs\":[{\"kind\":\"inl_yield\",\"chips\":40,\"seed\":43}]}";
  ASSERT_EQ(c.call(with_metrics, reply), FrameStatus::kOk);
  const runtime::JsonValue doc = parse_reply(reply);
  const auto* metrics = doc.find("metrics");
  ASSERT_TRUE(metrics && metrics->is_object());
  EXPECT_TRUE(metrics->find("counters"));
}

}  // namespace
}  // namespace csdac::serve
