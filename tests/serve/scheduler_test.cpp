// Tests for the shared long-lived scheduler: future-based submission,
// cross-request single-flight dedup, per-client admission control,
// round-robin fairness, batch-lifetime independence (the regression for
// the old batch-scoped runtime), and JobGraph running against a shared
// executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/accuracy.hpp"
#include "runtime/graph.hpp"
#include "runtime/scheduler.hpp"

namespace csdac::runtime {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* tag) {
    path = fs::path(testing::TempDir()) /
           (std::string("csdac-") + tag + "-" +
            std::to_string(static_cast<unsigned long long>(
                reinterpret_cast<std::uintptr_t>(this))));
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

InlYieldJob job_with(std::uint64_t seed, int chips) {
  InlYieldJob j;
  j.sigma_unit = core::unit_sigma_spec(j.spec.nbits, j.spec.inl_yield);
  j.chips = chips;
  j.seed = seed;
  return j;
}

SchedulerOptions ram_only(int workers) {
  SchedulerOptions o;
  o.workers = workers;
  o.exec.hot_bytes = 1 << 20;  // RAM-only tiers: no scratch dir needed
  return o;
}

/// The worker finishes its bookkeeping (in-flight erase, completed
/// counter) AFTER resolving the future, so a test that observed the
/// future must give that tail a bounded moment before asserting on it.
void wait_for_completed(const Scheduler& sched, std::int64_t n) {
  for (int spin = 0; spin < 2000; ++spin) {
    if (sched.counters().completed >= n) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Scheduler, ResolvesFutureWithTheDirectResult) {
  Scheduler sched(ram_only(2));
  const Job job = job_with(11, 50);
  const auto ticket = sched.submit(job, /*client=*/1, "direct");
  const Scheduler::ResultPtr res = ticket.future.get();
  ASSERT_TRUE(res);
  const JobValue direct = execute_job(job, 1, nullptr);
  EXPECT_EQ(std::get<YieldResult>(res->value).yield,
            std::get<YieldResult>(direct).yield);
  EXPECT_EQ(std::get<YieldResult>(res->value).pass,
            std::get<YieldResult>(direct).pass);
  wait_for_completed(sched, 1);
  const SchedulerCounters c = sched.counters();
  EXPECT_EQ(c.submitted, 1);
  EXPECT_EQ(c.completed, 1);
}

TEST(Scheduler, RejectsBadOptions) {
  SchedulerOptions o;
  o.max_inflight_per_client = 0;
  EXPECT_THROW(Scheduler{o}, std::invalid_argument);
}

TEST(Scheduler, DedupsIdenticalInFlightJobsAcrossClients) {
  // One worker: the blocker pins it, so both target submissions are
  // queued when the second arrives — deterministic dedup.
  Scheduler sched(ram_only(1));
  const auto blocker = sched.submit(job_with(900, 400), 0, "blocker");
  const Job target = job_with(901, 50);
  const auto t1 = sched.submit(target, 1, "first");
  const auto t2 = sched.submit(target, 2, "second");
  EXPECT_FALSE(t1.deduped);
  EXPECT_TRUE(t2.deduped);
  EXPECT_EQ(t1.key, t2.key);

  const Scheduler::ResultPtr r1 = t1.future.get();
  const Scheduler::ResultPtr r2 = t2.future.get();
  // Same task, same shared result object — ran exactly once.
  EXPECT_EQ(r1.get(), r2.get());
  EXPECT_EQ(r1->tier, ResultTier::kComputed);
  blocker.future.wait();
  const SchedulerCounters c = sched.counters();
  EXPECT_EQ(c.dedup_inflight, 1);
  EXPECT_EQ(c.submitted, 2);  // dedup attachments are not submissions
}

TEST(Scheduler, CompletedJobsAreServedByTheCacheNotDedup) {
  Scheduler sched(ram_only(1));
  const Job job = job_with(77, 50);
  sched.submit(job, 0).future.wait();
  wait_for_completed(sched, 1);  // the in-flight erase trails the future
  const auto again = sched.submit(job, 0);
  EXPECT_FALSE(again.deduped);  // left the in-flight table on completion
  EXPECT_EQ(again.future.get()->tier, ResultTier::kHot);
}

TEST(Scheduler, AdmissionCapBlocksSubmitUntilSlotsFree) {
  SchedulerOptions o = ram_only(1);
  o.max_inflight_per_client = 1;
  Scheduler sched(o);

  // Heavy enough that it is still running when the next submit arrives
  // even on a loaded 1-core runner (~100 ms of chips vs. a microsecond
  // gap between the two calls).
  const auto first = sched.submit(job_with(300, 20000), 7, "slow");
  // The same client's next submit must block until the first completes.
  const auto second = sched.submit(job_with(301, 50), 7, "blocked");
  EXPECT_TRUE(first.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready)
      << "submit returned before the client's slot freed";
  second.future.wait();
  EXPECT_GE(sched.counters().admission_waits, 1);
}

TEST(Scheduler, RoundRobinInterleavesClientsAndTracesTheirIds) {
  ScratchDir dir("sched-trace");
  const std::string trace_path = (dir.path / "trace.jsonl").string();
  fs::create_directories(dir.path);
  TraceLog trace;
  trace.open(trace_path);

  SchedulerOptions o = ram_only(1);
  std::vector<Scheduler::Ticket> tickets;
  {
    Scheduler sched(o);
    sched.set_trace(&trace);
    // Pin the worker, then queue client 0 twice and client 1 once. The
    // round-robin pick must serve client 1 between client 0's jobs.
    tickets.push_back(sched.submit(job_with(500, 300), 0, "blocker"));
    tickets.push_back(sched.submit(job_with(501, 50), 0, "a2"));
    tickets.push_back(sched.submit(job_with(502, 50), 0, "a3"));
    tickets.push_back(sched.submit(job_with(503, 50), 1, "b1"));
    for (const auto& t : tickets) t.future.wait();
  }

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> finish_order;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"ev\":\"job_finish\"") == std::string::npos) continue;
    const auto pos = line.find("\"label\":\"");
    ASSERT_NE(pos, std::string::npos) << line;
    const auto start = pos + 9;
    finish_order.push_back(line.substr(start, line.find('"', start) - start));
    EXPECT_NE(line.find("\"client\":"), std::string::npos) << line;
  }
  ASSERT_EQ(finish_order.size(), 4u);
  // Whether the worker grabbed "blocker" before or after the rest were
  // queued, round-robin must serve client 1's lone job before client 0's
  // second one — b1 strictly ahead of a2 and a3.
  const auto pos = [&finish_order](const std::string& label) {
    return std::find(finish_order.begin(), finish_order.end(), label) -
           finish_order.begin();
  };
  EXPECT_LT(pos("b1"), pos("a2")) << "client 1 was starved by client 0";
  EXPECT_LT(pos("b1"), pos("a3"));
}

TEST(Scheduler, SecondBatchNeitherBlocksOnNorCorruptsTheFirst) {
  // Regression for the batch-scoped runtime: a long first batch must not
  // delay an independent second batch past the fairness slice, and both
  // must produce the same values as direct execution.
  Scheduler sched(ram_only(1));
  const Job a1 = job_with(600, 300), a2 = job_with(601, 300),
            a3 = job_with(602, 300);
  const Job b1 = job_with(700, 40);
  const auto ta1 = sched.submit(a1, 0, "a1");
  const auto ta2 = sched.submit(a2, 0, "a2");
  const auto ta3 = sched.submit(a3, 0, "a3");
  const auto tb1 = sched.submit(b1, 1, "b1");

  // Batch B resolves while batch A still has queued work: with one
  // worker and round-robin, b1 runs right after the job in flight, ahead
  // of a2/a3.
  const Scheduler::ResultPtr rb = tb1.future.get();
  EXPECT_NE(ta3.future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "batch B waited for the whole of batch A";

  const auto direct_b = execute_job(b1, 1, nullptr);
  EXPECT_EQ(std::get<YieldResult>(rb->value).yield,
            std::get<YieldResult>(direct_b).yield);
  for (const auto* t : {&ta1, &ta2, &ta3}) {
    const auto ra = t->future.get();
    EXPECT_EQ(ra->tier, ResultTier::kComputed);
  }
  EXPECT_EQ(std::get<YieldResult>(ta1.future.get()->value).yield,
            std::get<YieldResult>(execute_job(a1, 1, nullptr)).yield);
}

TEST(Scheduler, ManyConcurrentSubmittersAllGetCorrectResults) {
  Scheduler sched(ram_only(4));
  constexpr int kClients = 6;
  constexpr int kJobsEach = 8;
  constexpr int kUnique = 5;
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> yields(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&sched, &yields, c] {
      for (int i = 0; i < kJobsEach; ++i) {
        const auto t =
            sched.submit(job_with(800 + (c + i) % kUnique, 60),
                         static_cast<std::uint64_t>(c));
        yields[c].push_back(
            std::get<YieldResult>(t.future.get()->value).yield);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every client that asked question u must have gotten the same answer.
  const JobValue expect[kUnique] = {
      execute_job(job_with(800, 60), 1, nullptr),
      execute_job(job_with(801, 60), 1, nullptr),
      execute_job(job_with(802, 60), 1, nullptr),
      execute_job(job_with(803, 60), 1, nullptr),
      execute_job(job_with(804, 60), 1, nullptr),
  };
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kJobsEach; ++i) {
      EXPECT_EQ(yields[c][static_cast<std::size_t>(i)],
                std::get<YieldResult>(expect[(c + i) % kUnique]).yield)
          << "client " << c << " job " << i;
    }
  }
  // The completed counter is bumped after the future resolves; give the
  // worker's bookkeeping a bounded moment to catch up.
  for (int spin = 0; spin < 2000; ++spin) {
    const SchedulerCounters c = sched.counters();
    if (c.completed == c.submitted) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const SchedulerCounters counters = sched.counters();
  EXPECT_EQ(counters.submitted + counters.dedup_inflight,
            kClients * kJobsEach);
  EXPECT_EQ(counters.completed, counters.submitted);
}

// --- JobGraph on a shared executor -----------------------------------------

TEST(SharedExecutorGraph, NullExecutorThrows) {
  EXPECT_THROW(JobGraph(RuntimeOptions{}, nullptr), std::invalid_argument);
}

TEST(SharedExecutorGraph, GraphsShareOneSetOfCacheTiers) {
  ExecutorOptions eo;
  eo.hot_bytes = 1 << 20;
  auto exec = std::make_shared<JobExecutor>(eo);
  const Job job = job_with(42, 50);

  JobGraph g1(RuntimeOptions{}, exec);
  const JobId id1 = g1.add(job);
  g1.run_all();
  EXPECT_FALSE(g1.record(id1).cache_hit);

  JobGraph g2(RuntimeOptions{}, exec);
  const JobId id2 = g2.add(job);
  g2.run_all();
  EXPECT_TRUE(g2.record(id2).cache_hit);
  EXPECT_EQ(g2.record(id2).tier, ResultTier::kHot);
  EXPECT_EQ(g1.record(id1).stats.evaluated + g2.record(id2).stats.evaluated,
            50);
  EXPECT_EQ(std::get<YieldResult>(g1.record(id1).value).yield,
            std::get<YieldResult>(g2.record(id2).value).yield);
}

TEST(SharedExecutorGraph, ConcurrentGraphsOnOneExecutorStayIndependent) {
  ExecutorOptions eo;
  eo.hot_bytes = 1 << 20;
  auto exec = std::make_shared<JobExecutor>(eo);
  std::vector<std::thread> threads;
  std::vector<double> yields(4, -1.0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&exec, &yields, t] {
      JobGraph g(RuntimeOptions{}, exec);
      // Two graphs share job 1000; two share job 1001.
      const JobId id = g.add(job_with(1000 + (t % 2), 60));
      g.run_all();
      yields[static_cast<std::size_t>(t)] =
          std::get<YieldResult>(g.record(id).value).yield;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(yields[0], yields[2]);
  EXPECT_EQ(yields[1], yields[3]);
  EXPECT_EQ(yields[0],
            std::get<YieldResult>(execute_job(job_with(1000, 60), 1, nullptr))
                .yield);
  EXPECT_EQ(yields[1],
            std::get<YieldResult>(execute_job(job_with(1001, 60), 1, nullptr))
                .yield);
}

}  // namespace
}  // namespace csdac::runtime
