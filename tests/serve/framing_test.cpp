// Tests for the length-framed transport: round trips, empty and large
// payloads, and every decode failure mode (bad magic, oversized length
// prefix, truncation, clean close) over a socketpair.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/framing.hpp"

namespace csdac::serve {
namespace {

/// Connected AF_UNIX stream pair; fds[0] is "client", fds[1] "server".
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() {
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      fds[0] = fds[1] = -1;
    }
  }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  bool ok() const { return fds[0] >= 0; }
};

TEST(Framing, RoundTripsPayload) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  const std::string sent = "{\"hello\":\"world\"}";
  ASSERT_TRUE(write_frame(sp.fds[0], sent));
  std::string got;
  ASSERT_EQ(read_frame(sp.fds[1], got), FrameStatus::kOk);
  EXPECT_EQ(got, sent);
}

TEST(Framing, RoundTripsEmptyPayload) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(write_frame(sp.fds[0], ""));
  std::string got = "stale";
  ASSERT_EQ(read_frame(sp.fds[1], got), FrameStatus::kOk);
  EXPECT_TRUE(got.empty());
}

TEST(Framing, RoundTripsLargePayloadAcrossPartialReads) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  // Larger than any socket buffer, so both sides must loop.
  std::string sent(3u << 20, 'x');
  for (std::size_t i = 0; i < sent.size(); i += 4096) sent[i] = 'y';
  std::thread writer(
      [&] { EXPECT_TRUE(write_frame(sp.fds[0], sent)); });
  std::string got;
  EXPECT_EQ(read_frame(sp.fds[1], got), FrameStatus::kOk);
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(Framing, SequentialFramesKeepBoundaries) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(write_frame(sp.fds[0], "first"));
  ASSERT_TRUE(write_frame(sp.fds[0], "second"));
  std::string got;
  ASSERT_EQ(read_frame(sp.fds[1], got), FrameStatus::kOk);
  EXPECT_EQ(got, "first");
  ASSERT_EQ(read_frame(sp.fds[1], got), FrameStatus::kOk);
  EXPECT_EQ(got, "second");
}

TEST(Framing, CleanCloseAtBoundaryIsClosed) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  ::close(sp.fds[0]);
  sp.fds[0] = -1;
  std::string got;
  EXPECT_EQ(read_frame(sp.fds[1], got), FrameStatus::kClosed);
}

TEST(Framing, BadMagicIsRejected) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  const unsigned char junk[8] = {'X', 'S', 'F', '1', 4, 0, 0, 0};
  ASSERT_EQ(::send(sp.fds[0], junk, sizeof(junk), 0),
            static_cast<ssize_t>(sizeof(junk)));
  std::string got;
  EXPECT_EQ(read_frame(sp.fds[1], got), FrameStatus::kBadMagic);
}

TEST(Framing, OversizedLengthIsRejectedWithoutAllocating) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  // Length prefix claims 4 GiB - 1; the ceiling must reject it before
  // any payload bytes exist.
  const unsigned char hdr[8] = {'C', 'S', 'F', '1', 0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(sp.fds[0], hdr, sizeof(hdr), 0),
            static_cast<ssize_t>(sizeof(hdr)));
  std::string got;
  EXPECT_EQ(read_frame(sp.fds[1], got, /*max_bytes=*/1 << 20),
            FrameStatus::kTooLarge);
}

TEST(Framing, TruncatedHeaderIsTruncated) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  ASSERT_EQ(::send(sp.fds[0], "CSF", 3, 0), 3);
  ::close(sp.fds[0]);
  sp.fds[0] = -1;
  std::string got;
  EXPECT_EQ(read_frame(sp.fds[1], got), FrameStatus::kTruncated);
}

TEST(Framing, TruncatedPayloadIsTruncated) {
  SocketPair sp;
  ASSERT_TRUE(sp.ok());
  const unsigned char hdr[8] = {'C', 'S', 'F', '1', 100, 0, 0, 0};
  ASSERT_EQ(::send(sp.fds[0], hdr, sizeof(hdr), 0),
            static_cast<ssize_t>(sizeof(hdr)));
  ASSERT_EQ(::send(sp.fds[0], "only ten b", 10, 0), 10);
  ::close(sp.fds[0]);
  sp.fds[0] = -1;
  std::string got;
  EXPECT_EQ(read_frame(sp.fds[1], got), FrameStatus::kTruncated);
}

TEST(Framing, StatusNamesAreStable) {
  EXPECT_EQ(frame_status_name(FrameStatus::kOk), "ok");
  EXPECT_EQ(frame_status_name(FrameStatus::kTooLarge), "frame_too_large");
  EXPECT_EQ(frame_status_name(FrameStatus::kBadMagic), "bad_magic");
}

}  // namespace
}  // namespace csdac::serve
