// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// each suite states one invariant and grinds it across a parameter grid.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/sizer.hpp"
#include "dac/static_analysis.hpp"
#include "digital/decoder.hpp"
#include "layout/switching.hpp"
#include "mathx/fft.hpp"
#include "mathx/rng.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/mismatch.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac {
namespace {

using namespace csdac::units;

// ---------------------------------------------------------------------------
// 1. MOSFET square law vs analytic over (vgs, vds, type)
// ---------------------------------------------------------------------------

using MosParams = std::tuple<double, double, bool>;  // vgs, vds, pmos

class MosfetSquareLawP : public ::testing::TestWithParam<MosParams> {};

TEST_P(MosfetSquareLawP, OperatingPointMatchesAnalytic) {
  const auto [vgs, vds, pmos] = GetParam();
  const auto t =
      pmos ? tech::generic_035um().pmos : tech::generic_035um().nmos;
  const double w = 10 * um, l = 1 * um;

  spice::Circuit ckt;
  const int g = ckt.node("g");
  const int d = ckt.node("d");
  spice::Mosfet* m = nullptr;
  if (!pmos) {
    ckt.add(std::make_unique<spice::VoltageSource>("vg", g, 0, vgs));
    ckt.add(std::make_unique<spice::VoltageSource>("vd", d, 0, vds));
    m = ckt.add(std::make_unique<spice::Mosfet>(
        "m1", t, d, g, 0, 0, spice::Mosfet::Geometry{w, l}));
  } else {
    // Source at VDD; vgs/vds interpreted as source-referred magnitudes.
    const int vdd = ckt.node("vdd");
    ckt.add(std::make_unique<spice::VoltageSource>("vdd", vdd, 0, 3.3));
    ckt.add(std::make_unique<spice::VoltageSource>("vg", g, 0, 3.3 - vgs));
    ckt.add(std::make_unique<spice::VoltageSource>("vd", d, 0, 3.3 - vds));
    m = ckt.add(std::make_unique<spice::Mosfet>(
        "m1", t, d, g, vdd, vdd, spice::Mosfet::Geometry{w, l}));
  }
  spice::solve_dc(ckt);
  const auto& op = m->op();

  const double vod = vgs - t.vt0;
  const double beta = t.kp * w / l;
  const double lam = t.lambda(l);
  double expected = 0.0;
  if (vod <= 0.0) {
    expected = 0.0;
  } else if (vds >= vod) {
    expected = 0.5 * beta * vod * vod * (1.0 + lam * vds);
  } else {
    expected = beta * (vod * vds - 0.5 * vds * vds) * (1.0 + lam * vds);
  }
  EXPECT_NEAR(op.id, expected, std::max(1e-12, 1e-9 * expected))
      << "vgs=" << vgs << " vds=" << vds << " pmos=" << pmos;
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetSquareLawP,
    ::testing::Combine(::testing::Values(0.3, 0.6, 0.9, 1.4, 2.0),
                       ::testing::Values(0.05, 0.2, 0.6, 1.5, 3.0),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// 2. Sizing invariants over (nbits, yield)
// ---------------------------------------------------------------------------

using SizerParams = std::tuple<int, double>;

class SizerInvariantsP : public ::testing::TestWithParam<SizerParams> {};

TEST_P(SizerInvariantsP, SpecAndBoundaryInvariants) {
  const auto [nbits, yield] = GetParam();
  core::DacSpec spec;
  spec.nbits = nbits;
  spec.binary_bits = std::min(4, nbits - 2);
  spec.inl_yield = yield;
  const auto t = tech::generic_035um().nmos;
  const core::CellSizer sizer(t, spec);

  // (a) the sized CS meets the eq. (1) accuracy with equality.
  const auto s = sizer.size_basic(0.3, 0.2, core::MarginPolicy::kNone);
  EXPECT_NEAR(
      tech::sigma_id_rel(t, s.cell.cs.w, s.cell.cs.l, s.cell.vod_cs),
      sizer.sigma_unit(), 1e-9);

  // (b) the statistical boundary sits strictly between the deterministic
  // limit and the 0.5 V-margin curve.
  const auto stat =
      sizer.max_vod_sw_basic(0.3, core::MarginPolicy::kStatistical);
  const auto none = sizer.max_vod_sw_basic(0.3, core::MarginPolicy::kNone);
  const auto fixed =
      sizer.max_vod_sw_basic(0.3, core::MarginPolicy::kFixedMargin, 0.5);
  ASSERT_TRUE(stat && none && fixed);
  EXPECT_LT(*stat, *none);
  EXPECT_GT(*stat, *fixed);

  // (c) boundary self-consistency: slack ~ 0 at the returned point.
  const auto at_boundary =
      sizer.size_basic(0.3, *stat, core::MarginPolicy::kStatistical);
  EXPECT_NEAR(at_boundary.sat.slack(), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ResolutionYieldGrid, SizerInvariantsP,
    ::testing::Combine(::testing::Values(8, 10, 12, 14),
                       ::testing::Values(0.9, 0.99, 0.997)));

// ---------------------------------------------------------------------------
// 3. FFT round trip over record lengths (pow2 and Bluestein)
// ---------------------------------------------------------------------------

class FftRoundTripP : public ::testing::TestWithParam<int> {};

TEST_P(FftRoundTripP, ForwardInverseIsIdentity) {
  const auto n = static_cast<std::size_t>(GetParam());
  mathx::Xoshiro256 rng(n);
  std::vector<mathx::Cplx> x(n);
  for (auto& v : x) {
    v = mathx::Cplx(mathx::uniform(rng, -1, 1), mathx::uniform(rng, -1, 1));
  }
  const auto y = mathx::dft(mathx::dft(x), /*inverse=*/true);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(y[i] - x[i]));
  }
  EXPECT_LT(worst, 1e-9) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTripP,
                         ::testing::Values(2, 8, 64, 1024, 4096,  // pow2
                                           3, 12, 50, 283, 1000, 4095));

// ---------------------------------------------------------------------------
// 4. Switching schemes: validity + gradient suppression on several grids
// ---------------------------------------------------------------------------

using SchemeParams = std::tuple<layout::SwitchingScheme, int>;

class SwitchingSchemeP : public ::testing::TestWithParam<SchemeParams> {};

TEST_P(SwitchingSchemeP, PermutationAndGradientSuppression) {
  const auto [scheme, size] = GetParam();
  const layout::ArrayGeometry geo{size, size};
  const int n = size * size - 1;
  const auto seq = layout::make_sequence(scheme, geo, n, /*seed=*/5);
  ASSERT_EQ(seq.size(), static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(geo.cells()), false);
  for (int idx : seq) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, geo.cells());
    ASSERT_FALSE(seen[static_cast<std::size_t>(idx)]) << "duplicate " << idx;
    seen[static_cast<std::size_t>(idx)] = true;
  }
  // Every gradient-aware scheme must beat raster under a linear-y gradient.
  // (Boustrophedon only fixes the x accumulation: it still walks the rows
  // bottom-to-top, so it is excluded along with the random baselines.)
  if (scheme != layout::SwitchingScheme::kRowMajor &&
      scheme != layout::SwitchingScheme::kRandom &&
      scheme != layout::SwitchingScheme::kBoustrophedon) {
    const layout::GradientSpec g{0.0, 0.01, 0.0};
    const auto raster =
        layout::make_sequence(layout::SwitchingScheme::kRowMajor, geo, n);
    const double inl_raster = layout::systematic_linearity(
        layout::sequence_errors(geo, raster, g), 16.0).inl_max;
    const double inl_scheme = layout::systematic_linearity(
        layout::sequence_errors(geo, seq, g), 16.0).inl_max;
    EXPECT_LT(inl_scheme, inl_raster)
        << "scheme " << static_cast<int>(scheme) << " size " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemeGrid, SwitchingSchemeP,
    ::testing::Combine(
        ::testing::Values(layout::SwitchingScheme::kRowMajor,
                          layout::SwitchingScheme::kBoustrophedon,
                          layout::SwitchingScheme::kSymmetric,
                          layout::SwitchingScheme::kHierarchical,
                          layout::SwitchingScheme::kRandom,
                          layout::SwitchingScheme::kCentroidBalanced),
        ::testing::Values(8, 16)));

// ---------------------------------------------------------------------------
// 4b. Thermometer decoder correctness over field splits
// ---------------------------------------------------------------------------

using DecoderParams = std::tuple<int, int>;  // row_bits, col_bits

class DecoderP : public ::testing::TestWithParam<DecoderParams> {};

TEST_P(DecoderP, ExhaustiveDecodeAndMonotone) {
  const auto [rb, cb] = GetParam();
  const digital::ThermometerDecoder dec(rb, cb);
  const int m = rb + cb;
  for (int code = 0; code < (1 << m); ++code) {
    const auto out = dec.decode(code);
    for (int k = 0; k < dec.outputs(); ++k) {
      ASSERT_EQ(out[static_cast<std::size_t>(k)], k < code)
          << "rb=" << rb << " cb=" << cb << " code=" << code << " k=" << k;
    }
  }
  EXPECT_GT(dec.gate_count(), dec.outputs());  // at least ~2 gates/output
}

INSTANTIATE_TEST_SUITE_P(
    FieldSplits, DecoderP,
    ::testing::Values(DecoderParams{1, 1}, DecoderParams{1, 3},
                      DecoderParams{2, 2}, DecoderParams{3, 2},
                      DecoderParams{3, 4}, DecoderParams{4, 4}));

// ---------------------------------------------------------------------------
// 5. RC transient accuracy across time-constant decades
// ---------------------------------------------------------------------------

using RcParams = std::tuple<double, double>;  // R [Ohm], C [F]

class RcTransientP : public ::testing::TestWithParam<RcParams> {};

TEST_P(RcTransientP, StepResponseMatchesAnalytic) {
  const auto [r, c] = GetParam();
  const double tau = r * c;
  spice::Circuit ckt;
  const int in = ckt.node("in");
  const int out = ckt.node("out");
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vin", in, 0,
      std::make_unique<spice::PulseWave>(0.0, 1.0, 0.0, tau * 1e-6,
                                         tau * 1e-6, 1e9 * tau)));
  ckt.add(std::make_unique<spice::Resistor>("r1", in, out, r));
  ckt.add(std::make_unique<spice::Capacitor>("c1", out, 0, c));
  const auto res = spice::transient(ckt, tau / 50.0, 4.0 * tau);
  for (std::size_t i = 0; i < res.time.size(); ++i) {
    const double expected = 1.0 - std::exp(-res.time[i] / tau);
    EXPECT_NEAR(res.v(i, out), expected, 5e-3)
        << "R=" << r << " C=" << c << " t=" << res.time[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decades, RcTransientP,
    ::testing::Combine(::testing::Values(50.0, 1e3, 1e6),
                       ::testing::Values(1e-15, 1e-12, 1e-9)));

// ---------------------------------------------------------------------------
// 6. eq. (1) yield safety across resolutions
// ---------------------------------------------------------------------------

class YieldSafetyP : public ::testing::TestWithParam<int> {};

TEST_P(YieldSafetyP, MeasuredYieldAtLeastTarget) {
  const int nbits = GetParam();
  core::DacSpec spec;
  spec.nbits = nbits;
  spec.binary_bits = std::min(3, nbits - 2);
  const double target = 0.9;
  const double sigma = core::unit_sigma_spec(nbits, target);
  const auto y = dac::inl_yield_mc(spec, sigma, 300, /*seed=*/7);
  EXPECT_GE(y.yield, target - 0.05) << "nbits = " << nbits;
}

INSTANTIATE_TEST_SUITE_P(Resolutions, YieldSafetyP,
                         ::testing::Values(6, 8, 10));

}  // namespace
}  // namespace csdac
