// Tests for the job-graph runtime: cache-key discipline, persistent-store
// round trips (bit-identical across thread counts), corruption and
// eviction behavior, graph dedup/ordering, the JSON parser of the batch
// service, and equivalence of runtime jobs with direct engine calls.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/accuracy.hpp"
#include "dac/static_analysis.hpp"
#include "runtime/cache.hpp"
#include "runtime/graph.hpp"
#include "runtime/json.hpp"
#include "tech/tech.hpp"

namespace csdac::runtime {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* tag) {
    path = fs::path(testing::TempDir()) /
           (std::string("csdac-") + tag + "-" +
            std::to_string(static_cast<unsigned long long>(
                reinterpret_cast<std::uintptr_t>(this))));
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

InlYieldJob small_inl_job() {
  InlYieldJob j;
  j.sigma_unit = core::unit_sigma_spec(j.spec.nbits, j.spec.inl_yield);
  j.chips = 60;
  j.seed = 1234;
  return j;
}

// --- Cache keys ------------------------------------------------------------

TEST(JobKey, StableForIdenticalInputs) {
  EXPECT_EQ(job_key(small_inl_job()), job_key(small_inl_job()));
}

TEST(JobKey, EveryInlYieldFieldChangesTheKey) {
  const auto base_key = job_key(small_inl_job());
  const auto expect_differs = [&base_key](const InlYieldJob& j,
                                          const char* what) {
    EXPECT_NE(job_key(j), base_key) << what;
  };
  InlYieldJob j = small_inl_job();
  j.sigma_unit *= 1.0000001;
  expect_differs(j, "sigma_unit");
  j = small_inl_job();
  j.chips += 1;
  expect_differs(j, "chips");
  j = small_inl_job();
  j.seed += 1;
  expect_differs(j, "seed");
  j = small_inl_job();
  j.limit = 0.6;
  expect_differs(j, "limit");
  j = small_inl_job();
  j.ref = dac::InlReference::kEndpoint;
  expect_differs(j, "ref");
  j = small_inl_job();
  j.dnl = true;
  expect_differs(j, "dnl");
  j = small_inl_job();
  j.adaptive = true;
  expect_differs(j, "adaptive");
  j = small_inl_job();
  j.min_chips += 1;
  expect_differs(j, "min_chips");
  j = small_inl_job();
  j.batch += 1;
  expect_differs(j, "batch");
  j = small_inl_job();
  j.ci_half_width = 0.5;
  expect_differs(j, "ci_half_width");
  j = small_inl_job();
  j.spec.nbits = 10;
  expect_differs(j, "spec.nbits");
  j = small_inl_job();
  j.spec.r_load = 75.0;
  expect_differs(j, "spec.r_load");
}

TEST(JobKey, SweepFieldsChangeTheKey) {
  SweepBasicJob j;
  j.tech = tech::generic_035um().nmos;
  j.cs = {0.1, 0.9, 5};
  j.sw = {0.1, 0.9, 5};
  const auto base_key = job_key(j);

  SweepBasicJob k = j;
  k.cs.steps = 6;
  EXPECT_NE(job_key(k), base_key) << "axis steps";
  k = j;
  k.sw.hi = 0.8;
  EXPECT_NE(job_key(k), base_key) << "axis bound";
  k = j;
  k.tech.a_vt *= 1.01;
  EXPECT_NE(job_key(k), base_key) << "tech mismatch coefficient";
  k = j;
  k.policy = core::MarginPolicy::kFixedMargin;
  EXPECT_NE(job_key(k), base_key) << "policy";

  // The cascode job with identical shared fields is a different kind,
  // hence a different key.
  SweepCascodeJob c;
  c.tech = j.tech;
  c.cs = j.cs;
  c.sw = j.sw;
  EXPECT_NE(job_key(Job(c)), base_key);
}

TEST(JobKey, ThreadCountIsNotPartOfTheKey) {
  // Results are thread-count invariant, so the key must not encode any
  // execution option: run the same job on different thread counts and
  // expect one cache entry total.
  ScratchDir dir("threads-key");
  RuntimeOptions opts;
  opts.cache_dir = dir.str();
  for (const int threads : {1, 2, 7}) {
    RuntimeOptions o = opts;
    o.threads = threads;
    (void)run_job(small_inl_job(), o);
  }
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    entries += e.path().extension() == ".bin" ? 1 : 0;
  }
  EXPECT_EQ(entries, 1u);
}

// --- Cached results are bit-identical to fresh computation -----------------

TEST(ResultRoundTrip, CachedInlYieldBitIdenticalAcrossThreads) {
  ScratchDir dir("roundtrip-inl");
  const InlYieldJob job = small_inl_job();

  RuntimeOptions cold;
  cold.threads = 1;
  cold.cache_dir = dir.str();
  const JobRecord first = run_job(job, cold);
  ASSERT_FALSE(first.cache_hit);
  const auto& fresh = std::get<YieldResult>(first.value);

  for (const int threads : {1, 2, 7}) {
    RuntimeOptions warm = cold;
    warm.threads = threads;
    const JobRecord again = run_job(job, warm);
    EXPECT_TRUE(again.cache_hit) << threads << " threads";
    const auto& cached = std::get<YieldResult>(again.value);
    EXPECT_EQ(cached.chips, fresh.chips);
    EXPECT_EQ(cached.pass, fresh.pass);
    EXPECT_EQ(cached.yield, fresh.yield);
    EXPECT_EQ(cached.ci95, fresh.ci95);

    // And the cached value must equal what a fresh run at this thread
    // count computes (thread-count invariance of the engine).
    RuntimeOptions nocache;
    nocache.threads = threads;
    const JobRecord direct = run_job(job, nocache);
    const auto& recomputed = std::get<YieldResult>(direct.value);
    EXPECT_EQ(cached.yield, recomputed.yield);
    EXPECT_EQ(cached.ci95, recomputed.ci95);
  }
}

TEST(ResultRoundTrip, CachedSweepBitIdenticalEveryField) {
  ScratchDir dir("roundtrip-sweep");
  SweepBasicJob job;
  job.tech = tech::generic_035um().nmos;
  job.cs = {0.1, 0.9, 6};
  job.sw = {0.1, 0.9, 6};

  RuntimeOptions opts;
  opts.threads = 2;
  opts.cache_dir = dir.str();
  const JobRecord first = run_job(job, opts);
  ASSERT_FALSE(first.cache_hit);
  const JobRecord second = run_job(job, opts);
  ASSERT_TRUE(second.cache_hit);

  const auto& a = std::get<SweepResult>(first.value).points;
  const auto& b = std::get<SweepResult>(second.value).points;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vod_cs, b[i].vod_cs);
    EXPECT_EQ(a[i].vod_sw, b[i].vod_sw);
    EXPECT_EQ(a[i].vod_cas, b[i].vod_cas);
    EXPECT_EQ(a[i].feasible, b[i].feasible);
    EXPECT_EQ(a[i].margin, b[i].margin);
    EXPECT_EQ(a[i].area, b[i].area);
    EXPECT_EQ(a[i].f_min_hz, b[i].f_min_hz);
    EXPECT_EQ(a[i].t_settle_s, b[i].t_settle_s);
    EXPECT_EQ(a[i].rout_unit, b[i].rout_unit);
  }
}

TEST(ResultRoundTrip, WarmRunDoesZeroChipEvaluations) {
  ScratchDir dir("warm-zero");
  RuntimeOptions opts;
  opts.cache_dir = dir.str();
  (void)run_job(small_inl_job(), opts);

  const std::int64_t before = dac::mc_chips_evaluated();
  const JobRecord warm = run_job(small_inl_job(), opts);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(dac::mc_chips_evaluated() - before, 0);
  EXPECT_EQ(warm.stats.cache_hits, 1);
  EXPECT_EQ(warm.stats.evaluated, 0);
}

// --- Runtime jobs match direct engine calls --------------------------------

TEST(JobEquivalence, FixedAndAdaptiveMatchDirectCalls) {
  const InlYieldJob fixed = small_inl_job();
  RuntimeOptions opts;
  opts.threads = 2;
  // Keep the JobRecord alive: std::get on the rvalue member would leave
  // the reference dangling once the temporary record is destroyed.
  const JobRecord rec_fixed = run_job(fixed, opts);
  const auto& rt_fixed = std::get<YieldResult>(rec_fixed.value);
  const auto direct_fixed =
      dac::inl_yield_mc(fixed.spec, fixed.sigma_unit, fixed.chips, fixed.seed,
                        fixed.limit, fixed.ref, 2);
  EXPECT_EQ(rt_fixed.yield, direct_fixed.yield);
  EXPECT_EQ(rt_fixed.pass, direct_fixed.pass);

  InlYieldJob adaptive = small_inl_job();
  adaptive.adaptive = true;
  adaptive.chips = 500;
  adaptive.min_chips = 64;
  adaptive.batch = 64;
  adaptive.ci_half_width = 0.05;
  const JobRecord rec_adaptive = run_job(adaptive, opts);
  const auto& rt_adaptive = std::get<YieldResult>(rec_adaptive.value);
  dac::AdaptiveMcOptions aopts;
  aopts.max_chips = adaptive.chips;
  aopts.min_chips = adaptive.min_chips;
  aopts.batch = adaptive.batch;
  aopts.ci_half_width = adaptive.ci_half_width;
  aopts.threads = 2;
  const auto direct_adaptive = dac::inl_yield_mc_adaptive(
      adaptive.spec, adaptive.sigma_unit, aopts, adaptive.seed,
      adaptive.limit, adaptive.ref);
  EXPECT_EQ(rt_adaptive.chips, direct_adaptive.chips);
  EXPECT_EQ(rt_adaptive.yield, direct_adaptive.yield);
  EXPECT_EQ(rt_adaptive.ci95, direct_adaptive.ci95);
}

// --- Corruption and eviction ----------------------------------------------

TEST(Cache, CorruptEntryRecomputesInsteadOfServingGarbage) {
  ScratchDir dir("corrupt");
  RuntimeOptions opts;
  opts.cache_dir = dir.str();
  const JobRecord fresh = run_job(small_inl_job(), opts);
  const auto& want = std::get<YieldResult>(fresh.value);

  // Flip one payload byte in the single stored entry.
  fs::path entry;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    if (e.path().extension() == ".bin") entry = e.path();
  }
  ASSERT_FALSE(entry.empty());
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-1, std::ios::end);  // last payload byte
    const char flip = static_cast<char>(0xa5);
    f.write(&flip, 1);
  }

  JobGraph graph(opts);
  const JobId id = graph.add(small_inl_job());
  graph.run_all();
  const JobRecord& redone = graph.record(id);
  EXPECT_FALSE(redone.cache_hit);
  EXPECT_EQ(graph.cache_counters().corrupt, 1);
  const auto& got = std::get<YieldResult>(redone.value);
  EXPECT_EQ(got.yield, want.yield);
  EXPECT_EQ(got.ci95, want.ci95);

  // The recompute overwrote the bad entry: next run hits again.
  const JobRecord healed = run_job(small_inl_job(), opts);
  EXPECT_TRUE(healed.cache_hit);
}

TEST(Cache, TruncatedEntryIsAMiss) {
  ScratchDir dir("truncate");
  CacheOptions copts;
  copts.dir = dir.str();

  const mathx::HashKey128 key{42, 43};
  const std::vector<unsigned char> payload(64, 0x5a);
  {
    ResultCache cache(copts);
    cache.put(key, payload);
    std::vector<unsigned char> back;
    ASSERT_TRUE(cache.get(key, back));
    EXPECT_EQ(back, payload);
  }
  const fs::path entry = dir.path / (key.hex() + ".bin");
  fs::resize_file(entry, fs::file_size(entry) / 2);

  ResultCache cache(copts);
  std::vector<unsigned char> back;
  EXPECT_FALSE(cache.get(key, back));
  EXPECT_EQ(cache.counters().corrupt, 1);
  EXPECT_FALSE(fs::exists(entry));  // dropped, not left to fail again
}

TEST(Cache, EvictsLeastRecentlyUsedToFitBudget) {
  ScratchDir dir("evict");
  CacheOptions copts;
  copts.dir = dir.str();
  copts.max_bytes = 400;  // roughly two 100-byte payloads + headers
  ResultCache cache(copts);

  std::vector<std::string> evicted;
  cache.on_evict = [&evicted](const std::string& key_hex, std::uint64_t) {
    evicted.push_back(key_hex);
  };

  const std::vector<unsigned char> payload(100, 1);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    cache.put(mathx::HashKey128{i, i}, payload);
  }
  EXPECT_GE(cache.counters().evictions, 1);
  EXPECT_FALSE(evicted.empty());
  // The most recent insert always survives.
  std::vector<unsigned char> back;
  EXPECT_TRUE(cache.get(mathx::HashKey128{4, 4}, back));
  std::uintmax_t total = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    total += fs::file_size(e.path());
  }
  EXPECT_LE(total, copts.max_bytes);
}

// --- Graph behavior --------------------------------------------------------

TEST(JobGraph, DeduplicatesIdenticalJobs) {
  JobGraph graph;
  const JobId a = graph.add(small_inl_job(), "first");
  const JobId b = graph.add(small_inl_job(), "second");
  EXPECT_EQ(a, b);
  EXPECT_EQ(graph.size(), 1u);

  InlYieldJob other = small_inl_job();
  other.seed += 1;
  EXPECT_NE(graph.add(other), a);
  EXPECT_EQ(graph.size(), 2u);
}

TEST(JobGraph, DependencyOrderVisibleInTrace) {
  ScratchDir dir("deps");
  RuntimeOptions opts;
  opts.threads = 2;
  opts.trace_path = (dir.path / "trace.jsonl").string();
  fs::create_directories(dir.path);

  JobGraph graph(opts);
  InlYieldJob a = small_inl_job();
  InlYieldJob b = small_inl_job();
  b.seed = 9;
  InlYieldJob c = small_inl_job();
  c.seed = 10;
  const JobId ia = graph.add(a, "upstream");
  const JobId ib = graph.add(b, "mid");
  const JobId ic = graph.add(c, "down");
  graph.depend(ib, ia);
  graph.depend(ic, ib);
  graph.run_all();

  // Replay the trace: each job's start must come after its prerequisite's
  // finish.
  std::ifstream in(opts.trace_path);
  ASSERT_TRUE(in.good());
  std::vector<std::pair<std::string, int>> events;  // (ev, job)
  std::string line;
  while (std::getline(in, line)) {
    JsonValue ev;
    std::string err;
    ASSERT_TRUE(parse_json(line, ev, &err)) << err;
    if (const auto* e = ev.find("ev")) {
      events.emplace_back(e->str,
                          static_cast<int>(ev.int_or("job", -1)));
    }
  }
  const auto index_of = [&events](const char* kind, int job) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].first == kind && events[i].second == job) return i;
    }
    return events.size();
  };
  ASSERT_LT(index_of("job_finish", ia), events.size());
  EXPECT_LT(index_of("job_finish", ia), index_of("job_start", ib));
  EXPECT_LT(index_of("job_finish", ib), index_of("job_start", ic));
  EXPECT_LT(index_of("run_start", -1), index_of("job_start", ia));
}

TEST(JobGraph, CycleThrows) {
  JobGraph graph;
  InlYieldJob a = small_inl_job();
  InlYieldJob b = small_inl_job();
  b.seed = 9;
  const JobId ia = graph.add(a);
  const JobId ib = graph.add(b);
  graph.depend(ib, ia);
  graph.depend(ia, ib);
  EXPECT_THROW(graph.run_all(), std::runtime_error);
  EXPECT_THROW(graph.depend(ia, ia), std::invalid_argument);
}

// --- JSON parser -----------------------------------------------------------

TEST(Json, ParsesRequestShapes) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(parse_json(
      R"({"schema":"csdac-request/1","n":-2.5e3,"flag":true,)"
      R"("axis":{"lo":0.1,"steps":8},"jobs":[1,"two",null]})",
      v, &err))
      << err;
  EXPECT_EQ(v.string_or("schema", ""), "csdac-request/1");
  EXPECT_EQ(v.number_or("n", 0), -2500.0);
  EXPECT_EQ(v.int_or("n", 0), -2500);
  EXPECT_TRUE(v.bool_or("flag", false));
  const JsonValue* axis = v.find("axis");
  ASSERT_NE(axis, nullptr);
  EXPECT_EQ(axis->number_or("lo", 0), 0.1);
  EXPECT_EQ(axis->int_or("steps", 0), 8);
  EXPECT_EQ(axis->int_or("missing", 77), 77);
  const JsonValue* jobs = v.find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->arr.size(), 3u);
  EXPECT_TRUE(jobs->arr[0].is_number());
  EXPECT_EQ(jobs->arr[1].str, "two");
  EXPECT_TRUE(jobs->arr[2].is_null());
}

TEST(Json, EscapesRoundTrip) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(parse_json(R"({"s":"a\"b\\c\ndé"})", v, &err)) << err;
  EXPECT_EQ(v.string_or("s", ""), "a\"b\\c\nd\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parse_json("", v, &err));
  EXPECT_FALSE(parse_json("{", v, &err));
  EXPECT_FALSE(parse_json(R"({"a":1,})", v, &err));
  EXPECT_FALSE(parse_json(R"({"a" 1})", v, &err));
  EXPECT_FALSE(parse_json("[1,2", v, &err));
  EXPECT_FALSE(parse_json("{}trailing", v, &err));
  EXPECT_FALSE(parse_json(R"({"x":1e999})", v, &err));  // non-finite
  EXPECT_FALSE(err.empty());
}

TEST(JsonLine, HostileStringsStayValidJson) {
  // Keys and values with quotes, backslashes, and control bytes must come
  // back intact through the parser — one escaper serves every writer.
  const std::string hostile = "a\"b\\c\nd\te\x01f";
  const JsonLine line = JsonLine()
                            .field("ev", hostile)
                            .field(hostile, "v")
                            .field("n", std::int64_t{-3});
  JsonValue v;
  std::string err;
  ASSERT_TRUE(parse_json(line.str(), v, &err)) << err << "\n" << line.str();
  EXPECT_EQ(v.string_or("ev", ""), hostile);
  EXPECT_EQ(v.string_or(hostile, ""), "v");
  EXPECT_EQ(v.int_or("n", 0), -3);
}

// --- Trace schema ----------------------------------------------------------

TEST(Trace, RunEmitsSchemaTagAndSpans) {
  ScratchDir dir("trace2");
  RuntimeOptions opts;
  opts.threads = 2;
  opts.trace_path = (dir.path / "trace.jsonl").string();
  fs::create_directories(dir.path);
  {
    JobGraph graph(opts);
    graph.add(small_inl_job(), "traced");
    graph.run_all();
  }

  std::ifstream in(opts.trace_path);
  ASSERT_TRUE(in.good());
  std::string line;
  bool saw_schema = false;
  std::vector<JsonValue> spans;
  while (std::getline(in, line)) {
    JsonValue ev;
    std::string err;
    ASSERT_TRUE(parse_json(line, ev, &err)) << err << "\n" << line;
    const std::string kind = ev.string_or("ev", "");
    if (kind == "run_start") {
      EXPECT_EQ(ev.string_or("schema", ""), kTraceSchema);
      saw_schema = true;
    } else if (kind == "span") {
      spans.push_back(ev);
    }
  }
  EXPECT_TRUE(saw_schema);
  ASSERT_FALSE(spans.empty());

  bool saw_run = false, saw_job = false;
  std::int64_t run_id = 0, job_parent = -1;
  for (const auto& s : spans) {
    EXPECT_GT(s.int_or("id", 0), 0);
    EXPECT_GE(s.int_or("dur_us", -1), 0);
    const std::string name = s.string_or("name", "");
    if (name == "graph.run") {
      saw_run = true;
      run_id = s.int_or("id", 0);
    } else if (name == "graph.job") {
      saw_job = true;
      job_parent = s.int_or("parent", -1);
      EXPECT_EQ(s.string_or("attr.label", ""), "traced");
      EXPECT_EQ(s.string_or("attr.cache", ""), "off");
    }
  }
  EXPECT_TRUE(saw_run);
  ASSERT_TRUE(saw_job);
  // The job span nests under the run span.
  EXPECT_EQ(job_parent, run_id);
}

}  // namespace
}  // namespace csdac::runtime
