// Runtime integration of the rare-event yield jobs: cache-key discipline
// (every result-determining field of InlYieldIsJob / InlYieldStratJob /
// InlYieldBridgeJob feeds the key, the three kinds never collide),
// persistent-store round trips that are bit-identical to fresh
// computation, equivalence with the direct dac:: estimator calls, and a
// warm pass that draws zero proposal chips.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "dac/rare_event.hpp"
#include "dac/static_analysis.hpp"
#include "runtime/graph.hpp"

namespace csdac::runtime {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* tag) {
    path = fs::path(testing::TempDir()) /
           (std::string("csdac-") + tag + "-" +
            std::to_string(static_cast<unsigned long long>(
                reinterpret_cast<std::uintptr_t>(this))));
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

core::DacSpec spec8() {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  return spec;
}

InlYieldIsJob small_is_job() {
  InlYieldIsJob j;
  j.spec = spec8();
  j.sigma_unit = 0.0259427;
  j.chips = 300;
  j.seed = 77;
  return j;
}

InlYieldStratJob small_strat_job() {
  InlYieldStratJob j;
  j.spec = spec8();
  j.sigma_unit = 0.0259427;
  j.strata = 4;
  j.chips = 300;
  j.seed = 77;
  return j;
}

InlYieldBridgeJob small_bridge_job() {
  InlYieldBridgeJob j;
  j.spec = spec8();
  j.sigma_unit = 0.0259427;
  return j;
}

TEST(RareJobKey, KindsNeverCollide) {
  // Same spec/sigma/seed everywhere: only the kind tag separates them.
  const auto k_is = job_key(small_is_job());
  const auto k_strat = job_key(small_strat_job());
  const auto k_bridge = job_key(small_bridge_job());
  EXPECT_NE(k_is, k_strat);
  EXPECT_NE(k_is, k_bridge);
  EXPECT_NE(k_strat, k_bridge);
  InlYieldJob plain;
  plain.spec = spec8();
  plain.sigma_unit = 0.0259427;
  plain.chips = 300;
  plain.seed = 77;
  EXPECT_NE(job_key(plain), k_is);
}

TEST(RareJobKey, EveryIsFieldChangesTheKey) {
  const auto base = job_key(small_is_job());
  InlYieldIsJob j = small_is_job();
  j.sigma_unit *= 1.0000001;
  EXPECT_NE(job_key(j), base) << "sigma_unit";
  j = small_is_job();
  j.sigma_scale = 2.3;
  EXPECT_NE(job_key(j), base) << "sigma_scale";
  j = small_is_job();
  j.modes += 1;
  EXPECT_NE(job_key(j), base) << "modes";
  j = small_is_job();
  j.chips += 1;
  EXPECT_NE(job_key(j), base) << "chips";
  j = small_is_job();
  j.seed += 1;
  EXPECT_NE(job_key(j), base) << "seed";
  j = small_is_job();
  j.limit = 0.6;
  EXPECT_NE(job_key(j), base) << "limit";
  j = small_is_job();
  j.ref = dac::InlReference::kEndpoint;
  EXPECT_NE(job_key(j), base) << "ref";
  j = small_is_job();
  j.spec.nbits = 10;
  EXPECT_NE(job_key(j), base) << "spec.nbits";
  EXPECT_EQ(job_key(small_is_job()), base);
}

TEST(RareJobKey, EveryStratAndBridgeFieldChangesTheKey) {
  const auto strat_base = job_key(small_strat_job());
  InlYieldStratJob s = small_strat_job();
  s.strata += 1;
  EXPECT_NE(job_key(s), strat_base) << "strata";
  s = small_strat_job();
  s.chips += 2;
  EXPECT_NE(job_key(s), strat_base) << "chips";
  s = small_strat_job();
  s.seed += 1;
  EXPECT_NE(job_key(s), strat_base) << "seed";
  s = small_strat_job();
  s.ref = dac::InlReference::kEndpoint;
  EXPECT_NE(job_key(s), strat_base) << "ref";

  const auto bridge_base = job_key(small_bridge_job());
  InlYieldBridgeJob b = small_bridge_job();
  b.sigma_unit *= 1.0000001;
  EXPECT_NE(job_key(b), bridge_base) << "sigma_unit";
  b = small_bridge_job();
  b.limit = 0.6;
  EXPECT_NE(job_key(b), bridge_base) << "limit";
}

TEST(RareRoundTrip, CachedIsResultBitIdenticalAndRecomputesNothing) {
  ScratchDir dir("roundtrip-rare-is");
  RuntimeOptions cold;
  cold.threads = 1;
  cold.cache_dir = dir.str();
  const JobRecord first = run_job(small_is_job(), cold);
  ASSERT_FALSE(first.cache_hit);
  const auto& fresh = std::get<IsYieldResult>(first.value);

  const auto direct = dac::inl_yield_is(
      spec8(), 0.0259427, 2.2, 8, 300, 77, 0.5, dac::InlReference::kBestFit,
      1);
  EXPECT_EQ(fresh.chips, direct.chips);
  EXPECT_EQ(fresh.fails, direct.fails);
  EXPECT_EQ(fresh.yield, direct.yield);
  EXPECT_EQ(fresh.ci95, direct.ci95);
  EXPECT_EQ(fresh.ess, direct.ess);
  EXPECT_EQ(fresh.low_ess, direct.low_ess);

  const std::int64_t evals0 = dac::mc_chips_evaluated();
  for (const int threads : {1, 3}) {
    RuntimeOptions warm = cold;
    warm.threads = threads;
    const JobRecord again = run_job(small_is_job(), warm);
    EXPECT_TRUE(again.cache_hit) << threads << " threads";
    const auto& cached = std::get<IsYieldResult>(again.value);
    EXPECT_EQ(cached.fails, fresh.fails);
    EXPECT_EQ(cached.yield, fresh.yield);
    EXPECT_EQ(cached.ci95, fresh.ci95);
    EXPECT_EQ(cached.ess, fresh.ess);
    EXPECT_EQ(cached.ess_fraction, fresh.ess_fraction);
    EXPECT_EQ(cached.log_weight_max, fresh.log_weight_max);
    EXPECT_EQ(cached.log_weight_min, fresh.log_weight_min);
    EXPECT_EQ(cached.low_ess, fresh.low_ess);
  }
  EXPECT_EQ(dac::mc_chips_evaluated(), evals0)
      << "warm rare-event passes must not draw chips";
}

TEST(RareRoundTrip, CachedStratAndBridgeBitIdentical) {
  ScratchDir dir("roundtrip-rare-sb");
  RuntimeOptions opts;
  opts.threads = 2;
  opts.cache_dir = dir.str();

  const JobRecord s1 = run_job(small_strat_job(), opts);
  ASSERT_FALSE(s1.cache_hit);
  const JobRecord s2 = run_job(small_strat_job(), opts);
  ASSERT_TRUE(s2.cache_hit);
  const auto& sf = std::get<StratYieldResult>(s1.value);
  const auto& sc = std::get<StratYieldResult>(s2.value);
  EXPECT_EQ(sc.chips, sf.chips);
  EXPECT_EQ(sc.pairs, sf.pairs);
  EXPECT_EQ(sc.strata, sf.strata);
  EXPECT_EQ(sc.yield, sf.yield);
  EXPECT_EQ(sc.ci95, sf.ci95);
  const auto s_direct = dac::inl_yield_stratified(
      spec8(), 0.0259427, 4, 300, 77, 0.5, dac::InlReference::kBestFit, 2);
  EXPECT_EQ(sf.yield, s_direct.yield);
  EXPECT_EQ(sf.pairs, s_direct.pairs);

  const JobRecord b1 = run_job(small_bridge_job(), opts);
  ASSERT_FALSE(b1.cache_hit);
  const JobRecord b2 = run_job(small_bridge_job(), opts);
  ASSERT_TRUE(b2.cache_hit);
  const auto& bf = std::get<BridgeYieldResult>(b1.value);
  const auto& bc = std::get<BridgeYieldResult>(b2.value);
  EXPECT_EQ(bc.yield, bf.yield);
  EXPECT_EQ(bc.c, bf.c);
  EXPECT_EQ(bc.sigma_inl, bf.sigma_inl);
  const auto b_direct = dac::inl_yield_bridge(spec8(), 0.0259427, 0.5);
  EXPECT_EQ(bf.yield, b_direct.yield);
}

TEST(RareRoundTrip, KindNamesAreStable) {
  EXPECT_EQ(kind_name(job_kind(Job(small_is_job()))), "inl_yield_is");
  EXPECT_EQ(kind_name(job_kind(Job(small_strat_job()))), "inl_yield_strat");
  EXPECT_EQ(kind_name(job_kind(Job(small_bridge_job()))), "inl_yield_bridge");
}

}  // namespace
}  // namespace csdac::runtime
