// Runtime + serve integration of the SPICE-in-the-loop mismatch MC job:
// cache-key discipline (every result-determining field feeds the key),
// codec round trips, equivalence with the direct dacgen runner, a warm
// cache pass that solves zero MNA systems, and the request-parser ceilings
// that keep hostile spice_mc requests from sizing transistor-level loops.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/sizer.hpp"
#include "dac/static_analysis.hpp"
#include "dacgen/spice_mc.hpp"
#include "runtime/graph.hpp"
#include "serve/request.hpp"
#include "tech/tech.hpp"

namespace csdac::runtime {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* tag) {
    path = fs::path(testing::TempDir()) /
           (std::string("csdac-") + tag + "-" +
            std::to_string(static_cast<unsigned long long>(
                reinterpret_cast<std::uintptr_t>(this))));
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

SpiceMcJob small_job() {
  SpiceMcJob j;
  j.spec.nbits = 4;
  j.spec.binary_bits = 2;
  j.tech = tech::generic_035um().nmos;
  j.chips = 3;
  j.seed = 11;
  j.limit = 0.5;
  return j;
}

TEST(SpiceJobKey, EveryFieldChangesTheKey) {
  const auto base = job_key(small_job());
  SpiceMcJob j = small_job();
  j.spec.nbits = 5;
  EXPECT_NE(job_key(j), base) << "spec.nbits";
  j = small_job();
  j.tech.a_vt *= 1.0000001;
  EXPECT_NE(job_key(j), base) << "tech.a_vt";
  j = small_job();
  j.vod_cs = 0.3;
  EXPECT_NE(job_key(j), base) << "vod_cs";
  j = small_job();
  j.vod_sw = 0.25;
  EXPECT_NE(job_key(j), base) << "vod_sw";
  j = small_job();
  j.vod_cas = 0.25;
  EXPECT_NE(job_key(j), base) << "vod_cas";
  j = small_job();
  j.cascode = false;
  EXPECT_NE(job_key(j), base) << "cascode";
  j = small_job();
  j.chips += 1;
  EXPECT_NE(job_key(j), base) << "chips";
  j = small_job();
  j.seed += 1;
  EXPECT_NE(job_key(j), base) << "seed";
  j = small_job();
  j.limit = 0.6;
  EXPECT_NE(job_key(j), base) << "limit";
  j = small_job();
  j.sigma_scale = 2.0;
  EXPECT_NE(job_key(j), base) << "sigma_scale";
  j = small_job();
  j.differential = false;
  EXPECT_NE(job_key(j), base) << "differential";
  j = small_job();
  j.with_caps = true;
  EXPECT_NE(job_key(j), base) << "with_caps";
  EXPECT_EQ(job_key(small_job()), base);
}

TEST(SpiceJobKey, KindNameIsStable) {
  EXPECT_EQ(kind_name(job_kind(Job(small_job()))), "spice_mc");
}

TEST(SpiceJobs, ResultCodecRoundTripsAndRejectsTrailing) {
  const JobValue v = execute_job(small_job(), 1, nullptr);
  mathx::ByteWriter w;
  encode_value(v, w);
  {
    mathx::ByteReader r(w.data());
    JobValue out;
    ASSERT_TRUE(decode_value(JobKind::kSpiceMc, r, out));
    const auto& a = std::get<SpiceMcResult>(v);
    const auto& b = std::get<SpiceMcResult>(out);
    EXPECT_EQ(b.chips, a.chips);
    EXPECT_EQ(b.pass, a.pass);
    EXPECT_EQ(b.yield, a.yield);
    EXPECT_EQ(b.ci95, a.ci95);
    EXPECT_EQ(b.inl_mean, a.inl_mean);
    EXPECT_EQ(b.inl_worst, a.inl_worst);
    EXPECT_EQ(b.newton_iters, a.newton_iters);
    EXPECT_EQ(b.factorizations, a.factorizations);
    EXPECT_EQ(b.refactorizations, a.refactorizations);
    EXPECT_EQ(b.warm_starts, a.warm_starts);
    EXPECT_EQ(b.warm_start_hits, a.warm_start_hits);
    EXPECT_EQ(b.device_evals, a.device_evals);
    EXPECT_EQ(b.warm_start_hit_rate, a.warm_start_hit_rate);
  }
  {
    auto bytes = w.data();
    bytes.push_back(0);
    mathx::ByteReader r(bytes);
    JobValue out;
    EXPECT_FALSE(decode_value(JobKind::kSpiceMc, r, out))
        << "trailing byte must fail strict decode";
  }
}

TEST(SpiceJobs, MatchesDirectRunnerAndWarmPassSolvesNothing) {
  ScratchDir dir("roundtrip-spice");
  RuntimeOptions cold;
  cold.threads = 1;
  cold.cache_dir = dir.str();
  const JobRecord first = run_job(small_job(), cold);
  ASSERT_FALSE(first.cache_hit);
  const auto& fresh = std::get<SpiceMcResult>(first.value);
  EXPECT_EQ(fresh.chips, 3);
  EXPECT_GE(fresh.yield, 0.0);
  EXPECT_LE(fresh.yield, 1.0);
  EXPECT_GT(fresh.newton_iters, 0);
  EXPECT_GT(fresh.device_evals, 0);

  // Equivalence with the direct dacgen call (same sizing path as the
  // runner).
  const SpiceMcJob j = small_job();
  const core::CellSizer sizer(j.tech, j.spec);
  const core::SizedCell cell =
      sizer.size_cascode(j.vod_cs, j.vod_sw, j.vod_cas);
  dacgen::SpiceMcOptions o;
  o.chips = j.chips;
  o.seed = j.seed;
  o.limit = j.limit;
  const auto direct = dacgen::spice_mismatch_mc(j.spec, cell, j.tech, o);
  EXPECT_EQ(fresh.pass, direct.pass);
  EXPECT_EQ(fresh.yield, direct.yield);
  EXPECT_EQ(fresh.inl_mean, direct.inl_mean);
  EXPECT_EQ(fresh.inl_worst, direct.inl_worst);
  EXPECT_EQ(fresh.newton_iters, direct.newton_iters);
  EXPECT_EQ(fresh.device_evals, direct.device_evals);

  // Warm pass: bit-identical result out of the cache, zero transistor-level
  // chips evaluated (nothing is rebuilt or re-solved).
  const std::int64_t evals0 = dac::mc_chips_evaluated();
  for (const int threads : {1, 3}) {
    RuntimeOptions warm = cold;
    warm.threads = threads;
    const JobRecord again = run_job(small_job(), warm);
    EXPECT_TRUE(again.cache_hit) << threads << " threads";
    const auto& cached = std::get<SpiceMcResult>(again.value);
    EXPECT_EQ(cached.pass, fresh.pass);
    EXPECT_EQ(cached.yield, fresh.yield);
    EXPECT_EQ(cached.ci95, fresh.ci95);
    EXPECT_EQ(cached.inl_mean, fresh.inl_mean);
    EXPECT_EQ(cached.inl_worst, fresh.inl_worst);
    EXPECT_EQ(cached.newton_iters, fresh.newton_iters);
    EXPECT_EQ(cached.refactorizations, fresh.refactorizations);
    EXPECT_EQ(cached.warm_start_hits, fresh.warm_start_hits);
    EXPECT_EQ(cached.device_evals, fresh.device_evals);
  }
  EXPECT_EQ(dac::mc_chips_evaluated(), evals0)
      << "warm spice_mc passes must not touch the solver";
}

TEST(SpiceJobs, WarmStartPaysOffAcrossCorners) {
  const JobValue v = execute_job(small_job(), 1, nullptr);
  const auto& r = std::get<SpiceMcResult>(v);
  // chips-1 corners reuse the previous corner's operating point per code.
  EXPECT_GT(r.warm_starts, 0);
  EXPECT_GT(r.warm_start_hits, 0);
  EXPECT_GT(r.warm_start_hit_rate, 0.0);
  EXPECT_LE(r.warm_start_hit_rate, 1.0);
  // The 4-bit fixture sits below the kAuto sparse threshold on purpose —
  // small circuits stay on the dense path, so no sparse factorizations
  // are expected here (the sparse counters are covered at array scale by
  // the spice equivalence suite).
  EXPECT_EQ(r.factorizations, 0);
  EXPECT_EQ(r.refactorizations, 0);
}

// --- Serve-layer parsing ---------------------------------------------------

std::string request_with(const std::string& job_json) {
  return std::string("{\"schema\":\"csdac-request/1\",\"jobs\":[") +
         job_json + "]}";
}

TEST(SpiceServeParse, HappyPath) {
  const auto jobs = serve::parse_request_text(request_with(
      "{\"kind\":\"spice_mc\",\"spec\":{\"nbits\":6,\"binary_bits\":2},"
      "\"tech\":\"generic_035um\",\"vod_cs\":0.3,\"vod_sw\":0.22,"
      "\"vod_cas\":0.21,\"cascode\":true,\"chips\":8,\"seed\":4,"
      "\"limit\":0.4,\"sigma_scale\":1.5,\"differential\":false,"
      "\"with_caps\":false}"));
  ASSERT_EQ(jobs.size(), 1u);
  const auto& j = std::get<SpiceMcJob>(jobs[0].job);
  EXPECT_EQ(j.spec.nbits, 6);
  EXPECT_EQ(j.spec.binary_bits, 2);
  EXPECT_DOUBLE_EQ(j.vod_cs, 0.3);
  EXPECT_DOUBLE_EQ(j.vod_sw, 0.22);
  EXPECT_DOUBLE_EQ(j.vod_cas, 0.21);
  EXPECT_TRUE(j.cascode);
  EXPECT_EQ(j.chips, 8);
  EXPECT_EQ(j.seed, 4u);
  EXPECT_DOUBLE_EQ(j.limit, 0.4);
  EXPECT_DOUBLE_EQ(j.sigma_scale, 1.5);
  EXPECT_FALSE(j.differential);
}

TEST(SpiceServeParse, DefaultsApply) {
  const auto jobs = serve::parse_request_text(request_with(
      "{\"kind\":\"spice_mc\",\"spec\":{\"nbits\":4,\"binary_bits\":2}}"));
  ASSERT_EQ(jobs.size(), 1u);
  const auto& j = std::get<SpiceMcJob>(jobs[0].job);
  EXPECT_EQ(j.chips, 16);
  EXPECT_EQ(j.seed, 1000u);
  EXPECT_TRUE(j.cascode);
  EXPECT_TRUE(j.differential);
  EXPECT_FALSE(j.with_caps);
}

void expect_bad_job(const std::string& job_json, const char* what) {
  try {
    serve::parse_request_text(request_with(job_json));
    FAIL() << "expected rejection: " << what;
  } catch (const serve::RequestError& e) {
    EXPECT_EQ(e.code(), "bad_job") << what;
  }
}

TEST(SpiceServeParse, RejectsHostileFields) {
  const std::string base =
      "{\"kind\":\"spice_mc\",\"spec\":{\"nbits\":6,\"binary_bits\":2}";
  // 2^nbits MNA systems per corner: both resolution and corner count are
  // capped far below the behavioral-MC ceilings.
  expect_bad_job(
      "{\"kind\":\"spice_mc\",\"spec\":{\"nbits\":10,\"binary_bits\":3}}",
      "nbits above spice ceiling");
  expect_bad_job(base + ",\"chips\":65}", "chips above spice ceiling");
  expect_bad_job(base + ",\"chips\":0}", "zero chips");
  expect_bad_job(base + ",\"sigma_scale\":-1}", "negative sigma_scale");
  expect_bad_job(base + ",\"sigma_scale\":9}", "sigma_scale ceiling");
  expect_bad_job(base + ",\"limit\":0}", "zero limit");
  expect_bad_job(base + ",\"vod_cs\":3.0}", "vod_cs above range");
  expect_bad_job(base + ",\"vod_sw\":0.0}", "zero vod_sw");
  expect_bad_job(base + ",\"tech\":\"tsmc7\"}", "unknown tech");
}

}  // namespace
}  // namespace csdac::runtime
