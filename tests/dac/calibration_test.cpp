#include "dac/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/accuracy.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/stats.hpp"

namespace csdac::dac {
namespace {

core::DacSpec spec12() { return core::DacSpec{}; }

TEST(Calibration, PerfectTrimLeavesOnlyQuantization) {
  const auto spec = spec12();
  mathx::Xoshiro256 rng(1);
  // Large mismatch, generous range, fine cal DAC.
  const auto raw = draw_source_errors(spec, 0.02, rng);
  CalibrationOptions opts;
  opts.range_lsb = 8.0;
  opts.bits = 10;
  const auto fixed = calibrate(spec, raw, opts, rng);
  const double nominal = spec.unary_weight();
  for (double w : fixed.unary) {
    EXPECT_LE(std::abs(w - nominal), 0.5 * opts.step_lsb() + 1e-12);
  }
}

TEST(Calibration, SaturatesOutsideRange) {
  const auto spec = spec12();
  mathx::Xoshiro256 rng(2);
  SourceErrors chip = ideal_sources(spec);
  chip.unary[0] += 10.0;  // way outside a +/-1 LSB range
  CalibrationOptions opts;
  opts.range_lsb = 2.0;
  opts.bits = 8;
  const auto fixed = calibrate(spec, chip, opts, rng);
  // Trim clamps at half range: residual = 10 - 1 = 9 LSB.
  EXPECT_NEAR(fixed.unary[0] - spec.unary_weight(), 9.0, 0.01);
}

TEST(Calibration, MeasurementNoiseLimitsResidual) {
  const auto spec = spec12();
  mathx::Xoshiro256 rng(3);
  const auto raw = draw_source_errors(spec, 0.01, rng);
  CalibrationOptions opts;
  opts.bits = 12;  // quantization negligible
  opts.range_lsb = 4.0;
  opts.measure_noise_lsb = 0.05;
  const auto fixed = calibrate(spec, raw, opts, rng);
  mathx::RunningStats resid;
  for (double w : fixed.unary) resid.add(w - spec.unary_weight());
  EXPECT_NEAR(resid.stddev(), 0.05, 0.01);
}

TEST(Calibration, YieldRecoveredFromUndersizedSources) {
  // The headline use-case: shrink the CS far below the eq. (2) area (4x the
  // eq. (1) sigma would tank the yield) and recover it with calibration.
  const auto spec = spec12();
  const double sigma = 4.0 * core::unit_sigma_spec(spec.nbits, 0.997);
  CalibrationOptions opts;
  opts.range_lsb = 2.0;
  opts.bits = 7;
  const auto y = calibrated_inl_yield(spec, sigma, opts, 150, 77);
  EXPECT_LT(y.yield_before, 0.8);
  EXPECT_GT(y.yield_after, 0.97);
}

TEST(Calibration, MoreBitsNeverHurt) {
  const auto spec = spec12();
  const double sigma = 3.0 * core::unit_sigma_spec(spec.nbits, 0.997);
  double prev = -1.0;
  for (int bits : {2, 4, 8}) {
    CalibrationOptions opts;
    opts.range_lsb = 2.0;
    opts.bits = bits;
    const auto y = calibrated_inl_yield(spec, sigma, opts, 100, 5);
    EXPECT_GE(y.yield_after + 0.03, prev) << "bits " << bits;
    prev = y.yield_after;
  }
}

TEST(Calibration, YieldMcBitIdenticalForThreads127AndReruns) {
  // calibration_yield_mc runs on the shared engine with two per-chip
  // streams (mismatch draw + measurement noise): the result must be a pure
  // function of (seed, chips) for any thread count.
  const auto spec = spec12();
  const double sigma = 4.0 * core::unit_sigma_spec(spec.nbits, 0.997);
  CalibrationOptions opts;
  opts.range_lsb = 2.0;
  opts.bits = 6;
  opts.measure_noise_lsb = 0.05;
  const auto ref = calibration_yield_mc(spec, sigma, opts, 120, 77, 0.5, 1);
  for (int threads : {1, 2, 7}) {
    for (int rerun = 0; rerun < 2; ++rerun) {
      const auto y =
          calibration_yield_mc(spec, sigma, opts, 120, 77, 0.5, threads);
      EXPECT_DOUBLE_EQ(y.yield_before, ref.yield_before)
          << "threads " << threads << " rerun " << rerun;
      EXPECT_DOUBLE_EQ(y.yield_after, ref.yield_after)
          << "threads " << threads << " rerun " << rerun;
    }
  }
  EXPECT_EQ(ref.stats.evaluated, 120);
  EXPECT_THROW(calibration_yield_mc(spec, sigma, opts, 120, 77, 0.5, -1),
               std::invalid_argument);
}

TEST(Calibration, WorkspaceKernelBitIdenticalToLegacyAcrossThreads) {
  // The workspace MC kernel reuses ONE generator for both per-chip streams
  // (mismatch draw, then calibration noise); re-seeding via stream_rng_into
  // must make that indistinguishable from the legacy two-generator chain.
  const auto spec = spec12();
  const double sigma = 4.0 * core::unit_sigma_spec(spec.nbits, 0.997);
  CalibrationOptions opts;
  opts.measure_noise_lsb = 0.05;  // exercise the second RNG stream too
  for (int threads : {1, 2, 7}) {
    const auto ws =
        calibration_yield_mc(spec, sigma, opts, 120, 77, 0.5, threads);
    const auto legacy =
        calibration_yield_mc_legacy(spec, sigma, opts, 120, 77, 0.5, threads);
    EXPECT_DOUBLE_EQ(ws.yield_before, legacy.yield_before)
        << "threads " << threads;
    EXPECT_DOUBLE_EQ(ws.yield_after, legacy.yield_after)
        << "threads " << threads;
  }
}

TEST(Calibration, CalibrateIntoMatchesCalibrate) {
  const auto spec = spec12();
  mathx::Xoshiro256 draw_rng(44);
  const auto raw = draw_source_errors(spec, 0.01, draw_rng);
  CalibrationOptions opts;
  opts.measure_noise_lsb = 0.1;
  mathx::Xoshiro256 a(7), b(7);
  const auto expected = calibrate(spec, raw, opts, a);
  SourceErrors out;
  calibrate_into(spec, raw, opts, b, out);
  EXPECT_EQ(out.unary, expected.unary);
  EXPECT_EQ(out.binary, expected.binary);
}

TEST(Calibration, LegacyNameForwardsToEngine) {
  const auto spec = spec12();
  const double sigma = 3.0 * core::unit_sigma_spec(spec.nbits, 0.997);
  const auto a = calibrated_inl_yield(spec, sigma, CalibrationOptions{}, 80,
                                      5);
  const auto b = calibration_yield_mc(spec, sigma, CalibrationOptions{}, 80,
                                      5);
  EXPECT_DOUBLE_EQ(a.yield_before, b.yield_before);
  EXPECT_DOUBLE_EQ(a.yield_after, b.yield_after);
}

TEST(Calibration, BinarySourcesUntouched) {
  const auto spec = spec12();
  mathx::Xoshiro256 rng(9);
  const auto raw = draw_source_errors(spec, 0.01, rng);
  const auto fixed = calibrate(spec, raw, CalibrationOptions{}, rng);
  EXPECT_EQ(fixed.binary, raw.binary);
}

TEST(Calibration, RejectsBadOptions) {
  const auto spec = spec12();
  mathx::Xoshiro256 rng(1);
  const auto raw = ideal_sources(spec);
  CalibrationOptions bad;
  bad.range_lsb = 0.0;
  EXPECT_THROW(calibrate(spec, raw, bad, rng), std::invalid_argument);
  bad = CalibrationOptions{};
  bad.bits = 0;
  EXPECT_THROW(calibrate(spec, raw, bad, rng), std::invalid_argument);
  EXPECT_THROW(
      calibrated_inl_yield(spec, 0.01, CalibrationOptions{}, 0, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace csdac::dac
