#include "dac/dac_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/accuracy.hpp"
#include "mathx/stats.hpp"

namespace csdac::dac {
namespace {

core::DacSpec small_spec() {
  core::DacSpec s;
  s.nbits = 8;
  s.binary_bits = 3;
  return s;
}

TEST(DacModel, IdealTransferIsStaircase) {
  const auto spec = small_spec();
  const SegmentedDac dac(spec, ideal_sources(spec));
  for (int c = 0; c < 256; ++c) {
    EXPECT_DOUBLE_EQ(dac.level(c), static_cast<double>(c)) << "code " << c;
  }
}

TEST(DacModel, ThermometerDecode) {
  const auto spec = small_spec();  // b=3, m=5
  const SegmentedDac dac(spec, ideal_sources(spec));
  EXPECT_EQ(dac.unary_count(0), 0);
  EXPECT_EQ(dac.unary_count(7), 0);
  EXPECT_EQ(dac.unary_count(8), 1);
  EXPECT_EQ(dac.unary_count(255), 31);
  EXPECT_EQ(dac.binary_field(0), 0);
  EXPECT_EQ(dac.binary_field(7), 7);
  EXPECT_EQ(dac.binary_field(8), 0);
  EXPECT_EQ(dac.binary_field(13), 5);
}

TEST(DacModel, TwelveBitPaperSegmentation) {
  core::DacSpec spec;  // defaults: 12 bit, b=4
  EXPECT_EQ(spec.num_unary(), 255);
  EXPECT_EQ(spec.unary_weight(), 16);
  EXPECT_EQ(spec.total_units(), 4095);
  const SegmentedDac dac(spec, ideal_sources(spec));
  EXPECT_DOUBLE_EQ(dac.level(4095), 4095.0);
  EXPECT_DOUBLE_EQ(dac.level(16), 16.0);
}

TEST(DacModel, DrawnErrorsHaveRightStatistics) {
  core::DacSpec spec;
  const double sigma = 0.01;
  mathx::Xoshiro256 rng(5);
  mathx::RunningStats unary_stats;
  for (int trial = 0; trial < 50; ++trial) {
    const auto e = draw_source_errors(spec, sigma, rng);
    for (double w : e.unary) unary_stats.add(w);
  }
  // Unary weight 16, sigma 0.01*sqrt(16) = 0.04 LSB.
  EXPECT_NEAR(unary_stats.mean(), 16.0, 0.005);
  EXPECT_NEAR(unary_stats.stddev(), 0.04, 0.003);
}

TEST(DacModel, MonotonicCodesForSmallMismatch) {
  core::DacSpec spec;
  mathx::Xoshiro256 rng(7);
  const auto e = draw_source_errors(spec, 0.0026, rng);
  const SegmentedDac dac(spec, e);
  const auto t = dac.transfer();
  int violations = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] <= t[i - 1]) ++violations;
  }
  // sigma(DNL) ~ sqrt(2^5)*0.0026 = 0.015 LSB: monotonicity is certain.
  EXPECT_EQ(violations, 0);
}

TEST(DacModel, PartialSumsMatchLevels) {
  core::DacSpec spec;
  mathx::Xoshiro256 rng(11);
  const SegmentedDac dac(spec, draw_source_errors(spec, 0.01, rng));
  // A code with empty binary field is exactly the unary prefix sum.
  EXPECT_DOUBLE_EQ(dac.level(5 * 16), dac.unary_partial_sum(5));
  EXPECT_DOUBLE_EQ(dac.unary_partial_sum(0), 0.0);
}

TEST(DacModel, ErrorsOnBadInput) {
  core::DacSpec spec;
  const SegmentedDac dac(spec, ideal_sources(spec));
  EXPECT_THROW(dac.level(-1), std::out_of_range);
  EXPECT_THROW(dac.level(4096), std::out_of_range);
  EXPECT_THROW(dac.unary_partial_sum(-1), std::out_of_range);
  EXPECT_THROW(dac.unary_partial_sum(256), std::out_of_range);
  SourceErrors bad = ideal_sources(spec);
  bad.unary.pop_back();
  EXPECT_THROW(SegmentedDac(spec, bad), std::invalid_argument);
  mathx::Xoshiro256 rng(1);
  EXPECT_THROW(draw_source_errors(spec, -0.1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::dac
