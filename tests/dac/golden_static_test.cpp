// Golden regression for static linearity: a fixed-seed 8-bit transfer
// function with checked-in expected INL/DNL vectors. Guards
// analyze_transfer, the DAC model, and the (seed, chip) RNG stream
// derivation against silent refactor drift. If a change to any of these is
// INTENTIONAL, regenerate the golden file (see tools/gen_golden_static.cpp)
// and say so in the commit message.
#include <gtest/gtest.h>

#include <vector>

#include "dac/static_analysis.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {
namespace {

#include "golden_static_8bit.inc"

constexpr double kTol = 1e-12;

std::vector<double> golden_transfer() {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  mathx::Xoshiro256 rng = mathx::stream_rng(8811, 0);
  return SegmentedDac(spec, draw_source_errors(spec, 0.01, rng)).transfer();
}

TEST(GoldenStatic, TransferMatchesCheckedInLevels) {
  const auto levels = golden_transfer();
  ASSERT_EQ(levels.size(), std::size(kGoldenLevels));
  for (std::size_t i = 0; i < levels.size(); ++i) {
    EXPECT_NEAR(levels[i], kGoldenLevels[i], kTol) << "code " << i;
  }
}

TEST(GoldenStatic, BestFitInlDnlMatchGolden) {
  const auto m = analyze_transfer(golden_transfer(), InlReference::kBestFit);
  ASSERT_EQ(m.inl.size(), std::size(kGoldenInlBestFit));
  ASSERT_EQ(m.dnl.size(), std::size(kGoldenDnlBestFit));
  for (std::size_t i = 0; i < m.inl.size(); ++i) {
    EXPECT_NEAR(m.inl[i], kGoldenInlBestFit[i], kTol) << "code " << i;
  }
  for (std::size_t i = 0; i < m.dnl.size(); ++i) {
    EXPECT_NEAR(m.dnl[i], kGoldenDnlBestFit[i], kTol) << "transition " << i;
  }
  EXPECT_NEAR(m.inl_max, kGoldenInlMaxBestFit, kTol);
  EXPECT_NEAR(m.dnl_max, kGoldenDnlMaxBestFit, kTol);
}

TEST(GoldenStatic, EndpointInlMatchesGolden) {
  const auto m = analyze_transfer(golden_transfer(), InlReference::kEndpoint);
  ASSERT_EQ(m.inl.size(), std::size(kGoldenInlEndpoint));
  for (std::size_t i = 0; i < m.inl.size(); ++i) {
    EXPECT_NEAR(m.inl[i], kGoldenInlEndpoint[i], kTol) << "code " << i;
  }
  EXPECT_NEAR(m.inl_max, kGoldenInlMaxEndpoint, kTol);
}

}  // namespace
}  // namespace csdac::dac
