// Golden regression for static linearity: a fixed-seed 8-bit transfer
// function with checked-in expected INL/DNL vectors. Guards
// analyze_transfer, the DAC model, and the (seed, chip) RNG stream
// derivation against silent refactor drift. If a change to any of these is
// INTENTIONAL, regenerate the golden file (see tools/gen_golden_static.cpp)
// and say so in the commit message.
#include <gtest/gtest.h>

#include <vector>

#include "dac/static_analysis.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {
namespace {

#include "golden_static_12bit.inc"
#include "golden_static_8bit.inc"

constexpr double kTol = 1e-12;

std::vector<double> golden_transfer() {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  mathx::Xoshiro256 rng = mathx::stream_rng(8811, 0);
  return SegmentedDac(spec, draw_source_errors(spec, 0.01, rng)).transfer();
}

TEST(GoldenStatic, TransferMatchesCheckedInLevels) {
  const auto levels = golden_transfer();
  ASSERT_EQ(levels.size(), std::size(kGoldenLevels));
  for (std::size_t i = 0; i < levels.size(); ++i) {
    EXPECT_NEAR(levels[i], kGoldenLevels[i], kTol) << "code " << i;
  }
}

TEST(GoldenStatic, BestFitInlDnlMatchGolden) {
  const auto m = analyze_transfer(golden_transfer(), InlReference::kBestFit);
  ASSERT_EQ(m.inl.size(), std::size(kGoldenInlBestFit));
  ASSERT_EQ(m.dnl.size(), std::size(kGoldenDnlBestFit));
  for (std::size_t i = 0; i < m.inl.size(); ++i) {
    EXPECT_NEAR(m.inl[i], kGoldenInlBestFit[i], kTol) << "code " << i;
  }
  for (std::size_t i = 0; i < m.dnl.size(); ++i) {
    EXPECT_NEAR(m.dnl[i], kGoldenDnlBestFit[i], kTol) << "transition " << i;
  }
  EXPECT_NEAR(m.inl_max, kGoldenInlMaxBestFit, kTol);
  EXPECT_NEAR(m.dnl_max, kGoldenDnlMaxBestFit, kTol);
}

TEST(GoldenStatic, EndpointInlMatchesGolden) {
  const auto m = analyze_transfer(golden_transfer(), InlReference::kEndpoint);
  ASSERT_EQ(m.inl.size(), std::size(kGoldenInlEndpoint));
  for (std::size_t i = 0; i < m.inl.size(); ++i) {
    EXPECT_NEAR(m.inl[i], kGoldenInlEndpoint[i], kTol) << "code " << i;
  }
  EXPECT_NEAR(m.inl_max, kGoldenInlMaxEndpoint, kTol);
}

// ---- 12-bit golden: the paper's design point, strided vectors ----------

std::vector<double> golden12_transfer() {
  const core::DacSpec spec;  // 12 bit, b = 4
  mathx::Xoshiro256 rng = mathx::stream_rng(1212, 0);
  return SegmentedDac(spec, draw_source_errors(spec, 0.0026, rng)).transfer();
}

TEST(GoldenStatic12Bit, TransferMatchesCheckedInLevels) {
  const auto levels = golden12_transfer();
  ASSERT_EQ(levels.size(), kGolden12Stride * std::size(kGolden12Levels));
  for (std::size_t i = 0; i < std::size(kGolden12Levels); ++i) {
    EXPECT_NEAR(levels[i * kGolden12Stride], kGolden12Levels[i], kTol)
        << "code " << i * kGolden12Stride;
  }
}

TEST(GoldenStatic12Bit, BestFitInlDnlMatchGolden) {
  const auto m = analyze_transfer(golden12_transfer(),
                                  InlReference::kBestFit);
  for (std::size_t i = 0; i < std::size(kGolden12InlBestFit); ++i) {
    EXPECT_NEAR(m.inl[i * kGolden12Stride], kGolden12InlBestFit[i], kTol)
        << "code " << i * kGolden12Stride;
  }
  for (std::size_t i = 0; i < std::size(kGolden12DnlBestFit); ++i) {
    EXPECT_NEAR(m.dnl[i * kGolden12Stride], kGolden12DnlBestFit[i], kTol)
        << "transition " << i * kGolden12Stride;
  }
  EXPECT_NEAR(m.inl_max, kGolden12InlMaxBestFit, kTol);
  EXPECT_NEAR(m.dnl_max, kGolden12DnlMaxBestFit, kTol);
}

TEST(GoldenStatic12Bit, EndpointInlMatchesGolden) {
  const auto m = analyze_transfer(golden12_transfer(),
                                  InlReference::kEndpoint);
  for (std::size_t i = 0; i < std::size(kGolden12InlEndpoint); ++i) {
    EXPECT_NEAR(m.inl[i * kGolden12Stride], kGolden12InlEndpoint[i], kTol)
        << "code " << i * kGolden12Stride;
  }
  EXPECT_NEAR(m.inl_max, kGolden12InlMaxEndpoint, kTol);
  EXPECT_NEAR(m.dnl_max, kGolden12DnlMaxEndpoint, kTol);
}

// ---- Workspace path: EXACT equality with the allocating chain ----------
// The golden files absorb ulp drift with a tolerance; the workspace path
// has no such allowance — it must be bit-identical to the legacy chain by
// construction (shared code_level / analyze_core, monotone-division
// summary). These tests pin that with EXPECT_EQ on doubles.

TEST(GoldenStatic12Bit, WorkspaceTransferBitIdentical) {
  const core::DacSpec spec;
  ChipWorkspace ws(spec);
  mathx::stream_rng_into(ws.rng, 1212, 0);
  draw_source_errors_into(spec, 0.0026, ws.rng, ws.errors);
  transfer_into(spec, ws.errors, ws);

  const auto legacy = golden12_transfer();
  ASSERT_EQ(ws.levels.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(ws.levels[i], legacy[i]) << "code " << i;
  }
}

TEST(GoldenStatic12Bit, WorkspaceAnalysisBitIdentical) {
  const core::DacSpec spec;
  ChipWorkspace ws(spec);
  for (std::int64_t chip = 0; chip < 4; ++chip) {
    mathx::stream_rng_into(ws.rng, 1212, static_cast<std::uint64_t>(chip));
    draw_source_errors_into(spec, 0.0026, ws.rng, ws.errors);
    transfer_into(spec, ws.errors, ws);

    for (const auto ref : {InlReference::kBestFit, InlReference::kEndpoint}) {
      const StaticSummary into = analyze_transfer_into(ws, ref);
      const StaticSummary summary = analyze_levels_summary(ws.levels, ref);
      const StaticMetrics legacy = analyze_transfer(ws.levels, ref);
      EXPECT_EQ(into.inl_max, legacy.inl_max) << "chip " << chip;
      EXPECT_EQ(into.dnl_max, legacy.dnl_max) << "chip " << chip;
      EXPECT_EQ(summary.inl_max, legacy.inl_max) << "chip " << chip;
      EXPECT_EQ(summary.dnl_max, legacy.dnl_max) << "chip " << chip;
      for (std::size_t i = 0; i < legacy.inl.size(); ++i) {
        ASSERT_EQ(ws.inl[i], legacy.inl[i]) << "chip " << chip << " code "
                                            << i;
      }
      for (std::size_t i = 0; i < legacy.dnl.size(); ++i) {
        ASSERT_EQ(ws.dnl[i], legacy.dnl[i]) << "chip " << chip
                                            << " transition " << i;
      }
    }
  }
}

TEST(GoldenStatic12Bit, McChipMetricsMatchesLegacyChain) {
  const core::DacSpec spec;
  ChipWorkspace ws(spec);
  for (std::int64_t chip = 0; chip < 8; ++chip) {
    const StaticSummary s = mc_chip_metrics(ws, 0.0026, 1212, chip);
    mathx::Xoshiro256 rng =
        mathx::stream_rng(1212, static_cast<std::uint64_t>(chip));
    const SegmentedDac legacy(spec, draw_source_errors(spec, 0.0026, rng));
    const StaticMetrics m = analyze_transfer(legacy.transfer());
    EXPECT_EQ(s.inl_max, m.inl_max) << "chip " << chip;
    EXPECT_EQ(s.dnl_max, m.dnl_max) << "chip " << chip;
  }
}

}  // namespace
}  // namespace csdac::dac
