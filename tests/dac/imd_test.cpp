// Two-tone intermodulation measurement tests: the analyzer must recover the
// textbook IMD3 of a known cubic nonlinearity, and the behavioral DAC's
// finite output impedance must produce measurable odd-order IMD.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dac/dynamic.hpp"
#include "dac/spectrum.hpp"

namespace csdac::dac {
namespace {

TEST(TwoTone, CodesStayInRangeAndCoherent) {
  core::DacSpec spec;
  const auto codes = two_tone_codes(spec, 2048, 201, 223);
  EXPECT_EQ(codes.size(), 2048u);
  int cmin = 1 << 20, cmax = -1;
  for (int c : codes) {
    cmin = std::min(cmin, c);
    cmax = std::max(cmax, c);
  }
  EXPECT_GE(cmin, 0);
  EXPECT_LE(cmax, 4095);
  EXPECT_GT(cmax, 3600);  // the two half-scale tones do add up
  EXPECT_THROW(two_tone_codes(spec, 100, 5, 5), std::invalid_argument);
  EXPECT_THROW(two_tone_codes(spec, 100, 0, 5), std::invalid_argument);
}

TEST(Imd, CubicNonlinearityMatchesTextbookImd3) {
  // y = x + a3*x^3 on two equal tones of amplitude A produces IMD3
  // products of amplitude (3/4)*a3*A^3, i.e. IMD3 = 20*log10((3/4)*a3*A^2).
  const std::size_t n = 4096;
  const std::size_t b1 = 401, b2 = 439;
  const double a = 0.5;
  const double a3 = 0.02;
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        a * std::sin(2.0 * std::numbers::pi * b1 * i / n) +
        a * std::sin(2.0 * std::numbers::pi * b2 * i / n);
    v[i] = x + a3 * x * x * x;
  }
  const auto r = analyze_imd(v, 300e6, b1, b2);
  const double expected = 20.0 * std::log10(0.75 * a3 * a * a);
  EXPECT_NEAR(r.imd3_db, expected, 1.0);
  EXPECT_EQ(r.imd3_lo_bin, 2 * b1 - b2);
  EXPECT_EQ(r.imd3_hi_bin, 2 * b2 - b1);
  // Tones are equal power.
  EXPECT_NEAR(10.0 * std::log10(r.tone2_power / r.tone1_power), 0.0, 0.2);
}

TEST(Imd, QuadraticNonlinearityMatchesTextbookImd2) {
  // y = x + a2*x^2: the f2-f1 / f1+f2 products have amplitude a2*A^2, i.e.
  // IMD2 = 20*log10(a2*A) relative to the tones.
  const std::size_t n = 4096;
  const std::size_t b1 = 401, b2 = 439;
  const double a = 0.4, a2 = 0.01;
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        a * std::sin(2.0 * std::numbers::pi * b1 * i / n) +
        a * std::sin(2.0 * std::numbers::pi * b2 * i / n);
    v[i] = x + a2 * x * x;
  }
  const auto r = analyze_imd(v, 300e6, b1, b2);
  EXPECT_NEAR(r.imd2_db, 20.0 * std::log10(a2 * a), 1.0);
  // A pure even-order error leaves IMD3 at the floor.
  EXPECT_LT(r.imd3_db, r.imd2_db - 40.0);
}

TEST(Imd, CleanTwoToneHasDeepImdFloor) {
  const std::size_t n = 2048;
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.4 * std::sin(2.0 * std::numbers::pi * 201.0 * i / n) +
           0.4 * std::sin(2.0 * std::numbers::pi * 223.0 * i / n);
  }
  const auto r = analyze_imd(v, 300e6, 201, 223);
  EXPECT_LT(r.imd3_db, -150.0);
}

TEST(Imd, DacDroopCreatesOddOrderProducts) {
  // Finite output impedance: the compressive droop 1/(1 + a*L) contains a
  // cubic term, so the two-tone record shows IMD3 above the clean floor.
  // Crucially, IMD3 is ODD order: unlike HD2/IMD2, the differential output
  // does NOT cancel it — both measurements must agree.
  core::DacSpec spec;
  DynamicParams p;
  p.oversample = 2;
  p.tau = 1e-12;
  p.rout_unit = 5e6;  // strong droop so the cubic residue is visible
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
  const auto codes = two_tone_codes(spec, 2048, 201, 223);
  auto measure = [&](bool differential) {
    const auto wave = differential ? sim.waveform_differential(codes)
                                   : sim.waveform(codes);
    std::vector<double> sampled;
    for (std::size_t i = 1; i < wave.size(); i += 2) {
      sampled.push_back(wave[i]);
    }
    return analyze_imd(sampled, 300e6, 201, 223);
  };
  const auto se = measure(false);
  const auto diff = measure(true);
  EXPECT_GT(se.imd3_db, -95.0);                  // above the clean floor
  EXPECT_NEAR(diff.imd3_db, se.imd3_db, 3.0);    // odd order survives diff
  // ... while the even-order IMD2 collapses differentially.
  EXPECT_GT(se.imd2_db, -60.0);
  EXPECT_LT(diff.imd2_db, se.imd2_db - 30.0);
}

TEST(Imd, InputValidation) {
  std::vector<double> v(64, 0.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(2.0 * std::numbers::pi * 5.0 * i / 64.0);
  }
  EXPECT_THROW(analyze_imd(v, 1e6, 5, 5), std::invalid_argument);
  EXPECT_THROW(analyze_imd(v, 1e6, 0, 5), std::invalid_argument);
  EXPECT_THROW(analyze_imd(v, 1e6, 5, 200), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::dac
