#include "dac/static_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/accuracy.hpp"

namespace csdac::dac {
namespace {

TEST(StaticAnalysis, PerfectTransferHasZeroInlDnl) {
  std::vector<double> levels(256);
  for (std::size_t i = 0; i < levels.size(); ++i) levels[i] = 2.0 * i + 5.0;
  for (auto ref : {InlReference::kEndpoint, InlReference::kBestFit}) {
    const auto m = analyze_transfer(levels, ref);
    EXPECT_NEAR(m.inl_max, 0.0, 1e-10);
    EXPECT_NEAR(m.dnl_max, 0.0, 1e-10);
  }
}

TEST(StaticAnalysis, SingleBumpShowsInDnl) {
  std::vector<double> levels(64);
  for (std::size_t i = 0; i < levels.size(); ++i) levels[i] = i;
  levels[30] += 0.4;  // code 30 is 0.4 LSB high
  const auto m = analyze_transfer(levels, InlReference::kEndpoint);
  // Transition 29->30 gains 0.4, transition 30->31 loses 0.4.
  EXPECT_NEAR(m.dnl[29], 0.4, 1e-9);
  EXPECT_NEAR(m.dnl[30], -0.4, 1e-9);
  EXPECT_NEAR(m.inl_max, 0.4, 0.02);
}

TEST(StaticAnalysis, EndpointInlZeroAtEnds) {
  std::vector<double> levels = {0.0, 1.3, 1.9, 3.1, 4.0};
  const auto m = analyze_transfer(levels, InlReference::kEndpoint);
  EXPECT_NEAR(m.inl.front(), 0.0, 1e-12);
  EXPECT_NEAR(m.inl.back(), 0.0, 1e-12);
}

TEST(StaticAnalysis, BestFitInlSmallerOrEqual) {
  // The LS line minimizes the RMS residual; its max |INL| is typically
  // smaller than the endpoint version for a bowed transfer.
  std::vector<double> levels(128);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double x = static_cast<double>(i);
    levels[i] = x + 1e-4 * x * (127.0 - x);  // bow
  }
  const auto ep = analyze_transfer(levels, InlReference::kEndpoint);
  const auto bf = analyze_transfer(levels, InlReference::kBestFit);
  EXPECT_LT(bf.inl_max, ep.inl_max);
}

TEST(StaticAnalysis, RejectsDegenerateInput) {
  EXPECT_THROW(analyze_transfer({1.0}), std::invalid_argument);
  EXPECT_THROW(analyze_transfer({2.0, 2.0, 2.0}), std::invalid_argument);
}

TEST(StaticAnalysis, YieldMeetsEq1Target) {
  // eq. (1) validation: sizing the unit sigma for a target INL yield must
  // produce AT LEAST that yield in Monte Carlo -- the rule is known to be
  // conservative (it bounds the mid-scale accumulation; the best-fit INL
  // of a real transfer is smaller). Run at 8 bits for speed.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double target_yield = 0.95;
  const double sigma = core::unit_sigma_spec(spec.nbits, target_yield);
  const auto y = inl_yield_mc(spec, sigma, 1500, /*seed=*/42, 0.5,
                              InlReference::kBestFit);
  EXPECT_GE(y.yield, target_yield - 0.02);
  // ... and the design rule is not wildly loose: tripling sigma must break
  // the yield decisively.
  const auto broken = inl_yield_mc(spec, 3.0 * sigma, 400, 42, 0.5,
                                   InlReference::kBestFit);
  EXPECT_LT(broken.yield, 0.80);
}

TEST(StaticAnalysis, YieldDropsWithLargerSigma) {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.95);
  const auto tight = inl_yield_mc(spec, sigma, 400, 1);
  const auto loose = inl_yield_mc(spec, 4.0 * sigma, 400, 1);
  EXPECT_GT(tight.yield, loose.yield);
  EXPECT_LT(loose.yield, 0.6);
}

TEST(StaticAnalysis, DnlYieldHigherThanInlYield) {
  // Paper Section 1: with the INL-driven sigma, DNL < 0.5 LSB is
  // essentially always satisfied for the b = 3 segmentation.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.95);
  const auto inl = inl_yield_mc(spec, sigma, 500, 3);
  const auto dnl = dnl_yield_mc(spec, sigma, 500, 3);
  EXPECT_GE(dnl.yield, inl.yield);
  EXPECT_GT(dnl.yield, 0.99);
}

TEST(StaticAnalysis, ParallelMcBitIdenticalToSerial) {
  // Per-chip RNG streams make the result independent of the thread count.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.9);
  const auto serial = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                   InlReference::kBestFit, /*threads=*/1);
  const auto par4 = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                 InlReference::kBestFit, /*threads=*/4);
  const auto par_auto = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                     InlReference::kBestFit, /*threads=*/0);
  EXPECT_EQ(serial.pass, par4.pass);
  EXPECT_EQ(serial.pass, par_auto.pass);
  EXPECT_THROW(inl_yield_mc(spec, sigma, 10, 1, 0.5,
                            InlReference::kBestFit, -1),
               std::invalid_argument);
}

TEST(StaticAnalysis, YieldMcBitIdenticalForThreads127AndReruns) {
  // The determinism contract of the shared engine: per-chip RNG streams
  // make the estimate a pure function of (seed, chips), independent of the
  // thread count and stable across repeated runs.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = 2.0 * core::unit_sigma_spec(spec.nbits, 0.9);
  const auto ref_inl = inl_yield_mc(spec, sigma, 300, 17, 0.5,
                                    InlReference::kBestFit, 1);
  const auto ref_dnl = dnl_yield_mc(spec, sigma, 300, 17, 0.5, 1);
  for (int threads : {1, 2, 7}) {
    for (int rerun = 0; rerun < 2; ++rerun) {
      const auto inl = inl_yield_mc(spec, sigma, 300, 17, 0.5,
                                    InlReference::kBestFit, threads);
      const auto dnl = dnl_yield_mc(spec, sigma, 300, 17, 0.5, threads);
      EXPECT_EQ(inl.pass, ref_inl.pass)
          << "threads " << threads << " rerun " << rerun;
      EXPECT_DOUBLE_EQ(inl.yield, ref_inl.yield);
      EXPECT_EQ(dnl.pass, ref_dnl.pass)
          << "threads " << threads << " rerun " << rerun;
      EXPECT_DOUBLE_EQ(dnl.yield, ref_dnl.yield);
    }
  }
}

TEST(StaticAnalysis, AdaptiveYieldAgreesWithFixedCountWithinCi) {
  // Early-stop correctness: on a seeded spec the adaptive estimate must
  // agree with the fixed-chip-count estimate within the combined CI, while
  // evaluating fewer chips than the cap on this high-yield spec.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.95);
  AdaptiveMcOptions opts;
  opts.max_chips = 4000;
  opts.ci_half_width = 0.02;
  opts.threads = 2;
  const auto adaptive = inl_yield_mc_adaptive(spec, sigma, opts, 42);
  const auto fixed = inl_yield_mc(spec, sigma, 4000, 42);
  EXPECT_TRUE(adaptive.stats.early_stopped);
  EXPECT_LT(adaptive.chips, opts.max_chips);
  EXPECT_EQ(adaptive.stats.skipped, opts.max_chips - adaptive.chips);
  EXPECT_NEAR(adaptive.yield, fixed.yield, adaptive.ci95 + fixed.ci95);
}

TEST(StaticAnalysis, AdaptiveYieldNeverExceedsCapAndIsDeterministic) {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = 2.0 * core::unit_sigma_spec(spec.nbits, 0.9);
  AdaptiveMcOptions opts;
  opts.max_chips = 300;
  opts.min_chips = 64;
  opts.batch = 64;
  opts.ci_half_width = 1e-9;  // unreachable: must stop exactly at the cap
  opts.threads = 7;
  const auto y = inl_yield_mc_adaptive(spec, sigma, opts, 17);
  EXPECT_EQ(y.chips, 300);
  EXPECT_FALSE(y.stats.early_stopped);
  // ... and the capped adaptive run sees exactly the same chips as the
  // fixed-count estimator (same streams, same batches).
  const auto fixed = inl_yield_mc(spec, sigma, 300, 17);
  EXPECT_EQ(y.pass, fixed.pass);
  opts.threads = 1;
  const auto serial = inl_yield_mc_adaptive(spec, sigma, opts, 17);
  EXPECT_EQ(serial.pass, y.pass);
  EXPECT_EQ(serial.chips, y.chips);
}

TEST(StaticAnalysis, RunStatsAreFilled) {
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 2;
  const auto y = inl_yield_mc(spec, 0.001, 64, 9, 0.5,
                              InlReference::kBestFit, 2);
  EXPECT_EQ(y.stats.evaluated, 64);
  EXPECT_EQ(y.stats.skipped, 0);
  EXPECT_GE(y.stats.threads, 1);
  EXPECT_GT(y.stats.items_per_second, 0.0);
}

TEST(StaticAnalysis, YieldEstimateBookkeeping) {
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 2;
  const auto y = inl_yield_mc(spec, 1e-6, 50, 7);
  EXPECT_EQ(y.chips, 50);
  EXPECT_EQ(y.pass, 50);  // essentially no mismatch: all pass
  EXPECT_DOUBLE_EQ(y.yield, 1.0);
  EXPECT_THROW(inl_yield_mc(spec, 0.001, 0, 7), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::dac
