#include "dac/static_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/accuracy.hpp"
#include "mathx/rng.hpp"

namespace csdac::dac {
namespace {

TEST(StaticAnalysis, PerfectTransferHasZeroInlDnl) {
  std::vector<double> levels(256);
  for (std::size_t i = 0; i < levels.size(); ++i) levels[i] = 2.0 * i + 5.0;
  for (auto ref : {InlReference::kEndpoint, InlReference::kBestFit}) {
    const auto m = analyze_transfer(levels, ref);
    EXPECT_NEAR(m.inl_max, 0.0, 1e-10);
    EXPECT_NEAR(m.dnl_max, 0.0, 1e-10);
  }
}

TEST(StaticAnalysis, SingleBumpShowsInDnl) {
  std::vector<double> levels(64);
  for (std::size_t i = 0; i < levels.size(); ++i) levels[i] = i;
  levels[30] += 0.4;  // code 30 is 0.4 LSB high
  const auto m = analyze_transfer(levels, InlReference::kEndpoint);
  // Transition 29->30 gains 0.4, transition 30->31 loses 0.4.
  EXPECT_NEAR(m.dnl[29], 0.4, 1e-9);
  EXPECT_NEAR(m.dnl[30], -0.4, 1e-9);
  EXPECT_NEAR(m.inl_max, 0.4, 0.02);
}

TEST(StaticAnalysis, EndpointInlZeroAtEnds) {
  std::vector<double> levels = {0.0, 1.3, 1.9, 3.1, 4.0};
  const auto m = analyze_transfer(levels, InlReference::kEndpoint);
  EXPECT_NEAR(m.inl.front(), 0.0, 1e-12);
  EXPECT_NEAR(m.inl.back(), 0.0, 1e-12);
}

TEST(StaticAnalysis, BestFitInlSmallerOrEqual) {
  // The LS line minimizes the RMS residual; its max |INL| is typically
  // smaller than the endpoint version for a bowed transfer.
  std::vector<double> levels(128);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double x = static_cast<double>(i);
    levels[i] = x + 1e-4 * x * (127.0 - x);  // bow
  }
  const auto ep = analyze_transfer(levels, InlReference::kEndpoint);
  const auto bf = analyze_transfer(levels, InlReference::kBestFit);
  EXPECT_LT(bf.inl_max, ep.inl_max);
}

TEST(StaticAnalysis, RejectsDegenerateInput) {
  EXPECT_THROW(analyze_transfer({1.0}), std::invalid_argument);
  EXPECT_THROW(analyze_transfer({2.0, 2.0, 2.0}), std::invalid_argument);
}

TEST(StaticAnalysis, YieldMeetsEq1Target) {
  // eq. (1) validation: sizing the unit sigma for a target INL yield must
  // produce AT LEAST that yield in Monte Carlo -- the rule is known to be
  // conservative (it bounds the mid-scale accumulation; the best-fit INL
  // of a real transfer is smaller). Run at 8 bits for speed.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double target_yield = 0.95;
  const double sigma = core::unit_sigma_spec(spec.nbits, target_yield);
  const auto y = inl_yield_mc(spec, sigma, 1500, /*seed=*/42, 0.5,
                              InlReference::kBestFit);
  EXPECT_GE(y.yield, target_yield - 0.02);
  // ... and the design rule is not wildly loose: tripling sigma must break
  // the yield decisively.
  const auto broken = inl_yield_mc(spec, 3.0 * sigma, 400, 42, 0.5,
                                   InlReference::kBestFit);
  EXPECT_LT(broken.yield, 0.80);
}

TEST(StaticAnalysis, YieldDropsWithLargerSigma) {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.95);
  const auto tight = inl_yield_mc(spec, sigma, 400, 1);
  const auto loose = inl_yield_mc(spec, 4.0 * sigma, 400, 1);
  EXPECT_GT(tight.yield, loose.yield);
  EXPECT_LT(loose.yield, 0.6);
}

TEST(StaticAnalysis, DnlYieldHigherThanInlYield) {
  // Paper Section 1: with the INL-driven sigma, DNL < 0.5 LSB is
  // essentially always satisfied for the b = 3 segmentation.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.95);
  const auto inl = inl_yield_mc(spec, sigma, 500, 3);
  const auto dnl = dnl_yield_mc(spec, sigma, 500, 3);
  EXPECT_GE(dnl.yield, inl.yield);
  EXPECT_GT(dnl.yield, 0.99);
}

TEST(StaticAnalysis, ParallelMcBitIdenticalToSerial) {
  // Per-chip RNG streams make the result independent of the thread count.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.9);
  const auto serial = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                   InlReference::kBestFit, /*threads=*/1);
  const auto par4 = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                 InlReference::kBestFit, /*threads=*/4);
  const auto par_auto = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                     InlReference::kBestFit, /*threads=*/0);
  EXPECT_EQ(serial.pass, par4.pass);
  EXPECT_EQ(serial.pass, par_auto.pass);
  EXPECT_THROW(inl_yield_mc(spec, sigma, 10, 1, 0.5,
                            InlReference::kBestFit, -1),
               std::invalid_argument);
}

TEST(StaticAnalysis, YieldMcBitIdenticalForThreads127AndReruns) {
  // The determinism contract of the shared engine: per-chip RNG streams
  // make the estimate a pure function of (seed, chips), independent of the
  // thread count and stable across repeated runs.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = 2.0 * core::unit_sigma_spec(spec.nbits, 0.9);
  const auto ref_inl = inl_yield_mc(spec, sigma, 300, 17, 0.5,
                                    InlReference::kBestFit, 1);
  const auto ref_dnl = dnl_yield_mc(spec, sigma, 300, 17, 0.5, 1);
  for (int threads : {1, 2, 7}) {
    for (int rerun = 0; rerun < 2; ++rerun) {
      const auto inl = inl_yield_mc(spec, sigma, 300, 17, 0.5,
                                    InlReference::kBestFit, threads);
      const auto dnl = dnl_yield_mc(spec, sigma, 300, 17, 0.5, threads);
      EXPECT_EQ(inl.pass, ref_inl.pass)
          << "threads " << threads << " rerun " << rerun;
      EXPECT_DOUBLE_EQ(inl.yield, ref_inl.yield);
      EXPECT_EQ(dnl.pass, ref_dnl.pass)
          << "threads " << threads << " rerun " << rerun;
      EXPECT_DOUBLE_EQ(dnl.yield, ref_dnl.yield);
    }
  }
}

TEST(StaticAnalysis, AdaptiveYieldAgreesWithFixedCountWithinCi) {
  // Early-stop correctness: on a seeded spec the adaptive estimate must
  // agree with the fixed-chip-count estimate within the combined CI, while
  // evaluating fewer chips than the cap on this high-yield spec.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.95);
  AdaptiveMcOptions opts;
  opts.max_chips = 4000;
  opts.ci_half_width = 0.02;
  opts.threads = 2;
  const auto adaptive = inl_yield_mc_adaptive(spec, sigma, opts, 42);
  const auto fixed = inl_yield_mc(spec, sigma, 4000, 42);
  EXPECT_TRUE(adaptive.stats.early_stopped);
  EXPECT_LT(adaptive.chips, opts.max_chips);
  EXPECT_EQ(adaptive.stats.skipped, opts.max_chips - adaptive.chips);
  EXPECT_NEAR(adaptive.yield, fixed.yield, adaptive.ci95 + fixed.ci95);
}

TEST(StaticAnalysis, AdaptiveYieldNeverExceedsCapAndIsDeterministic) {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = 2.0 * core::unit_sigma_spec(spec.nbits, 0.9);
  AdaptiveMcOptions opts;
  opts.max_chips = 300;
  opts.min_chips = 64;
  opts.batch = 64;
  opts.ci_half_width = 1e-9;  // unreachable: must stop exactly at the cap
  opts.threads = 7;
  const auto y = inl_yield_mc_adaptive(spec, sigma, opts, 17);
  EXPECT_EQ(y.chips, 300);
  EXPECT_FALSE(y.stats.early_stopped);
  // ... and the capped adaptive run sees exactly the same chips as the
  // fixed-count estimator (same streams, same batches).
  const auto fixed = inl_yield_mc(spec, sigma, 300, 17);
  EXPECT_EQ(y.pass, fixed.pass);
  opts.threads = 1;
  const auto serial = inl_yield_mc_adaptive(spec, sigma, opts, 17);
  EXPECT_EQ(serial.pass, y.pass);
  EXPECT_EQ(serial.chips, y.chips);
}

TEST(StaticAnalysis, RunStatsAreFilled) {
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 2;
  const auto y = inl_yield_mc(spec, 0.001, 64, 9, 0.5,
                              InlReference::kBestFit, 2);
  EXPECT_EQ(y.stats.evaluated, 64);
  EXPECT_EQ(y.stats.skipped, 0);
  EXPECT_GE(y.stats.threads, 1);
  EXPECT_GT(y.stats.items_per_second, 0.0);
}

TEST(StaticAnalysis, YieldEstimateBookkeeping) {
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 2;
  const auto y = inl_yield_mc(spec, 1e-6, 50, 7);
  EXPECT_EQ(y.chips, 50);
  EXPECT_EQ(y.pass, 50);  // essentially no mismatch: all pass
  EXPECT_DOUBLE_EQ(y.yield, 1.0);
  EXPECT_THROW(inl_yield_mc(spec, 0.001, 0, 7), std::invalid_argument);
}

// ---- Property-based analyzer tests -------------------------------------

TEST(StaticAnalysisProperty, RandomLinearRampsHaveZeroInlDnl) {
  // Any exactly linear transfer level = a*code + b must analyze to ~0
  // INL and DNL for BOTH reference lines, for random gains, offsets, and
  // lengths. This is the defining property of the metrics.
  mathx::Xoshiro256 rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng() % 1000);
    const double a = 0.25 + 4.0 * mathx::uniform01(rng);   // gain in [0.25, 4.25)
    const double b = 20.0 * (mathx::uniform01(rng) - 0.5); // offset in [-10, 10)
    std::vector<double> levels(n);
    for (std::size_t i = 0; i < n; ++i) {
      levels[i] = a * static_cast<double>(i) + b;
    }
    for (auto ref : {InlReference::kEndpoint, InlReference::kBestFit}) {
      const auto m = analyze_transfer(levels, ref);
      EXPECT_LT(m.inl_max, 1e-9) << "trial " << trial << " n " << n;
      EXPECT_LT(m.dnl_max, 1e-9) << "trial " << trial << " n " << n;
      const auto s = analyze_levels_summary(levels, ref);
      EXPECT_EQ(s.inl_max, m.inl_max) << "trial " << trial;
      EXPECT_EQ(s.dnl_max, m.dnl_max) << "trial " << trial;
    }
  }
}

TEST(StaticAnalysisProperty, BestFitInlInvariantToOffsetAndGain) {
  // INL is measured in LSB of the fitted line, so rescaling the transfer
  // (gain) or shifting it (offset) must leave the best-fit INL unchanged.
  mathx::Xoshiro256 rng(654);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 64;
    std::vector<double> levels(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Random monotone transfer: positive random steps around 1 LSB.
      acc += 0.5 + mathx::uniform01(rng);
      levels[i] = acc;
    }
    const auto base = analyze_transfer(levels, InlReference::kBestFit);
    const double gain = 0.1 + 5.0 * mathx::uniform01(rng);
    const double offset = 100.0 * (mathx::uniform01(rng) - 0.5);
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = gain * levels[i] + offset;
    }
    const auto m = analyze_transfer(scaled, InlReference::kBestFit);
    EXPECT_NEAR(m.inl_max, base.inl_max, 1e-9) << "trial " << trial;
    EXPECT_NEAR(m.dnl_max, base.dnl_max, 1e-9) << "trial " << trial;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(m.inl[i], base.inl[i], 1e-9)
          << "trial " << trial << " code " << i;
    }
  }
}

TEST(StaticAnalysisProperty, SummaryMatchesFullAnalysisOnRandomTransfers) {
  // The maxima-only kernel must agree bitwise with the vector-writing
  // analysis on arbitrary (even non-monotone) transfers.
  mathx::Xoshiro256 rng(987);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng() % 500);
    std::vector<double> levels(n);
    for (std::size_t i = 0; i < n; ++i) {
      levels[i] = static_cast<double>(i) + 2.0 * (mathx::uniform01(rng) - 0.5);
    }
    for (auto ref : {InlReference::kEndpoint, InlReference::kBestFit}) {
      const auto m = analyze_transfer(levels, ref);
      const auto s = analyze_levels_summary(levels, ref);
      EXPECT_EQ(s.inl_max, m.inl_max) << "trial " << trial << " n " << n;
      EXPECT_EQ(s.dnl_max, m.dnl_max) << "trial " << trial << " n " << n;
    }
  }
}

TEST(StaticAnalysisProperty, SummaryDegenerateEdges) {
  // Two levels is the minimum legal transfer: both reference lines pass
  // through both points, so INL and DNL are exactly zero.
  const std::vector<double> two = {1.5, 3.0};
  for (auto ref : {InlReference::kEndpoint, InlReference::kBestFit}) {
    const auto s = analyze_levels_summary(two, ref);
    EXPECT_EQ(s.inl_max, 0.0);
    EXPECT_EQ(s.dnl_max, 0.0);
  }
  // Fewer than two levels cannot define a line.
  EXPECT_THROW(analyze_levels_summary(std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(analyze_levels_summary(std::vector<double>{}),
               std::invalid_argument);
  // All-equal levels give a zero-gain line; INL in LSB would divide by
  // zero, so both the summary and the full analysis must refuse.
  const std::vector<double> flat = {2.0, 2.0, 2.0, 2.0};
  for (auto ref : {InlReference::kEndpoint, InlReference::kBestFit}) {
    EXPECT_THROW(analyze_levels_summary(flat, ref), std::invalid_argument);
    EXPECT_THROW(analyze_transfer(flat, ref), std::invalid_argument);
  }
}

TEST(StaticAnalysisProperty, SummaryMatchesAcrossClosedFormBoundary) {
  // The best-fit sx/sxx sums switch from closed form to iterative
  // accumulation above n = 2^17 (where the closed form could round). The
  // bitwise agreement with analyze_transfer must hold on both sides.
  mathx::Xoshiro256 rng(555);
  for (std::size_t n : {(std::size_t{1} << 17), (std::size_t{1} << 17) + 3}) {
    std::vector<double> levels(n);
    for (std::size_t i = 0; i < n; ++i) {
      levels[i] = static_cast<double>(i) + (mathx::uniform01(rng) - 0.5);
    }
    const auto m = analyze_transfer(levels, InlReference::kBestFit);
    const auto s = analyze_levels_summary(levels, InlReference::kBestFit);
    EXPECT_EQ(s.inl_max, m.inl_max) << "n " << n;
    EXPECT_EQ(s.dnl_max, m.dnl_max) << "n " << n;
  }
}

// ---- Wilson confidence interval edge cases -----------------------------

TEST(StaticAnalysis, Ci95IsWilsonAtYieldOne) {
  // The old naive binomial half-width collapsed to exactly 0 at yield 1,
  // claiming infinite confidence from finite chips. Wilson stays positive.
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 2;
  const auto y = inl_yield_mc(spec, 1e-9, 80, 5);
  ASSERT_DOUBLE_EQ(y.yield, 1.0);
  EXPECT_GT(y.ci95, 0.0);
  EXPECT_DOUBLE_EQ(y.ci95, mathx::wilson_half_width(80, 80));
}

TEST(StaticAnalysis, Ci95IsWilsonAtYieldZero) {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  // Enormous mismatch: every chip fails.
  const auto y = inl_yield_mc(spec, 0.5, 60, 5);
  ASSERT_DOUBLE_EQ(y.yield, 0.0);
  EXPECT_GT(y.ci95, 0.0);
  EXPECT_DOUBLE_EQ(y.ci95, mathx::wilson_half_width(0, 60));
  // Symmetry of the Wilson interval around p <-> 1-p.
  EXPECT_DOUBLE_EQ(mathx::wilson_half_width(0, 60),
                   mathx::wilson_half_width(60, 60));
}

// ---- Workspace vs legacy engine equivalence ----------------------------

TEST(StaticAnalysis, WorkspaceYieldBitIdenticalToLegacyAcrossThreads) {
  // The tentpole contract: the allocation-free workspace kernel and the
  // historical allocating chain must produce the same pass count, yield,
  // and CI for every thread count.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = 2.0 * core::unit_sigma_spec(spec.nbits, 0.9);
  for (int threads : {1, 2, 7}) {
    const auto ws = inl_yield_mc(spec, sigma, 250, 23, 0.5,
                                 InlReference::kBestFit, threads);
    const auto legacy = inl_yield_mc_legacy(spec, sigma, 250, 23, 0.5,
                                            InlReference::kBestFit, threads);
    EXPECT_EQ(ws.pass, legacy.pass) << "threads " << threads;
    EXPECT_DOUBLE_EQ(ws.yield, legacy.yield) << "threads " << threads;
    EXPECT_DOUBLE_EQ(ws.ci95, legacy.ci95) << "threads " << threads;

    const auto ws_dnl = dnl_yield_mc(spec, sigma, 250, 23, 0.5, threads);
    const auto legacy_dnl =
        dnl_yield_mc_legacy(spec, sigma, 250, 23, 0.5, threads);
    EXPECT_EQ(ws_dnl.pass, legacy_dnl.pass) << "threads " << threads;
  }
}

TEST(StaticAnalysis, WorkspaceYieldMatchesEndpointReferenceToo) {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = 2.0 * core::unit_sigma_spec(spec.nbits, 0.9);
  const auto ws = inl_yield_mc(spec, sigma, 200, 29, 0.5,
                               InlReference::kEndpoint, 2);
  const auto legacy = inl_yield_mc_legacy(spec, sigma, 200, 29, 0.5,
                                          InlReference::kEndpoint, 2);
  EXPECT_EQ(ws.pass, legacy.pass);
}

}  // namespace
}  // namespace csdac::dac
