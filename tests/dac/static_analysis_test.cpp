#include "dac/static_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/accuracy.hpp"

namespace csdac::dac {
namespace {

TEST(StaticAnalysis, PerfectTransferHasZeroInlDnl) {
  std::vector<double> levels(256);
  for (std::size_t i = 0; i < levels.size(); ++i) levels[i] = 2.0 * i + 5.0;
  for (auto ref : {InlReference::kEndpoint, InlReference::kBestFit}) {
    const auto m = analyze_transfer(levels, ref);
    EXPECT_NEAR(m.inl_max, 0.0, 1e-10);
    EXPECT_NEAR(m.dnl_max, 0.0, 1e-10);
  }
}

TEST(StaticAnalysis, SingleBumpShowsInDnl) {
  std::vector<double> levels(64);
  for (std::size_t i = 0; i < levels.size(); ++i) levels[i] = i;
  levels[30] += 0.4;  // code 30 is 0.4 LSB high
  const auto m = analyze_transfer(levels, InlReference::kEndpoint);
  // Transition 29->30 gains 0.4, transition 30->31 loses 0.4.
  EXPECT_NEAR(m.dnl[29], 0.4, 1e-9);
  EXPECT_NEAR(m.dnl[30], -0.4, 1e-9);
  EXPECT_NEAR(m.inl_max, 0.4, 0.02);
}

TEST(StaticAnalysis, EndpointInlZeroAtEnds) {
  std::vector<double> levels = {0.0, 1.3, 1.9, 3.1, 4.0};
  const auto m = analyze_transfer(levels, InlReference::kEndpoint);
  EXPECT_NEAR(m.inl.front(), 0.0, 1e-12);
  EXPECT_NEAR(m.inl.back(), 0.0, 1e-12);
}

TEST(StaticAnalysis, BestFitInlSmallerOrEqual) {
  // The LS line minimizes the RMS residual; its max |INL| is typically
  // smaller than the endpoint version for a bowed transfer.
  std::vector<double> levels(128);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double x = static_cast<double>(i);
    levels[i] = x + 1e-4 * x * (127.0 - x);  // bow
  }
  const auto ep = analyze_transfer(levels, InlReference::kEndpoint);
  const auto bf = analyze_transfer(levels, InlReference::kBestFit);
  EXPECT_LT(bf.inl_max, ep.inl_max);
}

TEST(StaticAnalysis, RejectsDegenerateInput) {
  EXPECT_THROW(analyze_transfer({1.0}), std::invalid_argument);
  EXPECT_THROW(analyze_transfer({2.0, 2.0, 2.0}), std::invalid_argument);
}

TEST(StaticAnalysis, YieldMeetsEq1Target) {
  // eq. (1) validation: sizing the unit sigma for a target INL yield must
  // produce AT LEAST that yield in Monte Carlo -- the rule is known to be
  // conservative (it bounds the mid-scale accumulation; the best-fit INL
  // of a real transfer is smaller). Run at 8 bits for speed.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double target_yield = 0.95;
  const double sigma = core::unit_sigma_spec(spec.nbits, target_yield);
  const auto y = inl_yield_mc(spec, sigma, 1500, /*seed=*/42, 0.5,
                              InlReference::kBestFit);
  EXPECT_GE(y.yield, target_yield - 0.02);
  // ... and the design rule is not wildly loose: tripling sigma must break
  // the yield decisively.
  const auto broken = inl_yield_mc(spec, 3.0 * sigma, 400, 42, 0.5,
                                   InlReference::kBestFit);
  EXPECT_LT(broken.yield, 0.80);
}

TEST(StaticAnalysis, YieldDropsWithLargerSigma) {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.95);
  const auto tight = inl_yield_mc(spec, sigma, 400, 1);
  const auto loose = inl_yield_mc(spec, 4.0 * sigma, 400, 1);
  EXPECT_GT(tight.yield, loose.yield);
  EXPECT_LT(loose.yield, 0.6);
}

TEST(StaticAnalysis, DnlYieldHigherThanInlYield) {
  // Paper Section 1: with the INL-driven sigma, DNL < 0.5 LSB is
  // essentially always satisfied for the b = 3 segmentation.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.95);
  const auto inl = inl_yield_mc(spec, sigma, 500, 3);
  const auto dnl = dnl_yield_mc(spec, sigma, 500, 3);
  EXPECT_GE(dnl.yield, inl.yield);
  EXPECT_GT(dnl.yield, 0.99);
}

TEST(StaticAnalysis, ParallelMcBitIdenticalToSerial) {
  // Per-chip RNG streams make the result independent of the thread count.
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const double sigma = core::unit_sigma_spec(spec.nbits, 0.9);
  const auto serial = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                   InlReference::kBestFit, /*threads=*/1);
  const auto par4 = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                 InlReference::kBestFit, /*threads=*/4);
  const auto par_auto = inl_yield_mc(spec, 2.0 * sigma, 200, 11, 0.5,
                                     InlReference::kBestFit, /*threads=*/0);
  EXPECT_EQ(serial.pass, par4.pass);
  EXPECT_EQ(serial.pass, par_auto.pass);
  EXPECT_THROW(inl_yield_mc(spec, sigma, 10, 1, 0.5,
                            InlReference::kBestFit, -1),
               std::invalid_argument);
}

TEST(StaticAnalysis, YieldEstimateBookkeeping) {
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 2;
  const auto y = inl_yield_mc(spec, 1e-6, 50, 7);
  EXPECT_EQ(y.chips, 50);
  EXPECT_EQ(y.pass, 50);  // essentially no mismatch: all pass
  EXPECT_DOUBLE_EQ(y.yield, 1.0);
  EXPECT_THROW(inl_yield_mc(spec, 0.001, 0, 7), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::dac
