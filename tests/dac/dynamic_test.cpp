#include "dac/dynamic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csdac::dac {
namespace {

core::DacSpec paper_spec() { return core::DacSpec{}; }

DynamicParams fast_params() {
  DynamicParams p;
  p.fs = 300e6;
  p.oversample = 32;
  p.tau = 0.2e-9;
  return p;
}

TEST(Dynamic, StaticLevelMatchesOhmsLaw) {
  const auto spec = paper_spec();
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)),
                       fast_params());
  // No droop configured: v = level * I_lsb * R_L.
  EXPECT_NEAR(sim.v_of_level(4095.0), 4095.0 * spec.i_lsb() * spec.r_load,
              1e-9);
  EXPECT_NEAR(sim.v_of_level(4095.0), spec.v_swing, 1e-6);
  EXPECT_DOUBLE_EQ(sim.v_of_level(0.0), 0.0);
}

TEST(Dynamic, FiniteRoutCompressesTopOfRange) {
  const auto spec = paper_spec();
  DynamicParams p = fast_params();
  p.rout_unit = 1e8;
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
  const double v_mid2 = sim.v_of_level(2048.0) * 2.0;
  const double v_full = sim.v_of_level(4096.0);
  EXPECT_LT(v_full, v_mid2);  // compressive (bow) nonlinearity
}

TEST(Dynamic, WaveformSettlesExponentially) {
  const auto spec = paper_spec();
  DynamicParams p = fast_params();
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
  const std::vector<int> codes = {0, 4095, 4095, 4095};
  const auto v = sim.waveform(codes);
  ASSERT_EQ(v.size(), 4u * 32u);
  // First period: settled at 0.
  EXPECT_NEAR(v[31], 0.0, 1e-9);
  // The step fires at the start of period 1; sample 32+j sits at
  // t = (j+1)*dt after it and must match the single-pole response.
  const double dt = 1.0 / (p.fs * p.oversample);
  for (int j = 0; j < 8; ++j) {
    const double t = (j + 1) * dt;
    EXPECT_NEAR(v[32 + static_cast<std::size_t>(j)],
                spec.v_swing * (1.0 - std::exp(-t / p.tau)),
                1e-6)
        << "j = " << j;
  }
  // End of record: fully settled.
  EXPECT_NEAR(v.back(), spec.v_swing, 1e-4);
}

TEST(Dynamic, BinarySkewCreatesGlitch) {
  const auto spec = paper_spec();
  DynamicParams clean = fast_params();
  DynamicParams skewed = fast_params();
  skewed.binary_skew = 100e-12;
  const SegmentedDac dac(spec, ideal_sources(spec));
  DynamicSimulator s_clean(dac, clean);
  DynamicSimulator s_skew(dac, skewed);
  // Major-carry transition: 2047 -> 2048 (binary 15->0, thermometer +1).
  const double e_clean = s_clean.glitch_energy(2047, 2048);
  const double e_skew = s_skew.glitch_energy(2047, 2048);
  EXPECT_NEAR(e_clean, 0.0, 1e-15);
  EXPECT_GT(e_skew, 1e-13);  // V*s
}

TEST(Dynamic, GlitchGrowsWithSwitchedWeight) {
  // Paper Section 1: glitch energy is determined by the binary bits; the
  // worst transition toggles the whole binary field against one unary.
  const auto spec = paper_spec();
  DynamicParams p = fast_params();
  p.binary_skew = 100e-12;
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
  const double e_major = sim.glitch_energy(2047, 2048);  // 15 LSB vs 16
  const double e_minor = sim.glitch_energy(2048, 2049);  // +1 LSB, no carry
  EXPECT_GT(e_major, 5.0 * e_minor);
}

TEST(Dynamic, FeedthroughKickAppearsOnThermometerEdges) {
  const auto spec = paper_spec();
  DynamicParams p = fast_params();
  p.feedthrough_lsb = 0.5;
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
  const double e = sim.glitch_energy(2047, 2048 + 15);  // toggles 1 unary
  EXPECT_GT(e, 0.0);
}

TEST(Dynamic, JitterRequiresRng) {
  const auto spec = paper_spec();
  DynamicParams p = fast_params();
  p.jitter_sigma = 2e-12;
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
  EXPECT_THROW(sim.waveform({0, 1, 2}), std::invalid_argument);
  mathx::Xoshiro256 rng(3);
  EXPECT_NO_THROW(sim.waveform({0, 1, 2}, &rng));
}

TEST(Dynamic, IdealWaveformIsPiecewiseConstant) {
  const auto spec = paper_spec();
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)),
                       fast_params());
  const auto v = sim.ideal_waveform({100, 200});
  EXPECT_EQ(v.size(), 64u);
  EXPECT_DOUBLE_EQ(v[0], v[31]);
  EXPECT_DOUBLE_EQ(v[32], v[63]);
  EXPECT_GT(v[32], v[0]);
}

TEST(Dynamic, SineCodesCoherentAndBounded) {
  const auto spec = paper_spec();
  const auto codes = sine_codes(spec, 1024, 53);
  EXPECT_EQ(codes.size(), 1024u);
  int cmin = 1 << 20, cmax = -1;
  for (int c : codes) {
    cmin = std::min(cmin, c);
    cmax = std::max(cmax, c);
  }
  EXPECT_GE(cmin, 0);
  EXPECT_LE(cmax, 4095);
  EXPECT_GT(cmax, 4000);  // near full scale
  EXPECT_LT(cmin, 100);
  // Coherence: first and last samples wrap smoothly (same phase).
  EXPECT_NEAR(codes.front(), 2047, 2.0);
}

TEST(Dynamic, ParameterValidation) {
  DynamicParams p = fast_params();
  p.oversample = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = fast_params();
  p.binary_skew = 1.0;  // longer than the period
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = fast_params();
  p.tau = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_THROW(sine_codes(core::DacSpec{}, 10, 20), std::invalid_argument);
}

TEST(Differential, MidScaleIsNearZero) {
  const auto spec = paper_spec();
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)),
                       fast_params());
  // level ~ total/2: both rails carry the same current.
  const auto v = sim.waveform_differential(
      std::vector<int>(4, 2048));  // 2048 of 4095
  EXPECT_NEAR(v.back(), sim.v_of_level(2048) - sim.v_of_level(2047), 1e-9);
}

TEST(Differential, FullScaleSwingIsTwice) {
  const auto spec = paper_spec();
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)),
                       fast_params());
  const auto lo = sim.waveform_differential(std::vector<int>(4, 0));
  const auto hi = sim.waveform_differential(std::vector<int>(4, 4095));
  EXPECT_NEAR(hi.back() - lo.back(), 2.0 * spec.v_swing, 1e-3);
  EXPECT_NEAR(lo.back(), -spec.v_swing, 1e-3);
}

TEST(Differential, CommonModeFeedthroughCancels) {
  // The feedthrough kick is common-mode by construction: the differential
  // waveform must be identical with and without it.
  const auto spec = paper_spec();
  DynamicParams with_ft = fast_params();
  with_ft.feedthrough_lsb = 1.0;
  DynamicParams without_ft = fast_params();
  const SegmentedDac dac(spec, ideal_sources(spec));
  DynamicSimulator a(dac, with_ft);
  DynamicSimulator b(dac, without_ft);
  const std::vector<int> codes = {100, 2000, 3000, 500};
  const auto va = a.waveform_differential(codes);
  const auto vb = b.waveform_differential(codes);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_NEAR(va[i], vb[i], 1e-12);
  }
  // ... while the single-ended waveform clearly differs.
  const auto sa = a.waveform(codes);
  const auto sb = b.waveform(codes);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(sa[i] - sb[i]));
  }
  EXPECT_GT(max_diff, 1e-4);
}

TEST(Differential, SharedJitterIsDeterministicPerRng) {
  const auto spec = paper_spec();
  DynamicParams p = fast_params();
  p.jitter_sigma = 3e-12;
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
  const std::vector<int> codes = {0, 1000, 2000, 3000};
  mathx::Xoshiro256 r1(5), r2(5);
  const auto a = sim.waveform_differential(codes, &r1);
  const auto b = sim.waveform_differential(codes, &r2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace csdac::dac
