#include "dac/layout_bridge.hpp"

#include <gtest/gtest.h>

#include "dac/static_analysis.hpp"
#include "mathx/stats.hpp"

namespace csdac::dac {
namespace {

using layout::ArrayGeometry;
using layout::GradientSpec;
using layout::make_sequence;
using layout::SwitchingScheme;

struct Fixture {
  core::DacSpec spec;  // 12 bit, b = 4, 255 unary
  ArrayGeometry geo{16, 16};
  mathx::Xoshiro256 rng{99};
};

TEST(LayoutBridge, NoErrorsGiveIdealChip) {
  Fixture f;
  const auto seq = make_sequence(SwitchingScheme::kRowMajor, f.geo, 255);
  const auto e = source_errors_from_layout(f.spec, f.geo, seq,
                                           GradientSpec{}, 0.0, f.rng);
  const SegmentedDac chip(f.spec, e);
  const auto m = analyze_transfer(chip.transfer());
  EXPECT_NEAR(m.inl_max, 0.0, 1e-9);
}

TEST(LayoutBridge, SequenceLengthValidated) {
  Fixture f;
  const std::vector<int> short_seq = {0, 1, 2};
  EXPECT_THROW(source_errors_from_layout(f.spec, f.geo, short_seq,
                                         GradientSpec{}, 0.0, f.rng),
               std::invalid_argument);
}

TEST(LayoutBridge, GoodSchemeBeatsRasterUnderGradient) {
  // End-to-end Section 4 claim: the gradient-compensating switching order
  // buys real INL on the full converter, not just on the unary ramp.
  Fixture f;
  const GradientSpec g{0.01, 0.008, 0.005};
  const auto raster = make_sequence(SwitchingScheme::kRowMajor, f.geo, 255);
  const auto hier =
      make_sequence(SwitchingScheme::kHierarchical, f.geo, 255);
  // Systematic only, no double-centroid so the raster damage is visible.
  mathx::Xoshiro256 rng1(1), rng2(1);
  const double inl_raster = layout_chip_inl(
      f.spec, f.geo, raster, g, 0.0, rng1, /*double_centroid=*/false);
  const double inl_hier = layout_chip_inl(f.spec, f.geo, hier, g, 0.0, rng2,
                                          /*double_centroid=*/false);
  EXPECT_GT(inl_raster, 3.0 * inl_hier);
}

TEST(LayoutBridge, DoubleCentroidRemovesLinearComponent) {
  Fixture f;
  const GradientSpec g{0.02, 0.01, 0.0};  // purely linear
  const auto seq = make_sequence(SwitchingScheme::kRowMajor, f.geo, 255);
  mathx::Xoshiro256 rng1(1), rng2(1);
  const double with_dc =
      layout_chip_inl(f.spec, f.geo, seq, g, 0.0, rng1, true);
  const double without_dc =
      layout_chip_inl(f.spec, f.geo, seq, g, 0.0, rng2, false);
  EXPECT_LT(with_dc, 0.01);
  EXPECT_GT(without_dc, 1.0);
}

TEST(LayoutBridge, RandomAndSystematicCombine) {
  // With both error sources the INL must exceed either alone (statistically
  // over several chips).
  Fixture f;
  const GradientSpec g{0.0, 0.0, 0.015};
  const auto seq = make_sequence(SwitchingScheme::kRowMajor, f.geo, 255);
  const double sigma = 0.005;
  mathx::RunningStats both, rand_only;
  for (int chip = 0; chip < 12; ++chip) {
    mathx::Xoshiro256 rng_a(100 + chip), rng_b(100 + chip);
    both.add(layout_chip_inl(f.spec, f.geo, seq, g, sigma, rng_a, false));
    rand_only.add(layout_chip_inl(f.spec, f.geo, seq, GradientSpec{}, sigma,
                                  rng_b, false));
  }
  EXPECT_GT(both.mean(), rand_only.mean());
}

TEST(LayoutBridge, CentroidBalancedSchemeControlsLinearGradients) {
  Fixture f;
  const GradientSpec g{0.01, 0.01, 0.0};
  const auto walk =
      make_sequence(SwitchingScheme::kCentroidBalanced, f.geo, 255, 3);
  const auto raster = make_sequence(SwitchingScheme::kRowMajor, f.geo, 255);
  mathx::Xoshiro256 rng1(1), rng2(1);
  const double inl_walk =
      layout_chip_inl(f.spec, f.geo, walk, g, 0.0, rng1, false);
  const double inl_raster =
      layout_chip_inl(f.spec, f.geo, raster, g, 0.0, rng2, false);
  EXPECT_LT(inl_walk, 0.25 * inl_raster);
}

}  // namespace
}  // namespace csdac::dac
