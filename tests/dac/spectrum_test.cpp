#include "dac/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "dac/dynamic.hpp"
#include "dac/static_analysis.hpp"

namespace csdac::dac {
namespace {

std::vector<double> tone(std::size_t n, int bin, double amp,
                         double dc = 0.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = dc + amp * std::sin(2.0 * std::numbers::pi * bin *
                               static_cast<double>(i) / n);
  }
  return v;
}

TEST(Spectrum, PureToneHasHugeSfdr) {
  auto v = tone(1024, 53, 1.0, 2.0);
  const auto r = analyze_spectrum(v, 300e6);
  EXPECT_EQ(r.fund_bin, 53u);
  EXPECT_GT(r.sfdr_db, 200.0);
  EXPECT_NEAR(r.freq_hz[53], 300e6 * 53.0 / 1024.0, 1.0);
}

TEST(Spectrum, TwoTonesSfdrReadsTheirRatio) {
  auto v = tone(1024, 53, 1.0);
  const auto spur = tone(1024, 200, 0.001);  // -60 dBc
  for (std::size_t i = 0; i < v.size(); ++i) v[i] += spur[i];
  const auto r = analyze_spectrum(v, 300e6);
  EXPECT_NEAR(r.sfdr_db, 60.0, 0.1);
  EXPECT_NEAR(r.mag_db[200], -60.0, 0.1);
  EXPECT_NEAR(r.mag_db[53], 0.0, 1e-6);
}

TEST(Spectrum, SndrAccountsForAllBins) {
  auto v = tone(1024, 53, 1.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] += 0.001 * std::sin(2.0 * std::numbers::pi * 200.0 * i / 1024.0) +
            0.001 * std::sin(2.0 * std::numbers::pi * 301.0 * i / 1024.0);
  }
  const auto r = analyze_spectrum(v, 300e6);
  // Two -60 dBc spurs: SNDR ~ 57 dB, SFDR ~ 60 dB.
  EXPECT_NEAR(r.sndr_db, 57.0, 0.3);
  EXPECT_NEAR(r.sfdr_db, 60.0, 0.3);
  EXPECT_NEAR(r.enob, (r.sndr_db - 1.76) / 6.02, 1e-9);
}

TEST(Spectrum, ThdPicksHarmonics) {
  auto v = tone(4096, 53, 1.0);
  const auto h2 = tone(4096, 106, 0.01);   // -40 dBc second harmonic
  const auto h3 = tone(4096, 159, 0.003);  // ~-50 dBc third
  for (std::size_t i = 0; i < v.size(); ++i) v[i] += h2[i] + h3[i];
  const auto r = analyze_spectrum(v, 300e6);
  const double expected =
      10.0 * std::log10(0.01 * 0.01 / 2 + 0.003 * 0.003 / 2) -
      10.0 * std::log10(0.5);
  EXPECT_NEAR(r.thd_db, expected, 0.2);
}

TEST(Spectrum, NonPow2RecordWorks) {
  // 50 periods in 1000 samples — the paper's Fig. 8 capture style,
  // exercising the Bluestein path.
  auto v = tone(1000, 50, 1.0);
  const auto r = analyze_spectrum(v, 300e6);
  EXPECT_EQ(r.fund_bin, 50u);
  EXPECT_GT(r.sfdr_db, 150.0);
}

TEST(Spectrum, MismatchLimitedDacSpectrum) {
  // End-to-end: a 12-bit DAC with eq. (1)-spec mismatch driven by a
  // coherent sine should show SFDR in the 70-90 dB range (static
  // mismatch-limited), far below the ideal-quantization-only case.
  core::DacSpec spec;
  mathx::Xoshiro256 rng(77);
  const auto codes = sine_codes(spec, 2048, 53);

  auto run = [&](double sigma) {
    const SegmentedDac dac(spec,
                           sigma > 0.0
                               ? draw_source_errors(spec, sigma, rng)
                               : ideal_sources(spec));
    DynamicParams p;
    p.oversample = 2;  // static-limited test: dynamics negligible
    p.tau = 1e-12;
    DynamicSimulator sim(dac, p);
    const auto wave = sim.waveform(codes);
    // Decimate to one settled sample per period: the in-band spectrum of
    // the 300 MS/s converter, free of zero-order-hold images.
    std::vector<double> sampled;
    for (std::size_t i = p.oversample - 1; i < wave.size();
         i += p.oversample) {
      sampled.push_back(wave[i]);
    }
    return analyze_spectrum(sampled, p.fs);
  };
  const auto ideal = run(0.0);
  const auto real = run(0.00263);
  EXPECT_GT(ideal.sfdr_db, real.sfdr_db);
  EXPECT_GT(real.sfdr_db, 60.0);
  EXPECT_LT(real.sfdr_db, 100.0);
}

TEST(Spectrum, DifferentialCancelsEvenOrderDroopDistortion) {
  // Finite output impedance produces a compressive (even-order) droop on
  // each rail; the differential output cancels HD2, so its SFDR must be
  // far better than single-ended — the [7,8] argument for differential
  // operation that the paper's Fig. 8 relies on.
  core::DacSpec spec;
  DynamicParams p;
  p.oversample = 2;
  p.tau = 1e-12;
  p.rout_unit = 50e6;  // strong droop
  DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
  const auto codes = sine_codes(spec, 2048, 53);
  auto sample = [&](const std::vector<double>& wave) {
    std::vector<double> s_out;
    for (std::size_t i = 1; i < wave.size(); i += 2) s_out.push_back(wave[i]);
    return analyze_spectrum(s_out, p.fs);
  };
  const auto se = sample(sim.waveform(codes));
  const auto diff = sample(sim.waveform_differential(codes));
  EXPECT_GT(diff.sfdr_db, se.sfdr_db + 15.0);
  // Single-ended: the worst spur is HD2.
  EXPECT_NEAR(static_cast<double>(se.fund_bin) * 2.0,
              static_cast<double>(se.fund_bin * 2), 0.0);
}

TEST(Spectrum, HannWindowRecoversNonCoherentCapture) {
  // A non-coherent tone (non-integer cycles) leaks across the whole
  // spectrum under a rectangular window; a Hann window with guard bins
  // restores a usable SFDR measurement.
  const std::size_t n = 1024;
  std::vector<double> v(n);
  const double cycles = 53.37;  // deliberately non-integer
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * std::numbers::pi * cycles * i / n) +
           1e-3 * std::sin(2.0 * std::numbers::pi * 200.0 * i / n);
  }
  SpectrumOptions rect;
  const auto r_rect = analyze_spectrum(v, 300e6, rect);
  // Hann's -31 dB first sidelobes still hide a -60 dBc spur; the 4-term
  // Blackman-Harris (-92 dB sidelobes) with a wider guard exposes it.
  SpectrumOptions hann;
  hann.window = mathx::Window::kHann;
  hann.guard_bins = 3;
  const auto r_hann = analyze_spectrum(v, 300e6, hann);
  SpectrumOptions bh;
  bh.window = mathx::Window::kBlackmanHarris4;
  bh.guard_bins = 5;
  bh.dc_bins = 5;  // the window spreads residual DC over its mainlobe
  const auto r_bh = analyze_spectrum(v, 300e6, bh);
  EXPECT_LT(r_rect.sfdr_db, 35.0);   // leakage destroys the rect estimate
  EXPECT_GT(r_hann.sfdr_db, r_rect.sfdr_db + 5.0);
  EXPECT_NEAR(r_bh.sfdr_db, 60.0, 4.0);
}

TEST(Spectrum, JitterSndrTracksApertureTheory) {
  // Clock-jitter noise (paper ref. [6]): SNR ~ -20*log10(2*pi*fin*sigma_j)
  // for impulse sampling. The ZOH + finite-settling waveform shapes the
  // constant, but the measured SNDR must track the theory's slope (-6 dB
  // per jitter doubling) and stay within a fixed offset of it.
  core::DacSpec spec;
  const double fin = 363.0 / 2048.0 * 300e6;
  auto sndr_at = [&](double sigma_j) {
    dac::DynamicParams p;
    p.fs = 300e6;
    p.oversample = 16;
    p.tau = 0.3e-9;
    p.jitter_sigma = sigma_j;
    DynamicSimulator sim(SegmentedDac(spec, ideal_sources(spec)), p);
    mathx::Xoshiro256 rng(7);
    const auto codes = sine_codes(spec, 2048, 363);
    const auto wave = sim.waveform(codes, &rng);
    SpectrumOptions o;
    o.max_freq = 150e6;
    return analyze_spectrum(wave, p.fs * p.oversample, o).sndr_db;
  };
  double prev = 1e9;
  for (double sj : {5e-12, 20e-12, 50e-12}) {
    const double sndr = sndr_at(sj);
    const double theory = -20.0 * std::log10(2.0 * M_PI * fin * sj);
    EXPECT_LT(sndr, prev);                 // monotone degradation
    EXPECT_NEAR(sndr, theory, 8.0) << "sigma_j = " << sj;
    prev = sndr;
  }
}

TEST(Spectrum, InputValidation) {
  EXPECT_THROW(analyze_spectrum({1.0, 2.0}, 1e6), std::invalid_argument);
  auto v = tone(64, 5, 1.0);
  EXPECT_THROW(analyze_spectrum(v, 0.0), std::invalid_argument);
  EXPECT_THROW(analyze_spectrum(v, std::nan("")), std::invalid_argument);
}

TEST(Spectrum, OptionsValidateRejectsBadFields) {
  auto v = tone(64, 5, 1.0);
  SpectrumOptions o;
  o.guard_bins = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  EXPECT_THROW(analyze_spectrum(v, 1e6, o), std::invalid_argument);
  o = SpectrumOptions{};
  o.dc_bins = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = SpectrumOptions{};
  o.harmonics = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = SpectrumOptions{};
  o.harmonics = 5000;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = SpectrumOptions{};
  o.max_freq = -1.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = SpectrumOptions{};
  o.max_freq = std::numeric_limits<double>::infinity();
  EXPECT_THROW(o.validate(), std::invalid_argument);
  EXPECT_NO_THROW(SpectrumOptions{}.validate());
}

TEST(Spectrum, MaxFreqBelowFundamentalThrows) {
  // fundamental at bin 53 of 1024 at 300 MHz -> 15.5 MHz; an analysis
  // band capped at 10 MHz cannot see it and must say so instead of
  // silently reporting a spur-free band.
  auto v = tone(1024, 53, 1.0);
  SpectrumOptions o;
  o.max_freq = 10e6;
  EXPECT_THROW(analyze_spectrum(v, 300e6, o, 53), std::invalid_argument);
  // The same record passes once the band reaches past the fundamental.
  o.max_freq = 20e6;
  EXPECT_NO_THROW(analyze_spectrum(v, 300e6, o, 53));
}

TEST(Spectrum, FundamentalInsideDcExclusionThrows) {
  auto v = tone(1024, 3, 1.0);
  SpectrumOptions o;
  o.dc_bins = 4;  // swallows bin 3
  EXPECT_THROW(analyze_spectrum(v, 300e6, o, 3), std::invalid_argument);
  o.dc_bins = 2;
  EXPECT_NO_THROW(analyze_spectrum(v, 300e6, o, 3));
}

TEST(Spectrum, FundamentalGuardMustNotSwallowDcLeakage) {
  // A strong component right above DC (bin 1) with the fundamental at
  // bin 2 and a wide guard band: the guard must clamp at the DC
  // exclusion instead of counting bin 1 (and bin 0) as signal power.
  const std::size_t n = 256;
  auto v = tone(n, 2, 1.0);
  const auto near_dc = tone(n, 1, 10.0);  // 20 dB above the fundamental
  for (std::size_t i = 0; i < n; ++i) v[i] += near_dc[i];
  const auto spur = tone(n, 30, 0.01);  // -40 dBc reference spur
  for (std::size_t i = 0; i < n; ++i) v[i] += spur[i];
  SpectrumOptions o;
  o.guard_bins = 2;
  o.dc_bins = 1;  // bin 1 is "DC junk", bin 2 is the signal
  const auto r = analyze_spectrum(v, 1e6, o, 2);
  // Tone power must reflect the unit-amplitude fundamental alone: the
  // known -40 dBc spur reads -40 dB. If the guard window leaked the 10x
  // near-DC component into p_fund it would read -60 dB instead.
  EXPECT_NEAR(r.mag_db[30], -40.0, 0.5);
  EXPECT_NEAR(r.sfdr_db, 40.0, 0.5);
}

TEST(Spectrum, HarmonicAliasingFoldsPastNyquist) {
  // Fundamental at bin 100 of 256: its 2nd harmonic (bin 200) lives past
  // Nyquist (128) and must fold back to bin 256 - 200 = 56 in the THD
  // accumulation.
  const std::size_t n = 256;
  auto v = tone(n, 100, 1.0);
  const auto h2 = tone(n, 56, 0.01);  // folded 2nd harmonic, -40 dBc
  for (std::size_t i = 0; i < n; ++i) v[i] += h2[i];
  SpectrumOptions o;
  o.harmonics = 3;
  const auto r = analyze_spectrum(v, 1e6, o, 100);
  EXPECT_NEAR(r.thd_db, -40.0, 0.5);
  EXPECT_NEAR(r.sfdr_db, 40.0, 0.5);
}

}  // namespace
}  // namespace csdac::dac
