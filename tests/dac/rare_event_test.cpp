// Statistical validation of the rare-event yield estimators (importance
// sampling, stratified+antithetic, Brownian-bridge surrogate):
//
//  * agreement — IS and stratified estimates of a mid-yield 8-bit failure
//    probability must land within 3x the combined 95% CI of a much larger
//    brute-force run (unbiasedness, not luck: every budget is fixed-seed);
//  * variance — at the deep-tail operating point the antithetic pairs
//    must beat plain MC variance on the same budget, measured across 40
//    fixed-seed replicates;
//  * diagnostics — a deliberately over-inflated proposal must trip the
//    low-ESS flag, the production tilt must not;
//  * determinism — bit-identical results for thread counts {1, 2, 7} and
//    every forced SIMD backend, plus a checked-in fixed-seed golden
//    (tools/gen_golden_static rare) pinning the exact stream derivation;
//  * bridge — Kolmogorov CDF/quantile against published table values
//    (Smirnov 1948), and yield monotone in sigma and in the INL spec.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/spec.hpp"
#include "dac/rare_event.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/rare_event.hpp"
#include "mathx/simd.hpp"

namespace csdac::dac {
namespace {

#include "golden_rare_8bit.inc"

constexpr double kTol = 1e-12;

core::DacSpec spec8() {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  return spec;
}

IsYieldEstimate golden_is(int threads) {
  return inl_yield_is(spec8(), kGoldenRareSigmaUnit, kGoldenRareSigmaScale,
                      kGoldenRareModes, kGoldenRareChips, kGoldenRareSeed,
                      0.5, InlReference::kBestFit, threads);
}

StratYieldEstimate golden_strat(int threads) {
  return inl_yield_stratified(spec8(), kGoldenRareSigmaUnit,
                              kGoldenRareStrata, kGoldenRareChips,
                              kGoldenRareSeed, 0.5, InlReference::kBestFit,
                              threads);
}

// Restores the dispatch choice a test forced.
struct BackendGuard {
  mathx::SimdBackend saved = mathx::simd_backend();
  ~BackendGuard() { mathx::simd_force_backend(saved); }
};

TEST(GoldenRare, ImportanceSamplingMatchesCheckedIn) {
  const auto is = golden_is(1);
  EXPECT_EQ(is.chips, kGoldenRareChips);
  EXPECT_EQ(is.fails, kGoldenRareIsFails);
  EXPECT_NEAR(is.yield, kGoldenRareIsYield, kTol);
  EXPECT_NEAR(is.ci95, kGoldenRareIsCi95, kTol);
  EXPECT_NEAR(is.ess, kGoldenRareIsEss, kTol * kGoldenRareIsEss);
  EXPECT_NEAR(is.log_weight_max, kGoldenRareIsLogWMax, kTol);
  EXPECT_NEAR(is.log_weight_min, kGoldenRareIsLogWMin, kTol);
  EXPECT_FALSE(is.low_ess);
}

TEST(GoldenRare, StratifiedMatchesCheckedIn) {
  const auto st = golden_strat(1);
  EXPECT_EQ(st.pairs, kGoldenRareStratPairs);
  EXPECT_EQ(st.strata, kGoldenRareStrata);
  EXPECT_NEAR(st.yield, kGoldenRareStratYield, kTol);
  EXPECT_NEAR(st.ci95, kGoldenRareStratCi95, kTol);
}

TEST(GoldenRare, BridgeMatchesCheckedIn) {
  const auto br = inl_yield_bridge(spec8(), kGoldenRareSigmaUnit, 0.5);
  EXPECT_NEAR(br.yield, kGoldenRareBridgeYield, kTol);
  EXPECT_NEAR(br.c, kGoldenRareBridgeC, kTol);
  EXPECT_NEAR(br.sigma_inl, kGoldenRareBridgeSigmaInl, kTol);
  EXPECT_NEAR(mathx::kolmogorov_quantile(0.9999), kGoldenRareC9999, kTol);
}

TEST(RareDeterminism, BitIdenticalAcrossThreadCounts) {
  const auto is1 = golden_is(1);
  const auto st1 = golden_strat(1);
  for (int threads : {2, 7}) {
    const auto is = golden_is(threads);
    EXPECT_EQ(is.fails, is1.fails) << threads << " threads";
    EXPECT_EQ(is.yield, is1.yield) << threads << " threads";
    EXPECT_EQ(is.ci95, is1.ci95) << threads << " threads";
    EXPECT_EQ(is.ess, is1.ess) << threads << " threads";
    EXPECT_EQ(is.log_weight_max, is1.log_weight_max) << threads;
    EXPECT_EQ(is.log_weight_min, is1.log_weight_min) << threads;
    const auto st = golden_strat(threads);
    EXPECT_EQ(st.yield, st1.yield) << threads << " threads";
    EXPECT_EQ(st.ci95, st1.ci95) << threads << " threads";
  }
}

TEST(RareDeterminism, BitIdenticalAcrossSimdBackends) {
  BackendGuard guard;
  const mathx::SimdBackend widest = guard.saved;
  mathx::simd_force_backend(mathx::SimdBackend::kScalar);
  const auto is1 = golden_is(3);
  const auto st1 = golden_strat(3);
  for (mathx::SimdBackend b :
       {mathx::SimdBackend::kSse2, mathx::SimdBackend::kAvx2}) {
    if (b > widest) continue;  // this CPU cannot run the wider kernels
    mathx::simd_force_backend(b);
    const auto is = golden_is(3);
    EXPECT_EQ(is.yield, is1.yield) << mathx::simd_backend_name(b);
    EXPECT_EQ(is.ci95, is1.ci95) << mathx::simd_backend_name(b);
    EXPECT_EQ(is.ess, is1.ess) << mathx::simd_backend_name(b);
    const auto st = golden_strat(3);
    EXPECT_EQ(st.yield, st1.yield) << mathx::simd_backend_name(b);
    EXPECT_EQ(st.ci95, st1.ci95) << mathx::simd_backend_name(b);
  }
}

// Mid-yield case where brute force still resolves the failure probability
// (p ~ 0.4%): the reweighted and stratified estimates must agree with a
// 5x larger brute-force run within 3x the combined CI. Different seeds on
// purpose — the estimators must agree through their CIs, not by sharing
// streams.
TEST(RareAgreement, EstimatorsMatchBruteForceWithinCombinedCi) {
  const core::DacSpec spec = spec8();
  const double sigma = kGoldenRareSigmaUnit;
  const auto bf = inl_yield_mc(spec, sigma, 20000, 11, 0.5,
                               InlReference::kBestFit, 0);
  const auto is = inl_yield_is(spec, sigma, 2.2, 8, 4000, 12, 0.5,
                               InlReference::kBestFit, 0);
  const auto st = inl_yield_stratified(spec, sigma, 16, 4000, 13, 0.5,
                                       InlReference::kBestFit, 0);
  const double p_bf = 1.0 - bf.yield;
  ASSERT_GT(p_bf, 0.0) << "brute force saw no failures — case too deep";
  EXPECT_FALSE(is.low_ess);
  EXPECT_LE(std::fabs((1.0 - is.yield) - p_bf),
            3.0 * std::hypot(is.ci95, bf.ci95))
      << "IS p = " << 1.0 - is.yield << " vs brute force " << p_bf;
  EXPECT_LE(std::fabs((1.0 - st.yield) - p_bf),
            3.0 * std::hypot(st.ci95, bf.ci95))
      << "stratified p = " << 1.0 - st.yield << " vs brute force " << p_bf;
}

// At the deep-tail operating point the failure indicator is driven by the
// first bridge mode, which is exactly what the antithetic reflection
// anticorrelates: across 40 fixed-seed replicates the stratified
// estimator's spread must be below plain MC on the same 512-chip budget.
// (At mid-yield the shared non-first-mode draw correlates the pair
// members positively and the advantage disappears — that regime belongs
// to plain MC or IS, as the docs say.)
TEST(RareVariance, AntitheticBeatsPlainMcOnTheSameBudget) {
  const core::DacSpec spec = spec8();
  const double sigma = kGoldenRareSigmaUnit;
  const int kReplicates = 40;
  const int kBudget = 512;
  double s = 0, s2 = 0, m = 0, m2 = 0;
  for (int r = 0; r < kReplicates; ++r) {
    const auto st = inl_yield_stratified(spec, sigma, 2, kBudget, 100 + r,
                                         0.5, InlReference::kBestFit, 1);
    const auto mc = inl_yield_mc(spec, sigma, kBudget, 5000 + r, 0.5,
                                 InlReference::kBestFit, 1);
    s += st.yield;
    s2 += st.yield * st.yield;
    m += mc.yield;
    m2 += mc.yield * mc.yield;
  }
  const double var_strat = (s2 - s * s / kReplicates) / (kReplicates - 1);
  const double var_mc = (m2 - m * m / kReplicates) / (kReplicates - 1);
  EXPECT_GT(var_mc, 0.0);
  EXPECT_LE(var_strat, var_mc)
      << "antithetic variance " << var_strat << " vs plain MC " << var_mc;
}

// The ESS diagnostics exist to catch the classic high-dimension IS
// failure: inflate too much, and a handful of huge weights carry the
// whole estimate. The production tilt must stay comfortably above the
// trust threshold; a deliberately over-inflated proposal must trip it.
TEST(RareEss, OverInflatedProposalTripsTheFlag) {
  const core::DacSpec spec = spec8();
  const auto sane = inl_yield_is(spec, kGoldenRareSigmaUnit, 2.2, 8, 2000,
                                 4242, 0.5, InlReference::kBestFit, 1);
  EXPECT_FALSE(sane.low_ess);
  EXPECT_GT(sane.ess_fraction, kEssTrustFraction);
  const auto inflated = inl_yield_is(spec, kGoldenRareSigmaUnit, 8.0, 30,
                                     2000, 4242, 0.5,
                                     InlReference::kBestFit, 1);
  EXPECT_TRUE(inflated.low_ess);
  EXPECT_LT(inflated.ess_fraction, kEssTrustFraction);
  EXPECT_LT(inflated.ess_fraction, sane.ess_fraction);
}

// Smirnov's table of the Kolmogorov law (the bridge max-excursion
// distribution the surrogate is built on): K(0.82757) = 0.5 etc. The
// implementation must reproduce the tabulated quantiles to 1e-4 and
// invert its own CDF.
TEST(RareBridge, KolmogorovCdfMatchesTabulatedValues) {
  const struct {
    double x, p;
  } kTable[] = {{0.82757, 0.50}, {1.22385, 0.90}, {1.35810, 0.95},
                {1.62762, 0.99}};
  for (const auto& row : kTable) {
    EXPECT_NEAR(mathx::kolmogorov_cdf(row.x), row.p, 1e-4) << "x = " << row.x;
    EXPECT_NEAR(mathx::kolmogorov_quantile(row.p), row.x, 1e-4)
        << "p = " << row.p;
  }
  EXPECT_NEAR(mathx::kolmogorov_cdf(mathx::kolmogorov_quantile(0.9999)),
              0.9999, 1e-10);
  EXPECT_EQ(mathx::kolmogorov_cdf(0.0), 0.0);
  EXPECT_NEAR(mathx::kolmogorov_cdf(10.0), 1.0, 1e-15);
}

TEST(RareBridge, SurrogateHitsTabulatedYieldAtCalibratedSigma) {
  const core::DacSpec spec = spec8();
  // Choose sigma so the normalized limit c lands exactly on a tabulated
  // quantile; the surrogate yield must then be the tabulated probability.
  const double denom =
      std::sqrt(spec.unary_weight() * static_cast<double>(spec.num_unary()));
  for (const auto& [x, p] : {std::pair{1.22385, 0.90},
                             std::pair{1.62762, 0.99}}) {
    const auto br = inl_yield_bridge(spec, 0.5 / (x * denom), 0.5);
    EXPECT_NEAR(br.c, x, 1e-12);
    EXPECT_NEAR(br.yield, p, 1e-4) << "c = " << x;
  }
}

TEST(RareBridge, YieldMonotoneInSigmaAndSpec) {
  const core::DacSpec spec = spec8();
  // Base sigma keeps the normalized limit c below ~3.2 everywhere: past
  // c ~ 4.5 the Kolmogorov cdf rounds to exactly 1.0 in double precision
  // and strict monotonicity has nothing left to distinguish.
  double prev = 1.0;
  for (double mult : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double y = inl_yield_bridge(spec, mult * 0.02, 0.5).yield;
    EXPECT_LT(y, prev) << "sigma mult " << mult;
    EXPECT_GT(y, 0.0);
    prev = y;
  }
  prev = 0.0;
  for (double limit : {0.25, 0.5, 1.0, 2.0}) {
    const double y = inl_yield_bridge(spec, 0.02, limit).yield;
    EXPECT_GT(y, prev) << "limit " << limit;
    prev = y;
  }
}

TEST(RareArguments, InvalidInputsThrow) {
  const core::DacSpec spec = spec8();
  EXPECT_THROW(inl_yield_is(spec, 0.01, 0.5, 8, 100, 1), std::invalid_argument);
  EXPECT_THROW(inl_yield_is(spec, 0.01, 2.0, 0, 100, 1),
               std::invalid_argument);
  EXPECT_THROW(inl_yield_is(spec, 0.01, 2.0, 8, 0, 1), std::invalid_argument);
  EXPECT_THROW(inl_yield_is(spec, -0.01, 2.0, 8, 100, 1),
               std::invalid_argument);
  EXPECT_THROW(inl_yield_stratified(spec, 0.01, 0, 100, 1),
               std::invalid_argument);
  EXPECT_THROW(inl_yield_stratified(spec, 0.01, 4, 1, 1),
               std::invalid_argument);
  EXPECT_THROW(inl_yield_stratified(spec, 0.01, 100, 100, 1),
               std::invalid_argument);
  EXPECT_THROW(inl_yield_bridge(spec, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(inl_yield_bridge(spec, 0.01, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::dac
