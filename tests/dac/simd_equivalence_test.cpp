// Bit-identity of the chip-per-lane SIMD Monte-Carlo kernels against the
// scalar chip bodies, enforced with EXPECT_EQ (no tolerances): every
// backend the build provides must reproduce mc_chip_metrics and the
// calibration chip pass exactly, and the full yield estimators must return
// identical results under CSDAC_SIMD=scalar and the widest backend, for
// any thread count and any chips-to-lanes remainder.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/spec.hpp"
#include "dac/calibration.hpp"
#include "dac/lane_kernel.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/rng.hpp"
#include "mathx/simd.hpp"

namespace csdac::dac {
namespace {

using mathx::SimdBackend;

// Restores the dispatch choice a test forced.
struct BackendGuard {
  SimdBackend saved = mathx::simd_backend();
  ~BackendGuard() { mathx::simd_force_backend(saved); }
};

const SimdBackend kAllBackends[] = {SimdBackend::kScalar, SimdBackend::kSse2,
                                    SimdBackend::kAvx2};

core::DacSpec make_spec(int nbits, int binary_bits) {
  core::DacSpec spec;
  spec.nbits = nbits;
  spec.binary_bits = binary_bits;
  return spec;
}

// The spec matrix the block kernels are checked over: the paper's 12-bit
// case, a small 8-bit case, a fully-unary converter (b = 0), an almost
// fully-binary one (single unary source), and the minimum legal size.
std::vector<core::DacSpec> kernel_specs() {
  return {make_spec(12, 4), make_spec(8, 3), make_spec(6, 0),
          make_spec(6, 5), make_spec(2, 0)};
}

TEST(SimdEquivalence, DrawBitsMatchScalarStreams) {
  constexpr std::uint64_t kSeed = 31;
  for (SimdBackend b : kAllBackends) {
    const LaneKernel* k = lane_kernel(b);
    if (k == nullptr) continue;
    for (std::uint64_t stride : {1ull, 2ull}) {
      constexpr int kCount = 512;
      std::vector<std::uint64_t> out(
          static_cast<std::size_t>(kCount) * k->lanes);
      k->draw_bits(kSeed, /*index0=*/5, stride, kCount, out.data());
      for (int l = 0; l < k->lanes; ++l) {
        mathx::Xoshiro256 ref = mathx::stream_rng(kSeed, 5 + stride * l);
        for (int i = 0; i < kCount; ++i) {
          ASSERT_EQ(out[static_cast<std::size_t>(i) * k->lanes + l], ref())
              << simd_backend_name(b) << " lane " << l << " draw " << i;
        }
      }
    }
  }
}

TEST(SimdEquivalence, DrawNormalsMatchScalarSequences) {
  constexpr std::uint64_t kSeed = 77;
  for (SimdBackend b : kAllBackends) {
    const LaneKernel* k = lane_kernel(b);
    if (k == nullptr) continue;
    constexpr int kCount = 3000;  // long enough to hit rejection divergence
    std::vector<double> out(static_cast<std::size_t>(kCount) * k->lanes);
    k->draw_normals(kSeed, /*index0=*/0, /*stride=*/1, kCount, out.data());
    for (int l = 0; l < k->lanes; ++l) {
      mathx::Xoshiro256 ref = mathx::stream_rng(kSeed, l);
      for (int i = 0; i < kCount; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(i) * k->lanes + l],
                  mathx::normal(ref))
            << simd_backend_name(b) << " lane " << l << " draw " << i;
      }
    }
  }
}

TEST(SimdEquivalence, McBlockMatchesScalarChips) {
  constexpr std::uint64_t kSeed = 12345;
  constexpr double kSigma = 0.04;
  for (SimdBackend b : kAllBackends) {
    const LaneKernel* k = lane_kernel(b);
    if (k == nullptr) continue;
    for (const auto& spec : kernel_specs()) {
      ChipWorkspaceXN ws(spec, k->lanes);
      ChipWorkspace ref_ws(spec);
      for (auto ref : {InlReference::kEndpoint, InlReference::kBestFit}) {
        for (std::int64_t chip0 : {0, 7}) {
          StaticSummary out[kMaxSimdLanes];
          mc_chip_metrics_xN(*k, ws, kSigma, kSeed, chip0, ref, out);
          for (int l = 0; l < k->lanes; ++l) {
            const StaticSummary want =
                mc_chip_metrics(ref_ws, kSigma, kSeed, chip0 + l, ref);
            EXPECT_EQ(out[l].inl_max, want.inl_max)
                << simd_backend_name(b) << " nbits=" << spec.nbits
                << " b=" << spec.binary_bits << " chip " << chip0 + l;
            EXPECT_EQ(out[l].dnl_max, want.dnl_max)
                << simd_backend_name(b) << " nbits=" << spec.nbits
                << " b=" << spec.binary_bits << " chip " << chip0 + l;
          }
        }
      }
    }
  }
}

TEST(SimdEquivalence, CalBlockMatchesScalarChips) {
  constexpr std::uint64_t kSeed = 99;
  constexpr double kSigma = 0.06;
  constexpr double kLimit = 0.5;
  CalibrationOptions opts;
  opts.range_lsb = 2.0;
  opts.bits = 5;
  for (double noise : {0.0, 0.1}) {
    opts.measure_noise_lsb = noise;
    for (SimdBackend b : kAllBackends) {
      const LaneKernel* k = lane_kernel(b);
      if (k == nullptr) continue;
      for (const auto& spec : {make_spec(10, 3), make_spec(8, 0)}) {
        ChipWorkspaceXN ws(spec, k->lanes);
        ChipWorkspace ref_ws(spec);
        for (std::int64_t chip0 : {0, 13}) {
          bool before[kMaxSimdLanes], after[kMaxSimdLanes];
          k->cal_block(ws, kSigma, opts, kSeed, chip0, kLimit, before, after);
          for (int l = 0; l < k->lanes; ++l) {
            const CalChipResult want = cal_chip_passes(
                ref_ws, kSigma, opts, kSeed, chip0 + l, kLimit);
            EXPECT_EQ(before[l], want.pass_before)
                << simd_backend_name(b) << " noise=" << noise << " chip "
                << chip0 + l;
            EXPECT_EQ(after[l], want.pass_after)
                << simd_backend_name(b) << " noise=" << noise << " chip "
                << chip0 + l;
          }
        }
      }
    }
  }
}

TEST(SimdEquivalence, ActiveKernelFollowsForcedBackend) {
  BackendGuard guard;
  mathx::simd_force_backend(SimdBackend::kScalar);
  const LaneKernel& k = active_lane_kernel();
  EXPECT_EQ(k.backend, SimdBackend::kScalar);
  EXPECT_EQ(k.lanes, 1);
  // The widest kernel the dispatch can reach never exceeds the detection.
  mathx::simd_force_backend(SimdBackend::kAvx2);
  EXPECT_LE(active_lane_kernel().backend, mathx::simd_detect());
}

// Full-path equivalence: every yield estimator must return bit-identical
// numbers under the scalar dispatch and the widest available backend, for
// thread counts {1, 2, 7} and chip counts exercising every remainder mod
// 4 (including runs smaller than one vector block).
class SimdYieldEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    widest_ = mathx::simd_force_backend(mathx::simd_detect());
    if (widest_ == SimdBackend::kScalar) {
      GTEST_SKIP() << "no vector backend on this CPU/build";
    }
  }
  void TearDown() override { mathx::simd_force_backend(guard_.saved); }

  template <class Fn>
  void expect_backends_match(Fn run) {
    mathx::simd_force_backend(SimdBackend::kScalar);
    const auto scalar = run();
    mathx::simd_force_backend(widest_);
    const auto simd = run();
    ASSERT_EQ(scalar.size(), simd.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(scalar[i], simd[i]) << "value " << i;
    }
  }

  BackendGuard guard_;
  SimdBackend widest_ = SimdBackend::kScalar;
  core::DacSpec spec_ = make_spec(10, 3);
  static constexpr double kSigma = 0.03;
  static constexpr std::uint64_t kSeed = 2026;
};

constexpr int kChipCounts[] = {1, 2, 3, 5, 7, 101};
constexpr int kThreadCounts[] = {1, 2, 7};

TEST_F(SimdYieldEquivalence, InlYield) {
  expect_backends_match([&] {
    std::vector<double> v;
    for (int threads : kThreadCounts) {
      for (int chips : kChipCounts) {
        const auto y = inl_yield_mc(spec_, kSigma, chips, kSeed, 0.5,
                                    InlReference::kBestFit, threads);
        v.push_back(y.yield);
        v.push_back(y.pass);
        v.push_back(y.chips);
        v.push_back(y.ci95);
      }
    }
    return v;
  });
}

TEST_F(SimdYieldEquivalence, DnlYield) {
  expect_backends_match([&] {
    std::vector<double> v;
    for (int threads : kThreadCounts) {
      for (int chips : kChipCounts) {
        const auto y = dnl_yield_mc(spec_, kSigma, chips, kSeed, 0.5, threads);
        v.push_back(y.yield);
        v.push_back(y.pass);
        v.push_back(y.chips);
      }
    }
    return v;
  });
}

TEST_F(SimdYieldEquivalence, AdaptiveInlYield) {
  expect_backends_match([&] {
    std::vector<double> v;
    for (int threads : kThreadCounts) {
      AdaptiveMcOptions opts;
      opts.max_chips = 700;
      opts.min_chips = 128;
      opts.batch = 128;
      opts.ci_half_width = 0.03;
      opts.threads = threads;
      const auto y = inl_yield_mc_adaptive(spec_, kSigma, opts, kSeed, 0.5,
                                           InlReference::kBestFit);
      v.push_back(y.yield);
      v.push_back(y.pass);
      v.push_back(y.chips);  // early-stop point must match too
      v.push_back(y.ci95);
    }
    return v;
  });
}

TEST_F(SimdYieldEquivalence, CalibrationYield) {
  CalibrationOptions opts;
  opts.range_lsb = 2.0;
  opts.bits = 5;
  opts.measure_noise_lsb = 0.05;
  expect_backends_match([&] {
    std::vector<double> v;
    for (int threads : kThreadCounts) {
      for (int chips : kChipCounts) {
        const auto y = calibration_yield_mc(spec_, 0.08, opts, chips, kSeed,
                                            0.5, threads);
        v.push_back(y.yield_before);
        v.push_back(y.yield_after);
        v.push_back(y.chips);
      }
    }
    return v;
  });
}

TEST_F(SimdYieldEquivalence, SimdPathAgreesWithLegacyReference) {
  // The vector path must also match the historical allocating reference
  // implementation, not just the forced-scalar dispatch.
  mathx::simd_force_backend(widest_);
  const auto fast = inl_yield_mc(spec_, kSigma, 101, kSeed, 0.5,
                                 InlReference::kBestFit, 2);
  const auto legacy = inl_yield_mc_legacy(spec_, kSigma, 101, kSeed, 0.5,
                                          InlReference::kBestFit, 2);
  EXPECT_EQ(fast.yield, legacy.yield);
  EXPECT_EQ(fast.pass, legacy.pass);
  // Sanity: the chosen sigma produces a mixed population, so the
  // equivalence above is not a trivial all-pass/all-fail comparison.
  EXPECT_GT(fast.pass, 0);
  EXPECT_LT(fast.pass, fast.chips);
}

}  // namespace
}  // namespace csdac::dac
