#include "core/accuracy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/stats.hpp"

namespace csdac::core {
namespace {

TEST(Accuracy, Eq1TwelveBitDesignValue) {
  // Paper design case: n = 12, yield = 99.7 %.
  // C = inv_norm(0.9985) = 2.9677; sigma <= 1/(2*C*sqrt(4096)) = 0.263 %.
  const double s = unit_sigma_spec(12, 0.997);
  EXPECT_NEAR(s, 1.0 / (2.0 * 2.96774 * 64.0), 1e-6);
  EXPECT_NEAR(s, 0.002633, 1e-5);
}

TEST(Accuracy, Eq1TenBitMatchesVanDenBosch) {
  // [10]'s classic example: 10 bit, 99.7 % yield -> sigma ~ 0.53 %.
  EXPECT_NEAR(unit_sigma_spec(10, 0.997), 0.00527, 5e-5);
}

TEST(Accuracy, SigmaTightensWithResolutionAndYield) {
  EXPECT_LT(unit_sigma_spec(14, 0.997), unit_sigma_spec(12, 0.997));
  EXPECT_LT(unit_sigma_spec(12, 0.9999), unit_sigma_spec(12, 0.99));
}

TEST(Accuracy, YieldRoundTrip) {
  for (double y : {0.5, 0.9, 0.99, 0.997}) {
    const double s = unit_sigma_spec(12, y);
    EXPECT_NEAR(inl_yield_from_sigma(12, s), y, 1e-10) << "yield " << y;
  }
}

TEST(Accuracy, BoundYieldFourthRoot) {
  EXPECT_NEAR(bound_yield(0.997), std::pow(0.997, 0.25), 1e-14);
  EXPECT_GT(bound_yield(0.997), 0.997);
}

TEST(Accuracy, SCoefficientForPaperYield) {
  // yield_V = 0.997^(1/4) = 0.99925; S = inv_norm(0.99925) ~ 3.17.
  EXPECT_NEAR(s_coefficient(0.997), 3.174, 5e-3);
}

TEST(Accuracy, ImpedanceInlRoundTrip) {
  const double r_req = required_unit_rout(12, 50.0, 0.5);
  EXPECT_NEAR(inl_from_unit_rout(12, 50.0, r_req), 0.5, 1e-12);
  // 12-bit @ 50 Ohm needs unit Rout in the hundreds of MOhm.
  EXPECT_GT(r_req, 100e6);
  EXPECT_LT(r_req, 1e9);
}

TEST(Accuracy, SfdrImprovesWithRout) {
  EXPECT_GT(sfdr_single_ended_db(12, 50.0, 1e9),
            sfdr_single_ended_db(12, 50.0, 1e7));
}

TEST(Accuracy, ErrorHandling) {
  EXPECT_THROW(unit_sigma_spec(1, 0.99), std::invalid_argument);
  EXPECT_THROW(inl_yield_from_sigma(12, 0.0), std::invalid_argument);
  EXPECT_THROW(bound_yield(1.0), std::invalid_argument);
  EXPECT_THROW(inl_from_unit_rout(12, 50.0, 0.0), std::invalid_argument);
  EXPECT_THROW(required_unit_rout(12, 50.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::core
