#include <gtest/gtest.h>

#include "core/accuracy.hpp"
#include "core/architecture.hpp"
#include "digital/decoder.hpp"

namespace csdac::core {
namespace {

TEST(ArchitectureCosts, CustomCostsShiftOptimum) {
  const double sigma = unit_sigma_spec(12, 0.997);
  // Expensive decoder gates push the optimum toward more binary bits
  // (within the glitch budget).
  SegmentationCosts cheap;
  cheap.decoder_gate_area = 10e-12;
  SegmentationCosts pricey;
  pricey.decoder_gate_area = 5000e-12;
  const auto pts_cheap = explore_segmentation(12, 60e-12, sigma, cheap);
  const auto pts_pricey = explore_segmentation(12, 60e-12, sigma, pricey);
  const int b_cheap = optimal_binary_bits(pts_cheap, 0.997);
  const int b_pricey = optimal_binary_bits(pts_pricey, 0.997);
  EXPECT_GE(b_pricey, b_cheap);
  // Both capped by the glitch budget (b <= 4 at the default 2^4).
  EXPECT_LE(b_pricey, 4);
}

TEST(ArchitectureCosts, GlitchBudgetBindsSelection) {
  const double sigma = unit_sigma_spec(12, 0.997);
  const auto pts = explore_segmentation(12, 60e-12, sigma);
  // Relaxing the glitch budget lets the area optimum move to more binary.
  const int tight = optimal_binary_bits(pts, 0.997, /*max_glitch=*/4.0);
  const int loose = optimal_binary_bits(pts, 0.997, /*max_glitch=*/1024.0);
  EXPECT_LE(tight, 2);
  EXPECT_GT(loose, tight);
}

TEST(ArchitectureCosts, ModelTracksGateLevelDecoder) {
  // The decoder-area model (gates ~ m * 2^m) should track the actual
  // row/column construction within a small constant factor over the range
  // the selector explores.
  for (int m = 4; m <= 8; m += 2) {
    const int rb = m / 2;
    const int cb = m - rb;
    const int gates = digital::ThermometerDecoder(rb, cb).gate_count();
    const double model = static_cast<double>(m) * (1 << m);
    const double ratio = gates / model;
    EXPECT_GT(ratio, 0.1) << "m = " << m;
    EXPECT_LT(ratio, 1.5) << "m = " << m;
  }
}

}  // namespace
}  // namespace csdac::core
