#include "core/explorer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tech/tech.hpp"

namespace csdac::core {
namespace {

using tech::generic_035um;

DesignSpaceExplorer make_explorer() {
  return DesignSpaceExplorer(CellSizer(generic_035um().nmos, DacSpec{}));
}

TEST(Explorer, GridAxisEndpoints) {
  GridAxis a{0.1, 0.9, 5};
  EXPECT_DOUBLE_EQ(a.at(0), 0.1);
  EXPECT_DOUBLE_EQ(a.at(4), 0.9);
  EXPECT_DOUBLE_EQ(a.at(2), 0.5);
}

TEST(Explorer, GridAxisSinglePointIsItsLowerBound) {
  // Regression: steps == 1 used to divide by (steps - 1) = 0, producing
  // NaN/inf coordinates. A 1-point axis pins the sweep at `lo`.
  GridAxis a{0.3, 0.9, 1};
  EXPECT_DOUBLE_EQ(a.at(0), 0.3);

  auto ex = make_explorer();
  GridAxis g{0.1, 0.9, 4};
  const auto pts = ex.sweep_basic(a, g, MarginPolicy::kStatistical);
  ASSERT_EQ(pts.size(), 4u);
  for (const auto& p : pts) {
    EXPECT_DOUBLE_EQ(p.vod_cs, 0.3);
    EXPECT_TRUE(std::isfinite(p.area));
  }
}

TEST(Explorer, BasicSweepSizeAndFeasibilitySplit) {
  auto ex = make_explorer();
  GridAxis g{0.05, 0.9, 12};
  const auto pts = ex.sweep_basic(g, g, MarginPolicy::kStatistical);
  EXPECT_EQ(pts.size(), 144u);
  int feasible = 0;
  for (const auto& p : pts) feasible += p.feasible ? 1 : 0;
  // The statistical boundary cuts the square roughly along vod_cs+vod_sw~1.
  EXPECT_GT(feasible, 10);
  EXPECT_LT(feasible, 140);
}

TEST(Explorer, SelectMinAreaAndMaxSpeedDiffer) {
  auto ex = make_explorer();
  GridAxis g{0.05, 0.9, 15};
  const auto pts = ex.sweep_basic(g, g, MarginPolicy::kStatistical);
  const auto area = DesignSpaceExplorer::select(pts, Objective::kMinArea);
  const auto speed = DesignSpaceExplorer::select(pts, Objective::kMaxSpeed);
  ASSERT_TRUE(area && speed);
  EXPECT_TRUE(area->feasible);
  EXPECT_TRUE(speed->feasible);
  EXPECT_LE(area->area, speed->area);
  EXPECT_GE(speed->f_min_hz, area->f_min_hz);
}

TEST(Explorer, MinAreaPrefersLargeCsOverdrive) {
  // The CS area ~ 1/vod^2-ish; the min-area optimum pushes vod_cs high
  // along the saturation boundary.
  auto ex = make_explorer();
  GridAxis g{0.05, 0.9, 18};
  const auto best = ex.optimize_basic(g, g, MarginPolicy::kStatistical,
                                      Objective::kMinArea);
  ASSERT_TRUE(best);
  EXPECT_GT(best->vod_cs, 0.4);
}

TEST(Explorer, StatisticalOptimumBeatsFixedMarginOptimum) {
  // The enlarged design region can only improve the optimum (Fig. 3 claim).
  auto ex = make_explorer();
  GridAxis g{0.05, 0.9, 18};
  const auto stat = ex.optimize_basic(g, g, MarginPolicy::kStatistical,
                                      Objective::kMinArea);
  const auto fixed = ex.optimize_basic(g, g, MarginPolicy::kFixedMargin,
                                       Objective::kMinArea, 0.5);
  ASSERT_TRUE(stat && fixed);
  EXPECT_LT(stat->area, fixed->area);
  const auto stat_speed = ex.optimize_basic(g, g, MarginPolicy::kStatistical,
                                            Objective::kMaxSpeed);
  const auto fixed_speed = ex.optimize_basic(
      g, g, MarginPolicy::kFixedMargin, Objective::kMaxSpeed, 0.5);
  ASSERT_TRUE(stat_speed && fixed_speed);
  EXPECT_GE(stat_speed->f_min_hz, fixed_speed->f_min_hz);
}

TEST(Explorer, CascodeSweepProducesFeasibleVolume) {
  auto ex = make_explorer();
  GridAxis g{0.05, 0.6, 7};
  const auto pts = ex.sweep_cascode(g, g, g, MarginPolicy::kStatistical);
  EXPECT_EQ(pts.size(), 343u);
  const auto best = DesignSpaceExplorer::select(pts, Objective::kMinArea);
  ASSERT_TRUE(best);
  EXPECT_GT(best->vod_cas, 0.0);
  EXPECT_GT(best->rout_unit, 1e8);  // cascode-grade output impedance
}

// Bit-exact (not just ULP-close) comparison of every DesignPoint field —
// the runtime cache serves byte-identical results back, so the sweeps must
// be deterministic down to the last bit for any thread count.
void expect_points_bit_identical(const std::vector<DesignPoint>& a,
                                 const std::vector<DesignPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vod_cs, b[i].vod_cs) << i;
    EXPECT_EQ(a[i].vod_sw, b[i].vod_sw) << i;
    EXPECT_EQ(a[i].vod_cas, b[i].vod_cas) << i;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << i;
    EXPECT_EQ(a[i].margin, b[i].margin) << i;
    EXPECT_EQ(a[i].area, b[i].area) << i;
    EXPECT_EQ(a[i].f_min_hz, b[i].f_min_hz) << i;
    EXPECT_EQ(a[i].t_settle_s, b[i].t_settle_s) << i;
    EXPECT_EQ(a[i].rout_unit, b[i].rout_unit) << i;
  }
}

TEST(Explorer, ParallelSweepIdenticalToSerial) {
  // Grid points are pure functions of their index, so the engine-parallel
  // sweep must reproduce the serial sweep exactly, in the same row-major
  // order, for any thread count.
  auto ex = make_explorer();
  GridAxis g{0.05, 0.9, 10};
  const auto serial = ex.sweep_basic(g, g, MarginPolicy::kStatistical, 0.5,
                                     /*threads=*/1);
  for (int threads : {2, 7}) {
    mathx::RunStats stats;
    const auto par = ex.sweep_basic(g, g, MarginPolicy::kStatistical, 0.5,
                                    threads, &stats);
    expect_points_bit_identical(par, serial);
    EXPECT_EQ(stats.evaluated, 100);
  }
  GridAxis c{0.05, 0.5, 5};
  const auto cas_serial = ex.sweep_cascode(c, c, c, MarginPolicy::kStatistical,
                                           0.5, SigmaAggregation::kMax,
                                           /*threads=*/1);
  for (int threads : {2, 7}) {
    const auto cas_par = ex.sweep_cascode(c, c, c, MarginPolicy::kStatistical,
                                          0.5, SigmaAggregation::kMax,
                                          threads);
    expect_points_bit_identical(cas_par, cas_serial);
  }
}

TEST(Explorer, NoFeasiblePointReturnsNullopt) {
  auto ex = make_explorer();
  GridAxis big{0.6, 0.9, 4};  // vod sums always exceed V_o = 1
  const auto best = ex.optimize_basic(big, big, MarginPolicy::kNone,
                                      Objective::kMinArea);
  EXPECT_FALSE(best.has_value());
}

}  // namespace
}  // namespace csdac::core
