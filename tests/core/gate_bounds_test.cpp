#include "core/gate_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/accuracy.hpp"
#include "core/sizer.hpp"
#include "mathx/rng.hpp"
#include "mathx/stats.hpp"
#include "tech/mismatch.hpp"

namespace csdac::core {
namespace {

using mathx::RunningStats;
using mathx::Xoshiro256;
using tech::generic_035um;

struct Fixture {
  tech::MosTechParams t = generic_035um().nmos;
  DacSpec spec;
  CellSizer sizer{t, spec};
};

TEST(GateBounds, BasicWindowWidthIsVoMinusOverdrives) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const BasicBounds b =
      basic_cell_bounds(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  EXPECT_NEAR(b.window(), f.spec.v_out_min - 0.3 - 0.2, 1e-12);
  EXPECT_GT(b.sw_upper.sigma, 0.0);
  EXPECT_GT(b.sw_lower.sigma, 0.0);
}

TEST(GateBounds, UpperBoundSigmaComposition) {
  // sigma_U^2 = (IR-drop terms) + (SW threshold mismatch). For the LSB cell
  // the near-minimum-size switch's VT term actually dominates the 10 mV
  // load-tolerance term — exactly why the paper insists on modelling the
  // switch mismatch.
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const BasicBounds b =
      basic_cell_bounds(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  const double var_ir =
      f.spec.v_swing * f.spec.v_swing *
      (f.sizer.sigma_unit() * f.sizer.sigma_unit() / f.spec.total_units() +
       f.spec.r_load_tol * f.spec.r_load_tol);
  const double var_vt_sw =
      f.t.a_vt * f.t.a_vt / (s.cell.sw.w * s.cell.sw.l);
  EXPECT_NEAR(b.sw_upper.sigma, std::sqrt(var_ir + var_vt_sw),
              1e-12);
  EXPECT_GT(var_vt_sw, var_ir);  // switch mismatch dominates for LSB cell
}

TEST(GateBounds, MonteCarloValidatesLowerBoundSigma) {
  // Draw the independent mismatch components the eq. (7) model sums and
  // check the sample sigma of the reconstructed bound matches the analytic
  // value. This validates the implementation against its own stated model.
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25, MarginPolicy::kNone);
  const BasicBounds b =
      basic_cell_bounds(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  Xoshiro256 rng(2024);
  RunningStats stats;
  const double su = f.sizer.sigma_unit();
  for (int i = 0; i < 60000; ++i) {
    const double dvt_cs = tech::sigma_vt(f.t, s.cell.cs.w, s.cell.cs.l) *
                          mathx::normal(rng);
    const double dvt_sw = tech::sigma_vt(f.t, s.cell.sw.w, s.cell.sw.l) *
                          mathx::normal(rng);
    const double dbeta_sw =
        tech::sigma_beta_rel(f.t, s.cell.sw.w, s.cell.sw.l) *
        mathx::normal(rng);
    const double di_rel = su * mathx::normal(rng);
    const double dvod_sw = 0.5 * s.cell.vod_sw * (di_rel - dbeta_sw);
    const double sample =
        (s.cell.vod_cs - dvt_cs) + (f.t.vt0 + dvt_sw) +
        (s.cell.vod_sw + dvod_sw);
    stats.add(sample);
  }
  EXPECT_NEAR(stats.mean(), b.sw_lower.nominal, 3e-4);
  // The model treats dVOD_sw's dI component as independent of dVT_cs; the
  // MC here draws them independently, so agreement should be tight.
  EXPECT_NEAR(stats.stddev(), b.sw_lower.sigma, 0.03 * b.sw_lower.sigma);
}

TEST(GateBounds, MonteCarloValidatesUpperBoundSigma) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25, MarginPolicy::kNone);
  const BasicBounds b =
      basic_cell_bounds(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  Xoshiro256 rng(99);
  RunningStats stats;
  const double su = f.sizer.sigma_unit();
  const double n_tot = f.spec.total_units();
  for (int i = 0; i < 60000; ++i) {
    const double dfs_rel = su / std::sqrt(n_tot) * mathx::normal(rng);
    const double dr_rel = f.spec.r_load_tol * mathx::normal(rng);
    const double dvt_sw = tech::sigma_vt(f.t, s.cell.sw.w, s.cell.sw.l) *
                          mathx::normal(rng);
    const double v_drop = f.spec.v_swing * (1.0 + dfs_rel) * (1.0 + dr_rel);
    const double sample =
        f.spec.v_out_min + f.spec.v_swing - v_drop + f.t.vt0 + dvt_sw;
    stats.add(sample);
  }
  EXPECT_NEAR(stats.mean(), b.sw_upper.nominal, 3e-4);
  EXPECT_NEAR(stats.stddev(), b.sw_upper.sigma, 0.03 * b.sw_upper.sigma);
}

TEST(GateBounds, CascodeSigmasAllPositiveAndAggregationsOrdered) {
  Fixture f;
  const SizedCell s =
      f.sizer.size_cascode(0.3, 0.2, 0.2, MarginPolicy::kNone);
  const CascodeBounds b =
      cascode_cell_bounds(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  EXPECT_GT(b.sw_upper.sigma, 0.0);
  EXPECT_GT(b.sw_lower.sigma, 0.0);
  EXPECT_GT(b.cas_upper.sigma, 0.0);
  EXPECT_GT(b.cas_lower.sigma, 0.0);
  EXPECT_GE(b.sigma_rss(), b.sigma_max());
  EXPECT_LE(b.sigma_max(), b.sigma_rss());
  EXPECT_LE(b.sigma_rss(), 2.0 * b.sigma_max());
}

TEST(GateBounds, SmallerDevicesGiveLargerSigmas) {
  // Shrinking the CS area (looser accuracy spec) must inflate the lower
  // bound sigma — the mechanism behind the statistical margin.
  Fixture f;
  DacSpec loose = f.spec;
  loose.inl_yield = 0.5;  // much smaller CS
  CellSizer sizer_loose(f.t, loose);
  const SizedCell tight = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const SizedCell small = sizer_loose.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const auto b_tight =
      basic_cell_bounds(f.t, f.spec, tight.cell, f.sizer.sigma_unit());
  const auto b_small =
      basic_cell_bounds(f.t, loose, small.cell, sizer_loose.sigma_unit());
  EXPECT_GT(b_small.sw_lower.sigma, b_tight.sw_lower.sigma);
}

TEST(GateBounds, MarginBreakdownSumsToBoundVariances) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25, MarginPolicy::kNone);
  const BasicBounds b =
      basic_cell_bounds(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  const MarginBreakdown mb =
      basic_margin_breakdown(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  const double var_sum = b.sw_upper.sigma * b.sw_upper.sigma +
                         b.sw_lower.sigma * b.sw_lower.sigma;
  EXPECT_NEAR(mb.total(), var_sum, 1e-12);
  EXPECT_GT(mb.dominant_fraction(), 0.2);
  EXPECT_LE(mb.dominant_fraction(), 1.0);
}

TEST(GateBounds, SwitchVtDominatesForMinimumSizeSwitch) {
  // The paper's core observation: for the minimum-size LSB switch, ITS
  // mismatch (not the CS's) dominates the saturation margin.
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25, MarginPolicy::kNone);
  const MarginBreakdown mb =
      basic_margin_breakdown(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  EXPECT_GT(mb.vt_switch, mb.vt_cs);
  EXPECT_GT(mb.vt_switch, mb.load_tolerance);
  EXPECT_GT(mb.vt_switch, mb.full_scale_current);
}

TEST(GateBounds, LsbCellIsWorstCase) {
  // A unary source (16 parallel units -> 16x the area) has smaller bound
  // sigma than the LSB cell, confirming the paper's worst-case argument.
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25, MarginPolicy::kNone);
  CellSizing unary = s.cell;
  unary.cs.w *= 16.0;  // 16 sub-units in parallel
  unary.sw.w *= 16.0;
  unary.i_unit *= 16.0;
  const auto b_lsb =
      basic_cell_bounds(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  const auto b_unary = basic_cell_bounds(f.t, f.spec, unary,
                                         f.sizer.sigma_unit() / 4.0);
  EXPECT_GT(b_lsb.sw_lower.sigma, b_unary.sw_lower.sigma);
}

}  // namespace
}  // namespace csdac::core
