#include "core/poles.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sizer.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::core {
namespace {

using namespace csdac::units;
using tech::generic_035um;

struct Fixture {
  tech::MosTechParams t = generic_035um().nmos;
  DacSpec spec;
  CellSizer sizer{t, spec};
};

TEST(Poles, OutputPoleSetByLoad) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  // p1 must be below the bare R_L*C_L pole (switch drains add capacitance).
  const double f_rc = 1.0 / (2.0 * M_PI * f.spec.r_load * f.spec.c_load);
  EXPECT_LT(s.poles.p1_hz, f_rc);
  EXPECT_GT(s.poles.p1_hz, 0.1 * f_rc);
}

TEST(Poles, LargerLoadCapLowersP1) {
  Fixture f;
  DacSpec heavy = f.spec;
  heavy.c_load = 10e-12;
  CellSizer sizer_heavy(f.t, heavy);
  const SizedCell s1 = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const SizedCell s2 = sizer_heavy.size_basic(0.3, 0.2, MarginPolicy::kNone);
  EXPECT_GT(s1.poles.p1_hz, s2.poles.p1_hz);
  // p2 does not involve the load.
  EXPECT_NEAR(s1.poles.p2_hz, s2.poles.p2_hz, 1e-6 * s1.poles.p2_hz);
}

TEST(Poles, InterconnectCapLowersP2) {
  Fixture f;
  DacSpec long_wire = f.spec;
  long_wire.c_int = 500e-15;
  CellSizer sizer_lw(f.t, long_wire);
  const SizedCell s1 = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const SizedCell s2 = sizer_lw.size_basic(0.3, 0.2, MarginPolicy::kNone);
  EXPECT_GT(s1.poles.p2_hz, s2.poles.p2_hz);
}

TEST(Poles, CascodeAddsThirdPole) {
  Fixture f;
  const SizedCell basic = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const SizedCell casc =
      f.sizer.size_cascode(0.3, 0.2, 0.2, MarginPolicy::kNone);
  EXPECT_DOUBLE_EQ(basic.poles.p3_hz, 0.0);
  EXPECT_GT(casc.poles.p3_hz, 0.0);
}

TEST(Poles, MinSelectsSmallest) {
  PoleEstimate p;
  p.p1_hz = 3e8;
  p.p2_hz = 1e8;
  p.p3_hz = 2e8;
  EXPECT_DOUBLE_EQ(p.min_hz(), 1e8);
  p.p3_hz = 0.0;  // basic topology: ignore
  p.p2_hz = 5e8;
  EXPECT_DOUBLE_EQ(p.min_hz(), 3e8);
}

TEST(Poles, SettlingTimeFormula) {
  PoleEstimate p;
  p.p1_hz = 1e9;
  p.p2_hz = 2e9;
  const double tau = 1.0 / (2.0 * M_PI * 1e9);
  EXPECT_NEAR(p.tau(), tau, 1e-15);
  EXPECT_NEAR(p.settling_time(12), tau * std::log(8192.0), 1e-15);
}

TEST(Poles, PaperDesignReachesHundredsOfMegasamples) {
  // The paper's design settles a full-scale step in ~2.5 ns (400 MS/s).
  // Our substitute technology should land in the same decade.
  Fixture f;
  const SizedCell s =
      f.sizer.size_cascode(0.35, 0.2, 0.2, MarginPolicy::kStatistical);
  const double ts = s.poles.settling_time(12);
  EXPECT_LT(ts, 10 * ns);
  EXPECT_GT(ts, 0.2 * ns);
}

TEST(Poles, SwitchDrainCapScalesWithSegmentation) {
  Fixture f;
  const double w_unit = 1 * um;
  const double cap = total_switch_drain_cap(f.t, f.spec, w_unit);
  EXPECT_GT(cap, 0.0);
  // All-unary segmentation (b = 0) has more, smaller switches; capacitance
  // comparison still lands in the same ballpark but differs.
  DacSpec unary = f.spec;
  unary.binary_bits = 0;
  const double cap_unary = total_switch_drain_cap(f.t, unary, w_unit);
  EXPECT_NE(cap, cap_unary);
  // Both scale linearly-ish with total weight: within 2x of each other.
  EXPECT_LT(cap / cap_unary, 2.0);
  EXPECT_GT(cap / cap_unary, 0.5);
}

}  // namespace
}  // namespace csdac::core
