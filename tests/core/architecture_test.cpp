#include "core/architecture.hpp"

#include <gtest/gtest.h>

#include "core/accuracy.hpp"
#include "tech/units.hpp"

namespace csdac::core {
namespace {

using namespace csdac::units;

TEST(Architecture, ExploresAllSegmentations) {
  const auto pts = explore_segmentation(12, 100 * um * um,
                                        unit_sigma_spec(12, 0.997));
  EXPECT_EQ(pts.size(), 12u);
  EXPECT_EQ(pts.front().binary_bits, 0);
  EXPECT_EQ(pts.back().binary_bits, 11);
}

TEST(Architecture, DecoderAreaExplodesWithUnaryBits) {
  const auto pts = explore_segmentation(12, 100 * um * um,
                                        unit_sigma_spec(12, 0.997));
  // b=0 means m=12: a 12-to-4095 decoder, far larger than b=6 (m=6).
  EXPECT_GT(pts[0].decoder_area, 30.0 * pts[6].decoder_area);
}

TEST(Architecture, AnalogAreaIndependentOfSplit) {
  const auto pts = explore_segmentation(12, 100 * um * um,
                                        unit_sigma_spec(12, 0.997));
  for (const auto& p : pts) {
    EXPECT_DOUBLE_EQ(p.analog_area, pts[0].analog_area);
  }
}

TEST(Architecture, DnlGrowsWithBinaryBits) {
  const auto pts = explore_segmentation(12, 100 * um * um,
                                        unit_sigma_spec(12, 0.997));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].dnl_sigma_lsb, pts[i - 1].dnl_sigma_lsb);
    EXPECT_GT(pts[i].glitch_metric, pts[i - 1].glitch_metric);
  }
}

TEST(Architecture, DnlAlwaysMetWhenInlMet) {
  // Paper: "the DNL specification ... is always satisfied provided the INL
  // is below 0.5 LSB for reasonable segmentation ratios". With the eq. (1)
  // sigma, DNL stays under 0.5 LSB at the same yield up to b ~ 8.
  const double sigma = unit_sigma_spec(12, 0.997);
  const auto pts = explore_segmentation(12, 100 * um * um, sigma);
  const int best = optimal_binary_bits(pts, 0.997);
  ASSERT_GE(best, 0);
  EXPECT_LE(pts[static_cast<std::size_t>(best)].dnl_sigma_lsb * 2.9677, 0.5);
}

TEST(Architecture, OptimumMatchesPaperChoice) {
  // The paper picks b = 4, m = 8 for its 12-bit design. Our cost model
  // should land within a couple of bits of that.
  const auto pts = explore_segmentation(12, 60 * um * um,
                                        unit_sigma_spec(12, 0.997));
  const int best = optimal_binary_bits(pts, 0.997);
  EXPECT_GE(best, 2);
  EXPECT_LE(best, 6);
}

TEST(Architecture, RejectsBadInput) {
  EXPECT_THROW(explore_segmentation(1, 1e-9, 0.002), std::invalid_argument);
  EXPECT_THROW(explore_segmentation(12, 0.0, 0.002), std::invalid_argument);
  EXPECT_THROW(explore_segmentation(12, 1e-9, 0.0), std::invalid_argument);
}

TEST(Architecture, NoFeasibleSegmentationReturnsMinusOne) {
  // Absurdly loose unit sigma: every b violates the DNL constraint...
  // except possibly b = 0 (DNL sigma = sigma_u there). Use a sigma so large
  // even b = 0 fails.
  const auto pts = explore_segmentation(12, 1e-9, 0.4);
  EXPECT_EQ(optimal_binary_bits(pts, 0.997), -1);
}

}  // namespace
}  // namespace csdac::core
