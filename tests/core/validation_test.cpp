// Input-validation and edge-case coverage for the core analysis helpers
// (argument checks that the main behavioural tests do not exercise).
#include <gtest/gtest.h>

#include "core/accuracy.hpp"
#include "core/impedance.hpp"
#include "core/poles.hpp"
#include "core/sizer.hpp"
#include "tech/tech.hpp"

namespace csdac::core {
namespace {

using tech::generic_035um;

struct Fixture {
  tech::MosTechParams t = generic_035um().nmos;
  DacSpec spec;
  CellSizer sizer{t, spec};
};

TEST(Validation, ImpedanceArguments) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  EXPECT_THROW(unit_zout(f.t, f.spec, s.cell, 0.0), std::invalid_argument);
  EXPECT_THROW(unit_zout(f.t, f.spec, s.cell, 1e6, 0),
               std::invalid_argument);
  EXPECT_THROW(impedance_bandwidth(f.t, f.spec, s.cell, 0.0),
               std::invalid_argument);
  EXPECT_THROW(impedance_bandwidth(f.t, f.spec, s.cell, 1e6, 1e6, 1e3),
               std::invalid_argument);
}

TEST(Validation, ImpedanceBandwidthBoundaries) {
  Fixture f;
  const SizedCell s = f.sizer.size_cascode(0.3, 0.2, 0.2, MarginPolicy::kNone);
  // Impossible requirement: even f_min fails -> 0.
  EXPECT_DOUBLE_EQ(
      impedance_bandwidth(f.t, f.spec, s.cell, 1e18, 1e3, 1e9), 0.0);
  // Trivial requirement: never violated -> f_max.
  EXPECT_DOUBLE_EQ(impedance_bandwidth(f.t, f.spec, s.cell, 1.0, 1e3, 1e9),
                   1e9);
}

TEST(Validation, PoleWeightChecked) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  EXPECT_THROW(estimate_poles(f.t, f.spec, s.cell, 0), std::invalid_argument);
  // Larger weight raises the internal-node pole (gm grows faster than the
  // fixed wiring cap).
  const auto p1 = estimate_poles(f.t, f.spec, s.cell, 1);
  const auto p16 = estimate_poles(f.t, f.spec, s.cell, 16);
  EXPECT_GT(p16.p2_hz, p1.p2_hz);
}

TEST(Validation, AccuracyHelpersGuardInput) {
  EXPECT_THROW(inl_yield_from_sigma(12, -1.0), std::invalid_argument);
  EXPECT_THROW(inl_yield_from_sigma(12, 0.0), std::invalid_argument);
}

TEST(Validation, SpecSwingVsHeadroomIndependent) {
  // v_out_min (the budget) and v_swing (the IR drop) are independent
  // fields; a tighter budget shrinks the feasible region without touching
  // the currents.
  Fixture f;
  DacSpec tight = f.spec;
  tight.v_out_min = 0.6;
  const CellSizer sizer_tight(f.t, tight);
  EXPECT_DOUBLE_EQ(tight.i_lsb(), f.spec.i_lsb());
  const auto wide =
      f.sizer.max_vod_sw_basic(0.3, MarginPolicy::kStatistical);
  const auto narrow =
      sizer_tight.max_vod_sw_basic(0.3, MarginPolicy::kStatistical);
  ASSERT_TRUE(wide.has_value());
  if (narrow.has_value()) {
    EXPECT_LT(*narrow, *wide);
  }
}

}  // namespace
}  // namespace csdac::core
