// Cross-validation of the analytic sizing methodology (core) against the
// transistor-level simulator (spice): the sized cell must actually deliver
// its design current, keep every device in saturation, peak its output
// impedance at the analytic optimum bias, and settle at the speed the pole
// model predicts. This is the reproduction's substitute for the paper's
// "simulation results at transistor level" (Section 3/5).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/sizer.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/measures.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::core {
namespace {

using namespace csdac::units;
using spice::Capacitor;
using spice::Circuit;
using spice::CurrentSource;
using spice::Mosfet;
using spice::MosRegion;
using spice::PulseWave;
using spice::Resistor;
using spice::Solution;
using spice::VoltageSource;
using tech::generic_035um;

struct Fixture {
  tech::MosTechParams t = generic_035um().nmos;
  DacSpec spec;
  CellSizer sizer{t, spec};
  double v_term() const { return spec.v_out_min + spec.v_swing; }
};

/// Builds the full-scale "macro cell": all 2^n - 1 units in parallel (via
/// the device multiplier), loaded by R_L to the termination rail.
struct MacroCell {
  Circuit ckt;
  Mosfet* mcs = nullptr;
  Mosfet* mcas = nullptr;
  Mosfet* msw = nullptr;
  int out = 0;
  int internal = 0;

  MacroCell(const Fixture& f, const SizedCell& s, bool with_caps,
            std::unique_ptr<spice::Waveform> sw_gate_wave = nullptr,
            bool with_load = true) {
    const double m = f.spec.total_units();
    out = ckt.node("out");
    internal = ckt.node("int");
    const int gcs = ckt.node("gcs");
    const int gsw = ckt.node("gsw");
    if (with_load) {
      const int vterm = ckt.node("vterm");
      ckt.add(std::make_unique<VoltageSource>("vterm", vterm, 0, f.v_term()));
      ckt.add(std::make_unique<Resistor>("rl", vterm, out, f.spec.r_load));
    }
    if (with_caps) {
      ckt.add(std::make_unique<Capacitor>("cl", out, 0, f.spec.c_load));
      ckt.add(std::make_unique<Capacitor>("cint", internal, 0, f.spec.c_int));
    }
    ckt.add(std::make_unique<VoltageSource>("vgcs", gcs, 0, s.cell.vg_cs));
    if (sw_gate_wave) {
      ckt.add(std::make_unique<VoltageSource>("vgsw", gsw, 0,
                                              std::move(sw_gate_wave)));
    } else {
      ckt.add(std::make_unique<VoltageSource>("vgsw", gsw, 0, s.cell.vg_sw));
    }
    if (s.cell.topology == CellTopology::kCsSw) {
      mcs = ckt.add(std::make_unique<Mosfet>(
          "mcs", f.t, internal, gcs, 0, 0,
          Mosfet::Geometry{s.cell.cs.w, s.cell.cs.l, m}, with_caps));
      msw = ckt.add(std::make_unique<Mosfet>(
          "msw", f.t, out, gsw, internal, 0,
          Mosfet::Geometry{s.cell.sw.w, s.cell.sw.l, m}, with_caps));
    } else {
      const int mid = ckt.node("mid");
      const int gcas = ckt.node("gcas");
      ckt.add(
          std::make_unique<VoltageSource>("vgcas", gcas, 0, s.cell.vg_cas));
      mcs = ckt.add(std::make_unique<Mosfet>(
          "mcs", f.t, mid, gcs, 0, 0,
          Mosfet::Geometry{s.cell.cs.w, s.cell.cs.l, m}, with_caps));
      mcas = ckt.add(std::make_unique<Mosfet>(
          "mcas", f.t, internal, gcas, mid, 0,
          Mosfet::Geometry{s.cell.cas.w, s.cell.cas.l, m}, with_caps));
      msw = ckt.add(std::make_unique<Mosfet>(
          "msw", f.t, out, gsw, internal, 0,
          Mosfet::Geometry{s.cell.sw.w, s.cell.sw.l, m}, with_caps));
    }
  }
};

TEST(SpiceValidation, BasicCellDeliversDesignCurrent) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25,
                                         MarginPolicy::kStatistical);
  MacroCell mc(f, s, /*with_caps=*/false);
  const Solution sol = spice::solve_dc(mc.ckt);
  const double i_fs = f.spec.i_fs();
  // Channel-length modulation makes the actual current a few % high.
  EXPECT_NEAR(mc.mcs->op().id, i_fs, 0.06 * i_fs);
  // The output sits near the bottom of the swing: v_out_min.
  EXPECT_NEAR(sol.v(mc.out), f.spec.v_out_min, 0.08);
}

TEST(SpiceValidation, BasicCellAllDevicesSaturated) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25,
                                         MarginPolicy::kStatistical);
  MacroCell mc(f, s, false);
  spice::solve_dc(mc.ckt);
  EXPECT_EQ(mc.mcs->op().region, MosRegion::kSaturation);
  EXPECT_EQ(mc.msw->op().region, MosRegion::kSaturation);
  // Equal-slack bias: the internal node has headroom beyond VOD_cs.
  EXPECT_GT(mc.mcs->op().vds, mc.mcs->op().vod);
}

TEST(SpiceValidation, CascodeCellAllDevicesSaturated) {
  Fixture f;
  const SizedCell s =
      f.sizer.size_cascode(0.25, 0.2, 0.2, MarginPolicy::kStatistical);
  ASSERT_TRUE(s.feasible());
  MacroCell mc(f, s, false);
  const Solution sol = spice::solve_dc(mc.ckt);
  EXPECT_EQ(mc.mcs->op().region, MosRegion::kSaturation);
  EXPECT_EQ(mc.mcas->op().region, MosRegion::kSaturation);
  EXPECT_EQ(mc.msw->op().region, MosRegion::kSaturation);
  EXPECT_NEAR(mc.mcs->op().id, f.spec.i_fs(), 0.06 * f.spec.i_fs());
  EXPECT_NEAR(sol.v(mc.out), f.spec.v_out_min, 0.08);
}

// Measures the macro-cell output resistance by forcing the output node and
// differencing the branch current.
double macro_rout(const Fixture& f, const SizedCell& s, double vg_sw) {
  auto current_at = [&](double vout) {
    SizedCell biased = s;
    biased.cell.vg_sw = vg_sw;
    MacroCell mc(f, biased, false, nullptr, /*with_load=*/false);
    // No resistive load: force the output directly.
    auto* vs = mc.ckt.add(
        std::make_unique<VoltageSource>("vforce", mc.out, 0, vout));
    spice::NewtonOptions opts;
    const Solution sol = spice::solve_dc(mc.ckt, opts);
    return sol.branch_current(*vs);
  };
  const double dv = 0.05;
  const double i1 = current_at(f.spec.v_out_min);
  const double i2 = current_at(f.spec.v_out_min + dv);
  return dv / (i1 - i2);
}

TEST(SpiceValidation, OptimalSwGateBiasMaximizesRout) {
  // eq. (5): the analytic optimum bias should sit at (or very near) the
  // simulated Rout peak over the gate-voltage window.
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25,
                                         MarginPolicy::kStatistical);
  const double r_opt = macro_rout(f, s, s.cell.vg_sw);
  double r_best = 0.0;
  for (double vg = s.cell.vg_sw - 0.3; vg <= s.cell.vg_sw + 0.3 + 1e-9;
       vg += 0.05) {
    r_best = std::max(r_best, macro_rout(f, s, vg));
  }
  EXPECT_GT(r_opt, 0.85 * r_best);
}

TEST(SpiceValidation, AnalyticRoutMatchesSimulatedRout) {
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25,
                                         MarginPolicy::kStatistical);
  const double r_sim = macro_rout(f, s, s.cell.vg_sw);
  // Macro cell = 2^n-1 units in parallel.
  const double r_analytic = s.rout_unit / f.spec.total_units();
  EXPECT_GT(r_sim, 0.3 * r_analytic);
  EXPECT_LT(r_sim, 3.0 * r_analytic);
}

TEST(SpiceValidation, TransientSettlingMatchesPoleModel) {
  // Switch the macro cell on and compare the simulated settling (to 0.5 LSB
  // of full scale) against the single-pole estimate of eq. (13).
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25,
                                         MarginPolicy::kStatistical);
  auto wave = std::make_unique<PulseWave>(0.0, s.cell.vg_sw, /*td=*/0.5 * ns,
                                          /*tr=*/50 * ps, /*tf=*/50 * ps,
                                          /*pw=*/1.0);
  MacroCell mc(f, s, /*with_caps=*/true, std::move(wave));
  const auto res = spice::transient(mc.ckt, 5 * ps, 12 * ns);
  const auto v_out = res.node_waveform(mc.out);
  const double v_final = v_out.back();
  // It must actually have switched (full-scale swing ~ 1 V).
  EXPECT_LT(v_final, f.spec.v_out_min + 0.15);
  const double lsb_v = f.spec.v_swing / (1 << f.spec.nbits);
  const double ts =
      spice::settling_time(res.time, v_out, v_final, 0.5 * lsb_v) -
      0.5 * ns;  // remove the pulse delay
  const double ts_model = s.poles.settling_time(f.spec.nbits);
  EXPECT_GT(ts, 0.2 * ts_model);
  EXPECT_LT(ts, 5.0 * ts_model);
}

}  // namespace
}  // namespace csdac::core
