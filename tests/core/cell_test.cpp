#include "core/cell.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/accuracy.hpp"
#include "tech/mismatch.hpp"
#include "tech/units.hpp"

namespace csdac::core {
namespace {

using namespace csdac::units;
using tech::generic_035um;

TEST(CellSizing, CurrentSourceMeetsBothConstraints) {
  const auto t = generic_035um().nmos;
  const double i = 4.884 * uA;  // 12-bit LSB of the paper's design
  const double vod = 0.3;
  const double sigma = unit_sigma_spec(12, 0.997);
  const DeviceSize d = size_current_source(t, i, vod, sigma);
  // Mismatch constraint met with equality (minimum area).
  EXPECT_NEAR(tech::sigma_id_rel(t, d.w, d.l, vod), sigma, 1e-9);
  // Square law: W/L carries i at the requested overdrive.
  EXPECT_NEAR(0.5 * t.kp * d.aspect() * vod * vod, i, i * 1e-9);
}

TEST(CellSizing, CsAreaGrowsAtLowOverdrive) {
  const auto t = generic_035um().nmos;
  const double sigma = unit_sigma_spec(12, 0.997);
  const DeviceSize lo = size_current_source(t, 5 * uA, 0.15, sigma);
  const DeviceSize hi = size_current_source(t, 5 * uA, 0.6, sigma);
  EXPECT_GT(lo.area(), hi.area());
}

TEST(CellSizing, CsIsLongDevice) {
  // At micro-amp currents and tight accuracy, the CS transistor must be a
  // long device (L >> L_min) — the well-known DAC array signature.
  const auto t = generic_035um().nmos;
  const DeviceSize d =
      size_current_source(t, 4.884 * uA, 0.4, unit_sigma_spec(12, 0.997));
  EXPECT_GT(d.l, 10 * t.l_min);
}

TEST(CellSizing, SwitchSizedForCurrentAtMinLength) {
  const auto t = generic_035um().nmos;
  const DeviceSize d = size_for_current(t, 100 * uA, 0.2, t.l_min);
  EXPECT_DOUBLE_EQ(d.l, t.l_min);
  EXPECT_NEAR(0.5 * t.kp * d.aspect() * 0.04, 100 * uA, 1e-9);
}

TEST(CellSizing, SwitchWidthClampsToWmin) {
  const auto t = generic_035um().nmos;
  // Tiny current at large overdrive would need W < Wmin.
  const DeviceSize d = size_for_current(t, 0.1 * uA, 0.8, t.l_min);
  EXPECT_DOUBLE_EQ(d.w, t.w_min);
}

TEST(CellSizing, VtAtVsbMatchesBodyEffect) {
  const auto t = generic_035um().nmos;
  EXPECT_DOUBLE_EQ(vt_at_vsb(t, 0.0), t.vt0);
  const double vt1 = vt_at_vsb(t, 1.0);
  EXPECT_NEAR(vt1,
              t.vt0 + t.gamma * (std::sqrt(t.phi_2f + 1.0) -
                                 std::sqrt(t.phi_2f)),
              1e-14);
  EXPECT_GT(vt1, t.vt0);
}

TEST(CellSizing, SourceNodeVoltageSelfConsistent) {
  const auto t = generic_035um().nmos;
  const double vg = 1.6, vod = 0.25;
  const double vs = source_node_voltage(t, vg, vod);
  EXPECT_NEAR(vs, vg - vt_at_vsb(t, vs) - vod, 1e-10);
  EXPECT_GT(vs, 0.0);
}

TEST(CellSizing, OptimalVgSwSplitsSlackEqually) {
  const auto t = generic_035um().nmos;
  const double v_o = 1.0, vod_cs = 0.3, vod_sw = 0.2;
  const double vg = optimal_vg_sw_basic(t, v_o, vod_cs, vod_sw);
  // The implied internal node is vod_cs + slack/2.
  const double v_int_target = vod_cs + 0.5 * (v_o - vod_cs - vod_sw);
  EXPECT_NEAR(vg - vt_at_vsb(t, v_int_target) - vod_sw, v_int_target, 1e-12);
  // CS gets extra VDS headroom beyond its overdrive.
  EXPECT_GT(v_int_target, vod_cs);
}

TEST(CellSizing, CascodeBiasOrdersNodesCorrectly) {
  const auto t = generic_035um().nmos;
  const double v_o = 1.0, vod_cs = 0.25, vod_cas = 0.2, vod_sw = 0.15;
  const CascodeBias b = optimal_vg_cascode(t, v_o, vod_cs, vod_cas, vod_sw);
  EXPECT_GT(b.vg_sw, b.vg_cas);  // SW gate sits above the CAS gate
  // Implied CAS source node is above the CS saturation voltage.
  const double v1 = b.vg_cas - vt_at_vsb(t, vod_cs + (v_o - 0.6) / 3.0) -
                    vod_cas;
  EXPECT_GT(v1, vod_cs - 1e-9);
}

TEST(CellSizing, ActiveAreaComposition) {
  CellSizing c;
  c.topology = CellTopology::kCsSw;
  c.cs = {10 * um, 10 * um};
  c.sw = {2 * um, 0.35 * um};
  const double basic = c.active_area();
  EXPECT_NEAR(basic, 100 * um * um + 2 * 0.7 * um * um, 1e-18);
  c.topology = CellTopology::kCsSwCas;
  c.cas = {3 * um, 0.35 * um};
  EXPECT_GT(c.active_area(), basic);
}

TEST(CellSizing, SizingErrorHandling) {
  const auto t = generic_035um().nmos;
  EXPECT_THROW(size_current_source(t, 0.0, 0.3, 0.002),
               std::invalid_argument);
  EXPECT_THROW(size_current_source(t, 1 * uA, -0.1, 0.002),
               std::invalid_argument);
  EXPECT_THROW(size_for_current(t, 1 * uA, 0.3, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::core
