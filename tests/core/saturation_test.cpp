#include "core/saturation.hpp"

#include <gtest/gtest.h>

#include "core/sizer.hpp"
#include "tech/tech.hpp"

namespace csdac::core {
namespace {

using tech::generic_035um;

struct Fixture {
  tech::MosTechParams t = generic_035um().nmos;
  DacSpec spec;
  CellSizer sizer{t, spec};
};

TEST(Saturation, ClassicConditionBoundary) {
  DacSpec spec;
  // Exactly on the eq. (4) boundary.
  auto c = check_basic_classic(spec, 0.6, 0.4, 0.0);
  EXPECT_TRUE(c.feasible());
  EXPECT_NEAR(c.slack(), 0.0, 1e-12);
  // Just beyond.
  c = check_basic_classic(spec, 0.6, 0.401, 0.0);
  EXPECT_FALSE(c.feasible());
}

TEST(Saturation, FixedMarginShrinksRegion) {
  DacSpec spec;
  auto no_margin = check_basic_classic(spec, 0.3, 0.25, 0.0);
  auto with_margin = check_basic_classic(spec, 0.3, 0.25, 0.5);
  EXPECT_TRUE(no_margin.feasible());
  EXPECT_LT(with_margin.slack(), no_margin.slack());
  EXPECT_NEAR(no_margin.slack() - with_margin.slack(), 0.5, 1e-12);
}

TEST(Saturation, StatisticalMarginMuchSmallerThanHalfVolt) {
  // The paper's headline: the statistical margin replaces the arbitrary
  // 0.5 V and is far smaller for a well-sized 12-bit cell.
  Fixture f;
  const SizedCell s = f.sizer.size_basic(0.35, 0.25,
                                         MarginPolicy::kStatistical);
  EXPECT_GT(s.sat.margin, 0.0);
  EXPECT_LT(s.sat.margin, 0.25);  // comfortably below the 0.5 V of [9,11]
}

TEST(Saturation, StatisticalRegionContainsFixedMarginRegion) {
  // Any point feasible under the 0.5 V margin must also be feasible under
  // the statistical condition (the new region is strictly larger).
  Fixture f;
  for (double vod_cs = 0.05; vod_cs <= 0.45; vod_cs += 0.1) {
    for (double vod_sw = 0.05; vod_sw + vod_cs <= 0.5; vod_sw += 0.1) {
      const SizedCell fixed =
          f.sizer.size_basic(vod_cs, vod_sw, MarginPolicy::kFixedMargin, 0.5);
      const SizedCell stat =
          f.sizer.size_basic(vod_cs, vod_sw, MarginPolicy::kStatistical);
      if (fixed.feasible()) {
        EXPECT_TRUE(stat.feasible())
            << "vod_cs=" << vod_cs << " vod_sw=" << vod_sw;
      }
    }
  }
}

TEST(Saturation, CascodeStatisticalMarginUsesThreeSigma) {
  Fixture f;
  const SizedCell s =
      f.sizer.size_cascode(0.3, 0.2, 0.2, MarginPolicy::kStatistical);
  const CascodeBounds b =
      cascode_cell_bounds(f.t, f.spec, s.cell, f.sizer.sigma_unit());
  EXPECT_NEAR(s.sat.margin, 3.0 * f.sizer.s_coeff() * b.sigma_max(), 1e-12);
}

TEST(Saturation, RssAggregationDiffersFromMax) {
  Fixture f;
  const SizedCell smax = f.sizer.size_cascode(
      0.3, 0.2, 0.2, MarginPolicy::kStatistical, 0.5, SigmaAggregation::kMax);
  const SizedCell srss = f.sizer.size_cascode(
      0.3, 0.2, 0.2, MarginPolicy::kStatistical, 0.5, SigmaAggregation::kRss);
  EXPECT_NE(smax.sat.margin, srss.sat.margin);
  // max aggregation with factor 3 is the more conservative of the two here.
  EXPECT_GT(smax.sat.margin, 0.0);
  EXPECT_GT(srss.sat.margin, 0.0);
}

TEST(Saturation, HigherYieldDemandsLargerMargin) {
  Fixture f;
  DacSpec tight = f.spec;
  tight.inl_yield = 0.9999;
  CellSizer sizer_tight(f.t, tight);
  const SizedCell s99 = f.sizer.size_basic(0.3, 0.2,
                                           MarginPolicy::kStatistical);
  const SizedCell s9999 =
      sizer_tight.size_basic(0.3, 0.2, MarginPolicy::kStatistical);
  // Caveat: the tighter yield also enlarges the CS, shrinking sigma; the S
  // coefficient effect wins for the margin at fixed overdrives? Not
  // necessarily -- so only check both are positive and finite.
  EXPECT_GT(s99.sat.margin, 0.0);
  EXPECT_GT(s9999.sat.margin, 0.0);
}

TEST(Saturation, NegativeMarginRejected) {
  DacSpec spec;
  EXPECT_THROW(check_basic_classic(spec, 0.3, 0.2, -0.1),
               std::invalid_argument);
  EXPECT_THROW(check_cascode_classic(spec, 0.3, 0.2, 0.2, -0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace csdac::core
