#include "core/sizer.hpp"

#include "core/impedance.hpp"

#include <gtest/gtest.h>

#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::core {
namespace {

using namespace csdac::units;
using tech::generic_035um;

struct Fixture {
  tech::MosTechParams t = generic_035um().nmos;
  DacSpec spec;
  CellSizer sizer{t, spec};
};

TEST(Sizer, PaperDesignPointBasicCell) {
  Fixture f;
  const SizedCell s =
      f.sizer.size_basic(0.35, 0.25, MarginPolicy::kStatistical);
  // LSB current of the 12-bit / 1 V / 50 Ohm design: ~4.88 uA.
  EXPECT_NEAR(s.cell.i_unit, 1.0 / 50.0 / 4095.0, 1e-9);
  EXPECT_GT(s.cell.cs.area(), s.cell.sw.area());
  EXPECT_GT(s.cell.vg_sw, s.cell.vg_cs);
  // Gate biases stay inside the supply.
  EXPECT_LT(s.cell.vg_sw, f.spec.vdd);
  EXPECT_TRUE(s.feasible());
}

TEST(Sizer, CascodeCellHasThreeDevices) {
  Fixture f;
  const SizedCell s =
      f.sizer.size_cascode(0.3, 0.2, 0.2, MarginPolicy::kStatistical);
  EXPECT_GT(s.cell.cas.area(), 0.0);
  EXPECT_GT(s.cell.vg_sw, s.cell.vg_cas);
  EXPECT_GT(s.cell.vg_cas, s.cell.vg_cs);
  EXPECT_GT(s.rout_unit, 0.0);
}

TEST(Sizer, CascodeMultipliesRout) {
  Fixture f;
  const SizedCell basic =
      f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const SizedCell casc =
      f.sizer.size_cascode(0.3, 0.2, 0.2, MarginPolicy::kNone);
  EXPECT_GT(casc.rout_unit, 20.0 * basic.rout_unit);
}

TEST(Sizer, TwelveBitNeedsCascodeForSfdrBandwidth) {
  // Section 2's argument (after [8]): at DC even the basic cell's saturated
  // switch cascodes the CS, so BOTH topologies meet the static requirement;
  // the cascode's value is extending the frequency up to which |Z_out(f)|
  // holds the 0.5 LSB requirement — the SFDR bandwidth.
  Fixture f;
  const double r_req = required_unit_rout(12, f.spec.r_load, 0.5);
  const SizedCell basic = f.sizer.size_basic(0.35, 0.25, MarginPolicy::kNone);
  const SizedCell casc =
      f.sizer.size_cascode(0.35, 0.2, 0.2, MarginPolicy::kNone);
  EXPECT_GT(basic.rout_unit, r_req);  // static: both fine
  EXPECT_GT(casc.rout_unit, r_req);
  // Evaluate at the unary weight: a 16x source must hold r_req/16 (its
  // error current is 16x for the same relative droop).
  const int wt = f.spec.unary_weight();
  const double bw_basic = impedance_bandwidth(f.t, f.spec, basic.cell,
                                              r_req / wt, 1e3, 1e10, wt);
  const double bw_casc = impedance_bandwidth(f.t, f.spec, casc.cell,
                                             r_req / wt, 1e3, 1e10, wt);
  EXPECT_GT(bw_casc, 2.0 * bw_basic);
}

TEST(Sizer, UnitImpedanceFallsWithFrequency) {
  Fixture f;
  const SizedCell s = f.sizer.size_cascode(0.3, 0.2, 0.2, MarginPolicy::kNone);
  const double z_lo = unit_zout_mag(f.t, f.spec, s.cell, 1.0);
  const double z_mid = unit_zout_mag(f.t, f.spec, s.cell, 1e6);
  const double z_hi = unit_zout_mag(f.t, f.spec, s.cell, 1e9);
  EXPECT_GT(z_lo, z_mid);
  EXPECT_GT(z_mid, z_hi);
  EXPECT_NEAR(z_lo, s.rout_unit, 0.05 * s.rout_unit);  // DC limit
}

TEST(Sizer, StatisticalBoundaryBeatsFixedMargin) {
  // For every vod_cs, the statistical condition allows a larger vod_sw than
  // the 0.5 V arbitrary margin — the paper's Fig. 3 (upper).
  Fixture f;
  for (double vod_cs = 0.1; vod_cs <= 0.4; vod_cs += 0.1) {
    const auto stat =
        f.sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kStatistical);
    const auto fixed =
        f.sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kFixedMargin, 0.5);
    ASSERT_TRUE(stat.has_value());
    ASSERT_TRUE(fixed.has_value());
    EXPECT_GT(*stat, *fixed) << "vod_cs = " << vod_cs;
    // And of course below the deterministic eq. (4) limit.
    const auto none = f.sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kNone);
    ASSERT_TRUE(none.has_value());
    EXPECT_LT(*stat, *none);
  }
}

TEST(Sizer, BoundaryIsSelfConsistent) {
  Fixture f;
  const double vod_cs = 0.3;
  const auto vod_sw =
      f.sizer.max_vod_sw_basic(vod_cs, MarginPolicy::kStatistical);
  ASSERT_TRUE(vod_sw.has_value());
  const SizedCell s =
      f.sizer.size_basic(vod_cs, *vod_sw, MarginPolicy::kStatistical);
  EXPECT_NEAR(s.sat.slack(), 0.0, 1e-6);
}

TEST(Sizer, BoundaryInfeasibleWhenCsTooLarge) {
  Fixture f;
  EXPECT_FALSE(f.sizer
                   .max_vod_sw_basic(0.99, MarginPolicy::kStatistical)
                   .has_value());
  EXPECT_FALSE(f.sizer
                   .max_vod_sw_basic(0.6, MarginPolicy::kFixedMargin, 0.5)
                   .has_value());
}

TEST(Sizer, CascodeSurfaceSelfConsistent) {
  Fixture f;
  const auto vod_cs = f.sizer.max_vod_cs_cascode(
      0.2, 0.2, MarginPolicy::kStatistical);
  ASSERT_TRUE(vod_cs.has_value());
  const SizedCell s = f.sizer.size_cascode(*vod_cs, 0.2, 0.2,
                                           MarginPolicy::kStatistical);
  EXPECT_NEAR(s.sat.slack(), 0.0, 1e-6);
  // Statistical surface sits above the fixed-margin one.
  const auto fixed = f.sizer.max_vod_cs_cascode(
      0.2, 0.2, MarginPolicy::kFixedMargin, 0.5);
  ASSERT_TRUE(fixed.has_value());
  EXPECT_GT(*vod_cs, *fixed);
}

TEST(Sizer, AreaSavingVersusFixedMargin) {
  // Conclusions claim: for a FIXED switch overdrive, the statistical
  // condition admits a larger CS overdrive, and the CS area falls ~1/vod^2
  // — that is where the area saving comes from (the LSB switch is already
  // at minimum size in both cases).
  Fixture f;
  const double vod_sw = 0.2;
  // Largest vod_cs feasible under each policy (search along the axis).
  auto max_cs = [&](MarginPolicy policy, double margin) {
    double best = 0.0;
    for (double v = 0.02; v < 0.98; v += 0.005) {
      const SizedCell s = f.sizer.size_basic(v, vod_sw, policy, margin);
      if (s.feasible()) best = v;
    }
    return best;
  };
  const double cs_stat = max_cs(MarginPolicy::kStatistical, 0.0);
  const double cs_fixed = max_cs(MarginPolicy::kFixedMargin, 0.5);
  ASSERT_GT(cs_stat, cs_fixed);
  const SizedCell stat =
      f.sizer.size_basic(cs_stat, vod_sw, MarginPolicy::kStatistical);
  const SizedCell fixed =
      f.sizer.size_basic(cs_fixed, vod_sw, MarginPolicy::kFixedMargin, 0.5);
  EXPECT_LT(stat.cell.cs.area(), fixed.cell.cs.area());
  EXPECT_LT(stat.cell.active_area(), fixed.cell.active_area());
}

TEST(Sizer, HigherResolutionGrowsCsArea) {
  Fixture f;
  DacSpec spec14 = f.spec;
  spec14.nbits = 14;
  spec14.binary_bits = 4;
  CellSizer sizer14(f.t, spec14);
  const SizedCell s12 = f.sizer.size_basic(0.3, 0.2, MarginPolicy::kNone);
  const SizedCell s14 = sizer14.size_basic(0.3, 0.2, MarginPolicy::kNone);
  // 14-bit sigma spec is 2x tighter -> CS area 4x (at fixed overdrive, for
  // the same relative structure; the unit current also shrinks 4x).
  EXPECT_GT(s14.cell.cs.area(), 3.0 * s12.cell.cs.area());
}

TEST(Sizer, RejectsBadOverdrives) {
  Fixture f;
  EXPECT_THROW(f.sizer.size_basic(0.0, 0.2), std::invalid_argument);
  EXPECT_THROW(f.sizer.size_basic(0.3, -0.2), std::invalid_argument);
  EXPECT_THROW(f.sizer.size_cascode(0.3, 0.2, 5.0), std::invalid_argument);
}

TEST(Sizer, SpecValidation) {
  Fixture f;
  DacSpec bad = f.spec;
  bad.binary_bits = 12;
  EXPECT_THROW(CellSizer(f.t, bad), std::invalid_argument);
  bad = f.spec;
  bad.inl_yield = 1.5;
  EXPECT_THROW(CellSizer(f.t, bad), std::invalid_argument);
  bad = f.spec;
  bad.v_out_min = 3.0;  // v_out_min + swing > vdd
  EXPECT_THROW(CellSizer(f.t, bad), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::core
