#include "mathx/alloc_counter.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

namespace csdac::mathx {
namespace {

// The counting operator new hook is process-global, so these tests use
// >= bounds where other machinery (gtest, the runtime) may allocate on the
// side; the targeted allocations below are big enough to dominate.

TEST(AllocCounter, InactiveByDefault) {
  EXPECT_FALSE(alloc_counting_active());
  const AllocCounts before = alloc_counted_total();
  auto p = std::make_unique<std::vector<double>>(4096);
  (void)p;
  const AllocCounts after = alloc_counted_total();
  EXPECT_EQ(after.bytes, before.bytes);
  EXPECT_EQ(after.count, before.count);
}

TEST(AllocCounter, CountsWhileActive) {
  ScopedAllocCounting counting;
  EXPECT_TRUE(alloc_counting_active());
  const AllocCounts before = counting.so_far();
  {
    std::vector<double> v(8192);  // >= 64 KiB in one shot
    v[0] = 1.0;
  }
  const AllocCounts after = counting.so_far();
  EXPECT_GE(after.bytes - before.bytes,
            static_cast<std::int64_t>(8192 * sizeof(double)));
  EXPECT_GE(after.count - before.count, 1);
}

TEST(AllocCounter, StopsCountingAfterScopeEnds) {
  AllocCounts during{};
  {
    ScopedAllocCounting counting;
    std::vector<char> v(1 << 16);
    v[0] = 1;
    during = counting.so_far();
  }
  EXPECT_FALSE(alloc_counting_active());
  const AllocCounts total = alloc_counted_total();
  auto p = std::make_unique<std::vector<double>>(4096);
  (void)p;
  EXPECT_EQ(alloc_counted_total().bytes, total.bytes);
  EXPECT_GE(during.bytes, static_cast<std::int64_t>(1 << 16));
}

TEST(AllocCounter, NestedScopesKeepCountingUntilLastExit) {
  ScopedAllocCounting outer;
  const AllocCounts start = outer.so_far();
  {
    ScopedAllocCounting inner;
    std::vector<char> v(1 << 14);
    v[0] = 1;
  }
  // Inner scope ended but the outer one is still active.
  EXPECT_TRUE(alloc_counting_active());
  {
    std::vector<char> v(1 << 14);
    v[0] = 1;
  }
  EXPECT_GE(outer.so_far().bytes - start.bytes,
            static_cast<std::int64_t>(2 * (1 << 14)));
}

TEST(AllocCounter, AlignedAllocationsAreCounted) {
  ScopedAllocCounting counting;
  const AllocCounts before = counting.so_far();
  struct alignas(64) Wide {
    double d[16];
  };
  auto p = std::make_unique<Wide>();
  p->d[0] = 1.0;
  const AllocCounts after = counting.so_far();
  EXPECT_GE(after.bytes - before.bytes,
            static_cast<std::int64_t>(sizeof(Wide)));
  EXPECT_GE(after.count - before.count, 1);
}

}  // namespace
}  // namespace csdac::mathx
