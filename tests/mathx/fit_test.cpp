#include "mathx/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mathx/rng.hpp"

namespace csdac::mathx {
namespace {

TEST(FitLine, ExactLine) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y = {1, 3, 5, 7, 9};
  const auto f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineRecoversSlope) {
  Xoshiro256 rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i * 0.01);
    y.push_back(-3.0 * x.back() + 0.7 + normal(rng, 0.0, 0.05));
  }
  const auto f = fit_line(x, y);
  EXPECT_NEAR(f.slope, -3.0, 0.05);
  EXPECT_NEAR(f.intercept, 0.7, 0.02);
  EXPECT_GT(f.r2, 0.95);
}

TEST(FitLine, ThrowsOnBadInput) {
  std::vector<double> one = {1.0};
  EXPECT_THROW(fit_line(one, one), std::invalid_argument);
  std::vector<double> same_x = {2.0, 2.0, 2.0};
  std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_THROW(fit_line(same_x, y), std::invalid_argument);
}

TEST(FitQuadratic, ExactParabola) {
  std::vector<double> x, y;
  for (int i = -5; i <= 5; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i * i - 3.0 * i + 4.0);
  }
  const auto f = fit_quadratic(x, y);
  EXPECT_NEAR(f.a, 2.0, 1e-9);
  EXPECT_NEAR(f.b, -3.0, 1e-9);
  EXPECT_NEAR(f.c, 4.0, 1e-9);
}

TEST(Bisect, FindsSqrtTwo) {
  const double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, EndpointRoot) {
  const double r = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Bisect, ThrowsWithoutBracket) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(FixedPoint, ConvergesToCosFixedPoint) {
  // The Dottie number: x = cos(x) ~ 0.739085.
  const double x = fixed_point([](double v) { return std::cos(v); }, 1.0);
  EXPECT_NEAR(x, 0.7390851332151607, 1e-8);
}

TEST(FixedPoint, RelaxationStabilizesDivergentMap) {
  // g(x) = 3 - 2x diverges under plain iteration (|g'| = 2 > 1) but has
  // fixed point x = 1; under-relaxation converges.
  const double x = fixed_point([](double v) { return 3.0 - 2.0 * v; }, 0.0,
                               1e-12, 500, /*relax=*/0.3);
  EXPECT_NEAR(x, 1.0, 1e-9);
}

}  // namespace
}  // namespace csdac::mathx
