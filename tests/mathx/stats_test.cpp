#include "mathx/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csdac::mathx {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalInvCdf, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.9973,
                   0.999, 0.999999}) {
    const double x = normal_inv_cdf(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-12) << "p = " << p;
  }
}

TEST(NormalInvCdf, KnownQuantiles) {
  EXPECT_NEAR(normal_inv_cdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_inv_cdf(0.8413447460685429), 1.0, 1e-10);
  EXPECT_NEAR(normal_inv_cdf(0.9986501019683699), 3.0, 1e-9);
}

TEST(NormalInvCdf, ThrowsOutOfDomain) {
  EXPECT_THROW(normal_inv_cdf(0.0), std::domain_error);
  EXPECT_THROW(normal_inv_cdf(1.0), std::domain_error);
  EXPECT_THROW(normal_inv_cdf(-0.3), std::domain_error);
}

TEST(YieldCoefficient, ThreeSigmaIs997) {
  // The classic 99.73% <-> 3 sigma correspondence of eq. (1).
  EXPECT_NEAR(yield_coefficient_two_sided(0.9973002039367398), 3.0, 1e-9);
  // 99.7% used in the paper's design example.
  EXPECT_NEAR(yield_coefficient_two_sided(0.997), 2.9677, 1e-3);
}

TEST(YieldCoefficient, OneSidedMatchesInvNorm) {
  EXPECT_NEAR(yield_coefficient_one_sided(0.8413447460685429), 1.0, 1e-10);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(Percentile, Median) {
  EXPECT_NEAR(percentile({3.0, 1.0, 2.0}, 50.0), 2.0, 1e-12);
  EXPECT_NEAR(percentile({4.0, 1.0, 2.0, 3.0}, 50.0), 2.5, 1e-12);
}

TEST(Percentile, Extremes) {
  std::vector<double> v = {5.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(50.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_NEAR(h.bin_center(9), 9.5, 1e-12);
}

TEST(HistogramTest, ThrowsOnBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::mathx
