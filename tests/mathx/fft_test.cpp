#include "mathx/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mathx/rng.hpp"

namespace csdac::mathx {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1000));
}

TEST(Fft, DeltaFunctionIsFlat) {
  std::vector<Cplx> x(8, Cplx{});
  x[0] = Cplx(1.0, 0.0);
  fft_pow2(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 256;
  const std::size_t bin = 19;
  std::vector<Cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * kPi * static_cast<double>(bin * i) /
                      static_cast<double>(n);
    x[i] = Cplx(std::cos(ph), 0.0);
  }
  fft_pow2(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = (k == bin || k == n - bin) ? n / 2.0 : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expected, 1e-8) << "bin " << k;
  }
}

TEST(Fft, ForwardInverseRoundTrip) {
  Xoshiro256 rng(7);
  std::vector<Cplx> x(128);
  for (auto& v : x) v = Cplx(uniform(rng, -1, 1), uniform(rng, -1, 1));
  auto y = x;
  fft_pow2(y);
  fft_pow2(y, /*inverse=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(Fft, ThrowsOnNonPow2) {
  std::vector<Cplx> x(12);
  EXPECT_THROW(fft_pow2(x), std::invalid_argument);
}

TEST(Dft, BluesteinMatchesNaiveDft) {
  // Non-power-of-two length exercises the chirp-z path.
  const std::size_t n = 50;
  Xoshiro256 rng(11);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = Cplx(uniform(rng, -1, 1), uniform(rng, -1, 1));
  const auto fast = dft(x);
  for (std::size_t k = 0; k < n; ++k) {
    Cplx ref{};
    for (std::size_t m = 0; m < n; ++m) {
      const double ph = -2.0 * kPi * static_cast<double>(k * m) /
                        static_cast<double>(n);
      ref += x[m] * Cplx(std::cos(ph), std::sin(ph));
    }
    EXPECT_NEAR(std::abs(fast[k] - ref), 0.0, 1e-8) << "bin " << k;
  }
}

TEST(Dft, BluesteinInverseRoundTrip) {
  const std::size_t n = 150;  // 150 = 2*3*5^2, not a power of two
  Xoshiro256 rng(13);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = Cplx(uniform(rng, -1, 1), uniform(rng, -1, 1));
  const auto y = dft(dft(x), /*inverse=*/true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
  }
}

TEST(Dft, RealWrapperConjugateSymmetry) {
  std::vector<double> x = {1.0, 2.0, -0.5, 0.25, 3.0, -1.0, 0.0, 0.5};
  const auto s = dft_real(x);
  const std::size_t n = x.size();
  for (std::size_t k = 1; k < n / 2; ++k) {
    EXPECT_NEAR(s[k].real(), s[n - k].real(), 1e-12);
    EXPECT_NEAR(s[k].imag(), -s[n - k].imag(), 1e-12);
  }
}

TEST(MagnitudeDb, FullScaleToneReadsZeroDb) {
  const std::size_t n = 1024;
  const std::size_t bin = 101;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * kPi * static_cast<double>(bin * i) /
                    static_cast<double>(n));
  }
  const auto db = magnitude_db(dft_real(x), /*fs_ref=*/1.0);
  EXPECT_NEAR(db[bin], 0.0, 1e-6);
  // All other bins far below.
  for (std::size_t k = 1; k < db.size(); ++k) {
    if (k == bin) continue;
    EXPECT_LT(db[k], -200.0) << "bin " << k;
  }
}

TEST(WindowFn, HannSumsToHalf) {
  const auto g = window_coherent_gain(Window::kHann, 1024);
  EXPECT_NEAR(g, 0.5, 1e-3);
}

TEST(WindowFn, RectIsUnity) {
  const auto w = make_window(Window::kRect, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WindowFn, BlackmanHarrisEdgesNearZero) {
  const auto w = make_window(Window::kBlackmanHarris4, 256);
  EXPECT_LT(w[0], 1e-4);
  EXPECT_NEAR(w[128], 1.0, 1e-3);  // periodic window peaks at n/2
}

TEST(WindowFn, CoherentGainMatchesWindowMean) {
  // The coherent gain IS the mean of the window samples — the DFT of a
  // windowed coherent tone scales its fundamental bin by exactly that.
  for (const auto win :
       {Window::kRect, Window::kHann, Window::kBlackmanHarris4}) {
    for (const std::size_t n : {64u, 256u, 1000u}) {
      const auto w = make_window(win, n);
      double mean = 0.0;
      for (double v : w) mean += v;
      mean /= static_cast<double>(n);
      EXPECT_NEAR(window_coherent_gain(win, n), mean, 1e-12)
          << static_cast<int>(win) << " n=" << n;
    }
  }
  // Textbook values for the periodic windows.
  EXPECT_NEAR(window_coherent_gain(Window::kHann, 4096), 0.5, 1e-3);
  EXPECT_NEAR(window_coherent_gain(Window::kBlackmanHarris4, 4096), 0.35875,
              1e-3);
}

TEST(WindowFn, HannMainlobeConfinesNonCoherentLeakage) {
  // A tone landing exactly between bins: rectangular leakage decays as
  // 1/|k - k0| and pollutes the whole spectrum, while Hann's raised-
  // cosine sidelobes are at least 31 dB down and fall much faster.  Probe
  // the floor 20 bins away from the tone.
  const std::size_t n = 256;
  const double k0 = 40.5;
  std::vector<Cplx> rect_in(n), hann_in(n);
  const auto hann = make_window(Window::kHann, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double s =
        std::sin(2.0 * std::numbers::pi * k0 * static_cast<double>(i) / n);
    rect_in[i] = Cplx(s, 0.0);
    hann_in[i] = Cplx(s * hann[i], 0.0);
  }
  fft_pow2(rect_in);
  fft_pow2(hann_in);
  const auto& rect_spec = rect_in;
  const auto& hann_spec = hann_in;
  const auto floor_db = [&](const std::vector<Cplx>& spec) {
    const double peak = std::abs(spec[40]);
    double worst = 0.0;
    for (std::size_t k = 61; k < n / 2; ++k) {
      worst = std::max(worst, std::abs(spec[k]));
    }
    return 20.0 * std::log10(worst / peak);
  };
  const double rect_floor = floor_db(rect_spec);
  const double hann_floor = floor_db(hann_spec);
  EXPECT_GT(rect_floor, -40.0);  // rect leakage stays high
  EXPECT_LT(hann_floor, -60.0);  // Hann buries it
  EXPECT_LT(hann_floor, rect_floor - 25.0);
}

}  // namespace
}  // namespace csdac::mathx
