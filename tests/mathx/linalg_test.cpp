#include "mathx/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/rng.hpp"

namespace csdac::mathx {
namespace {

TEST(LuSolver, SolvesIdentity) {
  MatrixD a(3, 3);
  for (std::size_t i = 0; i < 3; ++i) a(i, i) = 1.0;
  const auto x = LuSolver<double>::solve_once(a, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(LuSolver, Solves2x2) {
  MatrixD a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const auto x = LuSolver<double>::solve_once(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolver, RequiresPivoting) {
  // Zero in the (0,0) position forces a row swap.
  MatrixD a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const auto x = LuSolver<double>::solve_once(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolver, ThrowsOnSingular) {
  MatrixD a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  LuSolver<double> s;
  EXPECT_THROW(s.factorize(a), SingularMatrixError);
}

TEST(LuSolver, ThrowsOnNonSquare) {
  MatrixD a(2, 3);
  LuSolver<double> s;
  EXPECT_THROW(s.factorize(a), std::invalid_argument);
}

TEST(LuSolver, ThrowsOnRhsSizeMismatch) {
  MatrixD a(2, 2);
  a(0, 0) = 1.0; a(1, 1) = 1.0;
  LuSolver<double> s;
  s.factorize(a);
  EXPECT_THROW(s.solve({1.0}), std::invalid_argument);
}

TEST(LuSolver, RandomRoundTrip) {
  // Property: A * solve(A, b) == b for random well-conditioned systems.
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + trial % 15;
    MatrixD a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = uniform(rng, -1.0, 1.0);
      a(i, i) += 4.0;  // diagonal dominance keeps the condition number sane
    }
    std::vector<double> b(n);
    for (auto& v : b) v = uniform(rng, -10.0, 10.0);
    const auto x = LuSolver<double>::solve_once(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) sum += a(i, j) * x[j];
      EXPECT_NEAR(sum, b[i], 1e-9) << "row " << i << " trial " << trial;
    }
  }
}

TEST(LuSolver, ComplexSystem) {
  using C = std::complex<double>;
  MatrixC a(2, 2);
  a(0, 0) = C(1.0, 1.0);
  a(0, 1) = C(0.0, 0.0);
  a(1, 0) = C(0.0, 0.0);
  a(1, 1) = C(0.0, 2.0);
  const auto x = LuSolver<C>::solve_once(a, {C(2.0, 0.0), C(0.0, 4.0)});
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 2.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), 0.0, 1e-12);
}

TEST(LuSolver, ReuseFactorizationManyRhs) {
  MatrixD a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
  a(1, 0) = 1; a(1, 1) = 4; a(1, 2) = 1;
  a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 4;
  LuSolver<double> s;
  s.factorize(a);
  for (int k = 0; k < 5; ++k) {
    std::vector<double> b = {1.0 * k, 2.0 * k, 3.0 * k};
    const auto x = s.solve(b);
    for (std::size_t i = 0; i < 3; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < 3; ++j) sum += a(i, j) * x[j];
      EXPECT_NEAR(sum, b[i], 1e-12);
    }
  }
}

TEST(Matrix, SetZeroKeepsShape) {
  MatrixD a(2, 5, 3.0);
  a.set_zero();
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 5u);
  EXPECT_DOUBLE_EQ(a(1, 4), 0.0);
}

}  // namespace
}  // namespace csdac::mathx
