#include "mathx/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "mathx/stats.hpp"

namespace csdac::mathx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01Range) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Xoshiro256 rng(10);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(uniform(rng, 2.0, 4.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.01);
  EXPECT_NEAR(s.variance(), 4.0 / 12.0, 0.01);
}

TEST(Rng, NormalMomentsConverge) {
  Xoshiro256 rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(normal(rng, 1.5, 2.0));
  EXPECT_NEAR(s.mean(), 1.5, 0.02);
  EXPECT_NEAR(s.stddev(), 2.0, 0.02);
}

TEST(Rng, NormalTailProbabilityMatchesCdf) {
  // P(X > 2 sigma) should be ~2.28%.
  Xoshiro256 rng(12);
  int above = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (normal(rng) > 2.0) ++above;
  }
  const double frac = static_cast<double>(above) / n;
  EXPECT_NEAR(frac, 1.0 - normal_cdf(2.0), 0.002);
}

TEST(Rng, JumpProducesDecorrelatedStream) {
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, JumpSeparatedStreamsHaveDistinctPrefixes) {
  // Consecutive jump()-derived streams from one seed must not share their
  // output prefix with each other or with the parent stream.
  constexpr int kPrefix = 256;
  std::vector<std::vector<std::uint64_t>> prefixes;
  Xoshiro256 parent(2024);
  for (int s = 0; s < 8; ++s) {
    Xoshiro256 snapshot = parent;  // stream s starts at the current state
    std::vector<std::uint64_t> p(kPrefix);
    for (auto& v : p) v = snapshot();
    prefixes.push_back(std::move(p));
    parent.jump();
  }
  for (std::size_t a = 0; a < prefixes.size(); ++a) {
    for (std::size_t b = a + 1; b < prefixes.size(); ++b) {
      int same = 0;
      for (int i = 0; i < kPrefix; ++i) {
        if (prefixes[a][i] == prefixes[b][i]) ++same;
      }
      EXPECT_LT(same, 2) << "streams " << a << " and " << b;
    }
  }
}

TEST(Rng, StreamRngDerivedStreamsHaveDistinctPrefixes) {
  // (seed, index)-derived substreams — the parallel MC engine's per-item
  // streams — must be pairwise distinct and distinct from the base stream.
  constexpr int kPrefix = 256;
  constexpr std::uint64_t kSeed = 77;
  std::vector<std::vector<std::uint64_t>> prefixes;
  {
    Xoshiro256 base(kSeed);
    std::vector<std::uint64_t> p(kPrefix);
    for (auto& v : p) v = base();
    prefixes.push_back(std::move(p));
  }
  for (std::uint64_t idx = 0; idx < 16; ++idx) {
    Xoshiro256 s = stream_rng(kSeed, idx);
    std::vector<std::uint64_t> p(kPrefix);
    for (auto& v : p) v = s();
    prefixes.push_back(std::move(p));
  }
  for (std::size_t a = 0; a < prefixes.size(); ++a) {
    for (std::size_t b = a + 1; b < prefixes.size(); ++b) {
      int same = 0;
      for (int i = 0; i < kPrefix; ++i) {
        if (prefixes[a][i] == prefixes[b][i]) ++same;
      }
      EXPECT_LT(same, 2) << "streams " << a << " and " << b;
    }
  }
}

TEST(Rng, StreamRngIsDeterministicPerIndex) {
  Xoshiro256 a = stream_rng(123, 5), b = stream_rng(123, 5);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, PooledStreamDrawsPassChiSquareUniformity) {
  // Draws pooled across many (seed, index) substreams must still be
  // uniform: 64-bin chi-square on uniform01 at fixed seeds. df = 63, so
  // the statistic should sit near 63; 103.4 is the 99.9th percentile.
  for (std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    constexpr int kBins = 64;
    constexpr int kStreams = 64;
    constexpr int kPerStream = 1000;
    std::vector<int> counts(kBins, 0);
    for (std::uint64_t s = 0; s < kStreams; ++s) {
      Xoshiro256 rng = stream_rng(seed, s);
      for (int i = 0; i < kPerStream; ++i) {
        const auto bin = static_cast<std::size_t>(uniform01(rng) * kBins);
        ++counts[std::min<std::size_t>(bin, kBins - 1)];
      }
    }
    const double expected =
        static_cast<double>(kStreams) * kPerStream / kBins;
    double chi2 = 0.0;
    for (int c : counts) {
      const double d = c - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 103.4) << "seed " << seed;
    EXPECT_GT(chi2, 20.0) << "seed " << seed;  // suspiciously uniform = broken
  }
}

TEST(Rng, NormalMatchesStandardNormalBuckets) {
  // Chi-square of normal() against exact N(0,1) bucket masses. Buckets at
  // half-sigma boundaries out to +/-2 plus two open tails: 10 bins, df =
  // 9, and 27.9 is the 99.9th percentile of chi2(9).
  const double edges[] = {-2.0, -1.5, -1.0, -0.5, 0.0, 0.5, 1.0, 1.5, 2.0};
  constexpr int kBins = 10;
  constexpr int kDraws = 200000;
  const auto cdf = [](double x) {
    return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0)));
  };
  for (std::uint64_t seed : {2ull, 777ull}) {
    Xoshiro256 rng = stream_rng(seed, 0);
    int counts[kBins] = {};
    for (int i = 0; i < kDraws; ++i) {
      const double x = normal(rng);
      int b = 0;
      while (b < kBins - 1 && x >= edges[b]) ++b;
      ++counts[b];
    }
    double chi2 = 0.0;
    double lo_cdf = 0.0;
    for (int b = 0; b < kBins; ++b) {
      const double hi_cdf = (b == kBins - 1) ? 1.0 : cdf(edges[b]);
      const double expected = kDraws * (hi_cdf - lo_cdf);
      const double d = counts[b] - expected;
      chi2 += d * d / expected;
      lo_cdf = hi_cdf;
    }
    EXPECT_LT(chi2, 27.9) << "seed " << seed;
  }
}

TEST(Rng, NormalTailMassBeyondThreeSigma) {
  // P(|x| > 3) = 2 * (1 - Phi(3)) = 0.26998 %. With 400k draws the
  // expected count is ~1080, sd ~33; +/-6 sd bounds make a false alarm
  // astronomically unlikely while catching a truncated or thin tail.
  constexpr int kDraws = 400000;
  Xoshiro256 rng = stream_rng(11, 0);
  int tails = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (std::abs(normal(rng)) > 3.0) ++tails;
  }
  EXPECT_GT(tails, 880);
  EXPECT_LT(tails, 1280);
}

TEST(Rng, NormalScaleAndShiftMoments) {
  constexpr int kDraws = 100000;
  Xoshiro256 rng = stream_rng(4, 2);
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = normal(rng, 10.0, 0.25);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.01);
  EXPECT_NEAR(std::sqrt(var), 0.25, 0.01);
}

TEST(Rng, UniformIndexHasNoModuloBias) {
  // Classic failure mode: `rng() % n` over-weights the residues below
  // 2^64 mod n. At n just above 2^63 the naive scheme lands in the lower
  // half ~2/3 of the time; rejection sampling must stay at 1/2. Also run
  // a chi-square at a small non-power-of-two n.
  constexpr std::uint64_t kHuge = (1ull << 63) + 1;
  Xoshiro256 rng(2718);
  int low = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (uniform_index(rng, kHuge) < (kHuge / 2)) ++low;
  }
  // Binomial(40000, 1/2): sd = 100. A modulo-biased generator would sit
  // near 26667, > 65 sd away.
  EXPECT_GT(low, 19200);
  EXPECT_LT(low, 20800);

  constexpr std::uint64_t kSmall = 12;  // non-power-of-two
  int counts[kSmall] = {};
  constexpr int kSmallDraws = 120000;
  for (int i = 0; i < kSmallDraws; ++i) {
    ++counts[uniform_index(rng, kSmall)];
  }
  const double expected = static_cast<double>(kSmallDraws) / kSmall;
  double chi2 = 0.0;
  for (auto c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 31.3);  // 99.9th percentile of chi2(11)
}

TEST(Rng, UniformIndexInRangeAndCoversAll) {
  Xoshiro256 rng(13);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto k = uniform_index(rng, 7);
    ASSERT_LT(k, 7u);
    ++seen[static_cast<std::size_t>(k)];
  }
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

}  // namespace
}  // namespace csdac::mathx
