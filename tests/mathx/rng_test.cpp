#include "mathx/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/stats.hpp"

namespace csdac::mathx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01Range) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Xoshiro256 rng(10);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(uniform(rng, 2.0, 4.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.01);
  EXPECT_NEAR(s.variance(), 4.0 / 12.0, 0.01);
}

TEST(Rng, NormalMomentsConverge) {
  Xoshiro256 rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(normal(rng, 1.5, 2.0));
  EXPECT_NEAR(s.mean(), 1.5, 0.02);
  EXPECT_NEAR(s.stddev(), 2.0, 0.02);
}

TEST(Rng, NormalTailProbabilityMatchesCdf) {
  // P(X > 2 sigma) should be ~2.28%.
  Xoshiro256 rng(12);
  int above = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (normal(rng) > 2.0) ++above;
  }
  const double frac = static_cast<double>(above) / n;
  EXPECT_NEAR(frac, 1.0 - normal_cdf(2.0), 0.002);
}

TEST(Rng, JumpProducesDecorrelatedStream) {
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIndexInRangeAndCoversAll) {
  Xoshiro256 rng(13);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto k = uniform_index(rng, 7);
    ASSERT_LT(k, 7u);
    ++seen[static_cast<std::size_t>(k)];
  }
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

}  // namespace
}  // namespace csdac::mathx
