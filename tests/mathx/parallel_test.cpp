#include "mathx/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mathx/rng.hpp"

namespace csdac::mathx {
namespace {

TEST(Parallel, ResolveThreads) {
  EXPECT_GE(resolve_threads(0), 1);  // hardware concurrency, at least 1
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
}

TEST(Parallel, ForEachVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 7}) {
    std::vector<std::atomic<int>> visits(257);
    for (auto& v : visits) v.store(0);
    const RunStats s = parallel_for(257, threads, [&](std::int64_t i) {
      visits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
    EXPECT_EQ(s.evaluated, 257);
    EXPECT_EQ(s.skipped, 0);
    EXPECT_GE(s.threads, 1);
    EXPECT_GE(s.wall_seconds, 0.0);
  }
}

TEST(Parallel, ChunkedClaimingStillCoversAll) {
  std::vector<std::atomic<int>> visits(100);
  for (auto& v : visits) v.store(0);
  parallel_for(100, 4, [&](std::int64_t i) {
    visits[static_cast<std::size_t>(i)].fetch_add(1);
  }, /*chunk=*/7);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(Parallel, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.for_each(0, 100, [&](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 20 * (99 * 100 / 2));
  pool.for_each(5, 5, [](std::int64_t) { FAIL(); });  // empty range is a no-op
}

TEST(Parallel, MapOutputIsIndexOrderedForAnyThreadCount) {
  const auto ref = parallel_map(
      64, 1, [](std::int64_t i) { return 3 * i + 1; });
  for (int threads : {2, 7}) {
    const auto got = parallel_map(
        64, threads, [](std::int64_t i) { return 3 * i + 1; });
    EXPECT_EQ(got, ref) << "threads " << threads;
  }
}

TEST(Parallel, WilsonHalfWidthProperties) {
  // Shrinks with n, symmetric in pass <-> fail, and non-degenerate at the
  // extremes (where the naive binomial CI collapses to zero).
  EXPECT_GT(wilson_half_width(50, 100), wilson_half_width(500, 1000));
  EXPECT_NEAR(wilson_half_width(30, 100), wilson_half_width(70, 100), 1e-12);
  EXPECT_GT(wilson_half_width(100, 100), 0.0);
  EXPECT_GT(wilson_half_width(0, 100), 0.0);
  EXPECT_EQ(wilson_half_width(0, 0), 1.0);
  // Large-n agreement with the naive binomial half-width at p = 0.5:
  // 1.96 * sqrt(0.25 / 10000) = 0.0098.
  EXPECT_NEAR(wilson_half_width(5000, 10000), 0.0098, 2e-4);
}

// A deterministic pass/fail item: pure function of the index.
bool item(std::int64_t i, std::uint64_t seed, double threshold) {
  Xoshiro256 rng = stream_rng(seed, static_cast<std::uint64_t>(i));
  return uniform01(rng) < threshold;
}

TEST(Parallel, AdaptiveRunBitIdenticalAcrossThreadCountsAndReruns) {
  EarlyStopOptions opts;
  opts.max_items = 4000;
  opts.min_items = 128;
  opts.batch = 128;
  opts.ci_half_width = 0.02;
  const auto ref = adaptive_yield_run(
      opts, 1, [](std::int64_t i) { return item(i, 99, 0.9); });
  for (int threads : {1, 2, 7}) {
    for (int rerun = 0; rerun < 2; ++rerun) {
      const auto got = adaptive_yield_run(
          opts, threads, [](std::int64_t i) { return item(i, 99, 0.9); });
      EXPECT_EQ(got.evaluated, ref.evaluated)
          << "threads " << threads << " rerun " << rerun;
      EXPECT_EQ(got.passed, ref.passed);
      EXPECT_DOUBLE_EQ(got.yield, ref.yield);
      EXPECT_DOUBLE_EQ(got.ci95, ref.ci95);
    }
  }
}

TEST(Parallel, AdaptiveRunStopsEarlyOnResolvedYield) {
  // 90 % yield resolves to a 2 % half-width long before 10000 items.
  EarlyStopOptions opts;
  opts.max_items = 10000;
  opts.ci_half_width = 0.02;
  const auto r = adaptive_yield_run(
      opts, 2, [](std::int64_t i) { return item(i, 7, 0.9); });
  EXPECT_TRUE(r.stats.early_stopped);
  EXPECT_LT(r.evaluated, opts.max_items);
  EXPECT_EQ(r.stats.skipped, opts.max_items - r.evaluated);
  EXPECT_LE(r.ci95, 0.02);
  EXPECT_NEAR(r.yield, 0.9, 3.0 * 0.02);
}

TEST(Parallel, AdaptiveRunNeverEvaluatesPastTheCap) {
  std::atomic<std::int64_t> max_index{-1};
  std::atomic<std::int64_t> calls{0};
  EarlyStopOptions opts;
  opts.max_items = 500;
  opts.min_items = 64;
  opts.batch = 64;
  opts.ci_half_width = 1e-9;  // unreachable: always runs to the cap
  const auto r = adaptive_yield_run(opts, 7, [&](std::int64_t i) {
    calls.fetch_add(1);
    std::int64_t seen = max_index.load();
    while (i > seen && !max_index.compare_exchange_weak(seen, i)) {
    }
    return item(i, 3, 0.5);
  });
  EXPECT_FALSE(r.stats.early_stopped);
  EXPECT_EQ(r.evaluated, 500);
  EXPECT_EQ(calls.load(), 500);
  EXPECT_LT(max_index.load(), 500);
}

TEST(Parallel, AdaptiveRunRespectsMinItems) {
  EarlyStopOptions opts;
  opts.max_items = 4000;
  opts.min_items = 512;
  opts.batch = 128;
  opts.ci_half_width = 0.5;  // trivially satisfied from the first batch
  const auto r = adaptive_yield_run(
      opts, 2, [](std::int64_t i) { return item(i, 5, 0.99); });
  EXPECT_GE(r.evaluated, 512);
}

TEST(Parallel, AdaptiveRunDisabledToleranceRunsToCap) {
  EarlyStopOptions opts;
  opts.max_items = 300;
  opts.ci_half_width = 0.0;
  const auto r = adaptive_yield_run(
      opts, 2, [](std::int64_t i) { return item(i, 11, 0.99); });
  EXPECT_EQ(r.evaluated, 300);
  EXPECT_FALSE(r.stats.early_stopped);
}

TEST(Parallel, SingleThreadStatsMatchMultiThreadShape) {
  // threads=1 must report the same RunStats shape as any other count: a
  // one-entry per_thread_items vector holding all the work, utilization 1.
  const RunStats s = parallel_for(123, 1, [](std::int64_t) {});
  EXPECT_EQ(s.threads, 1);
  ASSERT_EQ(s.per_thread_items.size(), 1u);
  EXPECT_EQ(s.per_thread_items[0], 123);
  EXPECT_DOUBLE_EQ(s.utilization, 1.0);
  EXPECT_EQ(s.evaluated, 123);

  // Same guarantee on the adaptive path.
  const YieldRun r = adaptive_yield_run(
      {.max_items = 80, .batch = 40, .ci_half_width = 0.0}, 1,
      [](std::int64_t) { return true; });
  EXPECT_EQ(r.stats.threads, 1);
  ASSERT_EQ(r.stats.per_thread_items.size(), 1u);
  EXPECT_EQ(r.stats.per_thread_items[0], 80);
  EXPECT_DOUBLE_EQ(r.stats.utilization, 1.0);
}

// ---- Worker-indexed / workspace engine variants ------------------------

TEST(Parallel, IndexedLoopTracksPerThreadItemsAndUtilization) {
  for (int threads : {1, 2, 7}) {
    std::vector<std::atomic<int>> visits(300);
    for (auto& v : visits) v.store(0);
    const RunStats s = parallel_for_indexed(
        300, threads, [&](int worker, std::int64_t i) {
          EXPECT_GE(worker, 0);
          EXPECT_LT(worker, threads);
          visits[static_cast<std::size_t>(i)].fetch_add(1);
        });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
    ASSERT_EQ(s.per_thread_items.size(), static_cast<std::size_t>(s.threads));
    EXPECT_EQ(std::accumulate(s.per_thread_items.begin(),
                              s.per_thread_items.end(), std::int64_t{0}),
              300);
    EXPECT_GT(s.utilization, 0.0);
    EXPECT_LE(s.utilization, 1.0);
  }
}

TEST(Parallel, WorkspaceLoopMatchesPlainLoopBitIdentically) {
  // The workspace path must be a pure optimization: same per-index results
  // as the plain loop, for any thread count.
  struct Scratch {
    std::vector<double> buf = std::vector<double>(64);
  };
  auto value = [](std::int64_t i) {
    Xoshiro256 rng = stream_rng(5, static_cast<std::uint64_t>(i));
    return normal(rng);
  };
  const auto ref = parallel_map(128, 1, value);
  for (int threads : {1, 2, 7}) {
    std::vector<double> out(128);
    const RunStats s = parallel_for_workspace(
        128, threads, [] { return Scratch{}; },
        [&](Scratch& ws, std::int64_t i) {
          ws.buf[0] = value(i);  // scratch use must not leak across items
          out[static_cast<std::size_t>(i)] = ws.buf[0];
        });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], ref[i]) << "threads " << threads << " item " << i;
    }
    EXPECT_EQ(s.evaluated, 128);
  }
}

TEST(Parallel, WorkspaceFactoryCalledAtMostOncePerWorker) {
  std::atomic<int> made{0};
  const int threads = 4;
  const RunStats s = parallel_for_workspace(
      1000, threads,
      [&] {
        made.fetch_add(1);
        return int{0};
      },
      [](int& ws, std::int64_t) { ++ws; });
  EXPECT_GE(made.load(), 1);
  EXPECT_LE(made.load(), threads);
  EXPECT_EQ(s.evaluated, 1000);
}

TEST(Parallel, WorkspaceLoopClampsWorkersToItems) {
  // 3 items on 8 threads: at most 3 workspaces, no idle-worker factories.
  std::atomic<int> made{0};
  parallel_for_workspace(
      3, 8,
      [&] {
        made.fetch_add(1);
        return int{0};
      },
      [](int&, std::int64_t) {});
  EXPECT_LE(made.load(), 3);
}

TEST(Parallel, AdaptiveWorkspaceRunBitIdenticalToPlain) {
  EarlyStopOptions opts;
  opts.max_items = 4000;
  opts.min_items = 128;
  opts.batch = 128;
  opts.ci_half_width = 0.02;
  const auto ref = adaptive_yield_run(
      opts, 1, [](std::int64_t i) { return item(i, 99, 0.9); });
  struct Scratch {
    Xoshiro256 rng{0};
  };
  for (int threads : {1, 2, 7}) {
    const auto got = adaptive_yield_run_workspace(
        opts, threads, [] { return Scratch{}; },
        [](Scratch& ws, std::int64_t i) {
          stream_rng_into(ws.rng, 99, static_cast<std::uint64_t>(i));
          return uniform01(ws.rng) < 0.9;
        });
    EXPECT_EQ(got.evaluated, ref.evaluated) << "threads " << threads;
    EXPECT_EQ(got.passed, ref.passed) << "threads " << threads;
    EXPECT_DOUBLE_EQ(got.ci95, ref.ci95) << "threads " << threads;
  }
}

TEST(Parallel, WorkspaceSteadyStateIsAllocationFree) {
  // With a preallocating factory, a longer run must allocate no more bytes
  // than a short one: every per-item allocation would show up as a
  // difference. Single-threaded so the counts are exact.
  struct Scratch {
    std::vector<double> buf = std::vector<double>(256);
  };
  auto run = [](std::int64_t n) {
    return parallel_for_workspace(
        n, 1, [] { return Scratch{}; },
        [](Scratch& ws, std::int64_t i) {
          ws.buf[static_cast<std::size_t>(i) % ws.buf.size()] =
              static_cast<double>(i);
        },
        /*chunk=*/1, /*count_allocs=*/true);
  };
  const RunStats small = run(64);
  const RunStats big = run(4096);
  ASSERT_GE(small.alloc_bytes, 0);
  ASSERT_GE(big.alloc_bytes, 0);
  EXPECT_EQ(big.alloc_bytes, small.alloc_bytes);
  EXPECT_EQ(big.alloc_count, small.alloc_count);
}

TEST(Parallel, AllocCountersAreMinusOneWhenNotRequested) {
  const RunStats s =
      parallel_for_indexed(16, 2, [](int, std::int64_t) {});
  EXPECT_EQ(s.alloc_bytes, -1);
  EXPECT_EQ(s.alloc_count, -1);
}

TEST(Parallel, RejectsBadArguments) {
  EarlyStopOptions bad;
  bad.max_items = 0;
  EXPECT_THROW(adaptive_yield_run(bad, 1, [](std::int64_t) { return true; }),
               std::invalid_argument);
  bad = EarlyStopOptions{};
  bad.batch = 0;
  EXPECT_THROW(adaptive_yield_run(bad, 1, [](std::int64_t) { return true; }),
               std::invalid_argument);
  bad = EarlyStopOptions{};
  bad.ci_half_width = -0.1;
  EXPECT_THROW(adaptive_yield_run(bad, 1, [](std::int64_t) { return true; }),
               std::invalid_argument);
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each(0, 10, [](std::int64_t) {}, /*chunk=*/0),
               std::invalid_argument);
}

TEST(Parallel, BlockLoopCoversEveryIndexOnceWithShortTail) {
  // 23 items in blocks of 4: five full blocks + a 3-item tail. Every
  // index must be visited exactly once and per_thread_items must count
  // items, not blocks.
  for (int threads : {1, 2, 7}) {
    constexpr std::int64_t kN = 23;
    std::vector<std::atomic<int>> hits(kN);
    std::atomic<std::int64_t> tail_blocks{0};
    const RunStats s = parallel_for_blocks_indexed(
        kN, threads, /*block=*/4,
        [&](int /*worker*/, std::int64_t lo, std::int64_t hi) {
          if (hi - lo < 4) tail_blocks.fetch_add(1);
          for (std::int64_t i = lo; i < hi; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
          }
        });
    for (std::int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "threads " << threads << " index " << i;
    }
    EXPECT_EQ(tail_blocks.load(), 1);
    EXPECT_EQ(s.evaluated, kN);
    std::int64_t total = 0;
    for (auto c : s.per_thread_items) total += c;
    EXPECT_EQ(total, kN) << "threads " << threads;
  }
}

TEST(Parallel, BlockLoopClampsThreadsToBlocks) {
  // 5 items in blocks of 4 = 2 blocks; 7 requested threads must clamp so
  // no worker idles in the stats.
  const RunStats s = parallel_for_blocks_indexed(
      5, 7, /*block=*/4, [](int, std::int64_t, std::int64_t) {});
  EXPECT_LE(s.threads, 2);
  EXPECT_EQ(s.evaluated, 5);
}

TEST(Parallel, AdaptiveBlockRunMatchesPerItemRun) {
  // The block-batched adaptive engine must stop at the same wave and
  // produce the same estimate as the per-item engine, for any thread
  // count and any block size (waves are cut at the same batch
  // boundaries; a block never straddles one).
  EarlyStopOptions opts;
  opts.max_items = 4000;
  opts.min_items = 128;
  opts.batch = 100;  // not a multiple of the block sizes below
  opts.ci_half_width = 0.02;
  const auto ref = adaptive_yield_run_indexed(
      opts, 1, [](int, std::int64_t i) { return item(i, 99, 0.9); });
  for (int threads : {1, 2, 7}) {
    for (std::int64_t block : {1, 2, 4}) {
      const auto got = adaptive_yield_run_blocks_indexed(
          opts, threads, block,
          [](int, std::int64_t lo, std::int64_t hi) {
            std::int64_t passed = 0;
            for (std::int64_t i = lo; i < hi; ++i) {
              passed += item(i, 99, 0.9) ? 1 : 0;
            }
            return passed;
          });
      EXPECT_EQ(got.evaluated, ref.evaluated)
          << "threads " << threads << " block " << block;
      EXPECT_EQ(got.passed, ref.passed);
      EXPECT_DOUBLE_EQ(got.yield, ref.yield);
      EXPECT_DOUBLE_EQ(got.ci95, ref.ci95);
      EXPECT_EQ(got.stats.early_stopped, ref.stats.early_stopped);
      EXPECT_EQ(got.stats.skipped, ref.stats.skipped);
    }
  }
}

TEST(Parallel, AdaptiveBlockRunNeverStraddlesWaveBoundaries) {
  EarlyStopOptions opts;
  opts.max_items = 512;
  opts.min_items = 128;
  opts.batch = 128;
  opts.ci_half_width = 0.0;  // run to the cap
  std::atomic<bool> straddled{false};
  adaptive_yield_run_blocks_indexed(
      opts, 2, /*block=*/3, [&](int, std::int64_t lo, std::int64_t hi) {
        // With batch = 128 every block must live inside one 128-wave.
        if (lo / 128 != (hi - 1) / 128) straddled = true;
        return hi - lo;
      });
  EXPECT_FALSE(straddled.load());
}

TEST(Parallel, BlockVariantsRejectBadArguments) {
  EXPECT_THROW(parallel_for_blocks_indexed(
                   10, 1, /*block=*/0, [](int, std::int64_t, std::int64_t) {}),
               std::invalid_argument);
  EarlyStopOptions opts;
  EXPECT_THROW(
      adaptive_yield_run_blocks_indexed(
          opts, 1, /*block=*/0,
          [](int, std::int64_t, std::int64_t) { return std::int64_t{0}; }),
      std::invalid_argument);
}

}  // namespace
}  // namespace csdac::mathx
