#include "mathx/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "mathx/rng.hpp"
#if defined(__SSE2__)
#include "mathx/simd_sse2.hpp"
#endif

namespace csdac::mathx {
namespace {

// Restores the dispatch choice a test forced.
struct BackendGuard {
  SimdBackend saved = simd_backend();
  ~BackendGuard() { simd_force_backend(saved); }
};

TEST(Simd, BackendNamesAndLaneWidths) {
  EXPECT_STREQ(simd_backend_name(SimdBackend::kScalar), "scalar");
  EXPECT_STREQ(simd_backend_name(SimdBackend::kSse2), "sse2");
  EXPECT_STREQ(simd_backend_name(SimdBackend::kAvx2), "avx2");
  EXPECT_EQ(simd_lane_width(SimdBackend::kScalar), 1);
  EXPECT_EQ(simd_lane_width(SimdBackend::kSse2), 2);
  EXPECT_EQ(simd_lane_width(SimdBackend::kAvx2), 4);
}

TEST(Simd, DetectIsStableAndBackendNeverExceedsIt) {
  EXPECT_EQ(simd_detect(), simd_detect());
  EXPECT_LE(simd_backend(), simd_detect());
#if defined(__x86_64__)
  // SSE2 is part of the x86-64 baseline.
  EXPECT_GE(simd_detect(), SimdBackend::kSse2);
#endif
}

TEST(Simd, ForceBackendOverridesAndClamps) {
  BackendGuard guard;
  EXPECT_EQ(simd_force_backend(SimdBackend::kScalar), SimdBackend::kScalar);
  EXPECT_EQ(simd_backend(), SimdBackend::kScalar);
  // Forcing wider than the CPU supports clamps to the detected backend.
  EXPECT_EQ(simd_force_backend(SimdBackend::kAvx2), simd_detect());
  EXPECT_EQ(simd_backend(), simd_detect());
}

TEST(Simd, ScalarOpsXoshiroMatchesStreamRng) {
  // The width-1 instantiation of the lane-parallel generator must
  // reproduce stream_rng exactly — same SplitMix64 expansion, same
  // xoshiro256++ step.
  for (std::uint64_t seed : {0ull, 42ull, ~0ull}) {
    for (std::uint64_t index : {0ull, 1ull, 999ull}) {
      Xoshiro256 ref = stream_rng(seed, index);
      Xoshiro256xN<ScalarOps> lanes;
      lanes.seed_streams(seed, index);
      for (int i = 0; i < 256; ++i) EXPECT_EQ(lanes.next(), ref());
    }
  }
}

TEST(Simd, ScalarOpsStrideSeedsTheRightStreams) {
  Xoshiro256xN<ScalarOps> lanes;
  lanes.seed_streams(7, 10, 2);  // lane 0 of a stride-2 seeding = stream 10
  Xoshiro256 ref = stream_rng(7, 10);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(lanes.next(), ref());
}

TEST(Simd, ScalarOpsMaskedNextFreezesInactiveLane) {
  Xoshiro256xN<ScalarOps> a, b;
  a.seed_streams(3, 0);
  b.seed_streams(3, 0);
  // Two inactive steps must not advance the state.
  b.next(false);
  b.next(false);
  EXPECT_EQ(a.next(), b.next(true));
}

TEST(Simd, ScalarOpsUniform01MatchesScalar) {
  Xoshiro256 ref = stream_rng(5, 3);
  Xoshiro256xN<ScalarOps> lanes;
  lanes.seed_streams(5, 3);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(uniform01_from_bits<ScalarOps>(lanes.next()), uniform01(ref));
  }
}

TEST(Simd, ScalarOpsNormalMatchesScalarSequence) {
  // Bit-identity of the full masked-rejection polar draw at width 1.
  for (std::uint64_t seed : {1ull, 99ull}) {
    Xoshiro256 ref = stream_rng(seed, 0);
    Xoshiro256xN<ScalarOps> lanes;
    lanes.seed_streams(seed, 0);
    for (int i = 0; i < 500; ++i) EXPECT_EQ(normal_xN(lanes), normal(ref));
  }
}

#if defined(__SSE2__)

TEST(Simd, Sse2U64ToF64IsExactBelow2Pow53) {
  const std::uint64_t cases[2] = {0, 1};
  const std::uint64_t cases2[2] = {(1ull << 53) - 1, 0x001f3456789abcdeull};
  const std::uint64_t cases3[2] = {1ull << 32, (1ull << 32) - 1};
  for (const auto* c : {cases, cases2, cases3}) {
    double out[2];
    Sse2Ops::fstoreu(out, Sse2Ops::u64_to_f64_53(Sse2Ops::uloadu(c)));
    EXPECT_EQ(out[0], static_cast<double>(c[0]));
    EXPECT_EQ(out[1], static_cast<double>(c[1]));
  }
  // Random 53-bit patterns, exactly like the uniform01 path produces.
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t raw[2] = {rng() >> 11, rng() >> 11};
    double out[2];
    Sse2Ops::fstoreu(out, Sse2Ops::u64_to_f64_53(Sse2Ops::uloadu(raw)));
    EXPECT_EQ(out[0], static_cast<double>(raw[0]));
    EXPECT_EQ(out[1], static_cast<double>(raw[1]));
  }
}

TEST(Simd, Sse2XoshiroLanesMatchScalarStreams) {
  constexpr std::uint64_t kSeed = 2024;
  Xoshiro256 ref0 = stream_rng(kSeed, 10);
  Xoshiro256 ref1 = stream_rng(kSeed, 11);
  Xoshiro256xN<Sse2Ops> lanes;
  lanes.seed_streams(kSeed, 10);
  for (int i = 0; i < 256; ++i) {
    std::uint64_t out[2];
    Sse2Ops::ustoreu(out, lanes.next());
    EXPECT_EQ(out[0], ref0());
    EXPECT_EQ(out[1], ref1());
  }
}

TEST(Simd, Sse2NormalLanesMatchScalarSequences) {
  // Each lane's rejection loop must consume draws exactly when the scalar
  // chip for that stream does — the masked state advance is the mechanism.
  constexpr std::uint64_t kSeed = 7;
  Xoshiro256 ref0 = stream_rng(kSeed, 0);
  Xoshiro256 ref1 = stream_rng(kSeed, 1);
  Xoshiro256xN<Sse2Ops> lanes;
  lanes.seed_streams(kSeed, 0);
  for (int i = 0; i < 2000; ++i) {
    double out[2];
    Sse2Ops::fstoreu(out, normal_xN(lanes));
    EXPECT_EQ(out[0], normal(ref0)) << "draw " << i;
    EXPECT_EQ(out[1], normal(ref1)) << "draw " << i;
  }
}

#endif  // __SSE2__

}  // namespace
}  // namespace csdac::mathx
