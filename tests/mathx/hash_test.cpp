// Tests for the mathx hashing and canonical byte-serialization layer the
// runtime cache keys are built on.
#include "mathx/hash.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

namespace csdac::mathx {
namespace {

// Published FNV-1a 64-bit test vectors.
TEST(Fnv1a64, KnownVectors) {
  EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64, SensitiveToEveryByte) {
  const char x[] = {0x00, 0x01, 0x02, 0x03};
  const std::uint64_t base = fnv1a64(x, sizeof(x));
  for (std::size_t i = 0; i < sizeof(x); ++i) {
    char y[sizeof(x)];
    std::memcpy(y, x, sizeof(x));
    y[i] ^= 0x40;
    EXPECT_NE(fnv1a64(y, sizeof(y)), base) << "byte " << i;
  }
}

TEST(HashKey128, HexIsStableAndOrdered) {
  HashKey128 k{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(k.hex(), "0123456789abcdeffedcba9876543210");
  HashKey128 k2 = k;
  EXPECT_EQ(k, k2);
  k2.lo ^= 1;
  EXPECT_NE(k, k2);
  EXPECT_TRUE(k < k2 || k2 < k);
}

TEST(Hash128, DistinctInputsDistinctKeys) {
  const std::string s1 = "runtime-job-a";
  const std::string s2 = "runtime-job-b";
  const HashKey128 k1 = hash128(s1.data(), s1.size());
  const HashKey128 k2 = hash128(s2.data(), s2.size());
  EXPECT_NE(k1, k2);
  // The second lane is seeded and finalized differently, so the two
  // halves of one key must not coincide either.
  EXPECT_NE(k1.hi, k1.lo);
}

TEST(ByteWriter, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(7);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.14159);
  w.boolean(true);
  w.str("hello");
  w.f64_vec({1.0, -2.5, 1e-300});

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  const std::vector<double> v = r.f64_vec();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], -2.5);
  EXPECT_EQ(v[2], 1e-300);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
}

TEST(ByteWriter, DoublesRoundTripBitExactly) {
  // The cache guarantees bit-identical results, so the codec must be a
  // bit-pattern copy: negative zero and subnormals survive.
  ByteWriter w;
  w.f64(-0.0);
  w.f64(5e-324);  // smallest subnormal
  ByteReader r(w.data());
  EXPECT_TRUE(std::signbit(r.f64()));
  EXPECT_EQ(r.f64(), 5e-324);
  EXPECT_TRUE(r.ok());
}

TEST(ByteReader, TruncationLatchesNotOk) {
  ByteWriter w;
  w.u64(1);
  w.str("payload");
  std::vector<unsigned char> bytes = w.data();
  bytes.resize(bytes.size() - 3);  // cut into the string
  ByteReader r(bytes);
  (void)r.u64();
  EXPECT_TRUE(r.ok());
  (void)r.str();
  EXPECT_FALSE(r.ok());
  // Once latched, every further read stays failed and returns zeroes.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(ByteReader, BogusVectorLengthRejectedBeforeAllocating) {
  ByteWriter w;
  w.u32(0xffffffffu);  // claims an absurd element count, no payload
  ByteReader r(w.data());
  const std::vector<double> v = r.f64_vec();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, DoneRequiresFullConsumption) {
  ByteWriter w;
  w.u32(5);
  w.u32(6);
  ByteReader r(w.data());
  (void)r.u32();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.done());  // trailing bytes = schema drift, reject
  (void)r.u32();
  EXPECT_TRUE(r.done());
}

TEST(ByteWriter, HashMatchesHash128OfBytes) {
  ByteWriter w;
  w.str("csdac-engine/1");
  w.u8(1);
  w.f64(0.0026);
  const HashKey128 direct = hash128(w.data().data(), w.data().size());
  EXPECT_EQ(w.hash(), direct);
}

TEST(ByteWriter, DistinctFieldOrderDistinctHash) {
  ByteWriter a, b;
  a.u32(1);
  a.u32(2);
  b.u32(2);
  b.u32(1);
  EXPECT_NE(a.hash(), b.hash());
}

}  // namespace
}  // namespace csdac::mathx
