// Waveform-level dynamic simulator: settling behaviour, glitch-energy
// mechanics, and the golden architecture trend (b): at equal total unit
// count the searched weighting shows measurably less timing-mismatch
// distortion than plain binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "arch/dyn_sim.hpp"
#include "arch/ete.hpp"
#include "arch/weighting.hpp"
#include "mathx/rng.hpp"

namespace csdac::arch {
namespace {

std::vector<int> sine_codes(int nbits, int n, int cycles) {
  const int fs = (1 << nbits) - 1;
  const double mid = 0.5 * fs;
  const double amp = mid - 1.0;
  std::vector<int> codes(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double phase = 2.0 * M_PI * cycles * k / n;
    long v = std::lround(mid + amp * std::sin(phase));
    codes[static_cast<std::size_t>(k)] =
        static_cast<int>(std::clamp(v, 0L, static_cast<long>(fs)));
  }
  return codes;
}

TimingParams base_params() {
  TimingParams p;
  p.fs = 300e6;
  p.oversample = 16;
  p.tau = 0.25e-9;
  return p;
}

TEST(TimingParams, ValidateRejectsBadValues) {
  EXPECT_NO_THROW(base_params().validate());
  TimingParams p = base_params();
  p.fs = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = base_params();
  p.fs = std::numeric_limits<double>::infinity();
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = base_params();
  p.oversample = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = base_params();
  p.tau = -1e-9;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = base_params();
  p.sigma_t = -1e-12;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = base_params();
  p.sigma_t = std::nan("");
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = base_params();
  p.asym_sigma = 1.0;  // >= 1/fs
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(EdgeTime, NominalAsymmetryAndClamp) {
  const double ts = 1.0 / 300e6;
  CellTiming t = ideal_cell_timing(2);
  EXPECT_DOUBLE_EQ(edge_time(t, 0, true, ts), kNominalEdgeFrac * ts);
  EXPECT_DOUBLE_EQ(edge_time(t, 0, false, ts), kNominalEdgeFrac * ts);
  t.asym[0] = 10e-12;
  // ON fires asym/2 late, OFF asym/2 early.
  EXPECT_DOUBLE_EQ(edge_time(t, 0, true, ts),
                   kNominalEdgeFrac * ts + 5e-12);
  EXPECT_DOUBLE_EQ(edge_time(t, 0, false, ts),
                   kNominalEdgeFrac * ts - 5e-12);
  t.dt[1] = ts;  // far past the clamp
  EXPECT_DOUBLE_EQ(edge_time(t, 1, true, ts), 0.45 * ts);
  t.dt[1] = -ts;
  EXPECT_DOUBLE_EQ(edge_time(t, 1, false, ts), 0.0);
}

TEST(ArchSimulator, ConstantCodeStaysSettled) {
  const CellArray arr(make_weighting(WeightingKind::kBinary, 8));
  const ArchSimulator sim(arr, base_params(), 1e-3);
  const std::vector<int> codes(32, 100);
  const auto wave = sim.waveform(codes, ideal_cell_timing(arr.cells()));
  ASSERT_EQ(wave.size(), codes.size() * 16u);
  for (double v : wave) EXPECT_DOUBLE_EQ(v, 100 * 1e-3);
}

TEST(ArchSimulator, StepSettlesWithinPeriod) {
  const CellArray arr(make_weighting(WeightingKind::kBinary, 8));
  TimingParams p = base_params();
  const ArchSimulator sim(arr, p, 1e-3);
  const std::vector<int> codes = {0, 255, 255, 255};
  const auto wave = sim.waveform(codes, ideal_cell_timing(arr.cells()));
  // tau = 0.25 ns against a 3.33 ns period: by the end of the step period
  // the output is settled to well under an LSB.  (Period 0 carries the
  // periodic wrap transition 255 -> 0, so the rising step is period 1.)
  const double target = 255 * 1e-3;
  EXPECT_NEAR(wave[2 * 16 - 1], target, 1e-4);
  EXPECT_NEAR(wave[1 * 16 - 1], 0.0, 1e-4);
  EXPECT_NEAR(wave.back(), target, 1e-6);
  // Mid-transition samples lie strictly between the rails.
  const double early = wave[1 * 16 + 2];
  EXPECT_GT(early, 0.0);
  EXPECT_LT(early, target);
}

TEST(ArchSimulator, GlitchEnergyZeroOnlyForIdealTiming) {
  const CellArray arr(make_weighting(WeightingKind::kBinary, 8));
  const ArchSimulator sim(arr, base_params(), 1e-3);
  const auto ideal = ideal_cell_timing(arr.cells());
  EXPECT_DOUBLE_EQ(sim.glitch_energy(ideal, 127, 128), 0.0);

  // A rise/fall asymmetry on the MSB cell makes the 127 -> 128 major-carry
  // transition glitch; more asymmetry, more energy.
  CellTiming small = ideal;
  small.asym[0] = 20e-12;
  CellTiming big = ideal;
  big.asym[0] = 80e-12;
  const double e_small = sim.glitch_energy(small, 127, 128);
  const double e_big = sim.glitch_energy(big, 127, 128);
  EXPECT_GT(e_small, 0.0);
  EXPECT_GT(e_big, 2.0 * e_small);

  // The same asymmetry does nothing on a transition that cell sits out.
  EXPECT_DOUBLE_EQ(sim.glitch_energy(big, 10, 11), 0.0);
}

TEST(ArchSimulator, SpectrumOfIdealTimingHitsQuantizationFloor) {
  const int nbits = 10;
  const CellArray arr(make_weighting(WeightingKind::kSegmented, nbits));
  const ArchSimulator sim(arr, base_params(), 1e-3);
  const auto codes = sine_codes(nbits, 256, 21);
  const auto r = sim.spectrum(codes, ideal_cell_timing(arr.cells()), 21);
  // No timing mismatch: in-band SNDR sits near the 10-bit quantization
  // floor (~62 dB), and SFDR is well clear of any mismatch spur level.
  EXPECT_GT(r.sndr_db, 55.0);
  EXPECT_GT(r.sfdr_db, 60.0);
}

// Golden trend (b): equal total unit count (equal area), per-cell timing
// skew. The searched weighting lowers the w^2-weighted switching activity
// and that shows up as measurably better in-band SFDR/SNDR than plain
// binary on the same sort of timing draws.
TEST(ArchGolden, OptimizedBeatsBinaryAtEqualUnitCount) {
  const int nbits = 10;
  const int n = 256;
  const int cycles = 21;
  const auto codes = sine_codes(nbits, n, cycles);
  TimingParams p = base_params();
  p.sigma_t = 60e-12;
  const double v_lsb = 1e-3;

  const CellArray bin(make_weighting(WeightingKind::kBinary, nbits));
  const CellArray seg(make_weighting(WeightingKind::kSegmented, nbits));
  OptimizeOptions oo;
  oo.cells = seg.cells();
  const CellArray opt(optimize_weighting(nbits, oo));

  const auto mean_sfdr = [&](const CellArray& arr) {
    const ArchSimulator sim(arr, p, v_lsb);
    double acc = 0.0;
    const int chips = 4;
    for (int chip = 0; chip < chips; ++chip) {
      auto rng = mathx::stream_rng(909, static_cast<std::uint64_t>(chip));
      const auto timing = draw_cell_timing(arr.cells(), p, rng);
      acc += sim.spectrum(codes, timing, cycles).sfdr_db;
    }
    return acc / chips;
  };

  const double sfdr_bin = mean_sfdr(bin);
  const double sfdr_seg = mean_sfdr(seg);
  const double sfdr_opt = mean_sfdr(opt);
  // Segmentation already buys margin over binary; the searched weighting
  // must hold that margin. Require a clear (>3 dB) gap over binary.
  EXPECT_GT(sfdr_seg, sfdr_bin + 3.0);
  EXPECT_GT(sfdr_opt, sfdr_bin + 3.0);

  // The closed-form ordering agrees: less activity, more SNDR.
  const double e_bin = ete_expected_sndr_db(bin, codes, p);
  const double e_opt = ete_expected_sndr_db(opt, codes, p);
  EXPECT_GT(e_opt, e_bin + 3.0);
}

}  // namespace
}  // namespace csdac::arch
