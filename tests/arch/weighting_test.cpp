// Weighting-scheme algebra: completeness predicate, exact greedy encoding
// over every code for all four schemes, the forced-binary corollary at the
// minimal cell budget, and the golden activity ordering (optimized <=
// segmented < binary toggle-weighted activity at matched budgets).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "arch/weighting.hpp"

namespace csdac::arch {
namespace {

std::vector<int> sine_codes(int nbits, int n, int cycles) {
  const int fs = (1 << nbits) - 1;
  const double mid = 0.5 * fs;
  const double amp = mid - 1.0;
  std::vector<int> codes(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double phase = 2.0 * 3.14159265358979323846 * cycles * k / n;
    long v = std::lround(mid + amp * std::sin(phase));
    v = std::max(0L, std::min(static_cast<long>(fs), v));
    codes[static_cast<std::size_t>(k)] = static_cast<int>(v);
  }
  return codes;
}

int weight_sum(const std::vector<int>& w) {
  return std::accumulate(w.begin(), w.end(), 0);
}

TEST(Weighting, NamesRoundTrip) {
  for (const auto kind :
       {WeightingKind::kBinary, WeightingKind::kUnary,
        WeightingKind::kSegmented, WeightingKind::kOptimized}) {
    WeightingKind parsed{};
    ASSERT_TRUE(parse_weighting_kind(weighting_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  WeightingKind parsed{};
  EXPECT_FALSE(parse_weighting_kind("thermometer", parsed));
  EXPECT_FALSE(parse_weighting_kind("", parsed));
}

TEST(Weighting, CompletenessPredicate) {
  EXPECT_TRUE(is_complete_sequence({1}));
  EXPECT_TRUE(is_complete_sequence({1, 1, 1}));
  EXPECT_TRUE(is_complete_sequence({8, 4, 2, 1}));  // order irrelevant
  EXPECT_TRUE(is_complete_sequence({1, 2, 2, 2}));
  EXPECT_FALSE(is_complete_sequence({}));
  EXPECT_FALSE(is_complete_sequence({2}));        // no unit cell
  EXPECT_FALSE(is_complete_sequence({1, 3}));     // 2 not representable
  EXPECT_FALSE(is_complete_sequence({1, 2, 8}));  // gap between 3 and 8
}

TEST(Weighting, MakeWeightingShapes) {
  const auto bin = make_weighting(WeightingKind::kBinary, 6);
  EXPECT_EQ(bin.weights, (std::vector<int>{32, 16, 8, 4, 2, 1}));

  const auto una = make_weighting(WeightingKind::kUnary, 4);
  EXPECT_EQ(una.weights.size(), 15u);
  EXPECT_TRUE(std::all_of(una.weights.begin(), una.weights.end(),
                          [](int w) { return w == 1; }));

  const auto seg = make_weighting(WeightingKind::kSegmented, 8, 3);
  // (2^5 - 1) thermometer cells of weight 8 plus binary tail 4,2,1.
  EXPECT_EQ(seg.weights.size(), 31u + 3u);
  EXPECT_EQ(seg.weights.front(), 8);
  EXPECT_EQ(seg.weights.back(), 1);
  EXPECT_EQ(weight_sum(seg.weights), 255);
  EXPECT_TRUE(is_complete_sequence(seg.weights));

  // Default split mirrors core::DacSpec's nbits/3 convention.
  const auto seg_def = make_weighting(WeightingKind::kSegmented, 9);
  EXPECT_EQ(seg_def.param, 3);

  EXPECT_THROW(make_weighting(WeightingKind::kBinary, 1),
               std::invalid_argument);
  EXPECT_THROW(make_weighting(WeightingKind::kBinary, 17),
               std::invalid_argument);
  EXPECT_THROW(make_weighting(WeightingKind::kBinary, 8, 2),
               std::invalid_argument);
  EXPECT_THROW(make_weighting(WeightingKind::kSegmented, 8, 8),
               std::invalid_argument);
}

TEST(Weighting, EncodeExactForAllCodesAllSchemes) {
  const int nbits = 8;
  for (const auto kind :
       {WeightingKind::kBinary, WeightingKind::kUnary,
        WeightingKind::kSegmented, WeightingKind::kOptimized}) {
    const CellArray arr(make_weighting(kind, nbits));
    ASSERT_EQ(arr.full_scale(), 255) << weighting_name(kind);
    std::vector<std::uint8_t> on;
    for (int code = 0; code <= arr.full_scale(); ++code) {
      arr.encode(code, on);
      long sum = 0;
      for (int c = 0; c < arr.cells(); ++c)
        if (on[static_cast<std::size_t>(c)]) sum += arr.weights()[c];
      ASSERT_EQ(sum, code) << weighting_name(kind) << " code " << code;
    }
    EXPECT_THROW(arr.encode(-1, on), std::out_of_range);
    EXPECT_THROW(arr.encode(arr.full_scale() + 1, on), std::out_of_range);
  }
}

TEST(Weighting, UnaryBankIsThermometer) {
  // Equal-weight cells must turn on in index order: code k lights cells
  // [0, k) exactly, so a mid-code transition toggles only one cell.
  const CellArray arr(make_weighting(WeightingKind::kUnary, 4));
  for (int code = 0; code <= arr.full_scale(); ++code) {
    const auto on = arr.encode(code);
    for (int c = 0; c < arr.cells(); ++c)
      EXPECT_EQ(on[static_cast<std::size_t>(c)] != 0, c < code)
          << "code " << code << " cell " << c;
  }
}

TEST(Weighting, CompleteAtMinimalBudgetIsForcedBinary) {
  // A complete sequence of exactly n cells summing to 2^n - 1 must be the
  // binary sequence, so the optimizer at cells == nbits cannot move.
  OptimizeOptions opts;
  opts.cells = 6;
  const auto w = optimize_weighting(6, opts);
  EXPECT_EQ(w.weights, (std::vector<int>{32, 16, 8, 4, 2, 1}));
}

TEST(Weighting, OptimizeIsDeterministicAndComplete) {
  OptimizeOptions opts;
  opts.cells = 20;
  const auto a = optimize_weighting(8, opts);
  const auto b = optimize_weighting(8, opts);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(static_cast<int>(a.weights.size()), 20);
  EXPECT_EQ(weight_sum(a.weights), 255);
  EXPECT_TRUE(is_complete_sequence(a.weights));
  EXPECT_TRUE(std::is_sorted(a.weights.begin(), a.weights.end(),
                             std::greater<int>()));

  EXPECT_THROW(optimize_weighting(8, OptimizeOptions{.cells = 7}),
               std::invalid_argument);
  EXPECT_THROW(optimize_weighting(8, OptimizeOptions{.cells = 256}),
               std::invalid_argument);
}

TEST(Weighting, SwitchingCountsMatchHandCount) {
  const CellArray arr(make_weighting(WeightingKind::kBinary, 3));
  // Codes 3 -> 4 is the full major-carry transition: every cell toggles.
  const auto counts = switching_counts(arr, {3, 4, 3});
  EXPECT_EQ(counts, (std::vector<std::int64_t>{2, 2, 2}));
  // Activity = sum w^2 N = (16 + 4 + 1) * 2.
  EXPECT_DOUBLE_EQ(switching_activity(arr, {3, 4, 3}), 42.0);
}

// Golden trend: at matched budgets the searched weighting concentrates
// toggling on low-weight cells, so the w^2-weighted activity ordering is
// optimized <= segmented < binary over the reference sine.
TEST(WeightingGolden, ActivityOrderingOptimizedSegmentedBinary) {
  const int nbits = 10;
  const auto codes = sine_codes(nbits, 256, 21);

  const CellArray bin(make_weighting(WeightingKind::kBinary, nbits));
  const CellArray seg(make_weighting(WeightingKind::kSegmented, nbits));
  // Optimizer gets exactly the segmented scheme's cell budget.
  OptimizeOptions oo;
  oo.cells = seg.cells();
  const CellArray opt(optimize_weighting(nbits, oo));
  ASSERT_EQ(opt.cells(), seg.cells());

  const double a_bin = switching_activity(bin, codes);
  const double a_seg = switching_activity(seg, codes);
  const double a_opt = switching_activity(opt, codes);
  EXPECT_LT(a_seg, a_bin);
  EXPECT_LE(a_opt, a_seg);
  // The search should beat plain binary by a wide margin, not epsilon.
  EXPECT_LT(a_opt, 0.5 * a_bin);
}

}  // namespace
}  // namespace csdac::arch
