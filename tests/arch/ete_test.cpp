// Equivalent-timing-error predictor vs the waveform-level simulator.
// Golden trend (a): at two operating points where timing error dominates
// the quantization floor, the ETE per-chip SFDR prediction tracks the
// waveform Monte-Carlo within a few dB (same timing draws on both sides),
// and the closed-form ensemble SNDR matches the measured mean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/dyn_sim.hpp"
#include "arch/ete.hpp"
#include "arch/weighting.hpp"
#include "mathx/rng.hpp"

namespace csdac::arch {
namespace {

std::vector<int> sine_codes(int nbits, int n, int cycles) {
  const int fs = (1 << nbits) - 1;
  const double mid = 0.5 * fs;
  const double amp = mid - 1.0;
  std::vector<int> codes(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const double phase = 2.0 * M_PI * cycles * k / n;
    long v = std::lround(mid + amp * std::sin(phase));
    codes[static_cast<std::size_t>(k)] =
        static_cast<int>(std::clamp(v, 0L, static_cast<long>(fs)));
  }
  return codes;
}

TimingParams base_params() {
  TimingParams p;
  p.fs = 300e6;
  p.oversample = 16;
  p.tau = 0.25e-9;
  return p;
}

TEST(Ete, IdealTimingHasNoTimingNoise) {
  const CellArray arr(make_weighting(WeightingKind::kSegmented, 10));
  const auto codes = sine_codes(10, 256, 21);
  // Closed form: no skew and no asymmetry means no timing noise at all.
  EXPECT_EQ(ete_expected_sndr_db(arr, codes, base_params()), 300.0);

  // Per-realization record with ideal timing carries only the common
  // nominal delay, a pure LTI term: its SNDR must sit at the quantization
  // floor (~6.02 n + 1.76 = 62 dB at 10 bits), not below it.
  const auto pred = ete_predict(arr, ideal_cell_timing(arr.cells()), 1e-3,
                                300e6, codes, 21);
  EXPECT_EQ(pred.record.size(), codes.size());
  EXPECT_GT(pred.sndr_db, 55.0);
}

TEST(Ete, RecordScalesLinearlyWithVlsb) {
  const CellArray arr(make_weighting(WeightingKind::kBinary, 8));
  const auto codes = sine_codes(8, 128, 7);
  TimingParams p = base_params();
  p.sigma_t = 40e-12;
  auto rng = mathx::stream_rng(11, 0);
  const auto timing = draw_cell_timing(arr.cells(), p, rng);
  const auto a = ete_predict(arr, timing, 1e-3, p.fs, codes, 7);
  const auto b = ete_predict(arr, timing, 2e-3, p.fs, codes, 7);
  for (std::size_t k = 0; k < a.record.size(); ++k) {
    EXPECT_NEAR(b.record[k], 2.0 * a.record[k], 1e-12) << k;
  }
  // v_lsb cancels in the dB metrics.
  EXPECT_NEAR(a.sfdr_db, b.sfdr_db, 1e-9);
  EXPECT_NEAR(a.sndr_db, b.sndr_db, 1e-9);
}

// Golden trend (a): ETE prediction vs waveform MC at two operating points
// (sigma_t = 60 ps and 150 ps at 300 MS/s), both deep in the
// timing-limited regime for a 10-bit segmented array.
TEST(EteGolden, PredictionTracksWaveformMcAtTwoOperatingPoints) {
  const int nbits = 10;
  const int n = 256;
  const int cycles = 21;
  const CellArray arr(make_weighting(WeightingKind::kSegmented, nbits));
  const auto codes = sine_codes(nbits, n, cycles);
  const double v_lsb = 1e-3;

  for (const double sigma_t : {60e-12, 150e-12}) {
    TimingParams p = base_params();
    p.sigma_t = sigma_t;
    const ArchSimulator sim(arr, p, v_lsb);

    double mc_sndr_sum = 0.0;
    const int chips = 4;
    for (int chip = 0; chip < chips; ++chip) {
      auto rng = mathx::stream_rng(404, static_cast<std::uint64_t>(chip));
      const auto timing = draw_cell_timing(arr.cells(), p, rng);
      const auto mc = sim.spectrum(codes, timing, cycles);
      const auto pred = ete_predict(arr, timing, v_lsb, p.fs, codes, cycles);
      EXPECT_NEAR(pred.sfdr_db, mc.sfdr_db, 4.0)
          << "sigma_t " << sigma_t << " chip " << chip;
      EXPECT_NEAR(pred.sndr_db, mc.sndr_db, 3.0)
          << "sigma_t " << sigma_t << " chip " << chip;
      mc_sndr_sum += mc.sndr_db;
    }
    // Closed-form ensemble SNDR vs the measured mean.
    const double expected = ete_expected_sndr_db(arr, codes, p);
    EXPECT_NEAR(mc_sndr_sum / chips, expected, 3.0) << "sigma_t " << sigma_t;
  }
}

TEST(EteGolden, ClosedFormSndrDropsWithSigma) {
  const CellArray arr(make_weighting(WeightingKind::kSegmented, 10));
  const auto codes = sine_codes(10, 256, 21);
  TimingParams lo = base_params();
  lo.sigma_t = 20e-12;
  TimingParams hi = base_params();
  hi.sigma_t = 80e-12;
  // Quadrupling sigma_t costs exactly 20 log10(4) ~ 12 dB in closed form.
  EXPECT_NEAR(ete_expected_sndr_db(arr, codes, lo) -
                  ete_expected_sndr_db(arr, codes, hi),
              20.0 * std::log10(4.0), 1e-9);
}

}  // namespace
}  // namespace csdac::arch
