// Runtime and serve integration of the architecture jobs: cache-key
// discipline, codec round trips, thread invariance, the golden cold/warm
// round trip (warm pass synthesizes zero waveforms), and request parsing
// for the new kinds including hostile-field rejection.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <variant>
#include <vector>

#include "arch/instruments.hpp"
#include "arch/weighting.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/hash.hpp"
#include "runtime/graph.hpp"
#include "serve/request.hpp"

namespace csdac::runtime {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* tag) {
    path = fs::path(testing::TempDir()) /
           (std::string("csdac-") + tag + "-" +
            std::to_string(static_cast<unsigned long long>(
                reinterpret_cast<std::uintptr_t>(this))));
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

core::DacSpec spec10() {
  core::DacSpec spec;
  spec.nbits = 10;
  spec.binary_bits = 3;
  return spec;
}

DynSpectrumJob small_dyn_job() {
  DynSpectrumJob j;
  j.spec = spec10();
  j.scheme = arch::WeightingKind::kSegmented;
  j.timing.oversample = 8;
  j.timing.sigma_t = 60e-12;
  j.n_samples = 128;
  j.cycles = 7;
  j.chips = 4;
  j.seed = 5;
  return j;
}

ArchCompareJob small_compare_job() {
  ArchCompareJob j;
  j.spec = spec10();
  j.sigma_unit = 0.01;
  j.timing.oversample = 8;
  j.timing.sigma_t = 60e-12;
  j.n_samples = 128;
  j.cycles = 7;
  j.chips = 60;
  j.dyn_chips = 2;
  j.seed = 5;
  j.seg_lo = 2;
  j.seg_hi = 4;
  return j;
}

TEST(ArchJobKey, KindsNeverCollide) {
  const auto k_dyn = job_key(small_dyn_job());
  const auto k_cmp = job_key(small_compare_job());
  EXPECT_NE(k_dyn, k_cmp);
  InlYieldJob plain;
  plain.spec = spec10();
  EXPECT_NE(job_key(plain), k_dyn);
  EXPECT_NE(job_key(plain), k_cmp);
}

TEST(ArchJobKey, EveryDynFieldChangesTheKey) {
  const auto base = job_key(small_dyn_job());
  DynSpectrumJob j = small_dyn_job();
  j.scheme = arch::WeightingKind::kBinary;
  EXPECT_NE(job_key(j), base) << "scheme";
  j = small_dyn_job();
  j.scheme_param = 4;
  EXPECT_NE(job_key(j), base) << "scheme_param";
  j = small_dyn_job();
  j.timing.fs = 400e6;
  EXPECT_NE(job_key(j), base) << "timing.fs";
  j = small_dyn_job();
  j.timing.oversample = 16;
  EXPECT_NE(job_key(j), base) << "timing.oversample";
  j = small_dyn_job();
  j.timing.tau = 0.3e-9;
  EXPECT_NE(job_key(j), base) << "timing.tau";
  j = small_dyn_job();
  j.timing.sigma_t = 61e-12;
  EXPECT_NE(job_key(j), base) << "timing.sigma_t";
  j = small_dyn_job();
  j.timing.asym_sigma = 5e-12;
  EXPECT_NE(job_key(j), base) << "timing.asym_sigma";
  j = small_dyn_job();
  j.n_samples = 256;
  EXPECT_NE(job_key(j), base) << "n_samples";
  j = small_dyn_job();
  j.cycles = 11;
  EXPECT_NE(job_key(j), base) << "cycles";
  j = small_dyn_job();
  j.sfdr_limit_db = 55.0;
  EXPECT_NE(job_key(j), base) << "sfdr_limit_db";
  j = small_dyn_job();
  j.chips += 1;
  EXPECT_NE(job_key(j), base) << "chips";
  j = small_dyn_job();
  j.seed += 1;
  EXPECT_NE(job_key(j), base) << "seed";
  j = small_dyn_job();
  j.adaptive = true;
  EXPECT_NE(job_key(j), base) << "adaptive";
  j = small_dyn_job();
  j.spec.nbits = 8;
  EXPECT_NE(job_key(j), base) << "spec.nbits";
  EXPECT_EQ(job_key(small_dyn_job()), base);
}

TEST(ArchJobKey, EveryCompareFieldChangesTheKey) {
  const auto base = job_key(small_compare_job());
  ArchCompareJob j = small_compare_job();
  j.sigma_unit = 0.02;
  EXPECT_NE(job_key(j), base) << "sigma_unit";
  j = small_compare_job();
  j.chips += 1;
  EXPECT_NE(job_key(j), base) << "chips";
  j = small_compare_job();
  j.dyn_chips += 1;
  EXPECT_NE(job_key(j), base) << "dyn_chips";
  j = small_compare_job();
  j.limit = 0.6;
  EXPECT_NE(job_key(j), base) << "limit";
  j = small_compare_job();
  j.seg_lo = 3;
  EXPECT_NE(job_key(j), base) << "seg_lo";
  j = small_compare_job();
  j.seg_hi = 5;
  EXPECT_NE(job_key(j), base) << "seg_hi";
  j = small_compare_job();
  j.include_unary = true;
  EXPECT_NE(job_key(j), base) << "include_unary";
  j = small_compare_job();
  j.opt_cells = 20;
  EXPECT_NE(job_key(j), base) << "opt_cells";
  j = small_compare_job();
  j.timing.sigma_t = 10e-12;
  EXPECT_NE(job_key(j), base) << "timing.sigma_t";
  j = small_compare_job();
  j.seed += 1;
  EXPECT_NE(job_key(j), base) << "seed";
  EXPECT_EQ(job_key(small_compare_job()), base);
}

TEST(ArchJobs, KindNamesAreStable) {
  EXPECT_EQ(kind_name(job_kind(Job(small_dyn_job()))), "dyn_spectrum");
  EXPECT_EQ(kind_name(job_kind(Job(small_compare_job()))), "arch_compare");
}

TEST(ArchJobs, ResultCodecRoundTripsAndRejectsTrailing) {
  const JobValue v = execute_job(small_dyn_job(), 1, nullptr);
  mathx::ByteWriter w;
  encode_value(v, w);
  {
    mathx::ByteReader r(w.data());
    JobValue out;
    ASSERT_TRUE(decode_value(JobKind::kDynSpectrum, r, out));
    const auto& a = std::get<DynSpectrumResult>(v);
    const auto& b = std::get<DynSpectrumResult>(out);
    EXPECT_EQ(b.chips, a.chips);
    EXPECT_EQ(b.pass, a.pass);
    EXPECT_EQ(b.yield, a.yield);
    EXPECT_EQ(b.ci95, a.ci95);
    EXPECT_EQ(b.sfdr_mean_db, a.sfdr_mean_db);
    EXPECT_EQ(b.sfdr_min_db, a.sfdr_min_db);
    EXPECT_EQ(b.sndr_mean_db, a.sndr_mean_db);
    EXPECT_EQ(b.ete_sfdr_mean_db, a.ete_sfdr_mean_db);
    EXPECT_EQ(b.cells, a.cells);
  }
  {
    auto bytes = w.data();
    bytes.push_back(0);
    mathx::ByteReader r(bytes);
    JobValue out;
    EXPECT_FALSE(decode_value(JobKind::kDynSpectrum, r, out))
        << "trailing byte must fail strict decode";
  }

  const JobValue cv = execute_job(small_compare_job(), 2, nullptr);
  mathx::ByteWriter cw;
  encode_value(cv, cw);
  mathx::ByteReader cr(cw.data());
  JobValue cout_v;
  ASSERT_TRUE(decode_value(JobKind::kArchCompare, cr, cout_v));
  const auto& ca = std::get<ArchCompareResult>(cv);
  const auto& cb = std::get<ArchCompareResult>(cout_v);
  ASSERT_EQ(cb.points.size(), ca.points.size());
  for (std::size_t i = 0; i < ca.points.size(); ++i) {
    EXPECT_EQ(cb.points[i].scheme, ca.points[i].scheme);
    EXPECT_EQ(cb.points[i].param, ca.points[i].param);
    EXPECT_EQ(cb.points[i].cells, ca.points[i].cells);
    EXPECT_EQ(cb.points[i].inl_yield, ca.points[i].inl_yield);
    EXPECT_EQ(cb.points[i].sfdr_db, ca.points[i].sfdr_db);
    EXPECT_EQ(cb.points[i].ete_sfdr_db, ca.points[i].ete_sfdr_db);
    EXPECT_EQ(cb.points[i].activity, ca.points[i].activity);
  }
}

TEST(ArchJobs, DynSpectrumThreadInvariantAndSane) {
  const auto v1 = execute_job(small_dyn_job(), 1, nullptr);
  const auto v4 = execute_job(small_dyn_job(), 4, nullptr);
  const auto& a = std::get<DynSpectrumResult>(v1);
  const auto& b = std::get<DynSpectrumResult>(v4);
  EXPECT_EQ(a.chips, b.chips);
  EXPECT_EQ(a.pass, b.pass);
  EXPECT_EQ(a.yield, b.yield);
  EXPECT_EQ(a.sfdr_mean_db, b.sfdr_mean_db);
  EXPECT_EQ(a.sfdr_min_db, b.sfdr_min_db);
  EXPECT_EQ(a.sndr_mean_db, b.sndr_mean_db);
  EXPECT_EQ(a.ete_sfdr_mean_db, b.ete_sfdr_mean_db);

  EXPECT_EQ(a.chips, 4);
  EXPECT_GE(a.yield, 0.0);
  EXPECT_LE(a.yield, 1.0);
  EXPECT_GE(a.sfdr_mean_db, a.sfdr_min_db);
  // Resolved segmented cell count at the spec's split (3 binary LSBs).
  const auto seg = arch::make_weighting(arch::WeightingKind::kSegmented,
                                        10, 3);
  EXPECT_EQ(a.cells, static_cast<std::int32_t>(seg.weights.size()));
  // ETE cross-check lands in the same regime as the waveform MC.
  EXPECT_NEAR(a.ete_sfdr_mean_db, a.sfdr_mean_db, 5.0);
}

TEST(ArchJobs, CompareSweepShapeAndActivityOrdering) {
  const auto v = execute_job(small_compare_job(), 2, nullptr);
  const auto& r = std::get<ArchCompareResult>(v);
  // binary + segmented splits {2,3,4} + optimized.
  ASSERT_EQ(r.points.size(), 5u);
  EXPECT_EQ(r.points.front().scheme,
            static_cast<std::uint8_t>(arch::WeightingKind::kBinary));
  EXPECT_EQ(r.points.back().scheme,
            static_cast<std::uint8_t>(arch::WeightingKind::kOptimized));
  const double binary_activity = r.points.front().activity;
  for (std::size_t i = 1; i < r.points.size(); ++i) {
    const auto& p = r.points[i];
    EXPECT_LT(p.activity, binary_activity) << "point " << i;
    EXPECT_GE(p.inl_yield, 0.0);
    EXPECT_LE(p.inl_yield, 1.0);
    EXPECT_GT(p.cells, 10);
  }
  // Same unit-error pool for every architecture (common random numbers):
  // the unary-free sweep still orders yields sensibly, and every point
  // reports the full chip budget.
  for (const auto& p : r.points) {
    EXPECT_GT(p.sfdr_db, 0.0);
    EXPECT_GT(p.ete_sfdr_db, 0.0);
  }
}

// Golden trend (c): cold -> warm round trip through the persistent cache
// is bit-identical and the warm pass synthesizes zero waveforms and draws
// zero mismatch chips.
TEST(ArchRoundTrip, CachedDynSpectrumBitIdenticalAndRecomputesNothing) {
  ScratchDir dir("roundtrip-arch-dyn");
  RuntimeOptions cold;
  cold.threads = 1;
  cold.cache_dir = dir.str();
  const JobRecord first = run_job(small_dyn_job(), cold);
  ASSERT_FALSE(first.cache_hit);
  const auto& fresh = std::get<DynSpectrumResult>(first.value);

  const std::int64_t waves0 = arch::arch_instruments().waveforms.value();
  const std::int64_t evals0 = dac::mc_chips_evaluated();
  for (const int threads : {1, 3}) {
    RuntimeOptions warm = cold;
    warm.threads = threads;
    const JobRecord again = run_job(small_dyn_job(), warm);
    EXPECT_TRUE(again.cache_hit) << threads << " threads";
    const auto& cached = std::get<DynSpectrumResult>(again.value);
    EXPECT_EQ(cached.chips, fresh.chips);
    EXPECT_EQ(cached.pass, fresh.pass);
    EXPECT_EQ(cached.yield, fresh.yield);
    EXPECT_EQ(cached.ci95, fresh.ci95);
    EXPECT_EQ(cached.sfdr_mean_db, fresh.sfdr_mean_db);
    EXPECT_EQ(cached.sfdr_min_db, fresh.sfdr_min_db);
    EXPECT_EQ(cached.sndr_mean_db, fresh.sndr_mean_db);
    EXPECT_EQ(cached.ete_sfdr_mean_db, fresh.ete_sfdr_mean_db);
    EXPECT_EQ(cached.cells, fresh.cells);
  }
  EXPECT_EQ(arch::arch_instruments().waveforms.value(), waves0)
      << "warm arch passes must not synthesize waveforms";
  EXPECT_EQ(dac::mc_chips_evaluated(), evals0)
      << "warm arch passes must not draw chips";
}

TEST(ArchRoundTrip, CachedArchCompareBitIdentical) {
  ScratchDir dir("roundtrip-arch-cmp");
  RuntimeOptions opts;
  opts.threads = 2;
  opts.cache_dir = dir.str();
  const JobRecord c1 = run_job(small_compare_job(), opts);
  ASSERT_FALSE(c1.cache_hit);
  const JobRecord c2 = run_job(small_compare_job(), opts);
  ASSERT_TRUE(c2.cache_hit);
  const auto& a = std::get<ArchCompareResult>(c1.value);
  const auto& b = std::get<ArchCompareResult>(c2.value);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].scheme, b.points[i].scheme);
    EXPECT_EQ(a.points[i].inl_yield, b.points[i].inl_yield);
    EXPECT_EQ(a.points[i].inl_ci95, b.points[i].inl_ci95);
    EXPECT_EQ(a.points[i].sfdr_db, b.points[i].sfdr_db);
    EXPECT_EQ(a.points[i].ete_sfdr_db, b.points[i].ete_sfdr_db);
    EXPECT_EQ(a.points[i].activity, b.points[i].activity);
  }
}

// --- Serve-layer parsing ---------------------------------------------------

std::string request_with(const std::string& job_json) {
  return std::string("{\"schema\":\"csdac-request/1\",\"jobs\":[") +
         job_json + "]}";
}

TEST(ArchServeParse, DynSpectrumHappyPath) {
  const auto jobs = serve::parse_request_text(request_with(
      "{\"kind\":\"dyn_spectrum\",\"spec\":{\"nbits\":10,\"binary_bits\":3},"
      "\"scheme\":\"optimized\",\"scheme_param\":20,"
      "\"n_samples\":128,\"cycles\":7,\"fs\":3e8,\"oversample\":8,"
      "\"tau\":2.5e-10,\"sigma_t\":6e-11,\"asym_sigma\":1e-11,"
      "\"chips\":8,\"seed\":9,\"adaptive\":true,\"ci_half_width\":0.05}"));
  ASSERT_EQ(jobs.size(), 1u);
  const auto& j = std::get<DynSpectrumJob>(jobs[0].job);
  EXPECT_EQ(j.scheme, arch::WeightingKind::kOptimized);
  EXPECT_EQ(j.scheme_param, 20);
  EXPECT_EQ(j.n_samples, 128);
  EXPECT_EQ(j.cycles, 7);
  EXPECT_DOUBLE_EQ(j.timing.fs, 3e8);
  EXPECT_EQ(j.timing.oversample, 8);
  EXPECT_DOUBLE_EQ(j.timing.sigma_t, 6e-11);
  EXPECT_EQ(j.chips, 8);
  EXPECT_TRUE(j.adaptive);
  EXPECT_DOUBLE_EQ(j.ci_half_width, 0.05);
}

TEST(ArchServeParse, ArchCompareHappyPath) {
  const auto jobs = serve::parse_request_text(request_with(
      "{\"kind\":\"arch_compare\",\"spec\":{\"nbits\":8,\"binary_bits\":3},"
      "\"sigma_unit\":0.02,\"n_samples\":128,\"cycles\":7,"
      "\"chips\":50,\"dyn_chips\":2,\"seg_lo\":2,\"seg_hi\":4,"
      "\"include_unary\":true}"));
  ASSERT_EQ(jobs.size(), 1u);
  const auto& j = std::get<ArchCompareJob>(jobs[0].job);
  EXPECT_DOUBLE_EQ(j.sigma_unit, 0.02);
  EXPECT_EQ(j.seg_lo, 2);
  EXPECT_EQ(j.seg_hi, 4);
  EXPECT_TRUE(j.include_unary);
}

void expect_bad_job(const std::string& job_json, const char* what) {
  try {
    serve::parse_request_text(request_with(job_json));
    FAIL() << "expected rejection: " << what;
  } catch (const serve::RequestError& e) {
    EXPECT_EQ(e.code(), "bad_job") << what;
  }
}

// Overflowing literals like 1e999 die in the JSON layer itself
// ("bad_json"), before field validation can see them — either way the
// request must come back as a structured error, never a server throw.
void expect_rejected(const std::string& job_json, const char* what) {
  try {
    serve::parse_request_text(request_with(job_json));
    FAIL() << "expected rejection: " << what;
  } catch (const serve::RequestError& e) {
    EXPECT_FALSE(e.code().empty()) << what;
  }
}

TEST(ArchServeParse, RejectsHostileDynamicFields) {
  const std::string base =
      "{\"kind\":\"dyn_spectrum\",\"spec\":{\"nbits\":10,\"binary_bits\":3}";
  expect_bad_job(base + ",\"tau\":-1e-9}", "negative tau");
  expect_bad_job(base + ",\"tau\":0}", "zero tau");
  expect_bad_job(base + ",\"oversample\":0}", "oversample 0");
  expect_bad_job(base + ",\"oversample\":1}", "oversample 1");
  expect_bad_job(base + ",\"sigma_t\":-1e-12}", "negative sigma_t");
  expect_bad_job(base + ",\"sigma_t\":2.0}", "sigma_t above range");
  expect_bad_job(base + ",\"asym_sigma\":2.0}", "asym_sigma above range");
  expect_rejected(base + ",\"sigma_t\":1e999}", "overflowing sigma_t");
  expect_rejected(base + ",\"asym_sigma\":1e999}", "overflowing asym_sigma");
  expect_bad_job(base + ",\"fs\":0}", "zero fs");
  expect_bad_job(base + ",\"scheme\":\"thermometer\"}", "unknown scheme");
  expect_bad_job(base + ",\"scheme\":\"binary\",\"scheme_param\":1}",
                 "param on binary");
  expect_bad_job(base + ",\"scheme\":\"optimized\",\"scheme_param\":5}",
                 "budget below nbits");
  expect_bad_job(base + ",\"n_samples\":1048576}", "n_samples ceiling");
  expect_bad_job(base + ",\"n_samples\":128,\"cycles\":64}",
                 "cycles vs Nyquist");
  expect_bad_job(base + ",\"chips\":100000}", "chips ceiling");
  expect_bad_job(
      "{\"kind\":\"dyn_spectrum\",\"spec\":{\"nbits\":16,\"binary_bits\":4}}",
      "nbits ceiling");
}

TEST(ArchServeParse, RejectsHostileCompareFields) {
  const std::string base =
      "{\"kind\":\"arch_compare\",\"spec\":{\"nbits\":12,\"binary_bits\":4},"
      "\"sigma_unit\":0.02";
  expect_bad_job(base + ",\"include_unary\":true}", "unary at 12 bits");
  expect_bad_job(base + ",\"seg_lo\":12}", "seg_lo >= nbits");
  expect_bad_job(base + ",\"seg_lo\":5,\"seg_hi\":3}", "seg_hi < seg_lo");
  expect_bad_job(base + ",\"opt_cells\":5}", "opt_cells below nbits");
  expect_bad_job(base + ",\"dyn_chips\":1000}", "dyn_chips ceiling");
  expect_bad_job(base + ",\"limit\":1e6}", "limit above range");
  expect_rejected(base + ",\"limit\":1e999}", "overflowing limit");
}

}  // namespace
}  // namespace csdac::runtime
