#include "layout/lefdef.hpp"

#include <gtest/gtest.h>

namespace csdac::layout {
namespace {

DefDesign sample_design() {
  DefDesign d;
  d.name = "testchip";
  d.dbu_per_micron = 2000;
  d.die_x1 = 100000;
  d.die_y1 = 50000;
  d.components = {
      {"u1", "CS_CELL", 0, 0, "N"},
      {"u2", "CS_CELL", 12000, 0, "N"},
      {"lat1", "LATCH_SW_DRV", 0, 24000, "N"},
  };
  d.nets = {
      {"sw1", {{"lat1", "Q"}, {"u1", "SW"}}},
      {"outp", {{"u1", "OUTP"}, {"u2", "OUTP"}}},
  };
  return d;
}

TEST(LefDef, DefRoundTrip) {
  const DefDesign d = sample_design();
  const std::string text = write_def(d);
  const DefDesign r = parse_def(text);
  EXPECT_EQ(r.name, d.name);
  EXPECT_EQ(r.dbu_per_micron, d.dbu_per_micron);
  EXPECT_EQ(r.die_x1, d.die_x1);
  EXPECT_EQ(r.die_y1, d.die_y1);
  ASSERT_EQ(r.components.size(), d.components.size());
  for (std::size_t i = 0; i < d.components.size(); ++i) {
    EXPECT_EQ(r.components[i].name, d.components[i].name);
    EXPECT_EQ(r.components[i].macro, d.components[i].macro);
    EXPECT_EQ(r.components[i].x, d.components[i].x);
    EXPECT_EQ(r.components[i].y, d.components[i].y);
    EXPECT_EQ(r.components[i].orient, d.components[i].orient);
  }
  ASSERT_EQ(r.nets.size(), d.nets.size());
  EXPECT_EQ(r.nets[0].name, "sw1");
  ASSERT_EQ(r.nets[0].connections.size(), 2u);
  EXPECT_EQ(r.nets[0].connections[1].component, "u1");
  EXPECT_EQ(r.nets[0].connections[1].pin, "SW");
}

TEST(LefDef, DefContainsRequiredSections) {
  const std::string text = write_def(sample_design());
  EXPECT_NE(text.find("DESIGN testchip ;"), std::string::npos);
  EXPECT_NE(text.find("UNITS DISTANCE MICRONS 2000 ;"), std::string::npos);
  EXPECT_NE(text.find("COMPONENTS 3 ;"), std::string::npos);
  EXPECT_NE(text.find("END COMPONENTS"), std::string::npos);
  EXPECT_NE(text.find("NETS 2 ;"), std::string::npos);
  EXPECT_NE(text.find("END DESIGN"), std::string::npos);
}

TEST(LefDef, LefContainsMacroAndPins) {
  LefMacro m;
  m.name = "CS_CELL";
  m.width = 12.0;
  m.height = 12.0;
  m.pins = {{"SW", "INPUT", "METAL2", 1.0, 10.5, 1.6, 11.1}};
  const std::string text = write_lef({m});
  EXPECT_NE(text.find("MACRO CS_CELL"), std::string::npos);
  EXPECT_NE(text.find("SIZE 12.0000 BY 12.0000 ;"), std::string::npos);
  EXPECT_NE(text.find("PIN SW"), std::string::npos);
  EXPECT_NE(text.find("RECT 1.0000 10.5000 1.6000 11.1000 ;"),
            std::string::npos);
  EXPECT_NE(text.find("END LIBRARY"), std::string::npos);
}

TEST(LefDef, ParserToleratesHeaderNoise) {
  std::string text = write_def(sample_design());
  // Already has VERSION / DIVIDERCHAR noise; add more.
  text = "# leading comment-ish token stream\n" + text;
  EXPECT_NO_THROW(parse_def(text));
}

TEST(LefDef, ParserRejectsMalformed) {
  EXPECT_THROW(parse_def(""), std::invalid_argument);
  EXPECT_THROW(parse_def("COMPONENTS 1 ; - u1 CS + PLACED ( 0 0 ) N ;"),
               std::invalid_argument);  // no DESIGN
  std::string bad = write_def(sample_design());
  const auto pos = bad.find("PLACED");
  bad.replace(pos, 6, "FLYING");
  EXPECT_THROW(parse_def(bad), std::invalid_argument);
}

TEST(LefDef, WriterValidatesInput) {
  DefDesign d;
  EXPECT_THROW(write_def(d), std::invalid_argument);  // empty name
  LefMacro m;
  m.name = "X";
  m.width = 0.0;
  m.height = 1.0;
  EXPECT_THROW(write_lef({m}), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::layout
