#include "layout/switching.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace csdac::layout {
namespace {

ArrayGeometry grid16() { return ArrayGeometry{16, 16}; }

bool is_permutation_of_cells(const std::vector<int>& seq, int n_cells) {
  std::set<int> seen(seq.begin(), seq.end());
  if (seen.size() != seq.size()) return false;
  return std::all_of(seq.begin(), seq.end(),
                     [&](int i) { return i >= 0 && i < n_cells; });
}

TEST(Switching, AllSchemesProduceValidPermutations) {
  const auto geo = grid16();
  for (auto scheme :
       {SwitchingScheme::kRowMajor, SwitchingScheme::kBoustrophedon,
        SwitchingScheme::kSymmetric, SwitchingScheme::kHierarchical,
        SwitchingScheme::kRandom}) {
    const auto seq = make_sequence(scheme, geo, 255);
    EXPECT_EQ(seq.size(), 255u);
    EXPECT_TRUE(is_permutation_of_cells(seq, geo.cells()))
        << "scheme " << static_cast<int>(scheme);
  }
}

TEST(Switching, RowMajorIsIdentity) {
  const auto seq = make_sequence(SwitchingScheme::kRowMajor, grid16(), 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seq[static_cast<std::size_t>(i)], i);
}

TEST(Switching, SymmetricStartsNearCenter) {
  const auto geo = grid16();
  const auto seq = make_sequence(SwitchingScheme::kSymmetric, geo, 255);
  const Point p = geo.normalized(seq[0]);
  EXPECT_LT(p.x * p.x + p.y * p.y, 0.05);
}

TEST(Switching, SystematicLinearityOfUniformErrorsIsZero) {
  // A constant error on every source is a pure gain error: INL = 0 after
  // endpoint correction.
  std::vector<double> errs(255, 0.01);
  const auto r = systematic_linearity(errs, 16.0);
  EXPECT_NEAR(r.inl_max, 0.0, 1e-9);
  EXPECT_NEAR(r.dnl_max, 0.0, 1e-9);
}

TEST(Switching, RowMajorAccumulatesLinearGradient) {
  // Under a pure-y gradient, raster order walks the array bottom-to-top,
  // accumulating a large bow; the hierarchical order must beat it
  // decisively.
  const auto geo = grid16();
  const GradientSpec g{0.0, 0.01, 0.0};
  const double w = 16.0;
  const auto inl_of = [&](SwitchingScheme s) {
    const auto seq = make_sequence(s, geo, 255);
    return systematic_linearity(sequence_errors(geo, seq, g), w).inl_max;
  };
  const double raster = inl_of(SwitchingScheme::kRowMajor);
  const double hier = inl_of(SwitchingScheme::kHierarchical);
  EXPECT_GT(raster, 3.0 * hier);
}

TEST(Switching, SymmetricCancelsLinearButNotQuadratic) {
  const auto geo = grid16();
  const double w = 16.0;
  const auto seq = make_sequence(SwitchingScheme::kSymmetric, geo, 255);
  const double lin = systematic_linearity(
      sequence_errors(geo, seq, GradientSpec{0.01, 0.01, 0.0}), w).inl_max;
  const double quad = systematic_linearity(
      sequence_errors(geo, seq, GradientSpec{0.0, 0.0, 0.01}), w).inl_max;
  EXPECT_LT(lin, quad);
}

TEST(Switching, DoubleCentroidKillsLinearGradientExactly) {
  const auto geo = grid16();
  const auto seq = make_sequence(SwitchingScheme::kRowMajor, geo, 255);
  const GradientSpec g{0.02, 0.015, 0.0};
  const auto errs = sequence_errors(geo, seq, g, /*double_centroid=*/true);
  for (double e : errs) EXPECT_NEAR(e, 0.0, 1e-15);
}

TEST(Switching, DoubleCentroidLeavesQuadraticResidual) {
  const auto geo = grid16();
  const auto seq = make_sequence(SwitchingScheme::kRowMajor, geo, 255);
  const GradientSpec g{0.0, 0.0, 0.02};
  const auto plain = sequence_errors(geo, seq, g, false);
  const auto dc = sequence_errors(geo, seq, g, true);
  // The quadratic bowl is symmetric: the 4-quadrant average equals the
  // plain value at mirrored positions.
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(dc[i], plain[i], 1e-15);
  }
}

TEST(Switching, OptimizedBeatsAllHeuristicsOnItsObjective) {
  const auto geo = grid16();
  const auto grads = standard_gradients(0.01);
  const double w = 16.0;
  AnnealOptions opts;
  opts.iterations = 4000;
  opts.seed = 3;
  const auto opt = optimize_sequence(geo, 255, grads, w, opts);
  EXPECT_TRUE(is_permutation_of_cells(opt, geo.cells()));
  const double c_opt = sequence_cost(geo, opt, grads, w);
  for (auto scheme :
       {SwitchingScheme::kRowMajor, SwitchingScheme::kBoustrophedon,
        SwitchingScheme::kSymmetric, SwitchingScheme::kRandom}) {
    const auto seq = make_sequence(scheme, geo, 255);
    EXPECT_LE(c_opt, sequence_cost(geo, seq, grads, w) + 1e-12)
        << "scheme " << static_cast<int>(scheme);
  }
  // It starts from hierarchical, so it can only improve on it.
  const auto hier = make_sequence(SwitchingScheme::kHierarchical, geo, 255);
  EXPECT_LE(c_opt, sequence_cost(geo, hier, grads, w) + 1e-12);
}

TEST(Switching, MultiRestartAnnealIsThreadCountIndependent) {
  // Restarts draw from (seed, restart)-derived streams and the best-cost
  // winner ties to the lowest restart index, so the result is bit-identical
  // for any thread count.
  const auto geo = grid16();
  const auto grads = standard_gradients(0.01);
  AnnealOptions opts;
  opts.iterations = 500;
  opts.seed = 11;
  opts.restarts = 5;
  opts.threads = 1;
  const auto ref = optimize_sequence(geo, 255, grads, 16.0, opts);
  for (int threads : {2, 7}) {
    opts.threads = threads;
    mathx::RunStats stats;
    const auto got = optimize_sequence(geo, 255, grads, 16.0, opts, &stats);
    EXPECT_EQ(got, ref) << "threads " << threads;
    EXPECT_EQ(stats.evaluated, 5);
  }
}

TEST(Switching, MultiRestartNeverWorseThanSingleRun) {
  const auto geo = grid16();
  const auto grads = standard_gradients(0.01);
  const double w = 16.0;
  AnnealOptions opts;
  opts.iterations = 500;
  opts.seed = 21;
  const auto single = optimize_sequence(geo, 255, grads, w, opts);
  opts.restarts = 4;
  opts.threads = 0;  // hardware concurrency
  const auto multi = optimize_sequence(geo, 255, grads, w, opts);
  EXPECT_TRUE(is_permutation_of_cells(multi, geo.cells()));
  // Restart 0 replays the single-run stream, so the best-of can only match
  // or beat it.
  EXPECT_LE(sequence_cost(geo, multi, grads, w),
            sequence_cost(geo, single, grads, w) + 1e-12);
}

TEST(Switching, SingleRestartMatchesLegacySeedStream) {
  // Backwards compatibility: restarts = 1 must reproduce the historical
  // single-stream annealing result exactly.
  const auto geo = grid16();
  const auto grads = standard_gradients(0.01);
  AnnealOptions opts;
  opts.iterations = 300;
  opts.seed = 3;
  const auto a = optimize_sequence(geo, 255, grads, 16.0, opts);
  opts.restarts = 1;
  opts.threads = 4;  // thread knob must not change a single-restart result
  const auto b = optimize_sequence(geo, 255, grads, 16.0, opts);
  EXPECT_EQ(a, b);
}

TEST(Switching, WorstLinearInlMatchesAngleSweep) {
  // Brute-force the gradient orientation and check the closed form.
  const auto geo = grid16();
  const auto seq = make_sequence(SwitchingScheme::kSymmetric, geo, 255);
  const double amp = 0.01, w = 16.0;
  double brute = 0.0;
  for (int a = 0; a < 360; ++a) {
    const double th = a * 3.14159265358979323846 / 180.0;
    const GradientSpec g{amp * std::cos(th), amp * std::sin(th), 0.0};
    brute = std::max(
        brute, systematic_linearity(sequence_errors(geo, seq, g), w).inl_max);
  }
  const double exact = worst_linear_inl(geo, seq, amp, w);
  EXPECT_NEAR(exact, brute, 0.02 * exact);
  EXPECT_GE(exact, brute - 1e-12);  // closed form is the true supremum
}

TEST(Switching, CentroidWalkMinimizesWorstLinearInl) {
  // The centroid-balanced walk greedily pins the prefix-sum vector to the
  // origin: its rotation-invariant worst-case INL must beat raster and the
  // plain random permutation by a wide factor.
  const auto geo = grid16();
  const double amp = 0.01, w = 16.0;
  const double walk = worst_linear_inl(
      geo, make_sequence(SwitchingScheme::kCentroidBalanced, geo, 255, 3),
      amp, w);
  const double raster = worst_linear_inl(
      geo, make_sequence(SwitchingScheme::kRowMajor, geo, 255), amp, w);
  const double rand = worst_linear_inl(
      geo, make_sequence(SwitchingScheme::kRandom, geo, 255, 3), amp, w);
  EXPECT_LT(walk, 0.1 * raster);
  EXPECT_LT(walk, 0.5 * rand);
}

TEST(Switching, WorstLinearInlErrorHandling) {
  const auto geo = grid16();
  EXPECT_THROW(worst_linear_inl(geo, {}, 0.01, 16.0),
               std::invalid_argument);
  EXPECT_THROW(worst_linear_inl(geo, {0, 1}, -0.1, 16.0),
               std::invalid_argument);
  EXPECT_THROW(worst_linear_inl(geo, {0, 1}, 0.1, 0.0),
               std::invalid_argument);
}

TEST(Switching, GradientMapMatchesSpec) {
  const ArrayGeometry geo{3, 3};
  const GradientSpec g{0.5, 0.0, 0.0};
  const auto map = gradient_map(geo, g);
  EXPECT_NEAR(map[0], -0.5, 1e-12);  // (row 0, col 0): x = -1
  EXPECT_NEAR(map[1], 0.0, 1e-12);   // center column
  EXPECT_NEAR(map[2], 0.5, 1e-12);
}

TEST(Switching, StandardGradientSetShape) {
  const auto gs = standard_gradients(0.02);
  EXPECT_EQ(gs.size(), 5u);
  EXPECT_DOUBLE_EQ(gs[0].lin_x, 0.02);
  EXPECT_DOUBLE_EQ(gs[3].quad, 0.02);
}

TEST(Switching, ErrorHandling) {
  const auto geo = grid16();
  EXPECT_THROW(make_sequence(SwitchingScheme::kRowMajor, geo, 0),
               std::invalid_argument);
  EXPECT_THROW(make_sequence(SwitchingScheme::kRowMajor, geo, 257),
               std::invalid_argument);
  EXPECT_THROW(systematic_linearity({}, 16.0), std::invalid_argument);
  EXPECT_THROW(systematic_linearity({0.1}, 0.0), std::invalid_argument);
  EXPECT_THROW(sequence_errors(geo, {999}, GradientSpec{}),
               std::out_of_range);
  AnnealOptions bad;
  bad.iterations = 0;
  EXPECT_THROW(optimize_sequence(geo, 10, standard_gradients(0.01), 16.0,
                                 bad),
               std::invalid_argument);
  bad = AnnealOptions{};
  bad.restarts = 0;
  EXPECT_THROW(optimize_sequence(geo, 10, standard_gradients(0.01), 16.0,
                                 bad),
               std::invalid_argument);
  bad = AnnealOptions{};
  bad.threads = -2;
  EXPECT_THROW(optimize_sequence(geo, 10, standard_gradients(0.01), 16.0,
                                 bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace csdac::layout
