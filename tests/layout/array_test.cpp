#include "layout/array.hpp"

#include <gtest/gtest.h>

#include "layout/floorplan.hpp"

namespace csdac::layout {
namespace {

TEST(ArrayGeometryTest, NormalizedCoordinatesSpanUnitSquare) {
  const ArrayGeometry geo{4, 8};
  EXPECT_DOUBLE_EQ(geo.normalized(0).x, -1.0);
  EXPECT_DOUBLE_EQ(geo.normalized(0).y, -1.0);
  EXPECT_DOUBLE_EQ(geo.normalized(geo.cells() - 1).x, 1.0);
  EXPECT_DOUBLE_EQ(geo.normalized(geo.cells() - 1).y, 1.0);
  // Center-ish cell maps near the origin.
  const Point p = geo.normalized(geo.index_of(2, 4));
  EXPECT_NEAR(p.x, 2.0 * 4 / 7.0 - 1.0, 1e-12);
  EXPECT_NEAR(p.y, 2.0 * 2 / 3.0 - 1.0, 1e-12);
}

TEST(ArrayGeometryTest, SingleRowOrColumnDegenerate) {
  const ArrayGeometry row{1, 5};
  EXPECT_DOUBLE_EQ(row.normalized(2).y, 0.0);  // no y extent
  const ArrayGeometry col{5, 1};
  EXPECT_DOUBLE_EQ(col.normalized(2).x, 0.0);
}

TEST(ArrayGeometryTest, PhysicalCoordinatesUsePitch) {
  const ArrayGeometry geo{4, 4, 12e-6, 10e-6};
  const Point p = geo.physical(geo.index_of(2, 3));
  EXPECT_DOUBLE_EQ(p.x, 3 * 12e-6);
  EXPECT_DOUBLE_EQ(p.y, 2 * 10e-6);
}

TEST(ArrayGeometryTest, IndexMathRoundTrips) {
  const ArrayGeometry geo{7, 9};
  for (int idx = 0; idx < geo.cells(); ++idx) {
    EXPECT_EQ(geo.index_of(geo.row_of(idx), geo.col_of(idx)), idx);
  }
}

TEST(ArrayGeometryTest, Validation) {
  const ArrayGeometry bad{0, 4};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  const ArrayGeometry geo{4, 4};
  EXPECT_THROW(geo.normalized(-1), std::out_of_range);
  EXPECT_THROW(geo.normalized(16), std::out_of_range);
  EXPECT_THROW(geo.physical(16), std::out_of_range);
}

TEST(FloorplanVariants, CustomCellSizesScaleDie) {
  core::DacSpec spec;
  FloorplanOptions small;
  small.cs_cell_w_um = 8.0;
  small.cs_cell_h_um = 8.0;
  FloorplanOptions big;
  big.cs_cell_w_um = 20.0;
  big.cs_cell_h_um = 20.0;
  const Floorplan fs = build_floorplan(spec, small);
  const Floorplan fb = build_floorplan(spec, big);
  EXPECT_LT(fs.def.die_x1, fb.def.die_x1);
  EXPECT_LT(fs.def.die_y1, fb.def.die_y1);
  // Same component count regardless of geometry.
  EXPECT_EQ(fs.def.components.size(), fb.def.components.size());
}

TEST(FloorplanVariants, SeedChangesRandomScheme) {
  core::DacSpec spec;
  FloorplanOptions a;
  a.scheme = SwitchingScheme::kRandom;
  a.seed = 1;
  FloorplanOptions b = a;
  b.seed = 2;
  const Floorplan fa = build_floorplan(spec, a);
  const Floorplan fb = build_floorplan(spec, b);
  EXPECT_NE(fa.unary_sequence, fb.unary_sequence);
}

TEST(FloorplanVariants, NoBinaryBitsMeansNoBinaryColumns) {
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 0;  // fully thermometer
  const Floorplan fp = build_floorplan(spec);
  EXPECT_TRUE(fp.binary_columns.empty());
  int bin_cells = 0;
  for (const auto& c : fp.def.components) {
    if (c.name.rfind("cs_b", 0) == 0) ++bin_cells;
  }
  EXPECT_EQ(bin_cells, 0);
}

}  // namespace
}  // namespace csdac::layout
