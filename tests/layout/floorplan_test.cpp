#include "layout/floorplan.hpp"

#include <gtest/gtest.h>

#include <set>

namespace csdac::layout {
namespace {

TEST(Floorplan, TwelveBitStructure) {
  core::DacSpec spec;  // 12 bit, b = 4, m = 8
  const Floorplan fp = build_floorplan(spec);
  // 255 unary + 4 binary CS cells, 259 latches, 2 decoders.
  int cs = 0, latches = 0, decoders = 0;
  for (const auto& c : fp.def.components) {
    if (c.macro == "CS_CELL") ++cs;
    if (c.macro == "LATCH_SW_DRV") ++latches;
    if (c.macro == "THERM_DEC" || c.macro == "DUMMY_DEC") ++decoders;
  }
  EXPECT_EQ(cs, 259);
  EXPECT_EQ(latches, 259);
  EXPECT_EQ(decoders, 2);
  EXPECT_EQ(fp.binary_columns.size(), 4u);
  EXPECT_EQ(fp.unary_sequence.size(), 255u);
}

TEST(Floorplan, NoOverlappingCsCells) {
  core::DacSpec spec;
  const Floorplan fp = build_floorplan(spec);
  std::set<std::pair<long long, long long>> positions;
  for (const auto& c : fp.def.components) {
    if (c.macro != "CS_CELL") continue;
    EXPECT_TRUE(positions.emplace(c.x, c.y).second)
        << "overlap at " << c.x << "," << c.y << " (" << c.name << ")";
  }
}

TEST(Floorplan, BinaryCellsSitInDedicatedColumns) {
  core::DacSpec spec;
  FloorplanOptions opts;
  const Floorplan fp = build_floorplan(spec, opts);
  const long long w = static_cast<long long>(opts.cs_cell_w_um *
                                             opts.dbu_per_micron);
  std::set<long long> allowed;
  for (int col : fp.binary_columns) allowed.insert(col * w);
  for (const auto& c : fp.def.components) {
    if (c.name.rfind("cs_b", 0) != 0) continue;
    EXPECT_TRUE(allowed.count(c.x)) << c.name << " at x=" << c.x;
  }
  // ... and no unary cell occupies a binary column.
  for (const auto& c : fp.def.components) {
    if (c.name.rfind("cs_u", 0) != 0) continue;
    EXPECT_FALSE(allowed.count(c.x)) << c.name << " at x=" << c.x;
  }
}

TEST(Floorplan, RegionsAreVerticallyOrdered) {
  core::DacSpec spec;
  const Floorplan fp = build_floorplan(spec);
  long long cs_max_y = 0, latch_min_y = 1LL << 60, latch_max_y = 0,
            dec_min_y = 1LL << 60;
  for (const auto& c : fp.def.components) {
    if (c.macro == "CS_CELL") cs_max_y = std::max(cs_max_y, c.y);
    if (c.macro == "LATCH_SW_DRV") {
      latch_min_y = std::min(latch_min_y, c.y);
      latch_max_y = std::max(latch_max_y, c.y);
    }
    if (c.macro == "THERM_DEC") dec_min_y = std::min(dec_min_y, c.y);
  }
  EXPECT_LT(cs_max_y, latch_min_y);   // CS array below the latch array
  EXPECT_LT(latch_max_y, dec_min_y);  // decoders on top
}

TEST(Floorplan, EveryUnarySourceIsWired) {
  core::DacSpec spec;
  const Floorplan fp = build_floorplan(spec);
  std::set<std::string> nets;
  for (const auto& n : fp.def.nets) nets.insert(n.name);
  for (int k = 0; k < spec.num_unary(); ++k) {
    EXPECT_TRUE(nets.count("t" + std::to_string(k)));
    EXPECT_TRUE(nets.count("sw_u" + std::to_string(k)));
  }
  EXPECT_TRUE(nets.count("outp"));
  EXPECT_TRUE(nets.count("outn"));
  EXPECT_TRUE(nets.count("vbias"));
}

TEST(Floorplan, ArtefactsRoundTripThroughDefParser) {
  core::DacSpec spec;
  const Floorplan fp = build_floorplan(spec);
  const std::string def_text = floorplan_def(fp);
  const DefDesign parsed = parse_def(def_text);
  EXPECT_EQ(parsed.components.size(), fp.def.components.size());
  EXPECT_EQ(parsed.nets.size(), fp.def.nets.size());
  EXPECT_EQ(parsed.name, fp.def.name);
  const std::string lef_text = floorplan_lef(fp);
  EXPECT_NE(lef_text.find("MACRO CS_CELL"), std::string::npos);
  EXPECT_NE(lef_text.find("MACRO THERM_DEC"), std::string::npos);
}

TEST(Floorplan, SmallerConvertersScaleDown) {
  core::DacSpec spec;
  spec.nbits = 8;
  spec.binary_bits = 3;
  const Floorplan fp = build_floorplan(spec);
  EXPECT_EQ(fp.unary_sequence.size(), 31u);
  EXPECT_EQ(fp.binary_columns.size(), 3u);
  int cs = 0;
  for (const auto& c : fp.def.components) {
    if (c.macro == "CS_CELL") ++cs;
  }
  EXPECT_EQ(cs, 34);
}

TEST(Floorplan, SequenceFollowsRequestedScheme) {
  core::DacSpec spec;
  FloorplanOptions opts;
  opts.scheme = SwitchingScheme::kRowMajor;
  const Floorplan fp = build_floorplan(spec, opts);
  // Row-major: source k sits at unary-subgrid cell k.
  EXPECT_EQ(fp.unary_sequence[0], 0);
  EXPECT_EQ(fp.unary_sequence[1], 1);
}

}  // namespace
}  // namespace csdac::layout
