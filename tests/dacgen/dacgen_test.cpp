// Transistor-level converter tests, including the mixed-level
// cross-validation: the SPICE netlist of a reduced-resolution DAC must
// reproduce the behavioral model's static transfer (same mismatch draws).
#include "dacgen/dacgen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dac/dac_model.hpp"
#include "dac/static_analysis.hpp"
#include "layout/switching.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"

namespace csdac::dacgen {
namespace {

using tech::generic_035um;

// A small converter with the paper's architecture: 6 bit, 2 binary +
// 4 thermometer bits (15 unary sources) — cheap enough for full sweeps.
core::DacSpec small_spec() {
  core::DacSpec s;
  s.nbits = 6;
  s.binary_bits = 2;
  return s;
}

struct Fixture {
  tech::MosTechParams t = generic_035um().nmos;
  core::DacSpec spec = small_spec();
  core::CellSizer sizer{t, spec};
  core::SizedCell cell =
      sizer.size_cascode(0.25, 0.2, 0.2, core::MarginPolicy::kStatistical);
};

TEST(DacGen, ZeroCodeSinksNoCurrentIntoOutP) {
  Fixture f;
  TransistorLevelDac chip(f.spec, f.cell, f.t);
  EXPECT_NEAR(chip.level(0), 0.0, 0.05);
}

TEST(DacGen, FullScaleCodeSinksAllUnits) {
  Fixture f;
  TransistorLevelDac chip(f.spec, f.cell, f.t);
  const int full = (1 << f.spec.nbits) - 1;
  // Channel-length modulation allows a few % deviation.
  EXPECT_NEAR(chip.level(full), full, 0.05 * full);
}

TEST(DacGen, TransferIsMonotonicAndLinear) {
  Fixture f;
  TransistorLevelDac chip(f.spec, f.cell, f.t);
  const auto levels = chip.transfer();
  ASSERT_EQ(levels.size(), 64u);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GT(levels[i], levels[i - 1]) << "code " << i;
  }
  // Ideal chip: INL well below an LSB (residual is lambda-induced bow).
  const auto m = dac::analyze_transfer(levels);
  EXPECT_LT(m.inl_max, 0.3);
}

TEST(DacGen, DifferentialOutputsComplementary) {
  Fixture f;
  TransistorLevelDac chip(f.spec, f.cell, f.t);
  // Low code: few sources sink from out_p, so v(out_p) sits high and
  // v_diff > 0; codes 15 and 48 are mirror images about mid-scale (63/2).
  const double lo = chip.v_diff(15);
  const double hi = chip.v_diff(48);
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi, 0.0);
  EXPECT_NEAR(lo, -hi, 0.05 * std::abs(hi));
}

TEST(DacGen, MismatchDrawsAreDeterministicPerSeed) {
  Fixture f;
  DacGenOptions o1;
  o1.sigma_unit = 0.01;
  o1.seed = 7;
  TransistorLevelDac a(f.spec, f.cell, f.t, o1);
  TransistorLevelDac b(f.spec, f.cell, f.t, o1);
  o1.seed = 8;
  TransistorLevelDac c(f.spec, f.cell, f.t, o1);
  EXPECT_EQ(a.unary_errors(), b.unary_errors());
  EXPECT_NE(a.unary_errors(), c.unary_errors());
}

TEST(DacGen, MixedLevelCrossValidation) {
  // THE cross-check: feed the SPICE chip's mismatch draws into the
  // behavioral model; both transfer functions must agree code by code to
  // within the lambda-induced systematic residual.
  Fixture f;
  DacGenOptions opts;
  opts.sigma_unit = 0.02;  // exaggerated mismatch so it dominates
  opts.seed = 42;
  TransistorLevelDac chip(f.spec, f.cell, f.t, opts);

  dac::SourceErrors errors;
  const double uw = f.spec.unary_weight();
  for (std::size_t i = 0; i < chip.unary_errors().size(); ++i) {
    errors.unary.push_back(uw * (1.0 + chip.unary_errors()[i]));
  }
  for (int k = 0; k < f.spec.binary_bits; ++k) {
    const double w = std::ldexp(1.0, k);
    errors.binary.push_back(
        w * (1.0 + chip.binary_errors()[static_cast<std::size_t>(k)]));
  }
  const dac::SegmentedDac behavioral(f.spec, errors);

  const auto spice_levels = chip.transfer();
  const auto model_levels = behavioral.transfer();
  // Compare INL curves (gain/offset independent).
  const auto inl_spice = dac::analyze_transfer(spice_levels);
  const auto inl_model = dac::analyze_transfer(model_levels);
  ASSERT_EQ(inl_spice.inl.size(), inl_model.inl.size());
  for (std::size_t c = 0; c < inl_spice.inl.size(); ++c) {
    EXPECT_NEAR(inl_spice.inl[c], inl_model.inl[c], 0.15)
        << "code " << c;
  }
  EXPECT_NEAR(inl_spice.inl_max, inl_model.inl_max,
              0.3 * inl_model.inl_max + 0.05);
}

TEST(DacGen, SingleEndedOptionShortsOutN) {
  Fixture f;
  DacGenOptions opts;
  opts.differential = false;
  TransistorLevelDac chip(f.spec, f.cell, f.t, opts);
  const auto bc = chip.build(10);
  const auto sol = spice::solve_dc(*bc.circuit);
  EXPECT_NEAR(sol.v(bc.out_n), f.spec.v_out_min + f.spec.v_swing, 1e-6);
}

TEST(DacGen, WorksWithBasicTopologyToo) {
  Fixture f;
  const auto basic =
      f.sizer.size_basic(0.3, 0.25, core::MarginPolicy::kStatistical);
  TransistorLevelDac chip(f.spec, basic, f.t);
  const int full = (1 << f.spec.nbits) - 1;
  EXPECT_NEAR(chip.level(full), full, 0.06 * full);
}

TEST(DacGen, SystematicGradientMatchesLayoutPrediction) {
  // Close the loop: inject a placed array's systematic errors into the
  // transistor-level chip; its INL must match the layout module's
  // analytic thermometer-ramp prediction.
  Fixture f;
  const layout::ArrayGeometry geo{4, 4};
  const auto seq = layout::make_sequence(
      layout::SwitchingScheme::kRowMajor, geo, f.spec.num_unary());
  const layout::GradientSpec g{0.03, 0.0, 0.0};
  const auto sys = layout::sequence_errors(geo, seq, g, false);

  DacGenOptions opts;
  opts.unary_systematic = sys;
  const TransistorLevelDac chip(f.spec, f.cell, f.t, opts);
  const auto inl_spice = dac::analyze_transfer(chip.transfer(),
                                               dac::InlReference::kEndpoint);
  const auto predicted =
      layout::systematic_linearity(sys, f.spec.unary_weight());
  EXPECT_NEAR(inl_spice.inl_max, predicted.inl_max,
              0.25 * predicted.inl_max + 0.05);
}

TEST(DacGen, SystematicVectorSizeValidated) {
  Fixture f;
  DacGenOptions opts;
  opts.unary_systematic = {0.01, 0.02};  // wrong length
  EXPECT_THROW(TransistorLevelDac(f.spec, f.cell, f.t, opts),
               std::invalid_argument);
}

TEST(DacGen, RejectsBadInput) {
  Fixture f;
  TransistorLevelDac chip(f.spec, f.cell, f.t);
  EXPECT_THROW(chip.build(-1), std::out_of_range);
  EXPECT_THROW(chip.build(64), std::out_of_range);
  DacGenOptions bad;
  bad.sigma_unit = -1.0;
  EXPECT_THROW(TransistorLevelDac(f.spec, f.cell, f.t, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace csdac::dacgen
