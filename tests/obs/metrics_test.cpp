#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace obs = csdac::obs;

TEST(Counter, SingleThreadSum) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.add(-2);
  EXPECT_EQ(c.value(), 40);
}

TEST(Counter, ShardsMergeAcrossThreads) {
  // More threads than shards, so slots are provably shared and the merge
  // must still be exact.
  constexpr int kThreads = 2 * obs::kShards;
  constexpr std::int64_t kPerThread = 10000;
  obs::Counter c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::int64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(HistogramBuckets, BoundaryMapping) {
  // Bucket 0 holds v <= 0; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::histogram_bucket(std::numeric_limits<std::int64_t>::min()),
            0);
  EXPECT_EQ(obs::histogram_bucket(-1), 0);
  EXPECT_EQ(obs::histogram_bucket(0), 0);
  EXPECT_EQ(obs::histogram_bucket(1), 1);
  EXPECT_EQ(obs::histogram_bucket(2), 2);
  EXPECT_EQ(obs::histogram_bucket(3), 2);
  EXPECT_EQ(obs::histogram_bucket(4), 3);
  EXPECT_EQ(obs::histogram_bucket(1023), 10);
  EXPECT_EQ(obs::histogram_bucket(1024), 11);
  // The top bucket absorbs everything up to INT64_MAX.
  EXPECT_EQ(obs::histogram_bucket(std::numeric_limits<std::int64_t>::max()),
            obs::kHistogramBuckets - 1);
}

TEST(HistogramBuckets, UpperBounds) {
  EXPECT_EQ(obs::histogram_bucket_le(0), 0);
  EXPECT_EQ(obs::histogram_bucket_le(1), 1);
  EXPECT_EQ(obs::histogram_bucket_le(2), 3);
  EXPECT_EQ(obs::histogram_bucket_le(10), 1023);
  // The last bucket reports +Inf as -1.
  EXPECT_EQ(obs::histogram_bucket_le(obs::kHistogramBuckets - 1), -1);
  // Every observation's bucket covers it: le(bucket(v)) >= v.
  for (const std::int64_t v : {0LL, 1LL, 2LL, 3LL, 7LL, 8LL, 100000LL}) {
    const std::int64_t le = obs::histogram_bucket_le(obs::histogram_bucket(v));
    ASSERT_GE(le, v) << "v=" << v;
  }
}

TEST(Histogram, ObserveAndMerge) {
  obs::Histogram h;
  h.observe(-5);
  h.observe(0);
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 6);
  const auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets[0], 2);  // the -5 and the 0
  EXPECT_EQ(buckets[1], 1);  // the 1
  EXPECT_EQ(buckets[2], 2);  // the two 3s
  EXPECT_EQ(buckets[obs::kHistogramBuckets - 1], 1);  // the overflow
}

TEST(Histogram, SumClampsNegatives) {
  obs::Histogram h;
  h.observe(-100);
  h.observe(0);
  h.observe(7);
  h.observe(9);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 16);
}

TEST(Histogram, ConcurrentObservers) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  obs::Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(i % 17);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::int64_t total = 0;
  for (const std::int64_t c : h.bucket_counts()) total += c;
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(Registry, SameNameReturnsSameInstrument) {
  obs::Registry r;
  obs::Counter& a = r.counter("x", "help");
  obs::Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7);
}

TEST(Registry, TypeConflictThrows) {
  obs::Registry r;
  r.counter("metric");
  EXPECT_THROW(r.gauge("metric"), std::logic_error);
  EXPECT_THROW(r.histogram("metric"), std::logic_error);
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  obs::Registry r;
  r.counter("zeta").add(1);
  r.counter("alpha").add(2);
  r.gauge("mid").set(3.0);
  r.histogram("lat").observe(5);
  const obs::MetricsSnapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 2);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_EQ(snap.histograms[0].sum, 5);
}

TEST(Registry, GlobalIsAProcessSingleton) {
  obs::Registry& a = obs::Registry::global();
  obs::Registry& b = obs::Registry::global();
  EXPECT_EQ(&a, &b);
}
