#include <gtest/gtest.h>

#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/json_escape.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/json.hpp"

namespace obs = csdac::obs;
namespace runtime = csdac::runtime;

namespace {

/// The hostile strings every exporter must survive.
constexpr const char* kHostile = "a\"b\\c\nd\te\rf\x01g";

runtime::JsonValue parse_or_die(const std::string& text) {
  runtime::JsonValue v;
  std::string err;
  EXPECT_TRUE(runtime::parse_json(text, v, &err)) << err << "\n" << text;
  return v;
}

}  // namespace

TEST(JsonEscape, HostileCharacters) {
  std::string out;
  obs::append_json_escaped(out, kHostile);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\rf\\u0001g");
  EXPECT_EQ(obs::json_quoted("plain"), "\"plain\"");
  // Escaped text embedded in a document must parse back to the original.
  const runtime::JsonValue v =
      parse_or_die("{\"k\":" + obs::json_quoted(kHostile) + "}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("k")->str, kHostile);
}

TEST(JsonEscape, RuntimeForwarderMatches) {
  std::string a, b;
  obs::append_json_escaped(a, kHostile);
  runtime::append_json_escaped(b, kHostile);
  EXPECT_EQ(a, b);
}

TEST(SnapshotJson, ParsesAndCarriesValues) {
  obs::Registry r;
  r.counter("jobs").add(3);
  r.gauge("load").set(0.5);
  obs::Histogram& h = r.histogram("lat_us");
  h.observe(1);
  h.observe(3);
  h.observe(3);

  const runtime::JsonValue doc = parse_or_die(r.snapshot().to_json());
  const runtime::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->int_or("jobs", -1), 3);
  const runtime::JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->number_or("load", -1.0), 0.5);
  const runtime::JsonValue* hist = doc.find("histograms")->find("lat_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->int_or("count", -1), 3);
  EXPECT_EQ(hist->int_or("sum", -1), 7);
  const runtime::JsonValue* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // Sparse buckets: [le=1, count=1] and [le=3, count=2].
  ASSERT_EQ(buckets->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->arr[0].arr[0].num, 1.0);
  EXPECT_DOUBLE_EQ(buckets->arr[0].arr[1].num, 1.0);
  EXPECT_DOUBLE_EQ(buckets->arr[1].arr[0].num, 3.0);
  EXPECT_DOUBLE_EQ(buckets->arr[1].arr[1].num, 2.0);
}

TEST(SnapshotJson, HostileNamesStayValidJson) {
  obs::Registry r;
  r.counter(kHostile).add(1);
  const runtime::JsonValue doc = parse_or_die(r.snapshot().to_json());
  EXPECT_EQ(doc.find("counters")->int_or(kHostile, -1), 1);
}

TEST(PrometheusName, Sanitization) {
  EXPECT_EQ(obs::prometheus_name("csdac", "mc.chips_evaluated"),
            "csdac_mc_chips_evaluated");
  EXPECT_EQ(obs::prometheus_name("csdac", "engine.run_us"),
            "csdac_engine_run_us");
  EXPECT_EQ(obs::prometheus_name("", "7weird name!"), "_7weird_name_");
  EXPECT_EQ(obs::prometheus_name("csdac", "a\"b\nc"), "csdac_a_b_c");
}

TEST(Prometheus, GoldenExposition) {
  obs::Registry r;
  r.counter("cache.hits", "lookups served from disk").add(5);
  r.gauge("pool.load").set(1.5);
  obs::Histogram& h = r.histogram("job_us", "per-job wall time");
  h.observe(1);
  h.observe(3);
  h.observe(3);

  const std::string expected =
      "# HELP csdac_cache_hits_total lookups served from disk\n"
      "# TYPE csdac_cache_hits_total counter\n"
      "csdac_cache_hits_total 5\n"
      "# TYPE csdac_pool_load gauge\n"
      "csdac_pool_load 1.5\n"
      "# HELP csdac_job_us per-job wall time\n"
      "# TYPE csdac_job_us histogram\n"
      "csdac_job_us_bucket{le=\"0\"} 0\n"
      "csdac_job_us_bucket{le=\"1\"} 1\n"
      "csdac_job_us_bucket{le=\"3\"} 3\n"
      "csdac_job_us_bucket{le=\"+Inf\"} 3\n"
      "csdac_job_us_sum 7\n"
      "csdac_job_us_count 3\n";
  EXPECT_EQ(r.snapshot().to_prometheus(), expected);
}

TEST(Prometheus, LabeledSeriesShareOneTypeHeader) {
  obs::Registry r;
  r.counter("stage.jobs", {{"kind", "inl_yield"}}, "jobs per kind").add(2);
  r.counter("stage.jobs", {{"kind", "dnl_yield"}}, "jobs per kind").add(1);
  obs::Histogram& h =
      r.histogram("stage.us", {{"kind", "inl_yield"}, {"stage", "compute"}});
  h.observe(3);

  const std::string expected =
      "# HELP csdac_stage_jobs_total jobs per kind\n"
      "# TYPE csdac_stage_jobs_total counter\n"
      "csdac_stage_jobs_total{kind=\"dnl_yield\"} 1\n"
      "csdac_stage_jobs_total{kind=\"inl_yield\"} 2\n"
      "# TYPE csdac_stage_us histogram\n"
      "csdac_stage_us_bucket{kind=\"inl_yield\",stage=\"compute\","
      "le=\"0\"} 0\n"
      "csdac_stage_us_bucket{kind=\"inl_yield\",stage=\"compute\","
      "le=\"1\"} 0\n"
      "csdac_stage_us_bucket{kind=\"inl_yield\",stage=\"compute\","
      "le=\"3\"} 1\n"
      "csdac_stage_us_bucket{kind=\"inl_yield\",stage=\"compute\","
      "le=\"+Inf\"} 1\n"
      "csdac_stage_us_sum{kind=\"inl_yield\",stage=\"compute\"} 3\n"
      "csdac_stage_us_count{kind=\"inl_yield\",stage=\"compute\"} 1\n";
  EXPECT_EQ(r.snapshot().to_prometheus(), expected);
}

TEST(Prometheus, HostileLabelCorpusIsEscaped) {
  // Every value routed through the shared exposition escaper: backslash,
  // quote, and newline get escaped; everything else (spaces, braces,
  // commas, equals, tabs, UTF-8) passes through as bytes inside the
  // quoted value, which the text format permits.
  const struct {
    const char* value;
    const char* escaped;
  } corpus[] = {
      {"plain", "plain"},
      {"", ""},
      {"a\"b", "a\\\"b"},
      {"back\\slash", "back\\\\slash"},
      {"line\nbreak", "line\\nbreak"},
      {"\\n literal", "\\\\n literal"},
      {"sp ace", "sp ace"},
      {"{},=", "{},="},
      {"k=\"v\"", "k=\\\"v\\\""},
      {"tab\there", "tab\there"},
      {"\xc2\xb5s", "\xc2\xb5s"},
      {"\"\\\n", "\\\"\\\\\\n"},
  };
  for (const auto& tc : corpus) {
    const std::string labels =
        obs::prometheus_labels({{"v", tc.value}});
    EXPECT_EQ(labels, std::string("{v=\"") + tc.escaped + "\"}")
        << tc.value;
  }
  // Label KEYS are sanitized like metric names, not escaped.
  EXPECT_EQ(obs::prometheus_labels({{"weird key!", "x"}}),
            "{weird_key_=\"x\"}");

  // A hostile value embedded in a full exposition still renders one
  // parseable sample line per series.
  obs::Registry r;
  r.counter("hostile.hits", {{"src", "a\"b\\c\nd e"}}).add(7);
  const std::string out = r.snapshot().to_prometheus();
  EXPECT_NE(
      out.find(
          "csdac_hostile_hits_total{src=\"a\\\"b\\\\c\\nd e\"} 7\n"),
      std::string::npos)
      << out;
}

TEST(Prometheus, EmptyHistogramStillTerminatesWithInf) {
  // A registered-but-never-observed histogram must still be a complete
  // series: the +Inf bucket is emitted unconditionally so scrapers and
  // check_metrics.py never see a bucket list without a terminal bound.
  obs::Registry r;
  r.histogram("quiet_us");
  r.histogram("quiet.labeled_us", {{"kind", "x"}});
  const std::string expected =
      "# TYPE csdac_quiet_labeled_us histogram\n"
      "csdac_quiet_labeled_us_bucket{kind=\"x\",le=\"+Inf\"} 0\n"
      "csdac_quiet_labeled_us_sum{kind=\"x\"} 0\n"
      "csdac_quiet_labeled_us_count{kind=\"x\"} 0\n"
      "# TYPE csdac_quiet_us histogram\n"
      "csdac_quiet_us_bucket{le=\"+Inf\"} 0\n"
      "csdac_quiet_us_sum 0\n"
      "csdac_quiet_us_count 0\n";
  EXPECT_EQ(r.snapshot().to_prometheus(), expected);
}

TEST(Metrics, LabelOrderNamesOneSeries) {
  obs::Registry r;
  obs::Counter& a = r.counter("multi", {{"b", "2"}, {"a", "1"}});
  obs::Counter& b = r.counter("multi", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  a.add(1);
  b.add(1);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 2);
}

TEST(Metrics, OneTypePerNameAcrossLabeledAndPlain) {
  obs::Registry r;
  r.counter("typed", {{"k", "v"}});
  EXPECT_THROW(r.histogram("typed"), std::logic_error);
  EXPECT_THROW(r.gauge("typed", {{"k", "other"}}), std::logic_error);
}

TEST(ChromeTrace, ValidJsonWithNestedSpans) {
  obs::SpanCollector collector;
  obs::Tracer::global().add_sink(&collector);
  {
    obs::ScopedSpan outer("graph.run");
    outer.attr("jobs", 2);
    obs::ScopedSpan inner(kHostile);  // hostile span name must not corrupt
    inner.attr(kHostile, kHostile);
  }
  obs::Tracer::global().remove_sink(&collector);
  const auto spans = collector.take();
  ASSERT_EQ(spans.size(), 2u);

  const runtime::JsonValue doc =
      parse_or_die(obs::chrome_trace_json(spans, "unit\"test"));
  EXPECT_EQ(doc.string_or("displayTimeUnit", ""), "ms");
  const runtime::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete = 0, metadata = 0;
  const runtime::JsonValue* outer_ev = nullptr;
  const runtime::JsonValue* inner_ev = nullptr;
  for (const auto& ev : events->arr) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    if (ev.string_or("name", "") == "graph.run") outer_ev = &ev;
    if (ev.string_or("name", "") == kHostile) inner_ev = &ev;
  }
  EXPECT_EQ(complete, 2);
  EXPECT_GE(metadata, 1);
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // Complete events are sorted by start time: parent first.
  EXPECT_LE(outer_ev->number_or("ts", 1e300),
            inner_ev->number_or("ts", -1e300));
  const runtime::JsonValue* args = inner_ev->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->string_or(kHostile, ""), kHostile);
  // Cross-reference: the child's parent arg matches the parent's span arg.
  EXPECT_EQ(args->int_or("parent", -1),
            outer_ev->find("args")->int_or("span", -2));
}
