#include <gtest/gtest.h>

#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/json_escape.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "runtime/json.hpp"

namespace obs = csdac::obs;
namespace runtime = csdac::runtime;

namespace {

/// The hostile strings every exporter must survive.
constexpr const char* kHostile = "a\"b\\c\nd\te\rf\x01g";

runtime::JsonValue parse_or_die(const std::string& text) {
  runtime::JsonValue v;
  std::string err;
  EXPECT_TRUE(runtime::parse_json(text, v, &err)) << err << "\n" << text;
  return v;
}

}  // namespace

TEST(JsonEscape, HostileCharacters) {
  std::string out;
  obs::append_json_escaped(out, kHostile);
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\rf\\u0001g");
  EXPECT_EQ(obs::json_quoted("plain"), "\"plain\"");
  // Escaped text embedded in a document must parse back to the original.
  const runtime::JsonValue v =
      parse_or_die("{\"k\":" + obs::json_quoted(kHostile) + "}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("k")->str, kHostile);
}

TEST(JsonEscape, RuntimeForwarderMatches) {
  std::string a, b;
  obs::append_json_escaped(a, kHostile);
  runtime::append_json_escaped(b, kHostile);
  EXPECT_EQ(a, b);
}

TEST(SnapshotJson, ParsesAndCarriesValues) {
  obs::Registry r;
  r.counter("jobs").add(3);
  r.gauge("load").set(0.5);
  obs::Histogram& h = r.histogram("lat_us");
  h.observe(1);
  h.observe(3);
  h.observe(3);

  const runtime::JsonValue doc = parse_or_die(r.snapshot().to_json());
  const runtime::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->int_or("jobs", -1), 3);
  const runtime::JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->number_or("load", -1.0), 0.5);
  const runtime::JsonValue* hist = doc.find("histograms")->find("lat_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->int_or("count", -1), 3);
  EXPECT_EQ(hist->int_or("sum", -1), 7);
  const runtime::JsonValue* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // Sparse buckets: [le=1, count=1] and [le=3, count=2].
  ASSERT_EQ(buckets->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->arr[0].arr[0].num, 1.0);
  EXPECT_DOUBLE_EQ(buckets->arr[0].arr[1].num, 1.0);
  EXPECT_DOUBLE_EQ(buckets->arr[1].arr[0].num, 3.0);
  EXPECT_DOUBLE_EQ(buckets->arr[1].arr[1].num, 2.0);
}

TEST(SnapshotJson, HostileNamesStayValidJson) {
  obs::Registry r;
  r.counter(kHostile).add(1);
  const runtime::JsonValue doc = parse_or_die(r.snapshot().to_json());
  EXPECT_EQ(doc.find("counters")->int_or(kHostile, -1), 1);
}

TEST(PrometheusName, Sanitization) {
  EXPECT_EQ(obs::prometheus_name("csdac", "mc.chips_evaluated"),
            "csdac_mc_chips_evaluated");
  EXPECT_EQ(obs::prometheus_name("csdac", "engine.run_us"),
            "csdac_engine_run_us");
  EXPECT_EQ(obs::prometheus_name("", "7weird name!"), "_7weird_name_");
  EXPECT_EQ(obs::prometheus_name("csdac", "a\"b\nc"), "csdac_a_b_c");
}

TEST(Prometheus, GoldenExposition) {
  obs::Registry r;
  r.counter("cache.hits", "lookups served from disk").add(5);
  r.gauge("pool.load").set(1.5);
  obs::Histogram& h = r.histogram("job_us", "per-job wall time");
  h.observe(1);
  h.observe(3);
  h.observe(3);

  const std::string expected =
      "# HELP csdac_cache_hits_total lookups served from disk\n"
      "# TYPE csdac_cache_hits_total counter\n"
      "csdac_cache_hits_total 5\n"
      "# TYPE csdac_pool_load gauge\n"
      "csdac_pool_load 1.5\n"
      "# HELP csdac_job_us per-job wall time\n"
      "# TYPE csdac_job_us histogram\n"
      "csdac_job_us_bucket{le=\"0\"} 0\n"
      "csdac_job_us_bucket{le=\"1\"} 1\n"
      "csdac_job_us_bucket{le=\"3\"} 3\n"
      "csdac_job_us_bucket{le=\"+Inf\"} 3\n"
      "csdac_job_us_sum 7\n"
      "csdac_job_us_count 3\n";
  EXPECT_EQ(r.snapshot().to_prometheus(), expected);
}

TEST(ChromeTrace, ValidJsonWithNestedSpans) {
  obs::SpanCollector collector;
  obs::Tracer::global().add_sink(&collector);
  {
    obs::ScopedSpan outer("graph.run");
    outer.attr("jobs", 2);
    obs::ScopedSpan inner(kHostile);  // hostile span name must not corrupt
    inner.attr(kHostile, kHostile);
  }
  obs::Tracer::global().remove_sink(&collector);
  const auto spans = collector.take();
  ASSERT_EQ(spans.size(), 2u);

  const runtime::JsonValue doc =
      parse_or_die(obs::chrome_trace_json(spans, "unit\"test"));
  EXPECT_EQ(doc.string_or("displayTimeUnit", ""), "ms");
  const runtime::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete = 0, metadata = 0;
  const runtime::JsonValue* outer_ev = nullptr;
  const runtime::JsonValue* inner_ev = nullptr;
  for (const auto& ev : events->arr) {
    const std::string ph = ev.string_or("ph", "");
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    if (ev.string_or("name", "") == "graph.run") outer_ev = &ev;
    if (ev.string_or("name", "") == kHostile) inner_ev = &ev;
  }
  EXPECT_EQ(complete, 2);
  EXPECT_GE(metadata, 1);
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // Complete events are sorted by start time: parent first.
  EXPECT_LE(outer_ev->number_or("ts", 1e300),
            inner_ev->number_or("ts", -1e300));
  const runtime::JsonValue* args = inner_ev->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->string_or(kHostile, ""), kHostile);
  // Cross-reference: the child's parent arg matches the parent's span arg.
  EXPECT_EQ(args->int_or("parent", -1),
            outer_ev->find("args")->int_or("span", -2));
}
