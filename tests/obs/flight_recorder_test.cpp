// Flight recorder: ring semantics (most-recent-N retention, truncation of
// oversized names/ids), the seqlock write/read protocol under a
// concurrent writer storm with snapshots racing the writers (the TSan CI
// tier runs this suite), and the Chrome-trace rendering of the ring.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "runtime/json.hpp"

namespace obs = csdac::obs;
namespace runtime = csdac::runtime;

namespace {

TEST(FlightRecorder, RecordsEventsOldestFirst) {
  obs::FlightRecorder rec(16);
  rec.record(obs::FlightEventKind::kRequest, "serve.request", "t-1", 10.0,
             5.0, 3);
  rec.record(obs::FlightEventKind::kSpan, "exec.job", "t-1", 12.0, 2.0);
  rec.record(obs::FlightEventKind::kError, "bad_json", "", 20.0, 0.0);

  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name_view(), "serve.request");
  EXPECT_EQ(events[0].trace_view(), "t-1");
  EXPECT_EQ(events[0].kind, obs::FlightEventKind::kRequest);
  EXPECT_DOUBLE_EQ(events[0].start_us, 10.0);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 5.0);
  EXPECT_EQ(events[0].arg, 3);
  EXPECT_EQ(events[1].name_view(), "exec.job");
  EXPECT_EQ(events[2].name_view(), "bad_json");
  EXPECT_EQ(events[2].trace_view(), "");
  EXPECT_EQ(rec.total_recorded(), 3);
  EXPECT_EQ(rec.dropped(), 0);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  obs::FlightRecorder rec(100);
  EXPECT_EQ(rec.capacity(), 128u);
}

TEST(FlightRecorder, TruncatesOversizedNamesAndTraces) {
  obs::FlightRecorder rec(4);
  const std::string long_name(3 * obs::kFlightNameBytes, 'n');
  const std::string long_trace(3 * obs::kFlightTraceBytes, 't');
  rec.record(obs::FlightEventKind::kSpan, long_name, long_trace, 1.0, 1.0);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LE(events[0].name_view().size(), obs::kFlightNameBytes);
  EXPECT_LE(events[0].trace_view().size(), obs::kFlightTraceBytes);
  EXPECT_EQ(events[0].name_view(),
            long_name.substr(0, events[0].name_view().size()));
  EXPECT_EQ(events[0].trace_view(),
            long_trace.substr(0, events[0].trace_view().size()));
}

TEST(FlightRecorder, RingKeepsTheMostRecentEvents) {
  obs::FlightRecorder rec(8);
  for (int i = 0; i < 100; ++i) {
    rec.record(obs::FlightEventKind::kSpan, "e", "", double(i), 1.0, i);
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Single-threaded writes never drop; the survivors are exactly the
  // last ring-generation, oldest first.
  EXPECT_EQ(rec.dropped(), 0);
  EXPECT_EQ(rec.total_recorded(), 100);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].arg, 92 + i);
  }
}

TEST(FlightRecorder, ConcurrentWritersNeverTearAnEvent) {
  constexpr int kWriters = 6;
  constexpr int kPerWriter = 4000;
  obs::FlightRecorder rec(512);

  // A torn read would pair one writer's name with another's trace or
  // arg; every observed event must be internally consistent.
  const auto consistent = [](const obs::FlightEvent& ev) {
    const std::string name(ev.name_view());
    const std::string trace(ev.trace_view());
    if (name.rfind("writer-", 0) != 0) return false;
    const int t = std::stoi(name.substr(7));
    const long long i = ev.arg - 1000000LL * t;
    if (i < 0 || i >= kPerWriter) return false;
    return trace ==
           "w" + std::to_string(t) + "-" + std::to_string(i);
  };

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&rec, t] {
      const std::string name = "writer-" + std::to_string(t);
      for (int i = 0; i < kPerWriter; ++i) {
        rec.record(obs::FlightEventKind::kSpan, name,
                   "w" + std::to_string(t) + "-" + std::to_string(i),
                   double(i), 1.0, 1000000LL * t + i);
      }
    });
  }
  // Snapshots race the writers; nothing torn may ever surface.
  for (int pass = 0; pass < 50; ++pass) {
    for (const auto& ev : rec.snapshot()) {
      ASSERT_TRUE(consistent(ev))
          << ev.name_view() << " / " << ev.trace_view() << " / " << ev.arg;
    }
  }
  for (auto& th : writers) th.join();

  EXPECT_EQ(rec.total_recorded(), kWriters * kPerWriter);
  const auto final_events = rec.snapshot();
  EXPECT_LE(final_events.size(), rec.capacity());
  EXPECT_GE(static_cast<long long>(final_events.size()),
            static_cast<long long>(rec.capacity()) - rec.dropped());
  for (const auto& ev : final_events) {
    ASSERT_TRUE(consistent(ev))
        << ev.name_view() << " / " << ev.trace_view() << " / " << ev.arg;
  }
}

TEST(FlightRecorder, ChromeTraceRenderingCarriesTraceIds) {
  obs::FlightRecorder rec(16);
  rec.record(obs::FlightEventKind::kRequest, "serve.request", "t-render",
             5.0, 100.0, 2);
  rec.record(obs::FlightEventKind::kError, "bad_job", "t-render", 50.0,
             0.0);

  runtime::JsonValue doc;
  std::string err;
  ASSERT_TRUE(
      runtime::parse_json(rec.chrome_trace_json("unit-test"), doc, &err))
      << err;
  const auto* events = doc.find("traceEvents");
  ASSERT_TRUE(events && events->is_array());
  int complete = 0;
  bool saw_trace = false;
  for (const auto& ev : events->arr) {
    if (ev.string_or("ph", "") != "X") continue;
    ++complete;
    const auto* args = ev.find("args");
    ASSERT_TRUE(args);
    if (args->string_or("trace_id", "") == "t-render") saw_trace = true;
  }
  EXPECT_EQ(complete, 2);
  EXPECT_TRUE(saw_trace);
}

TEST(FlightRecorder, DumpWritesALoadableFile) {
  obs::FlightRecorder rec(16);
  rec.record(obs::FlightEventKind::kSpan, "sched.job", "t-dump", 1.0, 2.0);
  const std::string path =
      ::testing::TempDir() + "csdac_flight_dump_test.json";
  ASSERT_TRUE(rec.dump(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  runtime::JsonValue doc;
  std::string err;
  ASSERT_TRUE(runtime::parse_json(text, doc, &err)) << err;
  EXPECT_TRUE(doc.find("traceEvents"));
}

}  // namespace
