#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

namespace obs = csdac::obs;

namespace {

/// Registers a collector with the global tracer for the test's scope.
class ScopedCollector {
 public:
  ScopedCollector() { obs::Tracer::global().add_sink(&collector_); }
  ~ScopedCollector() { obs::Tracer::global().remove_sink(&collector_); }
  obs::SpanCollector& operator*() { return collector_; }
  obs::SpanCollector* operator->() { return &collector_; }

 private:
  obs::SpanCollector collector_;
};

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& spans,
                                 std::string_view name) {
  const auto it = std::find_if(
      spans.begin(), spans.end(),
      [name](const obs::SpanRecord& s) { return s.name == name; });
  return it == spans.end() ? nullptr : &*it;
}

}  // namespace

TEST(Span, InactiveTracerEmitsNothingAndIdIsZero) {
  // No sinks registered: spans must be free and invisible.
  obs::ScopedSpan span("orphan");
  span.attr("k", "v");
  EXPECT_EQ(span.id(), 0u);
  EXPECT_FALSE(obs::Tracer::global().active());
}

TEST(Span, NestingViaThreadLocalStack) {
  ScopedCollector sink;
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    obs::ScopedSpan outer("outer");
    outer_id = outer.id();
    ASSERT_NE(outer_id, 0u);
    EXPECT_EQ(obs::Tracer::current_span_id(), outer_id);
    {
      obs::ScopedSpan inner("inner");
      inner_id = inner.id();
      EXPECT_EQ(obs::Tracer::current_span_id(), inner_id);
    }
    EXPECT_EQ(obs::Tracer::current_span_id(), outer_id);
  }
  EXPECT_EQ(obs::Tracer::current_span_id(), 0u);

  const auto spans = sink->take();
  ASSERT_EQ(spans.size(), 2u);
  // Children finish (and are emitted) before their parents.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].id, inner_id);
  EXPECT_EQ(spans[0].parent, outer_id);
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 0);
  // The parent's interval covers the child's.
  EXPECT_LE(spans[1].start_us, spans[0].start_us);
  EXPECT_GE(spans[1].start_us + spans[1].dur_us,
            spans[0].start_us + spans[0].dur_us);
}

TEST(Span, AttributesAreRecordedInOrder) {
  ScopedCollector sink;
  {
    obs::ScopedSpan span("attrs");
    span.attr("s", "text").attr("i", std::int64_t{42}).attr("d", 1.5);
  }
  const auto spans = sink->take();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 3u);
  EXPECT_EQ(spans[0].attrs[0].first, "s");
  EXPECT_EQ(spans[0].attrs[0].second, "text");
  EXPECT_EQ(spans[0].attrs[1].second, "42");
  EXPECT_EQ(spans[0].attrs[2].second, "1.5");
}

TEST(Span, CrossThreadParentByExplicitId) {
  ScopedCollector sink;
  std::uint64_t parent_id = 0, child_id = 0;
  {
    obs::ScopedSpan parent("dispatcher");
    parent_id = parent.id();
    std::thread worker([&child_id, parent_id] {
      obs::ScopedSpan child("worker", parent_id);
      child_id = child.id();
    });
    worker.join();
  }
  const auto spans = sink->take();
  const obs::SpanRecord* child = find_span(spans, "worker");
  const obs::SpanRecord* parent = find_span(spans, "dispatcher");
  ASSERT_NE(child, nullptr);
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(child->id, child_id);
  EXPECT_EQ(child->parent, parent_id);
  EXPECT_NE(child->tid, parent->tid);
}

TEST(Span, ConcurrentEmittersProduceUniqueIdsAndConsistentNesting) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  ScopedCollector sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::ScopedSpan outer("outer");
        outer.attr("thread", t);
        obs::ScopedSpan inner("inner");
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto spans = sink->take();
  ASSERT_EQ(spans.size(), 2u * kThreads * kSpansPerThread);
  std::map<std::uint64_t, const obs::SpanRecord*> by_id;
  for (const auto& s : spans) {
    ASSERT_NE(s.id, 0u);
    ASSERT_TRUE(by_id.emplace(s.id, &s).second) << "duplicate span id";
  }
  for (const auto& s : spans) {
    if (s.name != "inner") continue;
    const auto parent = by_id.find(s.parent);
    ASSERT_NE(parent, by_id.end()) << "inner span with unknown parent";
    EXPECT_EQ(parent->second->name, "outer");
    // Nesting never crosses threads here: parent on the same track.
    EXPECT_EQ(parent->second->tid, s.tid);
  }
}

TEST(Span, SinkRemovalStopsDelivery) {
  obs::SpanCollector collector;
  obs::Tracer::global().add_sink(&collector);
  { obs::ScopedSpan span("seen"); }
  obs::Tracer::global().remove_sink(&collector);
  { obs::ScopedSpan span("unseen"); }
  const auto spans = collector.take();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "seen");
}
