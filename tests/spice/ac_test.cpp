#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/measures.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::spice {
namespace {

using namespace csdac::units;

TEST(Ac, RcLowPassMagnitudeAndPhase) {
  Circuit ckt;
  const int in = ckt.node("in");
  const int out = ckt.node("out");
  const double r = 1000.0, c = 159.154943e-12;  // f_3db ~ 1 MHz
  ckt.add(std::make_unique<VoltageSource>("vin", in, 0, 0.0, /*ac=*/1.0));
  ckt.add(std::make_unique<Resistor>("r1", in, out, r));
  ckt.add(std::make_unique<Capacitor>("c1", out, 0, c));
  solve_dc(ckt);
  const double f3db = 1.0 / (2.0 * std::numbers::pi * r * c);
  const AcResult res = ac_analysis(ckt, {f3db / 100.0, f3db, f3db * 100.0});
  // Low frequency: |H| ~ 1.
  EXPECT_NEAR(std::abs(res.v(0, out)), 1.0, 1e-3);
  // At the pole: |H| = 1/sqrt(2), phase -45 deg.
  EXPECT_NEAR(std::abs(res.v(1, out)), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(std::arg(res.v(1, out)) * 180.0 / std::numbers::pi, -45.0, 0.5);
  // Two decades above: -40 dB.
  EXPECT_NEAR(20.0 * std::log10(std::abs(res.v(2, out))), -40.0, 0.1);
}

TEST(Ac, LogSpaceGrid) {
  const auto f = log_space(1.0, 1000.0, 10);
  EXPECT_DOUBLE_EQ(f.front(), 1.0);
  EXPECT_DOUBLE_EQ(f.back(), 1000.0);
  EXPECT_EQ(f.size(), 31u);
  EXPECT_THROW(log_space(0.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(log_space(10.0, 1.0, 5), std::invalid_argument);
}

TEST(Ac, CommonSourceGainMatchesGmTimesRout) {
  // NMOS common-source amplifier: |Av| = gm * (rd || ro).
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int g = ckt.node("g");
  const int d = ckt.node("d");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>("vg", g, 0, 0.8, /*ac=*/1.0));
  ckt.add(std::make_unique<Resistor>("rd", vdd, d, 10000.0));
  auto* m = ckt.add(std::make_unique<Mosfet>(
      "m1", tech::generic_035um().nmos, d, g, 0, 0,
      Mosfet::Geometry{10 * um, 1 * um}));
  solve_dc(ckt);
  const AcResult res = ac_analysis(ckt, {1e3});
  const double gm = m->op().gm;
  const double gds = m->op().gds;
  const double gain_expected = gm / (1.0 / 10000.0 + gds);
  EXPECT_NEAR(std::abs(res.v(0, d)), gain_expected, gain_expected * 1e-6);
  // Inverting stage: phase ~ 180 deg.
  EXPECT_NEAR(std::abs(std::arg(res.v(0, d))) * 180.0 / std::numbers::pi,
              180.0, 1e-6);
}

TEST(Ac, ImpedanceProbeReadsParallelRc) {
  // Well-defined impedance: R || C. |Z| = R/sqrt(1+(wRC)^2).
  Circuit ckt;
  const int n = ckt.node("n");
  const double r = 1e4, c = 1e-9;
  ckt.add(std::make_unique<Resistor>("r1", n, 0, r));
  ckt.add(std::make_unique<Capacitor>("c1", n, 0, c));
  solve_dc(ckt);
  const double fp = 1.0 / (2.0 * std::numbers::pi * r * c);
  const auto z = impedance_probe(ckt, n, {fp / 100.0, fp});
  EXPECT_NEAR(std::abs(z[0]), r, 0.01 * r);
  EXPECT_NEAR(std::abs(z[1]), r / std::sqrt(2.0), 0.01 * r);
}

// DC output impedance by finite difference of the forced output voltage:
// Rout = dV/dI from the branch current of a voltage source on the output.
double rout_finite_difference(bool cascode, Mosfet::OpPoint* cs_op,
                              Mosfet::OpPoint* cas_op) {
  auto solve_at = [&](double vout, Mosfet::OpPoint* cs, Mosfet::OpPoint* cas) {
    Circuit ckt;
    const int gcs = ckt.node("gcs");
    const int out = ckt.node("out");
    ckt.add(std::make_unique<VoltageSource>("vgcs", gcs, 0, 0.9));
    auto* vout_src =
        ckt.add(std::make_unique<VoltageSource>("vout", out, 0, vout));
    Mosfet* mcs = nullptr;
    Mosfet* mcas = nullptr;
    if (!cascode) {
      mcs = ckt.add(std::make_unique<Mosfet>(
          "mcs", tech::generic_035um().nmos, out, gcs, 0, 0,
          Mosfet::Geometry{40 * um, 2 * um}));
    } else {
      const int mid = ckt.node("mid");
      const int gcas = ckt.node("gcas");
      ckt.add(std::make_unique<VoltageSource>("vgcas", gcas, 0, 1.6));
      mcs = ckt.add(std::make_unique<Mosfet>(
          "mcs", tech::generic_035um().nmos, mid, gcs, 0, 0,
          Mosfet::Geometry{40 * um, 2 * um}));
      mcas = ckt.add(std::make_unique<Mosfet>(
          "mcas", tech::generic_035um().nmos, out, gcas, mid, 0,
          Mosfet::Geometry{40 * um, 0.7 * um}));
    }
    const Solution sol = solve_dc(ckt);
    if (cs) *cs = mcs->op();
    if (cas && mcas) *cas = mcas->op();
    return sol.branch_current(*vout_src);
  };
  const double i1 = solve_at(2.0, cs_op, cas_op);
  const double i2 = solve_at(2.2, nullptr, nullptr);
  // The MNA branch current flows +terminal -> -terminal through the source,
  // i.e. it is MINUS the current injected into the drain node.
  return 0.2 / (i1 - i2);
}

TEST(Ac, CascodeMultipliesOutputImpedance) {
  Mosfet::OpPoint cs_simple{}, cs_cas{}, cas{};
  const double r_simple = rout_finite_difference(false, &cs_simple, nullptr);
  const double r_cascode = rout_finite_difference(true, &cs_cas, &cas);
  // The simple source's Rout is its ro = 1/gds.
  EXPECT_NEAR(r_simple, 1.0 / cs_simple.gds, 0.05 / cs_simple.gds);
  // The cascode multiplies it by ~ (gm+gmb)*ro_cas.
  const double ro_cas = 1.0 / cas.gds;
  const double expected =
      ro_cas + (1.0 + (cas.gm + cas.gmb) * ro_cas) / cs_cas.gds;
  EXPECT_NEAR(r_cascode, expected, 0.10 * expected);
  EXPECT_GT(r_cascode, 10.0 * r_simple);
}

}  // namespace
}  // namespace csdac::spice
