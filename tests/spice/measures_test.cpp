#include "spice/measures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

namespace csdac::spice {
namespace {

std::pair<std::vector<double>, std::vector<double>> exp_settle(double tau,
                                                               double vf) {
  std::vector<double> t, v;
  for (int i = 0; i <= 1000; ++i) {
    t.push_back(i * tau / 50.0);
    v.push_back(vf * (1.0 - std::exp(-t.back() / tau)));
  }
  return {t, v};
}

TEST(Measures, SettlingTimeOfExponential) {
  // v = 1 - exp(-t/tau) enters the 1% band at t = tau * ln(100).
  const auto [t, v] = exp_settle(1e-9, 1.0);
  const double ts = settling_time(t, v, 1.0, 0.01);
  EXPECT_NEAR(ts, 1e-9 * std::log(100.0), 0.05e-9);
}

TEST(Measures, SettlingTimeZeroIfAlwaysInBand) {
  std::vector<double> t = {0.0, 1.0, 2.0};
  std::vector<double> v = {0.999, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(settling_time(t, v, 1.0, 0.01), 0.0);
}

TEST(Measures, SettlingTimeNeverSettles) {
  std::vector<double> t = {0.0, 1.0, 2.0};
  std::vector<double> v = {0.0, 0.5, 0.6};
  EXPECT_DOUBLE_EQ(settling_time(t, v, 1.0, 0.01), 2.0);
}

TEST(Measures, SettlingTimeErrors) {
  std::vector<double> t = {0.0, 1.0};
  std::vector<double> v = {0.0};
  EXPECT_THROW(settling_time(t, v, 1.0, 0.1), std::invalid_argument);
  std::vector<double> v2 = {0.0, 1.0};
  EXPECT_THROW(settling_time(t, v2, 1.0, 0.0), std::invalid_argument);
}

TEST(Measures, CrossingTimeInterpolates) {
  std::vector<double> t = {0.0, 1.0, 2.0};
  std::vector<double> v = {0.0, 1.0, 2.0};
  EXPECT_NEAR(crossing_time(t, v, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(crossing_time(t, v, 1.5), 1.5, 1e-12);
  EXPECT_LT(crossing_time(t, v, 5.0), 0.0);  // never crossed
}

TEST(Measures, Minus3DbOfSinglePole) {
  // H = 1/(1 + j f/fp) sampled on a log grid around fp = 1 MHz.
  const double fp = 1e6;
  std::vector<double> freqs;
  std::vector<std::complex<double>> h;
  for (int i = 0; i <= 60; ++i) {
    const double f = 1e4 * std::pow(10.0, i / 15.0);
    freqs.push_back(f);
    h.push_back(1.0 / std::complex<double>(1.0, f / fp));
  }
  const double f3 = minus3db_frequency(freqs, h);
  EXPECT_NEAR(f3, fp, 0.03 * fp);
}

TEST(Measures, Minus3DbNotReached) {
  std::vector<double> freqs = {1.0, 10.0, 100.0};
  std::vector<std::complex<double>> h = {{1.0, 0.0}, {0.99, 0.0}, {0.98, 0.0}};
  EXPECT_LT(minus3db_frequency(freqs, h), 0.0);
}

}  // namespace
}  // namespace csdac::spice
