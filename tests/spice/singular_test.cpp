// Regression tests for structured singular-matrix diagnostics: a floating
// node and a voltage-source loop must surface as SingularSystemError
// naming the offending unknown — on BOTH linear-solver backends — instead
// of a generic "no convergence" message.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"

namespace csdac::spice {
namespace {

NewtonOptions strict(LinearSolverKind kind) {
  NewtonOptions o;
  o.solver = kind;
  o.sparse_threshold = 1;
  o.gmin = 0.0;  // no shunt rescue: expose the structural singularity
  o.gmin_stepping = false;
  o.source_stepping = false;
  return o;
}

const char* kind_tag(LinearSolverKind k) {
  return k == LinearSolverKind::kDense ? "dense" : "sparse";
}

TEST(SingularDiagnostics, FloatingNodeIsNamed) {
  for (const auto kind :
       {LinearSolverKind::kDense, LinearSolverKind::kSparse}) {
    // "mid" connects only through a capacitor, which stamps nothing in DC:
    // its MNA row is identically zero.
    Circuit ckt;
    const int in = ckt.node("in");
    const int mid = ckt.node("float_me");
    ckt.add(std::make_unique<VoltageSource>("v1", in, 0, 1.0));
    ckt.add(std::make_unique<Resistor>("r1", in, 0, 1e3));
    ckt.add(std::make_unique<Capacitor>("c1", in, mid, 1e-12));
    try {
      solve_dc(ckt, strict(kind));
      FAIL() << kind_tag(kind) << ": expected SingularSystemError";
    } catch (const SingularSystemError& e) {
      EXPECT_EQ(e.row(), static_cast<std::size_t>(mid - 1)) << kind_tag(kind);
      EXPECT_EQ(e.unknown_name(), "node 'float_me'") << kind_tag(kind);
      EXPECT_NE(std::string(e.what()).find("float_me"), std::string::npos)
          << kind_tag(kind);
      EXPECT_NE(std::string(e.what()).find("floating node"),
                std::string::npos)
          << kind_tag(kind) << ": message should hint at the cause";
    }
  }
}

TEST(SingularDiagnostics, VoltageSourceLoopNamesABranch) {
  for (const auto kind :
       {LinearSolverKind::kDense, LinearSolverKind::kSparse}) {
    // Two identical voltage sources in parallel: their branch equations
    // are linearly dependent, so elimination dies on a branch row.
    Circuit ckt;
    const int a = ckt.node("a");
    ckt.add(std::make_unique<VoltageSource>("v1", a, 0, 1.0));
    ckt.add(std::make_unique<VoltageSource>("v2", a, 0, 1.0));
    ckt.add(std::make_unique<Resistor>("r1", a, 0, 1e3));
    try {
      solve_dc(ckt, strict(kind));
      FAIL() << kind_tag(kind) << ": expected SingularSystemError";
    } catch (const SingularSystemError& e) {
      // Which of the two dependent branches fails the pivot is a backend
      // detail; either way it must be reported as a branch, not a node.
      EXPECT_GE(e.row(), static_cast<std::size_t>(ckt.num_nodes() - 1))
          << kind_tag(kind);
      EXPECT_EQ(e.unknown_name().rfind("branch of device 'v", 0), 0u)
          << kind_tag(kind) << ": got " << e.unknown_name();
    }
  }
}

TEST(SingularDiagnostics, SingularIsStillAConvergenceError) {
  // Existing catch sites use ConvergenceError; the refinement must slot in.
  Circuit ckt;
  const int in = ckt.node("in");
  const int mid = ckt.node("m");
  ckt.add(std::make_unique<VoltageSource>("v1", in, 0, 1.0));
  ckt.add(std::make_unique<Resistor>("r1", in, 0, 1e3));
  ckt.add(std::make_unique<Capacitor>("c1", in, mid, 1e-12));
  EXPECT_THROW(solve_dc(ckt, strict(LinearSolverKind::kDense)),
               ConvergenceError);
}

TEST(SingularDiagnostics, GminRescuesTheFloatingNode) {
  // With the default shunt the same circuit solves fine — the diagnostics
  // only fire when the matrix is genuinely unsolvable.
  Circuit ckt;
  const int in = ckt.node("in");
  const int mid = ckt.node("m");
  ckt.add(std::make_unique<VoltageSource>("v1", in, 0, 1.0));
  ckt.add(std::make_unique<Resistor>("r1", in, 0, 1e3));
  ckt.add(std::make_unique<Capacitor>("c1", in, mid, 1e-12));
  for (const auto kind :
       {LinearSolverKind::kDense, LinearSolverKind::kSparse}) {
    NewtonOptions o;
    o.solver = kind;
    o.sparse_threshold = 1;
    const Solution sol = solve_dc(ckt, o);
    EXPECT_NEAR(sol.v(in), 1.0, 1e-9) << kind_tag(kind);
  }
}

}  // namespace
}  // namespace csdac::spice
