// Sparse-vs-dense equivalence: every analysis (DC, sweep, transient, AC)
// run with LinearSolverKind::kSparse must agree with the dense baseline
// within 1e-9 on every example circuit, and — because batched evaluation
// and refactorization are bit-identical replays of the scalar/dense math —
// take exactly the same number of Newton iterations with warm-start
// disabled. Also pins the batched MOSFET evaluator to the scalar
// Mosfet::evaluate() results device by device.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sizer.hpp"
#include "dacgen/dacgen.hpp"
#include "spice/batch.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::spice {
namespace {

using namespace csdac::units;
using tech::generic_035um;

constexpr double kTol = 1e-9;

// --- Example circuits ------------------------------------------------------

std::unique_ptr<Circuit> resistor_ladder() {
  auto ckt = std::make_unique<Circuit>();
  int prev = ckt->node("in");
  ckt->add(std::make_unique<VoltageSource>("v1", prev, 0, 3.3));
  for (int i = 0; i < 12; ++i) {
    const int next = ckt->node("n" + std::to_string(i));
    ckt->add(std::make_unique<Resistor>("r" + std::to_string(i), prev, next,
                                        100.0 + 10.0 * i));
    ckt->add(std::make_unique<Resistor>("rg" + std::to_string(i), next, 0,
                                        1e3));
    prev = next;
  }
  return ckt;
}

std::unique_ptr<Circuit> rc_pulse() {
  auto ckt = std::make_unique<Circuit>();
  const int in = ckt->node("in");
  const int out = ckt->node("out");
  ckt->add(std::make_unique<VoltageSource>(
      "v1", in, 0,
      std::make_unique<PulseWave>(0.0, 1.0, 1e-9, 1e-10, 1e-10, 5e-9)));
  ckt->add(std::make_unique<Resistor>("r1", in, out, 1e3));
  ckt->add(std::make_unique<Capacitor>("c1", out, 0, 1e-12));
  return ckt;
}

std::unique_ptr<Circuit> common_source_amp() {
  auto ckt = std::make_unique<Circuit>();
  const int vdd = ckt->node("vdd");
  const int g = ckt->node("g");
  const int d = ckt->node("d");
  ckt->add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt->add(std::make_unique<VoltageSource>("vin", g, 0, 1.2, 1.0));
  ckt->add(std::make_unique<Resistor>("rd", vdd, d, 10e3));
  ckt->add(std::make_unique<Mosfet>("m1", generic_035um().nmos, d, g, 0, 0,
                                    Mosfet::Geometry{20 * um, 0.35 * um}));
  ckt->add(std::make_unique<Capacitor>("cl", d, 0, 100e-15));
  return ckt;
}

std::unique_ptr<Circuit> parsed_netlist() {
  auto ckt = parse_netlist(R"(
* five-transistor OTA-ish stack exercising the parser path
VDD vdd 0 3.3
VIN inp 0 1.5
VB  bias 0 1.0
M1 x inp mid 0 NMOS W=10u L=1u
M2 y bias mid 0 NMOS W=10u L=1u
M3 x x vdd vdd PMOS W=20u L=1u
M4 y x vdd vdd PMOS W=20u L=1u
M5 mid bias 0 0 NMOS W=20u L=1u
R1 y 0 100k
)",
                           generic_035um());
  return ckt;
}

// 6-bit transistor-level DAC at mid code: the realistic array-scale case
// (enough unknowns to cross the kAuto threshold).
dacgen::TransistorLevelDac::BuiltCircuit dac_circuit() {
  core::DacSpec spec;
  spec.nbits = 6;
  spec.binary_bits = 2;
  core::CellSizer sizer(generic_035um().nmos, spec);
  const core::SizedCell cell =
      sizer.size_cascode(0.25, 0.2, 0.2, core::MarginPolicy::kStatistical);
  dacgen::TransistorLevelDac dac(spec, cell, generic_035um().nmos);
  return dac.build(31);
}

struct NamedCircuit {
  const char* name;
  std::function<std::unique_ptr<Circuit>()> build;
};

const NamedCircuit kDcCircuits[] = {
    {"resistor_ladder", resistor_ladder},
    {"common_source_amp", common_source_amp},
    {"parsed_netlist", parsed_netlist},
};

NewtonOptions with_solver(LinearSolverKind kind, SolveStats* stats) {
  NewtonOptions o;
  o.solver = kind;
  o.sparse_threshold = 1;  // kSparse/kDense are explicit; threshold moot
  o.stats = stats;
  return o;
}

// --- DC --------------------------------------------------------------------

TEST(SparseDenseEquivalence, DcOnExampleCircuits) {
  for (const auto& nc : kDcCircuits) {
    auto a = nc.build();
    auto b = nc.build();
    SolveStats sd, ss;
    const Solution dense = solve_dc(*a, with_solver(LinearSolverKind::kDense,
                                                    &sd));
    const Solution sparse = solve_dc(
        *b, with_solver(LinearSolverKind::kSparse, &ss));
    ASSERT_EQ(dense.x.size(), sparse.x.size()) << nc.name;
    for (std::size_t i = 0; i < dense.x.size(); ++i) {
      EXPECT_NEAR(dense.x[i], sparse.x[i], kTol) << nc.name << " x[" << i
                                                 << "]";
    }
    EXPECT_EQ(sd.newton_iters, ss.newton_iters)
        << nc.name << ": identical Newton trajectories expected";
    EXPECT_GT(sd.dense_solves, 0) << nc.name;
    EXPECT_EQ(ss.dense_solves, 0) << nc.name;
    EXPECT_EQ(ss.factorizations, 1)
        << nc.name << ": one symbolic factorization, rest replays";
  }
}

TEST(SparseDenseEquivalence, DcOnDacArray) {
  auto a = dac_circuit();
  auto b = dac_circuit();
  SolveStats sd, ss;
  const Solution dense =
      solve_dc(*a.circuit, with_solver(LinearSolverKind::kDense, &sd));
  const Solution sparse =
      solve_dc(*b.circuit, with_solver(LinearSolverKind::kSparse, &ss));
  ASSERT_EQ(dense.x.size(), sparse.x.size());
  for (std::size_t i = 0; i < dense.x.size(); ++i) {
    EXPECT_NEAR(dense.x[i], sparse.x[i], kTol) << "x[" << i << "]";
  }
  EXPECT_EQ(sd.newton_iters, ss.newton_iters);
  EXPECT_NEAR(dense.v(a.out_p), sparse.v(b.out_p), kTol);
}

// --- DC sweep --------------------------------------------------------------

TEST(SparseDenseEquivalence, DcSweep) {
  auto a = common_source_amp();
  auto b = common_source_amp();
  auto* va = static_cast<VoltageSource*>(a->find_device("vin"));
  auto* vb = static_cast<VoltageSource*>(b->find_device("vin"));
  ASSERT_NE(va, nullptr);
  ASSERT_NE(vb, nullptr);
  SolveStats sd, ss;
  const auto dense = dc_sweep(*a, *va, 0.5, 2.5, 21,
                              with_solver(LinearSolverKind::kDense, &sd));
  const auto sparse = dc_sweep(*b, *vb, 0.5, 2.5, 21,
                               with_solver(LinearSolverKind::kSparse, &ss));
  ASSERT_EQ(dense.size(), sparse.size());
  for (std::size_t p = 0; p < dense.size(); ++p) {
    for (std::size_t i = 0; i < dense[p].x.size(); ++i) {
      EXPECT_NEAR(dense[p].x[i], sparse[p].x[i], kTol)
          << "point " << p << " x[" << i << "]";
    }
  }
  EXPECT_EQ(sd.newton_iters, ss.newton_iters);
  // The whole sweep shares one pattern: a single symbolic factorization.
  EXPECT_EQ(ss.factorizations, 1);
  EXPECT_GT(ss.refactorizations, ss.factorizations);
}

// --- Transient -------------------------------------------------------------

TEST(SparseDenseEquivalence, TransientRcAndMosfet) {
  for (const auto build : {&rc_pulse, &common_source_amp}) {
    auto a = (*build)();
    auto b = (*build)();
    SolveStats sd, ss;
    TranOptions od, os;
    od.newton = with_solver(LinearSolverKind::kDense, &sd);
    os.newton = with_solver(LinearSolverKind::kSparse, &ss);
    const auto dense = transient(*a, 1e-10, 3e-9, od);
    const auto sparse = transient(*b, 1e-10, 3e-9, os);
    ASSERT_EQ(dense.time.size(), sparse.time.size());
    for (std::size_t s = 0; s < dense.time.size(); ++s) {
      EXPECT_EQ(dense.time[s], sparse.time[s]);
      for (std::size_t i = 0; i < dense.values[s].size(); ++i) {
        EXPECT_NEAR(dense.values[s][i], sparse.values[s][i], kTol)
            << "step " << s << " x[" << i << "]";
      }
    }
    EXPECT_EQ(sd.newton_iters, ss.newton_iters);
    // DC pattern + capacitor companions joining at the first step: at most
    // two symbolic factorizations over the whole waveform.
    EXPECT_LE(ss.factorizations, 2);
  }
}

TEST(TranResult, BranchWaveformMirrorsNodeWaveform) {
  auto ckt = rc_pulse();
  const auto res = transient(*ckt, 1e-10, 2e-9);
  const auto* v1 = ckt->find_device("v1");
  ASSERT_NE(v1, nullptr);
  const auto vw = res.node_waveform(ckt->find_node("out"));
  const auto iw = res.branch_waveform(*v1);
  ASSERT_EQ(vw.size(), res.time.size());
  ASSERT_EQ(iw.size(), res.time.size());
  for (std::size_t s = 0; s < res.time.size(); ++s) {
    EXPECT_EQ(vw[s], res.v(s, ckt->find_node("out")));
    EXPECT_EQ(iw[s], res.branch_current(s, *v1));
  }
}

// --- AC --------------------------------------------------------------------

TEST(SparseDenseEquivalence, AcSweep) {
  auto a = common_source_amp();
  auto b = common_source_amp();
  solve_dc(*a);
  solve_dc(*b);
  const auto freqs = log_space(1e3, 1e9, 5);
  AcOptions od, os;
  od.solver = LinearSolverKind::kDense;
  os.solver = LinearSolverKind::kSparse;
  os.sparse_threshold = 1;
  SolveStats ss;
  os.stats = &ss;
  const auto dense = ac_analysis(*a, freqs, od);
  const auto sparse = ac_analysis(*b, freqs, os);
  ASSERT_EQ(dense.freq.size(), sparse.freq.size());
  const int out = a->find_node("d");
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_NEAR(std::abs(dense.v(i, out) - sparse.v(i, out)), 0.0, kTol)
        << "f = " << freqs[i];
  }
  // One symbolic factorization for the whole frequency grid.
  EXPECT_EQ(ss.factorizations, 1);
  EXPECT_EQ(ss.refactorizations,
            static_cast<long>(freqs.size()) - ss.factorizations);

  const auto* vin = a->find_device("vin");
  ASSERT_NE(vin, nullptr);
  const auto bw = dense.branch_waveform(*vin);
  ASSERT_EQ(bw.size(), freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_EQ(bw[i], dense.branch_current(i, *vin));
  }
}

// --- Batched evaluator bit-identity ---------------------------------------

TEST(BatchedMosfets, BitIdenticalToScalarEvaluate) {
  auto built = dac_circuit();
  Circuit& ckt = *built.circuit;
  const Solution sol = solve_dc(ckt);

  EvalContext ctx;
  ctx.x = &sol.x;
  MosfetBatchSet batch(ckt);
  ASSERT_FALSE(batch.empty());
  batch.evaluate(ctx);

  int checked = 0;
  for (const auto& dev : ckt.devices()) {
    const auto* mos = dynamic_cast<const Mosfet*>(dev.get());
    if (mos == nullptr) continue;
    const Mosfet::Eval* be = batch.eval_for(dev.get());
    ASSERT_NE(be, nullptr) << mos->name();
    const Mosfet::Eval se = mos->evaluate(ctx);
    EXPECT_EQ(be->id, se.id) << mos->name();
    EXPECT_EQ(be->gm, se.gm) << mos->name();
    EXPECT_EQ(be->gds, se.gds) << mos->name();
    EXPECT_EQ(be->gmb, se.gmb) << mos->name();
    EXPECT_EQ(be->eff_d, se.eff_d) << mos->name();
    EXPECT_EQ(be->eff_s, se.eff_s) << mos->name();
    EXPECT_EQ(be->region, se.region) << mos->name();
    ++checked;
  }
  EXPECT_GT(checked, 50) << "the 6-bit array should batch dozens of devices";
}

TEST(BatchedMosfets, MismatchFlowsThroughBatches) {
  auto built = dac_circuit();
  Circuit& ckt = *built.circuit;
  // Perturb a couple of devices so lanes within a group diverge.
  int hit = 0;
  for (const auto& dev : ckt.devices()) {
    auto* mos = dynamic_cast<Mosfet*>(dev.get());
    if (mos == nullptr) continue;
    mos->set_mismatch(1e-3 * (hit % 5), 1.0 + 1e-3 * (hit % 3));
    ++hit;
  }
  const Solution sol = solve_dc(ckt);
  EvalContext ctx;
  ctx.x = &sol.x;
  MosfetBatchSet batch(ckt);
  batch.evaluate(ctx);
  for (const auto& dev : ckt.devices()) {
    const auto* mos = dynamic_cast<const Mosfet*>(dev.get());
    if (mos == nullptr) continue;
    const Mosfet::Eval* be = batch.eval_for(dev.get());
    ASSERT_NE(be, nullptr);
    const Mosfet::Eval se = mos->evaluate(ctx);
    EXPECT_EQ(be->id, se.id) << mos->name();
    EXPECT_EQ(be->gm, se.gm) << mos->name();
  }
}

// --- Warm start ------------------------------------------------------------

TEST(WarmStart, ReducesNewtonIterationsOnNearbySolve) {
  auto built = dac_circuit();
  Circuit& ckt = *built.circuit;

  SolverContext shared;
  SolveStats cold;
  NewtonOptions o = with_solver(LinearSolverKind::kSparse, &cold);
  o.context = &shared;
  const Solution first = solve_dc(ckt, o);

  // Nudge every current source's mismatch slightly: the previous solution
  // is an excellent seed.
  for (const auto& dev : ckt.devices()) {
    auto* mos = dynamic_cast<Mosfet*>(dev.get());
    if (mos != nullptr) mos->set_mismatch(1e-4, 1.0001);
  }
  SolveStats warm;
  o.stats = &warm;
  o.x0 = &first.x;
  const Solution second = solve_dc(ckt, o);
  EXPECT_EQ(warm.warm_starts, 1);
  EXPECT_EQ(warm.warm_start_hits, 1);
  EXPECT_LT(warm.newton_iters, cold.newton_iters)
      << "warm start should converge in fewer iterations";
  // And no fresh symbolic factorization: the shared context's pattern and
  // pivot order are replayed numerically.
  EXPECT_EQ(warm.factorizations, 0);
  EXPECT_GT(warm.refactorizations, 0);
  EXPECT_EQ(second.x.size(), first.x.size());
}

}  // namespace
}  // namespace csdac::spice
