#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::spice {
namespace {

using namespace csdac::units;

// RC low-pass driven by a step: v(t) = V*(1 - exp(-t/RC)).
struct RcStep {
  Circuit ckt;
  int out = 0;
  double r = 1000.0;
  double c = 1e-9;  // tau = 1 us

  RcStep() {
    const int in = ckt.node("in");
    out = ckt.node("out");
    ckt.add(std::make_unique<VoltageSource>(
        "vin", in, 0,
        std::make_unique<PulseWave>(0.0, 1.0, /*td=*/0.0, /*tr=*/1e-12,
                                    /*tf=*/1e-12, /*pw=*/1.0)));
    ckt.add(std::make_unique<Resistor>("r1", in, out, r));
    ckt.add(std::make_unique<Capacitor>("c1", out, 0, c));
  }
};

TEST(Tran, RcStepMatchesAnalytic) {
  RcStep f;
  const double tau = f.r * f.c;
  const TranResult res = transient(f.ckt, tau / 100.0, 5.0 * tau);
  ASSERT_GT(res.time.size(), 100u);
  for (std::size_t i = 0; i < res.time.size(); ++i) {
    const double expected = 1.0 - std::exp(-res.time[i] / tau);
    EXPECT_NEAR(res.v(i, f.out), expected, 2e-3)
        << "t = " << res.time[i];
  }
}

TEST(Tran, RcBackwardEulerAlsoConverges) {
  RcStep f;
  const double tau = f.r * f.c;
  TranOptions opts;
  opts.integ = Integrator::kBackwardEuler;
  const TranResult res = transient(f.ckt, tau / 200.0, 5.0 * tau, opts);
  const double v_end = res.v(res.time.size() - 1, f.out);
  EXPECT_NEAR(v_end, 1.0 - std::exp(-5.0), 5e-3);
}

TEST(Tran, TrapezoidalBeatsBackwardEulerAccuracy) {
  // Same coarse step; trapezoidal (2nd order) must end closer to the
  // analytic value than BE (1st order).
  const double tau = 1e-6;
  auto run = [&](Integrator integ) {
    RcStep f;
    TranOptions opts;
    opts.integ = integ;
    const TranResult res = transient(f.ckt, tau / 10.0, 3.0 * tau, opts);
    const double expected = 1.0 - std::exp(-res.time.back() / tau);
    return std::abs(res.v(res.time.size() - 1, f.out) - expected);
  };
  EXPECT_LT(run(Integrator::kTrapezoidal), run(Integrator::kBackwardEuler));
}

TEST(Tran, InitialConditionFromDc) {
  // DC-biased divider with a cap: transient must start at the DC solution
  // and stay there (no sources move).
  Circuit ckt;
  const int a = ckt.node("a");
  ckt.add(std::make_unique<VoltageSource>("v1", ckt.node("in"), 0, 2.0));
  ckt.add(std::make_unique<Resistor>("r1", ckt.find_node("in"), a, 1000.0));
  ckt.add(std::make_unique<Resistor>("r2", a, 0, 1000.0));
  ckt.add(std::make_unique<Capacitor>("c1", a, 0, 1e-9));
  const TranResult res = transient(ckt, 1e-7, 1e-5);
  for (std::size_t i = 0; i < res.time.size(); ++i) {
    EXPECT_NEAR(res.v(i, a), 1.0, 1e-9);
  }
}

TEST(Tran, SinSourceAmplitudePreserved) {
  // Pure sine through a resistor: no dynamics, waveform reproduced exactly.
  Circuit ckt;
  const int in = ckt.node("in");
  ckt.add(std::make_unique<VoltageSource>(
      "vin", in, 0, std::make_unique<SinWave>(0.0, 1.0, 1e6)));
  ckt.add(std::make_unique<Resistor>("r1", in, 0, 50.0));
  const TranResult res = transient(ckt, 1e-9, 2e-6);
  double vmax = -1e9, vmin = 1e9;
  for (std::size_t i = 0; i < res.time.size(); ++i) {
    vmax = std::max(vmax, res.v(i, in));
    vmin = std::min(vmin, res.v(i, in));
  }
  EXPECT_NEAR(vmax, 1.0, 1e-4);
  EXPECT_NEAR(vmin, -1.0, 1e-4);
}

TEST(Tran, MosfetInverterSwitches) {
  // Resistor-loaded NMOS inverter driven by a pulse: output must swing
  // from high to low when the gate goes high.
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int g = ckt.node("g");
  const int d = ckt.node("d");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>(
      "vg", g, 0,
      std::make_unique<PulseWave>(0.0, 3.3, 10e-9, 1e-9, 1e-9, 100e-9)));
  ckt.add(std::make_unique<Resistor>("rd", vdd, d, 10000.0));
  ckt.add(std::make_unique<Mosfet>("m1", tech::generic_035um().nmos, d, g, 0,
                                   0, Mosfet::Geometry{10 * um, 0.35 * um},
                                   /*with_caps=*/true));
  const TranResult res = transient(ckt, 0.25e-9, 60e-9);
  // Before the pulse: output high.
  EXPECT_NEAR(res.v(0, d), 3.3, 1e-3);
  // Well after the edge: output pulled low (triode).
  const double v_end = res.v(res.time.size() - 1, d);
  EXPECT_LT(v_end, 0.3);
}

TEST(Tran, RejectsBadArguments) {
  RcStep f;
  EXPECT_THROW(transient(f.ckt, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(transient(f.ckt, 1.0, 0.5), std::invalid_argument);
}

TEST(Tran, NodeWaveformExtraction) {
  RcStep f;
  const TranResult res = transient(f.ckt, 1e-7, 2e-6);
  const auto w = res.node_waveform(f.out);
  ASSERT_EQ(w.size(), res.time.size());
  EXPECT_DOUBLE_EQ(w[5], res.v(5, f.out));
}

}  // namespace
}  // namespace csdac::spice
