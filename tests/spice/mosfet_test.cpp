#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::spice {
namespace {

using namespace csdac::units;
using tech::generic_035um;

// Builds: voltage sources on gate and drain, source and bulk grounded.
struct NmosFixture {
  Circuit ckt;
  Mosfet* m = nullptr;

  NmosFixture(double vg, double vd, double w = 10 * um, double l = 1 * um) {
    const int g = ckt.node("g");
    const int d = ckt.node("d");
    ckt.add(std::make_unique<VoltageSource>("vg", g, 0, vg));
    ckt.add(std::make_unique<VoltageSource>("vd", d, 0, vd));
    m = ckt.add(std::make_unique<Mosfet>("m1", generic_035um().nmos, d, g, 0,
                                         0, Mosfet::Geometry{w, l}));
  }
};

TEST(Mosfet, SaturationSquareLaw) {
  NmosFixture f(1.0, 2.0);
  solve_dc(f.ckt);
  const auto& op = f.m->op();
  const auto& p = generic_035um().nmos;
  const double beta = p.kp * 10.0;  // W/L = 10
  const double lam = p.lambda(1 * um);
  const double expected = 0.5 * beta * 0.5 * 0.5 * (1.0 + lam * 2.0);
  EXPECT_EQ(op.region, MosRegion::kSaturation);
  EXPECT_NEAR(op.id, expected, 1e-9);
  EXPECT_NEAR(op.vod, 0.5, 1e-9);
  EXPECT_NEAR(op.gm, beta * 0.5 * (1.0 + lam * 2.0), 1e-9);
  EXPECT_NEAR(op.gds, 0.5 * beta * 0.25 * lam, 1e-12);
}

TEST(Mosfet, TriodeRegion) {
  NmosFixture f(1.5, 0.1);
  solve_dc(f.ckt);
  const auto& op = f.m->op();
  const auto& p = generic_035um().nmos;
  const double beta = p.kp * 10.0;
  const double lam = p.lambda(1 * um);
  const double vod = 1.0;
  const double vds = 0.1;
  const double expected =
      beta * (vod * vds - 0.5 * vds * vds) * (1.0 + lam * vds);
  EXPECT_EQ(op.region, MosRegion::kTriode);
  EXPECT_NEAR(op.id, expected, 1e-9);
}

TEST(Mosfet, CutoffRegion) {
  NmosFixture f(0.3, 2.0);  // vgs < vt0
  solve_dc(f.ckt);
  EXPECT_EQ(f.m->op().region, MosRegion::kCutoff);
  EXPECT_DOUBLE_EQ(f.m->op().id, 0.0);
}

TEST(Mosfet, BodyEffectRaisesThreshold) {
  // Source lifted to 1 V with bulk at ground: VSB = 1 V.
  Circuit ckt;
  const int g = ckt.node("g");
  const int d = ckt.node("d");
  const int s = ckt.node("s");
  ckt.add(std::make_unique<VoltageSource>("vg", g, 0, 2.0));
  ckt.add(std::make_unique<VoltageSource>("vd", d, 0, 3.0));
  ckt.add(std::make_unique<VoltageSource>("vs", s, 0, 1.0));
  auto* m = ckt.add(std::make_unique<Mosfet>(
      "m1", generic_035um().nmos, d, g, s, 0, Mosfet::Geometry{10 * um, 1 * um}));
  solve_dc(ckt);
  const auto& p = generic_035um().nmos;
  const double vt_expected =
      p.vt0 + p.gamma * (std::sqrt(p.phi_2f + 1.0) - std::sqrt(p.phi_2f));
  EXPECT_NEAR(m->op().vt, vt_expected, 1e-12);
  EXPECT_GT(m->op().vt, p.vt0);
  EXPECT_GT(m->op().gmb, 0.0);
}

TEST(Mosfet, PmosSaturation) {
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int g = ckt.node("g");
  const int d = ckt.node("d");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>("vg", g, 0, 2.3));  // VSG = 1.0
  ckt.add(std::make_unique<VoltageSource>("vd", d, 0, 0.0));
  auto* m = ckt.add(std::make_unique<Mosfet>(
      "m1", generic_035um().pmos, d, g, vdd, vdd,
      Mosfet::Geometry{10 * um, 1 * um}));
  solve_dc(ckt);
  const auto& p = generic_035um().pmos;
  const double vod = 1.0 - p.vt0;  // VSG - |VT|
  const double lam = p.lambda(1 * um);
  const double expected = 0.5 * p.kp * 10.0 * vod * vod * (1.0 + lam * 3.3);
  EXPECT_EQ(m->op().region, MosRegion::kSaturation);
  EXPECT_NEAR(m->op().id, expected, expected * 1e-6);
}

TEST(Mosfet, PmosPullsNodeHigh) {
  // PMOS current source charging a resistor to a positive voltage proves
  // the stamp's sign convention end-to-end.
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int g = ckt.node("g");
  const int out = ckt.node("out");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>("vg", g, 0, 2.3));
  ckt.add(std::make_unique<Mosfet>("m1", generic_035um().pmos, out, g, vdd,
                                   vdd, Mosfet::Geometry{10 * um, 1 * um}));
  ckt.add(std::make_unique<Resistor>("rl", out, 0, 1000.0));
  const Solution sol = solve_dc(ckt);
  // VSG = 1 V, VOD = 0.35 V, W/L = 10: Id ~ 35 uA into 1 kOhm ~ +35 mV.
  EXPECT_GT(sol.v(out), 0.02);  // current flows INTO the resistor
  EXPECT_LT(sol.v(out), 3.3);
}

TEST(Mosfet, DiodeConnectedBiasPoint) {
  // Current-forced diode-connected device: VGS must satisfy the square law.
  Circuit ckt;
  const int d = ckt.node("d");
  ckt.add(std::make_unique<CurrentSource>("ib", 0, d, 100 * uA));
  auto* m = ckt.add(std::make_unique<Mosfet>(
      "m1", generic_035um().nmos, d, d, 0, 0, Mosfet::Geometry{10 * um, 1 * um}));
  const Solution sol = solve_dc(ckt);
  EXPECT_NEAR(m->op().id, 100 * uA, 1e-9);
  // Ignore lambda for the hand estimate; it is a ~2% effect here.
  const auto& p = generic_035um().nmos;
  const double vod_est = std::sqrt(2.0 * 100 * uA / (p.kp * 10.0));
  EXPECT_NEAR(sol.v(d), p.vt0 + vod_est, 0.02);
}

TEST(Mosfet, SourceDrainSwapSymmetricConduction) {
  // Drive current backwards (into the "source"): the model must conduct
  // with terminals swapped instead of cutting off.
  Circuit ckt;
  const int g = ckt.node("g");
  const int a = ckt.node("a");
  ckt.add(std::make_unique<VoltageSource>("vg", g, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>("va", a, 0, -0.2));
  // NMOS with nominal drain grounded and nominal source at -0.2 V:
  // conduction happens with the roles swapped.
  auto* m = ckt.add(std::make_unique<Mosfet>(
      "m1", generic_035um().nmos, 0, g, a, a, Mosfet::Geometry{10 * um, 1 * um}));
  solve_dc(ckt);
  EXPECT_GT(m->op().id, 0.0);
  EXPECT_NE(m->op().region, MosRegion::kCutoff);
}

TEST(Mosfet, NmosCommonSourceAmplifierBias) {
  // Resistor-loaded common-source stage: checks Newton convergence on a
  // genuinely nonlinear node and the self-consistency of the bias point.
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int g = ckt.node("g");
  const int d = ckt.node("d");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>("vg", g, 0, 0.8));
  ckt.add(std::make_unique<Resistor>("rd", vdd, d, 10000.0));
  auto* m = ckt.add(std::make_unique<Mosfet>(
      "m1", generic_035um().nmos, d, g, 0, 0, Mosfet::Geometry{10 * um, 1 * um}));
  const Solution sol = solve_dc(ckt);
  // KCL at the drain: (vdd - vd)/rd == id.
  EXPECT_NEAR((3.3 - sol.v(d)) / 10000.0, m->op().id, 1e-9);
  EXPECT_GT(sol.v(d), 0.0);
  EXPECT_LT(sol.v(d), 3.3);
}

TEST(Mosfet, MultiplierScalesCurrent) {
  NmosFixture f1(1.0, 2.0);
  solve_dc(f1.ckt);
  Circuit ckt;
  const int g = ckt.node("g");
  const int d = ckt.node("d");
  ckt.add(std::make_unique<VoltageSource>("vg", g, 0, 1.0));
  ckt.add(std::make_unique<VoltageSource>("vd", d, 0, 2.0));
  auto* m4 = ckt.add(std::make_unique<Mosfet>(
      "m4", generic_035um().nmos, d, g, 0, 0,
      Mosfet::Geometry{10 * um, 1 * um, 4.0}));
  solve_dc(ckt);
  EXPECT_NEAR(m4->op().id, 4.0 * f1.m->op().id, 1e-12);
}

TEST(Mosfet, RejectsBadGeometry) {
  const auto p = generic_035um().nmos;
  EXPECT_THROW(Mosfet("m", p, 1, 2, 0, 0, Mosfet::Geometry{0.0, 1 * um}),
               std::invalid_argument);
  EXPECT_THROW(Mosfet("m", p, 1, 2, 0, 0, Mosfet::Geometry{1 * um, -1.0}),
               std::invalid_argument);
}

TEST(Mosfet, CascodeStackOperatingPoint) {
  // The paper's current cell core: CS + cascode biased from gate voltages.
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int gcs = ckt.node("gcs");
  const int gcas = ckt.node("gcas");
  const int mid = ckt.node("mid");
  const int out = ckt.node("out");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>("vgcs", gcs, 0, 0.9));
  ckt.add(std::make_unique<VoltageSource>("vgcas", gcas, 0, 1.5));
  ckt.add(std::make_unique<Resistor>("rl", vdd, out, 50.0));
  auto* mcs = ckt.add(std::make_unique<Mosfet>(
      "mcs", generic_035um().nmos, mid, gcs, 0, 0,
      Mosfet::Geometry{40 * um, 2 * um}));
  auto* mcas = ckt.add(std::make_unique<Mosfet>(
      "mcas", generic_035um().nmos, out, gcas, mid, 0,
      Mosfet::Geometry{40 * um, 0.35 * um}));
  const Solution sol = solve_dc(ckt);
  // Same current flows through both devices and through the load.
  EXPECT_NEAR(mcs->op().id, mcas->op().id, 1e-9);
  EXPECT_NEAR((3.3 - sol.v(out)) / 50.0, mcs->op().id, 1e-8);
  EXPECT_EQ(mcs->op().region, MosRegion::kSaturation);
}

}  // namespace
}  // namespace csdac::spice
