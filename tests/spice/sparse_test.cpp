// Unit tests for the sparse MNA backend (spice/sparse.hpp): assembly
// pattern reuse, Gilbert-Peierls LU against the dense reference,
// bit-identical numeric refactorization, minimum-degree ordering, and the
// singular-pivot diagnostics the solver layer builds its errors from.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "mathx/linalg.hpp"
#include "mathx/rng.hpp"
#include "spice/sparse.hpp"

namespace csdac::spice {
namespace {

// Deterministic sparse test matrix: tridiagonal plus a few long-range
// couplings, diagonally dominant so both LU paths are stable.
void stamp_test_matrix(SparseAssembly<double>& a, int n, double scale) {
  a.begin(n);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, 4.0 * scale + 0.01 * i);
    if (i + 1 < n) {
      a.add(i, i + 1, -1.0 * scale);
      a.add(i + 1, i, -1.3 * scale);
    }
    if (i + 7 < n) {
      a.add(i, i + 7, 0.25 * scale);
      a.add(i + 7, i, 0.125 * scale);
    }
  }
  a.finish();
}

mathx::MatrixD to_dense(const SparseAssembly<double>& a) {
  const int n = a.n();
  mathx::MatrixD m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    for (int s = a.col_ptr()[static_cast<std::size_t>(c)];
         s < a.col_ptr()[static_cast<std::size_t>(c) + 1]; ++s) {
      m(static_cast<std::size_t>(a.row_idx()[static_cast<std::size_t>(s)]),
        static_cast<std::size_t>(c)) = a.values()[static_cast<std::size_t>(s)];
    }
  }
  return m;
}

TEST(SparseAssembly, AccumulatesDuplicatesAndKeepsPattern) {
  SparseAssembly<double> a;
  a.begin(3);
  a.add(0, 0, 1.0);
  a.add(0, 0, 2.0);  // duplicate coordinate: summed
  a.add(1, 2, 5.0);
  a.add(2, 1, -5.0);
  EXPECT_TRUE(a.finish());  // first assembly = pattern change
  EXPECT_EQ(a.nnz(), 3);

  // Second cycle through the compressed pattern: same coordinates, no
  // pattern change, values replaced not accumulated across cycles.
  a.begin(3);
  a.add(0, 0, 3.0);
  a.add(1, 2, 7.0);
  a.add(2, 1, -7.0);
  EXPECT_FALSE(a.finish());
  const auto dense = to_dense(a);
  EXPECT_EQ(dense(0, 0), 3.0);
  EXPECT_EQ(dense(1, 2), 7.0);
  EXPECT_EQ(dense(2, 1), -7.0);

  // A new coordinate mid-reuse must be folded in and reported.
  a.begin(3);
  a.add(0, 0, 3.0);
  a.add(1, 2, 7.0);
  a.add(2, 1, -7.0);
  a.add(2, 2, 9.0);
  EXPECT_TRUE(a.finish());
  EXPECT_EQ(a.nnz(), 4);
}

TEST(SparseLu, MatchesDenseSolver) {
  const int n = 60;
  SparseAssembly<double> a;
  stamp_test_matrix(a, n, 1.0);

  SparseLu<double> lu;
  lu.factorize(a);
  ASSERT_TRUE(lu.has_symbolic());

  auto rng = mathx::stream_rng(42, 0);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = mathx::uniform(rng, -1.0, 1.0);

  std::vector<double> x = b;
  lu.solve(x);
  const auto x_ref = mathx::LuSolver<double>::solve_once(to_dense(a), b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_ref[static_cast<std::size_t>(i)], 1e-10)
        << "row " << i;
  }
}

TEST(SparseLu, RefactorizeBitIdenticalToFactorize) {
  const int n = 40;
  SparseAssembly<double> a;
  stamp_test_matrix(a, n, 1.0);

  // Path A: factorize at scale 2 directly.
  SparseLu<double> fresh;
  SparseAssembly<double> a2;
  stamp_test_matrix(a2, n, 2.0);
  fresh.factorize(a2);

  // Path B: factorize at scale 1, then numerically refactorize at scale 2.
  SparseLu<double> replay;
  replay.factorize(a);
  stamp_test_matrix(a, n, 2.0);
  ASSERT_TRUE(replay.refactorize(a));
  EXPECT_EQ(replay.refactorizations(), 1);

  auto rng = mathx::stream_rng(7, 0);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = mathx::uniform(rng, -1.0, 1.0);
  std::vector<double> xa = b, xb = b;
  fresh.solve(xa);
  replay.solve(xb);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(xa[static_cast<std::size_t>(i)], xb[static_cast<std::size_t>(i)])
        << "refactorize must replay factorize bit-for-bit, row " << i;
  }
}

TEST(SparseLu, RefactorizeRejectsMissingSymbolicAndSizeChange) {
  SparseAssembly<double> a;
  stamp_test_matrix(a, 10, 1.0);
  SparseLu<double> lu;
  EXPECT_FALSE(lu.refactorize(a));  // no symbolic data yet
  lu.factorize(a);
  SparseAssembly<double> bigger;
  stamp_test_matrix(bigger, 12, 1.0);
  EXPECT_FALSE(lu.refactorize(bigger));  // size changed
  lu.reset();
  EXPECT_FALSE(lu.has_symbolic());
  EXPECT_FALSE(lu.refactorize(a));
}

TEST(SparseLu, SingularColumnNamesOriginalIndex) {
  // Row/column 3 is left entirely empty: the matrix is structurally
  // singular there, and the error must carry the ORIGINAL index 3 even
  // though min-degree reorders the elimination.
  const int n = 6;
  SparseAssembly<double> a;
  a.begin(n);
  for (int i = 0; i < n; ++i) {
    if (i == 3) continue;
    a.add(i, i, 2.0);
    if (i + 1 < n && i + 1 != 3) a.add(i, i + 1, -0.5);
  }
  a.finish();
  SparseLu<double> lu;
  try {
    lu.factorize(a);
    FAIL() << "expected SingularMatrixError";
  } catch (const mathx::SingularMatrixError& e) {
    EXPECT_EQ(e.pivot_row(), 3u);
  }
}

TEST(SparseLu, ComplexSystemMatchesDense) {
  const int n = 24;
  SparseAssembly<std::complex<double>> a;
  a.begin(n);
  for (int i = 0; i < n; ++i) {
    a.add(i, i, {3.0 + 0.05 * i, 1.0});
    if (i + 1 < n) {
      a.add(i, i + 1, {-1.0, 0.2});
      a.add(i + 1, i, {-0.8, -0.1});
    }
  }
  a.finish();
  SparseLu<std::complex<double>> lu;
  lu.factorize(a);

  mathx::MatrixC dense(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    for (int s = a.col_ptr()[static_cast<std::size_t>(c)];
         s < a.col_ptr()[static_cast<std::size_t>(c) + 1]; ++s) {
      dense(static_cast<std::size_t>(
                a.row_idx()[static_cast<std::size_t>(s)]),
            static_cast<std::size_t>(c)) =
          a.values()[static_cast<std::size_t>(s)];
    }
  }
  std::vector<std::complex<double>> b(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] = {std::sin(0.3 * i), std::cos(0.7 * i)};
  }
  auto x = b;
  lu.solve(x);
  const auto x_ref = mathx::LuSolver<std::complex<double>>::solve_once(dense, b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[static_cast<std::size_t>(i)] -
                         x_ref[static_cast<std::size_t>(i)]),
                0.0, 1e-10);
  }
}

TEST(MinDegree, ReturnsValidPermutation) {
  const int n = 30;
  SparseAssembly<double> a;
  stamp_test_matrix(a, n, 1.0);
  const auto q = min_degree_order(n, a.col_ptr(), a.row_idx());
  ASSERT_EQ(q.size(), static_cast<std::size_t>(n));
  std::vector<int> sorted = q;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
  // Deterministic: a second call gives the identical order.
  EXPECT_EQ(min_degree_order(n, a.col_ptr(), a.row_idx()), q);
}

TEST(MinDegree, IsolatedVertexEliminatedFirst) {
  // Column 2 has only its (missing) diagonal -> degree 0 -> first out,
  // which is what pins singular-column diagnostics to the floating node.
  SparseAssembly<double> a;
  a.begin(4);
  a.add(0, 0, 1.0);
  a.add(1, 1, 1.0);
  a.add(3, 3, 1.0);
  a.add(0, 1, -1.0);
  a.add(1, 0, -1.0);
  a.add(0, 3, -1.0);
  a.add(3, 0, -1.0);
  a.finish();
  const auto q = min_degree_order(4, a.col_ptr(), a.row_idx());
  EXPECT_EQ(q[0], 2);
}

}  // namespace
}  // namespace csdac::spice
