#include "spice/netlist_parser.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"

namespace csdac::spice {
namespace {

const tech::TechParams kTech = tech::generic_035um();

TEST(SpiceValue, Suffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1"), 1.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("2.2k"), 2200.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("100f"), 100e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("4u"), 4e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("7m"), 7e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_value("1t"), 1e12);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("-3.3"), -3.3);
  // Unit letters after the magnitude are tolerated.
  EXPECT_DOUBLE_EQ(parse_spice_value("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("50ohm"), 50.0);
}

TEST(SpiceValue, Garbage) {
  EXPECT_THROW(parse_spice_value(""), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("abc"), std::invalid_argument);
}

TEST(NetlistParser, VoltageDividerDeck) {
  const auto ckt = parse_netlist(R"(
* simple divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
)",
                                 kTech);
  const Solution sol = solve_dc(*ckt);
  EXPECT_NEAR(sol.v(ckt->find_node("mid")), 7.5, 1e-6);
}

TEST(NetlistParser, ImplicitDcValue) {
  const auto ckt = parse_netlist("V1 a 0 2.5\nR1 a 0 50", kTech);
  const Solution sol = solve_dc(*ckt);
  EXPECT_NEAR(sol.v(ckt->find_node("a")), 2.5, 1e-9);
}

TEST(NetlistParser, PulseAndSinSources) {
  const auto ckt = parse_netlist(R"(
Vclk clk 0 PULSE(0 3.3 1n 0.1n 0.1n 5n 10n)
Vsig sig 0 SIN(1 0.5 1meg)
R1 clk 0 1k
R2 sig 0 1k
)",
                                 kTech);
  auto* vclk = dynamic_cast<VoltageSource*>(ckt->find_device("Vclk"));
  auto* vsig = dynamic_cast<VoltageSource*>(ckt->find_device("Vsig"));
  ASSERT_NE(vclk, nullptr);
  ASSERT_NE(vsig, nullptr);
  EXPECT_DOUBLE_EQ(vclk->value_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(vclk->value_at(3e-9), 3.3);
  EXPECT_DOUBLE_EQ(vclk->value_at(13e-9), 3.3);  // periodic
  EXPECT_NEAR(vsig->value_at(0.25e-6), 1.5, 1e-9);
}

TEST(NetlistParser, PwlSource) {
  const auto ckt = parse_netlist(
      "Vr ramp 0 PWL(0 0 1u 1 2u 0)\nR1 ramp 0 1k", kTech);
  auto* v = dynamic_cast<VoltageSource*>(ckt->find_device("Vr"));
  ASSERT_NE(v, nullptr);
  EXPECT_NEAR(v->value_at(0.5e-6), 0.5, 1e-9);
  EXPECT_NEAR(v->value_at(1.5e-6), 0.5, 1e-9);
}

TEST(NetlistParser, MosfetCardMatchesBuilderApi) {
  const auto ckt = parse_netlist(R"(
Vg g 0 1.0
Vd d 0 2.0
M1 d g 0 0 NMOS W=10u L=1u
)",
                                 kTech);
  solve_dc(*ckt);
  auto* m = dynamic_cast<Mosfet*>(ckt->find_device("M1"));
  ASSERT_NE(m, nullptr);
  const auto& p = kTech.nmos;
  const double lam = p.lambda(1e-6);
  const double expected = 0.5 * p.kp * 10.0 * 0.25 * (1.0 + lam * 2.0);
  EXPECT_NEAR(m->op().id, expected, 1e-9);
}

TEST(NetlistParser, PmosAndMultiplier) {
  const auto ckt = parse_netlist(R"(
Vdd vdd 0 3.3
Vg g 0 2.3
M1 out g vdd vdd PMOS W=10u L=1u M=2
Rl out 0 1k
)",
                                 kTech);
  const Solution sol = solve_dc(*ckt);
  EXPECT_GT(sol.v(ckt->find_node("out")), 0.01);
}

TEST(NetlistParser, VccsStampsCorrectly) {
  // G1 converts 1 V control into 1 mA into a 1 kOhm load: out = -1 V
  // (current leaves out when control positive).
  const auto ckt = parse_netlist(R"(
Vc c 0 1.0
G1 out 0 c 0 1m
R1 out 0 1k
)",
                                 kTech);
  const Solution sol = solve_dc(*ckt);
  EXPECT_NEAR(sol.v(ckt->find_node("out")), -1.0, 1e-6);
}

TEST(NetlistParser, AcMagnitudeParsed) {
  const auto ckt = parse_netlist(R"(
Vin in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 159.2p
)",
                                 kTech);
  solve_dc(*ckt);
  const AcResult res = ac_analysis(*ckt, {1e6});
  EXPECT_NEAR(std::abs(res.v(0, ckt->find_node("out"))),
              1.0 / std::sqrt(2.0), 0.01);
}

TEST(NetlistParser, CommentsAndControlsIgnored) {
  const auto ckt = parse_netlist(R"(
* title card
.option whatever
V1 a 0 1 ; trailing comment
R1 a 0 1k
)",
                                 kTech);
  EXPECT_EQ(ckt->num_nodes(), 2);  // gnd + a
}

TEST(NetlistParser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("V1 a 0 1\nR1 a 0\n", kTech);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW(parse_netlist("M1 d g s b BJT W=1u L=1u", kTech),
               NetlistError);
  EXPECT_THROW(parse_netlist("X1 a b c", kTech), NetlistError);
  EXPECT_THROW(parse_netlist("R1 a 0 10zz", kTech), NetlistError);
  EXPECT_THROW(parse_netlist("M1 d g 0 0 NMOS W=1u L", kTech), NetlistError);
}

TEST(NetlistParser, SubcircuitExpansion) {
  // A divider subcircuit instantiated twice: internal nodes are private,
  // ports connect to the caller's nodes.
  const auto ckt = parse_netlist(R"(
.subckt DIV in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 4.0
X1 a m DIV
X2 m b DIV
Rload b 0 1meg
)",
                                 kTech);
  const Solution sol = solve_dc(*ckt);
  // First divider: m ~ a * (R2||(R1+R2...)): solve exactly instead —
  // network: a -4V-> 1k -> m -> 1k to gnd, and from m: 1k -> b -> 1k||1M.
  // Verify with nodal arithmetic done by the solver itself: just check
  // sensible ordering and that internal names are namespaced.
  EXPECT_GT(sol.v(ckt->find_node("m")), sol.v(ckt->find_node("b")));
  EXPECT_GT(sol.v(ckt->find_node("a")), sol.v(ckt->find_node("m")));
  EXPECT_NE(ckt->find_device("X1.R1"), nullptr);
  EXPECT_NE(ckt->find_device("X2.R2"), nullptr);
  EXPECT_EQ(ckt->find_device("R1"), nullptr);  // no un-prefixed copy
}

TEST(NetlistParser, SubcircuitInternalNodesArePrivate) {
  const auto ckt = parse_netlist(R"(
.subckt CELL a
R1 a internal 1k
R2 internal 0 1k
.ends
V1 n1 0 1
V2 n2 0 2
X1 n1 CELL
X2 n2 CELL
)",
                                 kTech);
  const Solution sol = solve_dc(*ckt);
  // Each instance has its own "internal" at half its port voltage.
  EXPECT_NEAR(sol.v(ckt->find_node("X1.internal")), 0.5, 1e-6);
  EXPECT_NEAR(sol.v(ckt->find_node("X2.internal")), 1.0, 1e-6);
}

TEST(NetlistParser, NestedSubcircuitInstances) {
  // A subckt may instantiate another subckt.
  const auto ckt = parse_netlist(R"(
.subckt HALF in out
R1 in out 1k
R2 out 0 1k
.ends
.subckt QUARTER in out
X1 in mid HALF
X2 mid out HALF
.ends
V1 a 0 4
Xq a q QUARTER
Rl q 0 1t
)",
                                 kTech);
  const Solution sol = solve_dc(*ckt);
  // Two cascaded loaded dividers: v(q) = 4 * (1/3) * ... compute via the
  // solver-independent check: q < mid < a and q > 0.
  const double vq = sol.v(ckt->find_node("q"));
  EXPECT_GT(vq, 0.1);
  EXPECT_LT(vq, 2.0);
  EXPECT_NE(ckt->find_device("Xq.X1.R1"), nullptr);
}

TEST(NetlistParser, SubcircuitWithMosfet) {
  // The paper's current cell as a reusable subcircuit.
  const auto ckt = parse_netlist(R"(
.subckt CURRENT_CELL out gcs gsw
M1 top gcs 0 0 NMOS W=20u L=2u
M2 out gsw top 0 NMOS W=2u L=0.35u
.ends
Vterm vterm 0 2.0
Rl vterm out 50
Vgcs gcs 0 0.85
Vgsw gsw 0 1.6
X1 out gcs gsw CURRENT_CELL
)",
                                 kTech);
  const Solution sol = solve_dc(*ckt);
  EXPECT_LT(sol.v(ckt->find_node("out")), 2.0);  // cell sinks current
  auto* m = dynamic_cast<Mosfet*>(ckt->find_device("X1.M1"));
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->op().id, 1e-5);
}

TEST(NetlistParser, SubcircuitErrors) {
  EXPECT_THROW(parse_netlist("X1 a b NOPE", kTech), NetlistError);
  EXPECT_THROW(parse_netlist(".subckt A p\nR1 p 0 1k\n", kTech),
               NetlistError);  // unterminated
  EXPECT_THROW(parse_netlist(".ends\n", kTech), NetlistError);
  EXPECT_THROW(
      parse_netlist(".subckt A p\n.subckt B q\n.ends\n.ends", kTech),
      NetlistError);  // nested definitions
  // Wrong port count.
  EXPECT_THROW(parse_netlist(R"(
.subckt DIV in out
R1 in out 1k
.ends
X1 a DIV
)",
                             kTech),
               NetlistError);
}

TEST(NetlistParser, DcSweepOfInverter) {
  const auto ckt = parse_netlist(R"(
Vdd vdd 0 3.3
Vin in 0 0
Rd vdd out 10k
M1 out in 0 0 NMOS W=10u L=0.35u
)",
                                 kTech);
  auto* vin = dynamic_cast<VoltageSource*>(ckt->find_device("Vin"));
  ASSERT_NE(vin, nullptr);
  const auto sweep = dc_sweep(*ckt, *vin, 0.0, 3.3, 12);
  ASSERT_EQ(sweep.size(), 12u);
  const int out = ckt->find_node("out");
  // Monotonically non-increasing transfer, full swing.
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].v(out), sweep[i - 1].v(out) + 1e-9);
  }
  EXPECT_NEAR(sweep.front().v(out), 3.3, 1e-3);
  EXPECT_LT(sweep.back().v(out), 0.2);
}

}  // namespace
}  // namespace csdac::spice
