#include <gtest/gtest.h>

#include <memory>

#include "spice/circuit.hpp"
#include "spice/devices.hpp"
#include "spice/solver.hpp"

namespace csdac::spice {
namespace {

TEST(DcLinear, VoltageDivider) {
  Circuit ckt;
  const int in = ckt.node("in");
  const int mid = ckt.node("mid");
  ckt.add(std::make_unique<VoltageSource>("v1", in, 0, 10.0));
  ckt.add(std::make_unique<Resistor>("r1", in, mid, 1000.0));
  ckt.add(std::make_unique<Resistor>("r2", mid, 0, 3000.0));
  const Solution sol = solve_dc(ckt);
  EXPECT_NEAR(sol.v(in), 10.0, 1e-6);
  EXPECT_NEAR(sol.v(mid), 7.5, 1e-6);  // gmin shunt loads the node by O(1e-9)
}

TEST(DcLinear, VoltageSourceBranchCurrent) {
  Circuit ckt;
  const int in = ckt.node("in");
  auto* vs = ckt.add(std::make_unique<VoltageSource>("v1", in, 0, 5.0));
  ckt.add(std::make_unique<Resistor>("r1", in, 0, 100.0));
  const Solution sol = solve_dc(ckt);
  // 50 mA flows out of the source's + terminal into the resistor; the MNA
  // branch current is the current through the source from + to - node,
  // i.e. -50 mA.
  EXPECT_NEAR(sol.branch_current(*vs), -0.05, 1e-9);
}

TEST(DcLinear, CurrentSourceIntoResistor) {
  Circuit ckt;
  const int out = ckt.node("out");
  // 1 mA extracted from ground, injected into `out`.
  ckt.add(std::make_unique<CurrentSource>("i1", 0, out, 1e-3));
  ckt.add(std::make_unique<Resistor>("r1", out, 0, 2000.0));
  const Solution sol = solve_dc(ckt);
  EXPECT_NEAR(sol.v(out), 2.0, 1e-6);
}

TEST(DcLinear, CurrentSourcePolarity) {
  Circuit ckt;
  const int out = ckt.node("out");
  // Reversed: extracts from `out`, so the node goes negative.
  ckt.add(std::make_unique<CurrentSource>("i1", out, 0, 1e-3));
  ckt.add(std::make_unique<Resistor>("r1", out, 0, 1000.0));
  const Solution sol = solve_dc(ckt);
  EXPECT_NEAR(sol.v(out), -1.0, 1e-9);
}

TEST(DcLinear, TwoSourcesSuperpose) {
  Circuit ckt;
  const int a = ckt.node("a");
  ckt.add(std::make_unique<CurrentSource>("i1", 0, a, 1e-3));
  ckt.add(std::make_unique<CurrentSource>("i2", 0, a, 2e-3));
  ckt.add(std::make_unique<Resistor>("r1", a, 0, 1000.0));
  const Solution sol = solve_dc(ckt);
  EXPECT_NEAR(sol.v(a), 3.0, 1e-6);
}

TEST(DcLinear, SeriesVoltageSources) {
  Circuit ckt;
  const int a = ckt.node("a");
  const int b = ckt.node("b");
  ckt.add(std::make_unique<VoltageSource>("v1", a, 0, 2.0));
  ckt.add(std::make_unique<VoltageSource>("v2", b, a, 3.0));
  ckt.add(std::make_unique<Resistor>("r1", b, 0, 1000.0));
  const Solution sol = solve_dc(ckt);
  EXPECT_NEAR(sol.v(b), 5.0, 1e-9);
}

TEST(DcLinear, VcvsGain) {
  Circuit ckt;
  const int in = ckt.node("in");
  const int out = ckt.node("out");
  ckt.add(std::make_unique<VoltageSource>("v1", in, 0, 0.25));
  ckt.add(std::make_unique<Vcvs>("e1", out, 0, in, 0, 8.0));
  ckt.add(std::make_unique<Resistor>("rl", out, 0, 50.0));
  const Solution sol = solve_dc(ckt);
  EXPECT_NEAR(sol.v(out), 2.0, 1e-6);
}

TEST(DcLinear, FloatingNodeAnchoredByGmin) {
  // A node connected only through a capacitor is floating in DC; the gmin
  // shunt must keep the matrix solvable.
  Circuit ckt;
  const int a = ckt.node("a");
  const int b = ckt.node("b");
  ckt.add(std::make_unique<VoltageSource>("v1", a, 0, 1.0));
  ckt.add(std::make_unique<Capacitor>("c1", a, b, 1e-12));
  EXPECT_NO_THROW({
    const Solution sol = solve_dc(ckt);
    EXPECT_NEAR(sol.v(b), 0.0, 1e-6);
  });
}

TEST(DcLinear, NodeNamesAndLookup) {
  Circuit ckt;
  EXPECT_EQ(ckt.node("0"), 0);
  EXPECT_EQ(ckt.node("gnd"), 0);
  const int a = ckt.node("a");
  EXPECT_EQ(ckt.node("a"), a);
  EXPECT_TRUE(ckt.has_node("a"));
  EXPECT_FALSE(ckt.has_node("zz"));
  EXPECT_THROW(ckt.find_node("zz"), std::out_of_range);
  EXPECT_EQ(ckt.node_name(a), "a");
}

TEST(DcLinear, FindDevice) {
  Circuit ckt;
  const int a = ckt.node("a");
  ckt.add(std::make_unique<Resistor>("r1", a, 0, 1.0));
  EXPECT_NE(ckt.find_device("r1"), nullptr);
  EXPECT_EQ(ckt.find_device("nope"), nullptr);
}

TEST(Waveforms, PulseShape) {
  PulseWave p(0.0, 1.0, /*td=*/1.0, /*tr=*/1.0, /*tf=*/1.0, /*pw=*/2.0,
              /*period=*/10.0);
  EXPECT_DOUBLE_EQ(p.value(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.value(1.5), 0.5);   // mid-rise
  EXPECT_DOUBLE_EQ(p.value(3.0), 1.0);   // on
  EXPECT_DOUBLE_EQ(p.value(4.5), 0.5);   // mid-fall
  EXPECT_DOUBLE_EQ(p.value(6.0), 0.0);   // off
  EXPECT_DOUBLE_EQ(p.value(11.5), 0.5);  // periodic repeat
}

TEST(Waveforms, SinShape) {
  SinWave s(1.0, 0.5, 1.0, 0.25);
  EXPECT_DOUBLE_EQ(s.value(0.1), 1.0);           // before delay
  EXPECT_NEAR(s.value(0.5), 1.5, 1e-12);         // quarter period after delay
  EXPECT_DOUBLE_EQ(s.dc_value(), 1.0);
}

TEST(Waveforms, PwlInterpolatesAndClamps) {
  PwlWave w({{0.0, 0.0}, {1.0, 2.0}, {3.0, -2.0}});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(2.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(9.0), -2.0);
}

TEST(Waveforms, PwlRejectsUnsortedTimes) {
  EXPECT_THROW(PwlWave({{1.0, 0.0}, {0.5, 1.0}}), std::invalid_argument);
}

TEST(DcLinear, ConflictingSourcesFailToConverge) {
  // Two parallel voltage sources at different values make the MNA matrix
  // singular; the solver must report ConvergenceError, not hang or crash.
  Circuit ckt;
  const int a = ckt.node("a");
  ckt.add(std::make_unique<VoltageSource>("v1", a, 0, 1.0));
  ckt.add(std::make_unique<VoltageSource>("v2", a, 0, 2.0));
  EXPECT_THROW(solve_dc(ckt), ConvergenceError);
}

TEST(DcLinear, SweepArgumentValidation) {
  Circuit ckt;
  const int a = ckt.node("a");
  auto* vs = ckt.add(std::make_unique<VoltageSource>("v1", a, 0, 1.0));
  ckt.add(std::make_unique<Resistor>("r1", a, 0, 1e3));
  EXPECT_THROW(dc_sweep(ckt, *vs, 0.0, 1.0, 1), std::invalid_argument);
  const auto sweep = dc_sweep(ckt, *vs, 0.0, 1.0, 3);
  EXPECT_EQ(sweep.size(), 3u);
  EXPECT_NEAR(sweep[1].v(a), 0.5, 1e-9);
  // The source keeps the final sweep value.
  EXPECT_NEAR(solve_dc(ckt).v(a), 1.0, 1e-9);
}

TEST(DeviceErrors, InvalidValuesThrow) {
  EXPECT_THROW(Resistor("r", 1, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(Resistor("r", 1, 0, -5.0), std::invalid_argument);
  EXPECT_THROW(Capacitor("c", 1, 0, -1e-12), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::spice
