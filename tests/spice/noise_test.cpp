#include "spice/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "spice/devices.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

namespace csdac::spice {
namespace {

using namespace csdac::units;

constexpr double kBoltzmann = 1.380649e-23;
constexpr double kT300 = kBoltzmann * 300.0;

TEST(Noise, SingleResistorReads4kTR) {
  // A grounded resistor's output noise PSD is 4kTR (flat).
  Circuit ckt;
  const int n = ckt.node("n");
  ckt.add(std::make_unique<Resistor>("r1", n, 0, 10e3));
  solve_dc(ckt);
  const auto res = noise_analysis(ckt, n, {1e3, 1e6, 1e9});
  for (double psd : res.total_psd) {
    EXPECT_NEAR(psd, 4.0 * kT300 * 10e3, 1e-20);
  }
}

TEST(Noise, ParallelResistorsCombine) {
  // Two parallel resistors: PSD = 4kT * (R1 || R2).
  Circuit ckt;
  const int n = ckt.node("n");
  ckt.add(std::make_unique<Resistor>("r1", n, 0, 10e3));
  ckt.add(std::make_unique<Resistor>("r2", n, 0, 40e3));
  solve_dc(ckt);
  const auto res = noise_analysis(ckt, n, {1e6});
  EXPECT_NEAR(res.total_psd[0], 4.0 * kT300 * 8e3, 1e-20);
  ASSERT_EQ(res.source_names.size(), 2u);
  // Contribution split: r1 delivers (R_par/R1) fraction etc.
  EXPECT_GT(res.contributions[0][0], res.contributions[0][1]);
}

TEST(Noise, RcIntegratesToKTOverC) {
  // The classic kT/C: total integrated noise of an RC is sqrt(kT/C)
  // regardless of R.
  for (double r : {1e3, 100e3}) {
    Circuit ckt;
    const int n = ckt.node("n");
    const double c = 1e-12;
    ckt.add(std::make_unique<Resistor>("r1", n, 0, r));
    ckt.add(std::make_unique<Capacitor>("c1", n, 0, c));
    solve_dc(ckt);
    // Dense log grid far past the pole.
    const auto freqs = log_space(1.0, 1e13, 40);
    const auto res = noise_analysis(ckt, n, freqs);
    const double vrms = res.integrated_rms(1.0, 1e13);
    EXPECT_NEAR(vrms, std::sqrt(kT300 / c), 0.03 * std::sqrt(kT300 / c))
        << "R = " << r;
  }
}

TEST(Noise, MosfetChannelNoiseAtAmplifierOutput) {
  // Common-source amplifier: output PSD at low frequency =
  // 4kT*(2/3)*gm*Rout^2 + 4kT*Rd*(Rout/Rd)^2, Rout = Rd || ro.
  Circuit ckt;
  const int vdd = ckt.node("vdd");
  const int g = ckt.node("g");
  const int d = ckt.node("d");
  ckt.add(std::make_unique<VoltageSource>("vdd", vdd, 0, 3.3));
  ckt.add(std::make_unique<VoltageSource>("vg", g, 0, 0.8));
  ckt.add(std::make_unique<Resistor>("rd", vdd, d, 10e3));
  auto* m = ckt.add(std::make_unique<Mosfet>(
      "m1", tech::generic_035um().nmos, d, g, 0, 0,
      Mosfet::Geometry{10 * um, 1 * um}));
  solve_dc(ckt);
  const auto res = noise_analysis(ckt, d, {1e3});
  const double rout = 1.0 / (1.0 / 10e3 + m->op().gds);
  const double expected = 4.0 * kT300 * (2.0 / 3.0) * m->op().gm * rout * rout +
                          4.0 * kT300 / 10e3 * rout * rout;
  EXPECT_NEAR(res.total_psd[0], expected, 0.01 * expected);
}

TEST(Noise, CutoffMosfetIsNoiseless) {
  Circuit ckt;
  const int d = ckt.node("d");
  ckt.add(std::make_unique<VoltageSource>("vd", d, 0, 1.0));
  ckt.add(std::make_unique<Resistor>("r1", d, 0, 1e3));
  ckt.add(std::make_unique<Mosfet>("m1", tech::generic_035um().nmos, d,
                                   /*g=*/0, 0, 0,
                                   Mosfet::Geometry{10 * um, 1 * um}));
  solve_dc(ckt);
  const auto res = noise_analysis(ckt, d, {1e6});
  // Only the resistor contributes.
  ASSERT_EQ(res.source_names.size(), 1u);
  EXPECT_EQ(res.source_names[0], "r1");
}

TEST(Noise, TemperatureScalesLinearly) {
  Circuit ckt;
  const int n = ckt.node("n");
  ckt.add(std::make_unique<Resistor>("r1", n, 0, 1e3));
  solve_dc(ckt);
  const auto cold = noise_analysis(ckt, n, {1e6}, 77.0);
  const auto hot = noise_analysis(ckt, n, {1e6}, 385.0);
  EXPECT_NEAR(hot.total_psd[0] / cold.total_psd[0], 5.0, 1e-9);
}

TEST(Noise, ErrorHandling) {
  Circuit ckt;
  const int n = ckt.node("n");
  ckt.add(std::make_unique<Resistor>("r1", n, 0, 1e3));
  EXPECT_THROW(noise_analysis(ckt, 0, {1e6}), std::invalid_argument);
  EXPECT_THROW(noise_analysis(ckt, 5, {1e6}), std::invalid_argument);
  EXPECT_THROW(noise_analysis(ckt, n, {1e6}, -1.0), std::invalid_argument);
  NoiseResult r;
  r.freq = {1.0, 2.0};
  r.total_psd = {1.0, 1.0};
  EXPECT_THROW(r.integrated_rms(2.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace csdac::spice
