// Dynamic characterization sweep: SFDR / SNDR / ENOB of the behavioral
// 12-bit converter versus signal frequency, showing the individual
// contribution of each non-ideality the library models (mismatch, finite
// output impedance, binary-path timing skew, clock jitter).
#include <cstdio>

#include "core/accuracy.hpp"
#include "dac/dynamic.hpp"
#include "dac/spectrum.hpp"

using namespace csdac;

namespace {

struct Scenario {
  const char* name;
  double sigma;        // unit mismatch
  double rout;         // unit output impedance [Ohm]
  double skew;         // binary latch skew [s]
  double jitter;       // clock jitter sigma [s]
};

double run_sfdr(const core::DacSpec& spec, const Scenario& sc, int cycles) {
  mathx::Xoshiro256 rng(42);
  const auto errors =
      sc.sigma > 0 ? dac::draw_source_errors(spec, sc.sigma, rng)
                   : dac::ideal_sources(spec);
  dac::DynamicParams p;
  p.fs = 300e6;
  p.oversample = 4;
  p.tau = 0.3e-9;
  p.rout_unit = sc.rout;
  p.binary_skew = sc.skew;
  p.jitter_sigma = sc.jitter;
  dac::DynamicSimulator sim(dac::SegmentedDac(spec, errors), p);
  const auto codes = dac::sine_codes(spec, 1024, cycles);
  const auto wave = sim.waveform(codes, &rng);
  // Analyze the full oversampled waveform (glitches and jitter live
  // BETWEEN the sampling instants), restricting the spur search to the
  // converter's own Nyquist band.
  dac::SpectrumOptions opts;
  opts.max_freq = p.fs / 2.0;
  return dac::analyze_spectrum(wave, p.fs * p.oversample, opts).sfdr_db;
}

}  // namespace

int main() {
  core::DacSpec spec;
  const double sigma = core::unit_sigma_spec(spec.nbits, spec.inl_yield);

  // Each scenario isolates ONE non-ideality on top of the ideal quantized
  // converter, so the rows are directly comparable.
  const Scenario scenarios[] = {
      {"ideal (quantization only)", 0.0, 1e15, 0.0, 0.0},
      {"mismatch @ eq.(1) spec", sigma, 1e15, 0.0, 0.0},
      {"mismatch @ 4x spec", 4.0 * sigma, 1e15, 0.0, 0.0},
      {"finite Rout (20 MOhm/unit)", 0.0, 20e6, 0.0, 0.0},
      {"150 ps binary skew", 0.0, 1e15, 150e-12, 0.0},
      {"8 ps rms clock jitter", 0.0, 1e15, 0.0, 8e-12},
  };

  std::printf("SFDR [dB] vs signal frequency, 300 MS/s, 1024-sample "
              "coherent records\n\n");
  std::printf("%-30s", "scenario \\ fin");
  const int cycle_list[] = {7, 31, 181, 379};  // 2.1, 9.1, 53, 111 MHz
  for (int c : cycle_list) {
    std::printf("%10.1fM", c / 1024.0 * 300.0);
  }
  std::printf("\n");
  for (const auto& sc : scenarios) {
    std::printf("%-30s", sc.name);
    for (int c : cycle_list) {
      std::printf("%11.1f", run_sfdr(spec, sc, c));
    }
    std::printf("\n");
  }
  std::printf("\nRead the columns for the frequency dependence: jitter "
              "bites harder at high fin while mismatch and Rout droop are "
              "flat. Note the 150 ps skew glitch stays below the 12-bit "
              "quantization floor -- consistent with the paper deferring "
              "glitch minimization to circuit-level design.\n");
  return 0;
}
