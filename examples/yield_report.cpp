// Production-style yield report: Monte-Carlo a lot of 12-bit chips at the
// eq. (1) design accuracy, histogram the INL/DNL population, report the
// parametric yield with its confidence interval, and show what the
// self-calibration option would buy on an undersized array.
#include <cstdio>
#include <string>
#include <vector>

#include "core/accuracy.hpp"
#include "dac/calibration.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/stats.hpp"

using namespace csdac;

namespace {

void print_histogram(const char* title, const std::vector<double>& samples,
                     double lo, double hi) {
  mathx::Histogram h(lo, hi, 24);
  for (double v : samples) h.add(v);
  std::size_t peak = 1;
  for (std::size_t i = 0; i < h.bins(); ++i) {
    peak = std::max(peak, h.bin_count(i));
  }
  std::printf("\n%s (N = %zu)\n", title, samples.size());
  for (std::size_t i = 0; i < h.bins(); ++i) {
    const int bar =
        static_cast<int>(48.0 * h.bin_count(i) / static_cast<double>(peak));
    std::printf("  %6.3f |%s%s %zu\n", h.bin_center(i),
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                bar == 0 && h.bin_count(i) > 0 ? "." : "", h.bin_count(i));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int chips = argc > 1 ? std::atoi(argv[1]) : 600;
  core::DacSpec spec;
  const double sigma = core::unit_sigma_spec(spec.nbits, spec.inl_yield);

  std::printf("=== 12-bit chip lot: %d chips at the eq.(1) accuracy "
              "(sigma_u = %.4f%%) ===\n",
              chips, sigma * 100);

  std::vector<double> inls, dnls;
  mathx::RunningStats inl_stats;
  for (int c = 0; c < chips; ++c) {
    mathx::Xoshiro256 rng(5000 + static_cast<std::uint64_t>(c));
    const dac::SegmentedDac chip(spec,
                                 dac::draw_source_errors(spec, sigma, rng));
    const auto m = dac::analyze_transfer(chip.transfer());
    inls.push_back(m.inl_max);
    dnls.push_back(m.dnl_max);
    inl_stats.add(m.inl_max);
  }
  print_histogram("max |INL| [LSB]", inls, 0.0, 0.5);
  print_histogram("max |DNL| [LSB]", dnls, 0.0, 0.25);
  std::printf("\nINL population: mean %.3f LSB, sigma %.3f, worst %.3f\n",
              inl_stats.mean(), inl_stats.stddev(), inl_stats.max());

  // Parallel yield estimate through the library API.
  const auto y = dac::inl_yield_mc(spec, sigma, chips, 5000, 0.5,
                                   dac::InlReference::kBestFit,
                                   /*threads=*/0);
  std::printf("parametric yield (INL < 0.5 LSB): %.1f%% +/- %.1f%% "
              "(target %.1f%%)\n",
              y.yield * 100, y.ci95 * 100, spec.inl_yield * 100);
  std::printf("  engine: %lld chips on %d threads in %.3f s "
              "(%.0f chips/s)\n",
              static_cast<long long>(y.stats.evaluated), y.stats.threads,
              y.stats.wall_seconds, y.stats.items_per_second);

  // Adaptive run: stop as soon as the 95 % CI half-width reaches 1 %.
  dac::AdaptiveMcOptions aopts;
  aopts.max_chips = 20000;
  aopts.ci_half_width = 0.01;
  aopts.threads = 0;
  const auto ya = dac::inl_yield_mc_adaptive(spec, sigma, aopts, 5000);
  std::printf("  adaptive: %.1f%% +/- %.1f%% after %lld chips "
              "(early stop %s, %lld of the %d-chip budget skipped)\n",
              ya.yield * 100, ya.ci95 * 100,
              static_cast<long long>(ya.stats.evaluated),
              ya.stats.early_stopped ? "hit" : "not hit",
              static_cast<long long>(ya.stats.skipped), aopts.max_chips);

  // What calibration buys on a 4x-undersized array.
  dac::CalibrationOptions cal;
  cal.range_lsb = 2.0;
  cal.bits = 6;
  const auto recovered = dac::calibration_yield_mc(spec, 4.0 * sigma, cal,
                                                   chips / 3, 6000, 0.5,
                                                   /*threads=*/0);
  std::printf("\nwith a 16x smaller CS array (4x sigma) + 6-bit trim DAC:\n");
  std::printf("  yield before calibration: %.1f%%\n",
              recovered.yield_before * 100);
  std::printf("  yield after calibration : %.1f%%\n",
              recovered.yield_after * 100);
  std::printf("  engine: %.0f chips/s on %d threads\n",
              recovered.stats.items_per_second, recovered.stats.threads);
  return 0;
}
