// Production-style yield report: Monte-Carlo a lot of 12-bit chips at the
// eq. (1) design accuracy, histogram the INL/DNL population, report the
// parametric yield with its confidence interval, and show what the
// self-calibration option would buy on an undersized array.
//
// The yield estimates run through the job-graph runtime with the
// persistent content-addressed cache (.csdac-cache), so a re-run with the
// same lot parameters reports instantly from the store. The histogram
// walks the same (seed, chip) streams with the allocation-free
// ChipWorkspace kernel, so its population is exactly the lot the yield
// estimate judged.
#include <cstdio>
#include <string>
#include <vector>

#include "core/accuracy.hpp"
#include "dac/calibration.hpp"
#include "dac/static_analysis.hpp"
#include "mathx/stats.hpp"
#include "runtime/graph.hpp"

using namespace csdac;

namespace {

void print_histogram(const char* title, const std::vector<double>& samples,
                     double lo, double hi) {
  mathx::Histogram h(lo, hi, 24);
  for (double v : samples) h.add(v);
  std::size_t peak = 1;
  for (std::size_t i = 0; i < h.bins(); ++i) {
    peak = std::max(peak, h.bin_count(i));
  }
  std::printf("\n%s (N = %zu)\n", title, samples.size());
  for (std::size_t i = 0; i < h.bins(); ++i) {
    const int bar =
        static_cast<int>(48.0 * h.bin_count(i) / static_cast<double>(peak));
    std::printf("  %6.3f |%s%s %zu\n", h.bin_center(i),
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                bar == 0 && h.bin_count(i) > 0 ? "." : "", h.bin_count(i));
  }
}

const char* source_tag(const runtime::JobRecord& r) {
  return r.cache_hit ? "cache" : "computed";
}

}  // namespace

int main(int argc, char** argv) {
  const int chips = argc > 1 ? std::atoi(argv[1]) : 600;
  core::DacSpec spec;
  const double sigma = core::unit_sigma_spec(spec.nbits, spec.inl_yield);
  const std::uint64_t seed = 5000;

  std::printf("=== 12-bit chip lot: %d chips at the eq.(1) accuracy "
              "(sigma_u = %.4f%%) ===\n",
              chips, sigma * 100);

  // Histogram pass: the allocation-free workspace kernel over the same
  // (seed, chip) streams the yield estimate below evaluates.
  std::vector<double> inls, dnls;
  mathx::RunningStats inl_stats;
  {
    dac::ChipWorkspace ws(spec);
    for (int c = 0; c < chips; ++c) {
      const auto m = dac::mc_chip_metrics(ws, sigma, seed, c);
      inls.push_back(m.inl_max);
      dnls.push_back(m.dnl_max);
      inl_stats.add(m.inl_max);
    }
  }
  print_histogram("max |INL| [LSB]", inls, 0.0, 0.5);
  print_histogram("max |DNL| [LSB]", dnls, 0.0, 0.25);
  std::printf("\nINL population: mean %.3f LSB, sigma %.3f, worst %.3f\n",
              inl_stats.mean(), inl_stats.stddev(), inl_stats.max());

  // Yield studies through the job-graph runtime: queued together, fanned
  // out on the pool, answered from the persistent cache when warm.
  runtime::RuntimeOptions ropts;
  ropts.cache_dir = ".csdac-cache";
  runtime::JobGraph graph(ropts);

  runtime::InlYieldJob fixed;
  fixed.spec = spec;
  fixed.sigma_unit = sigma;
  fixed.chips = chips;
  fixed.seed = seed;
  const runtime::JobId fixed_id = graph.add(fixed, "lot-yield");

  runtime::InlYieldJob adaptive;
  adaptive.spec = spec;
  adaptive.sigma_unit = sigma;
  adaptive.seed = seed;
  adaptive.adaptive = true;
  adaptive.chips = 20000;  // cap
  adaptive.ci_half_width = 0.01;
  const runtime::JobId adaptive_id = graph.add(adaptive, "adaptive-yield");

  dac::CalibrationOptions cal;
  cal.range_lsb = 2.0;
  cal.bits = 6;
  runtime::CalYieldJob recover;
  recover.spec = spec;
  recover.sigma_unit = 4.0 * sigma;
  recover.cal = cal;
  recover.chips = chips / 3;
  recover.seed = 6000;
  const runtime::JobId recover_id = graph.add(recover, "calibration-study");

  graph.run_all();

  const auto& yr = graph.record(fixed_id);
  const auto& y = std::get<runtime::YieldResult>(yr.value);
  std::printf("parametric yield (INL < 0.5 LSB): %.1f%% +/- %.1f%% "
              "(target %.1f%%)\n",
              y.yield * 100, y.ci95 * 100, spec.inl_yield * 100);
  std::printf("  %lld chips in %.3f s [%s]\n",
              static_cast<long long>(y.chips), yr.wall_seconds,
              source_tag(yr));

  const auto& yar = graph.record(adaptive_id);
  const auto& ya = std::get<runtime::YieldResult>(yar.value);
  std::printf("  adaptive: %.1f%% +/- %.1f%% after %lld chips of the "
              "20000-chip budget [%s]\n",
              ya.yield * 100, ya.ci95 * 100,
              static_cast<long long>(ya.chips), source_tag(yar));

  const auto& rr = graph.record(recover_id);
  const auto& recovered = std::get<runtime::CalYieldResult>(rr.value);
  std::printf("\nwith a 16x smaller CS array (4x sigma) + 6-bit trim DAC:\n");
  std::printf("  yield before calibration: %.1f%%\n",
              recovered.yield_before * 100);
  std::printf("  yield after calibration : %.1f%%\n",
              recovered.yield_after * 100);
  std::printf("  %lld chips in %.3f s [%s]\n",
              static_cast<long long>(recovered.chips), rr.wall_seconds,
              source_tag(rr));

  const runtime::CacheCounters cc = graph.cache_counters();
  std::printf("\nruntime cache: %lld hits, %lld misses (.csdac-cache)\n",
              static_cast<long long>(cc.hits),
              static_cast<long long>(cc.misses));
  return 0;
}
