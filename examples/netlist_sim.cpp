// A standalone mini-SPICE front end: reads a SPICE-format deck (file path
// as argv[1], or a built-in current-cell demo deck), honours the control
// cards
//   .op
//   .dc <vsource> <start> <stop> <points>
//   .tran <step> <stop>
//   .ac <points> <fstart> <fstop>          (log spaced)
//   .noise <node> <fstart> <fstop>
//   .print <node> [<node> ...]
// and prints the results as plain tables. Demonstrates that the simulator
// substrate is a usable tool in its own right, not just library plumbing.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "spice/devices.hpp"
#include "spice/netlist_parser.hpp"
#include "spice/noise.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"

using namespace csdac;

namespace {

const char* kDemoDeck = R"(* current-steering source demo: 512 LSB units (paper Fig. 2b cell)
.subckt CELL out gcs gcas gsw
Mcs  mid gcs  0   0 NMOS W=25u L=30u M=512
Mcas top gcas mid 0 NMOS W=2u  L=0.35u M=512
Msw  out gsw  top 0 NMOS W=0.6u L=0.35u M=512 CAPS
Cint top 0 100f
.ends
Vterm vterm 0 2.0
Rl    vterm out 50
Cl    out 0 2p
Vgcs  gcs  0 0.75
Vgcas gcas 0 1.2
Vgsw  gsw  0 PULSE(0 1.55 0.5n 0.05n 0.05n 100n)
X1 out gcs gcas gsw CELL
.op
.tran 5p 8n
.ac 10 1k 10g
.noise out 1k 1g
.print out X1.top
)";

std::vector<std::string> split(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> out;
  std::string t;
  while (is >> t) out.push_back(t);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string deck;
  if (argc > 1) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    deck = ss.str();
    std::printf("deck: %s\n", argv[1]);
  } else {
    deck = kDemoDeck;
    std::printf("deck: built-in current-cell demo (pass a file to override)\n");
  }

  const auto tech = tech::generic_035um();
  std::unique_ptr<spice::Circuit> ckt;
  try {
    ckt = spice::parse_netlist(deck, tech);
  } catch (const spice::NetlistError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }

  // Gather control cards and print nodes.
  std::vector<std::vector<std::string>> controls;
  std::vector<std::string> print_nodes;
  {
    std::istringstream is(deck);
    std::string line;
    while (std::getline(is, line)) {
      auto tok = split(line);
      if (tok.empty() || tok[0][0] != '.') continue;
      if (tok[0] == ".print") {
        print_nodes.assign(tok.begin() + 1, tok.end());
      } else if (tok[0] != ".subckt" && tok[0] != ".ends") {
        controls.push_back(tok);
      }
    }
  }
  if (print_nodes.empty() && ckt->num_nodes() > 1) {
    print_nodes.push_back(ckt->node_name(1));
  }
  auto node_ids = [&] {
    std::vector<int> ids;
    for (const auto& n : print_nodes) {
      if (ckt->has_node(n)) ids.push_back(ckt->find_node(n));
    }
    return ids;
  }();

  try {
    for (const auto& c : controls) {
      if (c[0] == ".op") {
        const auto sol = spice::solve_dc(*ckt);
        std::printf("\n.op — node voltages\n");
        for (std::size_t i = 0; i < node_ids.size(); ++i) {
          std::printf("  v(%s) = %.6g V\n", print_nodes[i].c_str(),
                      sol.v(node_ids[i]));
        }
        for (const auto& dev : ckt->devices()) {
          if (auto* m = dynamic_cast<spice::Mosfet*>(dev.get())) {
            const char* regions[] = {"cutoff", "triode", "sat"};
            std::printf("  %-12s id=%9.3g A  vgs=%6.3f  vds=%6.3f  gm=%9.3g"
                        "  (%s)\n",
                        m->name().c_str(), m->op().id, m->op().vgs,
                        m->op().vds, m->op().gm,
                        regions[static_cast<int>(m->op().region)]);
          }
        }
      } else if (c[0] == ".dc" && c.size() >= 5) {
        auto* src =
            dynamic_cast<spice::VoltageSource*>(ckt->find_device(c[1]));
        if (!src) {
          std::fprintf(stderr, ".dc: no voltage source '%s'\n", c[1].c_str());
          continue;
        }
        const auto sweep = spice::dc_sweep(
            *ckt, *src, spice::parse_spice_value(c[2]),
            spice::parse_spice_value(c[3]),
            static_cast<int>(spice::parse_spice_value(c[4])));
        std::printf("\n.dc %s — %zu points\n", c[1].c_str(), sweep.size());
        for (std::size_t i = 0; i < sweep.size(); ++i) {
          std::printf("  %3zu", i);
          for (std::size_t k = 0; k < node_ids.size(); ++k) {
            std::printf("  v(%s)=%.5g", print_nodes[k].c_str(),
                        sweep[i].v(node_ids[k]));
          }
          std::printf("\n");
        }
      } else if (c[0] == ".tran" && c.size() >= 3) {
        const auto res =
            spice::transient(*ckt, spice::parse_spice_value(c[1]),
                             spice::parse_spice_value(c[2]));
        std::printf("\n.tran — %zu steps; every 20th sample:\n",
                    res.time.size());
        std::printf("  %12s", "t [s]");
        for (const auto& n : print_nodes) std::printf("  v(%s)", n.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < res.time.size(); i += 20) {
          std::printf("  %12.4g", res.time[i]);
          for (int id : node_ids) std::printf("  %8.5f", res.v(i, id));
          std::printf("\n");
        }
      } else if (c[0] == ".ac" && c.size() >= 4) {
        spice::solve_dc(*ckt);
        const auto freqs = spice::log_space(
            spice::parse_spice_value(c[2]), spice::parse_spice_value(c[3]),
            static_cast<int>(spice::parse_spice_value(c[1])));
        const auto res = spice::ac_analysis(*ckt, freqs);
        std::printf("\n.ac — %zu frequencies\n", freqs.size());
        for (std::size_t i = 0; i < freqs.size(); i += 4) {
          std::printf("  f=%10.4g", freqs[i]);
          for (int id : node_ids) {
            std::printf("  |v|=%9.4g", std::abs(res.v(i, id)));
          }
          std::printf("\n");
        }
      } else if (c[0] == ".noise" && c.size() >= 4) {
        spice::solve_dc(*ckt);
        if (!ckt->has_node(c[1])) {
          std::fprintf(stderr, ".noise: unknown node '%s'\n", c[1].c_str());
          continue;
        }
        const auto freqs = spice::log_space(
            spice::parse_spice_value(c[2]), spice::parse_spice_value(c[3]),
            6);
        const auto res =
            spice::noise_analysis(*ckt, ckt->find_node(c[1]), freqs);
        std::printf("\n.noise at %s\n", c[1].c_str());
        for (std::size_t i = 0; i < freqs.size(); i += 3) {
          std::printf("  f=%10.4g  %8.4g nV/rtHz\n", freqs[i],
                      std::sqrt(res.total_psd[i]) * 1e9);
        }
        std::printf("  integrated: %.4g uVrms\n",
                    res.integrated_rms(freqs.front(), freqs.back()) * 1e6);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analysis error: %s\n", e.what());
    return 1;
  }
  return 0;
}
