// Quickstart: size the unit current cell of a 12-bit, 1 V / 50 Ohm
// current-steering DAC with the paper's statistical saturation condition,
// in about twenty lines of library code.
#include <cstdio>

#include "core/sizer.hpp"
#include "tech/tech.hpp"

int main() {
  using namespace csdac;

  // 1. Pick a technology and a converter spec (defaults = the paper's
  //    12-bit, b = 4, VDD = 3.3 V, V_o = 1 V, R_L = 50 Ohm design).
  const tech::TechParams tech = tech::generic_035um();
  core::DacSpec spec;

  // 2. Create the sizer: it derives the eq. (1) unit-current accuracy and
  //    the statistical margin coefficient from the spec.
  const core::CellSizer sizer(tech.nmos, spec);
  std::printf("unit accuracy spec : sigma(I)/I <= %.3f%% (eq. 1)\n",
              sizer.sigma_unit() * 100);

  // 3. Size the cascode cell at a candidate overdrive point under the
  //    statistical saturation condition (eq. 11). The three overdrives
  //    plus the statistical margin must fit inside V_o = 1 V.
  const core::SizedCell cell =
      sizer.size_cascode(/*vod_cs=*/0.25, /*vod_sw=*/0.18, /*vod_cas=*/0.18);

  std::printf("feasible           : %s (margin %.0f mV vs the 500 mV of "
              "prior art)\n",
              cell.feasible() ? "yes" : "no", cell.sat.margin * 1e3);
  std::printf("CS transistor      : W/L = %.1f/%.1f um\n",
              cell.cell.cs.w * 1e6, cell.cell.cs.l * 1e6);
  std::printf("switch (x2)        : W/L = %.2f/%.2f um\n",
              cell.cell.sw.w * 1e6, cell.cell.sw.l * 1e6);
  std::printf("cascode            : W/L = %.2f/%.2f um\n",
              cell.cell.cas.w * 1e6, cell.cell.cas.l * 1e6);
  std::printf("gate biases        : Vg_cs=%.2f V, Vg_cas=%.2f V, "
              "Vg_sw=%.2f V\n",
              cell.cell.vg_cs, cell.cell.vg_cas, cell.cell.vg_sw);
  std::printf("settling (0.5 LSB) : %.2f ns  ->  up to %.0f MS/s\n",
              cell.poles.settling_time(spec.nbits) * 1e9,
              1e-6 / cell.poles.settling_time(spec.nbits));
  return 0;
}
