// Physical-design flow of Section 4: choose a gradient-tolerant switching
// sequence for the unary current-source array (annealed, Cong-Geiger
// style), build the Fig. 5 floorplan and emit the LEF/DEF artefacts that
// the paper feeds to commercial place & route.
#include <cstdio>
#include <fstream>

#include "core/spec.hpp"
#include "layout/floorplan.hpp"
#include "layout/switching.hpp"

using namespace csdac;
using namespace csdac::layout;

int main(int argc, char** argv) {
  const std::string out_prefix = argc > 1 ? argv[1] : "csdac_12b";
  core::DacSpec spec;

  // 1. Evaluate candidate switching schemes against the standard gradient
  //    set and keep the best (the annealed sequence).
  const ArrayGeometry geo{16, 16};
  const auto gradients = standard_gradients(0.01);
  const double weight = spec.unary_weight();

  std::printf("scheme evaluation (worst |INL| over gradient set, LSB):\n");
  for (auto [s, name] :
       {std::pair{SwitchingScheme::kRowMajor, "row-major"},
        std::pair{SwitchingScheme::kSymmetric, "symmetric"},
        std::pair{SwitchingScheme::kHierarchical, "hierarchical"}}) {
    const auto seq = make_sequence(s, geo, spec.num_unary());
    std::printf("  %-14s %.3f\n", name,
                sequence_cost(geo, seq, gradients, weight));
  }
  AnnealOptions opts;
  opts.iterations = 8000;
  const auto optimized =
      optimize_sequence(geo, spec.num_unary(), gradients, weight, opts);
  std::printf("  %-14s %.3f  <- used for the floorplan\n", "optimized(SA)",
              sequence_cost(geo, optimized, gradients, weight));

  // 2. Build the floorplan with the hierarchical scheme (the annealed
  //    order could be injected the same way) and write the artefacts.
  FloorplanOptions fopts;
  fopts.scheme = SwitchingScheme::kHierarchical;
  const Floorplan fp = build_floorplan(spec, fopts);

  const std::string lef_path = out_prefix + ".lef";
  const std::string def_path = out_prefix + ".def";
  std::ofstream(lef_path) << floorplan_lef(fp);
  std::ofstream(def_path) << floorplan_def(fp);

  std::printf("\nfloorplan: %d x %d CS array, %zu components, %zu nets\n",
              fp.cs_array.rows, fp.cs_array.cols, fp.def.components.size(),
              fp.def.nets.size());
  std::printf("die: %.0f x %.0f um\n",
              fp.def.die_x1 / 1000.0, fp.def.die_y1 / 1000.0);
  std::printf("wrote %s and %s\n", lef_path.c_str(), def_path.c_str());

  // 3. Round-trip check: parse the DEF we just wrote.
  const DefDesign parsed = parse_def(floorplan_def(fp));
  std::printf("DEF round-trip: %zu components parsed back OK\n",
              parsed.components.size());
  return 0;
}
