// The paper's Section 3 case study end-to-end: architecture selection,
// circuit-level sizing with the statistical saturation condition,
// transistor-level verification with the mini-SPICE engine, and
// Monte-Carlo yield sign-off with the behavioral converter model.
#include <cstdio>
#include <memory>

#include "core/architecture.hpp"
#include "core/explorer.hpp"
#include "core/impedance.hpp"
#include "dac/static_analysis.hpp"
#include "spice/devices.hpp"
#include "spice/measures.hpp"
#include "spice/solver.hpp"
#include "tech/tech.hpp"
#include "tech/units.hpp"

using namespace csdac;
using namespace csdac::units;

int main() {
  const auto t = tech::generic_035um().nmos;
  core::DacSpec spec;

  std::printf("=== 1. Architecture: segmentation selection ===\n");
  const core::CellSizer presizer(t, spec);
  const auto probe = presizer.size_basic(0.5, 0.25);
  const auto seg_pts = core::explore_segmentation(
      spec.nbits, probe.cell.active_area(), presizer.sigma_unit());
  const int b_opt = core::optimal_binary_bits(seg_pts, spec.inl_yield);
  std::printf("optimal split: b = %d binary + m = %d thermometer bits "
              "(paper: 4 + 8)\n\n",
              b_opt, spec.nbits - b_opt);
  spec.binary_bits = b_opt;

  std::printf("=== 2. Circuit sizing (statistical saturation condition) ===\n");
  const core::CellSizer sizer(t, spec);
  const core::DesignSpaceExplorer ex(sizer);
  const core::GridAxis g{0.05, 0.6, 16};
  const auto pt = ex.optimize_cascode(g, g, g,
                                      core::MarginPolicy::kStatistical,
                                      core::Objective::kMaxSpeed);
  if (!pt) {
    std::printf("no feasible design point!\n");
    return 1;
  }
  const core::SizedCell cell = sizer.size_cascode(
      pt->vod_cs, pt->vod_sw, pt->vod_cas, core::MarginPolicy::kStatistical);
  std::printf("overdrives (CS/CAS/SW): %.2f / %.2f / %.2f V, margin %.0f mV\n",
              cell.cell.vod_cs, cell.cell.vod_cas, cell.cell.vod_sw,
              cell.sat.margin * 1e3);
  std::printf("CS %.1f/%.1f um, CAS %.2f/%.2f um, SW %.2f/%.2f um, "
              "cell %.0f um^2\n",
              cell.cell.cs.w * 1e6, cell.cell.cs.l * 1e6,
              cell.cell.cas.w * 1e6, cell.cell.cas.l * 1e6,
              cell.cell.sw.w * 1e6, cell.cell.sw.l * 1e6,
              cell.cell.active_area() * 1e12);
  const double r_req =
      core::required_unit_rout(spec.nbits, spec.r_load, 0.5);
  std::printf("unit Rout: %.1e Ohm (requirement %.1e); SFDR-BW %.0f MHz\n\n",
              cell.rout_unit, r_req,
              core::impedance_bandwidth(t, spec, cell.cell,
                                        r_req / spec.unary_weight(), 1e3,
                                        1e10, spec.unary_weight()) *
                  1e-6);

  std::printf("=== 3. Transistor-level verification (mini-SPICE) ===\n");
  spice::Circuit ckt;
  const double m = spec.total_units();
  const int out = ckt.node("out");
  const int mid1 = ckt.node("mid1");
  const int mid2 = ckt.node("mid2");
  const int vterm = ckt.node("vterm");
  ckt.add(std::make_unique<spice::VoltageSource>(
      "vterm", vterm, 0, spec.v_out_min + spec.v_swing));
  ckt.add(std::make_unique<spice::Resistor>("rl", vterm, out, spec.r_load));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcs", ckt.node("gcs"), 0,
                                                 cell.cell.vg_cs));
  ckt.add(std::make_unique<spice::VoltageSource>("vgcas", ckt.node("gcas"),
                                                 0, cell.cell.vg_cas));
  ckt.add(std::make_unique<spice::VoltageSource>("vgsw", ckt.node("gsw"), 0,
                                                 cell.cell.vg_sw));
  auto* mcs = ckt.add(std::make_unique<spice::Mosfet>(
      "mcs", t, mid1, ckt.node("gcs"), 0, 0,
      spice::Mosfet::Geometry{cell.cell.cs.w, cell.cell.cs.l, m}));
  auto* mcas = ckt.add(std::make_unique<spice::Mosfet>(
      "mcas", t, mid2, ckt.node("gcas"), mid1, 0,
      spice::Mosfet::Geometry{cell.cell.cas.w, cell.cell.cas.l, m}));
  auto* msw = ckt.add(std::make_unique<spice::Mosfet>(
      "msw", t, out, ckt.node("gsw"), mid2, 0,
      spice::Mosfet::Geometry{cell.cell.sw.w, cell.cell.sw.l, m}));
  const auto sol = spice::solve_dc(ckt);
  const char* regions[] = {"cutoff", "triode", "saturation"};
  std::printf("full-scale current: %.2f mA (target %.2f mA)\n",
              mcs->op().id * 1e3, spec.i_fs() * 1e3);
  std::printf("regions: CS=%s CAS=%s SW=%s; V(out)=%.3f V\n\n",
              regions[static_cast<int>(mcs->op().region)],
              regions[static_cast<int>(mcas->op().region)],
              regions[static_cast<int>(msw->op().region)], sol.v(out));

  std::printf("=== 4. Monte-Carlo yield sign-off (behavioral model) ===\n");
  const auto yield = dac::inl_yield_mc(spec, sizer.sigma_unit(),
                                       /*chips=*/300, /*seed=*/99);
  std::printf("INL < 0.5 LSB yield: %.1f%% +/- %.1f%% (target %.1f%%)\n",
              yield.yield * 100, yield.ci95 * 100, spec.inl_yield * 100);
  return 0;
}
