// SPICE-format netlist text parser: lets users drive the engine with
// classic card decks instead of the C++ builder API. Supported subset:
//
//   * comment lines, '*' and ';' comments
//   Rname n+ n- value
//   Cname n+ n- value
//   Vname n+ n- [DC] value
//   Vname n+ n- PULSE(v1 v2 td tr tf pw [per])
//   Vname n+ n- SIN(off amp freq [delay])
//   Vname n+ n- PWL(t1 v1 t2 v2 ...)
//   Iname n+ n- [DC] value          (current flows n+ -> n- through source)
//   Ename out+ out- ctl+ ctl- gain  (VCVS)
//   Gname out+ out- ctl+ ctl- gm    (VCCS)
//   Mname d g s b NMOS|PMOS W=.. L=.. [M=..] [CAPS]
//
// Values accept the SPICE suffixes f p n u m k meg g t (case-insensitive)
// and engineering notation (1e-12). Node "0" and "gnd" are ground.
// Device models resolve against the TechParams passed in.
#pragma once

#include <memory>
#include <string>

#include "spice/circuit.hpp"
#include "tech/tech.hpp"

namespace csdac::spice {

class NetlistError : public std::runtime_error {
 public:
  NetlistError(int line, const std::string& what)
      : std::runtime_error("netlist line " + std::to_string(line) + ": " +
                           what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a numeric token with SPICE magnitude suffixes ("2.2k", "100f",
/// "3meg", "1e-9"). Throws std::invalid_argument on garbage.
double parse_spice_value(const std::string& token);

/// Builds a Circuit from netlist text. Throws NetlistError.
std::unique_ptr<Circuit> parse_netlist(const std::string& text,
                                       const tech::TechParams& tech);

}  // namespace csdac::spice
