// Shared template for the batched MOSFET evaluation prologue, instantiated
// once per SIMD backend (scalar here in batch.cpp, SSE2/AVX2 in their
// dedicated per-ISA translation units — mirroring src/dac/lane_kernel*).
//
// The prologue covers the part of Mosfet::evaluate() that is uniform
// across operating regions: terminal swap, vgs/vds/vbs, the body-effect
// threshold (the lone sqrt), overdrive, and the mismatch-scaled beta. The
// region-dependent current/conductance tail stays scalar in batch.cpp —
// the same pattern mathx::normal_xN uses for its log tail.
//
// Bit-identity contract: every lane must produce exactly the bits the
// scalar Mosfet::evaluate() produces. All arithmetic below is IEEE basic
// ops + sqrt in the same association order as the scalar source; fmax/fmin
// only ever differ in which signed zero they keep, and no zero sign
// reaches an output (see the vsb note inline).
#pragma once

#include "mathx/simd.hpp"
#include "spice/batch.hpp"

namespace csdac::spice::detail {

template <class Ops>
void mos_prologue(const MosBatchConsts& c, const MosBatchSpans& io,
                  int count) {
  const auto zero = Ops::fset1(0.0);
  const auto kmin = Ops::fset1(kMosMinSqrtArg);
  const auto phi = Ops::fset1(c.phi_2f);
  const auto vt0 = Ops::fset1(c.vt0);
  const auto gamma = Ops::fset1(c.gamma);
  const auto sqphi = Ops::fset1(c.sqrt_phi);
  const auto kp = Ops::fset1(c.kp);
  const auto mm = Ops::fset1(c.m);
  const auto ww = Ops::fset1(c.w);
  const auto ll = Ops::fset1(c.l);

  int i = 0;
  for (; i + Ops::kLanes <= count; i += Ops::kLanes) {
    const auto vd = Ops::floadu(io.vd + i);
    const auto vg = Ops::floadu(io.vg + i);
    const auto vs = Ops::floadu(io.vs + i);
    const auto vb = Ops::floadu(io.vb + i);

    // Symmetric conduction: the lower terminal acts as source. The swap
    // mask is strict (vd == vs keeps the declared terminals), matching the
    // scalar `if (vd < vs)`.
    const auto swap = Ops::cmp_lt(vd, vs);
    const auto vdx = Ops::fmax(vd, vs);
    const auto vsx = Ops::fmin(vd, vs);
    const auto vgs = Ops::fsub(vg, vsx);
    const auto vds = Ops::fsub(vdx, vsx);
    const auto vbs = Ops::fsub(vb, vsx);

    // vsb = 0 - vbs differs from the scalar -vbs only when vbs == +0.0
    // (yielding +0.0 instead of -0.0); the difference dies in the
    // phi_2f + vsb addition.
    const auto vsb = Ops::fsub(zero, vbs);
    const auto pre = Ops::fadd(phi, vsb);
    const auto clamped = Ops::cmp_lt(pre, kmin);
    const auto arg = Ops::fmax(pre, kmin);
    const auto sq = Ops::fsqrt(arg);
    const auto vt =
        Ops::fadd(Ops::fadd(vt0, Ops::floadu(io.dvt + i)),
                  Ops::fmul(gamma, Ops::fsub(sq, sqphi)));
    const auto vod = Ops::fsub(vgs, vt);
    // Same association as the scalar kp * beta_scale * m * w / l.
    const auto beta = Ops::fdiv(
        Ops::fmul(Ops::fmul(Ops::fmul(kp, Ops::floadu(io.bscale + i)), mm),
                  ww),
        ll);

    Ops::fstoreu(io.vgs + i, vgs);
    Ops::fstoreu(io.vds + i, vds);
    Ops::fstoreu(io.vbs + i, vbs);
    Ops::fstoreu(io.vt + i, vt);
    Ops::fstoreu(io.vod + i, vod);
    Ops::fstoreu(io.beta + i, beta);
    Ops::fstoreu(io.sqrt_arg + i, sq);
    const int sm = Ops::movemask(swap);
    const int cm = Ops::movemask(clamped);
    for (int l = 0; l < Ops::kLanes; ++l) {
      io.swapped[i + l] = static_cast<unsigned char>((sm >> l) & 1);
      io.clamped[i + l] = static_cast<unsigned char>((cm >> l) & 1);
    }
  }
  if constexpr (Ops::kLanes > 1) {
    if (i < count) {
      MosBatchSpans tail = io;
      tail.vd += i;
      tail.vg += i;
      tail.vs += i;
      tail.vb += i;
      tail.dvt += i;
      tail.bscale += i;
      tail.vgs += i;
      tail.vds += i;
      tail.vbs += i;
      tail.vt += i;
      tail.vod += i;
      tail.beta += i;
      tail.sqrt_arg += i;
      tail.swapped += i;
      tail.clamped += i;
      mos_prologue<mathx::ScalarOps>(c, tail, count - i);
    }
  }
}

}  // namespace csdac::spice::detail
