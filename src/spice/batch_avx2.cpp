// AVX2 instantiation of the batched MOSFET prologue. This TU is the only
// one compiled with -mavx2 (see src/spice/CMakeLists.txt); it is safe to
// LINK everywhere because the wide code executes only after runtime
// detection picks the AVX2 backend.
#include "spice/batch.hpp"

#if defined(__AVX2__)
#include "mathx/simd_avx2.hpp"
#include "spice/batch_impl.hpp"
#endif

namespace csdac::spice::detail {

const MosBatchKernel* mos_kernel_avx2() {
#if defined(__AVX2__)
  static const MosBatchKernel k{mathx::SimdBackend::kAvx2,
                                mathx::Avx2Ops::kLanes,
                                &mos_prologue<mathx::Avx2Ops>};
  return &k;
#else
  return nullptr;
#endif
}

}  // namespace csdac::spice::detail
