// SSE2 instantiation of the batched MOSFET prologue. SSE2 is part of the
// x86-64 baseline, so this TU needs no extra compile flags on 64-bit
// builds; the guard keeps non-x86 targets on scalar-only dispatch.
#include "spice/batch.hpp"

#if defined(__SSE2__)
#include "mathx/simd_sse2.hpp"
#include "spice/batch_impl.hpp"
#endif

namespace csdac::spice::detail {

const MosBatchKernel* mos_kernel_sse2() {
#if defined(__SSE2__)
  static const MosBatchKernel k{mathx::SimdBackend::kSse2,
                                mathx::Sse2Ops::kLanes,
                                &mos_prologue<mathx::Sse2Ops>};
  return &k;
#else
  return nullptr;
#endif
}

}  // namespace csdac::spice::detail
