#include "spice/solver.hpp"

#include <algorithm>
#include <cmath>

#include "mathx/linalg.hpp"
#include "spice/devices.hpp"

namespace csdac::spice {
namespace {

using mathx::LuSolver;
using mathx::MatrixC;
using mathx::MatrixD;

/// Assembles and solves one Newton step; returns the proposed solution.
std::vector<double> linearized_solve(Circuit& ckt, const EvalContext& ctx) {
  const int n = ckt.num_unknowns();
  MatrixD g(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
  RealStamper stamper(g, rhs, ckt.num_nodes());
  for (const auto& dev : ckt.devices()) dev->stamp(stamper, ctx);
  // gmin shunts keep otherwise-floating nodes (e.g. all-cutoff MOSFETs)
  // numerically anchored.
  for (int r = 0; r < ckt.num_nodes() - 1; ++r) {
    g(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) += ctx.gmin;
  }
  return LuSolver<double>::solve_once(g, rhs);
}

/// Newton-Raphson loop; updates x in place. Returns true on convergence.
bool newton(Circuit& ckt, EvalContext ctx, std::vector<double>& x,
            const NewtonOptions& opts) {
  const int n = ckt.num_unknowns();
  x.resize(static_cast<std::size_t>(n), 0.0);
  const int node_unknowns = ckt.num_nodes() - 1;

  for (int iter = 0; iter < opts.max_iter; ++iter) {
    ctx.x = &x;
    std::vector<double> xn;
    try {
      xn = linearized_solve(ckt, ctx);
    } catch (const mathx::SingularMatrixError&) {
      return false;
    }
    // Damping: scale the whole update so no node voltage moves more than
    // max_step in one iteration.
    double max_node_delta = 0.0;
    for (int i = 0; i < node_unknowns; ++i) {
      max_node_delta = std::max(
          max_node_delta, std::abs(xn[static_cast<std::size_t>(i)] -
                                   x[static_cast<std::size_t>(i)]));
    }
    double scale = 1.0;
    if (max_node_delta > opts.max_step) scale = opts.max_step / max_node_delta;

    bool converged = scale == 1.0;
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double delta = xn[idx] - x[idx];
      if (i < node_unknowns &&
          std::abs(delta) > opts.vtol + opts.reltol * std::abs(xn[idx])) {
        converged = false;
      }
      x[idx] += scale * delta;
    }
    if (converged) {
      // One clean re-evaluation confirms the solution is self-consistent
      // (x equals the solve of the system linearized at x).
      return true;
    }
    if (!std::all_of(x.begin(), x.end(),
                     [](double v) { return std::isfinite(v); })) {
      return false;
    }
  }
  return false;
}

void accept_all(Circuit& ckt, const EvalContext& ctx) {
  for (const auto& dev : ckt.devices()) dev->accept(ctx);
}

}  // namespace

Solution solve_dc(Circuit& ckt, const NewtonOptions& opts) {
  EvalContext ctx;
  ctx.mode = AnalysisMode::kDc;
  ctx.gmin = opts.gmin;

  std::vector<double> x(static_cast<std::size_t>(ckt.num_unknowns()), 0.0);
  bool ok = newton(ckt, ctx, x, opts);

  if (!ok && opts.gmin_stepping) {
    std::fill(x.begin(), x.end(), 0.0);
    ok = true;
    for (double gmin = 1e-2; gmin >= opts.gmin; gmin /= 10.0) {
      ctx.gmin = gmin;
      if (!newton(ckt, ctx, x, opts)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ctx.gmin = opts.gmin;
      ok = newton(ckt, ctx, x, opts);
    }
  }
  if (!ok && opts.source_stepping) {
    std::fill(x.begin(), x.end(), 0.0);
    ctx.gmin = opts.gmin;
    ok = true;
    for (int step = 1; step <= 20; ++step) {
      ctx.source_scale = static_cast<double>(step) / 20.0;
      if (!newton(ckt, ctx, x, opts)) {
        ok = false;
        break;
      }
    }
    ctx.source_scale = 1.0;
  }
  if (!ok) throw ConvergenceError("solve_dc: no convergence");

  ctx.x = &x;
  ctx.gmin = opts.gmin;
  ctx.source_scale = 1.0;
  accept_all(ckt, ctx);

  Solution sol;
  sol.x = std::move(x);
  sol.num_nodes = ckt.num_nodes();
  return sol;
}

std::vector<Solution> dc_sweep(Circuit& ckt, VoltageSource& src, double v0,
                               double v1, int points,
                               const NewtonOptions& opts) {
  if (points < 2) throw std::invalid_argument("dc_sweep: points < 2");
  std::vector<Solution> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double v =
        v0 + (v1 - v0) * static_cast<double>(i) / (points - 1);
    src.set_dc(v);
    out.push_back(solve_dc(ckt, opts));
  }
  return out;
}

std::vector<double> TranResult::node_waveform(int node) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = v(i, node);
  return out;
}

TranResult transient(Circuit& ckt, double dt, double tstop,
                     const TranOptions& opts) {
  if (!(dt > 0.0) || !(tstop > dt)) {
    throw std::invalid_argument("transient: need 0 < dt < tstop");
  }
  // Initial condition: DC at t = 0.
  Solution ic = solve_dc(ckt, opts.newton);
  std::vector<double> x = ic.x;

  EvalContext ctx;
  ctx.mode = AnalysisMode::kTran;
  ctx.gmin = opts.newton.gmin;
  ctx.x = &x;
  ctx.time = 0.0;
  ctx.dt = 0.0;
  for (const auto& dev : ckt.devices()) dev->tran_reset(ctx);

  TranResult res;
  res.num_nodes = ckt.num_nodes();
  res.time.push_back(0.0);
  res.values.push_back(x);

  double t = 0.0;
  // First step after DC uses backward Euler (the trapezoidal companion
  // needs a consistent capacitor-current history).
  bool first = true;
  while (t < tstop - 0.5 * dt) {
    double step = std::min(dt, tstop - t);
    int halvings = 0;
    double advanced = 0.0;
    while (advanced < step - 1e-18 * dt) {
      const double sub = std::min(step / std::ldexp(1.0, halvings),
                                  step - advanced);
      std::vector<double> x_try = x;
      EvalContext step_ctx = ctx;
      step_ctx.time = t + advanced + sub;
      step_ctx.dt = sub;
      step_ctx.integ =
          first ? Integrator::kBackwardEuler : opts.integ;
      if (newton(ckt, step_ctx, x_try, opts.newton)) {
        x = std::move(x_try);
        step_ctx.x = &x;
        accept_all(ckt, step_ctx);
        advanced += sub;
        first = false;
      } else {
        ++halvings;
        if (halvings > opts.max_halvings) {
          throw ConvergenceError("transient: step failed at t = " +
                                 std::to_string(t + advanced));
        }
      }
    }
    t += step;
    res.time.push_back(t);
    res.values.push_back(x);
  }
  return res;
}

AcResult ac_analysis(Circuit& ckt, const std::vector<double>& freqs,
                     double gmin) {
  const int n = ckt.num_unknowns();
  AcResult res;
  res.num_nodes = ckt.num_nodes();
  res.freq = freqs;
  res.values.reserve(freqs.size());
  for (double f : freqs) {
    const double omega = 2.0 * 3.14159265358979323846 * f;
    MatrixC g(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<std::complex<double>> rhs(static_cast<std::size_t>(n));
    ComplexStamper stamper(g, rhs, ckt.num_nodes());
    for (const auto& dev : ckt.devices()) dev->stamp_ac(stamper, omega);
    for (int r = 0; r < ckt.num_nodes() - 1; ++r) {
      g(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) += gmin;
    }
    res.values.push_back(LuSolver<std::complex<double>>::solve_once(g, rhs));
  }
  return res;
}

std::vector<double> log_space(double f0, double f1, int per_decade) {
  if (!(f0 > 0.0) || !(f1 > f0) || per_decade < 1) {
    throw std::invalid_argument("log_space: bad arguments");
  }
  std::vector<double> out;
  const double decades = std::log10(f1 / f0);
  const int total = static_cast<int>(std::ceil(decades * per_decade));
  out.reserve(static_cast<std::size_t>(total) + 1);
  for (int i = 0; i <= total; ++i) {
    out.push_back(f0 * std::pow(10.0, decades * i / total));
  }
  out.back() = f1;
  return out;
}

}  // namespace csdac::spice
