#include "spice/solver.hpp"

#include <algorithm>
#include <cmath>

#include "mathx/linalg.hpp"
#include "obs/metrics.hpp"
#include "spice/batch.hpp"
#include "spice/devices.hpp"
#include "spice/sparse.hpp"

namespace csdac::spice {

/// Everything a SolverContext caches between solves. Bound to one circuit
/// topology; bind_context() resets it when handed a different circuit (or
/// the same circuit after nodes/devices were added).
struct SolverContext::Impl {
  const Circuit* ckt = nullptr;
  int n = 0;
  std::size_t num_devices = 0;
  SparseAssembly<double> assembly;
  SparseLu<double> lu;
  std::unique_ptr<MosfetBatchSet> batch;
  std::vector<double> rhs;  ///< scratch RHS for the sparse path
};

SolverContext::SolverContext() : impl_(std::make_unique<Impl>()) {}
SolverContext::~SolverContext() = default;
SolverContext::SolverContext(SolverContext&&) noexcept = default;
SolverContext& SolverContext::operator=(SolverContext&&) noexcept = default;

void SolverContext::invalidate() {
  impl_->ckt = nullptr;
  impl_->n = 0;
  impl_->num_devices = 0;
  impl_->assembly.invalidate();
  impl_->lu.reset();
  impl_->batch.reset();
}

namespace {

using mathx::LuSolver;
using mathx::MatrixC;
using mathx::MatrixD;

/// Process-wide spice.* counters (exported through /metrics by the serve
/// layer, asserted by tools/check_metrics.py --expect-spice).
struct SpiceMetrics {
  obs::Counter& solves;
  obs::Counter& newton_iters;
  obs::Counter& factorizations;
  obs::Counter& refactorizations;
  obs::Counter& dense_solves;
  obs::Counter& device_evals;
  obs::Counter& warm_starts;
  obs::Counter& warm_start_hits;

  static SpiceMetrics& get() {
    auto& reg = obs::Registry::global();
    static SpiceMetrics m{
        reg.counter("spice.solves", "linear MNA systems solved"),
        reg.counter("spice.newton_iters", "Newton-Raphson iterations"),
        reg.counter("spice.factorizations",
                    "sparse LU full factorizations (pivoting + symbolic)"),
        reg.counter("spice.refactorizations",
                    "sparse LU numeric-only refactorizations"),
        reg.counter("spice.dense_solves", "dense LU factorizations"),
        reg.counter("spice.device_evals", "batched MOSFET model evaluations"),
        reg.counter("spice.warm_starts",
                    "DC solves seeded from a previous operating point"),
        reg.counter("spice.warm_start_hits",
                    "warm-started DC solves converged without homotopy"),
    };
    return m;
  }
};

/// Resolves the effective backend for a circuit of n unknowns.
bool use_sparse(const NewtonOptions& opts, int n) {
  switch (opts.solver) {
    case LinearSolverKind::kDense:
      return false;
    case LinearSolverKind::kSparse:
      return true;
    case LinearSolverKind::kAuto:
      break;
  }
  return n >= opts.sparse_threshold;
}

/// Binds a context to a circuit, resetting cached state when the topology
/// it was built for no longer matches.
SolverContext::Impl& bind_context(SolverContext& sc, const Circuit& ckt) {
  SolverContext::Impl& im = sc.impl();
  if (im.ckt != &ckt || im.n != ckt.num_unknowns() ||
      im.num_devices != ckt.devices().size()) {
    sc.invalidate();
    im.ckt = &ckt;
    im.n = ckt.num_unknowns();
    im.num_devices = ckt.devices().size();
  }
  return im;
}

/// First singular pivot seen during a (failed) Newton descent; solve_dc
/// turns it into a SingularSystemError naming the unknown.
struct SingularInfo {
  bool hit = false;
  std::size_t row = 0;
};

/// Maps an MNA row to its unknown: node voltage or device branch current.
SingularSystemError make_singular_error(const Circuit& ckt, std::size_t row,
                                        const std::string& analysis) {
  const int node_unknowns = ckt.num_nodes() - 1;
  std::string unknown = "unknown " + std::to_string(row);
  if (row < static_cast<std::size_t>(node_unknowns)) {
    unknown = "node '" + ckt.node_name(static_cast<int>(row) + 1) + "'";
  } else {
    for (const auto& dev : ckt.devices()) {
      for (int k = 0; k < dev->branch_count(); ++k) {
        if (static_cast<std::size_t>(
                dev->branch_matrix_row(ckt.num_nodes(), k)) == row) {
          unknown = "branch of device '" + dev->name() + "'";
        }
      }
    }
  }
  return SingularSystemError(
      row, unknown,
      analysis + ": singular MNA matrix at row " + std::to_string(row) +
          " (" + unknown +
          ") — check for a floating node or a voltage-source loop");
}

/// Assembles and solves one Newton step; returns the proposed solution.
/// Throws mathx::SingularMatrixError (original unknown index) when no
/// usable pivot exists.
std::vector<double> linearized_solve(Circuit& ckt, const EvalContext& ctx,
                                     SolverContext::Impl& im, bool sparse,
                                     SolveStats* stats) {
  const int n = ckt.num_unknowns();
  SpiceMetrics& m = SpiceMetrics::get();

  if (im.batch == nullptr) im.batch = std::make_unique<MosfetBatchSet>(ckt);
  MosfetBatchSet& batch = *im.batch;
  if (!batch.empty()) {
    batch.evaluate(ctx);
    if (stats != nullptr) stats->device_evals += batch.device_count();
    m.device_evals.add(batch.device_count());
  }
  // Stamping runs in ORIGINAL device order with the cached evaluations, so
  // matrix accumulation order — and therefore every rounding — matches the
  // historical one-virtual-call-per-device path exactly.
  const auto stamp_all = [&](RealStamper& stamper) {
    for (const auto& dev : ckt.devices()) {
      if (const Mosfet::Eval* e = batch.eval_for(dev.get())) {
        static_cast<const Mosfet*>(dev.get())->stamp_linearized(stamper, ctx,
                                                                *e);
      } else {
        dev->stamp(stamper, ctx);
      }
    }
  };

  if (!sparse) {
    MatrixD g(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
    RealStamper stamper(g, rhs, ckt.num_nodes());
    stamp_all(stamper);
    // gmin shunts keep otherwise-floating nodes (e.g. all-cutoff MOSFETs)
    // numerically anchored.
    for (int r = 0; r < ckt.num_nodes() - 1; ++r) {
      g(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) += ctx.gmin;
    }
    if (stats != nullptr) stats->dense_solves += 1;
    m.dense_solves.add(1);
    m.solves.add(1);
    return LuSolver<double>::solve_once(g, rhs);
  }

  im.assembly.begin(n);
  im.rhs.assign(static_cast<std::size_t>(n), 0.0);
  RealStamper stamper(im.assembly, im.rhs, ckt.num_nodes());
  stamp_all(stamper);
  for (int r = 0; r < ckt.num_nodes() - 1; ++r) {
    im.assembly.add(r, r, ctx.gmin);
  }
  const bool pattern_changed = im.assembly.finish();

  bool full = pattern_changed || !im.lu.has_symbolic();
  if (!full) {
    if (im.lu.refactorize(im.assembly)) {
      if (stats != nullptr) stats->refactorizations += 1;
      m.refactorizations.add(1);
    } else {
      full = true;  // pivot degraded past the floor: re-pivot from scratch
    }
  }
  if (full) {
    im.lu.factorize(im.assembly);
    if (stats != nullptr) stats->factorizations += 1;
    m.factorizations.add(1);
  }
  m.solves.add(1);
  std::vector<double> out = im.rhs;
  im.lu.solve(out);
  return out;
}

/// Newton-Raphson loop; updates x in place. Returns true on convergence.
bool newton(Circuit& ckt, EvalContext ctx, std::vector<double>& x,
            const NewtonOptions& opts, SolverContext::Impl& im, bool sparse,
            SingularInfo* sing) {
  const int n = ckt.num_unknowns();
  x.resize(static_cast<std::size_t>(n), 0.0);
  const int node_unknowns = ckt.num_nodes() - 1;

  for (int iter = 0; iter < opts.max_iter; ++iter) {
    ctx.x = &x;
    std::vector<double> xn;
    try {
      xn = linearized_solve(ckt, ctx, im, sparse, opts.stats);
    } catch (const mathx::SingularMatrixError& e) {
      if (sing != nullptr && !sing->hit) {
        sing->hit = true;
        sing->row = e.pivot_row();
      }
      return false;
    }
    if (opts.stats != nullptr) opts.stats->newton_iters += 1;
    SpiceMetrics::get().newton_iters.add(1);
    // Damping: scale the whole update so no node voltage moves more than
    // max_step in one iteration.
    double max_node_delta = 0.0;
    for (int i = 0; i < node_unknowns; ++i) {
      max_node_delta = std::max(
          max_node_delta, std::abs(xn[static_cast<std::size_t>(i)] -
                                   x[static_cast<std::size_t>(i)]));
    }
    double scale = 1.0;
    if (max_node_delta > opts.max_step) scale = opts.max_step / max_node_delta;

    bool converged = scale == 1.0;
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double delta = xn[idx] - x[idx];
      if (i < node_unknowns &&
          std::abs(delta) > opts.vtol + opts.reltol * std::abs(xn[idx])) {
        converged = false;
      }
      x[idx] += scale * delta;
    }
    if (converged) {
      // One clean re-evaluation confirms the solution is self-consistent
      // (x equals the solve of the system linearized at x).
      return true;
    }
    if (!std::all_of(x.begin(), x.end(),
                     [](double v) { return std::isfinite(v); })) {
      return false;
    }
  }
  return false;
}

void accept_all(Circuit& ckt, const EvalContext& ctx) {
  for (const auto& dev : ckt.devices()) dev->accept(ctx);
}

}  // namespace

Solution solve_dc(Circuit& ckt, const NewtonOptions& opts) {
  EvalContext ctx;
  ctx.mode = AnalysisMode::kDc;
  ctx.gmin = opts.gmin;

  SolverContext local;
  SolverContext::Impl& im =
      bind_context(opts.context != nullptr ? *opts.context : local, ckt);
  const bool sparse = use_sparse(opts, ckt.num_unknowns());
  SolveStats* stats = opts.stats;
  SpiceMetrics& m = SpiceMetrics::get();

  const auto n = static_cast<std::size_t>(ckt.num_unknowns());
  std::vector<double> x;
  const bool warm = opts.x0 != nullptr && opts.x0->size() == n;
  if (warm) {
    x = *opts.x0;
    if (stats != nullptr) stats->warm_starts += 1;
    m.warm_starts.add(1);
  } else {
    x.assign(n, 0.0);
  }

  SingularInfo sing;
  bool ok = newton(ckt, ctx, x, opts, im, sparse, &sing);
  if (ok && warm) {
    if (stats != nullptr) stats->warm_start_hits += 1;
    m.warm_start_hits.add(1);
  }
  if (!ok && warm) {
    // A bad seed must not be worse than no seed: retry cold before any
    // homotopy, exactly as a cold solve would have started.
    std::fill(x.begin(), x.end(), 0.0);
    ok = newton(ckt, ctx, x, opts, im, sparse, &sing);
  }

  if (!ok && opts.gmin_stepping) {
    std::fill(x.begin(), x.end(), 0.0);
    ok = true;
    for (double gmin = 1e-2; gmin >= opts.gmin; gmin /= 10.0) {
      ctx.gmin = gmin;
      if (!newton(ckt, ctx, x, opts, im, sparse, &sing)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ctx.gmin = opts.gmin;
      ok = newton(ckt, ctx, x, opts, im, sparse, &sing);
    }
  }
  if (!ok && opts.source_stepping) {
    std::fill(x.begin(), x.end(), 0.0);
    ctx.gmin = opts.gmin;
    ok = true;
    for (int step = 1; step <= 20; ++step) {
      ctx.source_scale = static_cast<double>(step) / 20.0;
      if (!newton(ckt, ctx, x, opts, im, sparse, &sing)) {
        ok = false;
        break;
      }
    }
    ctx.source_scale = 1.0;
  }
  if (!ok) {
    if (sing.hit) throw make_singular_error(ckt, sing.row, "solve_dc");
    throw ConvergenceError("solve_dc: no convergence");
  }

  ctx.x = &x;
  ctx.gmin = opts.gmin;
  ctx.source_scale = 1.0;
  accept_all(ckt, ctx);

  Solution sol;
  sol.x = std::move(x);
  sol.num_nodes = ckt.num_nodes();
  return sol;
}

std::vector<Solution> dc_sweep(Circuit& ckt, VoltageSource& src, double v0,
                               double v1, int points,
                               const NewtonOptions& opts) {
  if (points < 2) throw std::invalid_argument("dc_sweep: points < 2");
  // One context for the whole sweep: the symbolic factorization from the
  // first point is replayed at every other one.
  SolverContext local;
  NewtonOptions o = opts;
  if (o.context == nullptr) o.context = &local;
  std::vector<Solution> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double v =
        v0 + (v1 - v0) * static_cast<double>(i) / (points - 1);
    src.set_dc(v);
    out.push_back(solve_dc(ckt, o));
  }
  return out;
}

std::vector<double> TranResult::node_waveform(int node) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = v(i, node);
  return out;
}

std::vector<double> TranResult::branch_waveform(const Device& d, int k) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = branch_current(i, d, k);
  }
  return out;
}

TranResult transient(Circuit& ckt, double dt, double tstop,
                     const TranOptions& opts) {
  if (!(dt > 0.0) || !(tstop > dt)) {
    throw std::invalid_argument("transient: need 0 < dt < tstop");
  }
  // One context across the DC seed and every timestep. The capacitor
  // companion entries appear at the first transient step; the assembly
  // reports that pattern growth and the engine re-runs the symbolic
  // factorization exactly once.
  SolverContext local;
  TranOptions topts = opts;
  if (topts.newton.context == nullptr) topts.newton.context = &local;

  // Initial condition: DC at t = 0.
  Solution ic = solve_dc(ckt, topts.newton);
  std::vector<double> x = ic.x;

  EvalContext ctx;
  ctx.mode = AnalysisMode::kTran;
  ctx.gmin = topts.newton.gmin;
  ctx.x = &x;
  ctx.time = 0.0;
  ctx.dt = 0.0;
  for (const auto& dev : ckt.devices()) dev->tran_reset(ctx);

  SolverContext::Impl& im = bind_context(*topts.newton.context, ckt);
  const bool sparse = use_sparse(topts.newton, ckt.num_unknowns());

  TranResult res;
  res.num_nodes = ckt.num_nodes();
  // Upper bound on accepted steps (+1 for the DC point); halvings retry
  // within a step, so they never add rows.
  const auto est_steps =
      static_cast<std::size_t>(std::ceil(tstop / dt)) + 2;
  res.time.reserve(est_steps);
  res.values.reserve(est_steps);
  res.time.push_back(0.0);
  res.values.push_back(x);

  double t = 0.0;
  // First step after DC uses backward Euler (the trapezoidal companion
  // needs a consistent capacitor-current history).
  bool first = true;
  while (t < tstop - 0.5 * dt) {
    double step = std::min(dt, tstop - t);
    int halvings = 0;
    double advanced = 0.0;
    while (advanced < step - 1e-18 * dt) {
      const double sub = std::min(step / std::ldexp(1.0, halvings),
                                  step - advanced);
      std::vector<double> x_try = x;
      EvalContext step_ctx = ctx;
      step_ctx.time = t + advanced + sub;
      step_ctx.dt = sub;
      step_ctx.integ =
          first ? Integrator::kBackwardEuler : opts.integ;
      SingularInfo sing;
      if (newton(ckt, step_ctx, x_try, topts.newton, im, sparse, &sing)) {
        x = std::move(x_try);
        step_ctx.x = &x;
        accept_all(ckt, step_ctx);
        advanced += sub;
        first = false;
      } else {
        if (sing.hit) {
          throw make_singular_error(ckt, sing.row, "transient");
        }
        ++halvings;
        if (halvings > opts.max_halvings) {
          throw ConvergenceError("transient: step failed at t = " +
                                 std::to_string(t + advanced));
        }
      }
    }
    t += step;
    res.time.push_back(t);
    res.values.push_back(x);
  }
  return res;
}

std::vector<std::complex<double>> AcResult::node_waveform(int node) const {
  std::vector<std::complex<double>> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = v(i, node);
  return out;
}

std::vector<std::complex<double>> AcResult::branch_waveform(const Device& d,
                                                            int k) const {
  std::vector<std::complex<double>> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = branch_current(i, d, k);
  }
  return out;
}

AcResult ac_analysis(Circuit& ckt, const std::vector<double>& freqs,
                     double gmin) {
  AcOptions opts;
  opts.gmin = gmin;
  return ac_analysis(ckt, freqs, opts);
}

AcResult ac_analysis(Circuit& ckt, const std::vector<double>& freqs,
                     const AcOptions& opts) {
  const int n = ckt.num_unknowns();
  NewtonOptions policy;
  policy.solver = opts.solver;
  policy.sparse_threshold = opts.sparse_threshold;
  const bool sparse = use_sparse(policy, n);
  SpiceMetrics& m = SpiceMetrics::get();

  AcResult res;
  res.num_nodes = ckt.num_nodes();
  res.freq = freqs;
  res.values.reserve(freqs.size());

  // Sparse path: every frequency stamps the same entry set (admittances
  // scale with omega but never vanish structurally), so the complex
  // symbolic factorization from the first point is replayed at the rest.
  SparseAssembly<std::complex<double>> assembly;
  SparseLu<std::complex<double>> lu;

  for (double f : freqs) {
    const double omega = 2.0 * 3.14159265358979323846 * f;
    std::vector<std::complex<double>> rhs(static_cast<std::size_t>(n));
    if (!sparse) {
      MatrixC g(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
      ComplexStamper stamper(g, rhs, ckt.num_nodes());
      for (const auto& dev : ckt.devices()) dev->stamp_ac(stamper, omega);
      for (int r = 0; r < ckt.num_nodes() - 1; ++r) {
        g(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) +=
            opts.gmin;
      }
      if (opts.stats != nullptr) opts.stats->dense_solves += 1;
      m.dense_solves.add(1);
      m.solves.add(1);
      res.values.push_back(
          LuSolver<std::complex<double>>::solve_once(g, rhs));
      continue;
    }
    assembly.begin(n);
    ComplexStamper stamper(assembly, rhs, ckt.num_nodes());
    for (const auto& dev : ckt.devices()) dev->stamp_ac(stamper, omega);
    for (int r = 0; r < ckt.num_nodes() - 1; ++r) {
      assembly.add(r, r, std::complex<double>{opts.gmin, 0.0});
    }
    const bool pattern_changed = assembly.finish();
    bool full = pattern_changed || !lu.has_symbolic();
    if (!full) {
      if (lu.refactorize(assembly)) {
        if (opts.stats != nullptr) opts.stats->refactorizations += 1;
        m.refactorizations.add(1);
      } else {
        full = true;
      }
    }
    if (full) {
      try {
        lu.factorize(assembly);
      } catch (const mathx::SingularMatrixError& e) {
        throw make_singular_error(ckt, e.pivot_row(), "ac_analysis");
      }
      if (opts.stats != nullptr) opts.stats->factorizations += 1;
      m.factorizations.add(1);
    }
    m.solves.add(1);
    lu.solve(rhs);
    res.values.push_back(std::move(rhs));
  }
  return res;
}

std::vector<double> log_space(double f0, double f1, int per_decade) {
  if (!(f0 > 0.0) || !(f1 > f0) || per_decade < 1) {
    throw std::invalid_argument("log_space: bad arguments");
  }
  std::vector<double> out;
  const double decades = std::log10(f1 / f0);
  const int total = static_cast<int>(std::ceil(decades * per_decade));
  out.reserve(static_cast<std::size_t>(total) + 1);
  for (int i = 0; i <= total; ++i) {
    out.push_back(f0 * std::pow(10.0, decades * i / total));
  }
  out.back() = f1;
  return out;
}

}  // namespace csdac::spice
