// Post-processing measurements on analysis results: settling time, pole
// (-3 dB) extraction, and an output-impedance probe built on AC analysis.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/solver.hpp"

namespace csdac::spice {

/// Settling time: the last instant the waveform leaves the +/- tol band
/// around v_final (0 if it never leaves). `times` and `v` must match.
double settling_time(std::span<const double> times, std::span<const double> v,
                     double v_final, double tol);

/// First time the waveform crosses `level` (linear interpolation);
/// returns a negative value if it never does.
double crossing_time(std::span<const double> times, std::span<const double> v,
                     double level);

/// -3 dB frequency of a magnitude response |H(f)| relative to its value at
/// the lowest frequency; log-interpolated. Negative if never reached.
double minus3db_frequency(std::span<const double> freqs,
                          std::span<const std::complex<double>> h);

/// Small-signal impedance looking into `node`, measured by adding a 1 A AC
/// current probe (0 A DC, so the bias point is untouched) from ground into
/// the node and reading the node voltage. NOTE: the probe stays in the
/// circuit; use on purpose-built measurement circuits. A DC solve must have
/// been run before calling (and is re-used).
std::vector<std::complex<double>> impedance_probe(
    Circuit& ckt, int node, const std::vector<double>& freqs);

}  // namespace csdac::spice
