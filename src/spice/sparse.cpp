#include "spice/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <queue>
#include <utility>

#include "mathx/linalg.hpp"

namespace csdac::spice {
namespace {

inline double mag(double v) { return std::fabs(v); }
inline double mag(const std::complex<double>& v) { return std::abs(v); }

/// Threshold for keeping the diagonal as pivot during full factorization:
/// the diagonal wins whenever |diag| >= kPivotTau * colmax. MNA diagonals
/// are the natural pivots (gmin guarantees node-row diagonals), so a mild
/// threshold keeps fill low without sacrificing stability.
constexpr double kPivotTau = 0.1;

/// Refactorization stability floor: a replayed pivot smaller than
/// kRefactorFloor times its column's magnitude forces a fresh pivoting
/// factorization instead of dividing by a near-zero.
constexpr double kRefactorFloor = 1e-10;

}  // namespace

// --- SparseAssembly --------------------------------------------------------

template <typename T>
void SparseAssembly<T>::begin(int n) {
  if (n != n_) {
    n_ = n;
    pattern_ready_ = false;
    col_ptr_.clear();
    row_idx_.clear();
    val_.clear();
  }
  if (pattern_ready_) {
    std::fill(val_.begin(), val_.end(), T{});
  }
  pending_.clear();
}

template <typename T>
bool SparseAssembly<T>::finish() {
  if (pending_.empty()) return false;
  // Union of the existing pattern and the pending coordinates, built as
  // one coordinate list sorted by (col, row) with duplicates summed.
  struct Coord {
    int r, c;
    T v;
  };
  std::vector<Coord> coords;
  coords.reserve(row_idx_.size() + pending_.size());
  if (pattern_ready_) {
    for (int c = 0; c < n_; ++c) {
      for (int p = col_ptr_[static_cast<std::size_t>(c)];
           p < col_ptr_[static_cast<std::size_t>(c) + 1]; ++p) {
        coords.push_back(Coord{row_idx_[static_cast<std::size_t>(p)], c,
                               val_[static_cast<std::size_t>(p)]});
      }
    }
  }
  for (const auto& t : pending_) coords.push_back(Coord{t.r, t.c, t.v});
  pending_.clear();
  // stable_sort keeps duplicates in stamp order, so the summed value of a
  // coordinate matches what later slot-based accumulation produces — the
  // first assembled matrix is bit-identical to every reassembled one.
  std::stable_sort(coords.begin(), coords.end(),
                   [](const Coord& a, const Coord& b) {
                     return a.c != b.c ? a.c < b.c : a.r < b.r;
                   });
  col_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  row_idx_.clear();
  val_.clear();
  row_idx_.reserve(coords.size());
  val_.reserve(coords.size());
  for (std::size_t i = 0; i < coords.size();) {
    const int r = coords[i].r;
    const int c = coords[i].c;
    T sum = T{};
    for (; i < coords.size() && coords[i].r == r && coords[i].c == c; ++i) {
      sum += coords[i].v;
    }
    row_idx_.push_back(r);
    val_.push_back(sum);
    ++col_ptr_[static_cast<std::size_t>(c) + 1];
  }
  for (int c = 0; c < n_; ++c) {
    col_ptr_[static_cast<std::size_t>(c) + 1] +=
        col_ptr_[static_cast<std::size_t>(c)];
  }
  pattern_ready_ = true;
  return true;
}

// --- Minimum-degree ordering ------------------------------------------------

std::vector<int> min_degree_order(int n, const std::vector<int>& col_ptr,
                                  const std::vector<int>& row_idx) {
  // Symmetrized adjacency (A + A^T, no diagonal), sorted and unique.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    for (int p = col_ptr[static_cast<std::size_t>(c)];
         p < col_ptr[static_cast<std::size_t>(c) + 1]; ++p) {
      const int r = row_idx[static_cast<std::size_t>(p)];
      if (r == c) continue;
      adj[static_cast<std::size_t>(r)].push_back(c);
      adj[static_cast<std::size_t>(c)].push_back(r);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  // Lazy min-heap of (degree, node); stale entries are skipped on pop.
  using Entry = std::pair<int, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  std::vector<int> degree(static_cast<std::size_t>(n));
  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  for (int v = 0; v < n; ++v) {
    degree[static_cast<std::size_t>(v)] =
        static_cast<int>(adj[static_cast<std::size_t>(v)].size());
    heap.push({degree[static_cast<std::size_t>(v)], v});
  }

  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> in_front(static_cast<std::size_t>(n), 0);
  std::vector<int> front, merged;
  while (static_cast<int>(order.size()) < n) {
    int v = -1;
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (alive[static_cast<std::size_t>(u)] &&
          d == degree[static_cast<std::size_t>(u)]) {
        v = u;
        break;
      }
    }
    if (v < 0) break;  // unreachable: every alive node stays in the heap
    order.push_back(v);
    alive[static_cast<std::size_t>(v)] = 0;
    // Eliminate v: its alive neighbors become a clique.
    front.clear();
    for (int u : adj[static_cast<std::size_t>(v)]) {
      if (alive[static_cast<std::size_t>(u)]) {
        front.push_back(u);
        in_front[static_cast<std::size_t>(u)] = 1;
      }
    }
    for (int u : front) {
      merged.clear();
      for (int w : adj[static_cast<std::size_t>(u)]) {
        if (alive[static_cast<std::size_t>(w)] && w != v &&
            !in_front[static_cast<std::size_t>(w)]) {
          merged.push_back(w);
        }
      }
      for (int w : front) {
        if (w != u) merged.push_back(w);
      }
      adj[static_cast<std::size_t>(u)].swap(merged);
      degree[static_cast<std::size_t>(u)] =
          static_cast<int>(adj[static_cast<std::size_t>(u)].size());
      heap.push({degree[static_cast<std::size_t>(u)], u});
    }
    for (int u : front) in_front[static_cast<std::size_t>(u)] = 0;
    adj[static_cast<std::size_t>(v)].clear();
    adj[static_cast<std::size_t>(v)].shrink_to_fit();
  }
  return order;
}

// --- SparseLu ---------------------------------------------------------------

template <typename T>
void SparseLu<T>::factorize(const SparseAssembly<T>& a) {
  const int n = a.n();
  n_ = n;
  const auto& ap = a.col_ptr();
  const auto& ai = a.row_idx();
  const auto& ax = a.values();

  q_ = min_degree_order(n, ap, ai);
  pinv_.assign(static_cast<std::size_t>(n), -1);
  lp_.assign(static_cast<std::size_t>(n) + 1, 0);
  up_.assign(static_cast<std::size_t>(n) + 1, 0);
  li_.clear();
  lx_.clear();
  ui_.clear();
  ux_.clear();

  std::vector<T> w(static_cast<std::size_t>(n), T{});
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  std::vector<int> reach, stack, upart, cand;

  for (int k = 0; k < n; ++k) {
    const int col = q_[static_cast<std::size_t>(k)];
    // Symbolic: rows reachable from A(:,col) through the columns of L
    // factored so far (original row ids; order fixed by the sorts below).
    reach.clear();
    stack.clear();
    for (int p = ap[static_cast<std::size_t>(col)];
         p < ap[static_cast<std::size_t>(col) + 1]; ++p) {
      const int r = ai[static_cast<std::size_t>(p)];
      if (!mark[static_cast<std::size_t>(r)]) {
        mark[static_cast<std::size_t>(r)] = 1;
        stack.push_back(r);
        reach.push_back(r);
      }
    }
    while (!stack.empty()) {
      const int r = stack.back();
      stack.pop_back();
      const int j = pinv_[static_cast<std::size_t>(r)];
      if (j < 0) continue;
      for (int p = lp_[static_cast<std::size_t>(j)];
           p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
        const int rr = li_[static_cast<std::size_t>(p)];
        if (!mark[static_cast<std::size_t>(rr)]) {
          mark[static_cast<std::size_t>(rr)] = 1;
          stack.push_back(rr);
          reach.push_back(rr);
        }
      }
    }
    upart.clear();
    cand.clear();
    for (int r : reach) {
      (pinv_[static_cast<std::size_t>(r)] >= 0 ? upart : cand).push_back(r);
    }
    // Ascending pivot order is a valid topological order for the
    // triangular update, and it is the SAME order refactorize() uses —
    // which is what makes the two paths bit-identical.
    std::sort(upart.begin(), upart.end(), [&](int x, int y) {
      return pinv_[static_cast<std::size_t>(x)] <
             pinv_[static_cast<std::size_t>(y)];
    });
    std::sort(cand.begin(), cand.end());

    // Numeric: w = A(:,col), then eliminate through the recorded columns.
    for (int p = ap[static_cast<std::size_t>(col)];
         p < ap[static_cast<std::size_t>(col) + 1]; ++p) {
      w[static_cast<std::size_t>(ai[static_cast<std::size_t>(p)])] =
          ax[static_cast<std::size_t>(p)];
    }
    for (int r : upart) {
      const int j = pinv_[static_cast<std::size_t>(r)];
      const T uval = w[static_cast<std::size_t>(r)];
      ui_.push_back(j);
      ux_.push_back(uval);
      for (int p = lp_[static_cast<std::size_t>(j)];
           p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
        w[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
            lx_[static_cast<std::size_t>(p)] * uval;
      }
    }

    // Pivot: largest candidate magnitude, diagonal preferred within tau.
    int ipiv = -1;
    double amax = 0.0;
    for (int r : cand) {
      const double m = mag(w[static_cast<std::size_t>(r)]);
      if (m > amax) {
        amax = m;
        ipiv = r;
      }
    }
    if (ipiv < 0 || !(amax > 0.0) || !std::isfinite(amax)) {
      // Clean up scratch before throwing so the object stays reusable.
      for (int r : reach) {
        w[static_cast<std::size_t>(r)] = T{};
        mark[static_cast<std::size_t>(r)] = 0;
      }
      n_ = 0;
      throw mathx::SingularMatrixError(static_cast<std::size_t>(col));
    }
    if (pinv_[static_cast<std::size_t>(col)] < 0 &&
        mag(w[static_cast<std::size_t>(col)]) >= kPivotTau * amax) {
      ipiv = col;
    }
    const T pivot = w[static_cast<std::size_t>(ipiv)];
    pinv_[static_cast<std::size_t>(ipiv)] = k;
    ui_.push_back(k);
    ux_.push_back(pivot);
    up_[static_cast<std::size_t>(k) + 1] = static_cast<int>(ui_.size());
    for (int r : cand) {
      if (r == ipiv) continue;
      li_.push_back(r);  // original row id; remapped to pivot space below
      lx_.push_back(w[static_cast<std::size_t>(r)] / pivot);
    }
    lp_[static_cast<std::size_t>(k) + 1] = static_cast<int>(li_.size());

    for (int r : reach) {
      w[static_cast<std::size_t>(r)] = T{};
      mark[static_cast<std::size_t>(r)] = 0;
    }
  }

  // Remap L's rows into pivot space and sort each column ascending so the
  // refactorization replay and the solves see a canonical layout.
  for (auto& r : li_) r = pinv_[static_cast<std::size_t>(r)];
  std::vector<std::pair<int, T>> colbuf;
  for (int k = 0; k < n; ++k) {
    const int lo = lp_[static_cast<std::size_t>(k)];
    const int hi = lp_[static_cast<std::size_t>(k) + 1];
    colbuf.clear();
    for (int p = lo; p < hi; ++p) {
      colbuf.emplace_back(li_[static_cast<std::size_t>(p)],
                          lx_[static_cast<std::size_t>(p)]);
    }
    std::sort(colbuf.begin(), colbuf.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (int p = lo; p < hi; ++p) {
      li_[static_cast<std::size_t>(p)] =
          colbuf[static_cast<std::size_t>(p - lo)].first;
      lx_[static_cast<std::size_t>(p)] =
          colbuf[static_cast<std::size_t>(p - lo)].second;
    }
  }
  ++factorizations_;
}

template <typename T>
bool SparseLu<T>::refactorize(const SparseAssembly<T>& a) {
  if (n_ == 0 || a.n() != n_) return false;
  const auto& ap = a.col_ptr();
  const auto& ai = a.row_idx();
  const auto& ax = a.values();

  auto& w = work_;
  w.assign(static_cast<std::size_t>(n_), T{});
  for (int k = 0; k < n_; ++k) {
    const int col = q_[static_cast<std::size_t>(k)];
    for (int p = ap[static_cast<std::size_t>(col)];
         p < ap[static_cast<std::size_t>(col) + 1]; ++p) {
      w[static_cast<std::size_t>(
          pinv_[static_cast<std::size_t>(ai[static_cast<std::size_t>(p)])])] =
          ax[static_cast<std::size_t>(p)];
    }
    const int ulo = up_[static_cast<std::size_t>(k)];
    const int uhi = up_[static_cast<std::size_t>(k) + 1];
    for (int p = ulo; p < uhi - 1; ++p) {
      const int j = ui_[static_cast<std::size_t>(p)];
      const T uval = w[static_cast<std::size_t>(j)];
      ux_[static_cast<std::size_t>(p)] = uval;
      for (int q = lp_[static_cast<std::size_t>(j)];
           q < lp_[static_cast<std::size_t>(j) + 1]; ++q) {
        w[static_cast<std::size_t>(li_[static_cast<std::size_t>(q)])] -=
            lx_[static_cast<std::size_t>(q)] * uval;
      }
    }
    const T pivot = w[static_cast<std::size_t>(k)];
    double colmax = mag(pivot);
    const int llo = lp_[static_cast<std::size_t>(k)];
    const int lhi = lp_[static_cast<std::size_t>(k) + 1];
    for (int p = llo; p < lhi; ++p) {
      colmax = std::max(
          colmax, mag(w[static_cast<std::size_t>(
                        li_[static_cast<std::size_t>(p)])]));
    }
    if (!(mag(pivot) > 0.0) || !std::isfinite(mag(pivot)) ||
        mag(pivot) < kRefactorFloor * colmax) {
      // Pivot degraded: clear scratch and ask the caller to re-pivot.
      for (int p = ulo; p < uhi; ++p) {
        w[static_cast<std::size_t>(ui_[static_cast<std::size_t>(p)])] = T{};
      }
      w[static_cast<std::size_t>(k)] = T{};
      for (int p = llo; p < lhi; ++p) {
        w[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] = T{};
      }
      return false;
    }
    ux_[static_cast<std::size_t>(uhi) - 1] = pivot;
    for (int p = llo; p < lhi; ++p) {
      lx_[static_cast<std::size_t>(p)] =
          w[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] /
          pivot;
    }
    for (int p = ulo; p < uhi; ++p) {
      w[static_cast<std::size_t>(ui_[static_cast<std::size_t>(p)])] = T{};
    }
    for (int p = llo; p < lhi; ++p) {
      w[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] = T{};
    }
  }
  ++refactorizations_;
  return true;
}

template <typename T>
void SparseLu<T>::solve(std::vector<T>& b) const {
  auto& w = work_;
  w.resize(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r) {
    w[static_cast<std::size_t>(pinv_[static_cast<std::size_t>(r)])] =
        b[static_cast<std::size_t>(r)];
  }
  for (int j = 0; j < n_; ++j) {
    const T xj = w[static_cast<std::size_t>(j)];
    if (!(xj == T{})) {
      for (int p = lp_[static_cast<std::size_t>(j)];
           p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
        w[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
            lx_[static_cast<std::size_t>(p)] * xj;
      }
    }
  }
  for (int k = n_ - 1; k >= 0; --k) {
    const int last = up_[static_cast<std::size_t>(k) + 1] - 1;
    const T xk = w[static_cast<std::size_t>(k)] /
                 ux_[static_cast<std::size_t>(last)];
    w[static_cast<std::size_t>(k)] = xk;
    if (!(xk == T{})) {
      for (int p = up_[static_cast<std::size_t>(k)]; p < last; ++p) {
        w[static_cast<std::size_t>(ui_[static_cast<std::size_t>(p)])] -=
            ux_[static_cast<std::size_t>(p)] * xk;
      }
    }
  }
  for (int k = 0; k < n_; ++k) {
    b[static_cast<std::size_t>(q_[static_cast<std::size_t>(k)])] =
        w[static_cast<std::size_t>(k)];
  }
}

template class SparseAssembly<double>;
template class SparseAssembly<std::complex<double>>;
template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace csdac::spice
