#include "spice/measures.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "spice/devices.hpp"

namespace csdac::spice {

double settling_time(std::span<const double> times, std::span<const double> v,
                     double v_final, double tol) {
  if (times.size() != v.size() || times.empty()) {
    throw std::invalid_argument("settling_time: size mismatch");
  }
  if (!(tol > 0.0)) throw std::invalid_argument("settling_time: tol <= 0");
  // Walk backwards: find the last sample outside the band, then interpolate
  // the band entry between it and the next sample.
  for (std::size_t i = times.size(); i-- > 0;) {
    const double err = std::abs(v[i] - v_final);
    if (err > tol) {
      if (i + 1 >= times.size()) return times.back();
      const double e0 = std::abs(v[i] - v_final);
      const double e1 = std::abs(v[i + 1] - v_final);
      if (e1 >= e0) return times[i + 1];
      const double frac = (e0 - tol) / (e0 - e1);
      return times[i] + frac * (times[i + 1] - times[i]);
    }
  }
  return 0.0;
}

double crossing_time(std::span<const double> times, std::span<const double> v,
                     double level) {
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double a = v[i - 1] - level;
    const double b = v[i] - level;
    if (a == 0.0) return times[i - 1];
    if (a * b < 0.0) {
      const double frac = a / (a - b);
      return times[i - 1] + frac * (times[i] - times[i - 1]);
    }
  }
  return -1.0;
}

double minus3db_frequency(std::span<const double> freqs,
                          std::span<const std::complex<double>> h) {
  if (freqs.size() != h.size() || freqs.size() < 2) {
    throw std::invalid_argument("minus3db_frequency: bad input");
  }
  const double ref = std::abs(h[0]);
  const double target = ref / std::sqrt(2.0);
  for (std::size_t i = 1; i < freqs.size(); ++i) {
    const double m0 = std::abs(h[i - 1]);
    const double m1 = std::abs(h[i]);
    if (m0 >= target && m1 < target) {
      // log-frequency linear interpolation on magnitude
      const double frac = (m0 - target) / (m0 - m1);
      const double lf = std::log10(freqs[i - 1]) +
                        frac * (std::log10(freqs[i]) - std::log10(freqs[i - 1]));
      return std::pow(10.0, lf);
    }
  }
  return -1.0;
}

std::vector<std::complex<double>> impedance_probe(
    Circuit& ckt, int node, const std::vector<double>& freqs) {
  ckt.add(std::make_unique<CurrentSource>("iprobe_z", 0, node, /*dc=*/0.0,
                                          /*ac_mag=*/1.0));
  const AcResult res = ac_analysis(ckt, freqs);
  std::vector<std::complex<double>> z(freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i) z[i] = res.v(i, node);
  return z;
}

}  // namespace csdac::spice
