// Circuit representation for the mini-SPICE engine: a flat netlist of
// devices over named nodes, solved by modified nodal analysis (MNA).
//
// Unknown ordering: node voltages for nodes 1..N-1 (node 0 is ground),
// followed by one branch current per voltage source. Devices stamp a real
// Jacobian/residual (DC and transient companion models) or a complex
// small-signal matrix (AC), through the Stamper helpers.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mathx/linalg.hpp"

namespace csdac::spice {

using mathx::MatrixC;
using mathx::MatrixD;

template <typename T>
class SparseAssembly;  // sparse.hpp

/// Integration scheme for the transient companion models.
enum class Integrator { kBackwardEuler, kTrapezoidal };

/// What kind of system the device is asked to stamp.
enum class AnalysisMode { kDc, kTran };

/// Per-iteration context handed to Device::stamp().
struct EvalContext {
  AnalysisMode mode = AnalysisMode::kDc;
  /// Current Newton iterate: node voltages then branch currents.
  const std::vector<double>* x = nullptr;
  double time = 0.0;          ///< absolute time at the END of the step [s]
  double dt = 0.0;            ///< step size [s] (0 in DC)
  Integrator integ = Integrator::kBackwardEuler;
  double source_scale = 1.0;  ///< source-stepping homotopy factor in [0,1]
  double gmin = 1e-12;        ///< shunt conductance for convergence [S]

  /// Voltage of `node` in the current iterate (0 for ground).
  double v(int node) const {
    return node == 0 ? 0.0 : (*x)[static_cast<std::size_t>(node - 1)];
  }
};

/// Real-valued stamping helper: assembles G*x = rhs.
/// KCL convention: each node row states "sum of currents leaving = 0";
/// independent currents leaving a node are moved to the RHS.
///
/// Backs onto either a dense matrix or a sparse assembly — device stamp()
/// implementations are written once against this interface and run
/// unchanged under both solver policies.
class RealStamper {
 public:
  RealStamper(MatrixD& g, std::vector<double>& rhs, int num_nodes)
      : dense_(&g), rhs_(rhs), num_nodes_(num_nodes) {}
  RealStamper(SparseAssembly<double>& g, std::vector<double>& rhs,
              int num_nodes)
      : sparse_(&g), rhs_(rhs), num_nodes_(num_nodes) {}

  /// Two-terminal conductance g between nodes a and b.
  void conductance(int a, int b, double g);
  /// Independent current `i` flowing OUT of node a (into b implied elsewhere).
  void current_leaving(int a, double i);
  /// Raw matrix entry between unknown rows/cols given as node ids
  /// (branch unknowns use branch_row()).
  void entry(int row_node, int col_node, double val);
  /// RHS contribution for a branch (voltage source) row.
  void branch_rhs(int branch_row, double val);
  /// Matrix row/col index of branch k (pass through entry_raw).
  void entry_raw(int row, int col, double val);

  int node_row(int node) const { return node - 1; }  // -1 for ground
  int num_nodes() const { return num_nodes_; }

 private:
  MatrixD* dense_ = nullptr;
  SparseAssembly<double>* sparse_ = nullptr;
  std::vector<double>& rhs_;
  int num_nodes_;
};

/// Complex-valued stamping helper for AC small-signal analysis.
class ComplexStamper {
 public:
  ComplexStamper(MatrixC& g, std::vector<std::complex<double>>& rhs,
                 int num_nodes)
      : dense_(&g), rhs_(rhs), num_nodes_(num_nodes) {}
  ComplexStamper(SparseAssembly<std::complex<double>>& g,
                 std::vector<std::complex<double>>& rhs, int num_nodes)
      : sparse_(&g), rhs_(rhs), num_nodes_(num_nodes) {}

  void admittance(int a, int b, std::complex<double> y);
  void current_leaving(int a, std::complex<double> i);
  void entry(int row_node, int col_node, std::complex<double> val);
  void entry_raw(int row, int col, std::complex<double> val);
  void branch_rhs(int branch_row, std::complex<double> val);

  int num_nodes() const { return num_nodes_; }

 private:
  MatrixC* dense_ = nullptr;
  SparseAssembly<std::complex<double>>* sparse_ = nullptr;
  std::vector<std::complex<double>>& rhs_;
  int num_nodes_;
};

class Circuit;

/// Base class for all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  const std::string& name() const { return name_; }

  /// Number of extra branch-current unknowns this device needs.
  virtual int branch_count() const { return 0; }
  /// Called once by the circuit with the ORDINAL of the first branch this
  /// device owns. The matrix row is `stamper.num_nodes() - 1 + ordinal`,
  /// resolved at stamp time because nodes may be added after the device.
  virtual void set_branch_row(int ordinal) { branch_ordinal_ = ordinal; }
  int branch_ordinal() const { return branch_ordinal_; }
  /// Matrix row of this device's k-th branch for a given node count.
  int branch_matrix_row(int num_nodes, int k = 0) const {
    return num_nodes - 1 + branch_ordinal_ + k;
  }

  /// Stamp the real system for the given Newton iterate.
  virtual void stamp(RealStamper& s, const EvalContext& ctx) const = 0;

  /// Stamp the complex small-signal system at angular frequency `omega`,
  /// linearized around the most recently accepted DC/transient solution.
  virtual void stamp_ac(ComplexStamper& s, double omega) const = 0;

  /// Accept the converged solution (store operating point / state).
  virtual void accept(const EvalContext& ctx) { (void)ctx; }

  /// Begin a new transient: reset integrator state from the DC solution.
  virtual void tran_reset(const EvalContext& ctx) { (void)ctx; }

  /// Appends this device's equivalent thermal-noise current sources,
  /// evaluated at the last accepted operating point. Default: noiseless.
  /// (Declared here, defined with NoiseSource in noise.hpp/.cpp.)
  virtual void append_noise_sources(std::vector<struct NoiseSource>& out,
                                    double temperature_k) const {
    (void)out;
    (void)temperature_k;
  }

 private:
  std::string name_;
  int branch_ordinal_ = -1;
};

/// The netlist: node table + device list.
class Circuit {
 public:
  Circuit();

  /// Returns the index of a named node, creating it on first use.
  /// "0" and "gnd" map to ground (index 0).
  int node(const std::string& name);
  /// Node index lookup without creation; throws if unknown.
  int find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;
  const std::string& node_name(int idx) const { return node_names_[idx]; }

  int num_nodes() const { return static_cast<int>(node_names_.size()); }
  /// Number of MNA unknowns (nodes - 1 + branches).
  int num_unknowns() const { return num_nodes() - 1 + num_branches_; }
  int num_branches() const { return num_branches_; }

  /// Adds a device; the circuit takes ownership and assigns branch rows.
  /// Returns a typed non-owning pointer for later interrogation.
  template <typename T>
  T* add(std::unique_ptr<T> dev) {
    T* raw = dev.get();
    register_device(std::move(dev));
    return raw;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Finds a device by name; nullptr if absent.
  Device* find_device(const std::string& name) const;

 private:
  void register_device(std::unique_ptr<Device> dev);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, int> node_index_;
  std::vector<std::unique_ptr<Device>> devices_;
  int num_branches_ = 0;
};

}  // namespace csdac::spice
