// Analyses over a Circuit: DC operating point (Newton-Raphson with gmin and
// source stepping), transient (fixed-step trapezoidal/backward-Euler with
// automatic step halving on non-convergence), and AC small-signal.
//
// Two linear-solver backends sit underneath every analysis:
//  - dense LU (mathx::LuSolver), the historical baseline, still the
//    default for small circuits and the equivalence reference; and
//  - the sparse engine (spice/sparse.hpp): min-degree ordered LU whose
//    symbolic factorization is computed once per circuit topology and
//    replayed numerically across Newton iterations, timesteps, homotopy
//    points, and Monte-Carlo corners.
// NewtonOptions::solver picks the policy; a SolverContext carries the
// reusable state (pattern, symbolic factors, batched device groups)
// across solves, and NewtonOptions::x0 warm-starts Newton from a previous
// corner's operating point.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace csdac::spice {

/// Linear-solver policy for the MNA systems.
enum class LinearSolverKind : std::uint8_t {
  kAuto,   ///< dense below NewtonOptions::sparse_threshold unknowns
  kDense,  ///< always dense (baseline / small circuits)
  kSparse  ///< always sparse
};

/// Per-analysis solver counters (also mirrored into the global spice.*
/// metrics). Point NewtonOptions::stats at one to collect them.
struct SolveStats {
  long newton_iters = 0;
  long factorizations = 0;    ///< sparse full (pivoting + symbolic)
  long refactorizations = 0;  ///< sparse numeric-only replays
  long dense_solves = 0;      ///< dense O(n^3) factorizations
  long device_evals = 0;      ///< batched MOSFET evaluations
  long warm_starts = 0;       ///< solves seeded from NewtonOptions::x0
  long warm_start_hits = 0;   ///< ...that converged without homotopy
};

/// Reusable per-topology solver state: sparse assembly pattern, symbolic
/// LU factors, and the batched MOSFET groups. Pass one through
/// NewtonOptions::context to amortize symbolic work across solves (Newton
/// iterations and timesteps already share it within one analysis call);
/// Monte-Carlo loops should keep one context per circuit for the whole
/// corner sweep. The context binds to the first circuit it sees and
/// resets itself automatically if handed a different one.
class SolverContext {
 public:
  SolverContext();
  ~SolverContext();
  SolverContext(SolverContext&&) noexcept;
  SolverContext& operator=(SolverContext&&) noexcept;

  /// Drops every cached artifact (pattern, factors, device groups).
  void invalidate();

  struct Impl;
  Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

struct NewtonOptions {
  int max_iter = 150;
  double vtol = 1e-9;     ///< absolute voltage tolerance [V]
  double reltol = 1e-6;   ///< relative tolerance
  double gmin = 1e-12;    ///< node-to-ground shunt conductance [S]
  double max_step = 0.5;  ///< Newton damping: max node-voltage change [V]
  bool gmin_stepping = true;
  bool source_stepping = true;

  LinearSolverKind solver = LinearSolverKind::kAuto;
  /// kAuto switches to the sparse engine at this many unknowns.
  int sparse_threshold = 64;
  /// Warm-start seed (e.g. the previous Monte-Carlo corner's solution);
  /// must match the circuit's unknown count to take effect. On a failed
  /// warm start Newton silently retries cold before any homotopy.
  const std::vector<double>* x0 = nullptr;
  /// Shared solver state; nullptr = a private context per analysis call.
  SolverContext* context = nullptr;
  SolveStats* stats = nullptr;  ///< optional counter sink
};

class ConvergenceError : public std::runtime_error {
 public:
  explicit ConvergenceError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Convergence failure whose root cause was a (numerically) singular MNA
/// matrix: names the offending unknown — a floating node or a degenerate
/// voltage-source loop — instead of a generic "no convergence". Derives
/// from ConvergenceError so existing catch sites keep working.
class SingularSystemError : public ConvergenceError {
 public:
  SingularSystemError(std::size_t row, std::string unknown,
                      const std::string& what)
      : ConvergenceError(what), row_(row), unknown_(std::move(unknown)) {}
  /// MNA row/column of the failed pivot (node voltages first, then
  /// voltage-source branch currents).
  std::size_t row() const { return row_; }
  /// Human-readable unknown: "node 'out'" or "branch of device 'v1'".
  const std::string& unknown_name() const { return unknown_; }

 private:
  std::size_t row_;
  std::string unknown_;
};

/// A converged solution vector with node-voltage accessors.
struct Solution {
  std::vector<double> x;  ///< node voltages then branch currents
  int num_nodes = 0;

  double v(int node) const {
    return node == 0 ? 0.0 : x[static_cast<std::size_t>(node - 1)];
  }
  /// Branch current of a voltage-source-like device (its k-th branch).
  double branch_current(const Device& d, int k = 0) const {
    return x[static_cast<std::size_t>(d.branch_matrix_row(num_nodes, k))];
  }
};

/// Solves the DC operating point; on success every device has accept()ed the
/// solution (MOSFET OpPoints are valid). Throws ConvergenceError (or its
/// SingularSystemError refinement when the failure was a singular matrix).
Solution solve_dc(Circuit& ckt, const NewtonOptions& opts = {});

class VoltageSource;

/// DC transfer sweep: steps `src` from v0 to v1 in `points` steps and
/// solves the operating point at each value (the source keeps the last
/// value afterwards). Classic .DC analysis. The sweep shares one solver
/// context across all points when the caller did not supply one.
std::vector<Solution> dc_sweep(Circuit& ckt, VoltageSource& src, double v0,
                               double v1, int points,
                               const NewtonOptions& opts = {});

struct TranOptions {
  Integrator integ = Integrator::kTrapezoidal;
  NewtonOptions newton;
  int max_halvings = 10;  ///< per-step dt halving budget on non-convergence
};

/// Transient waveform record: time points and the full unknown vector at
/// each accepted step (step 0 is the DC initial condition at t = 0).
struct TranResult {
  std::vector<double> time;
  std::vector<std::vector<double>> values;
  int num_nodes = 0;

  double v(std::size_t step, int node) const {
    return node == 0 ? 0.0
                     : values[step][static_cast<std::size_t>(node - 1)];
  }
  /// Branch current of a voltage-source-like device at one step.
  double branch_current(std::size_t step, const Device& d, int k = 0) const {
    return values[step][static_cast<std::size_t>(
        d.branch_matrix_row(num_nodes, k))];
  }
  /// Extracts a single node's waveform.
  std::vector<double> node_waveform(int node) const;
  /// Extracts a branch current's waveform (mirrors node_waveform()).
  std::vector<double> branch_waveform(const Device& d, int k = 0) const;
};

/// Fixed-step transient from t = 0 to tstop. The DC solution at t = 0 seeds
/// the integrator state; a non-converging step is retried with halved dt.
TranResult transient(Circuit& ckt, double dt, double tstop,
                     const TranOptions& opts = {});

/// AC small-signal sweep. Requires a prior solve_dc() (or transient) so that
/// nonlinear devices hold a valid operating point; solve_dc is NOT called
/// implicitly to let callers bias the circuit as they wish.
struct AcResult {
  std::vector<double> freq;                            ///< [Hz]
  std::vector<std::vector<std::complex<double>>> values;
  int num_nodes = 0;

  std::complex<double> v(std::size_t idx, int node) const {
    return node == 0 ? std::complex<double>{}
                     : values[idx][static_cast<std::size_t>(node - 1)];
  }
  /// Branch current phasor of a voltage-source-like device.
  std::complex<double> branch_current(std::size_t idx, const Device& d,
                                      int k = 0) const {
    return values[idx][static_cast<std::size_t>(
        d.branch_matrix_row(num_nodes, k))];
  }
  /// One node's phasor across the frequency grid.
  std::vector<std::complex<double>> node_waveform(int node) const;
  /// One branch current's phasor across the frequency grid (mirrors
  /// node_waveform()).
  std::vector<std::complex<double>> branch_waveform(const Device& d,
                                                    int k = 0) const;
};

struct AcOptions {
  double gmin = 1e-12;
  LinearSolverKind solver = LinearSolverKind::kAuto;
  int sparse_threshold = 64;
  SolveStats* stats = nullptr;
};

AcResult ac_analysis(Circuit& ckt, const std::vector<double>& freqs,
                     double gmin = 1e-12);
/// AC sweep with an explicit solver policy: the sparse path factors the
/// complex system symbolically once and refactorizes per frequency.
AcResult ac_analysis(Circuit& ckt, const std::vector<double>& freqs,
                     const AcOptions& opts);

/// Logarithmically spaced frequency grid [f0, f1] with `per_decade` points
/// per decade (inclusive of both ends).
std::vector<double> log_space(double f0, double f1, int per_decade);

}  // namespace csdac::spice
