// Analyses over a Circuit: DC operating point (Newton-Raphson with gmin and
// source stepping), transient (fixed-step trapezoidal/backward-Euler with
// automatic step halving on non-convergence), and AC small-signal.
#pragma once

#include <complex>
#include <stdexcept>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace csdac::spice {

struct NewtonOptions {
  int max_iter = 150;
  double vtol = 1e-9;     ///< absolute voltage tolerance [V]
  double reltol = 1e-6;   ///< relative tolerance
  double gmin = 1e-12;    ///< node-to-ground shunt conductance [S]
  double max_step = 0.5;  ///< Newton damping: max node-voltage change [V]
  bool gmin_stepping = true;
  bool source_stepping = true;
};

class ConvergenceError : public std::runtime_error {
 public:
  explicit ConvergenceError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A converged solution vector with node-voltage accessors.
struct Solution {
  std::vector<double> x;  ///< node voltages then branch currents
  int num_nodes = 0;

  double v(int node) const {
    return node == 0 ? 0.0 : x[static_cast<std::size_t>(node - 1)];
  }
  /// Branch current of a voltage-source-like device (its k-th branch).
  double branch_current(const Device& d, int k = 0) const {
    return x[static_cast<std::size_t>(d.branch_matrix_row(num_nodes, k))];
  }
};

/// Solves the DC operating point; on success every device has accept()ed the
/// solution (MOSFET OpPoints are valid). Throws ConvergenceError.
Solution solve_dc(Circuit& ckt, const NewtonOptions& opts = {});

class VoltageSource;

/// DC transfer sweep: steps `src` from v0 to v1 in `points` steps and
/// solves the operating point at each value (the source keeps the last
/// value afterwards). Classic .DC analysis.
std::vector<Solution> dc_sweep(Circuit& ckt, VoltageSource& src, double v0,
                               double v1, int points,
                               const NewtonOptions& opts = {});

struct TranOptions {
  Integrator integ = Integrator::kTrapezoidal;
  NewtonOptions newton;
  int max_halvings = 10;  ///< per-step dt halving budget on non-convergence
};

/// Transient waveform record: time points and the full unknown vector at
/// each accepted step (step 0 is the DC initial condition at t = 0).
struct TranResult {
  std::vector<double> time;
  std::vector<std::vector<double>> values;
  int num_nodes = 0;

  double v(std::size_t step, int node) const {
    return node == 0 ? 0.0
                     : values[step][static_cast<std::size_t>(node - 1)];
  }
  /// Extracts a single node's waveform.
  std::vector<double> node_waveform(int node) const;
};

/// Fixed-step transient from t = 0 to tstop. The DC solution at t = 0 seeds
/// the integrator state; a non-converging step is retried with halved dt.
TranResult transient(Circuit& ckt, double dt, double tstop,
                     const TranOptions& opts = {});

/// AC small-signal sweep. Requires a prior solve_dc() (or transient) so that
/// nonlinear devices hold a valid operating point; solve_dc is NOT called
/// implicitly to let callers bias the circuit as they wish.
struct AcResult {
  std::vector<double> freq;                            ///< [Hz]
  std::vector<std::vector<std::complex<double>>> values;
  int num_nodes = 0;

  std::complex<double> v(std::size_t idx, int node) const {
    return node == 0 ? std::complex<double>{}
                     : values[idx][static_cast<std::size_t>(node - 1)];
  }
};

AcResult ac_analysis(Circuit& ckt, const std::vector<double>& freqs,
                     double gmin = 1e-12);

/// Logarithmically spaced frequency grid [f0, f1] with `per_decade` points
/// per decade (inclusive of both ends).
std::vector<double> log_space(double f0, double f1, int per_decade);

}  // namespace csdac::spice
