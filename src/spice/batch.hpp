// Batched MOSFET evaluation for array-scale netlists: identical unit cells
// (same model parameters + geometry) are grouped once per circuit and
// evaluated as SIMD lanes through the mathx::simd Ops policies, instead of
// one virtual stamp() at a time. Stamping stays in ORIGINAL device order
// using the cached evaluations, so the assembled matrix accumulates in the
// same order — and is therefore bit-identical — to the scalar path.
//
// Dispatch mirrors src/dac/lane_kernel*: a scalar instantiation always
// exists, SSE2/AVX2 live in dedicated TUs compiled with the matching ISA
// flags, and the active kernel downgrades to the widest one both compiled
// in and supported by the CPU (CSDAC_SIMD / simd_force_backend override).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mathx/simd.hpp"
#include "spice/devices.hpp"

namespace csdac::spice {

/// Clamp on the body-effect sqrt argument; must equal the constant inside
/// Mosfet::evaluate().
inline constexpr double kMosMinSqrtArg = 0.05;

/// Per-group constants of the batched evaluation (everything in
/// Mosfet::evaluate() that does not vary per device within a group).
struct MosBatchConsts {
  double sign;  ///< +1 NMOS, -1 PMOS
  double vt0, gamma, phi_2f, sqrt_phi, kp;
  double w, l, m;
  double lam;  ///< params.lambda(l), fixed per group
};

/// SoA views of one group's lanes (inputs pre-multiplied by `sign`).
struct MosBatchSpans {
  const double* vd;
  const double* vg;
  const double* vs;
  const double* vb;
  const double* dvt;     ///< per-device delta_vt
  const double* bscale;  ///< per-device beta_scale
  double* vgs;
  double* vds;
  double* vbs;
  double* vt;
  double* vod;
  double* beta;
  double* sqrt_arg;
  unsigned char* swapped;
  unsigned char* clamped;
};

using MosPrologueFn = void (*)(const MosBatchConsts&, const MosBatchSpans&,
                               int count);

struct MosBatchKernel {
  mathx::SimdBackend backend = mathx::SimdBackend::kScalar;
  int lanes = 1;
  MosPrologueFn prologue = nullptr;
};

namespace detail {
/// Per-ISA kernels from their dedicated TUs; nullptr when the compiler
/// could not target the ISA.
const MosBatchKernel* mos_kernel_sse2();
const MosBatchKernel* mos_kernel_avx2();
}  // namespace detail

/// Kernel for an explicit backend (nullptr if not compiled in).
const MosBatchKernel* mos_batch_kernel(mathx::SimdBackend backend);
/// Widest kernel compiled in and allowed by mathx::simd_backend().
const MosBatchKernel& active_mos_batch_kernel();

/// Groups a circuit's MOSFETs by (type, model params, geometry) and
/// evaluates every group through the active SIMD kernel for one Newton
/// iterate. The solver asks eval_for() while stamping in original device
/// order; total_evals() feeds the spice.device_evals metric.
class MosfetBatchSet {
 public:
  explicit MosfetBatchSet(const Circuit& ckt);

  bool empty() const { return evals_.empty(); }
  int device_count() const { return static_cast<int>(evals_.size()); }

  /// Recomputes every device's linearization at the given iterate.
  void evaluate(const EvalContext& ctx);

  /// Cached evaluation for a device of the circuit; nullptr when the
  /// device is not a batched MOSFET.
  const Mosfet::Eval* eval_for(const Device* dev) const {
    auto it = slot_of_.find(dev);
    return it == slot_of_.end() ? nullptr : &evals_[it->second];
  }

 private:
  struct Group {
    MosBatchConsts consts;
    std::vector<const Mosfet*> devs;  ///< lane order within the group
    std::vector<int> slots;           ///< index into evals_ per lane
    // SoA lanes, sized to devs.size().
    std::vector<double> vd, vg, vs, vb, dvt, bscale;
    std::vector<double> vgs, vds, vbs, vt, vod, beta, sqrt_arg;
    std::vector<unsigned char> swapped, clamped;
  };
  std::vector<Group> groups_;
  std::vector<Mosfet::Eval> evals_;
  std::unordered_map<const Device*, std::size_t> slot_of_;
};

}  // namespace csdac::spice
