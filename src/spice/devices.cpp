#include "spice/devices.hpp"

#include "spice/noise.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace csdac::spice {

// ---------------------------------------------------------------------------
// Waveforms
// ---------------------------------------------------------------------------

PulseWave::PulseWave(double v1, double v2, double td, double tr, double tf,
                     double pw, double period)
    : v1_(v1), v2_(v2), td_(td), tr_(tr), tf_(tf), pw_(pw), period_(period) {
  if (tr_ <= 0.0) tr_ = 1e-15;
  if (tf_ <= 0.0) tf_ = 1e-15;
}

double PulseWave::value(double t) const {
  if (t < td_) return v1_;
  double tau = t - td_;
  if (period_ > 0.0) tau = std::fmod(tau, period_);
  if (tau < tr_) return v1_ + (v2_ - v1_) * tau / tr_;
  tau -= tr_;
  if (tau < pw_) return v2_;
  tau -= pw_;
  if (tau < tf_) return v2_ + (v1_ - v2_) * tau / tf_;
  return v1_;
}

double SinWave::value(double t) const {
  if (t < delay_) return off_;
  return off_ + amp_ * std::sin(2.0 * std::numbers::pi * freq_ * (t - delay_));
}

PwlWave::PwlWave(std::vector<std::pair<double, double>> points)
    : pts_(std::move(points)) {
  if (pts_.empty()) throw std::invalid_argument("PwlWave: empty point list");
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (pts_[i].first < pts_[i - 1].first) {
      throw std::invalid_argument("PwlWave: times must be non-decreasing");
    }
  }
}

double PwlWave::value(double t) const {
  if (t <= pts_.front().first) return pts_.front().second;
  if (t >= pts_.back().first) return pts_.back().second;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (t <= pts_[i].first) {
      const auto& [t0, v0] = pts_[i - 1];
      const auto& [t1, v1] = pts_[i];
      if (t1 == t0) return v1;
      return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
    }
  }
  return pts_.back().second;
}

// ---------------------------------------------------------------------------
// Resistor
// ---------------------------------------------------------------------------

Resistor::Resistor(std::string name, int a, int b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), r_(ohms) {
  if (!(r_ > 0.0)) throw std::invalid_argument("Resistor: R must be > 0");
}

void Resistor::stamp(RealStamper& s, const EvalContext&) const {
  s.conductance(a_, b_, 1.0 / r_);
}

void Resistor::stamp_ac(ComplexStamper& s, double) const {
  s.admittance(a_, b_, {1.0 / r_, 0.0});
}

void Resistor::append_noise_sources(std::vector<NoiseSource>& out,
                                    double temperature_k) const {
  // Thermal noise: S_i = 4kT/R between the terminals.
  out.push_back({name(), a_, b_, 4.0 * 1.380649e-23 * temperature_k / r_});
}

// ---------------------------------------------------------------------------
// Capacitor / companion model
// ---------------------------------------------------------------------------

void CapCompanion::stamp(RealStamper& s, const EvalContext& ctx) const {
  if (ctx.mode != AnalysisMode::kTran || ctx.dt <= 0.0 || c <= 0.0) return;
  const bool trap = ctx.integ == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * c / ctx.dt;
  const double ieq = -geq * v_prev - (trap ? i_prev : 0.0);
  s.conductance(a, b, geq);
  // Equivalent current ieq flows a -> b through the companion source.
  s.current_leaving(a, ieq);
  s.current_leaving(b, -ieq);
}

void CapCompanion::stamp_ac(ComplexStamper& s, double omega) const {
  if (c <= 0.0) return;
  s.admittance(a, b, {0.0, omega * c});
}

void CapCompanion::accept(const EvalContext& ctx) {
  const double v = ctx.v(a) - ctx.v(b);
  if (ctx.mode != AnalysisMode::kTran || ctx.dt <= 0.0) {
    v_prev = v;
    i_prev = 0.0;
    return;
  }
  const bool trap = ctx.integ == Integrator::kTrapezoidal;
  const double geq = (trap ? 2.0 : 1.0) * c / ctx.dt;
  i_prev = geq * (v - v_prev) - (trap ? i_prev : 0.0);
  v_prev = v;
}

void CapCompanion::reset(const EvalContext& ctx) {
  v_prev = ctx.v(a) - ctx.v(b);
  i_prev = 0.0;
}

Capacitor::Capacitor(std::string name, int a, int b, double farads)
    : Device(std::move(name)) {
  if (!(farads >= 0.0)) throw std::invalid_argument("Capacitor: C must be >= 0");
  state_.c = farads;
  state_.a = a;
  state_.b = b;
}

void Capacitor::stamp(RealStamper& s, const EvalContext& ctx) const {
  state_.stamp(s, ctx);
}

void Capacitor::stamp_ac(ComplexStamper& s, double omega) const {
  state_.stamp_ac(s, omega);
}

void Capacitor::accept(const EvalContext& ctx) { state_.accept(ctx); }

void Capacitor::tran_reset(const EvalContext& ctx) { state_.reset(ctx); }

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

CurrentSource::CurrentSource(std::string name, int p, int n, double dc,
                             double ac_mag)
    : Device(std::move(name)),
      p_(p),
      n_(n),
      wave_(std::make_unique<DcWave>(dc)),
      ac_mag_(ac_mag) {}

CurrentSource::CurrentSource(std::string name, int p, int n,
                             std::unique_ptr<Waveform> wave, double ac_mag)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)),
      ac_mag_(ac_mag) {}

void CurrentSource::stamp(RealStamper& s, const EvalContext& ctx) const {
  const double i = ctx.source_scale * (ctx.mode == AnalysisMode::kTran
                                           ? wave_->value(ctx.time)
                                           : wave_->dc_value());
  // Current flows from p through the source to n.
  s.current_leaving(p_, i);
  s.current_leaving(n_, -i);
}

void CurrentSource::stamp_ac(ComplexStamper& s, double) const {
  s.current_leaving(p_, {ac_mag_, 0.0});
  s.current_leaving(n_, {-ac_mag_, 0.0});
}

VoltageSource::VoltageSource(std::string name, int p, int n, double dc,
                             double ac_mag)
    : Device(std::move(name)),
      p_(p),
      n_(n),
      wave_(std::make_unique<DcWave>(dc)),
      ac_mag_(ac_mag) {}

VoltageSource::VoltageSource(std::string name, int p, int n,
                             std::unique_ptr<Waveform> wave, double ac_mag)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)),
      ac_mag_(ac_mag) {}

void VoltageSource::stamp(RealStamper& s, const EvalContext& ctx) const {
  const int br = branch_matrix_row(s.num_nodes());
  const int rp = p_ - 1;
  const int rn = n_ - 1;
  if (rp >= 0) {
    s.entry_raw(rp, br, 1.0);
    s.entry_raw(br, rp, 1.0);
  }
  if (rn >= 0) {
    s.entry_raw(rn, br, -1.0);
    s.entry_raw(br, rn, -1.0);
  }
  const double v = ctx.source_scale * (ctx.mode == AnalysisMode::kTran
                                           ? wave_->value(ctx.time)
                                           : wave_->dc_value());
  s.branch_rhs(br, v);
}

void VoltageSource::stamp_ac(ComplexStamper& s, double) const {
  const int br = branch_matrix_row(s.num_nodes());
  const int rp = p_ - 1;
  const int rn = n_ - 1;
  if (rp >= 0) {
    s.entry_raw(rp, br, {1.0, 0.0});
    s.entry_raw(br, rp, {1.0, 0.0});
  }
  if (rn >= 0) {
    s.entry_raw(rn, br, {-1.0, 0.0});
    s.entry_raw(br, rn, {-1.0, 0.0});
  }
  s.branch_rhs(br, {ac_mag_, 0.0});
}

Vccs::Vccs(std::string name, int p, int n, int cp, int cn, double gm)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gm_(gm) {}

void Vccs::stamp(RealStamper& s, const EvalContext&) const {
  // Current gm*(v(cp)-v(cn)) leaves p and enters n.
  s.entry(p_, cp_, gm_);
  s.entry(p_, cn_, -gm_);
  s.entry(n_, cp_, -gm_);
  s.entry(n_, cn_, gm_);
}

void Vccs::stamp_ac(ComplexStamper& s, double) const {
  s.entry(p_, cp_, {gm_, 0.0});
  s.entry(p_, cn_, {-gm_, 0.0});
  s.entry(n_, cp_, {-gm_, 0.0});
  s.entry(n_, cn_, {gm_, 0.0});
}

Vcvs::Vcvs(std::string name, int p, int n, int cp, int cn, double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::stamp(RealStamper& s, const EvalContext&) const {
  const int br = branch_matrix_row(s.num_nodes());
  const int rp = p_ - 1, rn = n_ - 1, rcp = cp_ - 1, rcn = cn_ - 1;
  if (rp >= 0) {
    s.entry_raw(rp, br, 1.0);
    s.entry_raw(br, rp, 1.0);
  }
  if (rn >= 0) {
    s.entry_raw(rn, br, -1.0);
    s.entry_raw(br, rn, -1.0);
  }
  if (rcp >= 0) s.entry_raw(br, rcp, -gain_);
  if (rcn >= 0) s.entry_raw(br, rcn, gain_);
}

void Vcvs::stamp_ac(ComplexStamper& s, double) const {
  const int br = branch_matrix_row(s.num_nodes());
  const int rp = p_ - 1, rn = n_ - 1, rcp = cp_ - 1, rcn = cn_ - 1;
  if (rp >= 0) {
    s.entry_raw(rp, br, {1.0, 0.0});
    s.entry_raw(br, rp, {1.0, 0.0});
  }
  if (rn >= 0) {
    s.entry_raw(rn, br, {-1.0, 0.0});
    s.entry_raw(br, rn, {-1.0, 0.0});
  }
  if (rcp >= 0) s.entry_raw(br, rcp, {-gain_, 0.0});
  if (rcn >= 0) s.entry_raw(br, rcn, {gain_, 0.0});
}

// ---------------------------------------------------------------------------
// MOSFET
// ---------------------------------------------------------------------------

Mosfet::Mosfet(std::string name, const tech::MosTechParams& params, int d,
               int g, int s, int b, Geometry geo, bool with_caps)
    : Device(std::move(name)),
      params_(params),
      d_(d),
      g_(g),
      s_(s),
      b_(b),
      geo_(geo),
      with_caps_(with_caps),
      op_eff_d_(d),
      op_eff_s_(s) {
  if (!(geo_.w > 0.0) || !(geo_.l > 0.0) || !(geo_.m >= 1.0)) {
    throw std::invalid_argument("Mosfet: bad geometry");
  }
  if (with_caps_) {
    cgs_ = {tech::cgs_sat(params_, geo_.w, geo_.l) * geo_.m, g_, s_, 0.0, 0.0};
    cgd_ = {tech::cgd_sat(params_, geo_.w) * geo_.m, g_, d_, 0.0, 0.0};
    cdb_ = {tech::cj_diffusion(params_, geo_.w) * geo_.m, d_, b_, 0.0, 0.0};
    csb_ = {tech::cj_diffusion(params_, geo_.w) * geo_.m, s_, b_, 0.0, 0.0};
  }
}

void Mosfet::set_mismatch(double delta_vt, double beta_scale) {
  if (!(beta_scale > 0.0)) {
    throw std::invalid_argument("Mosfet::set_mismatch: beta_scale <= 0");
  }
  delta_vt_ = delta_vt;
  beta_scale_ = beta_scale;
}

Mosfet::Eval Mosfet::evaluate(const EvalContext& ctx) const {
  const double sign = params_.type == tech::MosType::kNmos ? 1.0 : -1.0;
  double vd = sign * ctx.v(d_);
  double vg = sign * ctx.v(g_);
  double vs = sign * ctx.v(s_);
  double vb = sign * ctx.v(b_);

  Eval e{};
  e.eff_d = d_;
  e.eff_s = s_;
  if (vd < vs) {  // symmetric conduction: treat the lower terminal as source
    std::swap(vd, vs);
    std::swap(e.eff_d, e.eff_s);
  }
  e.vgs = vg - vs;
  e.vds = vd - vs;
  e.vbs = vb - vs;

  const double vsb = -e.vbs;
  constexpr double kMinArg = 0.05;  // clamp to keep sqrt well-defined
  const double arg = std::max(params_.phi_2f + vsb, kMinArg);
  const bool clamped = (params_.phi_2f + vsb) < kMinArg;
  e.vt = params_.vt0 + delta_vt_ +
         params_.gamma * (std::sqrt(arg) - std::sqrt(params_.phi_2f));
  e.vod = e.vgs - e.vt;

  const double beta = params_.kp * beta_scale_ * geo_.m * geo_.w / geo_.l;
  const double lam = params_.lambda(geo_.l);
  const double dvt_dvbs = clamped ? 0.0 : -params_.gamma / (2.0 * std::sqrt(arg));

  if (e.vod <= 0.0) {
    e.region = MosRegion::kCutoff;
    e.id = e.gm = e.gds = e.gmb = 0.0;
    return e;
  }
  const double clm = 1.0 + lam * e.vds;
  if (e.vds >= e.vod) {
    e.region = MosRegion::kSaturation;
    e.id = 0.5 * beta * e.vod * e.vod * clm;
    e.gm = beta * e.vod * clm;
    e.gds = 0.5 * beta * e.vod * e.vod * lam;
  } else {
    e.region = MosRegion::kTriode;
    const double shape = e.vod * e.vds - 0.5 * e.vds * e.vds;
    e.id = beta * shape * clm;
    e.gm = beta * e.vds * clm;
    e.gds = beta * (e.vod - e.vds) * clm + beta * shape * lam;
  }
  e.gmb = e.gm * (-dvt_dvbs);
  return e;
}

void Mosfet::stamp(RealStamper& s, const EvalContext& ctx) const {
  stamp_linearized(s, ctx, evaluate(ctx));
}

void Mosfet::stamp_linearized(RealStamper& s, const EvalContext& ctx,
                              const Eval& e) const {
  const double sign = params_.type == tech::MosType::kNmos ? 1.0 : -1.0;
  const int d = e.eff_d, sn = e.eff_s;

  // Jacobian entries (invariant under the PMOS sign flip).
  s.entry(d, g_, e.gm);
  s.entry(d, d, e.gds);
  s.entry(d, b_, e.gmb);
  s.entry(d, sn, -(e.gm + e.gds + e.gmb));
  s.entry(sn, g_, -e.gm);
  s.entry(sn, d, -e.gds);
  s.entry(sn, b_, -e.gmb);
  s.entry(sn, sn, e.gm + e.gds + e.gmb);

  // Newton equivalent current (sign-flipped back to actual space for PMOS).
  const double ieq_n =
      e.id - e.gm * e.vgs - e.gds * e.vds - e.gmb * e.vbs;
  const double ieq = sign * ieq_n;
  s.current_leaving(d, ieq);
  s.current_leaving(sn, -ieq);

  if (with_caps_) {
    cgs_.stamp(s, ctx);
    cgd_.stamp(s, ctx);
    cdb_.stamp(s, ctx);
    csb_.stamp(s, ctx);
  }
}

void Mosfet::stamp_ac(ComplexStamper& s, double omega) const {
  // Small-signal conductances from the last accepted operating point.
  // op_ keeps the effective (post-swap) terminals used at acceptance.
  const int d = op_eff_d_, sn = op_eff_s_;
  s.entry(d, g_, {op_.gm, 0.0});
  s.entry(d, d, {op_.gds, 0.0});
  s.entry(d, b_, {op_.gmb, 0.0});
  s.entry(d, sn, {-(op_.gm + op_.gds + op_.gmb), 0.0});
  s.entry(sn, g_, {-op_.gm, 0.0});
  s.entry(sn, d, {-op_.gds, 0.0});
  s.entry(sn, b_, {-op_.gmb, 0.0});
  s.entry(sn, sn, {op_.gm + op_.gds + op_.gmb, 0.0});
  if (with_caps_) {
    cgs_.stamp_ac(s, omega);
    cgd_.stamp_ac(s, omega);
    cdb_.stamp_ac(s, omega);
    csb_.stamp_ac(s, omega);
  }
}

void Mosfet::accept(const EvalContext& ctx) {
  const Eval e = evaluate(ctx);
  op_.id = e.id;
  op_.vgs = e.vgs;
  op_.vds = e.vds;
  op_.vbs = e.vbs;
  op_.vt = e.vt;
  op_.vod = e.vod;
  op_.gm = e.gm;
  op_.gds = e.gds;
  op_.gmb = e.gmb;
  op_.region = e.region;
  op_eff_d_ = e.eff_d;
  op_eff_s_ = e.eff_s;
  if (with_caps_) {
    cgs_.accept(ctx);
    cgd_.accept(ctx);
    cdb_.accept(ctx);
    csb_.accept(ctx);
  }
}

void Mosfet::append_noise_sources(std::vector<NoiseSource>& out,
                                  double temperature_k) const {
  // Long-channel saturation channel noise: S_i = 4kT * (2/3) * gm between
  // the effective drain and source of the last accepted operating point.
  // Cutoff devices (gm = 0) contribute nothing.
  if (op_.gm <= 0.0) return;
  out.push_back({name(), op_eff_d_, op_eff_s_,
                 4.0 * 1.380649e-23 * temperature_k * (2.0 / 3.0) * op_.gm});
}

void Mosfet::tran_reset(const EvalContext& ctx) {
  if (with_caps_) {
    cgs_.reset(ctx);
    cgd_.reset(ctx);
    cdb_.reset(ctx);
    csb_.reset(ctx);
  }
}

}  // namespace csdac::spice
