#include "spice/circuit.hpp"

#include <stdexcept>

#include "spice/sparse.hpp"

namespace csdac::spice {

void RealStamper::conductance(int a, int b, double g) {
  const int ra = node_row(a);
  const int rb = node_row(b);
  entry_raw(ra, ra, g);
  entry_raw(rb, rb, g);
  entry_raw(ra, rb, -g);
  entry_raw(rb, ra, -g);
}

void RealStamper::current_leaving(int a, double i) {
  const int ra = node_row(a);
  if (ra >= 0) rhs_[static_cast<std::size_t>(ra)] -= i;
}

void RealStamper::entry(int row_node, int col_node, double val) {
  entry_raw(node_row(row_node), node_row(col_node), val);
}

void RealStamper::entry_raw(int row, int col, double val) {
  if (row < 0 || col < 0) return;
  if (dense_) {
    (*dense_)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) +=
        val;
  } else {
    sparse_->add(row, col, val);
  }
}

void RealStamper::branch_rhs(int branch_row, double val) {
  rhs_[static_cast<std::size_t>(branch_row)] += val;
}

void ComplexStamper::admittance(int a, int b, std::complex<double> y) {
  const int ra = a - 1;
  const int rb = b - 1;
  entry_raw(ra, ra, y);
  entry_raw(rb, rb, y);
  entry_raw(ra, rb, -y);
  entry_raw(rb, ra, -y);
}

void ComplexStamper::current_leaving(int a, std::complex<double> i) {
  const int ra = a - 1;
  if (ra >= 0) rhs_[static_cast<std::size_t>(ra)] -= i;
}

void ComplexStamper::entry(int row_node, int col_node,
                           std::complex<double> val) {
  entry_raw(row_node - 1, col_node - 1, val);
}

void ComplexStamper::entry_raw(int row, int col, std::complex<double> val) {
  if (row < 0 || col < 0) return;
  if (dense_) {
    (*dense_)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) +=
        val;
  } else {
    sparse_->add(row, col, val);
  }
}

void ComplexStamper::branch_rhs(int branch_row, std::complex<double> val) {
  rhs_[static_cast<std::size_t>(branch_row)] += val;
}

Circuit::Circuit() {
  node_names_.push_back("0");
  node_index_["0"] = 0;
  node_index_["gnd"] = 0;
}

int Circuit::node(const std::string& name) {
  auto it = node_index_.find(name);
  if (it != node_index_.end()) return it->second;
  const int idx = static_cast<int>(node_names_.size());
  node_names_.push_back(name);
  node_index_[name] = idx;
  return idx;
}

int Circuit::find_node(const std::string& name) const {
  auto it = node_index_.find(name);
  if (it == node_index_.end()) {
    throw std::out_of_range("Circuit: unknown node '" + name + "'");
  }
  return it->second;
}

bool Circuit::has_node(const std::string& name) const {
  return node_index_.count(name) != 0;
}

void Circuit::register_device(std::unique_ptr<Device> dev) {
  const int branches = dev->branch_count();
  if (branches > 0) {
    dev->set_branch_row(num_branches_);
    num_branches_ += branches;
  }
  devices_.push_back(std::move(dev));
}

Device* Circuit::find_device(const std::string& name) const {
  for (const auto& d : devices_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

}  // namespace csdac::spice
