#include "spice/noise.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "mathx/linalg.hpp"

namespace csdac::spice {

namespace {
constexpr double kBoltzmann = 1.380649e-23;  // J/K
}

double NoiseResult::integrated_rms(double f1, double f2) const {
  if (!(f2 > f1)) throw std::invalid_argument("integrated_rms: f2 <= f1");
  double power = 0.0;
  for (std::size_t i = 1; i < freq.size(); ++i) {
    const double a = std::max(freq[i - 1], f1);
    const double b = std::min(freq[i], f2);
    if (b <= a) continue;
    // Trapezoid over the clipped interval (PSD linearly interpolated).
    auto psd_at = [&](double f) {
      const double t = (f - freq[i - 1]) / (freq[i] - freq[i - 1]);
      return total_psd[i - 1] + t * (total_psd[i] - total_psd[i - 1]);
    };
    power += 0.5 * (psd_at(a) + psd_at(b)) * (b - a);
  }
  return std::sqrt(power);
}

NoiseResult noise_analysis(Circuit& ckt, int out_node,
                           const std::vector<double>& freqs,
                           double temperature_k) {
  if (out_node <= 0 || out_node >= ckt.num_nodes()) {
    throw std::invalid_argument("noise_analysis: bad output node");
  }
  if (!(temperature_k > 0.0)) {
    throw std::invalid_argument("noise_analysis: bad temperature");
  }
  // Collect every device's noise sources at the current operating point.
  std::vector<NoiseSource> sources;
  for (const auto& dev : ckt.devices()) {
    dev->append_noise_sources(sources, temperature_k);
  }

  NoiseResult res;
  res.freq = freqs;
  res.total_psd.assign(freqs.size(), 0.0);
  res.source_names.reserve(sources.size());
  for (const auto& s : sources) res.source_names.push_back(s.device);
  res.contributions.assign(freqs.size(),
                           std::vector<double>(sources.size(), 0.0));

  const int n = ckt.num_unknowns();
  for (std::size_t fi = 0; fi < freqs.size(); ++fi) {
    const double omega = 2.0 * std::numbers::pi * freqs[fi];
    mathx::MatrixC g(static_cast<std::size_t>(n),
                     static_cast<std::size_t>(n));
    std::vector<std::complex<double>> rhs_zero(static_cast<std::size_t>(n));
    ComplexStamper stamper(g, rhs_zero, ckt.num_nodes());
    for (const auto& dev : ckt.devices()) dev->stamp_ac(stamper, omega);
    for (int r = 0; r < ckt.num_nodes() - 1; ++r) {
      g(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) += 1e-12;
    }
    mathx::LuSolver<std::complex<double>> lu;
    lu.factorize(g);

    for (std::size_t k = 0; k < sources.size(); ++k) {
      const auto& s = sources[k];
      // Unit AC current injected a -> b: leaves a, enters b.
      std::vector<std::complex<double>> rhs(static_cast<std::size_t>(n));
      if (s.node_a > 0) rhs[static_cast<std::size_t>(s.node_a - 1)] -= 1.0;
      if (s.node_b > 0) rhs[static_cast<std::size_t>(s.node_b - 1)] += 1.0;
      const auto x = lu.solve(rhs);
      const std::complex<double> z =
          x[static_cast<std::size_t>(out_node - 1)];
      const double contrib = std::norm(z) * s.i_psd;
      res.contributions[fi][k] = contrib;
      res.total_psd[fi] += contrib;
    }
  }
  return res;
}

}  // namespace csdac::spice
