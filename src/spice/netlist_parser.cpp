#include "spice/netlist_parser.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <sstream>
#include <vector>

#include "spice/devices.hpp"

namespace csdac::spice {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Splits a card into tokens, treating '(' ')' '=' ',' as separators that
/// are dropped (SPICE is forgiving about PULSE(...) spacing).
std::vector<std::string> split_card(const std::string& line) {
  std::string cleaned;
  for (char c : line) {
    if (c == '(' || c == ')' || c == '=' || c == ',') {
      cleaned += ' ';
    } else {
      cleaned += c;
    }
  }
  std::vector<std::string> tokens;
  std::istringstream is(cleaned);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

/// A tokenized card with its source line for error reporting.
struct Card {
  int line = 0;
  std::vector<std::string> tok;
};

/// A .subckt definition: port names + body cards.
struct SubcktDef {
  std::vector<std::string> ports;
  std::vector<Card> body;
};

using SubcktMap = std::map<std::string, SubcktDef>;

/// Maps a node name appearing in a card to a circuit node index.
using NodeResolver = std::function<int(const std::string&)>;

class CardProcessor {
 public:
  CardProcessor(Circuit& ckt, const tech::TechParams& tech,
                const SubcktMap& subckts)
      : ckt_(ckt), tech_(tech), subckts_(subckts) {}

  /// Instantiates one card. `prefix` namespaces device and internal node
  /// names of subcircuit instances; `resolve` maps local node names.
  void process(const Card& card, const std::string& prefix,
               const NodeResolver& resolve, int depth);

 private:
  double value(const Card& c, const std::string& t) const {
    try {
      return parse_spice_value(t);
    } catch (const std::invalid_argument& e) {
      throw NetlistError(c.line, e.what());
    }
  }
  static void need(const Card& c, std::size_t n) {
    if (c.tok.size() < n) {
      throw NetlistError(c.line, "too few fields for '" + c.tok[0] + "'");
    }
  }

  Circuit& ckt_;
  const tech::TechParams& tech_;
  const SubcktMap& subckts_;
};

void CardProcessor::process(const Card& card, const std::string& prefix,
                            const NodeResolver& resolve, int depth) {
  if (depth > 16) {
    throw NetlistError(card.line, "subcircuit nesting too deep");
  }
  const auto& tok = card.tok;
  const std::string name = prefix + tok[0];
  const char kind =
      static_cast<char>(std::tolower(static_cast<unsigned char>(tok[0][0])));

  switch (kind) {
    case 'r': {
      need(card, 4);
      ckt_.add(std::make_unique<Resistor>(name, resolve(tok[1]),
                                          resolve(tok[2]),
                                          value(card, tok[3])));
      break;
    }
    case 'c': {
      need(card, 4);
      ckt_.add(std::make_unique<Capacitor>(name, resolve(tok[1]),
                                           resolve(tok[2]),
                                           value(card, tok[3])));
      break;
    }
    case 'v':
    case 'i': {
      need(card, 4);
      const int p = resolve(tok[1]);
      const int n = resolve(tok[2]);
      std::unique_ptr<Waveform> wave;
      double ac_mag = 0.0;
      std::size_t i = 3;
      const std::string w = lower(tok[i]);
      if (w == "dc") {
        need(card, 5);
        wave = std::make_unique<DcWave>(value(card, tok[i + 1]));
        i += 2;
      } else if (w == "pulse") {
        need(card, i + 7);
        const double per = tok.size() > i + 7 && lower(tok[i + 7]) != "ac"
                               ? value(card, tok[i + 7])
                               : 0.0;
        wave = std::make_unique<PulseWave>(
            value(card, tok[i + 1]), value(card, tok[i + 2]),
            value(card, tok[i + 3]), value(card, tok[i + 4]),
            value(card, tok[i + 5]), value(card, tok[i + 6]), per);
        i += per > 0.0 ? 8 : 7;
      } else if (w == "sin") {
        need(card, i + 4);
        const double delay = tok.size() > i + 4 && lower(tok[i + 4]) != "ac"
                                 ? value(card, tok[i + 4])
                                 : 0.0;
        wave = std::make_unique<SinWave>(value(card, tok[i + 1]),
                                         value(card, tok[i + 2]),
                                         value(card, tok[i + 3]), delay);
        i += delay > 0.0 ? 5 : 4;
      } else if (w == "pwl") {
        std::vector<std::pair<double, double>> pts;
        std::size_t j = i + 1;
        while (j + 1 < tok.size() && lower(tok[j]) != "ac") {
          pts.emplace_back(value(card, tok[j]), value(card, tok[j + 1]));
          j += 2;
        }
        wave = std::make_unique<PwlWave>(std::move(pts));
        i = j;
      } else {
        wave = std::make_unique<DcWave>(value(card, tok[i]));
        i += 1;
      }
      if (i < tok.size() && lower(tok[i]) == "ac") {
        need(card, i + 2);
        ac_mag = value(card, tok[i + 1]);
      }
      if (kind == 'v') {
        ckt_.add(std::make_unique<VoltageSource>(name, p, n, std::move(wave),
                                                 ac_mag));
      } else {
        ckt_.add(std::make_unique<CurrentSource>(name, p, n, std::move(wave),
                                                 ac_mag));
      }
      break;
    }
    case 'e': {
      need(card, 6);
      ckt_.add(std::make_unique<Vcvs>(name, resolve(tok[1]), resolve(tok[2]),
                                      resolve(tok[3]), resolve(tok[4]),
                                      value(card, tok[5])));
      break;
    }
    case 'g': {
      need(card, 6);
      ckt_.add(std::make_unique<Vccs>(name, resolve(tok[1]), resolve(tok[2]),
                                      resolve(tok[3]), resolve(tok[4]),
                                      value(card, tok[5])));
      break;
    }
    case 'm': {
      need(card, 6);
      const int d = resolve(tok[1]);
      const int g = resolve(tok[2]);
      const int s = resolve(tok[3]);
      const int b = resolve(tok[4]);
      const std::string model = lower(tok[5]);
      const tech::MosTechParams* params = nullptr;
      if (model == "nmos") {
        params = &tech_.nmos;
      } else if (model == "pmos") {
        params = &tech_.pmos;
      } else {
        throw NetlistError(card.line, "unknown model '" + tok[5] + "'");
      }
      Mosfet::Geometry geo;
      bool with_caps = false;
      for (std::size_t i = 6; i < tok.size(); ++i) {
        const std::string key = lower(tok[i]);
        if (key == "caps") {
          with_caps = true;
          continue;
        }
        if (i + 1 >= tok.size()) {
          throw NetlistError(card.line, "dangling parameter '" + key + "'");
        }
        const double v = value(card, tok[i + 1]);
        ++i;
        if (key == "w") {
          geo.w = v;
        } else if (key == "l") {
          geo.l = v;
        } else if (key == "m") {
          geo.m = v;
        } else {
          throw NetlistError(card.line, "unknown parameter '" + key + "'");
        }
      }
      ckt_.add(std::make_unique<Mosfet>(name, *params, d, g, s, b, geo,
                                        with_caps));
      break;
    }
    case 'x': {
      // Xname node1 ... nodeN subcktname
      need(card, 3);
      const std::string sub_name = lower(tok.back());
      const auto it = subckts_.find(sub_name);
      if (it == subckts_.end()) {
        throw NetlistError(card.line,
                           "unknown subcircuit '" + tok.back() + "'");
      }
      const SubcktDef& def = it->second;
      if (tok.size() - 2 != def.ports.size()) {
        throw NetlistError(
            card.line, "subcircuit '" + tok.back() + "' expects " +
                           std::to_string(def.ports.size()) + " nodes, got " +
                           std::to_string(tok.size() - 2));
      }
      // Port name (lower-cased) -> outer node index.
      std::map<std::string, int> port_map;
      for (std::size_t i = 0; i < def.ports.size(); ++i) {
        port_map[lower(def.ports[i])] = resolve(tok[i + 1]);
      }
      const std::string inner_prefix = name + ".";
      NodeResolver inner_resolve = [this, port_map,
                                    inner_prefix](const std::string& n) {
        const std::string ln = lower(n);
        if (ln == "0" || ln == "gnd") return 0;  // ground is global
        const auto p = port_map.find(ln);
        if (p != port_map.end()) return p->second;
        return ckt_.node(inner_prefix + n);  // instance-local node
      };
      for (const Card& inner : def.body) {
        process(inner, inner_prefix, inner_resolve, depth + 1);
      }
      break;
    }
    default:
      throw NetlistError(card.line,
                         std::string("unknown element kind '") + kind + "'");
  }
}

}  // namespace

double parse_spice_value(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("empty value");
  const std::string t = lower(token);
  std::size_t pos = 0;
  double v;
  try {
    v = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric value '" + token + "'");
  }
  std::string suffix = t.substr(pos);
  if (suffix.empty()) return v;
  if (suffix.rfind("meg", 0) == 0) return v * 1e6;
  switch (suffix[0]) {
    case 'f': return v * 1e-15;
    case 'p': return v * 1e-12;
    case 'n': return v * 1e-9;
    case 'u': return v * 1e-6;
    case 'm': return v * 1e-3;
    case 'k': return v * 1e3;
    case 'g': return v * 1e9;
    case 't': return v * 1e12;
    default:
      // Pure unit suffixes are tolerated; anything else is a typo.
      if (suffix == "v" || suffix == "a" || suffix == "s" ||
          suffix == "hz" || suffix == "ohm") {
        return v;
      }
      throw std::invalid_argument("bad value suffix '" + token + "'");
  }
}

std::unique_ptr<Circuit> parse_netlist(const std::string& text,
                                       const tech::TechParams& tech) {
  // Pass 1: tokenize every card, collecting .subckt definitions.
  SubcktMap subckts;
  std::vector<Card> main_cards;
  {
    std::istringstream is(text);
    std::string raw;
    int line_no = 0;
    SubcktDef* open_def = nullptr;
    std::string open_name;
    while (std::getline(is, raw)) {
      ++line_no;
      const auto semi = raw.find(';');
      if (semi != std::string::npos) raw.resize(semi);
      Card card{line_no, split_card(raw)};
      if (card.tok.empty() || card.tok[0][0] == '*') continue;
      const std::string head = lower(card.tok[0]);
      if (head == ".subckt") {
        if (open_def != nullptr) {
          throw NetlistError(line_no, "nested .subckt definition");
        }
        if (card.tok.size() < 3) {
          throw NetlistError(line_no, ".subckt needs a name and ports");
        }
        open_name = lower(card.tok[1]);
        SubcktDef def;
        def.ports.assign(card.tok.begin() + 2, card.tok.end());
        open_def = &subckts.emplace(open_name, std::move(def)).first->second;
        continue;
      }
      if (head == ".ends") {
        if (open_def == nullptr) {
          throw NetlistError(line_no, ".ends without .subckt");
        }
        open_def = nullptr;
        continue;
      }
      if (card.tok[0][0] == '.') continue;  // other controls ignored
      if (open_def != nullptr) {
        open_def->body.push_back(std::move(card));
      } else {
        main_cards.push_back(std::move(card));
      }
    }
    if (open_def != nullptr) {
      throw NetlistError(line_no, "unterminated .subckt '" + open_name + "'");
    }
  }

  // Pass 2: instantiate.
  auto ckt = std::make_unique<Circuit>();
  CardProcessor proc(*ckt, tech, subckts);
  NodeResolver top_resolve = [&ckt](const std::string& n) {
    return ckt->node(n);
  };
  for (const Card& card : main_cards) {
    proc.process(card, "", top_resolve, 0);
  }
  return ckt;
}

}  // namespace csdac::spice
