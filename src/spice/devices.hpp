// Concrete circuit elements: R, C, independent sources (DC/PULSE/SIN/PWL),
// VCVS and the level-1 MOSFET (square law + channel-length modulation +
// body effect) with optional intrinsic capacitances. The square-law model is
// deliberate: the paper's methodology is built on it because foundry matching
// data is characterized for that model (see paper §5).
#pragma once

#include <memory>
#include <vector>

#include "spice/circuit.hpp"
#include "tech/tech.hpp"

namespace csdac::spice {

// ---------------------------------------------------------------------------
// Source waveforms
// ---------------------------------------------------------------------------

/// Time-domain waveform of an independent source.
class Waveform {
 public:
  virtual ~Waveform() = default;
  virtual double value(double t) const = 0;
  /// Value used by the DC operating-point analysis.
  virtual double dc_value() const { return value(0.0); }
};

class DcWave final : public Waveform {
 public:
  explicit DcWave(double v) : v_(v) {}
  double value(double) const override { return v_; }

 private:
  double v_;
};

/// SPICE PULSE(v1 v2 td tr tf pw per); per <= 0 means single pulse.
class PulseWave final : public Waveform {
 public:
  PulseWave(double v1, double v2, double td, double tr, double tf, double pw,
            double period = 0.0);
  double value(double t) const override;

 private:
  double v1_, v2_, td_, tr_, tf_, pw_, period_;
};

/// SPICE SIN(offset amplitude freq delay).
class SinWave final : public Waveform {
 public:
  SinWave(double offset, double amplitude, double freq, double delay = 0.0)
      : off_(offset), amp_(amplitude), freq_(freq), delay_(delay) {}
  double value(double t) const override;
  double dc_value() const override { return off_; }

 private:
  double off_, amp_, freq_, delay_;
};

/// Piecewise-linear waveform through (t, v) points; clamps outside range.
class PwlWave final : public Waveform {
 public:
  explicit PwlWave(std::vector<std::pair<double, double>> points);
  double value(double t) const override;

 private:
  std::vector<std::pair<double, double>> pts_;
};

// ---------------------------------------------------------------------------
// Linear elements
// ---------------------------------------------------------------------------

class Resistor final : public Device {
 public:
  Resistor(std::string name, int a, int b, double ohms);
  void stamp(RealStamper& s, const EvalContext& ctx) const override;
  void stamp_ac(ComplexStamper& s, double omega) const override;
  void append_noise_sources(std::vector<struct NoiseSource>& out,
                            double temperature_k) const override;
  double resistance() const { return r_; }

 private:
  int a_, b_;
  double r_;
};

/// Companion-model state shared by Capacitor and the MOSFET intrinsic caps.
struct CapCompanion {
  double c = 0.0;
  int a = 0;
  int b = 0;
  double v_prev = 0.0;
  double i_prev = 0.0;

  void stamp(RealStamper& s, const EvalContext& ctx) const;
  void stamp_ac(ComplexStamper& s, double omega) const;
  /// Update stored state from the converged solution of this step.
  void accept(const EvalContext& ctx);
  /// Initialize state from a DC solution (i = 0).
  void reset(const EvalContext& ctx);
};

class Capacitor final : public Device {
 public:
  Capacitor(std::string name, int a, int b, double farads);
  void stamp(RealStamper& s, const EvalContext& ctx) const override;
  void stamp_ac(ComplexStamper& s, double omega) const override;
  void accept(const EvalContext& ctx) override;
  void tran_reset(const EvalContext& ctx) override;
  double capacitance() const { return state_.c; }

 private:
  mutable CapCompanion state_;
};

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Independent current source; current flows from node p, through the
/// source, into node n (SPICE convention: positive value pushes current
/// OUT of n into the circuit ... we document: current p -> n inside source,
/// i.e. it extracts from p and injects into n).
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, int p, int n, double dc, double ac_mag = 0.0);
  CurrentSource(std::string name, int p, int n, std::unique_ptr<Waveform> wave,
                double ac_mag = 0.0);
  void stamp(RealStamper& s, const EvalContext& ctx) const override;
  void stamp_ac(ComplexStamper& s, double omega) const override;

 private:
  int p_, n_;
  std::unique_ptr<Waveform> wave_;
  double ac_mag_;
};

/// Independent voltage source (adds one branch unknown).
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, int p, int n, double dc, double ac_mag = 0.0);
  VoltageSource(std::string name, int p, int n, std::unique_ptr<Waveform> wave,
                double ac_mag = 0.0);
  int branch_count() const override { return 1; }
  void stamp(RealStamper& s, const EvalContext& ctx) const override;
  void stamp_ac(ComplexStamper& s, double omega) const override;
  double value_at(double t) const { return wave_->value(t); }
  /// Replaces the waveform with a DC level (used by DC sweeps).
  void set_dc(double v) { wave_ = std::make_unique<DcWave>(v); }

 private:
  int p_, n_;
  std::unique_ptr<Waveform> wave_;
  double ac_mag_;
};

/// Voltage-controlled current source: i(p->n) = gm*(v(cp)-v(cn)).
class Vccs final : public Device {
 public:
  Vccs(std::string name, int p, int n, int cp, int cn, double gm);
  void stamp(RealStamper& s, const EvalContext& ctx) const override;
  void stamp_ac(ComplexStamper& s, double omega) const override;

 private:
  int p_, n_, cp_, cn_;
  double gm_;
};

/// Voltage-controlled voltage source: v(p)-v(n) = gain*(v(cp)-v(cn)).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, int p, int n, int cp, int cn, double gain);
  int branch_count() const override { return 1; }
  void stamp(RealStamper& s, const EvalContext& ctx) const override;
  void stamp_ac(ComplexStamper& s, double omega) const override;

 private:
  int p_, n_, cp_, cn_;
  double gain_;
};

// ---------------------------------------------------------------------------
// MOSFET
// ---------------------------------------------------------------------------

enum class MosRegion { kCutoff, kTriode, kSaturation };

/// Level-1 MOSFET. Terminal order: drain, gate, source, bulk.
class Mosfet final : public Device {
 public:
  struct Geometry {
    double w = 0.0;  ///< channel width [m]
    double l = 0.0;  ///< channel length [m]
    double m = 1.0;  ///< parallel multiplier
  };

  /// Small-signal operating point captured at the last accepted solution.
  struct OpPoint {
    double id = 0.0;   ///< drain current, drain->source positive (NMOS) [A]
    double vgs = 0.0;
    double vds = 0.0;
    double vbs = 0.0;
    double vt = 0.0;   ///< effective threshold (magnitude space) [V]
    double vod = 0.0;  ///< overdrive vgs - vt (magnitude space) [V]
    double gm = 0.0;
    double gds = 0.0;
    double gmb = 0.0;
    MosRegion region = MosRegion::kCutoff;
  };

  /// One linearization of the device at a Newton iterate. Public so the
  /// batched evaluator (batch.hpp) can compute it for whole unit-cell
  /// groups at once and hand it back through stamp_linearized().
  struct Eval {
    double id, gm, gds, gmb;  // in N-equivalent space, post swap
    int eff_d, eff_s;         // node indices after source/drain swap
    double vgs, vds, vbs, vt, vod;
    MosRegion region;
  };

  Mosfet(std::string name, const tech::MosTechParams& params, int d, int g,
         int s, int b, Geometry geo, bool with_caps = false);

  /// Injects a per-device random-mismatch realization (Pelgrom draw):
  /// threshold shift [V] and relative gain factor. Used by the DAC netlist
  /// generator to run transistor-level Monte-Carlo.
  void set_mismatch(double delta_vt, double beta_scale);

  void stamp(RealStamper& s, const EvalContext& ctx) const override;
  void stamp_ac(ComplexStamper& s, double omega) const override;
  void accept(const EvalContext& ctx) override;
  void tran_reset(const EvalContext& ctx) override;
  void append_noise_sources(std::vector<struct NoiseSource>& out,
                            double temperature_k) const override;

  Eval evaluate(const EvalContext& ctx) const;
  /// Stamps a precomputed linearization (the second half of stamp()).
  void stamp_linearized(RealStamper& s, const EvalContext& ctx,
                        const Eval& e) const;

  const OpPoint& op() const { return op_; }
  const Geometry& geometry() const { return geo_; }
  const tech::MosTechParams& params() const { return params_; }
  double delta_vt() const { return delta_vt_; }
  double beta_scale() const { return beta_scale_; }
  int node_d() const { return d_; }
  int node_g() const { return g_; }
  int node_s() const { return s_; }
  int node_b() const { return b_; }

 private:
  tech::MosTechParams params_;
  int d_, g_, s_, b_;
  Geometry geo_;
  bool with_caps_;
  double delta_vt_ = 0.0;
  double beta_scale_ = 1.0;
  mutable CapCompanion cgs_, cgd_, cdb_, csb_;
  OpPoint op_;
  int op_eff_d_ = 0;  ///< effective drain node at the last accepted solution
  int op_eff_s_ = 0;
};

}  // namespace csdac::spice
