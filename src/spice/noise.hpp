// Small-signal noise analysis: output-referred noise power spectral density
// at a node, summing every device's thermal noise propagated through the
// linearized network (each contribution is |Z(source -> out)|^2 * S_i).
// Modeled sources: resistor thermal noise 4kT/R, MOSFET channel noise
// 4kT*(2/3)*gm (long-channel saturation). Requires a prior solve_dc() so
// the MOSFETs hold valid operating points.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace csdac::spice {

/// One equivalent noise current source of a device.
struct NoiseSource {
  std::string device;
  int node_a = 0;       ///< current PSD injected between node_a ...
  int node_b = 0;       ///< ... and node_b
  double i_psd = 0.0;   ///< current PSD [A^2/Hz]
};

struct NoiseResult {
  std::vector<double> freq;       ///< [Hz]
  std::vector<double> total_psd;  ///< output voltage noise [V^2/Hz]
  /// Per-device PSD at each frequency, parallel to `freq`:
  /// contributions[f][k] belongs to source_names[k].
  std::vector<std::string> source_names;
  std::vector<std::vector<double>> contributions;

  /// RMS noise integrated over [f1, f2] (trapezoidal in linear f) [Vrms].
  double integrated_rms(double f1, double f2) const;
};

/// Computes the output-referred noise at `out_node` over `freqs`.
NoiseResult noise_analysis(Circuit& ckt, int out_node,
                           const std::vector<double>& freqs,
                           double temperature_k = 300.0);

}  // namespace csdac::spice
