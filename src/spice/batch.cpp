#include "spice/batch.hpp"

#include <cmath>
#include <map>
#include <tuple>

#include "obs/metrics.hpp"
#include "spice/batch_impl.hpp"
#include "spice/circuit.hpp"

namespace csdac::spice {
namespace {

/// Same instrument names as the dac lane kernels: the registry returns the
/// one process-wide counter per name, so SPICE batches and behavioral MC
/// land in the same simd.dispatch.* series.
struct SpiceSimdMetrics {
  obs::Counter& dispatch_scalar;
  obs::Counter& dispatch_sse2;
  obs::Counter& dispatch_avx2;
  obs::Counter& lanes_utilized;
  obs::Counter& chips_scalar_tail;

  static SpiceSimdMetrics& get() {
    static SpiceSimdMetrics m{
        obs::Registry::global().counter(
            "simd.dispatch.scalar", "MC runs dispatched to the scalar kernel"),
        obs::Registry::global().counter(
            "simd.dispatch.sse2", "MC runs dispatched to the SSE2 kernel"),
        obs::Registry::global().counter(
            "simd.dispatch.avx2", "MC runs dispatched to the AVX2 kernel"),
        obs::Registry::global().counter(
            "simd.lanes_utilized",
            "chips evaluated through SIMD vector lanes"),
        obs::Registry::global().counter(
            "simd.chips_scalar_tail",
            "chips evaluated by the scalar kernel (remainder blocks or "
            "scalar dispatch)"),
    };
    return m;
  }
};

void record_batch_run(const MosBatchKernel& k, std::int64_t vector_devs,
                      std::int64_t scalar_tail_devs) {
  SpiceSimdMetrics& m = SpiceSimdMetrics::get();
  switch (k.backend) {
    case mathx::SimdBackend::kScalar:
      m.dispatch_scalar.add(1);
      break;
    case mathx::SimdBackend::kSse2:
      m.dispatch_sse2.add(1);
      break;
    case mathx::SimdBackend::kAvx2:
      m.dispatch_avx2.add(1);
      break;
  }
  if (vector_devs > 0) m.lanes_utilized.add(vector_devs);
  if (scalar_tail_devs > 0) m.chips_scalar_tail.add(scalar_tail_devs);
}

const MosBatchKernel& scalar_mos_kernel() {
  static const MosBatchKernel k{mathx::SimdBackend::kScalar, 1,
                                &detail::mos_prologue<mathx::ScalarOps>};
  return k;
}

}  // namespace

const MosBatchKernel* mos_batch_kernel(mathx::SimdBackend backend) {
  switch (backend) {
    case mathx::SimdBackend::kScalar:
      return &scalar_mos_kernel();
    case mathx::SimdBackend::kSse2:
      return detail::mos_kernel_sse2();
    case mathx::SimdBackend::kAvx2:
      return detail::mos_kernel_avx2();
  }
  return nullptr;
}

const MosBatchKernel& active_mos_batch_kernel() {
  mathx::SimdBackend b = mathx::simd_backend();
  for (;;) {
    if (const MosBatchKernel* k = mos_batch_kernel(b)) return *k;
    b = b == mathx::SimdBackend::kAvx2 ? mathx::SimdBackend::kSse2
                                       : mathx::SimdBackend::kScalar;
  }
}

MosfetBatchSet::MosfetBatchSet(const Circuit& ckt) {
  // Group key: everything evaluate() reads that is per-model/per-geometry
  // (the per-device delta_vt/beta_scale stay lane inputs).
  using Key = std::tuple<double, double, double, double, double, double,
                         double, double, double>;
  std::map<Key, std::size_t> index;
  for (const auto& dev : ckt.devices()) {
    const auto* m = dynamic_cast<const Mosfet*>(dev.get());
    if (m == nullptr) continue;
    const auto& p = m->params();
    const auto& g = m->geometry();
    const double sign = p.type == tech::MosType::kNmos ? 1.0 : -1.0;
    const double lam = p.lambda(g.l);
    const Key key{sign, p.vt0, p.gamma, p.phi_2f, p.kp, lam, g.w, g.l, g.m};
    auto it = index.find(key);
    if (it == index.end()) {
      it = index.emplace(key, groups_.size()).first;
      Group grp;
      grp.consts = MosBatchConsts{sign,          p.vt0, p.gamma,
                                  p.phi_2f,      std::sqrt(p.phi_2f),
                                  p.kp,          g.w,   g.l,
                                  g.m,           lam};
      groups_.push_back(std::move(grp));
    }
    Group& grp = groups_[it->second];
    grp.devs.push_back(m);
    grp.slots.push_back(static_cast<int>(evals_.size()));
    slot_of_.emplace(dev.get(), evals_.size());
    evals_.push_back(Mosfet::Eval{});
  }
  for (auto& grp : groups_) {
    const std::size_t n = grp.devs.size();
    grp.vd.resize(n);
    grp.vg.resize(n);
    grp.vs.resize(n);
    grp.vb.resize(n);
    grp.dvt.resize(n);
    grp.bscale.resize(n);
    grp.vgs.resize(n);
    grp.vds.resize(n);
    grp.vbs.resize(n);
    grp.vt.resize(n);
    grp.vod.resize(n);
    grp.beta.resize(n);
    grp.sqrt_arg.resize(n);
    grp.swapped.resize(n);
    grp.clamped.resize(n);
  }
}

void MosfetBatchSet::evaluate(const EvalContext& ctx) {
  if (evals_.empty()) return;
  const MosBatchKernel& kernel = active_mos_batch_kernel();
  std::int64_t vector_devs = 0, tail_devs = 0;
  for (auto& grp : groups_) {
    const int n = static_cast<int>(grp.devs.size());
    const MosBatchConsts& c = grp.consts;
    for (int l = 0; l < n; ++l) {
      const Mosfet* m = grp.devs[static_cast<std::size_t>(l)];
      // sign is +-1.0, so these products are exact — identical to the
      // scalar evaluate()'s own sign flip.
      grp.vd[static_cast<std::size_t>(l)] = c.sign * ctx.v(m->node_d());
      grp.vg[static_cast<std::size_t>(l)] = c.sign * ctx.v(m->node_g());
      grp.vs[static_cast<std::size_t>(l)] = c.sign * ctx.v(m->node_s());
      grp.vb[static_cast<std::size_t>(l)] = c.sign * ctx.v(m->node_b());
      grp.dvt[static_cast<std::size_t>(l)] = m->delta_vt();
      grp.bscale[static_cast<std::size_t>(l)] = m->beta_scale();
    }
    MosBatchSpans io{grp.vd.data(),     grp.vg.data(),    grp.vs.data(),
                     grp.vb.data(),     grp.dvt.data(),   grp.bscale.data(),
                     grp.vgs.data(),    grp.vds.data(),   grp.vbs.data(),
                     grp.vt.data(),     grp.vod.data(),   grp.beta.data(),
                     grp.sqrt_arg.data(), grp.swapped.data(),
                     grp.clamped.data()};
    kernel.prologue(c, io, n);
    const int vec = (n / kernel.lanes) * kernel.lanes;
    vector_devs += kernel.lanes > 1 ? vec : 0;
    tail_devs += kernel.lanes > 1 ? n - vec : n;

    // Region-dependent tail, scalar per lane — byte-for-byte the same
    // expressions as Mosfet::evaluate().
    for (int l = 0; l < n; ++l) {
      const auto sl = static_cast<std::size_t>(l);
      const Mosfet* m = grp.devs[sl];
      Mosfet::Eval e{};
      const bool sw = grp.swapped[sl] != 0;
      e.eff_d = sw ? m->node_s() : m->node_d();
      e.eff_s = sw ? m->node_d() : m->node_s();
      e.vgs = grp.vgs[sl];
      e.vds = grp.vds[sl];
      e.vbs = grp.vbs[sl];
      e.vt = grp.vt[sl];
      e.vod = grp.vod[sl];
      const double beta = grp.beta[sl];
      const double dvt_dvbs =
          grp.clamped[sl] != 0 ? 0.0
                               : -c.gamma / (2.0 * grp.sqrt_arg[sl]);
      if (e.vod <= 0.0) {
        e.region = MosRegion::kCutoff;
        e.id = e.gm = e.gds = e.gmb = 0.0;
      } else {
        const double clm = 1.0 + c.lam * e.vds;
        if (e.vds >= e.vod) {
          e.region = MosRegion::kSaturation;
          e.id = 0.5 * beta * e.vod * e.vod * clm;
          e.gm = beta * e.vod * clm;
          e.gds = 0.5 * beta * e.vod * e.vod * c.lam;
        } else {
          e.region = MosRegion::kTriode;
          const double shape = e.vod * e.vds - 0.5 * e.vds * e.vds;
          e.id = beta * shape * clm;
          e.gm = beta * e.vds * clm;
          e.gds = beta * (e.vod - e.vds) * clm + beta * shape * c.lam;
        }
        e.gmb = e.gm * (-dvt_dvbs);
      }
      evals_[static_cast<std::size_t>(grp.slots[sl])] = e;
    }
  }
  record_batch_run(kernel, vector_devs, tail_devs);
}

}  // namespace csdac::spice
