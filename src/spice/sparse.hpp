// Sparse MNA backend: compressed-column assembly plus a Gilbert-Peierls
// left-looking LU with threshold partial pivoting and symbolic reuse.
//
// The design exploits a property of this engine's device models: every
// device stamps a topology-fixed entry set (the MOSFET stamp is symmetric
// under its internal drain/source swap and stamps structural zeros in
// cutoff), so the sparsity pattern is invariant across Newton iterations,
// homotopy (gmin / source stepping) points, transient timesteps, and
// Monte-Carlo corners. The first factorization therefore chooses a
// fill-reducing column order (minimum degree on A + A^T), pivots, and
// records the L/U patterns; every later solve replays the recorded
// patterns numerically (refactorize), which is the dominant win over the
// dense path's full O(n^3) elimination per Newton iteration.
//
// The one legal pattern change is DC -> transient (capacitor companions
// begin stamping): SparseAssembly tracks unseen coordinates, folds them in
// on finish(), and reports the change so the caller re-runs the full
// pivoting factorization.
//
// Both factorize() and refactorize() apply column updates in ascending
// pivot order, so for an unchanged pattern the two produce bit-identical
// factors — Newton trajectories do not depend on which path ran.
#pragma once

#include <complex>
#include <vector>

namespace csdac::spice {

/// Incremental CSC matrix builder with a persistent pattern. Stamp cycle:
/// begin(n) zeroes values (keeping the compressed pattern), add() routes
/// each coordinate either into its existing slot or into a pending triplet
/// list, and finish() folds any pending coordinates into the pattern,
/// returning true when the pattern changed (symbolic factorization must be
/// redone).
template <typename T>
class SparseAssembly {
 public:
  void begin(int n);
  void add(int row, int col, T val) {
    if (pattern_ready_) {
      const int s = slot(row, col);
      if (s >= 0) {
        val_[static_cast<std::size_t>(s)] += val;
        return;
      }
    }
    pending_.push_back(Triplet{row, col, val});
  }
  /// Folds pending coordinates into the compressed pattern. Returns true
  /// if the pattern changed (first assembly or new coordinates).
  bool finish();

  int n() const { return n_; }
  int nnz() const { return static_cast<int>(row_idx_.size()); }
  const std::vector<int>& col_ptr() const { return col_ptr_; }
  const std::vector<int>& row_idx() const { return row_idx_; }
  const std::vector<T>& values() const { return val_; }

  /// Drops the compressed pattern (topology changed externally).
  void invalidate() { pattern_ready_ = false; }
  bool pattern_ready() const { return pattern_ready_; }

 private:
  struct Triplet {
    int r, c;
    T v;
  };
  /// Binary search for (row, col) in the compressed pattern; -1 if absent.
  int slot(int row, int col) const {
    const int lo = col_ptr_[static_cast<std::size_t>(col)];
    const int hi = col_ptr_[static_cast<std::size_t>(col) + 1];
    int a = lo, b = hi;
    while (a < b) {
      const int mid = a + (b - a) / 2;
      if (row_idx_[static_cast<std::size_t>(mid)] < row) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return (a < hi && row_idx_[static_cast<std::size_t>(a)] == row) ? a : -1;
  }

  int n_ = 0;
  bool pattern_ready_ = false;
  std::vector<int> col_ptr_, row_idx_;
  std::vector<T> val_;
  std::vector<Triplet> pending_;
};

/// Fill-reducing column permutation: minimum-degree elimination on the
/// symmetrized pattern of A (A + A^T, diagonal ignored). Returns q with
/// q[k] = the original index eliminated at step k. Deterministic: ties
/// break toward the lowest index.
std::vector<int> min_degree_order(int n, const std::vector<int>& col_ptr,
                                  const std::vector<int>& row_idx);

/// Sparse LU (Gilbert-Peierls, left-looking) with threshold partial
/// pivoting and recorded-pattern numeric refactorization.
template <typename T>
class SparseLu {
 public:
  /// Full factorization: min-degree column preorder, row pivoting with
  /// diagonal preference (|diag| >= tau * colmax keeps the diagonal), and
  /// pattern recording. Throws mathx::SingularMatrixError carrying the
  /// ORIGINAL unknown index of the column with no usable pivot.
  void factorize(const SparseAssembly<T>& a);

  /// Numeric-only replay on the recorded pivot order and L/U patterns.
  /// Returns false (factors untouched beyond scratch) when no symbolic
  /// data exists, the size changed, or a pivot degraded past the
  /// stability floor — the caller then runs factorize() again.
  bool refactorize(const SparseAssembly<T>& a);

  /// In-place solve of A x = b using the current factors.
  void solve(std::vector<T>& b) const;

  bool has_symbolic() const { return n_ > 0; }
  void reset() { n_ = 0; }
  int n() const { return n_; }
  /// Factor fill-in (L + U nonzeros), for the scaling benchmarks.
  long nnz_factors() const {
    return static_cast<long>(li_.size() + ui_.size());
  }
  long factorizations() const { return factorizations_; }
  long refactorizations() const { return refactorizations_; }

 private:
  int n_ = 0;
  std::vector<int> q_;     ///< column order: q_[k] = original column
  std::vector<int> pinv_;  ///< original row -> pivot position
  // L: unit lower triangular, CSC in pivot space, strictly-below-diagonal
  // rows sorted ascending. U: upper triangular, CSC, rows ascending with
  // the diagonal pivot stored last in each column.
  std::vector<int> lp_, li_, up_, ui_;
  std::vector<T> lx_, ux_;
  long factorizations_ = 0;
  long refactorizations_ = 0;

  mutable std::vector<T> work_;
};

extern template class SparseAssembly<double>;
extern template class SparseAssembly<std::complex<double>>;
extern template class SparseLu<double>;
extern template class SparseLu<std::complex<double>>;

}  // namespace csdac::spice
