#include "mathx/rng.hpp"

#include <cmath>

namespace csdac::mathx {

namespace detail {

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index) {
  return seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace detail

namespace {

using detail::splitmix64;

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) { this->seed(seed); }

void Xoshiro256::seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double uniform01(Xoshiro256& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

double uniform(Xoshiro256& rng, double lo, double hi) {
  return lo + (hi - lo) * uniform01(rng);
}

double normal(Xoshiro256& rng) {
  // Marsaglia polar method, discarding the second deviate for determinism.
  for (;;) {
    const double u = 2.0 * uniform01(rng) - 1.0;
    const double v = 2.0 * uniform01(rng) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double normal(Xoshiro256& rng, double mean, double sigma) {
  return mean + sigma * normal(rng);
}

std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ull) - ((~0ull) % n);
  for (;;) {
    const std::uint64_t r = rng();
    if (r < limit || limit == 0) return r % n;
  }
}

Xoshiro256 stream_rng(std::uint64_t seed, std::uint64_t index) {
  return Xoshiro256(detail::stream_seed(seed, index));
}

void stream_rng_into(Xoshiro256& rng, std::uint64_t seed,
                     std::uint64_t index) {
  rng.seed(detail::stream_seed(seed, index));
}

}  // namespace csdac::mathx
