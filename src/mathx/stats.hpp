// Statistics utilities: normal CDF / inverse CDF (the paper's `inv_norm`),
// running moments, percentiles and histograms for Monte-Carlo yield analysis.
#pragma once

#include <cstddef>
#include <vector>

namespace csdac::mathx {

/// Standard normal cumulative distribution function Phi(x).
double normal_cdf(double x);

/// Inverse standard normal CDF (the paper's inv_norm). Acklam's rational
/// approximation refined with one Halley step; |error| < 1e-13 on (0,1).
double normal_inv_cdf(double p);

/// Two-sided yield coefficient C of eq. (1): P(|X| < C) = yield for
/// X ~ N(0,1), i.e. C = inv_norm((1+yield)/2).
double yield_coefficient_two_sided(double yield);

/// One-sided coefficient S of eq. (9): P(X < S) = yield_v, S = inv_norm(yield_v).
double yield_coefficient_one_sided(double yield_v);

/// Numerically stable running mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0..100) by linear interpolation; sorts a copy.
double percentile(std::vector<double> values, double p);

/// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t bins() const { return counts_.size(); }
  double bin_center(std::size_t i) const;
  std::size_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace csdac::mathx
