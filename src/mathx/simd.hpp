// Chip-per-lane SIMD abstraction for the Monte-Carlo hot path: a small
// width-agnostic vector layer (one chip per lane) with AVX2, SSE2, and
// scalar backends selected by runtime CPU detection, overridable with
// CSDAC_SIMD=scalar|sse2|avx2 for testing.
//
// The design constraint is BIT-IDENTITY: every lane must reproduce the
// scalar kernel's exact arithmetic order, so the repo's
// bit-identical-for-any-thread-count guarantee (and all golden tests)
// survives vectorization. That is why the abstraction batches ACROSS chips
// (each lane is an independent chip whose operations happen in the scalar
// order) instead of vectorizing within one chip, and why the transcendental
// tail of the Gaussian draw (std::log) stays scalar per lane — IEEE basic
// operations (+,-,*,/,sqrt, abs) are correctly rounded and therefore
// lane-wise identical to their scalar counterparts, libm's log is not
// guaranteed to be, so it is never vectorized.
//
// This header is intrinsics-free: the templates are generic over an Ops
// policy (lane count, vector types, arithmetic). ScalarOps (width 1, plain
// double) lives here; the SSE2/AVX2 policies live in simd_sse2.hpp /
// simd_avx2.hpp and are only included by the per-ISA kernel translation
// units (the AVX2 one is compiled with -mavx2; see src/dac/CMakeLists.txt).
#pragma once

#include <cmath>
#include <cstdint>

#include "mathx/rng.hpp"

namespace csdac::mathx {

/// Vector instruction sets the chip-per-lane kernels can dispatch to, in
/// ascending width order (so backends compare with <).
enum class SimdBackend { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// "scalar", "sse2", or "avx2".
const char* simd_backend_name(SimdBackend backend);

/// Lanes (chips per vector) of a backend: 1, 2, or 4.
int simd_lane_width(SimdBackend backend);

/// Widest backend this CPU supports (compile-target permitting). Pure
/// detection — no environment override.
SimdBackend simd_detect();

/// The backend MC runs dispatch to: simd_detect() clamped by the
/// CSDAC_SIMD environment override (scalar|sse2|avx2|auto; an override
/// wider than the CPU supports falls back to detection with a warning).
/// Resolved once on first call, then cached; simd_force_backend() replaces
/// the cached choice.
SimdBackend simd_backend();

/// Forces the dispatch choice (clamped to simd_detect(); returns what was
/// actually installed). For tests and the bench harness, which compare
/// backends within one process; production code should rely on CSDAC_SIMD.
SimdBackend simd_force_backend(SimdBackend backend);

// --- Width-1 reference policy ----------------------------------------------

/// The Ops policy contract, in its trivial width-1 instantiation. A policy
/// provides the lane count, vector value types (F64 = lanes doubles,
/// U64 = lanes uint64s, Mask = lanes predicates), and the lane-wise
/// operations the kernels use. All f64 arithmetic must be the IEEE
/// correctly-rounded operation per lane (true for scalar, SSE2, and AVX2
/// instructions alike), which is what makes the lanes bit-identical to the
/// scalar kernel. fmin/fmax may differ from std::min/std::max only in
/// which signed zero they return — callers must not depend on the sign of
/// a zero (the MC kernels do not: every min/max result flows into
/// arithmetic where -0.0 and +0.0 behave identically).
struct ScalarOps {
  static constexpr int kLanes = 1;
  using F64 = double;
  using U64 = std::uint64_t;
  using Mask = bool;

  static F64 fset1(double v) { return v; }
  static F64 floadu(const double* p) { return *p; }
  static void fstoreu(double* p, F64 v) { *p = v; }
  static F64 fadd(F64 a, F64 b) { return a + b; }
  static F64 fsub(F64 a, F64 b) { return a - b; }
  static F64 fmul(F64 a, F64 b) { return a * b; }
  static F64 fdiv(F64 a, F64 b) { return a / b; }
  static F64 fmin(F64 a, F64 b) { return a < b ? a : b; }
  static F64 fmax(F64 a, F64 b) { return a > b ? a : b; }
  static F64 fabs(F64 v) { return std::abs(v); }
  static F64 fsqrt(F64 v) { return std::sqrt(v); }

  static Mask mask_all() { return true; }
  static Mask cmp_gt(F64 a, F64 b) { return a > b; }
  static Mask cmp_lt(F64 a, F64 b) { return a < b; }
  static Mask cmp_eq(F64 a, F64 b) { return a == b; }
  static Mask mand(Mask a, Mask b) { return a && b; }
  /// ~a & b.
  static Mask mandnot(Mask a, Mask b) { return !a && b; }
  /// Bit i set iff lane i's predicate holds.
  static int movemask(Mask m) { return m ? 1 : 0; }

  static U64 uset1(std::uint64_t v) { return v; }
  static U64 uloadu(const std::uint64_t* p) { return *p; }
  static void ustoreu(std::uint64_t* p, U64 v) { *p = v; }
  static U64 uadd(U64 a, U64 b) { return a + b; }
  static U64 uxor(U64 a, U64 b) { return a ^ b; }
  static U64 uor(U64 a, U64 b) { return a | b; }
  static U64 usll(U64 x, int k) { return x << k; }
  static U64 usrl(U64 x, int k) { return x >> k; }
  /// m ? a : b, per lane.
  static U64 ublend(Mask m, U64 a, U64 b) { return m ? a : b; }

  /// Exact u64 -> f64 for values < 2^53 (every intermediate representable,
  /// so the SIMD magic-constant sequences land on the same double as the
  /// scalar static_cast).
  static F64 u64_to_f64_53(U64 n) { return static_cast<double>(n); }
};

// --- Lane-parallel xoshiro256++ --------------------------------------------

/// N independent xoshiro256++ states advanced in lockstep, lane l seeded to
/// the (seed, index0 + stride*l) substream of the scalar engine's
/// stream_rng derivation. next(active) advances only the lanes named by
/// `active` — the masked-rejection Gaussian needs lanes that already
/// accepted to stop consuming draws, or their sequences would diverge from
/// the per-chip scalar ones.
template <class Ops>
class Xoshiro256xN {
 public:
  using U64 = typename Ops::U64;
  using Mask = typename Ops::Mask;

  void seed_streams(std::uint64_t seed, std::uint64_t index0,
                    std::uint64_t stride = 1) {
    std::uint64_t word[4][Ops::kLanes];
    for (int l = 0; l < Ops::kLanes; ++l) {
      std::uint64_t sm = detail::stream_seed(
          seed, index0 + stride * static_cast<std::uint64_t>(l));
      for (auto& w : word) w[l] = detail::splitmix64(sm);
    }
    for (int j = 0; j < 4; ++j) s_[j] = Ops::uloadu(word[j]);
  }

  /// One xoshiro256++ step on every lane.
  U64 next() {
    const U64 result = Ops::uadd(rotl(Ops::uadd(s_[0], s_[3]), 23), s_[0]);
    const U64 t = Ops::usll(s_[1], 17);
    s_[2] = Ops::uxor(s_[2], s_[0]);
    s_[3] = Ops::uxor(s_[3], s_[1]);
    s_[1] = Ops::uxor(s_[1], s_[2]);
    s_[0] = Ops::uxor(s_[0], s_[3]);
    s_[2] = Ops::uxor(s_[2], t);
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Steps only the lanes selected by `active`; inactive lanes keep their
  /// state (their returned bits are meaningless and must be ignored).
  U64 next(Mask active) {
    const U64 keep0 = s_[0], keep1 = s_[1], keep2 = s_[2], keep3 = s_[3];
    const U64 result = next();
    s_[0] = Ops::ublend(active, s_[0], keep0);
    s_[1] = Ops::ublend(active, s_[1], keep1);
    s_[2] = Ops::ublend(active, s_[2], keep2);
    s_[3] = Ops::ublend(active, s_[3], keep3);
    return result;
  }

 private:
  static U64 rotl(U64 x, int k) {
    return Ops::uor(Ops::usll(x, k), Ops::usrl(x, 64 - k));
  }

  U64 s_[4];
};

/// Lane-wise uniform01: the scalar (raw >> 11) * 0x1.0p-53 on each lane.
/// Both steps are exact (the 53-bit value converts exactly, the power-of-
/// two scale never rounds), so the result is bit-identical per lane.
template <class Ops>
typename Ops::F64 uniform01_from_bits(typename Ops::U64 raw) {
  return Ops::fmul(Ops::u64_to_f64_53(Ops::usrl(raw, 11)),
                   Ops::fset1(0x1.0p-53));
}

/// Lane-wise standard normal: the masked-rejection Marsaglia polar method.
/// Every lane reproduces the scalar mathx::normal draw sequence exactly:
/// an iteration consumes two uniforms on every still-active lane (masked
/// state advance), the acceptance predicate 0 < s < 1 is evaluated with
/// the same comparisons, and the accepted tail u*sqrt(-2*log(s)/s) is
/// computed in scalar per lane (log is libm's — vectorizing it would break
/// bit-identity; it is one call per ACCEPTED draw, so the vector win on
/// the uniform/rejection part survives).
template <class Ops>
typename Ops::F64 normal_xN(Xoshiro256xN<Ops>& rng) {
  using F64 = typename Ops::F64;
  using Mask = typename Ops::Mask;
  const F64 one = Ops::fset1(1.0);
  const F64 two = Ops::fset1(2.0);
  const F64 zero = Ops::fset1(0.0);
  double u_arr[Ops::kLanes], s_arr[Ops::kLanes], out[Ops::kLanes];
  Mask active = Ops::mask_all();
  for (;;) {
    const F64 u =
        Ops::fsub(Ops::fmul(two, uniform01_from_bits<Ops>(rng.next(active))),
                  one);
    const F64 v =
        Ops::fsub(Ops::fmul(two, uniform01_from_bits<Ops>(rng.next(active))),
                  one);
    const F64 s = Ops::fadd(Ops::fmul(u, u), Ops::fmul(v, v));
    const Mask accept =
        Ops::mand(active, Ops::mand(Ops::cmp_gt(s, zero), Ops::cmp_lt(s, one)));
    const int bits = Ops::movemask(accept);
    if (bits != 0) {
      Ops::fstoreu(u_arr, u);
      Ops::fstoreu(s_arr, s);
      for (int l = 0; l < Ops::kLanes; ++l) {
        if (bits & (1 << l)) {
          out[l] = u_arr[l] * std::sqrt(-2.0 * std::log(s_arr[l]) / s_arr[l]);
        }
      }
      active = Ops::mandnot(accept, active);
      if (Ops::movemask(active) == 0) break;
    }
  }
  return Ops::floadu(out);
}

}  // namespace csdac::mathx
