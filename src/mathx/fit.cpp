#include "mathx/fit.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/linalg.hpp"

namespace csdac::mathx {

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_line: need >= 2 matching points");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("fit_line: degenerate x");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.slope * x[i] + f.intercept);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

QuadraticFit fit_quadratic(std::span<const double> x,
                           std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 3) {
    throw std::invalid_argument("fit_quadratic: need >= 3 matching points");
  }
  // Normal equations for [a b c] on basis [x^2 x 1].
  double s4 = 0, s3 = 0, s2 = 0, s1 = 0, s0 = static_cast<double>(x.size());
  double t2 = 0, t1 = 0, t0 = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i], xi2 = xi * xi;
    s4 += xi2 * xi2;
    s3 += xi2 * xi;
    s2 += xi2;
    s1 += xi;
    t2 += xi2 * y[i];
    t1 += xi * y[i];
    t0 += y[i];
  }
  MatrixD m(3, 3);
  m(0, 0) = s4; m(0, 1) = s3; m(0, 2) = s2;
  m(1, 0) = s3; m(1, 1) = s2; m(1, 2) = s1;
  m(2, 0) = s2; m(2, 1) = s1; m(2, 2) = s0;
  const auto sol = LuSolver<double>::solve_once(m, {t2, t1, t0});
  return QuadraticFit{sol[0], sol[1], sol[2]};
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (flo * fhi > 0.0) {
    throw std::invalid_argument("bisect: interval does not bracket a root");
  }
  for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if (flo * fm < 0.0) {
      hi = mid;
      fhi = fm;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  (void)fhi;
  return 0.5 * (lo + hi);
}

double fixed_point(const std::function<double(double)>& g, double x0,
                   double tol, int max_iter, double relax) {
  double x = x0;
  for (int i = 0; i < max_iter; ++i) {
    const double next = (1.0 - relax) * x + relax * g(x);
    if (std::abs(next - x) < tol) return next;
    x = next;
  }
  return x;
}

}  // namespace csdac::mathx
